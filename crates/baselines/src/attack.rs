//! Edge-inference attacks — the threat model that motivates the paper
//! (Sec. I cites LinkTeller \[9\] and the link-stealing attacks of \[10\]).
//!
//! Implements the *posterior-similarity* attack of He et al. (USENIX
//! Security 2021): connected nodes tend to receive similar model outputs
//! (graph convolution smooths predictions along edges), so an adversary
//! scores a candidate pair `(u, v)` by the similarity of the released
//! model's posteriors and predicts "edge" for high scores. Attack strength
//! is summarized as the AUC of that score over true edges vs non-edges —
//! 0.5 is random guessing, 1.0 is full link recovery.
//!
//! Used by the `link_attack` example and the integration tests to show the
//! defense GCON buys: on the non-private GCN the attack is far above
//! chance, while the DP-trained GCON pushes it toward 0.5.

use gcon_graph::Graph;
use gcon_linalg::{vecops, Mat};
use rand::Rng;

/// Cosine similarity of two posterior rows (0 when either is zero).
fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let na = vecops::norm2(a);
    let nb = vecops::norm2(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    vecops::dot(a, b) / (na * nb)
}

/// Converts logits to softmax posteriors row-wise.
pub fn posteriors(logits: &Mat) -> Mat {
    let mut out = Mat::zeros(logits.rows(), logits.cols());
    let mut buf = vec![0.0; logits.cols()];
    for i in 0..logits.rows() {
        vecops::softmax_into(logits.row(i), &mut buf);
        out.row_mut(i).copy_from_slice(&buf);
    }
    out
}

/// AUC of a score list labelled edge (true) / non-edge (false), computed by
/// the rank statistic (ties get half credit).
pub fn auc(scores_pos: &[f64], scores_neg: &[f64]) -> f64 {
    if scores_pos.is_empty() || scores_neg.is_empty() {
        return 0.5;
    }
    let mut wins = 0.0;
    for &p in scores_pos {
        for &n in scores_neg {
            if p > n {
                wins += 1.0;
            } else if p == n {
                wins += 0.5;
            }
        }
    }
    wins / (scores_pos.len() * scores_neg.len()) as f64
}

/// Runs the posterior-similarity link-inference attack against a released
/// logit matrix. Samples up to `num_pairs` true edges and as many random
/// non-edges, scores each by posterior cosine similarity, and returns the
/// attack AUC.
pub fn posterior_similarity_attack_auc<R: Rng + ?Sized>(
    logits: &Mat,
    graph: &Graph,
    num_pairs: usize,
    rng: &mut R,
) -> f64 {
    assert_eq!(logits.rows(), graph.num_nodes(), "attack: logits/graph mismatch");
    let post = posteriors(logits);
    let edges = graph.edges();
    assert!(!edges.is_empty(), "attack: graph has no edges");
    let k = num_pairs.min(edges.len());

    // Sample true edges.
    let mut pos = Vec::with_capacity(k);
    for _ in 0..k {
        let (u, v) = edges[rng.gen_range(0..edges.len())];
        pos.push(cosine(post.row(u as usize), post.row(v as usize)));
    }
    // Sample non-edges.
    let n = graph.num_nodes() as u32;
    let mut neg = Vec::with_capacity(k);
    let mut attempts = 0;
    while neg.len() < k && attempts < 100 * k + 1000 {
        attempts += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v || graph.has_edge(u, v) {
            continue;
        }
        neg.push(cosine(post.row(u as usize), post.row(v as usize)));
    }
    auc(&pos, &neg)
}

/// Posterior-similarity attack with **hard negatives**: the non-edge pairs
/// are sampled from 2-hop neighborhoods (nodes that share a neighbor but
/// are not connected) instead of uniformly at random. This is the
/// LinkTeller evaluation protocol's harder setting — 2-hop pairs receive
/// correlated smoothing through their common neighbor, so the similarity
/// signal that separates true edges from them is much weaker, and the AUC
/// reported here lower-bounds the easy-negative variant.
pub fn posterior_similarity_attack_auc_hard<R: Rng + ?Sized>(
    logits: &Mat,
    graph: &Graph,
    num_pairs: usize,
    rng: &mut R,
) -> f64 {
    assert_eq!(logits.rows(), graph.num_nodes(), "attack: logits/graph mismatch");
    let post = posteriors(logits);
    let edges = graph.edges();
    assert!(!edges.is_empty(), "attack: graph has no edges");
    let k = num_pairs.min(edges.len());

    let mut pos = Vec::with_capacity(k);
    for _ in 0..k {
        let (u, v) = edges[rng.gen_range(0..edges.len())];
        pos.push(cosine(post.row(u as usize), post.row(v as usize)));
    }
    // 2-hop non-edges: walk u → n → w with w ∉ N(u), w ≠ u.
    let n = graph.num_nodes() as u32;
    let mut neg = Vec::with_capacity(k);
    let mut attempts = 0;
    while neg.len() < k && attempts < 200 * k + 2000 {
        attempts += 1;
        let u = rng.gen_range(0..n);
        let nu = graph.neighbors(u);
        if nu.is_empty() {
            continue;
        }
        let mid = nu[rng.gen_range(0..nu.len())];
        let nm = graph.neighbors(mid);
        if nm.is_empty() {
            continue;
        }
        let w = nm[rng.gen_range(0..nm.len())];
        if w == u || graph.has_edge(u, w) {
            continue;
        }
        neg.push(cosine(post.row(u as usize), post.row(w as usize)));
    }
    auc(&pos, &neg)
}

/// LinkTeller-style **influence attack** (Wu et al., S&P 2022): to test the
/// candidate edge `(u, v)`, nudge node `u`'s features and measure how much
/// node `v`'s output moves. Graph convolution transports influence along
/// edges, so connected pairs show much larger cross-influence than
/// disconnected ones. `forward` is the released model as a black box
/// (features in, logits out) so the same attack runs against any method.
///
/// Returns the attack AUC over `num_pairs` sampled edges vs non-edges.
pub fn influence_attack_auc<R, F>(
    features: &Mat,
    graph: &Graph,
    forward: F,
    num_pairs: usize,
    rng: &mut R,
) -> f64
where
    R: Rng + ?Sized,
    F: Fn(&Mat) -> Mat,
{
    assert_eq!(features.rows(), graph.num_nodes());
    let base = forward(features);
    let edges = graph.edges();
    assert!(!edges.is_empty());
    let k = num_pairs.min(edges.len());
    let n = graph.num_nodes() as u32;
    let delta = 0.1;

    let influence = |u: u32, v: u32| -> f64 {
        let mut perturbed = features.clone();
        for x in perturbed.row_mut(u as usize) {
            *x += delta;
        }
        let out = forward(&perturbed);
        gcon_linalg::vecops::dist2(out.row(v as usize), base.row(v as usize))
    };

    let mut pos = Vec::with_capacity(k);
    for _ in 0..k {
        let (u, v) = edges[rng.gen_range(0..edges.len())];
        pos.push(influence(u, v));
    }
    let mut neg = Vec::with_capacity(k);
    let mut attempts = 0;
    while neg.len() < k && attempts < 100 * k + 1000 {
        attempts += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v || graph.has_edge(u, v) {
            continue;
        }
        neg.push(influence(u, v));
    }
    auc(&pos, &neg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn auc_perfect_and_random() {
        assert_eq!(auc(&[0.9, 0.8], &[0.1, 0.2]), 1.0);
        assert_eq!(auc(&[0.5, 0.5], &[0.5, 0.5]), 0.5);
        assert_eq!(auc(&[0.1], &[0.9]), 0.0);
        assert_eq!(auc(&[], &[1.0]), 0.5);
    }

    #[test]
    fn posteriors_rows_sum_to_one() {
        let logits = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[-1.0, 0.0, 1.0]]);
        let p = posteriors(&logits);
        for i in 0..2 {
            let s: f64 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn attack_detects_smoothed_outputs() {
        // Build a graph where connected nodes share identical logits —
        // the attack must reach AUC ≈ 1.
        let mut rng = StdRng::seed_from_u64(91);
        let g = gcon_graph::generators::sbm_homophily(
            &gcon_graph::generators::SbmConfig {
                n: 200,
                num_edges: 600,
                num_classes: 4,
                homophily: 1.0, // every edge intra-class
                degree_exponent: 3.0,
            },
            &mut rng,
        );
        let (graph, labels) = g;
        let logits = Mat::from_fn(200, 4, |i, j| if labels[i] == j { 5.0 } else { 0.0 });
        // True edges always score 1.0; random non-edge pairs are same-class
        // only ~1/4 of the time, so the theoretical AUC is ≈ 7/8.
        let a = posterior_similarity_attack_auc(&logits, &graph, 200, &mut rng);
        assert!(a > 0.8, "attack AUC {a} should be ≈ 7/8 on class-pure edges");
    }

    #[test]
    fn influence_attack_recovers_edges_of_a_gcn() {
        // A 1-hop averaging "model" transports influence exactly along
        // edges: the attack must reach AUC ≈ 1.
        let mut rng = StdRng::seed_from_u64(93);
        let graph = gcon_graph::generators::erdos_renyi_gnm(80, 200, &mut rng);
        let a_tilde = gcon_graph::normalize::row_stochastic_default(&graph);
        let x = Mat::uniform(80, 6, 1.0, &mut rng);
        let auc_val = influence_attack_auc(&x, &graph, |feat| a_tilde.spmm(feat), 100, &mut rng);
        assert!(auc_val > 0.95, "influence AUC {auc_val} should be ≈ 1 on 1-hop GCN");
    }

    #[test]
    fn influence_attack_blind_against_edge_free_model() {
        // An MLP-like model (row-wise map) leaks no cross-node influence:
        // AUC must be ≈ 0.5 (all influences are exactly 0).
        let mut rng = StdRng::seed_from_u64(94);
        let graph = gcon_graph::generators::erdos_renyi_gnm(60, 150, &mut rng);
        let x = Mat::uniform(60, 4, 1.0, &mut rng);
        let auc_val = influence_attack_auc(&x, &graph, |feat| feat.map(|v| v * 2.0), 80, &mut rng);
        assert!((auc_val - 0.5).abs() < 1e-9, "AUC {auc_val}");
    }

    #[test]
    fn hard_negatives_are_harder_than_random_ones() {
        // On graph-smoothed posteriors, 2-hop pairs look more like edges
        // than uniformly random pairs do, so the hard-negative AUC must be
        // at most the random-negative AUC (up to sampling noise).
        let mut rng = StdRng::seed_from_u64(95);
        let (graph, labels) = gcon_graph::generators::sbm_homophily(
            &gcon_graph::generators::SbmConfig {
                n: 300,
                num_edges: 900,
                num_classes: 3,
                homophily: 0.9,
                degree_exponent: 2.5,
            },
            &mut rng,
        );
        // Smooth one-hot class logits over the graph: edge-correlated output.
        let a = gcon_graph::normalize::row_stochastic_default(&graph);
        let onehot = Mat::from_fn(300, 3, |i, j| if labels[i] == j { 4.0 } else { 0.0 });
        let logits = a.spmm(&a.spmm(&onehot));
        let easy = posterior_similarity_attack_auc(&logits, &graph, 250, &mut rng);
        let hard = posterior_similarity_attack_auc_hard(&logits, &graph, 250, &mut rng);
        assert!(
            hard <= easy + 0.05,
            "hard-negative AUC {hard} should not exceed easy-negative {easy}"
        );
        assert!(easy > 0.6, "smoothed logits should leak: easy AUC {easy}");
    }

    #[test]
    fn hard_attack_is_chance_on_flat_outputs() {
        let mut rng = StdRng::seed_from_u64(96);
        let graph = gcon_graph::generators::erdos_renyi_gnm(200, 600, &mut rng);
        let logits = Mat::zeros(200, 3);
        let a = posterior_similarity_attack_auc_hard(&logits, &graph, 150, &mut rng);
        assert!((a - 0.5).abs() < 0.1, "hard attack AUC {a} should be ≈ 0.5");
    }

    #[test]
    fn attack_is_chance_on_uninformative_outputs() {
        let mut rng = StdRng::seed_from_u64(92);
        let graph = gcon_graph::generators::erdos_renyi_gnm(150, 450, &mut rng);
        let logits = Mat::zeros(150, 3); // uniform posteriors everywhere
        let a = posterior_similarity_attack_auc(&logits, &graph, 150, &mut rng);
        assert!((a - 0.5).abs() < 0.1, "attack AUC {a} should be ≈ 0.5");
    }
}
