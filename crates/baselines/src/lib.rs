#![warn(missing_docs)]
//! Baselines for the Figure 1 comparison — every competitor the paper
//! evaluates against, re-implemented from its source paper's algorithm
//! description:
//!
//! | Module | Method | Edge-DP strategy |
//! |---|---|---|
//! | [`gcn`] | GCN (non-DP) [Kipf & Welling] | none — the utility upper bound |
//! | [`mlp`] | MLP | uses no edges → ε-DP for every ε |
//! | [`dpsgd`] | DP-SGD [Abadi et al.] on a 1-layer GCN | per-example clipped gradients + Gaussian noise with the ×2 edge-sensitivity factor, RDP-composed over steps |
//! | [`dpgcn`] | DPGCN / LinkTeller [Wu et al.] | perturbs the adjacency matrix (LapGraph thresholding, EdgeRand randomized response) |
//! | [`lpgnet`] | LPGNet [Kolluri et al.] | stacked MLPs over Laplace-perturbed cluster-degree vectors |
//! | [`gap`] | GAP-EDP [Sajadmanesh et al.] | Gaussian noise on each of K aggregation hops, RDP-composed |
//! | [`progap`] | ProGAP-EDP [Sajadmanesh & Gatica-Perez] | progressive stages of noisy aggregation + per-stage MLPs |
//!
//! [`method`] exposes a single [`method::Baseline`] enum +
//! [`method::evaluate_baseline`] entry point used by the Figure 1 harness.

pub mod attack;
pub mod dpgcn;
pub mod dpsgd;
pub mod gap;
pub mod gcn;
pub mod lpgnet;
pub mod method;
pub mod mlp;
pub mod progap;

pub use method::{evaluate_baseline, Baseline};
