//! The MLP baseline: ignores the graph entirely, so it satisfies edge-DP at
//! *every* privacy budget (its Figure 1 curve is a flat line). It is the
//! floor that any useful edge-DP GNN must beat.

use gcon_linalg::Mat;
use gcon_nn::{Mlp, MlpConfig};
use rand::Rng;

/// Hyperparameters for the MLP baseline.
#[derive(Clone, Debug)]
pub struct MlpBaselineConfig {
    /// Hidden width.
    pub hidden: usize,
    /// Full-batch Adam epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
    /// Weight decay.
    pub weight_decay: f64,
}

impl Default for MlpBaselineConfig {
    fn default() -> Self {
        Self { hidden: 64, epochs: 200, lr: 0.01, weight_decay: 1e-5 }
    }
}

/// Trains a 2-layer MLP on the labeled nodes and predicts all nodes.
pub fn train_and_predict_mlp<R: Rng + ?Sized>(
    cfg: &MlpBaselineConfig,
    x: &Mat,
    labels: &[usize],
    train_idx: &[usize],
    num_classes: usize,
    rng: &mut R,
) -> Vec<usize> {
    let x_train = x.select_rows(train_idx);
    let y_train: Vec<usize> = train_idx.iter().map(|&i| labels[i]).collect();
    let mut mlp =
        Mlp::new(&MlpConfig::relu_classifier(vec![x.cols(), cfg.hidden, num_classes]), rng);
    mlp.train_cross_entropy(&x_train, &y_train, cfg.epochs, cfg.lr, cfg.weight_decay);
    mlp.predict(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcon_datasets::metrics::micro_f1;
    use gcon_datasets::two_moons_graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mlp_baseline_beats_chance_on_featureful_data() {
        let d = two_moons_graph(21);
        let mut rng = StdRng::seed_from_u64(22);
        let pred = train_and_predict_mlp(
            &MlpBaselineConfig::default(),
            &d.features,
            &d.labels,
            &d.split.train,
            d.num_classes,
            &mut rng,
        );
        let test_pred: Vec<usize> = d.split.test.iter().map(|&i| pred[i]).collect();
        let f1 = micro_f1(&test_pred, &d.test_labels());
        assert!(f1 > 0.7, "MLP test micro-F1 {f1}");
    }
}
