//! GAP-EDP (Sajadmanesh et al., USENIX Security 2023): aggregation
//! perturbation.
//!
//! Pipeline:
//! 1. **Encoder** (edge-free, no budget): an MLP trained on features/labels
//!    compresses nodes to `d₁` dimensions; rows are L2-normalized.
//! 2. **Perturbed aggregation module (PMA)**: `K` hops of *sum* aggregation
//!    over the raw adjacency. Each hop adds Gaussian noise and re-normalizes
//!    rows, so each hop's edge-level L2 sensitivity is `√2` for an undirected
//!    edge (removing `{u,v}` changes row `u` by the unit-norm `x_v` and row
//!    `v` by `x_u`). The `K` releases are composed with the RDP accountant
//!    and the noise multiplier is calibrated to the total `(ε, δ)`.
//! 3. **Classifier** (edge-free): an MLP over the concatenated cached
//!    aggregates `[X⁽⁰⁾ ‖ … ‖ X⁽ᴷ⁾]`.

use gcon_core::encoder::{EncoderConfig, FeatureEncoder};
use gcon_dp::mechanisms::add_gaussian_noise;
use gcon_dp::rdp::calibrate_noise_multiplier;
use gcon_graph::{Csr, Graph};
use gcon_linalg::Mat;
use gcon_nn::{Mlp, MlpConfig};
use rand::Rng;

/// Hyperparameters for GAP-EDP.
#[derive(Clone, Debug)]
pub struct GapConfig {
    /// Number of aggregation hops K.
    pub hops: usize,
    /// Encoder settings (public pre-training).
    pub encoder: EncoderConfig,
    /// Classifier hidden width.
    pub classifier_hidden: usize,
    /// Classifier epochs.
    pub classifier_epochs: usize,
    /// Classifier learning rate.
    pub lr: f64,
}

impl Default for GapConfig {
    fn default() -> Self {
        Self {
            hops: 2,
            encoder: EncoderConfig {
                d1: 16,
                hidden: 64,
                epochs: 150,
                lr: 0.01,
                weight_decay: 1e-5,
            },
            classifier_hidden: 64,
            classifier_epochs: 200,
            lr: 0.01,
        }
    }
}

/// Raw adjacency (ones, no self-loops) in CSR form for sum aggregation.
pub fn adjacency_csr(graph: &Graph) -> Csr {
    let n = graph.num_nodes();
    let rows: Vec<Vec<(u32, f64)>> =
        (0..n as u32).map(|u| graph.neighbors(u).iter().map(|&v| (v, 1.0)).collect()).collect();
    Csr::from_row_entries(n, n, rows)
}

/// Per-hop L2 sensitivity of sum aggregation over unit-norm rows under
/// edge-level neighboring graphs (undirected edge = two affected rows).
pub const GAP_HOP_SENSITIVITY: f64 = std::f64::consts::SQRT_2;

/// Runs the perturbed aggregation module, returning the `K+1` cached
/// normalized aggregates (hop 0 is the noiseless encoder output).
pub fn perturbed_aggregation<R: Rng + ?Sized>(
    graph: &Graph,
    x0: &Mat,
    hops: usize,
    sigma: f64,
    rng: &mut R,
) -> Vec<Mat> {
    let a = adjacency_csr(graph);
    let mut cached = Vec::with_capacity(hops + 1);
    let mut cur = x0.clone();
    cur.normalize_rows_l2();
    cached.push(cur);
    for _ in 0..hops {
        // Each hop's aggregate is written straight into its cache slot —
        // no intermediate clone per hop.
        let mut agg = Mat::default();
        a.spmm_into(cached.last().expect("hop 0 cached"), &mut agg);
        add_gaussian_noise(agg.as_mut_slice(), sigma, rng);
        agg.normalize_rows_l2();
        cached.push(agg);
    }
    cached
}

/// Trains GAP-EDP and returns predictions for every node.
#[allow(clippy::too_many_arguments)] // a training entry point takes the full dataset tuple
pub fn train_and_predict_gap<R: Rng + ?Sized>(
    cfg: &GapConfig,
    graph: &Graph,
    x: &Mat,
    labels: &[usize],
    train_idx: &[usize],
    num_classes: usize,
    eps: f64,
    delta: f64,
    rng: &mut R,
) -> Vec<usize> {
    let y_train: Vec<usize> = train_idx.iter().map(|&i| labels[i]).collect();

    // 1. Public encoder.
    let encoder =
        FeatureEncoder::train(&cfg.encoder, &x.select_rows(train_idx), &y_train, num_classes, rng);
    let x0 = encoder.encode(x);

    // 2. PMA with RDP-calibrated noise over K releases.
    let noise_mult = calibrate_noise_multiplier(1.0, cfg.hops, eps, delta);
    let sigma = noise_mult * GAP_HOP_SENSITIVITY;
    let cached = perturbed_aggregation(graph, &x0, cfg.hops, sigma, rng);

    // 3. Edge-free classifier on the concatenated aggregates.
    let refs: Vec<&Mat> = cached.iter().collect();
    let features = Mat::hcat_all(&refs);
    let mut clf = Mlp::new(
        &MlpConfig::relu_classifier(vec![features.cols(), cfg.classifier_hidden, num_classes]),
        rng,
    );
    clf.train_cross_entropy(
        &features.select_rows(train_idx),
        &y_train,
        cfg.classifier_epochs,
        cfg.lr,
        1e-5,
    );
    clf.predict(&features)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcon_datasets::metrics::micro_f1;
    use gcon_datasets::two_moons_graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn adjacency_csr_matches_graph() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let a = adjacency_csr(&g);
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(1, 0), 1.0);
        assert_eq!(a.get(0, 2), 0.0);
        assert_eq!(a.get(0, 0), 0.0); // no self-loops
    }

    #[test]
    fn aggregation_cache_has_hops_plus_one_entries() {
        let d = two_moons_graph(51);
        let mut rng = StdRng::seed_from_u64(52);
        let cached = perturbed_aggregation(&d.graph, &d.features, 3, 0.1, &mut rng);
        assert_eq!(cached.len(), 4);
        for m in &cached {
            assert_eq!(m.shape(), (d.num_nodes(), d.features.cols()));
            // Rows re-normalized after every hop.
            for norm in gcon_linalg::reduce::row_norms2(m) {
                assert!(norm <= 1.0 + 1e-9);
            }
        }
    }

    #[test]
    fn zero_noise_aggregation_is_deterministic_smoothing() {
        let d = two_moons_graph(53);
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(2);
        let a = perturbed_aggregation(&d.graph, &d.features, 2, 0.0, &mut r1);
        let b = perturbed_aggregation(&d.graph, &d.features, 2, 0.0, &mut r2);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.as_slice(), y.as_slice());
        }
    }

    #[test]
    fn gap_runs_and_beats_chance_at_generous_budget() {
        let d = two_moons_graph(54);
        let mut rng = StdRng::seed_from_u64(55);
        let cfg = GapConfig {
            encoder: EncoderConfig { epochs: 80, ..Default::default() },
            classifier_epochs: 120,
            ..Default::default()
        };
        let pred = train_and_predict_gap(
            &cfg,
            &d.graph,
            &d.features,
            &d.labels,
            &d.split.train,
            d.num_classes,
            4.0,
            1e-3,
            &mut rng,
        );
        let test_pred: Vec<usize> = d.split.test.iter().map(|&i| pred[i]).collect();
        let f1 = micro_f1(&test_pred, &d.test_labels());
        assert!(f1 > 0.6, "GAP test micro-F1 {f1}");
    }
}
