//! The non-private 2-layer GCN of Kipf & Welling — the utility upper bound
//! ("GCN (non-DP)") in Figure 1, and the network DPGCN trains on its
//! perturbed graph.
//!
//! Model: `logits = Â · ReLU(Â X W₁ + b₁) · W₂ + b₂` with the symmetric
//! normalization `Â = D^{-1/2}(A+I)D^{-1/2}`. Gradients are hand-derived;
//! the key identity is that for symmetric `Â`, `∂(Â M)/∂M` backpropagates as
//! another multiplication by `Â`.

use gcon_graph::normalize::symmetric;
use gcon_graph::{Csr, Graph};
use gcon_linalg::{reduce, Mat};
use gcon_nn::{Activation, Adam, Linear, Optimizer};
use rand::Rng;

/// Hyperparameters for the GCN baseline.
#[derive(Clone, Debug)]
pub struct GcnConfig {
    /// Hidden width.
    pub hidden: usize,
    /// Full-batch Adam epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
    /// Weight decay on both weight matrices.
    pub weight_decay: f64,
}

impl Default for GcnConfig {
    fn default() -> Self {
        Self { hidden: 32, epochs: 150, lr: 0.01, weight_decay: 5e-4 }
    }
}

/// A trained 2-layer GCN.
#[derive(Clone, Debug)]
pub struct Gcn {
    w1: Linear,
    w2: Linear,
}

impl Gcn {
    /// Forward pass on a given normalized adjacency.
    pub fn forward(&self, a_hat: &Csr, x: &Mat) -> Mat {
        let ax = a_hat.spmm(x);
        let mut h1 = self.w1.forward(&ax);
        Activation::Relu.apply(&mut h1);
        let ah = a_hat.spmm(&h1);
        self.w2.forward(&ah)
    }

    /// Hard predictions for all nodes.
    pub fn predict(&self, a_hat: &Csr, x: &Mat) -> Vec<usize> {
        reduce::row_argmax(&self.forward(a_hat, x))
    }
}

/// Cross-entropy restricted to `idx` rows, returning the gradient scattered
/// back to the full logit matrix (zero rows elsewhere). Reference form of
/// [`masked_cross_entropy_into`], kept for the unit tests.
#[cfg(test)]
fn masked_cross_entropy(logits: &Mat, labels: &[usize], idx: &[usize]) -> (f64, Mat) {
    let sel_labels: Vec<usize> = idx.iter().map(|&i| labels[i]).collect();
    let mut scratch = MaskedCeScratch::default();
    let mut grad = Mat::default();
    let loss = masked_cross_entropy_into(logits, &sel_labels, idx, &mut scratch, &mut grad);
    (loss, grad)
}

/// Reusable buffers for [`masked_cross_entropy_into`].
#[derive(Default)]
struct MaskedCeScratch {
    sel: Mat,
    grad_sel: Mat,
}

/// [`masked_cross_entropy`] with pre-gathered labels and caller-owned
/// buffers — the epoch-loop form (no per-iteration allocation).
fn masked_cross_entropy_into(
    logits: &Mat,
    sel_labels: &[usize],
    idx: &[usize],
    scratch: &mut MaskedCeScratch,
    grad: &mut Mat,
) -> f64 {
    logits.select_rows_into(idx, &mut scratch.sel);
    let loss =
        gcon_nn::loss::softmax_cross_entropy_into(&scratch.sel, sel_labels, &mut scratch.grad_sel);
    grad.reset_to_zeros(logits.rows(), logits.cols());
    for (r, &i) in idx.iter().enumerate() {
        grad.row_mut(i).copy_from_slice(scratch.grad_sel.row(r));
    }
    loss
}

/// Trains the GCN with full-batch Adam on the labeled nodes.
pub fn train_gcn<R: Rng + ?Sized>(
    cfg: &GcnConfig,
    graph: &Graph,
    x: &Mat,
    labels: &[usize],
    train_idx: &[usize],
    num_classes: usize,
    rng: &mut R,
) -> Gcn {
    let a_hat = symmetric(graph);
    train_gcn_on_adjacency(cfg, &a_hat, x, labels, train_idx, num_classes, rng)
}

/// Trains on an explicit (possibly perturbed) normalized adjacency — the
/// entry point DPGCN uses after its DP graph perturbation.
pub fn train_gcn_on_adjacency<R: Rng + ?Sized>(
    cfg: &GcnConfig,
    a_hat: &Csr,
    x: &Mat,
    labels: &[usize],
    train_idx: &[usize],
    num_classes: usize,
    rng: &mut R,
) -> Gcn {
    assert!(!train_idx.is_empty(), "train_gcn: empty training set");
    let d0 = x.cols();
    let mut model = Gcn {
        w1: Linear::kaiming(d0, cfg.hidden, rng),
        w2: Linear::xavier(cfg.hidden, num_classes, rng),
    };
    let mut opt = Adam::new(cfg.lr);
    // Â X and the gathered labels are constant across epochs — hoist them,
    // and keep every forward/backward buffer outside the loop so the
    // steady-state epoch performs no matrix allocation.
    let ax = a_hat.spmm(x);
    let sel_labels: Vec<usize> = train_idx.iter().map(|&i| labels[i]).collect();
    let mut h1 = Mat::default();
    let mut ah = Mat::default();
    let mut logits = Mat::default();
    let mut ce_scratch = MaskedCeScratch::default();
    let mut dlogits = Mat::default();
    let mut d_ah = Mat::default();
    let mut dh1 = Mat::default();
    let mut g1 = gcon_nn::LinearGrads::zeros(0, 0);
    let mut g2 = gcon_nn::LinearGrads::zeros(0, 0);
    for _ in 0..cfg.epochs {
        // Forward with caches.
        model.w1.forward_into(&ax, &mut h1);
        Activation::Relu.apply(&mut h1);
        a_hat.spmm_into(&h1, &mut ah);
        model.w2.forward_into(&ah, &mut logits);
        let _ = masked_cross_entropy_into(
            &logits,
            &sel_labels,
            train_idx,
            &mut ce_scratch,
            &mut dlogits,
        );
        // Backward.
        model.w2.backward_into(&ah, &dlogits, &mut d_ah, &mut g2);
        a_hat.spmm_into(&d_ah, &mut dh1); // Âᵀ = Â (symmetric normalization)
        Activation::Relu.backprop_inplace(&h1, &mut dh1);
        // Layer-0 input gradient is never read (ax is the fixed input):
        // weights-only backward skips that n × d_in GEMM.
        model.w1.backward_weights_into(&ax, &dh1, &mut g1);
        // Update with weight decay on W only (gradients are scratch, decay
        // is added in place).
        opt.begin_step();
        gcon_linalg::ops::add_scaled_assign(&mut g1.dw, cfg.weight_decay, &model.w1.w);
        opt.update(0, model.w1.w.as_mut_slice(), g1.dw.as_slice());
        opt.update(1, &mut model.w1.b, &g1.db);
        gcon_linalg::ops::add_scaled_assign(&mut g2.dw, cfg.weight_decay, &model.w2.w);
        opt.update(2, model.w2.w.as_mut_slice(), g2.dw.as_slice());
        opt.update(3, &mut model.w2.b, &g2.db);
    }
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcon_datasets::metrics::micro_f1;
    use gcon_datasets::two_moons_graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gcn_learns_homophilous_toy_dataset() {
        let d = two_moons_graph(11);
        let mut rng = StdRng::seed_from_u64(12);
        let cfg = GcnConfig { hidden: 16, epochs: 120, ..Default::default() };
        let model = train_gcn(
            &cfg,
            &d.graph,
            &d.features,
            &d.labels,
            &d.split.train,
            d.num_classes,
            &mut rng,
        );
        let a_hat = symmetric(&d.graph);
        let pred = model.predict(&a_hat, &d.features);
        let test_pred: Vec<usize> = d.split.test.iter().map(|&i| pred[i]).collect();
        let f1 = micro_f1(&test_pred, &d.test_labels());
        assert!(f1 > 0.8, "GCN test micro-F1 {f1}");
    }

    #[test]
    fn masked_ce_only_grads_selected_rows() {
        let logits = Mat::from_rows(&[&[1.0, -1.0], &[0.3, 0.4], &[2.0, 0.0]]);
        let (_, grad) = masked_cross_entropy(&logits, &[0, 1, 1], &[0, 2]);
        assert_eq!(grad.row(1), &[0.0, 0.0]);
        assert!(grad.row(0).iter().any(|&v| v != 0.0));
        assert!(grad.row(2).iter().any(|&v| v != 0.0));
    }

    #[test]
    fn forward_shapes() {
        let d = two_moons_graph(13);
        let mut rng = StdRng::seed_from_u64(14);
        let model = Gcn {
            w1: Linear::kaiming(d.features.cols(), 8, &mut rng),
            w2: Linear::xavier(8, 2, &mut rng),
        };
        let a_hat = symmetric(&d.graph);
        let out = model.forward(&a_hat, &d.features);
        assert_eq!(out.shape(), (d.num_nodes(), 2));
        assert!(out.is_finite());
    }
}
