//! DP-SGD (Abadi et al., CCS 2016) adapted to edge-DP GCN training — the
//! gradient-perturbation baseline of Figure 1.
//!
//! The model is the shallowest GCN that uses edges at all — a single layer
//! `logits = Ã X Θ` — because, as Sec. I of the GCON paper explains, each
//! extra layer multiplies DP-SGD's edge sensitivity by another factor of the
//! maximum degree. Even at one layer, adding/removing an edge changes the
//! aggregated inputs `z_u, z_v` of *two* training examples, so the clipped
//! gradient sum moves by up to `2 · 2τ` in the worst case; following the
//! paper's "at least 2τ" accounting we charge sensitivity `2τ` (the
//! comparison is thus generous to DP-SGD). Full-batch steps compose as plain
//! Gaussian mechanisms through the RDP accountant.

use gcon_dp::mechanisms::add_gaussian_noise;
use gcon_dp::rdp::calibrate_noise_multiplier;
use gcon_graph::normalize::row_stochastic_default;
use gcon_graph::Graph;
use gcon_linalg::{reduce, vecops, Mat};
use rand::Rng;

/// Hyperparameters for the DP-SGD baseline.
#[derive(Clone, Debug)]
pub struct DpSgdConfig {
    /// Number of noisy gradient steps (each is one Gaussian release in the
    /// accountant; subsampled when `batch_frac < 1`).
    pub steps: usize,
    /// Per-example gradient clipping norm τ.
    pub clip: f64,
    /// Learning rate.
    pub lr: f64,
    /// Edge-sensitivity factor: how many clipped gradients one edge can
    /// touch (2 for the 1-layer GCN).
    pub sensitivity_factor: f64,
    /// Poisson sampling rate q per step. 1.0 = full batch (plain Gaussian
    /// composition); < 1 engages the subsampled-Gaussian amplification of
    /// the RDP accountant, as in the original DP-SGD recipe.
    pub batch_frac: f64,
}

impl Default for DpSgdConfig {
    fn default() -> Self {
        Self { steps: 40, clip: 1.0, lr: 0.5, sensitivity_factor: 2.0, batch_frac: 1.0 }
    }
}

/// Trains the 1-layer GCN with DP-SGD; returns predictions for every node.
#[allow(clippy::too_many_arguments)] // a training entry point takes the full dataset tuple
pub fn train_and_predict_dpsgd<R: Rng + ?Sized>(
    cfg: &DpSgdConfig,
    graph: &Graph,
    x: &Mat,
    labels: &[usize],
    train_idx: &[usize],
    num_classes: usize,
    eps: f64,
    delta: f64,
    rng: &mut R,
) -> Vec<usize> {
    assert!(!train_idx.is_empty());
    let n1 = train_idx.len() as f64;
    let a_tilde = row_stochastic_default(graph);
    // Pre-aggregate once: z = Ã X with unit-normalized feature rows so the
    // per-example inputs are bounded.
    let mut xn = x.clone();
    xn.normalize_rows_l2();
    let z_all = a_tilde.spmm(&xn);
    let z = z_all.select_rows(train_idx);
    let y: Vec<usize> = train_idx.iter().map(|&i| labels[i]).collect();

    assert!(cfg.batch_frac > 0.0 && cfg.batch_frac <= 1.0, "batch_frac in (0, 1]");
    let noise_mult = calibrate_noise_multiplier(cfg.batch_frac, cfg.steps, eps, delta);
    let sigma = noise_mult * cfg.sensitivity_factor * cfg.clip;

    let d0 = x.cols();
    let mut theta = Mat::zeros(d0, num_classes);
    let mut probs = vec![0.0; num_classes];
    for _ in 0..cfg.steps {
        // Per-example clipped gradient sum for softmax CE on zᵢΘ, over a
        // Poisson-sampled batch when batch_frac < 1.
        let scores = gcon_linalg::ops::matmul(&z, &theta);
        let mut grad_sum = Mat::zeros(d0, num_classes);
        for (i, &yi) in y.iter().enumerate() {
            if cfg.batch_frac < 1.0 && rng.gen::<f64>() >= cfg.batch_frac {
                continue;
            }
            vecops::softmax_into(scores.row(i), &mut probs);
            probs[yi] -= 1.0;
            // gᵢ = zᵢ ⊗ (p − e_y); ‖gᵢ‖_F = ‖zᵢ‖·‖p − e_y‖.
            let zi = z.row(i);
            let gnorm = vecops::norm2(zi) * vecops::norm2(&probs);
            let scale_factor = if gnorm > cfg.clip { cfg.clip / gnorm } else { 1.0 };
            for (k, &zv) in zi.iter().enumerate() {
                if zv == 0.0 {
                    continue;
                }
                let row = grad_sum.row_mut(k);
                for (g, &p) in row.iter_mut().zip(probs.iter()) {
                    *g += scale_factor * zv * p;
                }
            }
        }
        add_gaussian_noise(grad_sum.as_mut_slice(), sigma, rng);
        // θ ← θ − lr · noisySum / E[batch size]
        let denom = n1 * cfg.batch_frac;
        gcon_linalg::ops::add_scaled_assign(&mut theta, -cfg.lr / denom, &grad_sum);
    }
    let logits = gcon_linalg::ops::matmul(&z_all, &theta);
    reduce::row_argmax(&logits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcon_datasets::metrics::micro_f1;
    use gcon_datasets::two_moons_graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(eps: f64, seed: u64) -> f64 {
        let d = two_moons_graph(71);
        let mut rng = StdRng::seed_from_u64(seed);
        let pred = train_and_predict_dpsgd(
            &DpSgdConfig::default(),
            &d.graph,
            &d.features,
            &d.labels,
            &d.split.train,
            d.num_classes,
            eps,
            1e-3,
            &mut rng,
        );
        let test_pred: Vec<usize> = d.split.test.iter().map(|&i| pred[i]).collect();
        micro_f1(&test_pred, &d.test_labels())
    }

    #[test]
    fn dpsgd_learns_at_generous_budget() {
        let f1 = run(8.0, 72);
        assert!(f1 > 0.6, "DP-SGD micro-F1 at ε=8: {f1}");
    }

    #[test]
    fn subsampled_variant_runs_and_learns() {
        let d = two_moons_graph(71);
        let mut rng = StdRng::seed_from_u64(73);
        let cfg = DpSgdConfig { batch_frac: 0.25, steps: 120, ..Default::default() };
        let pred = train_and_predict_dpsgd(
            &cfg,
            &d.graph,
            &d.features,
            &d.labels,
            &d.split.train,
            d.num_classes,
            8.0,
            1e-3,
            &mut rng,
        );
        let test_pred: Vec<usize> = d.split.test.iter().map(|&i| pred[i]).collect();
        let f1 = micro_f1(&test_pred, &d.test_labels());
        assert!(f1 > 0.55, "subsampled DP-SGD micro-F1 {f1}");
    }

    #[test]
    fn dpsgd_degrades_at_tight_budget() {
        // Averaged over seeds, tight budgets should hurt relative to ε=8.
        let tight: f64 = (0..3).map(|s| run(0.05, 100 + s)).sum::<f64>() / 3.0;
        let loose: f64 = (0..3).map(|s| run(8.0, 200 + s)).sum::<f64>() / 3.0;
        assert!(loose > tight - 0.05, "expected ε=8 ({loose}) ≥ ε=0.05 ({tight}) − slack");
    }
}
