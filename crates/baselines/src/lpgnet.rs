//! LPGNet (Kolluri et al., CCS 2022): link-private graph networks built from
//! stacked MLPs.
//!
//! Instead of perturbing the full adjacency matrix, LPGNet compresses the
//! graph into per-node *cluster degree vectors*: node v's vector counts its
//! edges into each predicted label cluster (`c` dimensions). One edge changes
//! two entries by 1, so the L1 sensitivity per stage is 2, and the vectors
//! are released with `Lap(2/ε_t)` noise. Stages iterate: an edge-free MLP
//! predicts clusters, the noisy degree vectors are appended to the features,
//! and the next MLP refines the prediction. The total budget ε is split
//! evenly over the stages.

use gcon_graph::Graph;
use gcon_linalg::Mat;
use gcon_nn::{Mlp, MlpConfig};
use rand::Rng;

/// Hyperparameters for LPGNet.
#[derive(Clone, Debug)]
pub struct LpgnetConfig {
    /// Number of degree-vector refinement stages (the paper uses 1–2).
    pub stages: usize,
    /// Hidden width of each stage MLP.
    pub hidden: usize,
    /// Epochs per stage.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
    /// Weight decay.
    pub weight_decay: f64,
}

impl Default for LpgnetConfig {
    fn default() -> Self {
        Self { stages: 2, hidden: 64, epochs: 150, lr: 0.01, weight_decay: 1e-5 }
    }
}

/// Per-node cluster degree vectors: `D[v][k] = |{u ∈ N(v) : cluster(u) = k}|`.
pub fn cluster_degree_vectors(graph: &Graph, clusters: &[usize], num_classes: usize) -> Mat {
    assert_eq!(clusters.len(), graph.num_nodes());
    let mut d = Mat::zeros(graph.num_nodes(), num_classes);
    for v in 0..graph.num_nodes() as u32 {
        let row = d.row_mut(v as usize);
        for &u in graph.neighbors(v) {
            row[clusters[u as usize]] += 1.0;
        }
    }
    d
}

/// Trains LPGNet and returns predictions for every node.
#[allow(clippy::too_many_arguments)] // a training entry point takes the full dataset tuple
pub fn train_and_predict_lpgnet<R: Rng + ?Sized>(
    cfg: &LpgnetConfig,
    graph: &Graph,
    x: &Mat,
    labels: &[usize],
    train_idx: &[usize],
    num_classes: usize,
    eps: f64,
    rng: &mut R,
) -> Vec<usize> {
    assert!(cfg.stages >= 1);
    assert!(eps > 0.0);
    let y_train: Vec<usize> = train_idx.iter().map(|&i| labels[i]).collect();
    let eps_stage = eps / cfg.stages as f64;

    // Stage 0: edge-free MLP gives the initial clusters (free under edge DP).
    let mut mlp =
        Mlp::new(&MlpConfig::relu_classifier(vec![x.cols(), cfg.hidden, num_classes]), rng);
    mlp.train_cross_entropy(
        &x.select_rows(train_idx),
        &y_train,
        cfg.epochs,
        cfg.lr,
        cfg.weight_decay,
    );
    let mut clusters = mlp.predict(x);

    for _ in 0..cfg.stages {
        // Noisy degree vectors (L1 sensitivity 2 per stage).
        let mut deg = cluster_degree_vectors(graph, &clusters, num_classes);
        gcon_dp::mechanisms::laplace_mechanism(deg.as_mut_slice(), 2.0, eps_stage, rng);
        // Row-normalize the noisy vectors so the MLP sees bounded inputs.
        deg.normalize_rows_l2();
        let aug = x.hcat(&deg);
        let mut stage_mlp =
            Mlp::new(&MlpConfig::relu_classifier(vec![aug.cols(), cfg.hidden, num_classes]), rng);
        stage_mlp.train_cross_entropy(
            &aug.select_rows(train_idx),
            &y_train,
            cfg.epochs,
            cfg.lr,
            cfg.weight_decay,
        );
        clusters = stage_mlp.predict(&aug);
    }
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcon_datasets::metrics::micro_f1;
    use gcon_datasets::two_moons_graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn degree_vectors_count_neighbors() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let clusters = vec![0, 0, 1, 1];
        let d = cluster_degree_vectors(&g, &clusters, 2);
        assert_eq!(d.row(0), &[1.0, 2.0]);
        assert_eq!(d.row(1), &[1.0, 0.0]);
        assert_eq!(d.row(2), &[1.0, 0.0]);
    }

    #[test]
    fn lpgnet_runs_and_beats_chance() {
        let d = two_moons_graph(41);
        let mut rng = StdRng::seed_from_u64(42);
        let cfg = LpgnetConfig { epochs: 80, ..Default::default() };
        let pred = train_and_predict_lpgnet(
            &cfg,
            &d.graph,
            &d.features,
            &d.labels,
            &d.split.train,
            d.num_classes,
            2.0,
            &mut rng,
        );
        let test_pred: Vec<usize> = d.split.test.iter().map(|&i| pred[i]).collect();
        let f1 = micro_f1(&test_pred, &d.test_labels());
        assert!(f1 > 0.6, "LPGNet test micro-F1 {f1}");
    }
}
