//! DPGCN — the LinkTeller defense baselines (Wu et al., IEEE S&P 2022):
//! perturb the adjacency matrix under edge-DP, then train an ordinary GCN on
//! the perturbed graph.
//!
//! Two mechanisms:
//!
//! - **EdgeRand**: randomized response on every potential edge (ε-DP). The
//!   expected number of flipped non-edges is `(1 − e^ε/(1+e^ε)) · N₀`, which
//!   densifies large graphs catastrophically — exactly the failure mode the
//!   GCON paper describes.
//! - **LapGraph**: add `Lap(1/ε₁)` to every adjacency cell, privately
//!   estimate the edge count with ε₂ = 0.1ε, and keep the top-|Ẽ| cells.
//!
//! Both are implemented by *sampling the mechanism's outcome* instead of
//! materializing the dense `n × n` matrix: the survivor count among the N₁
//! true edges and the N₀ non-edges are Binomial draws with the exact
//! per-cell probabilities, and surviving non-edges are placed uniformly.
//! This is distribution-identical to the naive implementation (cell values
//! are i.i.d. given the threshold; ties have measure zero) and runs in
//! O(|E| + kept) memory.

use crate::gcn::{train_gcn_on_adjacency, Gcn, GcnConfig};
use gcon_graph::normalize::symmetric;
use gcon_graph::Graph;
use gcon_linalg::Mat;
use rand::Rng;

/// Which LinkTeller perturbation to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DpgcnMechanism {
    /// Randomized response on every cell. Only viable for small graphs.
    EdgeRand,
    /// Laplace + top-k thresholding. The practical variant.
    LapGraph,
}

/// Samples Binomial(n, p) using the right tool per regime: exact Bernoulli
/// loop for small n, Poisson limit for rare events, normal approximation for
/// the bulk (n here reaches ~10⁸ cell pairs).
pub fn sample_binomial<R: Rng + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    assert!((0.0..=1.0).contains(&p), "sample_binomial: p out of range");
    if n == 0 || p == 0.0 {
        return 0;
    }
    if p == 1.0 {
        return n;
    }
    let nf = n as f64;
    let mean = nf * p;
    let var = nf * p * (1.0 - p);
    if n <= 1024 {
        return (0..n).filter(|_| rng.gen::<f64>() < p).count() as u64;
    }
    if mean <= 30.0 {
        return sample_poisson(mean, rng).min(n);
    }
    if nf - mean <= 30.0 {
        return n - sample_poisson(nf - mean, rng).min(n);
    }
    let z = gcon_linalg::vecops::sample_std_normal(rng);
    let draw = (mean + z * var.sqrt()).round();
    draw.clamp(0.0, nf) as u64
}

/// Knuth-style Poisson sampler in log space (stable for λ up to ~700; we
/// only call it for λ ≤ 30).
fn sample_poisson<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> u64 {
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k; // overflow guard; unreachable for λ ≤ 30
        }
    }
}

/// Chooses `k` distinct random non-edges (u < v, not in `g`).
fn sample_non_edges<R: Rng + ?Sized>(g: &Graph, k: u64, rng: &mut R) -> Vec<(u32, u32)> {
    let n = g.num_nodes() as u32;
    let mut out = Vec::with_capacity(k as usize);
    let mut seen = std::collections::HashSet::new();
    let mut attempts = 0u64;
    let budget = k.saturating_mul(50) + 1000;
    while (out.len() as u64) < k && attempts < budget {
        attempts += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if g.has_edge(key.0, key.1) || !seen.insert(key) {
            continue;
        }
        out.push(key);
    }
    out
}

/// EdgeRand: randomized response with budget ε on each of the `n(n−1)/2`
/// unordered cells.
pub fn perturb_edgerand<R: Rng + ?Sized>(g: &Graph, eps: f64, rng: &mut R) -> Graph {
    let keep = gcon_dp::mechanisms::randomized_response_keep_prob(eps);
    let n = g.num_nodes() as u64;
    let n_pairs = n * (n - 1) / 2;
    let n1 = g.num_edges() as u64;
    let n0 = n_pairs - n1;

    let mut out = Graph::empty(g.num_nodes());
    // Survivors among true edges.
    let kept_ones = sample_binomial(n1, keep, rng);
    let edges = g.edges();
    for &(u, v) in choose_k(&edges, kept_ones as usize, rng).iter() {
        out.add_edge(u, v);
    }
    // Flipped non-edges.
    let flipped_zeros = sample_binomial(n0, 1.0 - keep, rng);
    for (u, v) in sample_non_edges(g, flipped_zeros, rng) {
        out.add_edge(u, v);
    }
    out
}

/// LapGraph: Laplace perturbation + private top-|Ẽ| thresholding.
/// Splits the budget 0.9/0.1 between cells and the edge-count estimate.
pub fn perturb_lapgraph<R: Rng + ?Sized>(g: &Graph, eps: f64, rng: &mut R) -> Graph {
    assert!(eps > 0.0);
    let eps_cells = 0.9 * eps;
    let eps_count = 0.1 * eps;
    let n = g.num_nodes() as u64;
    let n_pairs = (n * (n - 1) / 2) as f64;
    let n1 = g.num_edges() as f64;
    let n0 = n_pairs - n1;

    // Private edge count (sensitivity 1).
    let noisy_count =
        (n1 + gcon_dp::mechanisms::sample_laplace(1.0 / eps_count, rng)).clamp(0.0, n_pairs);

    // P(cell survives threshold T): Laplace tail probabilities.
    let p_zero = |t: f64| -> f64 {
        // cell value = Lap(1/ε); P(Lap > t) for t ≥ 0.
        0.5 * (-eps_cells * t.max(0.0)).exp()
    };
    let p_one = |t: f64| -> f64 {
        // cell value = 1 + Lap(1/ε).
        if t <= 1.0 {
            1.0 - 0.5 * (-eps_cells * (1.0 - t)).exp()
        } else {
            0.5 * (-eps_cells * (t - 1.0)).exp()
        }
    };
    let expected = |t: f64| n1 * p_one(t) + n0 * p_zero(t);

    // Bisection for the threshold hitting the private count.
    let mut lo = 0.0;
    let mut hi = 1.0 + 60.0 / eps_cells;
    if expected(lo) <= noisy_count {
        // Even threshold 0 keeps too few (tiny target) — keep everything at 0.
        hi = 0.0;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if expected(mid) > noisy_count {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let t = 0.5 * (lo + hi);

    let mut out = Graph::empty(g.num_nodes());
    let kept_ones = sample_binomial(g.num_edges() as u64, p_one(t), rng);
    let edges = g.edges();
    for &(u, v) in choose_k(&edges, kept_ones as usize, rng).iter() {
        out.add_edge(u, v);
    }
    let kept_zeros = sample_binomial(n0 as u64, p_zero(t), rng);
    for (u, v) in sample_non_edges(g, kept_zeros, rng) {
        out.add_edge(u, v);
    }
    out
}

/// Uniformly chooses `k` items (partial Fisher–Yates).
fn choose_k<T: Copy, R: Rng + ?Sized>(items: &[T], k: usize, rng: &mut R) -> Vec<T> {
    let mut pool: Vec<T> = items.to_vec();
    let k = k.min(pool.len());
    for i in 0..k {
        let j = rng.gen_range(i..pool.len());
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

/// The full DPGCN baseline: perturb, then train a GCN on the noisy graph.
#[allow(clippy::too_many_arguments)] // a training entry point takes the full dataset tuple
pub fn train_dpgcn<R: Rng + ?Sized>(
    cfg: &GcnConfig,
    mechanism: DpgcnMechanism,
    graph: &Graph,
    x: &Mat,
    labels: &[usize],
    train_idx: &[usize],
    num_classes: usize,
    eps: f64,
    rng: &mut R,
) -> (Gcn, Graph) {
    let noisy = match mechanism {
        DpgcnMechanism::EdgeRand => perturb_edgerand(graph, eps, rng),
        DpgcnMechanism::LapGraph => perturb_lapgraph(graph, eps, rng),
    };
    let a_hat = symmetric(&noisy);
    let model = train_gcn_on_adjacency(cfg, &a_hat, x, labels, train_idx, num_classes, rng);
    (model, noisy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn binomial_small_exact_regime() {
        let mut rng = StdRng::seed_from_u64(31);
        let draws: Vec<u64> = (0..2000).map(|_| sample_binomial(100, 0.3, &mut rng)).collect();
        let mean = draws.iter().sum::<u64>() as f64 / draws.len() as f64;
        assert!((mean - 30.0).abs() < 0.7, "mean {mean}");
    }

    #[test]
    fn binomial_normal_regime() {
        let mut rng = StdRng::seed_from_u64(32);
        let n = 1_000_000u64;
        let p = 0.25;
        let draws: Vec<u64> = (0..500).map(|_| sample_binomial(n, p, &mut rng)).collect();
        let mean = draws.iter().sum::<u64>() as f64 / draws.len() as f64;
        assert!((mean / (n as f64 * p) - 1.0).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn binomial_poisson_regime() {
        let mut rng = StdRng::seed_from_u64(33);
        let n = 10_000_000u64;
        let p = 1e-6; // mean 10
        let draws: Vec<u64> = (0..3000).map(|_| sample_binomial(n, p, &mut rng)).collect();
        let mean = draws.iter().sum::<u64>() as f64 / draws.len() as f64;
        assert!((mean - 10.0).abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn edgerand_low_eps_destroys_structure() {
        let mut rng = StdRng::seed_from_u64(34);
        let g = gcon_graph::generators::erdos_renyi_gnm(60, 120, &mut rng);
        let noisy = perturb_edgerand(&g, 0.1, &mut rng);
        // At ε = 0.1 roughly half of all pairs flip: the output is dense noise.
        let n_pairs = 60 * 59 / 2;
        assert!(noisy.num_edges() > n_pairs / 3, "edges {}", noisy.num_edges());
    }

    #[test]
    fn edgerand_high_eps_preserves_structure() {
        let mut rng = StdRng::seed_from_u64(35);
        let g = gcon_graph::generators::erdos_renyi_gnm(60, 120, &mut rng);
        let noisy = perturb_edgerand(&g, 8.0, &mut rng);
        let kept = g.edges().iter().filter(|&&(u, v)| noisy.has_edge(u, v)).count();
        assert!(kept as f64 > 0.95 * g.num_edges() as f64, "kept {kept}");
    }

    #[test]
    fn lapgraph_keeps_edge_count_in_ballpark() {
        let mut rng = StdRng::seed_from_u64(36);
        let g = gcon_graph::generators::erdos_renyi_gnm(300, 900, &mut rng);
        let noisy = perturb_lapgraph(&g, 2.0, &mut rng);
        let m = noisy.num_edges() as f64;
        assert!(m > 300.0 && m < 2700.0, "perturbed edge count {m} wildly off from 900");
    }

    #[test]
    fn lapgraph_high_eps_recovers_mostly_true_edges() {
        let mut rng = StdRng::seed_from_u64(37);
        let g = gcon_graph::generators::erdos_renyi_gnm(200, 600, &mut rng);
        let noisy = perturb_lapgraph(&g, 8.0, &mut rng);
        let kept = g.edges().iter().filter(|&&(u, v)| noisy.has_edge(u, v)).count();
        assert!(
            kept as f64 > 0.8 * g.num_edges() as f64,
            "only {kept} of {} true edges survive at ε=8",
            g.num_edges()
        );
    }

    #[test]
    fn choose_k_uniform_subset() {
        let mut rng = StdRng::seed_from_u64(38);
        let items: Vec<u32> = (0..10).collect();
        let picked = choose_k(&items, 4, &mut rng);
        assert_eq!(picked.len(), 4);
        let set: std::collections::HashSet<u32> = picked.into_iter().collect();
        assert_eq!(set.len(), 4);
    }
}
