//! Uniform entry point for running any Figure 1 competitor on a dataset.

use crate::dpgcn::{train_dpgcn, DpgcnMechanism};
use crate::dpsgd::{train_and_predict_dpsgd, DpSgdConfig};
use crate::gap::{train_and_predict_gap, GapConfig};
use crate::gcn::{train_gcn, GcnConfig};
use crate::lpgnet::{train_and_predict_lpgnet, LpgnetConfig};
use crate::mlp::{train_and_predict_mlp, MlpBaselineConfig};
use crate::progap::{train_and_predict_progap, ProgapConfig};
use gcon_datasets::metrics::micro_f1;
use gcon_datasets::Dataset;
use gcon_graph::normalize::symmetric;
use rand::Rng;

/// The competitors of Figure 1 (GCON itself lives in `gcon-core`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Baseline {
    /// Non-private 2-layer GCN — the utility upper bound.
    GcnNonDp,
    /// Edge-free MLP — trivially edge-DP at any ε.
    Mlp,
    /// Gradient perturbation on a 1-layer GCN.
    DpSgd,
    /// Adjacency perturbation (LapGraph variant).
    Dpgcn,
    /// Stacked MLPs over noisy cluster-degree vectors.
    LpGnet,
    /// Aggregation perturbation.
    Gap,
    /// Progressive aggregation perturbation.
    ProGap,
}

impl Baseline {
    /// All competitors in the paper's Figure 1 legend order (minus GCON).
    pub fn all() -> [Baseline; 7] {
        [
            Baseline::DpSgd,
            Baseline::Dpgcn,
            Baseline::LpGnet,
            Baseline::Gap,
            Baseline::ProGap,
            Baseline::Mlp,
            Baseline::GcnNonDp,
        ]
    }

    /// Display name matching the paper's legend.
    pub fn name(&self) -> &'static str {
        match self {
            Baseline::GcnNonDp => "GCN (non-DP)",
            Baseline::Mlp => "MLP",
            Baseline::DpSgd => "DP-SGD",
            Baseline::Dpgcn => "DPGCN",
            Baseline::LpGnet => "LPGNet",
            Baseline::Gap => "GAP",
            Baseline::ProGap => "ProGAP",
        }
    }

    /// True when the method's output is independent of ε (flat curves).
    pub fn ignores_epsilon(&self) -> bool {
        matches!(self, Baseline::GcnNonDp | Baseline::Mlp)
    }
}

/// Trains the baseline under `(eps, delta)` edge-DP and returns the
/// micro-F1 on the dataset's test split.
pub fn evaluate_baseline<R: Rng + ?Sized>(
    baseline: Baseline,
    dataset: &Dataset,
    eps: f64,
    delta: f64,
    rng: &mut R,
) -> f64 {
    let d = dataset;
    let pred_all: Vec<usize> = match baseline {
        Baseline::GcnNonDp => {
            let model = train_gcn(
                &GcnConfig::default(),
                &d.graph,
                &d.features,
                &d.labels,
                &d.split.train,
                d.num_classes,
                rng,
            );
            model.predict(&symmetric(&d.graph), &d.features)
        }
        Baseline::Mlp => train_and_predict_mlp(
            &MlpBaselineConfig::default(),
            &d.features,
            &d.labels,
            &d.split.train,
            d.num_classes,
            rng,
        ),
        Baseline::DpSgd => train_and_predict_dpsgd(
            &DpSgdConfig::default(),
            &d.graph,
            &d.features,
            &d.labels,
            &d.split.train,
            d.num_classes,
            eps,
            delta,
            rng,
        ),
        Baseline::Dpgcn => {
            let (model, noisy) = train_dpgcn(
                &GcnConfig::default(),
                DpgcnMechanism::LapGraph,
                &d.graph,
                &d.features,
                &d.labels,
                &d.split.train,
                d.num_classes,
                eps,
                rng,
            );
            model.predict(&symmetric(&noisy), &d.features)
        }
        Baseline::LpGnet => train_and_predict_lpgnet(
            &LpgnetConfig::default(),
            &d.graph,
            &d.features,
            &d.labels,
            &d.split.train,
            d.num_classes,
            eps,
            rng,
        ),
        Baseline::Gap => train_and_predict_gap(
            &GapConfig::default(),
            &d.graph,
            &d.features,
            &d.labels,
            &d.split.train,
            d.num_classes,
            eps,
            delta,
            rng,
        ),
        Baseline::ProGap => train_and_predict_progap(
            &ProgapConfig::default(),
            &d.graph,
            &d.features,
            &d.labels,
            &d.split.train,
            d.num_classes,
            eps,
            delta,
            rng,
        ),
    };
    let test_pred: Vec<usize> = d.split.test.iter().map(|&i| pred_all[i]).collect();
    micro_f1(&test_pred, &d.test_labels())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcon_datasets::two_moons_graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn names_are_distinct() {
        let mut names: Vec<&str> = Baseline::all().iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn every_baseline_runs_end_to_end() {
        let d = two_moons_graph(81);
        for b in Baseline::all() {
            let mut rng = StdRng::seed_from_u64(82);
            let f1 = evaluate_baseline(b, &d, 2.0, 1e-3, &mut rng);
            assert!((0.0..=1.0).contains(&f1), "{}: f1 {f1}", b.name());
        }
    }

    #[test]
    fn non_dp_gcn_tops_dpgcn_at_tight_budget() {
        let d = two_moons_graph(83);
        let mut r1 = StdRng::seed_from_u64(84);
        let mut r2 = StdRng::seed_from_u64(84);
        let gcn = evaluate_baseline(Baseline::GcnNonDp, &d, 0.5, 1e-3, &mut r1);
        let dpgcn = evaluate_baseline(Baseline::Dpgcn, &d, 0.5, 1e-3, &mut r2);
        assert!(
            gcn >= dpgcn - 0.05,
            "non-DP GCN ({gcn}) should not lose to DPGCN at ε=0.5 ({dpgcn})"
        );
    }
}
