//! ProGAP-EDP (Sajadmanesh & Gatica-Perez, WSDM 2024): progressive graph
//! neural networks with aggregation perturbation.
//!
//! ProGAP refines GAP by interleaving learning and aggregation: stage 0
//! trains an edge-free MLP on the raw features; each later stage aggregates
//! the (normalized) previous embedding with Gaussian noise, concatenates it
//! with the previous embedding, and trains a fresh MLP on the result. The
//! noisy aggregate of each stage is computed once and cached, so the number
//! of Gaussian releases equals the number of aggregating stages, composed
//! with the RDP accountant.

use crate::gap::{adjacency_csr, GAP_HOP_SENSITIVITY};
use gcon_dp::mechanisms::add_gaussian_noise;
use gcon_dp::rdp::calibrate_noise_multiplier;
use gcon_graph::Graph;
use gcon_linalg::Mat;
use gcon_nn::loss::softmax_cross_entropy_into;
use gcon_nn::{Activation, Adam, Linear, LinearGrads, Mlp, MlpConfig, MlpWorkspace, Optimizer};
use rand::Rng;

/// Hyperparameters for ProGAP-EDP.
#[derive(Clone, Debug)]
pub struct ProgapConfig {
    /// Number of aggregating stages (Gaussian releases). Total depth is
    /// `stages + 1` MLPs.
    pub stages: usize,
    /// Embedding dimension of each stage MLP.
    pub embed_dim: usize,
    /// Hidden width of each stage MLP.
    pub hidden: usize,
    /// Epochs per stage.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
}

impl Default for ProgapConfig {
    fn default() -> Self {
        Self { stages: 2, embed_dim: 16, hidden: 64, epochs: 120, lr: 0.01 }
    }
}

/// One trained progressive stage: embedding MLP + linear head.
struct Stage {
    net: Mlp,
    head: Linear,
}

/// Trains an embedding MLP + classification head on the labeled rows and
/// returns the stage (embeddings for all rows come from `net.forward`).
fn train_stage<R: Rng + ?Sized>(
    input: &Mat,
    labels: &[usize],
    train_idx: &[usize],
    num_classes: usize,
    cfg: &ProgapConfig,
    rng: &mut R,
) -> Stage {
    let x_train = input.select_rows(train_idx);
    let y_train: Vec<usize> = train_idx.iter().map(|&i| labels[i]).collect();
    let mut net = Mlp::new(
        &MlpConfig {
            dims: vec![input.cols(), cfg.hidden, cfg.embed_dim],
            hidden_activation: Activation::Relu,
            output_activation: Activation::Tanh,
        },
        rng,
    );
    let mut head = Linear::xavier(cfg.embed_dim, num_classes, rng);
    let mut opt = Adam::new(cfg.lr);
    let net_slots = 2 * net.depth();
    // Epoch-loop buffers hoisted: steady-state epochs allocate nothing.
    let mut ws = MlpWorkspace::new();
    let mut logits = Mat::default();
    let mut dlogits = Mat::default();
    let mut demb = Mat::default();
    let mut hg = LinearGrads::zeros(0, 0);
    for _ in 0..cfg.epochs {
        net.forward_cached_ws(&x_train, &mut ws);
        head.forward_into(ws.output(), &mut logits);
        let _ = softmax_cross_entropy_into(&logits, &y_train, &mut dlogits);
        head.backward_into(ws.output(), &dlogits, &mut demb, &mut hg);
        net.backward_ws_weights_only(&mut ws, &demb);
        opt.begin_step();
        net.apply_grads_ws(&mut ws, &mut opt, 1e-5, 0);
        opt.update(net_slots, head.w.as_mut_slice(), hg.dw.as_slice());
        opt.update(net_slots + 1, &mut head.b, &hg.db);
    }
    Stage { net, head }
}

/// Trains ProGAP-EDP and returns predictions for every node.
#[allow(clippy::too_many_arguments)] // a training entry point takes the full dataset tuple
pub fn train_and_predict_progap<R: Rng + ?Sized>(
    cfg: &ProgapConfig,
    graph: &Graph,
    x: &Mat,
    labels: &[usize],
    train_idx: &[usize],
    num_classes: usize,
    eps: f64,
    delta: f64,
    rng: &mut R,
) -> Vec<usize> {
    assert!(cfg.stages >= 1);
    let a = adjacency_csr(graph);
    let noise_mult = calibrate_noise_multiplier(1.0, cfg.stages, eps, delta);
    let sigma = noise_mult * GAP_HOP_SENSITIVITY;

    // Stage 0: edge-free.
    let stage0 = train_stage(x, labels, train_idx, num_classes, cfg, rng);
    let mut embedding = stage0.net.forward(x);
    let mut last_stage = stage0;

    // Aggregation buffers shared across stages.
    let mut normed = Mat::default();
    let mut agg = Mat::default();
    for _ in 0..cfg.stages {
        // Noisy sum-aggregation of the normalized previous embedding.
        normed.copy_from(&embedding);
        normed.normalize_rows_l2();
        a.spmm_into(&normed, &mut agg);
        add_gaussian_noise(agg.as_mut_slice(), sigma, rng);
        agg.normalize_rows_l2();
        // Jumping-knowledge concatenation.
        let input = embedding.hcat(&agg);
        let stage = train_stage(&input, labels, train_idx, num_classes, cfg, rng);
        embedding = stage.net.forward(&input);
        last_stage = stage;
    }

    // `embedding` is already the final stage's full-graph forward.
    gcon_linalg::reduce::row_argmax(&last_stage.head.forward(&embedding))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcon_datasets::metrics::micro_f1;
    use gcon_datasets::two_moons_graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn progap_runs_and_beats_chance_at_generous_budget() {
        let d = two_moons_graph(61);
        let mut rng = StdRng::seed_from_u64(62);
        let cfg = ProgapConfig { epochs: 80, ..Default::default() };
        let pred = train_and_predict_progap(
            &cfg,
            &d.graph,
            &d.features,
            &d.labels,
            &d.split.train,
            d.num_classes,
            4.0,
            1e-3,
            &mut rng,
        );
        assert_eq!(pred.len(), d.num_nodes());
        let test_pred: Vec<usize> = d.split.test.iter().map(|&i| pred[i]).collect();
        let f1 = micro_f1(&test_pred, &d.test_labels());
        assert!(f1 > 0.6, "ProGAP test micro-F1 {f1}");
    }

    #[test]
    fn stage_training_learns_labeled_rows() {
        let d = two_moons_graph(63);
        let mut rng = StdRng::seed_from_u64(64);
        let cfg = ProgapConfig { epochs: 120, ..Default::default() };
        let stage =
            train_stage(&d.features, &d.labels, &d.split.train, d.num_classes, &cfg, &mut rng);
        let emb = stage.net.forward(&d.features.select_rows(&d.split.train));
        let logits = stage.head.forward(&emb);
        let pred = gcon_linalg::reduce::row_argmax(&logits);
        let gold = d.train_labels();
        let f1 = micro_f1(&pred, &gold);
        assert!(f1 > 0.9, "stage train micro-F1 {f1}");
    }
}
