//! Classification losses for the NN stack.
//!
//! Note: these are the losses of the *non-private* components (encoder and
//! baseline networks). GCON's strongly-convex training losses (MultiLabel
//! Soft Margin, pseudo-Huber; Appendix F of the paper) live in
//! `gcon-core::loss` because their derivative suprema enter the privacy
//! calibration.

use gcon_linalg::{vecops, Mat};

/// Mean softmax cross-entropy over rows.
///
/// Returns `(loss, ∂loss/∂logits)`; the gradient is the classic
/// `(softmax(logits) − onehot) / n`.
pub fn softmax_cross_entropy(logits: &Mat, labels: &[usize]) -> (f64, Mat) {
    let mut grad = Mat::zeros(0, 0);
    let loss = softmax_cross_entropy_into(logits, labels, &mut grad);
    (loss, grad)
}

/// [`softmax_cross_entropy`] with the gradient written into a caller-owned
/// buffer (reshaped, backing allocation reused across epochs).
pub fn softmax_cross_entropy_into(logits: &Mat, labels: &[usize], grad: &mut Mat) -> f64 {
    let n = logits.rows();
    assert_eq!(labels.len(), n, "softmax_cross_entropy: label count mismatch");
    assert!(n > 0, "softmax_cross_entropy: empty batch");
    let c = logits.cols();
    grad.reset_to_zeros(n, c);
    let mut loss = 0.0;
    let mut probs = vec![0.0; c];
    for (i, &y) in labels.iter().enumerate() {
        vecops::softmax_into(logits.row(i), &mut probs);
        debug_assert!(y < c, "label {y} out of range for {c} classes");
        // Clamp to avoid -inf when a probability underflows to 0.
        loss -= probs[y].max(1e-300).ln();
        let grow = grad.row_mut(i);
        for (g, &p) in grow.iter_mut().zip(&probs) {
            *g = p / n as f64;
        }
        grow[y] -= 1.0 / n as f64;
    }
    loss / n as f64
}

/// Mean squared error `‖pred − target‖²_F / (2n)` with gradient.
pub fn mse(pred: &Mat, target: &Mat) -> (f64, Mat) {
    assert_eq!(pred.shape(), target.shape(), "mse: shape mismatch");
    let n = pred.rows().max(1) as f64;
    let mut grad = gcon_linalg::ops::sub(pred, target);
    let loss = grad.frobenius_norm_sq() / (2.0 * n);
    grad.map_inplace(|v| v / n);
    (loss, grad)
}

/// Classification accuracy of logits against integer labels.
pub fn accuracy(logits: &Mat, labels: &[usize]) -> f64 {
    assert_eq!(logits.rows(), labels.len());
    if labels.is_empty() {
        return 0.0;
    }
    let correct =
        (0..logits.rows()).filter(|&i| vecops::argmax(logits.row(i)) == labels[i]).count();
    correct as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_perfect_prediction_is_small() {
        let logits = Mat::from_rows(&[&[100.0, 0.0], &[0.0, 100.0]]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1]);
        assert!(loss < 1e-10);
    }

    #[test]
    fn cross_entropy_uniform_is_log_c() {
        let logits = Mat::zeros(3, 4);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1, 2]);
        assert!((loss - 4.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_differences() {
        let logits = Mat::from_rows(&[&[0.5, -0.3, 0.1], &[-1.0, 0.7, 0.2]]);
        let labels = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let h = 1e-6;
        for i in 0..2 {
            for j in 0..3 {
                let mut lp = logits.clone();
                lp.add_at(i, j, h);
                let mut lm = logits.clone();
                lm.add_at(i, j, -h);
                let fd = (softmax_cross_entropy(&lp, &labels).0
                    - softmax_cross_entropy(&lm, &labels).0)
                    / (2.0 * h);
                assert!((fd - grad.get(i, j)).abs() < 1e-6, "grad[{i}][{j}]");
            }
        }
    }

    #[test]
    fn mse_gradient_matches_finite_differences() {
        let pred = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let target = Mat::from_rows(&[&[0.0, 2.0], &[4.0, 4.0]]);
        let (loss, grad) = mse(&pred, &target);
        assert!((loss - (1.0 + 1.0) / 4.0).abs() < 1e-12);
        let h = 1e-6;
        for i in 0..2 {
            for j in 0..2 {
                let mut pp = pred.clone();
                pp.add_at(i, j, h);
                let mut pm = pred.clone();
                pm.add_at(i, j, -h);
                let fd = (mse(&pp, &target).0 - mse(&pm, &target).0) / (2.0 * h);
                assert!((fd - grad.get(i, j)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn accuracy_counts_correct_rows() {
        let logits = Mat::from_rows(&[&[0.9, 0.1], &[0.2, 0.8], &[0.6, 0.4]]);
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-12);
    }
}
