#![warn(missing_docs)]
//! Manual-gradient neural-network stack.
//!
//! Rust has no mature autodiff for this workload, so every layer in this
//! crate carries a hand-derived backward pass, verified against central
//! finite differences in the unit tests. The stack is deliberately small —
//! exactly what the paper's pipeline needs:
//!
//! - the MLP **feature encoder** of GCON (Algorithm 3, Sec. IV-C1), trained on
//!   node features/labels only (public under edge DP);
//! - the **MLP baseline** of Figure 1 (edge-free, hence trivially edge-DP);
//! - the 2-layer **GCN baseline** (non-private upper bound) and the network
//!   heads of GAP / ProGAP / LPGNet / DPGCN in `gcon-baselines`;
//! - the **batched serving head** ([`head::HeadWorkspace`]): the
//!   gather-rows-then-linear-head forward `gcon-serve` answers queries with,
//!   on a reusable zero-alloc workspace.
//!
//! Matrix convention: activations are `n × d` (row = sample), weights are
//! `d_in × d_out`, so forward is `Y = X·W + b` and the weight gradient is
//! `Xᵀ·δ` (computed without materializing the transpose).

pub mod activations;
pub mod dropout;
pub mod head;
pub mod linear;
pub mod loss;
pub mod mlp;
pub mod optim;

pub use activations::Activation;
pub use head::HeadWorkspace;
pub use linear::{Linear, LinearGrads};
pub use mlp::{Mlp, MlpConfig, MlpWorkspace};
pub use optim::{Adam, Optimizer, Sgd};
