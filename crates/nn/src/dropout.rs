//! Inverted dropout.
//!
//! The Kipf–Welling GCN recipe applies dropout 0.5 between layers; our GCN
//! baseline exposes it as an option (off by default so the Figure 1 sweeps
//! stay deterministic given a seed budget). Inverted scaling (`1/(1−p)` at
//! train time) keeps the inference path an identity.

use gcon_linalg::Mat;
use rand::Rng;

/// An inverted-dropout layer with drop probability `p`.
#[derive(Clone, Copy, Debug)]
pub struct Dropout {
    /// Probability of zeroing each activation at train time.
    pub p: f64,
}

/// The retain mask produced by a training-time forward pass; reuse it in the
/// backward pass so gradients flow only through kept units.
#[derive(Clone, Debug)]
pub struct DropoutMask {
    scale: f64,
    keep: Vec<bool>,
}

impl Dropout {
    /// Creates the layer.
    ///
    /// # Panics
    /// Panics unless `p ∈ [0, 1)`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "Dropout: p must lie in [0, 1)");
        Self { p }
    }

    /// Training-time forward: zeroes units with probability `p` and scales
    /// survivors by `1/(1−p)`. Returns the mask for the backward pass.
    pub fn forward_train<R: Rng + ?Sized>(&self, x: &mut Mat, rng: &mut R) -> DropoutMask {
        let scale = 1.0 / (1.0 - self.p);
        let mut keep = Vec::with_capacity(x.as_slice().len());
        for v in x.as_mut_slice() {
            let k = rng.gen::<f64>() >= self.p;
            keep.push(k);
            *v = if k { *v * scale } else { 0.0 };
        }
        DropoutMask { scale, keep }
    }

    /// Inference-time forward is the identity (inverted dropout).
    pub fn forward_eval(&self, _x: &Mat) {}
}

impl DropoutMask {
    /// Applies the stored mask to the upstream gradient.
    pub fn backward(&self, grad: &mut Mat) {
        assert_eq!(grad.as_slice().len(), self.keep.len(), "DropoutMask: shape mismatch");
        for (g, &k) in grad.as_mut_slice().iter_mut().zip(&self.keep) {
            *g = if k { *g * self.scale } else { 0.0 };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn p_zero_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut x = Mat::from_fn(4, 4, |i, j| (i + j) as f64);
        let orig = x.clone();
        let layer = Dropout::new(0.0);
        let _ = layer.forward_train(&mut x, &mut rng);
        assert_eq!(x, orig);
    }

    #[test]
    fn expected_value_preserved() {
        let mut rng = StdRng::seed_from_u64(2);
        let layer = Dropout::new(0.3);
        let mut sum = 0.0;
        let trials = 4000;
        for _ in 0..trials {
            let mut x = Mat::full(1, 10, 1.0);
            let _ = layer.forward_train(&mut x, &mut rng);
            sum += x.as_slice().iter().sum::<f64>();
        }
        let mean = sum / (trials as f64 * 10.0);
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn backward_masks_exactly_the_dropped_units() {
        let mut rng = StdRng::seed_from_u64(3);
        let layer = Dropout::new(0.5);
        let mut x = Mat::full(2, 6, 1.0);
        let mask = layer.forward_train(&mut x, &mut rng);
        let mut grad = Mat::full(2, 6, 1.0);
        mask.backward(&mut grad);
        for (xv, gv) in x.as_slice().iter().zip(grad.as_slice()) {
            if *xv == 0.0 {
                assert_eq!(*gv, 0.0);
            } else {
                assert_eq!(*gv, 2.0); // scale = 1/(1-0.5)
            }
        }
    }

    #[test]
    #[should_panic(expected = "p must lie in [0, 1)")]
    fn rejects_p_one() {
        let _ = Dropout::new(1.0);
    }
}
