//! Multi-layer perceptron built from [`Linear`] layers.
//!
//! Used directly as the MLP baseline (edge-free → trivially edge-DP) and as
//! the building block of GCON's feature encoder and the GAP/ProGAP/LPGNet
//! heads. Exposes the cached forward / explicit backward pair so composite
//! models (encoder + classification head, GCN) can backpropagate through it.

use crate::activations::Activation;
use crate::linear::{Linear, LinearGrads};
use crate::loss::softmax_cross_entropy_into;
use crate::optim::{Adam, Optimizer};
use gcon_linalg::Mat;
use rand::Rng;

/// Reusable buffers for one network's forward/backward sweep.
///
/// A training loop owns one workspace per network and threads it through
/// [`Mlp::forward_cached_ws`] / [`Mlp::backward_ws`]; after the first epoch
/// every buffer has reached its steady-state capacity and no per-iteration
/// matrix allocation happens. A fresh (empty) workspace is valid for any
/// network — buffers are shaped on first use.
#[derive(Clone, Debug, Default)]
pub struct MlpWorkspace {
    /// Post-activation cache `[x, a₁, …, a_L]`.
    cache: Vec<Mat>,
    /// Upstream-gradient ping-pong pair for the backward sweep.
    delta: Mat,
    delta_next: Mat,
    /// One gradient slot per layer (front to back).
    grads: Vec<LinearGrads>,
}

impl MlpWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The network output of the last [`Mlp::forward_cached_ws`] call.
    ///
    /// # Panics
    /// Panics if no forward pass has been run through this workspace.
    pub fn output(&self) -> &Mat {
        self.cache.last().expect("MlpWorkspace::output: no forward pass recorded")
    }

    /// Gradient w.r.t. the network *input* from the last
    /// [`Mlp::backward_ws`] call.
    pub fn input_grad(&self) -> &Mat {
        &self.delta
    }

    /// Per-layer gradients from the last [`Mlp::backward_ws`] call.
    pub fn grads(&self) -> &[LinearGrads] {
        &self.grads
    }
}

/// Architecture description for an [`Mlp`].
#[derive(Clone, Debug)]
pub struct MlpConfig {
    /// Layer widths, `[d_in, h1, …, d_out]`; must have ≥ 2 entries.
    pub dims: Vec<usize>,
    /// Activation after every hidden layer.
    pub hidden_activation: Activation,
    /// Activation after the final layer (Identity for logits).
    pub output_activation: Activation,
}

impl MlpConfig {
    /// ReLU hidden layers and raw-logit output.
    pub fn relu_classifier(dims: Vec<usize>) -> Self {
        Self { dims, hidden_activation: Activation::Relu, output_activation: Activation::Identity }
    }
}

/// A feed-forward network with per-layer activations.
#[derive(Clone, Debug)]
pub struct Mlp {
    /// The affine layers.
    pub layers: Vec<Linear>,
    hidden_act: Activation,
    out_act: Activation,
}

impl Mlp {
    /// Initializes the network (Kaiming for ReLU hidden stacks, Xavier
    /// otherwise).
    pub fn new<R: Rng + ?Sized>(cfg: &MlpConfig, rng: &mut R) -> Self {
        assert!(cfg.dims.len() >= 2, "MlpConfig: need at least input and output dims");
        let layers = cfg
            .dims
            .windows(2)
            .map(|w| {
                if cfg.hidden_activation == Activation::Relu {
                    Linear::kaiming(w[0], w[1], rng)
                } else {
                    Linear::xavier(w[0], w[1], rng)
                }
            })
            .collect();
        Self { layers, hidden_act: cfg.hidden_activation, out_act: cfg.output_activation }
    }

    /// Rebuilds a network from its constituent parts (deserialization path).
    pub fn from_parts(layers: Vec<Linear>, hidden_act: Activation, out_act: Activation) -> Self {
        assert!(!layers.is_empty(), "Mlp::from_parts: need at least one layer");
        for w in layers.windows(2) {
            assert_eq!(
                w[0].d_out(),
                w[1].d_in(),
                "Mlp::from_parts: consecutive layer dims must chain"
            );
        }
        Self { layers, hidden_act, out_act }
    }

    /// The `(hidden, output)` activation pair (serialization path).
    pub fn activations(&self) -> (Activation, Activation) {
        (self.hidden_act, self.out_act)
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Activation used after layer `l`.
    fn activation_at(&self, l: usize) -> Activation {
        if l + 1 == self.layers.len() {
            self.out_act
        } else {
            self.hidden_act
        }
    }

    /// Forward pass returning only the output.
    pub fn forward(&self, x: &Mat) -> Mat {
        let mut a = x.clone();
        for (l, layer) in self.layers.iter().enumerate() {
            a = layer.forward(&a);
            self.activation_at(l).apply(&mut a);
        }
        a
    }

    /// Forward pass returning every post-activation, `[x, a1, …, a_L]`.
    pub fn forward_cached(&self, x: &Mat) -> Vec<Mat> {
        let mut cache = Vec::with_capacity(self.layers.len() + 1);
        cache.push(x.clone());
        for (l, layer) in self.layers.iter().enumerate() {
            let mut a = layer.forward(cache.last().unwrap());
            self.activation_at(l).apply(&mut a);
            cache.push(a);
        }
        cache
    }

    /// Forward pass with caches written into `ws` (buffer-reusing twin of
    /// [`Mlp::forward_cached`]); the output is `ws.output()`.
    pub fn forward_cached_ws(&self, x: &Mat, ws: &mut MlpWorkspace) {
        ws.cache.resize_with(self.layers.len() + 1, || Mat::zeros(0, 0));
        ws.cache[0].copy_from(x);
        for (l, layer) in self.layers.iter().enumerate() {
            let (before, after) = ws.cache.split_at_mut(l + 1);
            layer.forward_into(&before[l], &mut after[0]);
            self.activation_at(l).apply(&mut after[0]);
        }
    }

    /// Backward pass from `dout = ∂L/∂output`, the buffer-reusing twin of
    /// [`Mlp::backward`]. Per-layer gradients land in `ws.grads()` and the
    /// input gradient in `ws.input_grad()`.
    pub fn backward_ws(&self, ws: &mut MlpWorkspace, dout: &Mat) {
        self.backward_ws_impl(ws, dout, true);
    }

    /// [`Mlp::backward_ws`] without the layer-0 input-gradient product.
    ///
    /// Training loops that own the network's raw input (every epoch loop in
    /// the workspace) never read `∂L/∂input`, yet computing it is a full
    /// `n × d_in` GEMM per step — the weights-only form skips it.
    /// `ws.input_grad()` is NOT meaningful after this call.
    pub fn backward_ws_weights_only(&self, ws: &mut MlpWorkspace, dout: &Mat) {
        self.backward_ws_impl(ws, dout, false);
    }

    fn backward_ws_impl(&self, ws: &mut MlpWorkspace, dout: &Mat, need_input_grad: bool) {
        assert_eq!(
            ws.cache.len(),
            self.layers.len() + 1,
            "backward_ws: run forward_cached_ws first"
        );
        // Match the slot count to *this* network (truncating too, so one
        // workspace can be reused across networks of different depth).
        ws.grads.resize_with(self.layers.len(), || LinearGrads::zeros(0, 0));
        ws.delta.copy_from(dout);
        for l in (0..self.layers.len()).rev() {
            self.activation_at(l).backprop_inplace(&ws.cache[l + 1], &mut ws.delta);
            if l == 0 && !need_input_grad {
                self.layers[0].backward_weights_into(&ws.cache[0], &ws.delta, &mut ws.grads[0]);
            } else {
                self.layers[l].backward_into(
                    &ws.cache[l],
                    &ws.delta,
                    &mut ws.delta_next,
                    &mut ws.grads[l],
                );
                std::mem::swap(&mut ws.delta, &mut ws.delta_next);
            }
        }
    }

    /// Backward pass from the gradient w.r.t. the network *output*
    /// (post-activation). Returns the gradient w.r.t. the input and one
    /// [`LinearGrads`] per layer (front to back).
    pub fn backward(&self, cache: &[Mat], dout: Mat) -> (Mat, Vec<LinearGrads>) {
        assert_eq!(cache.len(), self.layers.len() + 1, "backward: cache/layer mismatch");
        let mut grads: Vec<Option<LinearGrads>> = (0..self.layers.len()).map(|_| None).collect();
        let mut delta = dout;
        for l in (0..self.layers.len()).rev() {
            self.activation_at(l).backprop_inplace(&cache[l + 1], &mut delta);
            let (dx, g) = self.layers[l].backward(&cache[l], &delta);
            grads[l] = Some(g);
            delta = dx;
        }
        (delta, grads.into_iter().map(|g| g.unwrap()).collect())
    }

    /// Applies gradients with the given optimizer; `weight_decay` adds
    /// `wd · W` to each weight gradient **in place** (biases are not
    /// decayed — gradients are per-step scratch, so no defensive copy is
    /// made). Parameter tensors are registered with the optimizer starting
    /// at `base_idx` (2 slots per layer), so several networks can share one
    /// optimizer.
    pub fn apply_grads(
        &mut self,
        grads: &mut [LinearGrads],
        opt: &mut dyn Optimizer,
        weight_decay: f64,
        base_idx: usize,
    ) {
        assert_eq!(grads.len(), self.layers.len());
        for (l, (layer, g)) in self.layers.iter_mut().zip(grads).enumerate() {
            if weight_decay > 0.0 {
                gcon_linalg::ops::add_scaled_assign(&mut g.dw, weight_decay, &layer.w);
            }
            opt.update(base_idx + 2 * l, layer.w.as_mut_slice(), g.dw.as_slice());
            opt.update(base_idx + 2 * l + 1, &mut layer.b, &g.db);
        }
    }

    /// [`Mlp::apply_grads`] over the gradients held in `ws`.
    pub fn apply_grads_ws(
        &mut self,
        ws: &mut MlpWorkspace,
        opt: &mut dyn Optimizer,
        weight_decay: f64,
        base_idx: usize,
    ) {
        self.apply_grads(&mut ws.grads, opt, weight_decay, base_idx);
    }

    /// Total number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.w.rows() * l.w.cols() + l.b.len()).sum()
    }

    /// Full-batch Adam training with softmax cross-entropy. Returns the loss
    /// trajectory. The output activation should be `Identity` (logits).
    pub fn train_cross_entropy(
        &mut self,
        x: &Mat,
        labels: &[usize],
        epochs: usize,
        lr: f64,
        weight_decay: f64,
    ) -> Vec<f64> {
        let mut opt = Adam::new(lr);
        let mut losses = Vec::with_capacity(epochs);
        let mut ws = MlpWorkspace::new();
        let mut dlogits = Mat::zeros(0, 0);
        for _ in 0..epochs {
            self.forward_cached_ws(x, &mut ws);
            let loss = softmax_cross_entropy_into(ws.output(), labels, &mut dlogits);
            self.backward_ws_weights_only(&mut ws, &dlogits);
            opt.begin_step();
            self.apply_grads_ws(&mut ws, &mut opt, weight_decay, 0);
            losses.push(loss);
        }
        losses
    }

    /// Hard class predictions (row-wise argmax of the output).
    pub fn predict(&self, x: &Mat) -> Vec<usize> {
        gcon_linalg::reduce::row_argmax(&self.forward(x))
    }

    /// Cross-entropy training with early stopping: after every epoch the
    /// validation loss is evaluated, and training stops once it has failed
    /// to improve for `patience` consecutive epochs; the best-validation
    /// weights are restored. Returns `(epochs run, best validation loss)`.
    #[allow(clippy::too_many_arguments)] // a training entry point takes the full data tuple
    pub fn train_cross_entropy_early_stopping(
        &mut self,
        x_train: &Mat,
        y_train: &[usize],
        x_val: &Mat,
        y_val: &[usize],
        max_epochs: usize,
        patience: usize,
        lr: f64,
        weight_decay: f64,
    ) -> (usize, f64) {
        assert!(patience >= 1, "early stopping needs patience ≥ 1");
        let mut opt = Adam::new(lr);
        let mut best_loss = f64::INFINITY;
        let mut best_weights: Option<Vec<Linear>> = None;
        let mut stale = 0usize;
        let mut epochs_run = 0usize;
        let mut ws = MlpWorkspace::new();
        let mut val_ws = MlpWorkspace::new();
        let mut dlogits = Mat::zeros(0, 0);
        let mut val_grad = Mat::zeros(0, 0);
        for epoch in 0..max_epochs {
            epochs_run = epoch + 1;
            self.forward_cached_ws(x_train, &mut ws);
            let _ = softmax_cross_entropy_into(ws.output(), y_train, &mut dlogits);
            self.backward_ws_weights_only(&mut ws, &dlogits);
            opt.begin_step();
            self.apply_grads_ws(&mut ws, &mut opt, weight_decay, 0);

            self.forward_cached_ws(x_val, &mut val_ws);
            let val_loss = softmax_cross_entropy_into(val_ws.output(), y_val, &mut val_grad);
            if val_loss < best_loss - 1e-12 {
                best_loss = val_loss;
                best_weights = Some(self.layers.clone());
                stale = 0;
            } else {
                stale += 1;
                if stale >= patience {
                    break;
                }
            }
        }
        if let Some(w) = best_weights {
            self.layers = w;
        }
        (epochs_run, best_loss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::softmax_cross_entropy;
    use gcon_linalg::ops;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(21);
        let mlp = Mlp::new(&MlpConfig::relu_classifier(vec![10, 16, 4]), &mut rng);
        let x = Mat::uniform(7, 10, 1.0, &mut rng);
        assert_eq!(mlp.forward(&x).shape(), (7, 4));
        assert_eq!(mlp.depth(), 2);
        assert_eq!(mlp.num_params(), 10 * 16 + 16 + 16 * 4 + 4);
    }

    /// End-to-end gradient check through two layers + ReLU.
    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(22);
        let mlp = Mlp::new(
            &MlpConfig {
                dims: vec![5, 8, 3],
                hidden_activation: Activation::Tanh, // smooth, so FD is reliable
                output_activation: Activation::Identity,
            },
            &mut rng,
        );
        let x = Mat::uniform(6, 5, 1.0, &mut rng);
        let c = Mat::uniform(6, 3, 1.0, &mut rng);
        let loss = |m: &Mlp| ops::frobenius_inner(&m.forward(&x), &c);

        let cache = mlp.forward_cached(&x);
        let (_, grads) = mlp.backward(&cache, c.clone());
        let h = 1e-6;
        for (l, g) in grads.iter().enumerate() {
            for i in 0..mlp.layers[l].w.rows() {
                for j in 0..mlp.layers[l].w.cols() {
                    let mut mp = mlp.clone();
                    mp.layers[l].w.add_at(i, j, h);
                    let mut mm = mlp.clone();
                    mm.layers[l].w.add_at(i, j, -h);
                    let fd = (loss(&mp) - loss(&mm)) / (2.0 * h);
                    assert!(
                        (fd - g.dw.get(i, j)).abs() < 1e-4,
                        "layer {l} dW[{i}][{j}]: fd {fd} vs {}",
                        g.dw.get(i, j)
                    );
                }
            }
        }
    }

    #[test]
    fn learns_xor() {
        let mut rng = StdRng::seed_from_u64(23);
        let x = Mat::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
        let labels = [0usize, 1, 1, 0];
        let mut mlp = Mlp::new(&MlpConfig::relu_classifier(vec![2, 16, 2]), &mut rng);
        let losses = mlp.train_cross_entropy(&x, &labels, 400, 0.05, 0.0);
        assert!(losses.last().unwrap() < &0.05, "final loss {}", losses.last().unwrap());
        assert_eq!(mlp.predict(&x), labels.to_vec());
    }

    #[test]
    fn loss_decreases_on_separable_data() {
        let mut rng = StdRng::seed_from_u64(24);
        let n = 60;
        let x = Mat::from_fn(n, 3, |i, j| {
            let class = (i % 2) as f64;
            class * 2.0 - 1.0 + 0.1 * ((i * 3 + j) % 7) as f64
        });
        let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let mut mlp = Mlp::new(&MlpConfig::relu_classifier(vec![3, 8, 2]), &mut rng);
        let losses = mlp.train_cross_entropy(&x, &labels, 100, 0.02, 1e-4);
        assert!(losses.last().unwrap() < &losses[0]);
    }

    #[test]
    fn early_stopping_halts_before_max_and_restores_best() {
        let mut rng = StdRng::seed_from_u64(26);
        // Tiny train set + disjoint val set with the same rule: overfitting
        // sets in quickly, so early stopping must trigger well before 2000.
        let x_train = Mat::from_fn(8, 4, |i, j| if j == i % 2 { 1.0 } else { 0.1 * j as f64 });
        let y_train: Vec<usize> = (0..8).map(|i| i % 2).collect();
        let x_val = Mat::from_fn(20, 4, |i, j| {
            (if j == i % 2 { 1.0 } else { 0.1 * j as f64 })
                + 0.3 * (((i * 7 + j) % 5) as f64 / 5.0 - 0.4)
        });
        // 30% label noise: as the net drives the train loss to zero it grows
        // over-confident on exactly these points, so the validation loss
        // eventually rises — the regime early stopping exists for.
        let y_val: Vec<usize> =
            (0..20).map(|i| if i % 3 == 0 { (i + 1) % 2 } else { i % 2 }).collect();
        let mut mlp = Mlp::new(&MlpConfig::relu_classifier(vec![4, 32, 2]), &mut rng);
        let (epochs, best) = mlp.train_cross_entropy_early_stopping(
            &x_train, &y_train, &x_val, &y_val, 2000, 25, 0.05, 0.0,
        );
        assert!(epochs < 2000, "early stopping never triggered ({epochs} epochs)");
        // The restored weights reproduce the reported best validation loss.
        let (val_loss, _) = softmax_cross_entropy(&mlp.forward(&x_val), &y_val);
        assert!((val_loss - best).abs() < 1e-9, "restored {val_loss} vs best {best}");
    }

    /// One workspace reused across networks of different depth (and the
    /// workspace path must reproduce the allocating path bit-for-bit).
    #[test]
    fn workspace_reuse_across_depths_matches_allocating_path() {
        let mut rng = StdRng::seed_from_u64(27);
        let deep = Mlp::new(&MlpConfig::relu_classifier(vec![4, 8, 6, 2]), &mut rng);
        let shallow = Mlp::new(&MlpConfig::relu_classifier(vec![4, 5, 2]), &mut rng);
        let x = Mat::uniform(6, 4, 1.0, &mut rng);
        let dout = Mat::uniform(6, 2, 1.0, &mut rng);
        let mut ws = MlpWorkspace::new();
        // Deep first so the workspace holds 3 grad slots, then shallow: the
        // slot count must shrink to 2, not panic in apply_grads.
        for net in [&deep, &shallow] {
            net.forward_cached_ws(&x, &mut ws);
            let cache = net.forward_cached(&x);
            assert_eq!(ws.output().as_slice(), cache.last().unwrap().as_slice());
            net.backward_ws(&mut ws, &dout);
            let (dx, grads) = net.backward(&cache, dout.clone());
            assert_eq!(ws.grads().len(), net.depth());
            assert_eq!(ws.input_grad().as_slice(), dx.as_slice());
            for (a, b) in ws.grads().iter().zip(&grads) {
                assert_eq!(a.dw.as_slice(), b.dw.as_slice());
                assert_eq!(a.db, b.db);
            }
        }
        let mut net = shallow.clone();
        let mut opt = Adam::new(0.01);
        opt.begin_step();
        net.apply_grads_ws(&mut ws, &mut opt, 0.1, 0);
        assert!(net.layers[0].w.is_finite());
    }

    #[test]
    fn shared_optimizer_base_idx_does_not_collide() {
        // Two MLPs sharing one Adam must keep disjoint state slots.
        let mut rng = StdRng::seed_from_u64(25);
        let cfg = MlpConfig::relu_classifier(vec![2, 3, 2]);
        let mut a = Mlp::new(&cfg, &mut rng);
        let mut b = Mlp::new(&cfg, &mut rng);
        let x = Mat::uniform(4, 2, 1.0, &mut rng);
        let mut opt = Adam::new(0.01);
        for _ in 0..3 {
            let ca = a.forward_cached(&x);
            let (_, la) = softmax_cross_entropy(ca.last().unwrap(), &[0, 1, 0, 1]);
            let (_, mut ga) = a.backward(&ca, la);
            let cb = b.forward_cached(&x);
            let (_, lb) = softmax_cross_entropy(cb.last().unwrap(), &[1, 0, 1, 0]);
            let (_, mut gb) = b.backward(&cb, lb);
            opt.begin_step();
            let slots_a = 2 * a.depth();
            a.apply_grads(&mut ga, &mut opt, 0.0, 0);
            b.apply_grads(&mut gb, &mut opt, 0.0, slots_a);
        }
        // Nothing blew up and weights stayed finite.
        assert!(a.layers[0].w.is_finite());
        assert!(b.layers[0].w.is_finite());
    }
}
