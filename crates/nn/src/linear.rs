//! The fully-connected layer with hand-derived gradients.

use gcon_linalg::{ops, Mat};
use rand::Rng;

/// A dense affine layer `Y = X·W + b` with `W : d_in × d_out`, `b : d_out`.
#[derive(Clone, Debug)]
pub struct Linear {
    /// Weight matrix, `d_in × d_out`.
    pub w: Mat,
    /// Bias vector, length `d_out`.
    pub b: Vec<f64>,
}

/// Gradients of a [`Linear`] layer produced by [`Linear::backward`].
#[derive(Clone, Debug)]
pub struct LinearGrads {
    /// `∂L/∂W = Xᵀ·δ`.
    pub dw: Mat,
    /// `∂L/∂b = Σ_rows δ`.
    pub db: Vec<f64>,
}

impl LinearGrads {
    /// Zero-valued gradients shaped for a `d_in × d_out` layer — the
    /// starting state of a reusable gradient buffer.
    pub fn zeros(d_in: usize, d_out: usize) -> Self {
        Self { dw: Mat::zeros(d_in, d_out), db: vec![0.0; d_out] }
    }
}

impl Linear {
    /// Glorot/Xavier-uniform initialization: `U(±√(6/(d_in+d_out)))`.
    pub fn xavier<R: Rng + ?Sized>(d_in: usize, d_out: usize, rng: &mut R) -> Self {
        let bound = (6.0 / (d_in + d_out) as f64).sqrt();
        Self { w: Mat::uniform(d_in, d_out, bound, rng), b: vec![0.0; d_out] }
    }

    /// Kaiming/He initialization (good defaults ahead of ReLU).
    pub fn kaiming<R: Rng + ?Sized>(d_in: usize, d_out: usize, rng: &mut R) -> Self {
        let std = (2.0 / d_in as f64).sqrt();
        Self { w: Mat::gaussian(d_in, d_out, std, rng), b: vec![0.0; d_out] }
    }

    /// Input dimension.
    pub fn d_in(&self) -> usize {
        self.w.rows()
    }

    /// Output dimension.
    pub fn d_out(&self) -> usize {
        self.w.cols()
    }

    /// Forward pass `Y = X·W + b`.
    pub fn forward(&self, x: &Mat) -> Mat {
        let mut y = Mat::default();
        self.forward_into(x, &mut y);
        y
    }

    /// Forward pass written into `y` (reshaped, backing buffer reused).
    pub fn forward_into(&self, x: &Mat, y: &mut Mat) {
        ops::matmul_into(x, &self.w, y);
        for i in 0..y.rows() {
            let row = y.row_mut(i);
            for (v, &bv) in row.iter_mut().zip(&self.b) {
                *v += bv;
            }
        }
    }

    /// Backward pass. Given the layer input `x` and the upstream gradient
    /// `dy = ∂L/∂Y`, returns `(∂L/∂X, gradients)`.
    pub fn backward(&self, x: &Mat, dy: &Mat) -> (Mat, LinearGrads) {
        let mut dx = Mat::default();
        let mut grads = LinearGrads::zeros(0, 0);
        self.backward_into(x, dy, &mut dx, &mut grads);
        (dx, grads)
    }

    /// Backward pass into caller-owned buffers: `dx` receives `∂L/∂X` and
    /// `grads` receives the weight/bias gradients. All three backing buffers
    /// are reused across calls (the epoch loop's steady state performs no
    /// gradient allocation).
    pub fn backward_into(&self, x: &Mat, dy: &Mat, dx: &mut Mat, grads: &mut LinearGrads) {
        self.backward_weights_into(x, dy, grads);
        ops::matmul_bt_into(dy, &self.w, dx);
    }

    /// Weight/bias gradients only — skips the `∂L/∂X = δ·Wᵀ` product. Use
    /// for the first layer of a network whose input gradient nobody reads
    /// (it is a full `n × d_in` GEMM that would be discarded).
    pub fn backward_weights_into(&self, x: &Mat, dy: &Mat, grads: &mut LinearGrads) {
        assert_eq!(x.rows(), dy.rows(), "backward: batch mismatch");
        assert_eq!(dy.cols(), self.d_out(), "backward: output dim mismatch");
        ops::t_matmul_into(x, dy, &mut grads.dw);
        gcon_linalg::reduce::col_sums_into(dy, &mut grads.db);
    }

    /// Squared Frobenius norm of the weights (for L2 regularization; biases
    /// are conventionally not decayed).
    pub fn weight_norm_sq(&self) -> f64 {
        self.w.frobenius_norm_sq()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes_and_bias() {
        let layer = Linear { w: Mat::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]), b: vec![10.0, 20.0] };
        let x = Mat::from_rows(&[&[1.0, 1.0]]);
        let y = layer.forward(&x);
        assert_eq!(y.row(0), &[11.0, 22.0]);
    }

    /// Central finite-difference check of all three gradients.
    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(11);
        let layer = Linear::xavier(4, 3, &mut rng);
        let x = Mat::uniform(5, 4, 1.0, &mut rng);
        // Scalar loss L = Σ_ij c_ij * Y_ij with random coefficients c.
        let c = Mat::uniform(5, 3, 1.0, &mut rng);
        let loss = |l: &Linear, xx: &Mat| ops::frobenius_inner(&l.forward(xx), &c);

        let (dx, grads) = layer.backward(&x, &c);
        let h = 1e-6;

        // dW
        for i in 0..4 {
            for j in 0..3 {
                let mut lp = layer.clone();
                lp.w.add_at(i, j, h);
                let mut lm = layer.clone();
                lm.w.add_at(i, j, -h);
                let fd = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * h);
                assert!((fd - grads.dw.get(i, j)).abs() < 1e-5, "dW[{i}][{j}]");
            }
        }
        // db
        for j in 0..3 {
            let mut lp = layer.clone();
            lp.b[j] += h;
            let mut lm = layer.clone();
            lm.b[j] -= h;
            let fd = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * h);
            assert!((fd - grads.db[j]).abs() < 1e-5, "db[{j}]");
        }
        // dX
        for i in 0..5 {
            for j in 0..4 {
                let mut xp = x.clone();
                xp.add_at(i, j, h);
                let mut xm = x.clone();
                xm.add_at(i, j, -h);
                let fd = (loss(&layer, &xp) - loss(&layer, &xm)) / (2.0 * h);
                assert!((fd - dx.get(i, j)).abs() < 1e-5, "dX[{i}][{j}]");
            }
        }
    }

    #[test]
    fn xavier_bound_respected() {
        let mut rng = StdRng::seed_from_u64(12);
        let layer = Linear::xavier(100, 50, &mut rng);
        let bound = (6.0 / 150.0_f64).sqrt();
        assert!(layer.w.max_abs() <= bound);
        assert!(layer.b.iter().all(|&v| v == 0.0));
    }
}
