//! First-order optimizers.
//!
//! The optimizers operate on flat `&mut [f64]` parameter slices identified by
//! a stable index, so any model (MLP, GCN, GCON's Θ) can drive them without a
//! parameter-registry abstraction. Per Theorem 1 of the paper, GCON's privacy
//! guarantee is *independent* of the optimizer — these are pure utility.

/// Common interface: one `update` call per parameter tensor per step, after a
/// single `begin_step`.
pub trait Optimizer {
    /// Advances the internal step counter (call once per optimization step).
    fn begin_step(&mut self);
    /// Applies the update rule for parameter tensor `idx`.
    fn update(&mut self, idx: usize, param: &mut [f64], grad: &[f64]);
}

/// Stochastic gradient descent with optional classical momentum.
#[derive(Clone, Debug)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f64,
    velocity: Vec<Vec<f64>>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f64) -> Self {
        Self { lr, momentum: 0.0, velocity: Vec::new() }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f64, momentum: f64) -> Self {
        Self { lr, momentum, velocity: Vec::new() }
    }

    fn slot(&mut self, idx: usize, len: usize) -> &mut Vec<f64> {
        while self.velocity.len() <= idx {
            self.velocity.push(Vec::new());
        }
        let v = &mut self.velocity[idx];
        if v.len() != len {
            *v = vec![0.0; len];
        }
        v
    }
}

impl Optimizer for Sgd {
    fn begin_step(&mut self) {}

    fn update(&mut self, idx: usize, param: &mut [f64], grad: &[f64]) {
        assert_eq!(param.len(), grad.len());
        if self.momentum == 0.0 {
            for (p, &g) in param.iter_mut().zip(grad) {
                *p -= self.lr * g;
            }
            return;
        }
        let momentum = self.momentum;
        let lr = self.lr;
        let v = self.slot(idx, param.len());
        for ((p, &g), vel) in param.iter_mut().zip(grad).zip(v.iter_mut()) {
            *vel = momentum * *vel + g;
            *p -= lr * *vel;
        }
    }
}

/// Adam (Kingma & Ba, 2015) with bias correction — the optimizer the paper
/// uses for both the encoder and the perturbed-objective minimization.
#[derive(Clone, Debug)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical-stability constant.
    pub eps: f64,
    t: u64,
    m: Vec<Vec<f64>>,
    v: Vec<Vec<f64>>,
}

impl Adam {
    /// Adam with the standard (0.9, 0.999, 1e-8) moment configuration.
    pub fn new(lr: f64) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }

    fn slots(&mut self, idx: usize, len: usize) -> (&mut Vec<f64>, &mut Vec<f64>) {
        while self.m.len() <= idx {
            self.m.push(Vec::new());
            self.v.push(Vec::new());
        }
        if self.m[idx].len() != len {
            self.m[idx] = vec![0.0; len];
            self.v[idx] = vec![0.0; len];
        }
        (&mut self.m[idx], &mut self.v[idx])
    }
}

impl Optimizer for Adam {
    fn begin_step(&mut self) {
        self.t += 1;
    }

    fn update(&mut self, idx: usize, param: &mut [f64], grad: &[f64]) {
        assert_eq!(param.len(), grad.len());
        assert!(self.t > 0, "Adam::update before begin_step");
        let (lr, b1, b2, eps, t) = (self.lr, self.beta1, self.beta2, self.eps, self.t);
        let bc1 = 1.0 - b1.powi(t as i32);
        let bc2 = 1.0 - b2.powi(t as i32);
        let (m, v) = self.slots(idx, param.len());
        for (i, (p, &g)) in param.iter_mut().zip(grad).enumerate() {
            m[i] = b1 * m[i] + (1.0 - b1) * g;
            v[i] = b2 * v[i] + (1.0 - b2) * g * g;
            let mhat = m[i] / bc1;
            let vhat = v[i] / bc2;
            *p -= lr * mhat / (vhat.sqrt() + eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = (x-3)² and check convergence.
    fn minimize(opt: &mut dyn Optimizer, steps: usize) -> f64 {
        let mut x = [0.0_f64];
        for _ in 0..steps {
            opt.begin_step();
            let grad = [2.0 * (x[0] - 3.0)];
            opt.update(0, &mut x, &grad);
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let x = minimize(&mut opt, 200);
        assert!((x - 3.0).abs() < 1e-6, "x = {x}");
    }

    #[test]
    fn sgd_momentum_converges_on_quadratic() {
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        let x = minimize(&mut opt, 400);
        assert!((x - 3.0).abs() < 1e-4, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let x = minimize(&mut opt, 500);
        assert!((x - 3.0).abs() < 1e-4, "x = {x}");
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction the very first Adam step ≈ lr * sign(grad).
        let mut opt = Adam::new(0.01);
        let mut x = [0.0_f64];
        opt.begin_step();
        opt.update(0, &mut x, &[42.0]);
        assert!((x[0] + 0.01).abs() < 1e-6, "x = {}", x[0]);
    }

    #[test]
    fn adam_handles_multiple_params_independently() {
        let mut opt = Adam::new(0.1);
        let mut a = [0.0_f64; 2];
        let mut b = [0.0_f64; 3];
        for _ in 0..300 {
            opt.begin_step();
            let ga = [2.0 * (a[0] - 1.0), 2.0 * (a[1] + 1.0)];
            let gb = [b[0] - 5.0, b[1], b[2] + 2.0];
            opt.update(0, &mut a, &ga);
            opt.update(1, &mut b, &gb);
        }
        assert!((a[0] - 1.0).abs() < 1e-3);
        assert!((a[1] + 1.0).abs() < 1e-3);
        assert!((b[0] - 5.0).abs() < 1e-2);
        assert!((b[2] + 2.0).abs() < 1e-3);
    }
}
