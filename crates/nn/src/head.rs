//! Batched linear-head forward on a shared, reusable workspace.
//!
//! Serving a decoupled model (propagate once, classify per query — GCON, and
//! the GAP/ProGAP-style heads more generally) reduces every query to the
//! same two steps: gather the queried rows of a precomputed feature matrix,
//! and multiply the gathered batch by a weight matrix. [`HeadWorkspace`]
//! owns the two intermediate buffers of that sequence so a serving loop
//! answering queries at steady state performs **no per-batch allocation** —
//! the same `_into` buffer-reuse discipline every training loop in the
//! workspace follows (`gcon-runtime` crate docs).
//!
//! The workspace is generic over the element dtype through `gcon-linalg`'s
//! sealed [`Scalar`] trait (`f64` default): an `f32` feature store runs the
//! whole gather + GEMM sequence in `f32` — doubled SIMD lanes, halved
//! memory traffic — which is how `gcon-serve`'s `f32` store mode gets its
//! speedup. Precision policy lives in `gcon_linalg::scalar`.
//!
//! The forward runs on the pooled `gcon-linalg` GEMM, whose output rows are
//! computed independently of the surrounding row partition; a batch of any
//! size or order therefore reproduces, bitwise, the rows a full-matrix
//! product would produce (within one dtype). `gcon-serve` builds its
//! single-query, batched, and micro-batched paths on this one primitive.

use gcon_linalg::{ops, reduce, Mat, Scalar};

/// Reusable buffers for [`batched head forwards`](HeadWorkspace::forward):
/// the gathered feature batch and the logit output, in the dtype `S` of the
/// feature store (default `f64`). Create once per serving thread (or per
/// [`gcon-serve`-style queue][fwd]) and reuse across batches; both buffers
/// reach steady-state capacity after the first full-size batch.
///
/// [fwd]: HeadWorkspace::forward
#[derive(Clone, Debug, Default)]
pub struct HeadWorkspace<S: Scalar = f64> {
    /// Gathered feature rows, `batch × d`.
    gathered: Mat<S>,
    /// Head output, `batch × c`.
    logits: Mat<S>,
}

impl<S: Scalar> HeadWorkspace<S> {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Gathers `rows` of `features` and multiplies the batch by `weights`:
    /// returns `features[rows, :] · weights` (`batch × c`), computed without
    /// allocating once the workspace has reached steady-state capacity.
    ///
    /// Row `r` of the result is bitwise equal to row `rows[r]` of the full
    /// product `features · weights`, for any batch size, order, or
    /// multiplicity of `rows` (the pooled GEMM computes every output row
    /// independently of the row partition).
    ///
    /// # Panics
    /// Panics if any row index is out of bounds or the inner dimensions
    /// mismatch.
    pub fn forward(&mut self, features: &Mat<S>, rows: &[usize], weights: &Mat<S>) -> &Mat<S> {
        features.select_rows_into(rows, &mut self.gathered);
        ops::matmul_into(&self.gathered, weights, &mut self.logits);
        &self.logits
    }

    /// [`HeadWorkspace::forward`] followed by a per-row argmax written into
    /// `out` (cleared and refilled; the allocation is reused across calls).
    /// The argmax is dtype-independent: `f32 → f64` widening is monotone,
    /// so an `f32` workspace predicts exactly what its widened logits would.
    pub fn forward_argmax_into(
        &mut self,
        features: &Mat<S>,
        rows: &[usize],
        weights: &Mat<S>,
        out: &mut Vec<usize>,
    ) {
        self.forward(features, rows, weights);
        out.clear();
        out.extend(self.logits.rows_iter().map(gcon_linalg::vecops::argmax));
    }

    /// The logits of the last [`HeadWorkspace::forward`] call (`batch × c`).
    pub fn logits(&self) -> &Mat<S> {
        &self.logits
    }

    /// Hard predictions of the last forward (allocating convenience).
    pub fn predictions(&self) -> Vec<usize> {
        reduce::row_argmax(&self.logits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gathered_rows_match_full_product_bitwise() {
        let mut rng = StdRng::seed_from_u64(31);
        let features: Mat = Mat::uniform(40, 12, 1.0, &mut rng);
        let weights: Mat = Mat::uniform(12, 5, 1.0, &mut rng);
        let full = ops::matmul(&features, &weights);
        let mut ws = HeadWorkspace::new();
        // Unordered, duplicated, and single-row batches all reproduce the
        // full product's rows exactly.
        for rows in [vec![3usize, 3, 0, 39, 17], vec![7], (0..40).rev().collect::<Vec<_>>()] {
            let out = ws.forward(&features, &rows, &weights);
            assert_eq!(out.shape(), (rows.len(), 5));
            for (r, &i) in rows.iter().enumerate() {
                assert_eq!(out.row(r), full.row(i), "batch row {r} (node {i})");
            }
        }
    }

    /// The f32 workspace reproduces the full f32 product bitwise and tracks
    /// the f64 workspace within f32 tolerance with matching predictions.
    #[test]
    fn f32_workspace_matches_f32_product_bitwise_and_f64_within_tolerance() {
        let mut rng = StdRng::seed_from_u64(33);
        let features: Mat = Mat::uniform(30, 10, 1.0, &mut rng);
        let weights: Mat = Mat::uniform(10, 4, 1.0, &mut rng);
        let features32 = features.convert::<f32>();
        let weights32 = weights.convert::<f32>();
        let full32 = ops::matmul(&features32, &weights32);
        let mut ws64 = HeadWorkspace::<f64>::new();
        let mut ws32 = HeadWorkspace::<f32>::new();
        let rows: Vec<usize> = vec![29, 0, 7, 7, 15];
        let out64 = ws64.forward(&features, &rows, &weights).clone();
        let out32 = ws32.forward(&features32, &rows, &weights32);
        for (r, &i) in rows.iter().enumerate() {
            assert_eq!(out32.row(r), full32.row(i), "f32 batch row {r}");
            for (a, b) in out32.row(r).iter().zip(out64.row(r)) {
                assert!((*a as f64 - b).abs() < 1e-4, "{a} vs {b}");
            }
        }
        assert_eq!(ws32.predictions(), ws64.predictions());
    }

    #[test]
    fn workspace_is_reused_across_batch_sizes() {
        let mut rng = StdRng::seed_from_u64(32);
        let features: Mat = Mat::uniform(20, 6, 1.0, &mut rng);
        let weights: Mat = Mat::uniform(6, 3, 1.0, &mut rng);
        let mut ws = HeadWorkspace::new();
        let mut preds = Vec::new();
        for size in [20usize, 1, 7, 20] {
            let rows: Vec<usize> = (0..size).collect();
            ws.forward_argmax_into(&features, &rows, &weights, &mut preds);
            assert_eq!(preds.len(), size);
            assert_eq!(ws.logits().shape(), (size, 3));
            assert_eq!(ws.predictions(), preds);
        }
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_row_panics() {
        let features: Mat = Mat::zeros(4, 2);
        let weights: Mat = Mat::zeros(2, 2);
        HeadWorkspace::new().forward(&features, &[4], &weights);
    }
}
