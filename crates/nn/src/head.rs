//! Batched linear-head forward on a shared, reusable workspace.
//!
//! Serving a decoupled model (propagate once, classify per query — GCON, and
//! the GAP/ProGAP-style heads more generally) reduces every query to the
//! same two steps: gather the queried rows of a precomputed feature matrix,
//! and multiply the gathered batch by a weight matrix. [`HeadWorkspace`]
//! owns the two intermediate buffers of that sequence so a serving loop
//! answering queries at steady state performs **no per-batch allocation** —
//! the same `_into` buffer-reuse discipline every training loop in the
//! workspace follows (`gcon-runtime` crate docs).
//!
//! The forward runs on the pooled `gcon-linalg` GEMM, whose output rows are
//! computed independently of the surrounding row partition; a batch of any
//! size or order therefore reproduces, bitwise, the rows a full-matrix
//! product would produce. `gcon-serve` builds its single-query, batched,
//! and micro-batched paths on this one primitive.

use gcon_linalg::{ops, reduce, Mat};

/// Reusable buffers for [`batched head forwards`](HeadWorkspace::forward):
/// the gathered feature batch and the logit output. Create once per serving
/// thread (or per [`gcon-serve`-style queue][fwd]) and reuse across batches;
/// both buffers reach steady-state capacity after the first full-size batch.
///
/// [fwd]: HeadWorkspace::forward
#[derive(Clone, Debug, Default)]
pub struct HeadWorkspace {
    /// Gathered feature rows, `batch × d`.
    gathered: Mat,
    /// Head output, `batch × c`.
    logits: Mat,
}

impl HeadWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Gathers `rows` of `features` and multiplies the batch by `weights`:
    /// returns `features[rows, :] · weights` (`batch × c`), computed without
    /// allocating once the workspace has reached steady-state capacity.
    ///
    /// Row `r` of the result is bitwise equal to row `rows[r]` of the full
    /// product `features · weights`, for any batch size, order, or
    /// multiplicity of `rows` (the pooled GEMM computes every output row
    /// independently of the row partition).
    ///
    /// # Panics
    /// Panics if any row index is out of bounds or the inner dimensions
    /// mismatch.
    pub fn forward(&mut self, features: &Mat, rows: &[usize], weights: &Mat) -> &Mat {
        features.select_rows_into(rows, &mut self.gathered);
        ops::matmul_into(&self.gathered, weights, &mut self.logits);
        &self.logits
    }

    /// [`HeadWorkspace::forward`] followed by a per-row argmax written into
    /// `out` (cleared and refilled; the allocation is reused across calls).
    pub fn forward_argmax_into(
        &mut self,
        features: &Mat,
        rows: &[usize],
        weights: &Mat,
        out: &mut Vec<usize>,
    ) {
        self.forward(features, rows, weights);
        out.clear();
        out.extend(self.logits.rows_iter().map(gcon_linalg::vecops::argmax));
    }

    /// The logits of the last [`HeadWorkspace::forward`] call (`batch × c`).
    pub fn logits(&self) -> &Mat {
        &self.logits
    }

    /// Hard predictions of the last forward (allocating convenience).
    pub fn predictions(&self) -> Vec<usize> {
        reduce::row_argmax(&self.logits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gathered_rows_match_full_product_bitwise() {
        let mut rng = StdRng::seed_from_u64(31);
        let features = Mat::uniform(40, 12, 1.0, &mut rng);
        let weights = Mat::uniform(12, 5, 1.0, &mut rng);
        let full = ops::matmul(&features, &weights);
        let mut ws = HeadWorkspace::new();
        // Unordered, duplicated, and single-row batches all reproduce the
        // full product's rows exactly.
        for rows in [vec![3usize, 3, 0, 39, 17], vec![7], (0..40).rev().collect::<Vec<_>>()] {
            let out = ws.forward(&features, &rows, &weights);
            assert_eq!(out.shape(), (rows.len(), 5));
            for (r, &i) in rows.iter().enumerate() {
                assert_eq!(out.row(r), full.row(i), "batch row {r} (node {i})");
            }
        }
    }

    #[test]
    fn workspace_is_reused_across_batch_sizes() {
        let mut rng = StdRng::seed_from_u64(32);
        let features = Mat::uniform(20, 6, 1.0, &mut rng);
        let weights = Mat::uniform(6, 3, 1.0, &mut rng);
        let mut ws = HeadWorkspace::new();
        let mut preds = Vec::new();
        for size in [20usize, 1, 7, 20] {
            let rows: Vec<usize> = (0..size).collect();
            ws.forward_argmax_into(&features, &rows, &weights, &mut preds);
            assert_eq!(preds.len(), size);
            assert_eq!(ws.logits().shape(), (size, 3));
            assert_eq!(ws.predictions(), preds);
        }
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_row_panics() {
        let features = Mat::zeros(4, 2);
        let weights = Mat::zeros(2, 2);
        HeadWorkspace::new().forward(&features, &[4], &weights);
    }
}
