//! Element-wise activation functions with derivatives expressed in terms of
//! the *output* value, so the backward pass only needs the cached forward
//! activations.

use gcon_linalg::Mat;

/// Activation functions supported by the stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// `max(0, x)`.
    Relu,
    /// Hyperbolic tangent — the paper's `H_mlp` choice for the encoder output
    /// keeps embeddings bounded before L2 row-normalization.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Identity (linear mapping `H(u) = u`, as in SGC).
    Identity,
}

impl Activation {
    /// Applies the activation element-wise.
    #[inline]
    pub fn apply_scalar(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Identity => x,
        }
    }

    /// Derivative dσ/dx expressed as a function of the output `y = σ(x)`.
    ///
    /// ReLU uses the convention σ'(0) = 0.
    #[inline]
    pub fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - y * y,
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Identity => 1.0,
        }
    }

    /// Applies the activation to a matrix in place.
    pub fn apply(self, m: &mut Mat) {
        if self == Activation::Identity {
            return;
        }
        m.map_inplace(|v| self.apply_scalar(v));
    }

    /// Multiplies `grad` in place by σ'(x) computed from the cached output.
    pub fn backprop_inplace(self, output: &Mat, grad: &mut Mat) {
        if self == Activation::Identity {
            return;
        }
        assert_eq!(output.shape(), grad.shape(), "backprop_inplace: shape mismatch");
        for (g, &y) in grad.as_mut_slice().iter_mut().zip(output.as_slice()) {
            *g *= self.derivative_from_output(y);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_values() {
        assert_eq!(Activation::Relu.apply_scalar(-1.0), 0.0);
        assert_eq!(Activation::Relu.apply_scalar(2.0), 2.0);
        assert_eq!(Activation::Relu.derivative_from_output(0.0), 0.0);
        assert_eq!(Activation::Relu.derivative_from_output(3.0), 1.0);
    }

    #[test]
    fn sigmoid_range_and_derivative() {
        let y = Activation::Sigmoid.apply_scalar(0.0);
        assert!((y - 0.5).abs() < 1e-12);
        assert!((Activation::Sigmoid.derivative_from_output(0.5) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let h = 1e-6;
        for act in [Activation::Relu, Activation::Tanh, Activation::Sigmoid, Activation::Identity] {
            for &x in &[-2.0, -0.5, 0.3, 1.7] {
                let y = act.apply_scalar(x);
                let fd = (act.apply_scalar(x + h) - act.apply_scalar(x - h)) / (2.0 * h);
                let analytic = act.derivative_from_output(y);
                assert!(
                    (fd - analytic).abs() < 1e-5,
                    "{act:?} at {x}: fd {fd} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn matrix_apply_and_backprop() {
        let mut m = Mat::from_rows(&[&[-1.0, 2.0]]);
        Activation::Relu.apply(&mut m);
        assert_eq!(m.row(0), &[0.0, 2.0]);
        let mut grad = Mat::from_rows(&[&[5.0, 5.0]]);
        Activation::Relu.backprop_inplace(&m, &mut grad);
        assert_eq!(grad.row(0), &[0.0, 5.0]);
    }

    #[test]
    fn identity_is_noop() {
        let mut m = Mat::from_rows(&[&[-3.0, 4.0]]);
        let orig = m.clone();
        Activation::Identity.apply(&mut m);
        assert_eq!(m, orig);
    }
}
