//! Substrate microbench and perf-trajectory recorder: the dense GEMM and
//! sparse×dense kernels every training loop in the workspace sits on.
//!
//! Each rewritten kernel (the register-tiled, K-cache-blocked `matmul`,
//! pooled sparsity-adaptive `t_matmul`, batched `matmul_bt`, unrolled
//! `spmm`, allocation-free `spmv_into`) is timed against an in-binary copy
//! of the **pre-PR-3 scalar kernel**, run through the same `parallel_rows`
//! partitioning at the same thread count, so the recorded speedup isolates
//! the kernel rewrite from threading effects. Every shape is swept **once
//! per dispatch tier the host supports** (`gcon_runtime::available_tiers`
//! — absent tiers are skipped, never failed, so the CI smoke passes on any
//! box), pinning the tier with `set_kernel_tier`; `t_matmul` additionally
//! sweeps ReLU-style sparsity at 0/50/90/99% zeros to track the adaptive
//! skip-path crossover.
//!
//! The sweep also carries an **f32 column**: for each kernel family one or
//! more shapes are re-timed with the `f64` tiled kernel as the paired
//! "before" and the `f32` tiled kernel (same shape, operands quantized
//! once up front) as the "after", so those rows' speedup isolates the
//! dtype narrowing — half the memory traffic and double the SIMD lanes —
//! from both threading and the scalar→tiled rewrite. The same
//! back-to-back pairing per tier applies; `dtype` in the JSON tells the
//! two row kinds apart (`f64` rows compare scalar-vs-tiled, `f32` rows
//! compare f64-vs-f32 tiled).
//!
//! Results are printed per shape × tier and written
//! machine-readably to `BENCH_linalg.json` at the workspace root (override
//! with `GCON_BENCH_OUT`); `GCON_BENCH_QUICK=1` shrinks the sweep for CI
//! smoke runs.

use criterion::black_box;
use gcon_bench::median_time_ns as time_ns;
use gcon_graph::normalize::row_stochastic_default;
use gcon_graph::Csr;
use gcon_linalg::{ops, Mat};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One before/after comparison row of the JSON report.
///
/// `dtype` says what the pairing means: `"f64"` rows time the pre-PR
/// scalar kernel against the tiled `f64` kernel; `"f32"` rows time the
/// tiled `f64` kernel against the tiled `f32` kernel on the same shape.
struct Row {
    kernel: &'static str,
    shape: String,
    dtype: &'static str,
    tier: gcon_runtime::KernelTier,
    ns_before: f64,
    ns_after: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.ns_before / self.ns_after.max(1.0)
    }
}

// ---- pre-PR reference kernels (the seed/PR-1 scalar loops) ----

/// The pre-PR `matmul_block`: scalar i-k-j with a zero-skip branch,
/// re-reading and re-writing the output row on every `k` step.
fn ref_matmul_into(a: &Mat, b: &Mat, c: &mut Mat) {
    let (m, k) = a.shape();
    let n = b.cols();
    c.reset_to_zeros(m, n);
    gcon_runtime::parallel_rows(c.as_mut_slice(), m, n, m * k * n, |block, start, end| {
        for i in start..end {
            let arow = a.row(i);
            let crow = &mut block[(i - start) * n..(i - start + 1) * n];
            for (kk, &aik) in arow.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                for (cv, &bv) in crow.iter_mut().zip(b.row(kk)) {
                    *cv += aik * bv;
                }
            }
        }
    });
}

/// The pre-PR `t_matmul_into`: completely serial sample-major scatter.
fn ref_t_matmul_into(a: &Mat, b: &Mat, c: &mut Mat) {
    let (n_samples, d_in) = a.shape();
    let d_out = b.cols();
    c.reset_to_zeros(d_in, d_out);
    let cs = c.as_mut_slice();
    for i in 0..n_samples {
        let brow = b.row(i);
        for (k, &av) in a.row(i).iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let crow = &mut cs[k * d_out..(k + 1) * d_out];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
}

/// The pre-PR `matmul_bt_into`: one naive sequential dot per output.
fn ref_matmul_bt_into(a: &Mat, b: &Mat, c: &mut Mat) {
    let m = a.rows();
    let n = b.rows();
    let k = a.cols();
    c.reset_to_zeros(m, n);
    gcon_runtime::parallel_rows(c.as_mut_slice(), m, n, m * k * n, |block, start, _end| {
        for (local, crow) in block.chunks_mut(n.max(1)).enumerate() {
            let arow = a.row(start + local);
            for (j, cv) in crow.iter_mut().enumerate() {
                *cv = arow.iter().zip(b.row(j)).map(|(x, y)| x * y).sum();
            }
        }
    });
}

/// The pre-PR `spmm_block`: one scaled pass over the dense row per nonzero.
fn ref_spmm_into(sp: &Csr, b: &Mat, out: &mut Mat) {
    let d = b.cols();
    out.reset_to_zeros(sp.rows(), d);
    let work = sp.nnz() * d;
    gcon_runtime::parallel_rows(out.as_mut_slice(), sp.rows(), d, work, |block, start, end| {
        for i in start..end {
            let (cols, vals) = sp.row(i);
            let orow = &mut block[(i - start) * d..(i - start + 1) * d];
            for (&j, &v) in cols.iter().zip(vals) {
                for (o, &bv) in orow.iter_mut().zip(b.row(j as usize)) {
                    *o += v * bv;
                }
            }
        }
    });
}

/// The pre-PR `spmv`: sequential per-row reduction, allocating per call.
fn ref_spmv(sp: &Csr, x: &[f64]) -> Vec<f64> {
    (0..sp.rows())
        .map(|i| {
            let (cols, vals) = sp.row(i);
            cols.iter().zip(vals).map(|(&j, &v)| v * x[j as usize]).sum()
        })
        .collect()
}

fn random_graph_csr(n: usize, edges: usize, rng: &mut StdRng) -> Csr {
    let g = gcon_graph::generators::erdos_renyi_gnm(n, edges, rng);
    row_stochastic_default(&g)
}

/// Times `f` once per available tier (pinned via the entry-tier-restoring
/// `gcon_runtime::for_each_available_tier`), appending one row per tier.
///
/// The tier-independent reference kernel `ref_f` is re-timed immediately
/// before each tier measurement rather than once up front: the shared dev
/// box drifts between throughput phases on a minutes timescale, and pairing
/// the two timings back-to-back keeps each row's before/after ratio
/// comparable even when the absolute numbers wander between rows.
fn sweep_tiers(
    rows: &mut Vec<Row>,
    kernel: &'static str,
    shape: &str,
    dtype: &'static str,
    reps: usize,
    mut ref_f: impl FnMut(),
    mut f: impl FnMut(),
) {
    gcon_runtime::for_each_available_tier(|tier| {
        let ns_before = time_ns(reps, &mut ref_f);
        let ns_after = time_ns(reps, &mut f);
        rows.push(Row { kernel, shape: shape.to_string(), dtype, tier, ns_before, ns_after });
    });
}

fn main() {
    // Quick mode only for a truthy setting: `GCON_BENCH_QUICK=0` (or empty)
    // must run the full sweep, since that regenerates the committed file.
    let quick =
        std::env::var("GCON_BENCH_QUICK").map(|v| !v.is_empty() && v != "0").unwrap_or(false);
    let threads = gcon_runtime::configured_width();
    let tiers = gcon_runtime::available_tiers();
    // Full-sweep medians feed the committed trajectory file; 9 reps keeps
    // the median stable against single-core frequency jitter (±15% was
    // observed between 5-rep runs on µs-scale kernels).
    let reps = if quick { 3 } else { 9 };
    let mut rng = StdRng::seed_from_u64(0);
    let mut rows: Vec<Row> = Vec::new();

    // GEMM sweep: square shapes around the paper's layer sizes plus the
    // 512³ headline shape (whose K = 2·KC exercises the cache-block loop),
    // and one rectangular epoch-like shape.
    let gemm_shapes: &[(usize, usize, usize)] = if quick {
        &[(64, 64, 64), (192, 192, 192), (300, 129, 61)]
    } else {
        &[(64, 64, 64), (256, 256, 256), (512, 512, 512), (300, 129, 61)]
    };
    for &(m, k, n) in gemm_shapes {
        let a = Mat::uniform(m, k, 1.0, &mut rng);
        let b = Mat::uniform(k, n, 1.0, &mut rng);
        let mut out = Mat::default();
        let mut out_ref = Mat::default();
        let shape = format!("{m}x{k}x{n}");
        sweep_tiers(
            &mut rows,
            "matmul",
            &shape,
            "f64",
            reps,
            || ref_matmul_into(black_box(&a), black_box(&b), &mut out_ref),
            || ops::matmul_into(black_box(&a), black_box(&b), &mut out),
        );
        // f32 column: quantize the operands once, then pair the f64 tiled
        // kernel against the f32 tiled kernel on the identical shape.
        let a32 = a.convert::<f32>();
        let b32 = b.convert::<f32>();
        let mut out32: Mat<f32> = Mat::default();
        sweep_tiers(
            &mut rows,
            "matmul",
            &shape,
            "f32",
            reps,
            || ops::matmul_into(black_box(&a), black_box(&b), &mut out),
            || ops::matmul_into(black_box(&a32), black_box(&b32), &mut out32),
        );
    }

    // Aᵀ·B (weight gradients): tall-skinny sample-major shapes. `zeros` is
    // the fraction of `A` entries ReLU-masked to 0 — the old scalar kernel
    // had an `if av == 0.0 { continue }` zero-skip whose cost scaled with
    // nnz(A), so the dense-A speedup alone would overstate the win on the
    // post-ReLU activation matrices this kernel actually multiplies. The
    // 90/99% points sit beyond TM_SKIP_ZERO_FRAC, where the adaptive kernel
    // must route to its own skip loop and no longer lose to the old one.
    let tm_shapes: &[(usize, usize, usize, f64)] = if quick {
        &[(1000, 64, 32, 0.0), (1000, 64, 32, 0.9)]
    } else {
        &[
            (2000, 128, 64, 0.0),
            (5000, 256, 16, 0.0),
            (811, 67, 29, 0.0),
            (2000, 128, 64, 0.5),
            (2000, 128, 64, 0.9),
            (2000, 128, 64, 0.99),
        ]
    };
    for &(s, d_in, d_out, zeros) in tm_shapes {
        let mut a: Mat = Mat::uniform(s, d_in, 1.0, &mut rng);
        if zeros > 0.0 {
            // ReLU-like mask: zero out a deterministic pseudo-random subset.
            a.map_inplace(|v| if (v * 1e4).rem_euclid(1.0) < zeros { 0.0 } else { v });
        }
        let b = Mat::uniform(s, d_out, 1.0, &mut rng);
        let mut out = Mat::default();
        let mut out_ref = Mat::default();
        let shape = format!("{s}x{d_in}->{d_in}x{d_out}_z{:.0}%", zeros * 100.0);
        sweep_tiers(
            &mut rows,
            "t_matmul",
            &shape,
            "f64",
            reps,
            || ref_t_matmul_into(black_box(&a), black_box(&b), &mut out_ref),
            || ops::t_matmul_into(black_box(&a), black_box(&b), &mut out),
        );
        // f32 column at the dense and 90%-sparse points only: the dtype win
        // is about lanes and bandwidth, which the zero-skip sweep already
        // characterizes in f64.
        if zeros == 0.0 || zeros == 0.9 {
            let a32 = a.convert::<f32>();
            let b32 = b.convert::<f32>();
            let mut out32: Mat<f32> = Mat::default();
            sweep_tiers(
                &mut rows,
                "t_matmul",
                &shape,
                "f32",
                reps,
                || ops::t_matmul_into(black_box(&a), black_box(&b), &mut out),
                || ops::t_matmul_into(black_box(&a32), black_box(&b32), &mut out32),
            );
        }
    }

    // A·Bᵀ (pairwise row dots, the logits path).
    let bt_shapes: &[(usize, usize, usize)] =
        if quick { &[(128, 128, 64)] } else { &[(512, 512, 256), (300, 301, 129)] };
    for &(m, n, k) in bt_shapes {
        let a = Mat::uniform(m, k, 1.0, &mut rng);
        let b = Mat::uniform(n, k, 1.0, &mut rng);
        let mut out = Mat::default();
        let mut out_ref = Mat::default();
        let shape = format!("{m}x{k}·t{n}");
        sweep_tiers(
            &mut rows,
            "matmul_bt",
            &shape,
            "f64",
            reps,
            || ref_matmul_bt_into(black_box(&a), black_box(&b), &mut out_ref),
            || ops::matmul_bt_into(black_box(&a), black_box(&b), &mut out),
        );
        let a32 = a.convert::<f32>();
        let b32 = b.convert::<f32>();
        let mut out32: Mat<f32> = Mat::default();
        sweep_tiers(
            &mut rows,
            "matmul_bt",
            &shape,
            "f32",
            reps,
            || ops::matmul_bt_into(black_box(&a), black_box(&b), &mut out),
            || ops::matmul_bt_into(black_box(&a32), black_box(&b32), &mut out32),
        );
    }

    // Sparse×dense at the paper's propagation widths d ∈ {16, 64, 256}.
    let (sp_n, sp_m) = if quick { (1000, 5000) } else { (2000, 10_000) };
    let a_tilde = random_graph_csr(sp_n, sp_m, &mut rng);
    let spmm_widths: &[usize] = if quick { &[16, 64] } else { &[16, 64, 256] };
    for &d in spmm_widths {
        let x = Mat::uniform(sp_n, d, 1.0, &mut rng);
        let mut out = Mat::default();
        let mut out_ref = Mat::default();
        let shape = format!("n{sp_n}_nnz{}_d{d}", a_tilde.nnz());
        sweep_tiers(
            &mut rows,
            "spmm",
            &shape,
            "f64",
            reps,
            || ref_spmm_into(black_box(&a_tilde), black_box(&x), &mut out_ref),
            || a_tilde.spmm_into(black_box(&x), &mut out),
        );
        let sp32 = a_tilde.convert::<f32>();
        let x32 = x.convert::<f32>();
        let mut out32: Mat<f32> = Mat::default();
        sweep_tiers(
            &mut rows,
            "spmm",
            &shape,
            "f32",
            reps,
            || a_tilde.spmm_into(black_box(&x), &mut out),
            || sp32.spmm_into(black_box(&x32), &mut out32),
        );
    }

    // spmv: per-call allocation removed + unrolled row reduction.
    {
        let x: Vec<f64> = (0..sp_n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut out = Vec::new();
        let shape = format!("n{sp_n}_nnz{}", a_tilde.nnz());
        sweep_tiers(
            &mut rows,
            "spmv",
            &shape,
            "f64",
            reps,
            || {
                black_box(ref_spmv(black_box(&a_tilde), black_box(&x)));
            },
            || a_tilde.spmv_into(black_box(&x), &mut out),
        );
        let sp32 = a_tilde.convert::<f32>();
        let x32: Vec<f32> = x.iter().map(|&v| v as f32).collect();
        let mut out32: Vec<f32> = Vec::new();
        sweep_tiers(
            &mut rows,
            "spmv",
            &shape,
            "f32",
            reps,
            || a_tilde.spmv_into(black_box(&x), &mut out),
            || sp32.spmv_into(black_box(&x32), &mut out32),
        );
    }

    // Report.
    let tier_names: Vec<&str> = tiers.iter().map(|t| t.name()).collect();
    println!(
        "linalg kernel sweep (GCON_THREADS={threads}, quick={quick}, tiers={})",
        tier_names.join("/")
    );
    for r in &rows {
        println!(
            "{}/{} [{}] @ {}: before {:.0} ns, after {:.0} ns, speedup {:.2}x",
            r.kernel,
            r.shape,
            r.dtype,
            r.tier,
            r.ns_before,
            r.ns_after,
            r.speedup()
        );
    }

    // Machine-readable trajectory file.
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"linalg\",\n");
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!(
        "  \"tiers\": [{}],\n",
        tier_names.iter().map(|t| format!("\"{t}\"")).collect::<Vec<_>>().join(", ")
    ));
    json.push_str("  \"unit\": \"ns_per_call_median\",\n  \"kernels\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"shape\": \"{}\", \"dtype\": \"{}\", \"tier\": \"{}\", \
             \"ns_before\": {:.0}, \"ns_after\": {:.0}, \"speedup\": {:.3}}}{}\n",
            r.kernel,
            r.shape,
            r.dtype,
            r.tier,
            r.ns_before,
            r.ns_after,
            r.speedup(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let out_path = std::env::var("GCON_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_linalg.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out_path, &json).expect("failed to write BENCH_linalg.json");
    println!("wrote {out_path}");
}
