//! Substrate microbench: the dense GEMM and sparse×dense kernels every
//! training loop in the workspace sits on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcon_graph::normalize::row_stochastic_default;
use gcon_linalg::{ops, Mat};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_linalg(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let mut group = c.benchmark_group("linalg");
    group.sample_size(10);

    for n in [64usize, 256] {
        let a = Mat::uniform(n, n, 1.0, &mut rng);
        let b = Mat::uniform(n, n, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("matmul", n), &n, |bench, _| {
            bench.iter(|| ops::matmul(&a, &b))
        });
        group.bench_with_input(BenchmarkId::new("t_matmul", n), &n, |bench, _| {
            bench.iter(|| ops::t_matmul(&a, &b))
        });
    }

    let g = gcon_graph::generators::erdos_renyi_gnm(2000, 10_000, &mut rng);
    let a_tilde = row_stochastic_default(&g);
    let x = Mat::uniform(2000, 64, 1.0, &mut rng);
    group.bench_function("spmm_2000x64", |bench| bench.iter(|| a_tilde.spmm(&x)));

    group.finish();
}

criterion_group!(benches, bench_linalg);
criterion_main!(benches);
