//! Dynamic-graph update bench: incremental store refresh
//! (`gcon_serve::DynamicServingModel::apply_delta`) against the full
//! rebuild (`ServingModel::build`) a static store would pay per mutation.
//!
//! Four measurements per run:
//!
//! - **full rebuild** — one `ServingModel::build` on the current graph: the
//!   cost a static deployment pays for *every* edge that changes.
//! - **incremental single-edge** — one `apply_delta` toggling a single
//!   edge: O(affected rows) chain refresh + store row patch + generation
//!   publish. The acceptance target is ≥ 10× cheaper than the rebuild;
//!   the printed report and `BENCH_updates.json` record the ratio.
//! - **incremental onboard** — one `apply_delta` that adds a node with one
//!   edge (store grows a row, new node becomes queryable).
//! - **sustained updates/sec while serving** — a writer thread applying
//!   deltas back-to-back while reader threads hammer snapshots; reports
//!   realized updates/sec and the queries/sec served *concurrently* (the
//!   staleness-aware generation swap never blocks readers on the refresh).
//!
//! The bench model uses finite propagation scales, so every refreshed
//! generation is **bitwise identical** to a from-scratch rebuild — asserted
//! inline after the timed section, making the speedup an exactness-free
//! comparison. Results go to `BENCH_updates.json` at the workspace root
//! (override with `GCON_BENCH_OUT`); `GCON_BENCH_QUICK=1` shrinks the
//! dataset and rep counts for CI smoke runs.

use gcon_bench::median_time_ns as time_ns;
use gcon_core::train::train_gcon;
use gcon_core::{GconConfig, PropagationStep};
use gcon_graph::CsrDelta;
use gcon_linalg::Mat;
use gcon_serve::{DynamicServingModel, ServingMode, ServingModel, StoreDtype};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

fn main() {
    let quick =
        std::env::var("GCON_BENCH_QUICK").map(|v| !v.is_empty() && v != "0").unwrap_or(false);
    let scale = if quick { 0.12 } else { 0.3 };
    let dataset = gcon_datasets::cora_ml(scale, 7);
    let n = dataset.graph.num_nodes();
    println!(
        "bench_updates: {} at scale {scale} ({n} nodes, {} edges), GCON_THREADS={}",
        dataset.name,
        dataset.graph.num_edges(),
        gcon_runtime::configured_width()
    );

    let mut rng = StdRng::seed_from_u64(7);
    // Same head shape as bench_serve: d1 = 32 over two finite scales — the
    // refreshed generations are bitwise-exact, so the speedup below trades
    // away nothing.
    let config = GconConfig {
        encoder: gcon_core::encoder::EncoderConfig {
            hidden: 32,
            d1: 32,
            epochs: if quick { 20 } else { 60 },
            lr: 0.02,
            weight_decay: 1e-5,
        },
        steps: vec![PropagationStep::Finite(1), PropagationStep::Finite(2)],
        optimizer: gcon_core::model::OptimizerConfig {
            lr: 0.05,
            max_iters: if quick { 100 } else { 400 },
            grad_tol: 1e-7,
        },
        ..Default::default()
    };
    let model = train_gcon(
        &config,
        &dataset.graph,
        &dataset.features,
        &dataset.labels,
        &dataset.split.train,
        dataset.num_classes,
        4.0,
        1e-3,
        &mut rng,
    );

    let reps = if quick { 3 } else { 5 };
    let mut sink = 0usize;

    // Baseline: what a static store pays per mutation — a full rebuild.
    let rebuild_ns = time_ns(reps, || {
        let s = ServingModel::build_with_dtype(
            &model,
            &dataset.graph,
            &dataset.features,
            ServingMode::Public,
            StoreDtype::F64,
        );
        sink ^= s.num_nodes();
    });

    let dynamic = DynamicServingModel::build_with_dtype(
        &model,
        dataset.graph.clone(),
        &dataset.features,
        ServingMode::Public,
        StoreDtype::F64,
    );

    // A non-edge to toggle: insert on even calls, remove on odd, so every
    // timed apply_delta performs real work and the graph stays bounded.
    let u = (n / 3) as u32;
    let v = (0..n as u32)
        .find(|&w| w != u && !dataset.graph.neighbors(u).contains(&w))
        .expect("graph is not complete");
    let mut inserted = false;
    let mut last_affected = 0usize;
    let incr_ns = time_ns(reps * 10, || {
        let mut delta = CsrDelta::new();
        if inserted {
            delta.remove_edge(u, v);
        } else {
            delta.insert_edge(u, v);
        }
        inserted = !inserted;
        let outcome = dynamic.apply_delta(&delta, None);
        last_affected = outcome.affected_rows;
        sink ^= outcome.generation as usize;
    });
    // Leave the graph back in its original edge set for the equality check.
    if inserted {
        let mut delta = CsrDelta::new();
        delta.remove_edge(u, v);
        dynamic.apply_delta(&delta, None);
    }
    let rebuilt = ServingModel::build_with_dtype(
        &model,
        &dataset.graph,
        &dataset.features,
        ServingMode::Public,
        StoreDtype::F64,
    );
    assert_eq!(
        dynamic.snapshot().model().store_f64().unwrap().as_slice(),
        rebuilt.store_f64().unwrap().as_slice(),
        "incremental refreshes diverged from a from-scratch rebuild — exactness broken"
    );

    // Onboarding: add one node with one edge per timed call (store grows).
    let d0 = dataset.features.cols();
    let mut next = n;
    let onboard_ns = time_ns(reps * 5, || {
        let mut delta = CsrDelta::new();
        delta.add_nodes(1);
        delta.insert_edge(next as u32, (next % n) as u32);
        let feats = Mat::from_fn(1, d0, |_, c| ((next * 13 + c * 5) % 17) as f64 / 17.0 - 0.4);
        let outcome = dynamic.apply_delta(&delta, Some(&feats));
        sink ^= outcome.onboarded.start as usize;
        next += 1;
    });

    // Sustained: one writer toggling edges flat-out, 3 readers querying
    // snapshots the whole time. Readers never block on the refresh lock.
    let updates_target = if quick { 40 } else { 200 };
    let stop = AtomicBool::new(false);
    let queries = AtomicUsize::new(0);
    let t = Instant::now();
    let mut sustained_ns = 0.0;
    std::thread::scope(|scope| {
        for tid in 0..3usize {
            let (stop, queries, dynamic) = (&stop, &queries, &dynamic);
            scope.spawn(move || {
                let mut q = tid;
                while !stop.load(Ordering::Relaxed) {
                    let snap = dynamic.snapshot();
                    std::hint::black_box(snap.model().logits(q % n));
                    queries.fetch_add(1, Ordering::Relaxed);
                    q += 7;
                }
            });
        }
        let mut ins = false;
        for _ in 0..updates_target {
            let mut delta = CsrDelta::new();
            if ins {
                delta.remove_edge(u, v);
            } else {
                delta.insert_edge(u, v);
            }
            ins = !ins;
            dynamic.apply_delta(&delta, None);
        }
        sustained_ns = t.elapsed().as_nanos() as f64;
        stop.store(true, Ordering::Relaxed);
    });
    let concurrent_queries = queries.load(Ordering::Relaxed);
    let updates_per_sec = updates_target as f64 / (sustained_ns / 1e9);
    let queries_per_sec = concurrent_queries as f64 / (sustained_ns / 1e9);

    let speedup = rebuild_ns / incr_ns;
    println!("  {:<40} {:>14} {:>14}", "path", "ns/update", "updates/sec");
    for (label, ns) in [
        ("full rebuild (static baseline)", rebuild_ns),
        ("incremental single-edge", incr_ns),
        ("incremental onboard (+1 node)", onboard_ns),
    ] {
        println!("  {:<40} {:>14.0} {:>14.0}", label, ns, 1e9 / ns);
    }
    println!(
        "  single-edge refresh speedup vs rebuild: {speedup:.1}x  \
         (affected rows last toggle: {last_affected}/{n})"
    );
    println!(
        "  sustained: {updates_per_sec:.0} updates/sec with {queries_per_sec:.0} \
         queries/sec served concurrently ({concurrent_queries} queries over \
         {updates_target} updates)"
    );
    std::hint::black_box(sink);

    let mut json = String::from("{\n  \"bench\": \"updates\",\n");
    json.push_str(&format!("  \"nodes\": {n},\n  \"quick\": {quick},\n"));
    json.push_str("  \"unit\": \"ns_per_update_median\",\n");
    json.push_str(&format!(
        "  \"full_rebuild_ns\": {rebuild_ns:.0},\n  \"incremental_edge_ns\": {incr_ns:.0},\n"
    ));
    json.push_str(&format!(
        "  \"incremental_onboard_ns\": {onboard_ns:.0},\n  \
         \"speedup_vs_rebuild\": {speedup:.1},\n"
    ));
    json.push_str(&format!(
        "  \"sustained\": {{ \"updates_per_sec\": {updates_per_sec:.0}, \
         \"concurrent_queries_per_sec\": {queries_per_sec:.0}, \
         \"updates\": {updates_target}, \"queries\": {concurrent_queries} }}\n}}\n"
    ));
    let out_path = std::env::var("GCON_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_updates.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out_path, &json).expect("failed to write BENCH_updates.json");
    println!("  wrote {out_path}");
}
