//! Dynamic-graph update bench: incremental store refresh
//! (`gcon_serve::DynamicServingModel::apply_delta`) against the full
//! rebuild (`ServingModel::build`) a static store would pay per mutation.
//!
//! Six measurements per run:
//!
//! - **full rebuild** — one `ServingModel::build` on the current graph: the
//!   cost a static deployment pays for *every* edge that changes.
//! - **incremental single-edge** — one `apply_delta` toggling a single
//!   edge: O(affected rows) chain refresh + store row patch + generation
//!   publish. The acceptance target is ≥ 10× cheaper than the rebuild;
//!   the printed report and `BENCH_updates.json` record the ratio.
//! - **incremental onboard** — one `apply_delta` that adds a node with one
//!   edge (store grows a row, new node becomes queryable).
//! - **`∞`-scale solver comparison** — the same single-edge toggle on a
//!   model with an `Infinite` propagation step, refreshed by forward-push
//!   residual maintenance (`PprSolver::Push`, O(vol(affected)) per edit)
//!   vs the warm multi-RHS CGNR re-solve (`PprSolver::Cgnr`, global even
//!   for a local edit). Both publish the same certified staleness class.
//! - **delta-burst coalescing sweep** — k ∈ {1, 8, 64} distinct-edge
//!   toggles applied as k individual refreshes vs merged
//!   (`CsrDelta::merge`, exactly the `DeltaCoalescer` leader path) into
//!   **one** refresh, plus the end-to-end wall time of a real concurrent
//!   burst through `DeltaCoalescer` (includes thread spawn — an upper
//!   bound on scheduler overhead).
//! - **sustained updates/sec while serving** — a writer thread applying
//!   deltas back-to-back while reader threads hammer snapshots; reports
//!   realized updates/sec and the queries/sec served *concurrently* (the
//!   staleness-aware generation swap never blocks readers on the refresh).
//!
//! The main bench model uses finite propagation scales, so every refreshed
//! generation is **bitwise identical** to a from-scratch rebuild — asserted
//! inline after the timed section, making the speedup an exactness-free
//! comparison. Results go to `BENCH_updates.json` at the workspace root
//! (override with `GCON_BENCH_OUT`); `GCON_BENCH_QUICK=1` shrinks the
//! dataset and rep counts for CI smoke runs.

use gcon_bench::median_time_ns as time_ns;
use gcon_core::train::train_gcon;
use gcon_core::{GconConfig, InfRefreshKind, PprSolver, PropagationStep};
use gcon_graph::{CsrDelta, Graph};
use gcon_linalg::Mat;
use gcon_serve::{
    CoalesceConfig, DeltaCoalescer, DynamicServingModel, ServingMode, ServingModel, StoreDtype,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// `k` pairwise-distinct normalized edge keys plus each edge's presence in
/// the *initial* graph. Distinct keys never net against each other under
/// `CsrDelta::merge`, so every burst below performs `k` real edge flips.
fn distinct_toggle_keys(graph: &Graph, k: usize) -> Vec<(u32, u32, bool)> {
    let n = graph.num_nodes() as u32;
    let mut seen = HashSet::new();
    let mut keys = Vec::new();
    let mut i = 0u32;
    while keys.len() < k {
        let (mut u, mut v) = ((i * 37 + 11) % n, (i * 53 + 29) % n);
        i += 1;
        if u == v {
            continue;
        }
        if u > v {
            std::mem::swap(&mut u, &mut v);
        }
        if !seen.insert((u, v)) {
            continue;
        }
        keys.push((u, v, graph.has_edge(u, v)));
    }
    keys
}

/// One toggle delta per key: `parity` counts how many times the whole
/// burst has been applied, so repeated reps alternate insert/remove and
/// every application performs real work.
fn burst_deltas(keys: &[(u32, u32, bool)], parity: usize) -> Vec<CsrDelta> {
    keys.iter()
        .map(|&(u, v, present0)| {
            let present = present0 ^ (parity % 2 == 1);
            let mut d = CsrDelta::new();
            if present {
                d.remove_edge(u, v);
            } else {
                d.insert_edge(u, v);
            }
            d
        })
        .collect()
}

fn main() {
    let quick =
        std::env::var("GCON_BENCH_QUICK").map(|v| !v.is_empty() && v != "0").unwrap_or(false);
    let scale = if quick { 0.12 } else { 0.3 };
    let dataset = gcon_datasets::cora_ml(scale, 7);
    let n = dataset.graph.num_nodes();
    println!(
        "bench_updates: {} at scale {scale} ({n} nodes, {} edges), GCON_THREADS={}",
        dataset.name,
        dataset.graph.num_edges(),
        gcon_runtime::configured_width()
    );

    let mut rng = StdRng::seed_from_u64(7);
    // Same head shape as bench_serve: d1 = 32 over two finite scales — the
    // refreshed generations are bitwise-exact, so the speedup below trades
    // away nothing.
    let config = GconConfig {
        encoder: gcon_core::encoder::EncoderConfig {
            hidden: 32,
            d1: 32,
            epochs: if quick { 20 } else { 60 },
            lr: 0.02,
            weight_decay: 1e-5,
        },
        steps: vec![PropagationStep::Finite(1), PropagationStep::Finite(2)],
        optimizer: gcon_core::model::OptimizerConfig {
            lr: 0.05,
            max_iters: if quick { 100 } else { 400 },
            grad_tol: 1e-7,
        },
        ..Default::default()
    };
    let model = train_gcon(
        &config,
        &dataset.graph,
        &dataset.features,
        &dataset.labels,
        &dataset.split.train,
        dataset.num_classes,
        4.0,
        1e-3,
        &mut rng,
    );

    let reps = if quick { 3 } else { 5 };
    let mut sink = 0usize;

    // Baseline: what a static store pays per mutation — a full rebuild.
    let rebuild_ns = time_ns(reps, || {
        let s = ServingModel::build_with_dtype(
            &model,
            &dataset.graph,
            &dataset.features,
            ServingMode::Public,
            StoreDtype::F64,
        );
        sink ^= s.num_nodes();
    });

    let dynamic = DynamicServingModel::build_with_dtype(
        &model,
        dataset.graph.clone(),
        &dataset.features,
        ServingMode::Public,
        StoreDtype::F64,
    );

    // A non-edge to toggle: insert on even calls, remove on odd, so every
    // timed apply_delta performs real work and the graph stays bounded.
    let u = (n / 3) as u32;
    let v = (0..n as u32)
        .find(|&w| w != u && !dataset.graph.neighbors(u).contains(&w))
        .expect("graph is not complete");
    let mut inserted = false;
    let mut last_affected = 0usize;
    let incr_ns = time_ns(reps * 10, || {
        let mut delta = CsrDelta::new();
        if inserted {
            delta.remove_edge(u, v);
        } else {
            delta.insert_edge(u, v);
        }
        inserted = !inserted;
        let outcome = dynamic.apply_delta(&delta, None);
        last_affected = outcome.affected_rows;
        sink ^= outcome.generation as usize;
    });
    // Leave the graph back in its original edge set for the equality check.
    if inserted {
        let mut delta = CsrDelta::new();
        delta.remove_edge(u, v);
        dynamic.apply_delta(&delta, None);
    }
    let rebuilt = ServingModel::build_with_dtype(
        &model,
        &dataset.graph,
        &dataset.features,
        ServingMode::Public,
        StoreDtype::F64,
    );
    assert_eq!(
        dynamic.snapshot().model().store_f64().unwrap().as_slice(),
        rebuilt.store_f64().unwrap().as_slice(),
        "incremental refreshes diverged from a from-scratch rebuild — exactness broken"
    );

    // Onboarding: add one node with one edge per timed call (store grows).
    let d0 = dataset.features.cols();
    let mut next = n;
    let onboard_ns = time_ns(reps * 5, || {
        let mut delta = CsrDelta::new();
        delta.add_nodes(1);
        delta.insert_edge(next as u32, (next % n) as u32);
        let feats = Mat::from_fn(1, d0, |_, c| ((next * 13 + c * 5) % 17) as f64 / 17.0 - 0.4);
        let outcome = dynamic.apply_delta(&delta, Some(&feats));
        sink ^= outcome.onboarded.start as usize;
        next += 1;
    });

    // ∞-scale solver comparison: same trained weights, steps swapped to
    // [Finite(1), Infinite] (the head width stays 2·d1, so Θ is
    // shape-exact; refresh cost does not depend on the head values). Each
    // model pins its solver through `config.ppr_solver` — the
    // GCON_REFRESH_SOLVER env override is process-wide, the config is not.
    // `Cgnr` is PR 7's warm path: a global multi-RHS re-solve even when
    // the edit touches a handful of rows; `Push` repairs the residual on
    // the touched rows and sweeps only where it exceeds the certified
    // threshold.
    let mut inf_model = model.clone();
    inf_model.config.steps = vec![PropagationStep::Finite(1), PropagationStep::Infinite];
    let mut inf_results: Vec<(&str, f64, f64)> = Vec::new();
    for (name, solver, expect) in [
        ("push", PprSolver::Push, InfRefreshKind::Push),
        ("warm-cgnr", PprSolver::Cgnr, InfRefreshKind::Cgnr),
    ] {
        let mut m = inf_model.clone();
        m.config.ppr_solver = solver;
        let dyn_inf = DynamicServingModel::build_with_dtype(
            &m,
            dataset.graph.clone(),
            &dataset.features,
            ServingMode::Public,
            StoreDtype::F64,
        );
        let mut ins = false;
        let mut last_bound = 0.0;
        let ns = time_ns(reps * 2, || {
            let mut delta = CsrDelta::new();
            if ins {
                delta.remove_edge(u, v);
            } else {
                delta.insert_edge(u, v);
            }
            ins = !ins;
            let outcome = dyn_inf.apply_delta(&delta, None);
            assert_eq!(
                outcome.inf_solver,
                Some(expect),
                "∞ refresh ran a different solver than the configured {name}"
            );
            last_bound = outcome.staleness_bound;
            sink ^= outcome.inf_iterations;
        });
        inf_results.push((name, ns, last_bound));
    }
    let (inf_push_ns, inf_push_bound) = (inf_results[0].1, inf_results[0].2);
    let inf_cgnr_ns = inf_results[1].1;
    let inf_push_speedup = inf_cgnr_ns / inf_push_ns;
    // Both solvers certify the same staleness class — the push bound must
    // sit at the converged-solve level, not merely "finite".
    assert!(
        inf_push_bound < 1e-8,
        "push certificate {inf_push_bound:e} is far above the converged-solve level"
    );

    // Delta-burst coalescing sweep: k individual refreshes vs the
    // DeltaCoalescer leader path (merge FIFO + one apply_delta), plus the
    // end-to-end wall time of a real concurrent burst through the
    // coalescer. Finite model ⇒ both paths are bitwise equal to a rebuild
    // on the final graph; the round-trip equality is asserted after each
    // timed sweep.
    let burst_ks: &[usize] = if quick { &[1, 8] } else { &[1, 8, 64] };
    let mut burst_rows: Vec<(usize, f64, f64, f64)> = Vec::new();
    for &k in burst_ks {
        let keys = distinct_toggle_keys(&dataset.graph, k);
        let build_model = || {
            DynamicServingModel::build_with_dtype(
                &model,
                dataset.graph.clone(),
                &dataset.features,
                ServingMode::Public,
                StoreDtype::F64,
            )
        };
        let individual = build_model();
        let merged_model = build_model();
        let wall_model = build_model();

        let mut par_i = 0usize;
        let individual_ns = time_ns(reps, || {
            for d in burst_deltas(&keys, par_i) {
                sink ^= individual.apply_delta(&d, None).affected_rows;
            }
            par_i += 1;
        });

        let mut par_m = 0usize;
        let coalesced_ns = time_ns(reps, || {
            let mut ds = burst_deltas(&keys, par_m).into_iter();
            par_m += 1;
            let mut merged = ds.next().expect("k ≥ 1");
            for d in ds {
                merged.merge(&d);
            }
            sink ^= merged_model.apply_delta(&merged, None).affected_rows;
        });

        let mut par_w = 0usize;
        let coalescer_wall_ns = time_ns(reps, || {
            let coalescer = DeltaCoalescer::new(
                &wall_model,
                CoalesceConfig { max_pending: k, max_delay: Duration::from_secs(5) },
            );
            let mut ds = burst_deltas(&keys, par_w).into_iter();
            par_w += 1;
            let first = ds.next().expect("k ≥ 1");
            std::thread::scope(|scope| {
                for d in ds {
                    let coalescer = &coalescer;
                    scope.spawn(move || {
                        coalescer.submit(d, None);
                    });
                }
                sink ^= coalescer.submit(first, None).affected_rows;
            });
        });

        // Return every model to the origin graph, then pin the coalescing
        // equivalence: all three histories flipped the same edges an even
        // number of times, so all three stores must be bitwise identical.
        if par_i % 2 == 1 {
            for d in burst_deltas(&keys, par_i) {
                individual.apply_delta(&d, None);
            }
        }
        for (m, par) in [(&merged_model, par_m), (&wall_model, par_w)] {
            if par % 2 == 1 {
                let mut ds = burst_deltas(&keys, par).into_iter();
                let mut merged = ds.next().expect("k ≥ 1");
                for d in ds {
                    merged.merge(&d);
                }
                m.apply_delta(&merged, None);
            }
            assert_eq!(
                individual.snapshot().model().store_f64().unwrap().as_slice(),
                m.snapshot().model().store_f64().unwrap().as_slice(),
                "coalesced burst history diverged from individual refreshes (k = {k})"
            );
        }
        burst_rows.push((k, individual_ns, coalesced_ns, coalescer_wall_ns));
    }

    // Sustained: one writer toggling edges flat-out, 3 readers querying
    // snapshots the whole time. Readers never block on the refresh lock.
    let updates_target = if quick { 40 } else { 200 };
    let stop = AtomicBool::new(false);
    let queries = AtomicUsize::new(0);
    let t = Instant::now();
    let mut sustained_ns = 0.0;
    std::thread::scope(|scope| {
        for tid in 0..3usize {
            let (stop, queries, dynamic) = (&stop, &queries, &dynamic);
            scope.spawn(move || {
                let mut q = tid;
                while !stop.load(Ordering::Relaxed) {
                    let snap = dynamic.snapshot();
                    std::hint::black_box(snap.model().logits(q % n));
                    queries.fetch_add(1, Ordering::Relaxed);
                    q += 7;
                }
            });
        }
        let mut ins = false;
        for _ in 0..updates_target {
            let mut delta = CsrDelta::new();
            if ins {
                delta.remove_edge(u, v);
            } else {
                delta.insert_edge(u, v);
            }
            ins = !ins;
            dynamic.apply_delta(&delta, None);
        }
        sustained_ns = t.elapsed().as_nanos() as f64;
        stop.store(true, Ordering::Relaxed);
    });
    let concurrent_queries = queries.load(Ordering::Relaxed);
    let updates_per_sec = updates_target as f64 / (sustained_ns / 1e9);
    let queries_per_sec = concurrent_queries as f64 / (sustained_ns / 1e9);

    let speedup = rebuild_ns / incr_ns;
    println!("  {:<40} {:>14} {:>14}", "path", "ns/update", "updates/sec");
    for (label, ns) in [
        ("full rebuild (static baseline)", rebuild_ns),
        ("incremental single-edge", incr_ns),
        ("incremental onboard (+1 node)", onboard_ns),
    ] {
        println!("  {:<40} {:>14.0} {:>14.0}", label, ns, 1e9 / ns);
    }
    println!(
        "  single-edge refresh speedup vs rebuild: {speedup:.1}x  \
         (affected rows last toggle: {last_affected}/{n})"
    );
    println!("  ∞-scale single-edge refresh (steps [Finite(1), Infinite]):");
    for (name, ns, bound) in &inf_results {
        println!("    {:<38} {:>14.0}   staleness ≤ {:.2e}", name, ns, bound);
    }
    println!("    push speedup vs warm-cgnr: {inf_push_speedup:.1}x");
    println!("  burst coalescing (k toggles, finite model):");
    println!(
        "    {:<6} {:>16} {:>16} {:>10} {:>18}",
        "k", "individual ns", "coalesced ns", "fraction", "coalescer wall ns"
    );
    for &(k, ind, coal, wall) in &burst_rows {
        println!(
            "    {:<6} {:>16.0} {:>16.0} {:>9.1}% {:>18.0}",
            k,
            ind,
            coal,
            100.0 * coal / ind,
            wall
        );
    }
    println!(
        "  sustained: {updates_per_sec:.0} updates/sec with {queries_per_sec:.0} \
         queries/sec served concurrently ({concurrent_queries} queries over \
         {updates_target} updates)"
    );
    std::hint::black_box(sink);

    let mut json = String::from("{\n  \"bench\": \"updates\",\n");
    json.push_str(&format!("  \"nodes\": {n},\n  \"quick\": {quick},\n"));
    json.push_str("  \"unit\": \"ns_per_update_median\",\n");
    json.push_str(&format!(
        "  \"full_rebuild_ns\": {rebuild_ns:.0},\n  \"incremental_edge_ns\": {incr_ns:.0},\n"
    ));
    json.push_str(&format!(
        "  \"incremental_onboard_ns\": {onboard_ns:.0},\n  \
         \"speedup_vs_rebuild\": {speedup:.1},\n"
    ));
    json.push_str(&format!(
        "  \"inf_edge\": {{ \"push_ns\": {inf_push_ns:.0}, \"warm_cgnr_ns\": {inf_cgnr_ns:.0}, \
         \"push_speedup_vs_cgnr\": {inf_push_speedup:.1}, \
         \"push_staleness_bound\": {inf_push_bound:e} }},\n"
    ));
    json.push_str("  \"burst_sweep\": [\n");
    for (i, &(k, ind, coal, wall)) in burst_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"k\": {k}, \"individual_ns\": {ind:.0}, \"coalesced_ns\": {coal:.0}, \
             \"coalesced_fraction\": {:.3}, \"coalescer_wall_ns\": {wall:.0} }}{}\n",
            coal / ind,
            if i + 1 < burst_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"sustained\": {{ \"updates_per_sec\": {updates_per_sec:.0}, \
         \"concurrent_queries_per_sec\": {queries_per_sec:.0}, \
         \"updates\": {updates_target}, \"queries\": {concurrent_queries} }}\n}}\n"
    ));
    let out_path = std::env::var("GCON_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_updates.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out_path, &json).expect("failed to write BENCH_updates.json");
    println!("  wrote {out_path}");
}
