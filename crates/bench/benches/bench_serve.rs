//! Serving-layer throughput bench: precomputed-store + micro-batched
//! inference (`gcon-serve`) against the naive per-query path that re-runs
//! the whole `public_predict` pipeline for every query.
//!
//! Four measurements per run:
//!
//! - **naive/query** — one full `public_logits` pipeline per query (encode,
//!   normalize, build `Ã`, propagate every scale over the whole graph, full
//!   head): what serving costs *without* the feature store.
//! - **store build** — the one-time `ServingModel::build` cost (identical
//!   work to a single naive query; the store then amortizes it over every
//!   subsequent query).
//! - **serve @ batch ∈ {1, 8, 64, 256}** — the steady-state gathered head
//!   forward through one `ServingSession`, per-query cost = batch time /
//!   batch size. Each batch size is timed on an **f64 store and an f32
//!   store back-to-back** ([`gcon_serve::StoreDtype`]): the f32 rows halve
//!   the store's memory traffic and double the SIMD lanes of the head GEMM,
//!   and the report records the per-batch f32-over-f64 speedup alongside
//!   the usual vs-naive ratio.
//! - **micro-batched** — end-to-end `BatchQueue` throughput with 4
//!   submitting threads (includes queueing/wake-up overhead and reports the
//!   realized mean batch size).
//!
//! Every row reports queries/sec plus the speedup over naive; results are
//! printed, and written machine-readably to `BENCH_serve.json` at the
//! workspace root (override with `GCON_BENCH_OUT` — the file is
//! overwritten, so point each bench at its own path).
//! `GCON_BENCH_QUICK=1` shrinks the dataset and rep counts for CI smoke
//! runs. Thread-scaling caveats of the 1-core dev box apply (see
//! `crates/bench/README.md`); the naive-vs-batched ratio is dominated by
//! work *elided*, not by threading, so it is meaningful even there.

use gcon_bench::median_time_ns as time_ns;
use gcon_core::infer::{public_logits, public_predict};
use gcon_core::train::train_gcon;
use gcon_core::{GconConfig, PropagationStep};
use gcon_serve::{BatchConfig, BatchQueue, ServingMode, ServingModel, StoreDtype};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

struct Row {
    label: String,
    ns_per_query: f64,
}

/// One f64-store vs f32-store pairing at a fixed batch size, timed
/// back-to-back so box drift cancels out of the ratio.
struct DtypePair {
    batch: usize,
    ns_f64: f64,
    ns_f32: f64,
}

fn main() {
    let quick =
        std::env::var("GCON_BENCH_QUICK").map(|v| !v.is_empty() && v != "0").unwrap_or(false);
    let scale = if quick { 0.12 } else { 0.3 };
    let dataset = gcon_datasets::cora_ml(scale, 7);
    let n = dataset.graph.num_nodes();
    println!(
        "bench_serve: {} at scale {scale} ({n} nodes, {} edges), GCON_THREADS={}",
        dataset.name,
        dataset.graph.num_edges(),
        gcon_runtime::configured_width()
    );

    let mut rng = StdRng::seed_from_u64(7);
    // Head shape representative of the paper's Table II configs: d1 = 32
    // over two propagation scales freezes a 64-wide store, so the gathered
    // head forward is a `batch × 64 × c` GEMM rather than a toy one.
    let config = GconConfig {
        encoder: gcon_core::encoder::EncoderConfig {
            hidden: 32,
            d1: 32,
            epochs: if quick { 20 } else { 60 },
            lr: 0.02,
            weight_decay: 1e-5,
        },
        steps: vec![PropagationStep::Finite(1), PropagationStep::Finite(2)],
        optimizer: gcon_core::model::OptimizerConfig {
            lr: 0.05,
            max_iters: if quick { 100 } else { 400 },
            grad_tol: 1e-7,
        },
        ..Default::default()
    };
    let model = train_gcon(
        &config,
        &dataset.graph,
        &dataset.features,
        &dataset.labels,
        &dataset.split.train,
        dataset.num_classes,
        4.0,
        1e-3,
        &mut rng,
    );

    let mut rows: Vec<Row> = Vec::new();

    // Naive per-query: the whole public pipeline for one answer. The
    // argmax row lookup is free next to propagation, so timing the logits
    // pipeline is timing `public_predict`-per-query.
    let naive_reps = if quick { 3 } else { 5 };
    let query_node = n / 2;
    let mut sink = 0usize;
    let naive_ns = time_ns(naive_reps, || {
        let logits = public_logits(&model, &dataset.graph, &dataset.features);
        sink ^= gcon_linalg::vecops::argmax(logits.row(query_node));
    });
    rows.push(Row { label: "naive/query".into(), ns_per_query: naive_ns });

    // One-time store build (== one naive query's feature stage + clone).
    let build_ns = time_ns(naive_reps, || {
        let s = ServingModel::build(&model, &dataset.graph, &dataset.features, ServingMode::Public);
        sink ^= s.num_nodes();
    });
    println!("  store build (one-time): {:>12.0} ns", build_ns);

    let serving = ServingModel::build_with_dtype(
        &model,
        &dataset.graph,
        &dataset.features,
        ServingMode::Public,
        StoreDtype::F64,
    );
    // Sanity: the store answers exactly what the naive path answers.
    assert_eq!(
        serving.predict_all(),
        public_predict(&model, &dataset.graph, &dataset.features),
        "serving diverged from public_predict — equivalence broken"
    );

    // The same store frozen in f32: half the bytes, double the GEMM lanes.
    // The drift contract is pinned by tests; here we only sanity-check that
    // predictions survive the quantization on this trained model.
    let serving32 = ServingModel::build_with_dtype(
        &model,
        &dataset.graph,
        &dataset.features,
        ServingMode::Public,
        StoreDtype::F32,
    );
    assert_eq!(
        serving32.predict_all(),
        serving.predict_all(),
        "f32 store flipped a prediction on the bench model — drift beyond contract"
    );

    // Steady-state gathered head forwards at fixed batch sizes, each batch
    // size timed on the f64 store then the f32 store back-to-back.
    let mut session = serving.session();
    let mut session32 = serving32.session();
    let mut qrng = StdRng::seed_from_u64(99);
    let mut pairs: Vec<DtypePair> = Vec::new();
    for batch in [1usize, 8, 64, 256] {
        let nodes: Vec<usize> = (0..batch).map(|_| qrng.gen_range(0..n)).collect();
        let ns = time_ns(50, || {
            let logits = session.logits_batch(&nodes);
            sink ^= logits.rows();
        });
        let ns32 = time_ns(50, || {
            let logits = session32.logits_batch(&nodes);
            sink ^= logits.rows();
        });
        rows.push(Row { label: format!("serve@batch={batch}"), ns_per_query: ns / batch as f64 });
        rows.push(Row {
            label: format!("serve@batch={batch} f32-store"),
            ns_per_query: ns32 / batch as f64,
        });
        pairs.push(DtypePair { batch, ns_f64: ns, ns_f32: ns32 });
    }

    // Micro-batcher end to end: 4 threads × `per_thread` queries each.
    let per_thread = if quick { 200 } else { 1000 };
    let threads = 4;
    let queue = BatchQueue::new(
        &serving,
        BatchConfig { max_batch: 64, max_wait: Duration::from_micros(200) },
    );
    let t = Instant::now();
    std::thread::scope(|scope| {
        for tid in 0..threads {
            let queue = &queue;
            scope.spawn(move || {
                let mut out = Vec::new();
                for q in 0..per_thread {
                    queue.query_into((tid * 37 + q * 11) % n, &mut out);
                }
            });
        }
    });
    let total_ns = t.elapsed().as_nanos() as f64;
    let stats = queue.stats();
    rows.push(Row {
        label: format!(
            "micro-batched ({} threads, mean batch {:.1})",
            threads,
            stats.requests as f64 / stats.batches.max(1) as f64
        ),
        ns_per_query: total_ns / stats.requests as f64,
    });

    println!("  {:<44} {:>14} {:>14} {:>12}", "path", "ns/query", "queries/sec", "vs naive");
    for row in &rows {
        println!(
            "  {:<44} {:>14.0} {:>14.0} {:>11.1}x",
            row.label,
            row.ns_per_query,
            1e9 / row.ns_per_query,
            naive_ns / row.ns_per_query
        );
    }
    println!(
        "  {:<44} {:>14} {:>14} {:>12}",
        "f32 store vs f64 store", "f64 ns", "f32 ns", "f32 gain"
    );
    for p in &pairs {
        println!(
            "  {:<44} {:>14.0} {:>14.0} {:>11.2}x",
            format!("head forward @ batch={}", p.batch),
            p.ns_f64,
            p.ns_f32,
            p.ns_f64 / p.ns_f32.max(1.0)
        );
    }
    std::hint::black_box(sink);

    let mut json = String::from("{\n  \"bench\": \"serve\",\n");
    json.push_str(&format!("  \"nodes\": {n},\n  \"quick\": {quick},\n"));
    json.push_str("  \"unit\": \"ns_per_query_median\",\n  \"paths\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"path\": \"{}\", \"ns_per_query\": {:.0}, \"speedup_vs_naive\": {:.1} }}{}\n",
            row.label,
            row.ns_per_query,
            naive_ns / row.ns_per_query,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n  \"f32_store\": [\n");
    for (i, p) in pairs.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"batch\": {}, \"ns_f64\": {:.0}, \"ns_f32\": {:.0}, \
             \"speedup_vs_f64\": {:.3} }}{}\n",
            p.batch,
            p.ns_f64,
            p.ns_f32,
            p.ns_f64 / p.ns_f32.max(1.0),
            if i + 1 == pairs.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    let out_path = std::env::var("GCON_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_serve.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out_path, &json).expect("failed to write BENCH_serve.json");
    println!("  wrote {out_path}");
}
