//! Serving-layer throughput bench: precomputed-store + micro-batched
//! inference (`gcon-serve`) against the naive per-query path that re-runs
//! the whole `public_predict` pipeline for every query.
//!
//! Four measurements per run:
//!
//! - **naive/query** — one full `public_logits` pipeline per query (encode,
//!   normalize, build `Ã`, propagate every scale over the whole graph, full
//!   head): what serving costs *without* the feature store.
//! - **store build** — the one-time `ServingModel::build` cost (identical
//!   work to a single naive query; the store then amortizes it over every
//!   subsequent query).
//! - **serve @ batch ∈ {1, 8, 64, 256}** — the steady-state gathered head
//!   forward through one `ServingSession`, per-query cost = batch time /
//!   batch size.
//! - **micro-batched** — end-to-end `BatchQueue` throughput with 4
//!   submitting threads (includes queueing/wake-up overhead and reports the
//!   realized mean batch size).
//!
//! Every row reports queries/sec plus the speedup over naive; results are
//! printed, and written machine-readably to `GCON_BENCH_OUT` when set (the
//! file is overwritten — point each bench at its own path).
//! `GCON_BENCH_QUICK=1` shrinks the dataset and rep counts for CI smoke
//! runs. Thread-scaling caveats of the 1-core dev box apply (see
//! `crates/bench/README.md`); the naive-vs-batched ratio is dominated by
//! work *elided*, not by threading, so it is meaningful even there.

use gcon_bench::median_time_ns as time_ns;
use gcon_core::infer::{public_logits, public_predict};
use gcon_core::train::train_gcon;
use gcon_core::{GconConfig, PropagationStep};
use gcon_serve::{BatchConfig, BatchQueue, ServingMode, ServingModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

struct Row {
    label: String,
    ns_per_query: f64,
}

fn main() {
    let quick =
        std::env::var("GCON_BENCH_QUICK").map(|v| !v.is_empty() && v != "0").unwrap_or(false);
    let scale = if quick { 0.12 } else { 0.3 };
    let dataset = gcon_datasets::cora_ml(scale, 7);
    let n = dataset.graph.num_nodes();
    println!(
        "bench_serve: {} at scale {scale} ({n} nodes, {} edges), GCON_THREADS={}",
        dataset.name,
        dataset.graph.num_edges(),
        gcon_runtime::configured_width()
    );

    let mut rng = StdRng::seed_from_u64(7);
    let config = GconConfig {
        encoder: gcon_core::encoder::EncoderConfig {
            hidden: 16,
            d1: 8,
            epochs: if quick { 20 } else { 60 },
            lr: 0.02,
            weight_decay: 1e-5,
        },
        steps: vec![PropagationStep::Finite(2)],
        optimizer: gcon_core::model::OptimizerConfig {
            lr: 0.05,
            max_iters: if quick { 100 } else { 400 },
            grad_tol: 1e-7,
        },
        ..Default::default()
    };
    let model = train_gcon(
        &config,
        &dataset.graph,
        &dataset.features,
        &dataset.labels,
        &dataset.split.train,
        dataset.num_classes,
        4.0,
        1e-3,
        &mut rng,
    );

    let mut rows: Vec<Row> = Vec::new();

    // Naive per-query: the whole public pipeline for one answer. The
    // argmax row lookup is free next to propagation, so timing the logits
    // pipeline is timing `public_predict`-per-query.
    let naive_reps = if quick { 3 } else { 5 };
    let query_node = n / 2;
    let mut sink = 0usize;
    let naive_ns = time_ns(naive_reps, || {
        let logits = public_logits(&model, &dataset.graph, &dataset.features);
        sink ^= gcon_linalg::vecops::argmax(logits.row(query_node));
    });
    rows.push(Row { label: "naive/query".into(), ns_per_query: naive_ns });

    // One-time store build (== one naive query's feature stage + clone).
    let build_ns = time_ns(naive_reps, || {
        let s = ServingModel::build(&model, &dataset.graph, &dataset.features, ServingMode::Public);
        sink ^= s.num_nodes();
    });
    println!("  store build (one-time): {:>12.0} ns", build_ns);

    let serving =
        ServingModel::build(&model, &dataset.graph, &dataset.features, ServingMode::Public);
    // Sanity: the store answers exactly what the naive path answers.
    assert_eq!(
        serving.predict_all(),
        public_predict(&model, &dataset.graph, &dataset.features),
        "serving diverged from public_predict — equivalence broken"
    );

    // Steady-state gathered head forwards at fixed batch sizes.
    let mut session = serving.session();
    let mut qrng = StdRng::seed_from_u64(99);
    for batch in [1usize, 8, 64, 256] {
        let nodes: Vec<usize> = (0..batch).map(|_| qrng.gen_range(0..n)).collect();
        let ns = time_ns(50, || {
            let logits = session.logits_batch(&nodes);
            sink ^= logits.rows();
        });
        rows.push(Row { label: format!("serve@batch={batch}"), ns_per_query: ns / batch as f64 });
    }

    // Micro-batcher end to end: 4 threads × `per_thread` queries each.
    let per_thread = if quick { 200 } else { 1000 };
    let threads = 4;
    let queue = BatchQueue::new(
        &serving,
        BatchConfig { max_batch: 64, max_wait: Duration::from_micros(200) },
    );
    let t = Instant::now();
    std::thread::scope(|scope| {
        for tid in 0..threads {
            let queue = &queue;
            scope.spawn(move || {
                let mut out = Vec::new();
                for q in 0..per_thread {
                    queue.query_into((tid * 37 + q * 11) % n, &mut out);
                }
            });
        }
    });
    let total_ns = t.elapsed().as_nanos() as f64;
    let stats = queue.stats();
    rows.push(Row {
        label: format!(
            "micro-batched ({} threads, mean batch {:.1})",
            threads,
            stats.requests as f64 / stats.batches.max(1) as f64
        ),
        ns_per_query: total_ns / stats.requests as f64,
    });

    println!("  {:<44} {:>14} {:>14} {:>12}", "path", "ns/query", "queries/sec", "vs naive");
    for row in &rows {
        println!(
            "  {:<44} {:>14.0} {:>14.0} {:>11.1}x",
            row.label,
            row.ns_per_query,
            1e9 / row.ns_per_query,
            naive_ns / row.ns_per_query
        );
    }
    std::hint::black_box(sink);

    if let Ok(out_path) = std::env::var("GCON_BENCH_OUT") {
        let mut json = String::from("{\n  \"bench\": \"serve\",\n");
        json.push_str(&format!("  \"nodes\": {n},\n  \"quick\": {quick},\n"));
        json.push_str("  \"unit\": \"ns_per_query_median\",\n  \"paths\": [\n");
        for (i, row) in rows.iter().enumerate() {
            json.push_str(&format!(
                "    {{ \"path\": \"{}\", \"ns_per_query\": {:.0}, \"speedup_vs_naive\": {:.1} }}{}\n",
                row.label,
                row.ns_per_query,
                naive_ns / row.ns_per_query,
                if i + 1 == rows.len() { "" } else { "," }
            ));
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&out_path, &json).expect("failed to write bench_serve JSON");
        println!("  wrote {out_path}");
    }
}
