//! Criterion microbench for the three PPR (m = ∞) solvers: the production
//! fixed-point recursion, the CGNR iterative solve, and the dense
//! LU-inverse `α(I − (1−α)Ã)⁻¹` from the verification suite — quantifying
//! why the production path never materializes `R_∞` (Eq. 5's "efficiency
//! issue" the paper works around with APPR).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcon_core::propagation::{propagate, propagate_ppr_cgnr, PropagationStep};
use gcon_core::verify::exact_r_infinity;
use gcon_graph::generators::erdos_renyi_gnm;
use gcon_graph::normalize::row_stochastic_default;
use gcon_linalg::{ops, Mat};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_solvers(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let mut group = c.benchmark_group("ppr_solvers");
    group.sample_size(10);
    for n in [100usize, 300, 600] {
        let g = erdos_renyi_gnm(n, 4 * n, &mut rng);
        let a = row_stochastic_default(&g);
        let mut x = Mat::uniform(n, 16, 1.0, &mut rng);
        x.normalize_rows_l2();
        let alpha = 0.4;

        group.bench_with_input(BenchmarkId::new("fixed_point", n), &n, |b, _| {
            b.iter(|| propagate(&a, &x, alpha, PropagationStep::Infinite))
        });
        group.bench_with_input(BenchmarkId::new("cgnr", n), &n, |b, _| {
            b.iter(|| propagate_ppr_cgnr(&a, &x, alpha))
        });
        // Dense inverse is O(n³): keep it to the smaller sizes.
        if n <= 300 {
            group.bench_with_input(BenchmarkId::new("dense_lu_inverse", n), &n, |b, _| {
                b.iter(|| ops::matmul(&exact_r_infinity(&a, alpha), &x))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
