//! Criterion microbench for the PPR (m = ∞) solvers: the production
//! fixed-point recursion, the block-CGNR iterative solve, and the dense
//! LU-inverse `α(I − (1−α)Ã)⁻¹` from the verification suite — quantifying
//! why the production path never materializes `R_∞` (Eq. 5's "efficiency
//! issue" the paper works around with APPR).
//!
//! Two comparisons drive solver selection:
//!
//! - `ppr_solvers`: solver families across graph sizes at a moderate α.
//! - `ppr_alpha` / `ppr_alpha_cycle`: power vs. block CGNR vs. the old
//!   column-at-a-time CGNR across α ∈ {0.01, 0.05, 0.1, 0.2} — the regime
//!   where `PprSolver::Auto` switches, and where the block path's
//!   one-product-pair-per-iteration beats the per-column loop. The sweep
//!   runs on two topologies because the power iteration's effective rate is
//!   `(1−α)·λ₂(Ã)`: on an Erdős–Rényi *expander* (`ppr_alpha`) the spectral
//!   gap keeps it fast even at tiny α, while on a ring lattice
//!   (`ppr_alpha_cycle`, `λ₂ ≈ 1`) small α is exactly the regime where CGNR
//!   needs far fewer products.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcon_core::propagation::{
    ppr_cgnr_budget, propagate_ppr_cgnr, propagate_with_solver, PprOperator, PprSolver,
    PropagationStep,
};
use gcon_core::verify::exact_r_infinity;
use gcon_graph::generators::{cycle, erdos_renyi_gnm};
use gcon_graph::normalize::row_stochastic_default;
use gcon_graph::Csr;
use gcon_linalg::solve::cgnr;
use gcon_linalg::{ops, Mat};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The pre-refactor path: one CGNR solve per feature column through the
/// scatter-transpose [`PprOperator`]. Kept here (only) as the baseline the
/// block solver is measured against.
fn ppr_cgnr_by_columns(a_tilde: &Csr, x: &Mat, alpha: f64) -> Mat {
    let op = PprOperator::new(a_tilde, alpha);
    let n = x.rows();
    let mut z = Mat::zeros(n, x.cols());
    for j in 0..x.cols() {
        let mut b = x.col(j);
        for v in &mut b {
            *v *= alpha;
        }
        let (col, _) = cgnr(&op, &b, 1e-12, ppr_cgnr_budget(n));
        for (i, &v) in col.iter().enumerate() {
            z.set(i, j, v);
        }
    }
    z
}

fn bench_solvers(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let mut group = c.benchmark_group("ppr_solvers");
    group.sample_size(10);
    for n in [100usize, 300, 600] {
        let g = erdos_renyi_gnm(n, 4 * n, &mut rng);
        let a = row_stochastic_default(&g);
        let mut x = Mat::uniform(n, 16, 1.0, &mut rng);
        x.normalize_rows_l2();
        let alpha = 0.4;

        group.bench_with_input(BenchmarkId::new("fixed_point", n), &n, |b, _| {
            b.iter(|| {
                propagate_with_solver(&a, &x, alpha, PropagationStep::Infinite, PprSolver::Power)
            })
        });
        group.bench_with_input(BenchmarkId::new("cgnr_block", n), &n, |b, _| {
            b.iter(|| propagate_ppr_cgnr(&a, &x, alpha))
        });
        // Dense inverse is O(n³): keep it to the smaller sizes.
        if n <= 300 {
            group.bench_with_input(BenchmarkId::new("dense_lu_inverse", n), &n, |b, _| {
                b.iter(|| ops::matmul(&exact_r_infinity(&a, alpha), &x))
            });
        }
    }
    group.finish();
}

fn alpha_sweep_on(c: &mut Criterion, group_name: &str, a: &Csr, x: &Mat) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    for &alpha in &[0.01f64, 0.05, 0.1, 0.2] {
        let id = format!("{alpha}");
        group.bench_with_input(BenchmarkId::new("power", &id), &alpha, |b, &alpha| {
            b.iter(|| {
                propagate_with_solver(a, x, alpha, PropagationStep::Infinite, PprSolver::Power)
            })
        });
        group.bench_with_input(BenchmarkId::new("cgnr_block", &id), &alpha, |b, &alpha| {
            b.iter(|| propagate_ppr_cgnr(a, x, alpha))
        });
        group.bench_with_input(BenchmarkId::new("cgnr_columns", &id), &alpha, |b, &alpha| {
            b.iter(|| ppr_cgnr_by_columns(a, x, alpha))
        });
    }
    group.finish();
}

fn bench_alpha_sweep(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let n = 300;
    let mut x = Mat::uniform(n, 16, 1.0, &mut rng);
    x.normalize_rows_l2();

    let g = erdos_renyi_gnm(n, 4 * n, &mut rng);
    alpha_sweep_on(c, "ppr_alpha", &row_stochastic_default(&g), &x);

    let ring = cycle(n);
    alpha_sweep_on(c, "ppr_alpha_cycle", &row_stochastic_default(&ring), &x);
}

criterion_group!(benches, bench_solvers, bench_alpha_sweep);
criterion_main!(benches);
