//! Networked-serving bench: the `gcond` TCP path (`Server` + `GconClient`
//! over loopback) against the in-process serving paths it wraps, plus the
//! persisted-store restart cost.
//!
//! Three sections per run:
//!
//! - **serving paths** — per-query cost at batch ∈ {1, 8, 64} for the
//!   in-process paths (`BatchQueue::query_into` at batch 1, gathered
//!   `ServingSession::logits_batch` forwards at 8/64) and the networked
//!   paths (`GconClient::logits` at batch 1, `GconClient::logits_bulk` at
//!   8/64). The in-process/remote delta at each batch size is the wire +
//!   framing + syscall tax of the daemon; it shrinks as batching amortizes
//!   it, which is the point of the bulk opcode.
//! - **restart** — `ServingModel::build` (full repropagation: the cold
//!   start) vs `ServingModel::save` + `ServingModel::load` (the v3 store
//!   file round-trip: the warm restart). The load path does no propagation
//!   at all, so the build/load ratio is the restart speedup a persisted
//!   store buys.
//! - **sanity** — every remote answer is asserted bitwise-equal to the
//!   store before timing, so the numbers describe the *same* computation.
//!
//! Results are printed and written machine-readably to `BENCH_server.json`
//! at the workspace root (override with `GCON_BENCH_OUT`).
//! `GCON_BENCH_QUICK=1` shrinks the dataset and rep counts for CI smoke
//! runs; loopback TCP numbers on a loaded CI box are indicative, not
//! stable — the committed JSON comes from an idle run.

use gcon_bench::median_time_ns as time_ns;
use gcon_core::train::train_gcon;
use gcon_core::{GconConfig, PropagationStep};
use gcon_serve::{
    BatchConfig, BatchQueue, GconClient, Server, ServerConfig, ServingMode, ServingModel,
    StoreDtype,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

struct Row {
    label: String,
    ns_per_query: f64,
}

fn main() {
    let quick =
        std::env::var("GCON_BENCH_QUICK").map(|v| !v.is_empty() && v != "0").unwrap_or(false);
    let scale = if quick { 0.12 } else { 0.3 };
    let dataset = gcon_datasets::cora_ml(scale, 7);
    let n = dataset.graph.num_nodes();
    println!(
        "bench_server: {} at scale {scale} ({n} nodes, {} edges), GCON_THREADS={}",
        dataset.name,
        dataset.graph.num_edges(),
        gcon_runtime::configured_width()
    );

    let mut rng = StdRng::seed_from_u64(7);
    // Same head shape as bench_serve so the in-process rows are comparable
    // across the two reports.
    let config = GconConfig {
        encoder: gcon_core::encoder::EncoderConfig {
            hidden: 32,
            d1: 32,
            epochs: if quick { 20 } else { 60 },
            lr: 0.02,
            weight_decay: 1e-5,
        },
        steps: vec![PropagationStep::Finite(1), PropagationStep::Finite(2)],
        optimizer: gcon_core::model::OptimizerConfig {
            lr: 0.05,
            max_iters: if quick { 100 } else { 400 },
            grad_tol: 1e-7,
        },
        ..Default::default()
    };
    let model = train_gcon(
        &config,
        &dataset.graph,
        &dataset.features,
        &dataset.labels,
        &dataset.split.train,
        dataset.num_classes,
        4.0,
        1e-3,
        &mut rng,
    );

    let mut sink = 0usize;
    let reps = if quick { 3 } else { 5 };

    // ---- restart: full repropagation vs v3 store file round-trip --------
    let build_ns = time_ns(reps, || {
        let s = ServingModel::build_with_dtype(
            &model,
            &dataset.graph,
            &dataset.features,
            ServingMode::Public,
            StoreDtype::F64,
        );
        sink ^= s.num_nodes();
    });
    let serving = ServingModel::build_with_dtype(
        &model,
        &dataset.graph,
        &dataset.features,
        ServingMode::Public,
        StoreDtype::F64,
    );
    let store_path = std::env::temp_dir().join("bench_server.gconstore");
    let save_ns = time_ns(reps, || {
        serving.save(&store_path).expect("saving store");
    });
    let load_ns = time_ns(reps, || {
        let s = ServingModel::load(&store_path).expect("loading store");
        sink ^= s.num_nodes();
    });
    let restored = ServingModel::load(&store_path).expect("loading store");
    assert_eq!(
        restored.store_f64().unwrap().as_slice(),
        serving.store_f64().unwrap().as_slice(),
        "restart equivalence broken: loaded store is not bitwise the built one"
    );
    std::fs::remove_file(&store_path).ok();
    println!(
        "  restart: build {build_ns:>12.0} ns   save {save_ns:>10.0} ns   \
         load {load_ns:>10.0} ns   (load is {:.0}x faster than rebuild)",
        build_ns / load_ns.max(1.0)
    );

    // ---- serving paths: in-process vs loopback TCP ----------------------
    let mut rows: Vec<Row> = Vec::new();
    let mut qrng = StdRng::seed_from_u64(99);
    let batch_reps = if quick { 20 } else { 50 };

    // In-process batch=1 through the micro-batcher (the queue the server
    // itself uses for single queries).
    let queue = BatchQueue::new(
        &serving,
        BatchConfig { max_batch: 64, max_wait: Duration::from_micros(200) },
    );
    let mut out = Vec::new();
    let node1 = qrng.gen_range(0..n);
    let ns = time_ns(batch_reps, || {
        queue.query_into(node1, &mut out);
        sink ^= out.len();
    });
    rows.push(Row { label: "in-process batch=1 (BatchQueue)".into(), ns_per_query: ns });

    // In-process gathered forwards at 8/64 (what bulk answers run on).
    let mut session = serving.session();
    for batch in [8usize, 64] {
        let nodes: Vec<usize> = (0..batch).map(|_| qrng.gen_range(0..n)).collect();
        let ns = time_ns(batch_reps, || {
            let logits = session.logits_batch(&nodes);
            sink ^= logits.rows();
        });
        rows.push(Row {
            label: format!("in-process batch={batch} (session)"),
            ns_per_query: ns / batch as f64,
        });
    }

    // The same three shapes over loopback TCP against a live server.
    let server = Server::bind(&serving, ServerConfig::default(), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    std::thread::scope(|scope| {
        scope.spawn(|| server.run().expect("server run"));
        let mut client = GconClient::connect(addr).expect("connect");

        // Sanity before timing: remote answers are bitwise the store's.
        let probe = qrng.gen_range(0..n);
        assert_eq!(
            client.logits(probe as u64).expect("probe query"),
            serving.logits(probe),
            "remote answer diverged from the store — equivalence broken"
        );

        let node = qrng.gen_range(0..n) as u64;
        let ns = time_ns(batch_reps, || {
            let logits = client.logits(node).expect("query");
            sink ^= logits.len();
        });
        rows.push(Row { label: "remote batch=1 (GconClient::logits)".into(), ns_per_query: ns });

        for batch in [8usize, 64] {
            let nodes: Vec<u64> = (0..batch).map(|_| qrng.gen_range(0..n) as u64).collect();
            let ns = time_ns(batch_reps, || {
                let logits = client.logits_bulk(&nodes).expect("bulk");
                sink ^= logits.rows();
            });
            rows.push(Row {
                label: format!("remote batch={batch} (logits_bulk)"),
                ns_per_query: ns / batch as f64,
            });
        }
        client.bye().expect("bye");
        handle.stop();
    });

    println!("  {:<44} {:>14} {:>14}", "path", "ns/query", "queries/sec");
    for row in &rows {
        println!("  {:<44} {:>14.0} {:>14.0}", row.label, row.ns_per_query, 1e9 / row.ns_per_query);
    }
    std::hint::black_box(sink);

    let mut json = String::from("{\n  \"bench\": \"server\",\n");
    json.push_str(&format!("  \"nodes\": {n},\n  \"quick\": {quick},\n"));
    json.push_str("  \"unit\": \"ns_per_query_median\",\n  \"paths\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"path\": \"{}\", \"ns_per_query\": {:.0}, \"queries_per_sec\": {:.0} }}{}\n",
            row.label,
            row.ns_per_query,
            1e9 / row.ns_per_query,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n  \"restart\": {\n");
    json.push_str(&format!(
        "    \"build_ns\": {build_ns:.0},\n    \"save_ns\": {save_ns:.0},\n    \
         \"load_ns\": {load_ns:.0},\n    \"load_speedup_vs_build\": {:.1}\n",
        build_ns / load_ns.max(1.0)
    ));
    json.push_str("  }\n}\n");
    let out_path = std::env::var("GCON_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_server.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out_path, &json).expect("failed to write BENCH_server.json");
    println!("  wrote {out_path}");
}
