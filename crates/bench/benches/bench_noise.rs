//! Substrate microbench: Algorithm 2 noise sampling and the Gamma-quantile
//! (`c_sf`, Eq. 21) solve that calibrates it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcon_dp::erlang::{sample_erlang, sample_sphere_noise};
use gcon_dp::special::reg_gamma_p_inverse;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_noise(c: &mut Criterion) {
    let mut group = c.benchmark_group("noise");
    group.sample_size(20);

    for d in [16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::new("sphere_noise", d), &d, |b, &d| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| sample_sphere_noise(d, 2.0, &mut rng))
        });
        group.bench_with_input(BenchmarkId::new("erlang_radius", d), &d, |b, &d| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| sample_erlang(d, 2.0, &mut rng))
        });
        group.bench_with_input(BenchmarkId::new("csf_quantile", d), &d, |b, &d| {
            b.iter(|| reg_gamma_p_inverse(d as f64, 1.0 - 1e-5))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_noise);
criterion_main!(benches);
