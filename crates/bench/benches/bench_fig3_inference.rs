//! Criterion microbench backing **Figure 3** (public test graph) against
//! **Figure 2** (private test graph): the cost of the two inference paths
//! of Algorithm 4 — the one-hop-only private aggregation of Eq. (16) vs the
//! full training-time propagation used when the test graph is public.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcon_core::infer::{private_logits, public_logits};
use gcon_core::train::train_gcon;
use gcon_core::{GconConfig, PropagationStep};
use gcon_datasets::cora_ml;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_inference(c: &mut Criterion) {
    let dataset = cora_ml(0.1, 0);
    let mut cfg = GconConfig::default();
    cfg.encoder.epochs = 30;
    cfg.optimizer.max_iters = 300;
    let mut rng = StdRng::seed_from_u64(0);
    let base_model = train_gcon(
        &cfg,
        &dataset.graph,
        &dataset.features,
        &dataset.labels,
        &dataset.split.train,
        dataset.num_classes,
        2.0,
        dataset.default_delta(),
        &mut rng,
    );

    let mut group = c.benchmark_group("fig3_inference");
    group.sample_size(10);
    group.bench_function("private_eq16_one_hop", |b| {
        b.iter(|| private_logits(&base_model, &dataset.graph, &dataset.features))
    });
    // Public inference replays the full m-step recursion: bench across the
    // m₁ axis Figures 2/3 sweep.
    for m in [1usize, 5, 10, 20] {
        let mut model = base_model.clone();
        model.config.steps = vec![PropagationStep::Finite(m)];
        group.bench_with_input(BenchmarkId::new("public_full_m", m), &model, |b, model| {
            b.iter(|| public_logits(model, &dataset.graph, &dataset.features))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
