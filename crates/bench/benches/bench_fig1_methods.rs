//! Criterion microbench backing **Figure 1**: the per-method training cost
//! on a small benchmark instance (what dominates the wall-clock of the fig1
//! sweep binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcon_baselines::{evaluate_baseline, Baseline};
use gcon_bench::{default_gcon_config, evaluate_gcon, InferenceMode};
use gcon_datasets::cora_ml;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_methods(c: &mut Criterion) {
    let dataset = cora_ml(0.05, 0);
    let delta = dataset.default_delta();
    let mut group = c.benchmark_group("fig1_methods");
    group.sample_size(10);

    let mut cfg = default_gcon_config(&dataset.name);
    cfg.encoder.epochs = 50;
    cfg.optimizer.max_iters = 400;
    group.bench_function("GCON", |b| {
        b.iter(|| evaluate_gcon(&cfg, &dataset, 1.0, delta, InferenceMode::Private, 1))
    });

    for baseline in [Baseline::Mlp, Baseline::DpSgd, Baseline::Dpgcn, Baseline::Gap] {
        group.bench_with_input(
            BenchmarkId::new("baseline", baseline.name()),
            &baseline,
            |b, &bl| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(2);
                    evaluate_baseline(bl, &dataset, 1.0, delta, &mut rng)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
