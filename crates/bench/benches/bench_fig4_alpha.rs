//! Criterion microbench backing **Figure 4**: the PPR fixed-point solve as a
//! function of the restart probability α (smaller α ⇒ slower geometric
//! contraction ⇒ more sweeps), plus the Theorem 1 calibration cost across
//! the ε grid.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcon_core::loss::{ConvexLoss, LossKind};
use gcon_core::params::{CalibrationInput, TheoremOneParams};
use gcon_core::propagation::{propagate, PropagationStep};
use gcon_datasets::cora_ml;
use gcon_graph::normalize::row_stochastic_default;

fn bench_alpha(c: &mut Criterion) {
    let dataset = cora_ml(0.1, 0);
    let a_tilde = row_stochastic_default(&dataset.graph);
    let mut x = dataset.features.clone();
    x.normalize_rows_l2();

    let mut group = c.benchmark_group("fig4_alpha");
    group.sample_size(10);
    for alpha in [0.2, 0.4, 0.6, 0.8] {
        group.bench_with_input(BenchmarkId::new("ppr_fixed_point", alpha), &alpha, |b, &a| {
            b.iter(|| propagate(&a_tilde, &x, a, PropagationStep::Infinite))
        });
    }
    for eps in [0.5, 4.0] {
        group.bench_with_input(BenchmarkId::new("theorem1_chain", eps), &eps, |b, &eps| {
            let input = CalibrationInput {
                eps,
                delta: 1e-4,
                omega: 0.9,
                lambda: 0.2,
                n1: 2000,
                num_classes: 7,
                dim: 16,
                bounds: ConvexLoss::new(LossKind::MultiLabelSoftMargin, 7).bounds(),
                psi: 0.5,
            };
            b.iter(|| TheoremOneParams::compute(&input))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_alpha);
criterion_main!(benches);
