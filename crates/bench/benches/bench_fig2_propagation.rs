//! Criterion microbench backing **Figures 2/3**: the cost of the APPR
//! recursion `Z_m = (1−α)ÃZ_{m−1} + αX` as the propagation step m grows —
//! the axis both figures sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcon_core::propagation::{propagate, PropagationStep};
use gcon_datasets::cora_ml;
use gcon_graph::normalize::row_stochastic_default;

fn bench_propagation(c: &mut Criterion) {
    let dataset = cora_ml(0.1, 0);
    let a_tilde = row_stochastic_default(&dataset.graph);
    let mut x = dataset.features.clone();
    x.normalize_rows_l2();

    let mut group = c.benchmark_group("fig2_propagation");
    group.sample_size(10);
    for m in [1usize, 2, 5, 10, 20] {
        group.bench_with_input(BenchmarkId::new("appr_m", m), &m, |b, &m| {
            b.iter(|| propagate(&a_tilde, &x, 0.6, PropagationStep::Finite(m)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_propagation);
criterion_main!(benches);
