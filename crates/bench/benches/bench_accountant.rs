//! Substrate microbench: the RDP accountant used by the DP-SGD / GAP /
//! ProGAP baselines — composition and noise-multiplier calibration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcon_dp::rdp::{calibrate_noise_multiplier, RdpAccountant};

fn bench_accountant(c: &mut Criterion) {
    let mut group = c.benchmark_group("accountant");
    group.sample_size(20);

    group.bench_function("compose_gaussian_1000", |b| {
        b.iter(|| {
            let mut acc = RdpAccountant::new();
            acc.compose_gaussian(2.0, 1000);
            acc.epsilon(1e-5)
        })
    });
    group.bench_function("compose_subsampled_100", |b| {
        b.iter(|| {
            let mut acc = RdpAccountant::new();
            acc.compose_subsampled_gaussian(0.01, 1.5, 100);
            acc.epsilon(1e-5)
        })
    });
    for steps in [10usize, 100] {
        group.bench_with_input(BenchmarkId::new("calibrate", steps), &steps, |b, &s| {
            b.iter(|| calibrate_noise_multiplier(1.0, s, 2.0, 1e-5))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_accountant);
criterion_main!(benches);
