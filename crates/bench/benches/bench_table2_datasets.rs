//! Criterion microbench backing **Table II**: dataset generation plus the
//! homophily-ratio statistic (Definition 7) that the table reports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcon_datasets::{actor, citeseer, cora_ml, pubmed, Dataset};
use gcon_graph::homophily_ratio;

type DatasetBuilder = fn(f64, u64) -> Dataset;

fn bench_datasets(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_datasets");
    group.sample_size(10);
    let builders: [(&str, DatasetBuilder); 4] =
        [("cora-ml", cora_ml), ("citeseer", citeseer), ("pubmed", pubmed), ("actor", actor)];
    for (name, f) in builders {
        group.bench_with_input(BenchmarkId::new("generate", name), &f, |b, f| b.iter(|| f(0.1, 0)));
    }
    let d = cora_ml(0.25, 0);
    group.bench_function("homophily_ratio", |b| b.iter(|| homophily_ratio(&d.graph, &d.labels)));
    group.finish();
}

criterion_group!(benches, bench_datasets);
criterion_main!(benches);
