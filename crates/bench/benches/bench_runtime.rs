//! Criterion microbench for the shared runtime layer: allocating vs
//! buffer-reusing (`_into`) kernels, and per-scale vs single-pass
//! multi-scale propagation.
//!
//! The three comparisons recorded here are the ones the `gcon-runtime`
//! refactor targets:
//!
//! - `spmm` vs `spmm_into` (per-call output allocation removed),
//! - `propagate` vs `propagate_into` (ping-pong buffers across the APPR
//!   recursion),
//! - per-scale `concat_features` via repeated `propagate` vs the single-pass
//!   `propagate_multi` sweep (Σ mᵢ vs max mᵢ sparse products).

use criterion::{criterion_group, criterion_main, Criterion};
use gcon_core::propagation::{
    propagate, propagate_into, propagate_multi, spmm_ops_performed, PropagationStep,
};
use gcon_datasets::cora_ml;
use gcon_graph::normalize::row_stochastic_default;
use gcon_linalg::Mat;

fn bench_runtime(c: &mut Criterion) {
    let dataset = cora_ml(0.2, 0);
    let a_tilde = row_stochastic_default(&dataset.graph);
    let mut x = dataset.features.clone();
    x.normalize_rows_l2();
    let (n, d) = x.shape();

    let mut group = c.benchmark_group("runtime_layer");
    group.sample_size(10);

    group.bench_function("spmm_alloc", |b| b.iter(|| a_tilde.spmm(&x)));
    group.bench_function("spmm_into", |b| {
        let mut out = Mat::zeros(n, d);
        b.iter(|| a_tilde.spmm_into(&x, &mut out))
    });

    let alpha = 0.4;
    let m = 10;
    group.bench_function("propagate_alloc", |b| {
        b.iter(|| propagate(&a_tilde, &x, alpha, PropagationStep::Finite(m)))
    });
    group.bench_function("propagate_into", |b| {
        let mut z = Mat::zeros(n, d);
        let mut scratch = Mat::zeros(n, d);
        b.iter(|| {
            propagate_into(&a_tilde, &x, alpha, PropagationStep::Finite(m), &mut z, &mut scratch)
        })
    });

    // Multi-scale: {2, 5, 10} needs Σ mᵢ = 17 products per-scale but only
    // max mᵢ = 10 in the single-pass sweep.
    let steps =
        [PropagationStep::Finite(2), PropagationStep::Finite(5), PropagationStep::Finite(10)];
    group.bench_function("multiscale_per_scale", |b| {
        b.iter(|| {
            let parts: Vec<Mat> =
                steps.iter().map(|&s| propagate(&a_tilde, &x, alpha, s)).collect();
            let refs: Vec<&Mat> = parts.iter().collect();
            Mat::hcat_all(&refs)
        })
    });
    group.bench_function("multiscale_single_pass", |b| {
        b.iter(|| propagate_multi(&a_tilde, &x, alpha, &steps))
    });
    group.finish();

    // Operation-count assertion (the acceptance criterion of the runtime
    // refactor): the single-pass sweep performs exactly max(mᵢ) sparse
    // products, not Σ mᵢ. Benches run release-mode, so assert here too.
    let before = spmm_ops_performed();
    let _ = propagate_multi(&a_tilde, &x, alpha, &steps);
    let single_pass = spmm_ops_performed() - before;
    assert_eq!(single_pass, 10, "single-pass multi-scale must cost max(m_i) products");
    let before = spmm_ops_performed();
    for &s in &steps {
        let _ = propagate(&a_tilde, &x, alpha, s);
    }
    let per_scale = spmm_ops_performed() - before;
    assert_eq!(per_scale, 17, "per-scale propagation costs Σ m_i products");
    eprintln!("multi-scale products: single-pass {single_pass} vs per-scale {per_scale}");
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
