//! Fleet-serving bench: the sharded `Coordinator` → `ShardWorker` path
//! against the single-process serving paths it scales out, plus the cost
//! of a failover.
//!
//! Four sections per run:
//!
//! - **deploy** — partitioning + slicing + shipping the store to every
//!   worker and fingerprint-verifying it (the fleet's cold start).
//! - **serving paths** — per-query cost at batch ∈ {1, 64} for the
//!   in-process session, a 1-shard fleet, and a 2-shard fleet (workers
//!   are in-process `ShardWorker`s on loopback TCP — same wire path as
//!   `gcond --shard`, minus process isolation). The 1-shard/in-process
//!   delta is the wire tax; the 2-shard row shows what scatter-gather
//!   adds (two sockets, half-size shards).
//! - **failover** — latency of the first query after a replica's worker
//!   is stopped: detection (dead connection) + reroute + answer.
//! - **sanity** — every fleet answer is asserted bitwise-equal to the
//!   store before timing, so all rows describe the same computation.
//!
//! Results are printed and written machine-readably to `BENCH_fleet.json`
//! at the workspace root (override with `GCON_BENCH_OUT`).
//! `GCON_BENCH_QUICK=1` shrinks the dataset and rep counts for CI smoke
//! runs; loopback TCP numbers on a loaded CI box are indicative, not
//! stable — the committed JSON comes from an idle run.

use gcon_bench::median_time_ns as time_ns;
use gcon_core::train::train_gcon;
use gcon_core::{GconConfig, PropagationStep};
use gcon_serve::{
    Coordinator, FleetConfig, ServerConfig, ServingMode, ServingModel, ShardWorker, StoreDtype,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

struct Row {
    label: String,
    ns_per_query: f64,
}

/// In-process shard workers on ephemeral loopback ports (the bench runs
/// inside one process: `CARGO_BIN_EXE_*` is unavailable to bench crates,
/// and the wire path is identical either way).
struct Workers {
    addrs: Vec<String>,
    handles: Vec<gcon_serve::ServerHandle>,
    joins: Vec<std::thread::JoinHandle<()>>,
}

impl Workers {
    fn spawn(count: usize) -> Self {
        let mut addrs = Vec::new();
        let mut handles = Vec::new();
        let mut joins = Vec::new();
        for _ in 0..count {
            let worker =
                Arc::new(ShardWorker::bind(ServerConfig::default(), "127.0.0.1:0").expect("bind"));
            addrs.push(worker.local_addr().to_string());
            handles.push(worker.handle());
            joins.push(std::thread::spawn(move || worker.run().expect("worker run")));
        }
        Self { addrs, handles, joins }
    }

    fn stop(self) {
        for h in &self.handles {
            h.stop();
        }
        for j in self.joins {
            j.join().expect("worker join");
        }
    }
}

fn main() {
    let quick =
        std::env::var("GCON_BENCH_QUICK").map(|v| !v.is_empty() && v != "0").unwrap_or(false);
    let scale = if quick { 0.12 } else { 0.3 };
    let dataset = gcon_datasets::cora_ml(scale, 7);
    let n = dataset.graph.num_nodes();
    println!(
        "bench_fleet: {} at scale {scale} ({n} nodes, {} edges), GCON_THREADS={}",
        dataset.name,
        dataset.graph.num_edges(),
        gcon_runtime::configured_width()
    );

    let mut rng = StdRng::seed_from_u64(7);
    // Same head shape as bench_server so rows are comparable across the
    // two reports.
    let config = GconConfig {
        encoder: gcon_core::encoder::EncoderConfig {
            hidden: 32,
            d1: 32,
            epochs: if quick { 20 } else { 60 },
            lr: 0.02,
            weight_decay: 1e-5,
        },
        steps: vec![PropagationStep::Finite(1), PropagationStep::Finite(2)],
        optimizer: gcon_core::model::OptimizerConfig {
            lr: 0.05,
            max_iters: if quick { 100 } else { 400 },
            grad_tol: 1e-7,
        },
        ..Default::default()
    };
    let model = train_gcon(
        &config,
        &dataset.graph,
        &dataset.features,
        &dataset.labels,
        &dataset.split.train,
        dataset.num_classes,
        4.0,
        1e-3,
        &mut rng,
    );
    let serving = ServingModel::build_with_dtype(
        &model,
        &dataset.graph,
        &dataset.features,
        ServingMode::Public,
        StoreDtype::F64,
    );

    let mut sink = 0usize;
    let mut rows: Vec<Row> = Vec::new();
    let mut qrng = StdRng::seed_from_u64(99);
    let reps = if quick { 3 } else { 5 };
    let batch_reps = if quick { 20 } else { 50 };

    // ---- in-process baseline -------------------------------------------
    let mut session = serving.session();
    let node1 = qrng.gen_range(0..n);
    let ns = time_ns(batch_reps, || {
        let logits = session.logits_batch(&[node1]);
        sink ^= logits.rows();
    });
    rows.push(Row { label: "in-process batch=1 (session)".into(), ns_per_query: ns });
    let batch_nodes: Vec<usize> = (0..64).map(|_| qrng.gen_range(0..n)).collect();
    let ns = time_ns(batch_reps, || {
        let logits = session.logits_batch(&batch_nodes);
        sink ^= logits.rows();
    });
    rows.push(Row { label: "in-process batch=64 (session)".into(), ns_per_query: ns / 64.0 });

    // ---- deploy cost + fleet serving paths, 1 shard and 2 shards -------
    let mut deploy_ns = Vec::new();
    for shards in [1usize, 2] {
        let workers = Workers::spawn(shards);
        let topology: Vec<Vec<String>> = workers.addrs.iter().map(|a| vec![a.clone()]).collect();
        let ns = time_ns(reps, || {
            let fleet =
                Coordinator::deploy(&serving, &topology, FleetConfig::default()).expect("deploy");
            sink ^= fleet.num_nodes() as usize;
        });
        deploy_ns.push((shards, ns));
        let fleet =
            Coordinator::deploy(&serving, &topology, FleetConfig::default()).expect("deploy");

        // Sanity before timing: fleet answers are bitwise the store's.
        let probe = qrng.gen_range(0..n);
        assert_eq!(
            fleet.query(probe as u64).expect("probe query"),
            serving.logits(probe),
            "fleet answer diverged from the store — equivalence broken"
        );

        let node = qrng.gen_range(0..n) as u64;
        let ns = time_ns(batch_reps, || {
            let logits = fleet.query(node).expect("query");
            sink ^= logits.len();
        });
        rows.push(Row { label: format!("fleet {shards}-shard batch=1"), ns_per_query: ns });

        let nodes: Vec<u64> = (0..64).map(|_| qrng.gen_range(0..n) as u64).collect();
        let ns = time_ns(batch_reps, || {
            let logits = fleet.bulk(&nodes).expect("bulk");
            sink ^= logits.rows();
        });
        rows.push(Row {
            label: format!("fleet {shards}-shard batch=64 (bulk)"),
            ns_per_query: ns / 64.0,
        });
        drop(fleet);
        workers.stop();
    }

    // ---- failover latency: first answer after a replica dies -----------
    // One shard, two replicas; take the preferred worker fully down
    // (stop + join — a stopped accept loop alone keeps live sessions
    // serving), then time the query that discovers the dead connection,
    // reroutes, and answers. Short worker read timeouts bound the
    // teardown; one client retry covers the surviving replica's own
    // idled-out session (the production reconnect path).
    let failover_ns = {
        let worker_cfg = ServerConfig {
            read_timeout: std::time::Duration::from_millis(200),
            ..Default::default()
        };
        let spawn = || {
            let w = Arc::new(ShardWorker::bind(worker_cfg, "127.0.0.1:0").expect("bind"));
            let addr = w.local_addr().to_string();
            let handle = w.handle();
            let join = std::thread::spawn(move || w.run().expect("worker run"));
            (addr, handle, join)
        };
        let (addr0, handle0, join0) = spawn();
        let (addr1, handle1, join1) = spawn();
        let topology = vec![vec![addr0, addr1]];
        let cfg = FleetConfig { retries: 1, ..Default::default() };
        let fleet = Coordinator::deploy(&serving, &topology, cfg).expect("deploy");
        let node = qrng.gen_range(0..n) as u64;
        let want = fleet.query(node).expect("warm query");
        handle0.stop();
        join0.join().expect("worker join"); // all its sessions are gone now
        let started = std::time::Instant::now();
        let got = fleet.query(node).expect("failover query");
        let elapsed = started.elapsed().as_nanos() as f64;
        assert_eq!(got, want, "failover answer must be bitwise identical");
        assert_eq!(fleet.stats().failovers, 1);
        drop(fleet);
        handle1.stop();
        join1.join().expect("worker join");
        elapsed
    };

    println!("  {:<44} {:>14} {:>14}", "path", "ns/query", "queries/sec");
    for row in &rows {
        println!("  {:<44} {:>14.0} {:>14.0}", row.label, row.ns_per_query, 1e9 / row.ns_per_query);
    }
    for (shards, ns) in &deploy_ns {
        println!("  deploy {shards}-shard: {ns:>12.0} ns");
    }
    println!("  failover (detect + reroute + answer): {failover_ns:>12.0} ns");
    std::hint::black_box(sink);

    let mut json = String::from("{\n  \"bench\": \"fleet\",\n");
    json.push_str(&format!("  \"nodes\": {n},\n  \"quick\": {quick},\n"));
    json.push_str("  \"unit\": \"ns_per_query_median\",\n  \"paths\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"path\": \"{}\", \"ns_per_query\": {:.0}, \"queries_per_sec\": {:.0} }}{}\n",
            row.label,
            row.ns_per_query,
            1e9 / row.ns_per_query,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n  \"deploy\": {\n");
    for (i, (shards, ns)) in deploy_ns.iter().enumerate() {
        json.push_str(&format!(
            "    \"shards_{shards}_ns\": {ns:.0}{}\n",
            if i + 1 == deploy_ns.len() { "" } else { "," }
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!("  \"failover_ns\": {failover_ns:.0}\n}}\n"));
    let out_path = std::env::var("GCON_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_fleet.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out_path, &json).expect("failed to write BENCH_fleet.json");
    println!("  wrote {out_path}");
}
