//! Design ablations for GCON (ours — complements the paper's sweeps).
//!
//! Four knobs DESIGN.md calls out, each varied on Cora-ML at ε = 1:
//!
//! 1. loss function: MultiLabel Soft Margin vs pseudo-Huber (δ_l grid);
//! 2. budget split ω;
//! 3. encoder output dimension d₁ (the dimensionality issue of Sec. IV-A);
//! 4. training-set expansion with encoder pseudo-labels (n₁ ∈ {n₀, n});
//! 5. multi-scale propagation s > 1 (Eq. 11's concatenation, the knob the
//!    paper exercises on Actor).
//!
//! ```text
//! cargo run -p gcon-bench --release --bin ablation -- --scale 0.25 --runs 3
//! ```

use gcon_bench::{
    default_gcon_config, evaluate_gcon_repeated, fmt_score, print_table, HarnessArgs, InferenceMode,
};
use gcon_core::LossKind;
use gcon_datasets::cora_ml;

fn main() {
    let args = HarnessArgs::from_env();
    let eps = 1.0;
    let dataset = cora_ml(args.scale, args.seed);
    let delta = dataset.default_delta();
    println!("# GCON ablations on {} at ε = {eps}", dataset.name);
    println!("# scale={} runs={} seed={}", args.scale, args.runs, args.seed);

    let run = |cfg: &gcon_core::GconConfig| {
        evaluate_gcon_repeated(
            cfg,
            &dataset,
            eps,
            delta,
            InferenceMode::Private,
            args.seed + 97,
            args.runs,
        )
    };

    // 1. Loss function.
    let mut rows = Vec::new();
    for (label, loss) in [
        ("MultiLabel Soft Margin", LossKind::MultiLabelSoftMargin),
        ("pseudo-Huber δ=0.1", LossKind::PseudoHuber { delta: 0.1 }),
        ("pseudo-Huber δ=0.2", LossKind::PseudoHuber { delta: 0.2 }),
        ("pseudo-Huber δ=0.5", LossKind::PseudoHuber { delta: 0.5 }),
    ] {
        let mut cfg = default_gcon_config(&dataset.name);
        cfg.loss = loss;
        let (m, s) = run(&cfg);
        rows.push(vec![label.to_string(), fmt_score(m, s)]);
    }
    print_table("Ablation 1 — loss function", &["loss".into(), "micro-F1".into()], &rows);

    // 2. Budget split ω.
    let mut rows = Vec::new();
    for omega in [0.5, 0.7, 0.9, 0.95] {
        let mut cfg = default_gcon_config(&dataset.name);
        cfg.omega = omega;
        let (m, s) = run(&cfg);
        rows.push(vec![format!("ω={omega}"), fmt_score(m, s)]);
    }
    print_table("Ablation 2 — budget split ω", &["ω".into(), "micro-F1".into()], &rows);

    // 3. Encoder dimension d₁ (larger d ⇒ larger c_sf ⇒ more noise).
    let mut rows = Vec::new();
    for d1 in [8, 16, 32] {
        let mut cfg = default_gcon_config(&dataset.name);
        cfg.encoder.d1 = d1;
        let (m, s) = run(&cfg);
        rows.push(vec![format!("d₁={d1}"), fmt_score(m, s)]);
    }
    print_table("Ablation 3 — encoder dimension d₁", &["d₁".into(), "micro-F1".into()], &rows);

    // 4. Training-set expansion.
    let mut rows = Vec::new();
    for (label, expand) in [("n₁ = n (pseudo-labels)", true), ("n₁ = n₀ (labeled only)", false)]
    {
        let mut cfg = default_gcon_config(&dataset.name);
        cfg.expand_train_set = expand;
        let (m, s) = run(&cfg);
        rows.push(vec![label.to_string(), fmt_score(m, s)]);
    }
    print_table("Ablation 4 — training-set expansion", &["n₁".into(), "micro-F1".into()], &rows);

    // 5. Multi-scale propagation (Eq. 11): concatenating several step counts
    // trades feature richness against the averaged sensitivity of Eq. 26.
    use gcon_core::PropagationStep as P;
    let mut rows = Vec::new();
    for (label, steps) in [
        ("s=1: {2}", vec![P::Finite(2)]),
        ("s=2: {0, 2}", vec![P::Finite(0), P::Finite(2)]),
        ("s=3: {1, 2, 5}", vec![P::Finite(1), P::Finite(2), P::Finite(5)]),
        ("s=2: {2, ∞}", vec![P::Finite(2), P::Infinite]),
    ] {
        let mut cfg = default_gcon_config(&dataset.name);
        cfg.steps = steps;
        let (m, s) = run(&cfg);
        rows.push(vec![label.to_string(), fmt_score(m, s)]);
    }
    print_table(
        "Ablation 5 — multi-scale propagation (Eq. 11)",
        &["steps".into(), "micro-F1".into()],
        &rows,
    );

    // 6. Lemma 1 clip p (ours): clipping the off-diagonal of Ã scales the
    // sensitivity by 2p (less noise) but caps how much any neighbor can
    // contribute (weaker aggregation). p = 1/2 is the paper's unclipped Ã.
    let mut rows = Vec::new();
    for clip_p in [0.5, 0.375, 0.25, 0.125] {
        let mut cfg = default_gcon_config(&dataset.name);
        cfg.clip_p = clip_p;
        let psi = gcon_core::sensitivity::psi_z_clipped(cfg.alpha, &cfg.steps, clip_p);
        let (m, s) = run(&cfg);
        rows.push(vec![format!("p={clip_p}"), format!("{psi:.4}"), fmt_score(m, s)]);
    }
    print_table(
        "Ablation 6 — Lemma 1 clip p (sensitivity vs aggregation strength)",
        &["clip".into(), "Ψ_p(Z)".into(), "micro-F1".into()],
        &rows,
    );

    // 7. The Theorem 1 Remark, quantified: GCON spends ε once; a per-step
    // mechanism must divide the same budget across its optimizer steps.
    // (Pure budget arithmetic — no training.)
    let mut rows = Vec::new();
    for steps in [100usize, 1_000, 10_000] {
        let basic = gcon_dp::composition::per_step_epsilon_basic(eps, steps);
        let adv = gcon_dp::composition::per_step_epsilon_advanced(eps, steps, delta / 2.0);
        rows.push(vec![
            format!("{steps}"),
            format!("{basic:.5}"),
            format!("{adv:.5}"),
            format!("{eps}"),
        ]);
    }
    print_table(
        "Ablation 7 — per-step ε under composition vs GCON's one-shot spend",
        &["opt steps".into(), "basic comp".into(), "advanced comp".into(), "GCON".into()],
        &rows,
    );
}
