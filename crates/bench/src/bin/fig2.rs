//! Regenerates **Figure 2 (a–c)**: effect of the propagation step m₁ on
//! GCON's micro-F1 under ε = 4 with **private** inference (Eq. 16), for
//! α ∈ {0.2, 0.4, 0.6, 0.8} on Cora-ML, CiteSeer and PubMed.
//!
//! ```text
//! cargo run -p gcon-bench --release --bin fig2 -- --scale 0.25 --runs 2
//! ```

use gcon_bench::{
    default_gcon_config, evaluate_gcon_repeated, fmt_score, print_table, HarnessArgs, InferenceMode,
};
use gcon_core::PropagationStep;
use gcon_datasets::{citeseer, cora_ml, pubmed};

fn main() {
    let args = HarnessArgs::from_env();
    let eps = 4.0;
    let alphas = [0.2, 0.4, 0.6, 0.8];
    let steps: Vec<PropagationStep> = if args.quick {
        vec![PropagationStep::Finite(1), PropagationStep::Finite(10), PropagationStep::Infinite]
    } else {
        // The paper's m₁ grid: {1, 2, 5, 10, 12, 14, 16, 20, ∞}.
        let mut v: Vec<PropagationStep> = [1usize, 2, 5, 10, 12, 14, 16, 20]
            .iter()
            .map(|&m| PropagationStep::Finite(m))
            .collect();
        v.push(PropagationStep::Infinite);
        v
    };

    println!("# Figure 2: effect of the propagation step m₁ (private test graph, ε = 4)");
    println!("# scale={} runs={} seed={}", args.scale, args.runs, args.seed);

    let datasets = [
        cora_ml(args.scale, args.seed),
        citeseer(args.scale, args.seed + 1),
        pubmed(args.scale, args.seed + 2),
    ];

    for dataset in &datasets {
        let delta = dataset.default_delta();
        let mut header = vec!["α \\ m₁".to_string()];
        header.extend(steps.iter().map(|m| format!("m₁={m}")));
        let mut rows = Vec::new();
        for &alpha in &alphas {
            let mut row = vec![format!("α={alpha}")];
            for &m1 in &steps {
                let mut cfg = default_gcon_config(&dataset.name);
                cfg.alpha = alpha;
                cfg.alpha_inference = alpha;
                cfg.steps = vec![m1];
                let (mean, std) = evaluate_gcon_repeated(
                    &cfg,
                    dataset,
                    eps,
                    delta,
                    InferenceMode::Private,
                    args.seed + 43,
                    args.runs,
                );
                row.push(fmt_score(mean, std));
            }
            rows.push(row);
        }
        print_table(&format!("Figure 2 — {}", dataset.name), &header, &rows);
    }
}
