//! Regenerates **Table II**: statistics of the four benchmark datasets —
//! vertices, edges, features, classes, homophily ratio (Definition 7) —
//! and compares them against the paper's reported values.
//!
//! Run at `--scale 1.0` (the default here, unlike the sweep binaries) to
//! check the synthetic stand-ins match the paper's numbers exactly.
//!
//! ```text
//! cargo run -p gcon-bench --release --bin table2
//! ```

use gcon_bench::{print_table, HarnessArgs};
use gcon_datasets::all_benchmarks;

/// The paper's Table II rows: (name, vertices, edges, features, classes, homophily).
const PAPER: [(&str, usize, usize, usize, usize, f64); 4] = [
    ("cora-ml", 2995, 16_316, 2879, 7, 0.81),
    ("citeseer", 3327, 9104, 3703, 6, 0.71),
    ("pubmed", 19_717, 88_648, 500, 3, 0.79),
    ("actor", 7600, 30_019, 932, 5, 0.22),
];

fn main() {
    let mut args = HarnessArgs::from_env();
    // Table II is about the full-size datasets; generation is cheap, so
    // default to 1.0 unless the user overrode it.
    if (args.scale - 0.25).abs() < 1e-12 {
        args.scale = 1.0;
    }

    println!("# Table II: dataset statistics (ours vs paper)");
    println!("# scale={} seed={}", args.scale, args.seed);

    let datasets = all_benchmarks(args.scale, args.seed);
    let header: Vec<String> =
        ["dataset", "vertices", "edges", "features", "classes", "homophily", "paper homophily"]
            .iter()
            .map(|s| s.to_string())
            .collect();

    let mut rows = Vec::new();
    for (dataset, paper) in datasets.iter().zip(&PAPER) {
        let s = dataset.stats();
        rows.push(vec![
            dataset.name.clone(),
            s.vertices.to_string(),
            s.edges.to_string(),
            s.features.to_string(),
            s.classes.to_string(),
            format!("{:.2}", s.homophily),
            format!("{:.2}", paper.5),
        ]);
        if args.scale == 1.0 {
            assert_eq!(s.vertices, paper.1, "{}: vertex count mismatch", dataset.name);
            assert_eq!(s.edges, paper.2, "{}: edge count mismatch", dataset.name);
            assert_eq!(s.features, paper.3, "{}: feature dim mismatch", dataset.name);
            assert_eq!(s.classes, paper.4, "{}: class count mismatch", dataset.name);
            assert!(
                (s.homophily - paper.5).abs() < 0.07,
                "{}: homophily {:.3} too far from paper {:.2}",
                dataset.name,
                s.homophily,
                paper.5
            );
        }
    }
    print_table("Table II — statistics of the datasets", &header, &rows);
    if args.scale == 1.0 {
        println!("\nAll statistics match the paper's Table II (homophily within ±0.07).");
    }
}
