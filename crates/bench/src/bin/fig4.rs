//! Regenerates **Figure 4 (a–c)**: effect of the restart probability α on
//! GCON's micro-F1 with m₁ = 2 across ε ∈ {0.5, 1, 2, 3, 4} on Cora-ML,
//! CiteSeer and PubMed (private inference).
//!
//! ```text
//! cargo run -p gcon-bench --release --bin fig4 -- --scale 0.25 --runs 2
//! ```

use gcon_bench::{
    default_gcon_config, evaluate_gcon_repeated, fmt_score, print_table, HarnessArgs,
    InferenceMode, EPS_GRID,
};
use gcon_core::PropagationStep;
use gcon_datasets::{citeseer, cora_ml, pubmed};

fn main() {
    let args = HarnessArgs::from_env();
    let alphas = [0.2, 0.4, 0.6, 0.8];
    let eps_grid: Vec<f64> = if args.quick { vec![0.5, 4.0] } else { EPS_GRID.to_vec() };

    println!("# Figure 4: effect of the restart probability α (m₁ = 2)");
    println!("# scale={} runs={} seed={}", args.scale, args.runs, args.seed);

    let datasets = [
        cora_ml(args.scale, args.seed),
        citeseer(args.scale, args.seed + 1),
        pubmed(args.scale, args.seed + 2),
    ];

    for dataset in &datasets {
        let delta = dataset.default_delta();
        let mut header = vec!["α \\ ε".to_string()];
        header.extend(eps_grid.iter().map(|e| format!("ε={e}")));
        let mut rows = Vec::new();
        for &alpha in &alphas {
            let mut row = vec![format!("α={alpha}")];
            for &eps in &eps_grid {
                let mut cfg = default_gcon_config(&dataset.name);
                cfg.alpha = alpha;
                cfg.alpha_inference = alpha;
                cfg.steps = vec![PropagationStep::Finite(2)];
                let (mean, std) = evaluate_gcon_repeated(
                    &cfg,
                    dataset,
                    eps,
                    delta,
                    InferenceMode::Private,
                    args.seed + 53,
                    args.runs,
                );
                row.push(fmt_score(mean, std));
            }
            rows.push(row);
        }
        print_table(&format!("Figure 4 — {}", dataset.name), &header, &rows);
    }
}
