//! Regenerates **Figure 1 (a–d)**: micro-F1 versus privacy budget ε for
//! GCON and its seven competitors on all four benchmark datasets,
//! δ = 1/|E|, averaged over `--runs` repetitions.
//!
//! ```text
//! cargo run -p gcon-bench --release --bin fig1 -- --scale 0.25 --runs 3
//! ```

use gcon_baselines::{evaluate_baseline, Baseline};
use gcon_bench::{
    default_gcon_config, evaluate_gcon_repeated, fmt_score, print_table, HarnessArgs,
    InferenceMode, EPS_GRID,
};
use gcon_datasets::all_benchmarks;
use gcon_linalg::vecops::{mean, std_dev};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = HarnessArgs::from_env();
    let eps_grid: Vec<f64> = if args.quick { vec![0.5, 4.0] } else { EPS_GRID.to_vec() };
    let datasets = all_benchmarks(args.scale, args.seed);

    println!("# Figure 1: model performance (micro-F1) vs privacy budget ε");
    println!(
        "# scale={} runs={} seed={} (paper: full scale, 10 runs)",
        args.scale, args.runs, args.seed
    );

    for dataset in &datasets {
        let delta = dataset.default_delta();
        let mut header = vec!["method".to_string()];
        header.extend(eps_grid.iter().map(|e| format!("ε={e}")));
        let mut rows: Vec<Vec<String>> = Vec::new();

        // GCON first (the paper's headline series).
        let cfg = default_gcon_config(&dataset.name);
        let mut row = vec!["GCON".to_string()];
        for &eps in &eps_grid {
            let (m, s) = evaluate_gcon_repeated(
                &cfg,
                dataset,
                eps,
                delta,
                InferenceMode::Private,
                args.seed + 17,
                args.runs,
            );
            row.push(fmt_score(m, s));
        }
        rows.push(row);

        for baseline in Baseline::all() {
            let mut row = vec![baseline.name().to_string()];
            // ε-independent methods are evaluated once and repeated across
            // the row (their curve is flat by construction).
            let flat: Option<(f64, f64)> = baseline.ignores_epsilon().then(|| {
                let scores: Vec<f64> = (0..args.runs)
                    .map(|r| {
                        let mut rng = StdRng::seed_from_u64(args.seed + 31 + 1000 * r as u64);
                        evaluate_baseline(baseline, dataset, 1.0, delta, &mut rng)
                    })
                    .collect();
                (mean(&scores), std_dev(&scores))
            });
            for &eps in &eps_grid {
                let (m, s) = match flat {
                    Some(ms) => ms,
                    None => {
                        let scores: Vec<f64> = (0..args.runs)
                            .map(|r| {
                                let mut rng =
                                    StdRng::seed_from_u64(args.seed + 31 + 1000 * r as u64);
                                evaluate_baseline(baseline, dataset, eps, delta, &mut rng)
                            })
                            .collect();
                        (mean(&scores), std_dev(&scores))
                    }
                };
                row.push(fmt_score(m, s));
            }
            rows.push(row);
        }

        print_table(
            &format!("Figure 1 — {} (δ = 1/|E| = {delta:.2e})", dataset.name),
            &header,
            &rows,
        );
    }
}
