#![warn(missing_docs)]
//! Experiment harness regenerating every table and figure of the GCON
//! paper's evaluation (Sec. VI). One binary per artifact:
//!
//! | Binary | Paper artifact | What it prints |
//! |---|---|---|
//! | `fig1` | Figure 1 (a–d) | micro-F1 vs ε for 8 methods × 4 datasets |
//! | `fig2` | Figure 2 (a–c) | effect of m₁ × α, ε = 4, private inference |
//! | `fig3` | Figure 3 (a–c) | same sweep, public test graph |
//! | `fig4` | Figure 4 (a–c) | effect of α across ε, m₁ = 2 |
//! | `table2` | Table II | dataset statistics incl. homophily ratio |
//! | `ablation` | (ours) | loss / ω / d₁ / pseudo-label ablations |
//!
//! All binaries accept `--scale S` (default 0.25: proportional shrink of the
//! Table II sizes, see `gcon-datasets`), `--runs R`, `--seed N` and
//! `--quick` (smaller grids for smoke runs). Criterion microbenches live in
//! `benches/`.

use gcon_core::infer::{private_predict, public_predict};
use gcon_core::train::train_gcon;
use gcon_core::{GconConfig, PropagationStep};
use gcon_datasets::metrics::micro_f1;
use gcon_datasets::Dataset;
use gcon_linalg::vecops::{mean, std_dev};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which test-time protocol to score with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InferenceMode {
    /// Eq. (16): one-hop, private test graph (Figures 1, 2, 4).
    Private,
    /// Full propagation on a public test graph (Figure 3).
    Public,
}

/// Common CLI options for every harness binary.
#[derive(Clone, Debug)]
pub struct HarnessArgs {
    /// Dataset scale in (0, 1]; 1.0 = full Table II sizes.
    pub scale: f64,
    /// Independent repetitions per configuration (paper: 10).
    pub runs: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Shrink sweep grids for a fast smoke run.
    pub quick: bool,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        Self { scale: 0.25, runs: 3, seed: 0, quick: false }
    }
}

impl HarnessArgs {
    /// Parses `--scale`, `--runs`, `--seed`, `--quick` from `std::env::args`.
    pub fn from_env() -> Self {
        let mut out = Self::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    out.scale = args
                        .get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .expect("--scale needs a number in (0,1]");
                    i += 1;
                }
                "--runs" => {
                    out.runs = args
                        .get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .expect("--runs needs a positive integer");
                    i += 1;
                }
                "--seed" => {
                    out.seed = args
                        .get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .expect("--seed needs an integer");
                    i += 1;
                }
                "--quick" => out.quick = true,
                "--bench" => {} // ignore cargo-bench artifacts
                other => {
                    if !other.starts_with("--") {
                        // positional junk from cargo; ignore
                    } else {
                        eprintln!("warning: unknown flag {other}");
                    }
                }
            }
            i += 1;
        }
        assert!(out.scale > 0.0 && out.scale <= 1.0, "--scale must lie in (0, 1]");
        assert!(out.runs >= 1, "--runs must be ≥ 1");
        out
    }
}

/// The paper's ε grid (Sec. VI-A).
pub const EPS_GRID: [f64; 5] = [0.5, 1.0, 2.0, 3.0, 4.0];

/// Per-dataset GCON hyperparameters following the paper's findings
/// (Figure 4: α = 0.8 best on Cora-ML/CiteSeer, α = 0.4 on PubMed; Actor
/// benefits from multi-scale steps including m = 0, Appendix Q).
pub fn default_gcon_config(dataset_name: &str) -> GconConfig {
    let mut cfg = GconConfig::default();
    // α_I = 0.1 throughout: the paper tunes the inference restart in
    // {α} ∪ {0.1, 0.9} (Appendix Q); on our noisy-feature stand-ins the
    // one-hop private aggregation benefits from leaning on the neighborhood.
    match dataset_name {
        "cora-ml" | "citeseer" => {
            cfg.alpha = 0.8;
            cfg.alpha_inference = 0.1;
            cfg.steps = vec![PropagationStep::Finite(2)];
        }
        "pubmed" => {
            cfg.alpha = 0.4;
            cfg.alpha_inference = 0.1;
            cfg.steps = vec![PropagationStep::Finite(2)];
        }
        "actor" => {
            cfg.alpha = 0.8;
            cfg.alpha_inference = 0.5;
            cfg.steps = vec![PropagationStep::Finite(0), PropagationStep::Finite(2)];
        }
        _ => {}
    }
    cfg
}

/// Trains GCON once and returns the test micro-F1 under the given protocol.
pub fn evaluate_gcon(
    cfg: &GconConfig,
    dataset: &Dataset,
    eps: f64,
    delta: f64,
    mode: InferenceMode,
    seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let model = train_gcon(
        cfg,
        &dataset.graph,
        &dataset.features,
        &dataset.labels,
        &dataset.split.train,
        dataset.num_classes,
        eps,
        delta,
        &mut rng,
    );
    let pred_all = match mode {
        InferenceMode::Private => private_predict(&model, &dataset.graph, &dataset.features),
        InferenceMode::Public => public_predict(&model, &dataset.graph, &dataset.features),
    };
    let test_pred: Vec<usize> = dataset.split.test.iter().map(|&i| pred_all[i]).collect();
    micro_f1(&test_pred, &dataset.test_labels())
}

/// Repeats GCON evaluation over `runs` seeds → `(mean, std)`.
pub fn evaluate_gcon_repeated(
    cfg: &GconConfig,
    dataset: &Dataset,
    eps: f64,
    delta: f64,
    mode: InferenceMode,
    base_seed: u64,
    runs: usize,
) -> (f64, f64) {
    let scores: Vec<f64> = (0..runs)
        .map(|r| evaluate_gcon(cfg, dataset, eps, delta, mode, base_seed + 1000 * r as u64))
        .collect();
    (mean(&scores), std_dev(&scores))
}

/// Formats `mean ± std` to three decimals.
pub fn fmt_score(mean: f64, std: f64) -> String {
    format!("{mean:.3}±{std:.3}")
}

/// Prints a Markdown-ish table: header row + aligned cells.
pub fn print_table(title: &str, header: &[String], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        let padded: Vec<String> =
            cells.iter().zip(&widths).map(|(c, w)| format!("{c:<w$}", w = w)).collect();
        format!("| {} |", padded.join(" | "))
    };
    println!("{}", fmt_row(header));
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("{}", fmt_row(&sep));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Median wall-clock nanoseconds for one call of `f` — the shared timing
/// policy of the perf microbenches (`bench_linalg`, `bench_serve`).
///
/// `reps` is a floor: sub-millisecond calls get enough extra reps to fill
/// ~10 ms of sampling (capped at 501), keeping the median stable against
/// scheduler/frequency jitter on the shared dev box (µs-scale kernels
/// showed ±30% between fixed-rep runs). One warm-up call absorbs pool
/// spin-up, buffer growth, and icache effects. See `crates/bench/README.md`
/// for the full methodology.
pub fn median_time_ns<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    use std::time::Instant;
    f(); // warm-up
    let probe = Instant::now();
    f();
    let est = (probe.elapsed().as_nanos() as f64).max(1.0);
    let reps = reps.max((1e7 / est) as usize).min(501);
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcon_datasets::two_moons_graph;

    #[test]
    fn evaluate_gcon_returns_valid_score() {
        let d = two_moons_graph(201);
        let mut cfg = default_gcon_config(&d.name);
        cfg.encoder.epochs = 40;
        cfg.optimizer.max_iters = 300;
        let f1 = evaluate_gcon(&cfg, &d, 2.0, 1e-3, InferenceMode::Private, 7);
        assert!((0.0..=1.0).contains(&f1));
    }

    #[test]
    fn repeated_evaluation_is_deterministic_per_seed() {
        let d = two_moons_graph(202);
        let mut cfg = default_gcon_config(&d.name);
        cfg.encoder.epochs = 30;
        cfg.optimizer.max_iters = 200;
        let a = evaluate_gcon(&cfg, &d, 1.0, 1e-3, InferenceMode::Public, 11);
        let b = evaluate_gcon(&cfg, &d, 1.0, 1e-3, InferenceMode::Public, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn per_dataset_configs_differ() {
        assert_eq!(default_gcon_config("pubmed").alpha, 0.4);
        assert_eq!(default_gcon_config("cora-ml").alpha, 0.8);
        assert_eq!(default_gcon_config("actor").steps.len(), 2);
    }

    #[test]
    fn fmt_and_table_do_not_panic() {
        assert_eq!(fmt_score(0.5, 0.01), "0.500±0.010");
        print_table("t", &["a".into(), "b".into()], &[vec!["1".into(), "2".into()]]);
    }
}
