//! The dataset container and its summary statistics.

use gcon_graph::{homophily_ratio, Graph};
use gcon_linalg::Mat;

/// Train/validation/test node-index split (Appendix P).
#[derive(Clone, Debug, Default)]
pub struct Split {
    /// Labeled training nodes.
    pub train: Vec<usize>,
    /// Validation nodes.
    pub val: Vec<usize>,
    /// Test nodes.
    pub test: Vec<usize>,
}

/// A node-classification dataset: graph + features + labels + fixed split.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Human-readable name ("cora-ml", …).
    pub name: String,
    /// The (private-edge) graph.
    pub graph: Graph,
    /// Node features, `n × d₀`.
    pub features: Mat,
    /// Class index per node.
    pub labels: Vec<usize>,
    /// Number of classes `c`.
    pub num_classes: usize,
    /// The fixed split.
    pub split: Split,
}

/// The Table II row for a dataset.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DatasetStats {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of undirected edges.
    pub edges: usize,
    /// Feature dimension d₀.
    pub features: usize,
    /// Number of classes.
    pub classes: usize,
    /// Homophily ratio (Definition 7).
    pub homophily: f64,
}

impl Dataset {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Labels of the training nodes, parallel to `split.train`.
    pub fn train_labels(&self) -> Vec<usize> {
        self.split.train.iter().map(|&i| self.labels[i]).collect()
    }

    /// Labels of the test nodes, parallel to `split.test`.
    pub fn test_labels(&self) -> Vec<usize> {
        self.split.test.iter().map(|&i| self.labels[i]).collect()
    }

    /// `δ = 1/|E|`, the paper's experimental choice (Sec. VI-A).
    pub fn default_delta(&self) -> f64 {
        1.0 / self.graph.num_edges().max(1) as f64
    }

    /// Computes the Table II statistics row.
    pub fn stats(&self) -> DatasetStats {
        DatasetStats {
            vertices: self.num_nodes(),
            edges: self.graph.num_edges(),
            features: self.features.cols(),
            classes: self.num_classes,
            homophily: homophily_ratio(&self.graph, &self.labels),
        }
    }

    /// Sanity validation: shapes agree, split indices are in range and
    /// pairwise disjoint. Panics on violation (used by tests and harness).
    pub fn validate(&self) {
        let n = self.num_nodes();
        assert_eq!(self.features.rows(), n, "{}: feature rows", self.name);
        assert_eq!(self.labels.len(), n, "{}: label count", self.name);
        assert!(self.labels.iter().all(|&l| l < self.num_classes), "{}: label range", self.name);
        let mut seen = vec![false; n];
        for part in [&self.split.train, &self.split.val, &self.split.test] {
            for &i in part {
                assert!(i < n, "{}: split index {i} out of range", self.name);
                assert!(!seen[i], "{}: split overlap at {i}", self.name);
                seen[i] = true;
            }
        }
        assert!(!self.split.train.is_empty(), "{}: empty train split", self.name);
        assert!(!self.split.test.is_empty(), "{}: empty test split", self.name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcon_graph::generators;

    fn tiny() -> Dataset {
        let graph = generators::cycle(10);
        Dataset {
            name: "tiny".into(),
            graph,
            features: Mat::from_fn(10, 3, |i, j| (i * 3 + j) as f64),
            labels: (0..10).map(|i| i % 2).collect(),
            num_classes: 2,
            split: Split { train: vec![0, 1, 2, 3], val: vec![4, 5], test: vec![6, 7, 8, 9] },
        }
    }

    #[test]
    fn validate_accepts_consistent_dataset() {
        tiny().validate();
    }

    #[test]
    #[should_panic(expected = "split overlap")]
    fn validate_rejects_overlapping_split() {
        let mut d = tiny();
        d.split.val.push(0);
        d.validate();
    }

    #[test]
    fn stats_and_labels() {
        let d = tiny();
        let s = d.stats();
        assert_eq!(s.vertices, 10);
        assert_eq!(s.edges, 10);
        assert_eq!(s.features, 3);
        assert_eq!(s.classes, 2);
        assert_eq!(d.train_labels(), vec![0, 1, 0, 1]);
        assert!((d.default_delta() - 0.1).abs() < 1e-12);
    }
}
