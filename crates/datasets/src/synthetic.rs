//! Deterministic synthetic stand-ins for the paper's benchmark datasets.
//!
//! Each constructor reproduces one Table II row:
//!
//! | Dataset  | Vertices | Edges  | Features | Classes | Homophily |
//! |----------|----------|--------|----------|---------|-----------|
//! | Cora-ML  | 2995     | 16316  | 2879     | 7       | 0.81      |
//! | CiteSeer | 3327     | 9104   | 3703     | 6       | 0.71      |
//! | PubMed   | 19717    | 88648  | 500      | 3       | 0.79      |
//! | Actor    | 7600     | 30019  | 932      | 5       | 0.22      |
//!
//! Topology comes from the degree-corrected SBM with a homophily dial;
//! features are class-conditioned sparse Bernoulli bags-of-words: each class
//! owns a fixed-size signature dimension set that fires with elevated
//! probability. Crucially, a `corrupt_frac` fraction of nodes draw their
//! features from a *random other class's* signature — these nodes are
//! unclassifiable from features alone (they cap the MLP baseline, matching
//! the paper's MLP-vs-GCN gap) but recoverable through homophilous
//! neighborhoods, which is exactly the signal graph convolution exploits.
//! The per-dataset `p_signal`/`corrupt_frac` values below are calibrated so
//! the MLP floor and non-DP GCN ceiling land near the paper's Figure 1
//! values. The `scale` knob shrinks n, |E|, d₀ and the split sizes
//! proportionally for tractable sweeps; `scale = 1.0` matches Table II.
//! The signature size is fixed (not a fraction of d₀), so classification
//! difficulty stays roughly scale-invariant.

use crate::dataset::Dataset;
use crate::splits::{planetoid_split, proportional_split};
use gcon_graph::generators::{sbm_homophily, SbmConfig};
use gcon_linalg::Mat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which split convention a spec uses (Appendix P).
#[derive(Clone, Copy, Debug)]
enum SplitKind {
    /// `per_class` train nodes per class + fixed val/test counts.
    Planetoid { per_class: usize, val: usize, test: usize },
    /// Proportional split (train_frac, val_frac).
    Proportional { train: f64, val: f64 },
}

/// Full description of a synthetic benchmark.
#[derive(Clone, Debug)]
pub struct SyntheticSpec {
    /// Dataset name.
    pub name: &'static str,
    /// Table II node count.
    pub n: usize,
    /// Table II undirected edge count.
    pub num_edges: usize,
    /// Table II feature dimension.
    pub d0: usize,
    /// Table II class count.
    pub classes: usize,
    /// Table II homophily ratio target.
    pub homophily: f64,
    /// Degree-propensity Pareto exponent.
    pub degree_exponent: f64,
    /// Probability a signature feature fires for its class.
    pub p_signal: f64,
    /// Probability any feature fires as background noise.
    pub p_noise: f64,
    /// Fraction of nodes whose features are drawn from a random *other*
    /// class's signature. These nodes are wrong-by-features and can only be
    /// recovered through their neighborhoods — they set the MLP floor below
    /// the GCN ceiling, as on the paper's real datasets.
    pub corrupt_frac: f64,
    split: SplitKind,
}

/// Cora-ML stand-in.
pub const CORA_ML: SyntheticSpec = SyntheticSpec {
    name: "cora-ml",
    n: 2995,
    num_edges: 16_316,
    d0: 2879,
    classes: 7,
    homophily: 0.81,
    degree_exponent: 2.3,
    p_signal: 0.18,
    p_noise: 0.01,
    corrupt_frac: 0.10,
    split: SplitKind::Planetoid { per_class: 20, val: 500, test: 1000 },
};

/// CiteSeer stand-in.
pub const CITESEER: SyntheticSpec = SyntheticSpec {
    name: "citeseer",
    n: 3327,
    num_edges: 9104,
    d0: 3703,
    classes: 6,
    homophily: 0.71,
    degree_exponent: 2.5,
    p_signal: 0.15,
    p_noise: 0.01,
    corrupt_frac: 0.12,
    split: SplitKind::Planetoid { per_class: 20, val: 500, test: 1000 },
};

/// PubMed stand-in.
pub const PUBMED: SyntheticSpec = SyntheticSpec {
    name: "pubmed",
    n: 19_717,
    num_edges: 88_648,
    d0: 500,
    classes: 3,
    homophily: 0.79,
    degree_exponent: 2.2,
    p_signal: 0.28,
    p_noise: 0.03,
    corrupt_frac: 0.08,
    split: SplitKind::Planetoid { per_class: 20, val: 500, test: 1000 },
};

/// Actor stand-in (heterophilous: homophily 0.22 ≈ random wiring over 5
/// classes, with weaker feature signal so absolute accuracy lands in the
/// paper's 0.30–0.37 band).
pub const ACTOR: SyntheticSpec = SyntheticSpec {
    name: "actor",
    n: 7600,
    num_edges: 30_019,
    d0: 932,
    classes: 5,
    homophily: 0.22,
    degree_exponent: 2.1,
    p_signal: 0.10,
    p_noise: 0.03,
    corrupt_frac: 0.15,
    split: SplitKind::Proportional { train: 0.6, val: 0.2 },
};

impl SyntheticSpec {
    /// Materializes the dataset at the given scale with a fixed seed.
    ///
    /// `scale = 1.0` reproduces the Table II sizes; smaller values shrink
    /// n, |E|, d₀ and the split sizes proportionally while preserving class
    /// count and homophily.
    pub fn build(&self, scale: f64, seed: u64) -> Dataset {
        assert!(scale > 0.0 && scale <= 1.0, "build: scale must lie in (0, 1]");
        let mut rng = StdRng::seed_from_u64(seed);
        let n = ((self.n as f64 * scale).round() as usize).max(self.classes * 40);
        let num_edges = ((self.num_edges as f64 * scale).round() as usize).max(n);
        let d0 = ((self.d0 as f64 * scale).round() as usize).max(64);

        let (graph, labels) = sbm_homophily(
            &SbmConfig {
                n,
                num_edges,
                num_classes: self.classes,
                homophily: self.homophily,
                degree_exponent: self.degree_exponent,
            },
            &mut rng,
        );

        let features = bag_of_words_features(
            &labels,
            self.classes,
            d0,
            self.p_signal,
            self.p_noise,
            self.corrupt_frac,
            &mut rng,
        );

        let split = match self.split {
            SplitKind::Planetoid { per_class, val, test } => {
                let val = ((val as f64 * scale).round() as usize).max(20);
                let test = ((test as f64 * scale).round() as usize).max(50);
                planetoid_split(&labels, self.classes, per_class, val, test, &mut rng)
            }
            SplitKind::Proportional { train, val } => proportional_split(n, train, val, &mut rng),
        };

        let d = Dataset {
            name: self.name.to_string(),
            graph,
            features,
            labels,
            num_classes: self.classes,
            split,
        };
        d.validate();
        d
    }
}

/// Number of signature dimensions per class. Fixed (not a fraction of d₀)
/// so the feature signal does not grow with the `scale` knob.
const SIG_DIMS: usize = 16;

/// Class-conditioned sparse Bernoulli bag-of-words with feature corruption.
///
/// Class `k` owns `min(SIG_DIMS, d₀/c)` dimensions at the start of the block
/// `[k·d₀/c, (k+1)·d₀/c)`. A node emits its *effective* class's signature —
/// the true class, or a random other class for the `corrupt_frac` of nodes
/// whose features lie (recoverable only through the graph).
fn bag_of_words_features<R: Rng + ?Sized>(
    labels: &[usize],
    classes: usize,
    d0: usize,
    p_signal: f64,
    p_noise: f64,
    corrupt_frac: f64,
    rng: &mut R,
) -> Mat {
    assert!((0.0..1.0).contains(&corrupt_frac));
    let block = (d0 / classes).max(1);
    let sig = SIG_DIMS.min(block);
    let mut x = Mat::zeros(labels.len(), d0);
    for (i, &label) in labels.iter().enumerate() {
        let effective = if rng.gen::<f64>() < corrupt_frac {
            let mut other = rng.gen_range(0..classes - 1);
            if other >= label {
                other += 1;
            }
            other
        } else {
            label
        };
        let sig_start = effective * block;
        let sig_end = (sig_start + sig).min(d0);
        let row = x.row_mut(i);
        for (j, v) in row.iter_mut().enumerate() {
            let p = if (sig_start..sig_end).contains(&j) { p_signal } else { p_noise };
            if rng.gen::<f64>() < p {
                *v = 1.0;
            }
        }
    }
    x
}

/// Cora-ML stand-in at the given scale.
pub fn cora_ml(scale: f64, seed: u64) -> Dataset {
    CORA_ML.build(scale, seed)
}

/// CiteSeer stand-in at the given scale.
pub fn citeseer(scale: f64, seed: u64) -> Dataset {
    CITESEER.build(scale, seed)
}

/// PubMed stand-in at the given scale.
pub fn pubmed(scale: f64, seed: u64) -> Dataset {
    PUBMED.build(scale, seed)
}

/// Actor stand-in at the given scale.
pub fn actor(scale: f64, seed: u64) -> Dataset {
    ACTOR.build(scale, seed)
}

/// All four Table II datasets in paper order.
pub fn all_benchmarks(scale: f64, seed: u64) -> Vec<Dataset> {
    vec![
        cora_ml(scale, seed),
        citeseer(scale, seed.wrapping_add(1)),
        pubmed(scale, seed.wrapping_add(2)),
        actor(scale, seed.wrapping_add(3)),
    ]
}

/// A small, fast, strongly homophilous 2-class dataset used by the
/// quickstart example and smoke tests (not part of Table II).
pub fn two_moons_graph(seed: u64) -> Dataset {
    let spec = SyntheticSpec {
        name: "two-moons-graph",
        n: 240,
        num_edges: 720,
        d0: 64,
        classes: 2,
        homophily: 0.9,
        degree_exponent: 2.5,
        p_signal: 0.30,
        p_noise: 0.02,
        corrupt_frac: 0.10,
        split: SplitKind::Planetoid { per_class: 20, val: 40, test: 120 },
    };
    spec.build(1.0, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_matches_table2_sizes() {
        // Only generate the two smaller graphs at full scale to keep the
        // test quick; pubmed/actor sizes are covered by the table2 harness.
        let d = cora_ml(1.0, 0);
        let s = d.stats();
        assert_eq!(s.vertices, 2995);
        assert_eq!(s.edges, 16_316);
        assert_eq!(s.features, 2879);
        assert_eq!(s.classes, 7);
        assert!((s.homophily - 0.81).abs() < 0.05, "homophily {}", s.homophily);

        let d = citeseer(1.0, 0);
        let s = d.stats();
        assert_eq!(s.vertices, 3327);
        assert_eq!(s.edges, 9104);
        assert_eq!(s.classes, 6);
        assert!((s.homophily - 0.71).abs() < 0.06, "homophily {}", s.homophily);
    }

    #[test]
    fn actor_is_heterophilous() {
        let d = actor(0.25, 1);
        let h = d.stats().homophily;
        assert!(h < 0.35, "actor homophily {h} should be low");
    }

    #[test]
    fn scaled_datasets_shrink_proportionally() {
        let d = pubmed(0.1, 2);
        let s = d.stats();
        assert!((s.vertices as f64 - 1972.0).abs() < 5.0);
        assert_eq!(s.classes, 3);
        assert!(s.features <= 500);
        d.validate();
    }

    #[test]
    fn features_carry_class_signal() {
        // Mean signature-block activation should exceed background clearly.
        let d = two_moons_graph(3);
        let block = d.features.cols() / 2;
        let mut sig = 0.0;
        let mut bg = 0.0;
        let mut nsig = 0.0;
        let mut nbg = 0.0;
        for i in 0..d.num_nodes() {
            let label = d.labels[i];
            for j in 0..d.features.cols() {
                let in_sig = (label * block..(label + 1) * block).contains(&j);
                if in_sig {
                    sig += d.features.get(i, j);
                    nsig += 1.0;
                } else {
                    bg += d.features.get(i, j);
                    nbg += 1.0;
                }
            }
        }
        assert!(sig / nsig > 3.0 * (bg / nbg), "signal {} vs noise {}", sig / nsig, bg / nbg);
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let a = citeseer(0.1, 9);
        let b = citeseer(0.1, 9);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.graph.edges(), b.graph.edges());
        assert_eq!(a.features.as_slice(), b.features.as_slice());
        assert_eq!(a.split.train, b.split.train);
    }

    #[test]
    fn different_seeds_differ() {
        let a = citeseer(0.1, 1);
        let b = citeseer(0.1, 2);
        assert_ne!(a.graph.edges(), b.graph.edges());
    }

    #[test]
    fn all_benchmarks_returns_four() {
        let ds = all_benchmarks(0.05, 0);
        assert_eq!(ds.len(), 4);
        let names: Vec<&str> = ds.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["cora-ml", "citeseer", "pubmed", "actor"]);
        for d in &ds {
            d.validate();
        }
    }
}
