//! Binary serialization for datasets.
//!
//! Synthetic generation of the full-scale PubMed stand-in takes seconds;
//! pipelines that re-run sweeps benefit from caching datasets on disk. The
//! format is a small explicit little-endian codec built on `bytes` (no
//! serde format crate is available in this workspace):
//!
//! ```text
//! magic "GCDS" | version u32 | name len u32 + utf8 | num_classes u32
//! | n u32 | num_edges u32 | edges (u32, u32)* | feat rows u32 | cols u32
//! | features f64* | labels u32* | 3 × (len u32 + u32*) splits
//! ```

use crate::dataset::{Dataset, Split};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use gcon_graph::Graph;
use gcon_linalg::Mat;

const MAGIC: &[u8; 4] = b"GCDS";
const VERSION: u32 = 1;

/// Errors from [`decode_dataset`].
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer does not start with the `GCDS` magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// The buffer ended before the declared payload.
    Truncated,
    /// A length/index field is inconsistent.
    Corrupt(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a GCDS dataset buffer"),
            DecodeError::BadVersion(v) => write!(f, "unsupported GCDS version {v}"),
            DecodeError::Truncated => write!(f, "dataset buffer truncated"),
            DecodeError::Corrupt(what) => write!(f, "corrupt dataset buffer: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Serializes a dataset into an owned byte buffer.
pub fn encode_dataset(d: &Dataset) -> Bytes {
    let n = d.num_nodes();
    let edges = d.graph.edges();
    let (rows, cols) = d.features.shape();
    let mut buf =
        BytesMut::with_capacity(64 + d.name.len() + edges.len() * 8 + rows * cols * 8 + n * 4);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(d.name.len() as u32);
    buf.put_slice(d.name.as_bytes());
    buf.put_u32_le(d.num_classes as u32);
    buf.put_u32_le(n as u32);
    buf.put_u32_le(edges.len() as u32);
    for (u, v) in edges {
        buf.put_u32_le(u);
        buf.put_u32_le(v);
    }
    buf.put_u32_le(rows as u32);
    buf.put_u32_le(cols as u32);
    for &v in d.features.as_slice() {
        buf.put_f64_le(v);
    }
    for &l in &d.labels {
        buf.put_u32_le(l as u32);
    }
    for part in [&d.split.train, &d.split.val, &d.split.test] {
        buf.put_u32_le(part.len() as u32);
        for &i in part {
            buf.put_u32_le(i as u32);
        }
    }
    buf.freeze()
}

fn need(buf: &impl Buf, bytes: usize) -> Result<(), DecodeError> {
    if buf.remaining() < bytes {
        Err(DecodeError::Truncated)
    } else {
        Ok(())
    }
}

fn get_index_vec(buf: &mut impl Buf, max: usize) -> Result<Vec<usize>, DecodeError> {
    need(buf, 4)?;
    let len = buf.get_u32_le() as usize;
    need(buf, len * 4)?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        let i = buf.get_u32_le() as usize;
        if i >= max {
            return Err(DecodeError::Corrupt("split index out of range"));
        }
        out.push(i);
    }
    Ok(out)
}

/// Deserializes a dataset from a byte buffer produced by [`encode_dataset`].
pub fn decode_dataset(mut buf: &[u8]) -> Result<Dataset, DecodeError> {
    need(&buf, 8)?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    need(&buf, 4)?;
    let name_len = buf.get_u32_le() as usize;
    need(&buf, name_len)?;
    let mut name_bytes = vec![0u8; name_len];
    buf.copy_to_slice(&mut name_bytes);
    let name = String::from_utf8(name_bytes).map_err(|_| DecodeError::Corrupt("name not utf8"))?;
    need(&buf, 12)?;
    let num_classes = buf.get_u32_le() as usize;
    let n = buf.get_u32_le() as usize;
    let num_edges = buf.get_u32_le() as usize;
    need(&buf, num_edges * 8)?;
    let mut graph = Graph::empty(n);
    for _ in 0..num_edges {
        let u = buf.get_u32_le();
        let v = buf.get_u32_le();
        if u as usize >= n || v as usize >= n {
            return Err(DecodeError::Corrupt("edge endpoint out of range"));
        }
        graph.add_edge(u, v);
    }
    need(&buf, 8)?;
    let rows = buf.get_u32_le() as usize;
    let cols = buf.get_u32_le() as usize;
    if rows != n {
        return Err(DecodeError::Corrupt("feature rows must equal node count"));
    }
    need(&buf, rows * cols * 8)?;
    let mut data = Vec::with_capacity(rows * cols);
    for _ in 0..rows * cols {
        data.push(buf.get_f64_le());
    }
    let features = Mat::from_vec(rows, cols, data);
    need(&buf, n * 4)?;
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let l = buf.get_u32_le() as usize;
        if l >= num_classes {
            return Err(DecodeError::Corrupt("label out of range"));
        }
        labels.push(l);
    }
    let train = get_index_vec(&mut buf, n)?;
    let val = get_index_vec(&mut buf, n)?;
    let test = get_index_vec(&mut buf, n)?;
    Ok(Dataset { name, graph, features, labels, num_classes, split: Split { train, val, test } })
}

/// Writes a dataset to a file.
pub fn save_dataset(d: &Dataset, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, encode_dataset(d))
}

/// Reads a dataset from a file.
pub fn load_dataset(path: &std::path::Path) -> std::io::Result<Dataset> {
    let bytes = std::fs::read(path)?;
    decode_dataset(&bytes)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::two_moons_graph;

    #[test]
    fn roundtrip_preserves_everything() {
        let d = two_moons_graph(7);
        let bytes = encode_dataset(&d);
        let back = decode_dataset(&bytes).unwrap();
        assert_eq!(back.name, d.name);
        assert_eq!(back.num_classes, d.num_classes);
        assert_eq!(back.labels, d.labels);
        assert_eq!(back.graph.edges(), d.graph.edges());
        assert_eq!(back.features.as_slice(), d.features.as_slice());
        assert_eq!(back.split.train, d.split.train);
        assert_eq!(back.split.val, d.split.val);
        assert_eq!(back.split.test, d.split.test);
        back.validate();
    }

    #[test]
    fn rejects_bad_magic() {
        assert_eq!(decode_dataset(b"NOPE1234").unwrap_err(), DecodeError::BadMagic);
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let d = two_moons_graph(8);
        let bytes = encode_dataset(&d);
        // Chop at a few strategic points; every prefix must fail cleanly.
        for cut in [0, 3, 7, 11, 40, bytes.len() / 2, bytes.len() - 1] {
            let res = decode_dataset(&bytes[..cut]);
            assert!(res.is_err(), "prefix of {cut} bytes decoded successfully");
        }
    }

    #[test]
    fn rejects_corrupt_label() {
        let d = two_moons_graph(9);
        let mut bytes = encode_dataset(&d).to_vec();
        // Labels sit right after the feature block; find their offset.
        let name_len = d.name.len();
        let edges = d.graph.num_edges();
        let (rows, cols) = d.features.shape();
        let label_off = 4 + 4 + 4 + name_len + 4 + 4 + 4 + edges * 8 + 8 + rows * cols * 8;
        bytes[label_off..label_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_dataset(&bytes).unwrap_err(), DecodeError::Corrupt("label out of range"));
    }

    #[test]
    fn file_roundtrip() {
        let d = two_moons_graph(10);
        let path = std::env::temp_dir().join("gcon_io_test.gcds");
        save_dataset(&d, &path).unwrap();
        let back = load_dataset(&path).unwrap();
        assert_eq!(back.labels, d.labels);
        let _ = std::fs::remove_file(&path);
    }
}
