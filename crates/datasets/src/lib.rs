#![warn(missing_docs)]
//! Benchmark datasets for the GCON reproduction.
//!
//! The paper evaluates on Cora-ML, CiteSeer, PubMed (homophilous citation
//! graphs) and Actor (heterophilous), none of which can be bundled here.
//! This crate provides deterministic synthetic stand-ins that match every
//! Table II statistic — node count, edge count, feature dimension, class
//! count, and homophily ratio — via the degree-corrected SBM of
//! `gcon-graph::generators` plus class-conditioned sparse bag-of-words
//! features. DESIGN.md §3 documents why this substitution preserves the
//! paper's comparisons.
//!
//! Every named constructor takes a `scale ∈ (0, 1]` knob that shrinks the
//! node count, edge count and feature dimension proportionally (keeping
//! classes and homophily fixed) so the full Figure 1 sweep stays tractable
//! on a laptop; `scale = 1.0` reproduces Table II exactly (the `table2`
//! harness binary checks this).

pub mod dataset;
pub mod io;
pub mod metrics;
pub mod splits;
pub mod synthetic;
pub mod text_io;

pub use dataset::{Dataset, DatasetStats, Split};
pub use synthetic::{actor, all_benchmarks, citeseer, cora_ml, pubmed, two_moons_graph};
