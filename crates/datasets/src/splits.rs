//! The paper's fixed split conventions (Appendix P).
//!
//! - Citation graphs (Cora-ML, CiteSeer, PubMed): 20 labeled training nodes
//!   per class, 500 validation nodes, 1000 test nodes.
//! - Actor: random 60% / 20% / 20% proportions.

use crate::dataset::Split;
use rand::Rng;

/// The Planetoid-style split: `per_class` training nodes per class, then
/// `num_val` and `num_test` nodes from the remainder (all chosen from a
/// seeded shuffle so the split is fixed per dataset instance).
pub fn planetoid_split<R: Rng + ?Sized>(
    labels: &[usize],
    num_classes: usize,
    per_class: usize,
    num_val: usize,
    num_test: usize,
    rng: &mut R,
) -> Split {
    let n = labels.len();
    let mut order: Vec<usize> = (0..n).collect();
    shuffle(&mut order, rng);

    let mut train = Vec::with_capacity(per_class * num_classes);
    let mut taken = vec![false; n];
    let mut counts = vec![0usize; num_classes];
    for &i in &order {
        let c = labels[i];
        if counts[c] < per_class {
            counts[c] += 1;
            taken[i] = true;
            train.push(i);
        }
    }
    let mut rest: Vec<usize> = order.into_iter().filter(|&i| !taken[i]).collect();
    let num_val = num_val.min(rest.len());
    let val: Vec<usize> = rest.drain(..num_val).collect();
    let num_test = num_test.min(rest.len());
    let test: Vec<usize> = rest.drain(..num_test).collect();
    Split { train, val, test }
}

/// Proportional random split (60/20/20 for Actor, following \[43\]).
pub fn proportional_split<R: Rng + ?Sized>(
    n: usize,
    train_frac: f64,
    val_frac: f64,
    rng: &mut R,
) -> Split {
    assert!(train_frac > 0.0 && val_frac >= 0.0 && train_frac + val_frac < 1.0);
    let mut order: Vec<usize> = (0..n).collect();
    shuffle(&mut order, rng);
    let n_train = ((n as f64) * train_frac).round() as usize;
    let n_val = ((n as f64) * val_frac).round() as usize;
    let train = order[..n_train].to_vec();
    let val = order[n_train..n_train + n_val].to_vec();
    let test = order[n_train + n_val..].to_vec();
    Split { train, val, test }
}

/// Stratified proportional split over an explicit subset of (labeled)
/// nodes: each class contributes `train_frac`/`val_frac` of its members to
/// train/val, the remainder to test. Deterministic for a fixed `seed`.
/// Used by the real-data text loaders, where only some nodes carry labels.
pub fn stratified_split(
    labels: &[usize],
    labeled_idx: &[usize],
    train_frac: f64,
    val_frac: f64,
    seed: u64,
) -> Split {
    assert!(train_frac > 0.0 && val_frac >= 0.0 && train_frac + val_frac <= 1.0);
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut by_class: std::collections::BTreeMap<usize, Vec<usize>> =
        std::collections::BTreeMap::new();
    for &i in labeled_idx {
        by_class.entry(labels[i]).or_default().push(i);
    }
    let mut split = Split { train: Vec::new(), val: Vec::new(), test: Vec::new() };
    for (class, mut members) in by_class {
        let mut rng = StdRng::seed_from_u64(seed ^ (class as u64).wrapping_mul(0x9E37_79B9));
        shuffle(&mut members, &mut rng);
        let n = members.len();
        // At least one training node per class when the class is non-empty.
        let n_train = (((n as f64) * train_frac).round() as usize).clamp(1.min(n), n);
        let n_val = (((n as f64) * val_frac).round() as usize).min(n - n_train);
        split.train.extend(&members[..n_train]);
        split.val.extend(&members[n_train..n_train + n_val]);
        split.test.extend(&members[n_train + n_val..]);
    }
    split.train.sort_unstable();
    split.val.sort_unstable();
    split.test.sort_unstable();
    split
}

/// Fisher–Yates shuffle on the sanctioned `rand` primitives.
fn shuffle<R: Rng + ?Sized>(v: &mut [usize], rng: &mut R) {
    for i in (1..v.len()).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn planetoid_counts_per_class() {
        let mut rng = StdRng::seed_from_u64(101);
        let labels: Vec<usize> = (0..2000).map(|i| i % 4).collect();
        let s = planetoid_split(&labels, 4, 20, 500, 1000, &mut rng);
        assert_eq!(s.train.len(), 80);
        assert_eq!(s.val.len(), 500);
        assert_eq!(s.test.len(), 1000);
        for c in 0..4 {
            assert_eq!(s.train.iter().filter(|&&i| labels[i] == c).count(), 20);
        }
    }

    #[test]
    fn planetoid_disjoint() {
        let mut rng = StdRng::seed_from_u64(102);
        let labels: Vec<usize> = (0..300).map(|i| i % 3).collect();
        let s = planetoid_split(&labels, 3, 10, 50, 100, &mut rng);
        let mut seen = std::collections::HashSet::new();
        for part in [&s.train, &s.val, &s.test] {
            for &i in part {
                assert!(seen.insert(i), "index {i} duplicated");
            }
        }
    }

    #[test]
    fn planetoid_truncates_gracefully() {
        let mut rng = StdRng::seed_from_u64(103);
        let labels: Vec<usize> = (0..50).map(|i| i % 2).collect();
        let s = planetoid_split(&labels, 2, 5, 100, 100, &mut rng);
        assert_eq!(s.train.len(), 10);
        assert_eq!(s.val.len() + s.test.len(), 40);
    }

    #[test]
    fn proportional_fractions() {
        let mut rng = StdRng::seed_from_u64(104);
        let s = proportional_split(1000, 0.6, 0.2, &mut rng);
        assert_eq!(s.train.len(), 600);
        assert_eq!(s.val.len(), 200);
        assert_eq!(s.test.len(), 200);
    }

    #[test]
    fn splits_are_seed_deterministic() {
        let labels: Vec<usize> = (0..200).map(|i| i % 2).collect();
        let a = planetoid_split(&labels, 2, 10, 30, 60, &mut StdRng::seed_from_u64(7));
        let b = planetoid_split(&labels, 2, 10, 30, 60, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn stratified_split_respects_class_proportions() {
        // 300 of class 0, 100 of class 1: each class must contribute ~60% /
        // ~20% / rest independently.
        let labels: Vec<usize> = (0..400).map(|i| usize::from(i >= 300)).collect();
        let labeled: Vec<usize> = (0..400).collect();
        let s = stratified_split(&labels, &labeled, 0.6, 0.2, 11);
        let count = |set: &[usize], c: usize| set.iter().filter(|&&i| labels[i] == c).count();
        assert_eq!(count(&s.train, 0), 180);
        assert_eq!(count(&s.train, 1), 60);
        assert_eq!(count(&s.val, 0), 60);
        assert_eq!(count(&s.val, 1), 20);
        assert_eq!(count(&s.test, 0), 60);
        assert_eq!(count(&s.test, 1), 20);
    }

    #[test]
    fn stratified_split_only_uses_labeled_subset() {
        let labels: Vec<usize> = (0..50).map(|i| i % 2).collect();
        let labeled: Vec<usize> = (0..50).step_by(2).collect(); // evens only
        let s = stratified_split(&labels, &labeled, 0.5, 0.25, 3);
        for set in [&s.train, &s.val, &s.test] {
            for &i in set.iter() {
                assert_eq!(i % 2, 0, "node {i} is unlabeled but got split");
            }
        }
        let total = s.train.len() + s.val.len() + s.test.len();
        assert_eq!(total, labeled.len());
    }

    #[test]
    fn stratified_split_keeps_singleton_class_in_train() {
        let labels = vec![0, 0, 0, 0, 1];
        let labeled = vec![0, 1, 2, 3, 4];
        let s = stratified_split(&labels, &labeled, 0.5, 0.2, 9);
        assert!(s.train.contains(&4), "singleton class must land in train");
    }

    #[test]
    fn stratified_split_deterministic() {
        let labels: Vec<usize> = (0..120).map(|i| i % 3).collect();
        let labeled: Vec<usize> = (0..120).collect();
        let a = stratified_split(&labels, &labeled, 0.6, 0.2, 5);
        let b = stratified_split(&labels, &labeled, 0.6, 0.2, 5);
        assert_eq!(a.train, b.train);
        assert_eq!(a.val, b.val);
        assert_eq!(a.test, b.test);
    }
}
