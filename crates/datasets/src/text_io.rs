//! Plain-text loaders for **real** benchmark data.
//!
//! The repository ships deterministic synthetic stand-ins for the paper's
//! datasets (Table II), but a user who has the actual Planetoid/film files
//! can run the paper's exact graphs through this module. The accepted
//! formats are the common denominators of public graph releases:
//!
//! - **edge list** — one `u v` pair per line, whitespace-separated,
//!   `#`-prefixed comment lines ignored; node ids are arbitrary
//!   non-negative integers and are compacted to `0..n`;
//! - **features** — one node per line: `id v₁ v₂ … v_d` (dense), or the
//!   sparse `id idx:val …` form;
//! - **labels** — one `id label` pair per line; string labels are interned
//!   in first-appearance order.
//!
//! [`assemble`] stitches the three into a [`Dataset`] with a deterministic
//! stratified split, re-using the same id compaction across the files so
//! row `i` of the features is node `i` of the graph.

use crate::dataset::Dataset;
use crate::splits::stratified_split;
use gcon_graph::Graph;
use gcon_linalg::Mat;
use std::collections::HashMap;

/// Errors from the text loaders.
#[derive(Debug)]
pub enum TextError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line did not match the expected grammar; carries (line number,
    /// explanation).
    Parse(usize, String),
    /// The three files disagree (unknown node id, missing features, …).
    Inconsistent(String),
}

impl std::fmt::Display for TextError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TextError::Io(e) => write!(f, "io error: {e}"),
            TextError::Parse(line, what) => write!(f, "line {line}: {what}"),
            TextError::Inconsistent(what) => write!(f, "inconsistent inputs: {what}"),
        }
    }
}

impl std::error::Error for TextError {}

impl From<std::io::Error> for TextError {
    fn from(e: std::io::Error) -> Self {
        TextError::Io(e)
    }
}

/// Raw node-id vocabulary: maps external ids to compact `0..n` indices in
/// first-appearance order (deterministic for a fixed file).
#[derive(Debug, Default, Clone)]
pub struct NodeVocab {
    map: HashMap<u64, u32>,
}

impl NodeVocab {
    /// Interns an external id.
    pub fn intern(&mut self, ext: u64) -> u32 {
        let next = self.map.len() as u32;
        *self.map.entry(ext).or_insert(next)
    }

    /// Looks up an already-interned id.
    pub fn get(&self, ext: u64) -> Option<u32> {
        self.map.get(&ext).copied()
    }

    /// Number of distinct nodes seen.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no id has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Parses an edge list from a string. Returns the edges in compacted ids
/// plus the vocabulary. Self-loops and duplicate edges are dropped
/// (the paper's graphs are simple).
pub fn parse_edge_list(text: &str) -> Result<(Vec<(u32, u32)>, NodeVocab), TextError> {
    let mut vocab = NodeVocab::default();
    let mut edges = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let u: u64 = parts
            .next()
            .unwrap()
            .parse()
            .map_err(|_| TextError::Parse(lineno + 1, format!("bad node id in `{line}`")))?;
        let v: u64 = parts
            .next()
            .ok_or_else(|| TextError::Parse(lineno + 1, format!("need two ids in `{line}`")))?
            .parse()
            .map_err(|_| TextError::Parse(lineno + 1, format!("bad node id in `{line}`")))?;
        if parts.next().is_some() {
            return Err(TextError::Parse(lineno + 1, format!("trailing tokens in `{line}`")));
        }
        let cu = vocab.intern(u);
        let cv = vocab.intern(v);
        if cu != cv {
            edges.push((cu.min(cv), cu.max(cv)));
        }
    }
    edges.sort_unstable();
    edges.dedup();
    Ok((edges, vocab))
}

/// Parses a feature file against an existing vocabulary. Supports dense
/// (`id v …`) and sparse (`id idx:val …`) rows; rows for unknown ids are an
/// error, missing rows become zero vectors. Returns an `n × d` matrix.
pub fn parse_features(text: &str, vocab: &mut NodeVocab) -> Result<Mat, TextError> {
    struct Row {
        node: u32,
        dense: Vec<f64>,
        sparse: Vec<(usize, f64)>,
    }
    let mut rows: Vec<Row> = Vec::new();
    let mut dim = 0usize;
    let mut any_sparse = false;
    let mut any_dense = false;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let id: u64 = parts
            .next()
            .unwrap()
            .parse()
            .map_err(|_| TextError::Parse(lineno + 1, format!("bad node id in `{line}`")))?;
        let node = vocab.intern(id);
        let mut dense = Vec::new();
        let mut sparse = Vec::new();
        for tok in parts {
            if let Some((i, v)) = tok.split_once(':') {
                let idx: usize = i.parse().map_err(|_| {
                    TextError::Parse(lineno + 1, format!("bad sparse index `{tok}`"))
                })?;
                let val: f64 = v.parse().map_err(|_| {
                    TextError::Parse(lineno + 1, format!("bad sparse value `{tok}`"))
                })?;
                sparse.push((idx, val));
                dim = dim.max(idx + 1);
                any_sparse = true;
            } else {
                let val: f64 = tok.parse().map_err(|_| {
                    TextError::Parse(lineno + 1, format!("bad feature value `{tok}`"))
                })?;
                dense.push(val);
                any_dense = true;
            }
        }
        if !dense.is_empty() {
            dim = dim.max(dense.len());
        }
        rows.push(Row { node, dense, sparse });
    }
    if any_sparse && any_dense {
        return Err(TextError::Inconsistent("feature file mixes dense and sparse rows".into()));
    }
    for r in &rows {
        if !r.dense.is_empty() && r.dense.len() != dim {
            return Err(TextError::Inconsistent(format!(
                "dense feature rows have inconsistent widths ({} vs {dim})",
                r.dense.len()
            )));
        }
    }
    let n = vocab.len();
    let mut x = Mat::zeros(n, dim);
    for r in rows {
        let out = x.row_mut(r.node as usize);
        for (j, &v) in r.dense.iter().enumerate() {
            out[j] = v;
        }
        for &(j, v) in &r.sparse {
            out[j] = v;
        }
    }
    Ok(x)
}

/// Parses a label file against an existing vocabulary. String labels are
/// interned in first-appearance order. Returns `(labels per node, c)`;
/// unlabeled nodes get class 0 (they should not be placed in train/test
/// splits by the caller — [`assemble`] only splits labeled nodes).
pub fn parse_labels(
    text: &str,
    vocab: &mut NodeVocab,
) -> Result<(Vec<usize>, usize, Vec<u32>), TextError> {
    let mut class_vocab: HashMap<String, usize> = HashMap::new();
    let mut pairs: Vec<(u32, usize)> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let id: u64 = parts
            .next()
            .unwrap()
            .parse()
            .map_err(|_| TextError::Parse(lineno + 1, format!("bad node id in `{line}`")))?;
        let label = parts
            .next()
            .ok_or_else(|| TextError::Parse(lineno + 1, format!("need `id label` in `{line}`")))?;
        if parts.next().is_some() {
            return Err(TextError::Parse(lineno + 1, format!("trailing tokens in `{line}`")));
        }
        let next = class_vocab.len();
        let cls = *class_vocab.entry(label.to_string()).or_insert(next);
        pairs.push((vocab.intern(id), cls));
    }
    let n = vocab.len();
    let mut labels = vec![0usize; n];
    let mut labeled: Vec<u32> = Vec::with_capacity(pairs.len());
    for (node, cls) in pairs {
        labels[node as usize] = cls;
        labeled.push(node);
    }
    labeled.sort_unstable();
    labeled.dedup();
    Ok((labels, class_vocab.len().max(1), labeled))
}

/// Assembles a [`Dataset`] from the three text blobs, with a deterministic
/// stratified split over the labeled nodes (`train_frac`/`val_frac`, rest
/// test).
pub fn assemble(
    name: &str,
    edge_text: &str,
    feature_text: &str,
    label_text: &str,
    train_frac: f64,
    val_frac: f64,
    seed: u64,
) -> Result<Dataset, TextError> {
    let (edges, mut vocab) = parse_edge_list(edge_text)?;
    let x = parse_features(feature_text, &mut vocab)?;
    let (labels, num_classes, labeled) = parse_labels(label_text, &mut vocab)?;
    let n = vocab.len();
    if x.rows() != n {
        // parse_features sized the matrix before the label file introduced
        // new ids: re-pad.
        let mut padded = Mat::zeros(n, x.cols());
        for i in 0..x.rows() {
            padded.row_mut(i).copy_from_slice(x.row(i));
        }
        return assemble_inner(
            name,
            n,
            edges,
            padded,
            labels,
            num_classes,
            &labeled,
            train_frac,
            val_frac,
            seed,
        );
    }
    assemble_inner(name, n, edges, x, labels, num_classes, &labeled, train_frac, val_frac, seed)
}

#[allow(clippy::too_many_arguments)] // internal seam, mirrors assemble()'s inputs
fn assemble_inner(
    name: &str,
    n: usize,
    edges: Vec<(u32, u32)>,
    x: Mat,
    labels: Vec<usize>,
    num_classes: usize,
    labeled: &[u32],
    train_frac: f64,
    val_frac: f64,
    seed: u64,
) -> Result<Dataset, TextError> {
    if n == 0 {
        return Err(TextError::Inconsistent("no nodes in input".into()));
    }
    let graph = Graph::from_edges(n, &edges);
    let labeled_idx: Vec<usize> = labeled.iter().map(|&v| v as usize).collect();
    let split = stratified_split(&labels, &labeled_idx, train_frac, val_frac, seed);
    Ok(Dataset { name: name.to_string(), graph, features: x, labels, num_classes, split })
}

/// Loads the three files from disk and assembles the dataset.
pub fn load_from_files(
    name: &str,
    edges: &std::path::Path,
    features: &std::path::Path,
    labels: &std::path::Path,
    train_frac: f64,
    val_frac: f64,
    seed: u64,
) -> Result<Dataset, TextError> {
    let e = std::fs::read_to_string(edges)?;
    let f = std::fs::read_to_string(features)?;
    let l = std::fs::read_to_string(labels)?;
    assemble(name, &e, &f, &l, train_frac, val_frac, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EDGES: &str = "# a comment\n10 20\n20 30\n10 30\n30 30\n10 20\n";
    const FEATS_DENSE: &str = "10 1.0 0.0\n20 0.5 0.5\n30 0.0 1.0\n";
    const FEATS_SPARSE: &str = "10 0:1.0\n20 0:0.5 1:0.5\n30 1:1.0\n";
    const LABELS: &str = "10 cat\n20 dog\n30 cat\n";

    #[test]
    fn edge_list_compacts_dedups_and_drops_loops() {
        let (edges, vocab) = parse_edge_list(EDGES).unwrap();
        assert_eq!(vocab.len(), 3);
        // 10→0, 20→1, 30→2 in first-appearance order; loop 30-30 dropped,
        // duplicate 10-20 dropped.
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn edge_list_rejects_garbage() {
        assert!(matches!(parse_edge_list("1 two\n"), Err(TextError::Parse(1, _))));
        assert!(matches!(parse_edge_list("1\n"), Err(TextError::Parse(1, _))));
        assert!(matches!(parse_edge_list("1 2 3\n"), Err(TextError::Parse(1, _))));
    }

    #[test]
    fn dense_and_sparse_features_agree() {
        let (_, mut v1) = parse_edge_list(EDGES).unwrap();
        let (_, mut v2) = parse_edge_list(EDGES).unwrap();
        let d = parse_features(FEATS_DENSE, &mut v1).unwrap();
        let s = parse_features(FEATS_SPARSE, &mut v2).unwrap();
        assert_eq!(d.shape(), (3, 2));
        assert_eq!(d.as_slice(), s.as_slice());
    }

    #[test]
    fn mixed_feature_grammars_rejected() {
        let mut v = NodeVocab::default();
        let r = parse_features("1 0:1.0\n2 0.5 0.5\n", &mut v);
        assert!(matches!(r, Err(TextError::Inconsistent(_))));
    }

    #[test]
    fn ragged_dense_rows_rejected() {
        let mut v = NodeVocab::default();
        let r = parse_features("1 1.0 2.0\n2 1.0\n", &mut v);
        assert!(matches!(r, Err(TextError::Inconsistent(_))));
    }

    #[test]
    fn labels_interned_in_first_appearance_order() {
        let (_, mut vocab) = parse_edge_list(EDGES).unwrap();
        let (labels, c, labeled) = parse_labels(LABELS, &mut vocab).unwrap();
        assert_eq!(c, 2);
        assert_eq!(labels, vec![0, 1, 0]); // cat=0, dog=1
        assert_eq!(labeled, vec![0, 1, 2]);
    }

    #[test]
    fn assemble_builds_a_consistent_dataset() {
        let d = assemble("toy", EDGES, FEATS_DENSE, LABELS, 0.34, 0.33, 7).unwrap();
        assert_eq!(d.num_nodes(), 3);
        assert_eq!(d.graph.num_edges(), 3);
        assert_eq!(d.num_classes, 2);
        assert_eq!(d.features.shape(), (3, 2));
        // Every labeled node appears in exactly one split bucket.
        let mut all: Vec<usize> =
            d.split.train.iter().chain(&d.split.val).chain(&d.split.test).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), d.split.train.len() + d.split.val.len() + d.split.test.len());
    }

    #[test]
    fn assemble_handles_feature_less_nodes() {
        // Node 40 appears only in the label file: gets a zero feature row.
        let labels = "10 cat\n20 dog\n30 cat\n40 dog\n";
        let d = assemble("toy", EDGES, FEATS_DENSE, labels, 0.5, 0.25, 3).unwrap();
        assert_eq!(d.num_nodes(), 4);
        assert!(d.features.row(3).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("gcon_text_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let e = dir.join("edges.txt");
        let f = dir.join("feats.txt");
        let l = dir.join("labels.txt");
        std::fs::write(&e, EDGES).unwrap();
        std::fs::write(&f, FEATS_SPARSE).unwrap();
        std::fs::write(&l, LABELS).unwrap();
        let d = load_from_files("disk-toy", &e, &f, &l, 0.34, 0.33, 1).unwrap();
        assert_eq!(d.name, "disk-toy");
        assert_eq!(d.num_nodes(), 3);
        for p in [e, f, l] {
            std::fs::remove_file(p).unwrap();
        }
    }

    #[test]
    fn empty_input_rejected() {
        assert!(matches!(assemble("x", "", "", "", 0.5, 0.2, 0), Err(TextError::Inconsistent(_))));
    }
}
