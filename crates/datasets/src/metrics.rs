//! Evaluation metrics. The paper reports micro-averaged F1 (Sec. VI-A),
//! which for single-label multi-class prediction equals plain accuracy; we
//! implement the general micro/macro definitions anyway and test the
//! equivalence.

/// Micro-averaged F1 over predictions and gold labels.
///
/// Micro-F1 pools per-class TP/FP/FN; for single-label classification every
/// misprediction contributes exactly one FP and one FN, so micro-F1 equals
/// accuracy.
pub fn micro_f1(pred: &[usize], gold: &[usize]) -> f64 {
    assert_eq!(pred.len(), gold.len(), "micro_f1: length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    let tp = pred.iter().zip(gold).filter(|(p, g)| p == g).count() as f64;
    let fp = pred.len() as f64 - tp;
    let fnn = fp; // single-label: FP count equals FN count
    2.0 * tp / (2.0 * tp + fp + fnn)
}

/// Macro-averaged F1: unweighted mean of the per-class F1 scores over the
/// classes present in `gold` or `pred`.
pub fn macro_f1(pred: &[usize], gold: &[usize], num_classes: usize) -> f64 {
    assert_eq!(pred.len(), gold.len(), "macro_f1: length mismatch");
    if pred.is_empty() || num_classes == 0 {
        return 0.0;
    }
    let mut tp = vec![0.0; num_classes];
    let mut fp = vec![0.0; num_classes];
    let mut fnn = vec![0.0; num_classes];
    for (&p, &g) in pred.iter().zip(gold) {
        if p == g {
            tp[p] += 1.0;
        } else {
            fp[p] += 1.0;
            fnn[g] += 1.0;
        }
    }
    let mut total = 0.0;
    let mut count = 0usize;
    for k in 0..num_classes {
        let denom = 2.0 * tp[k] + fp[k] + fnn[k];
        if denom > 0.0 {
            total += 2.0 * tp[k] / denom;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Plain accuracy.
pub fn accuracy(pred: &[usize], gold: &[usize]) -> f64 {
    assert_eq!(pred.len(), gold.len(), "accuracy: length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    pred.iter().zip(gold).filter(|(p, g)| p == g).count() as f64 / pred.len() as f64
}

/// Row-major confusion matrix: `counts[g][p]` counts gold class `g`
/// predicted as `p`.
pub fn confusion_matrix(pred: &[usize], gold: &[usize], num_classes: usize) -> Vec<Vec<usize>> {
    assert_eq!(pred.len(), gold.len(), "confusion_matrix: length mismatch");
    let mut counts = vec![vec![0usize; num_classes]; num_classes];
    for (&p, &g) in pred.iter().zip(gold) {
        assert!(p < num_classes && g < num_classes, "confusion_matrix: class out of range");
        counts[g][p] += 1;
    }
    counts
}

/// Per-class precision / recall / F1, for error analysis in the examples
/// and the harness (the paper reports only micro-F1; this is diagnostics).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassReport {
    /// TP / (TP + FP); 0 when the class is never predicted.
    pub precision: f64,
    /// TP / (TP + FN); 0 when the class never occurs in gold.
    pub recall: f64,
    /// Harmonic mean of precision and recall (0 when both are 0).
    pub f1: f64,
    /// Number of gold instances of the class.
    pub support: usize,
}

/// Computes a [`ClassReport`] per class from predictions and gold labels.
pub fn per_class_report(pred: &[usize], gold: &[usize], num_classes: usize) -> Vec<ClassReport> {
    let cm = confusion_matrix(pred, gold, num_classes);
    (0..num_classes)
        .map(|k| {
            let tp = cm[k][k] as f64;
            let fp: f64 = (0..num_classes).filter(|&g| g != k).map(|g| cm[g][k] as f64).sum();
            let fnn: f64 = (0..num_classes).filter(|&p| p != k).map(|p| cm[k][p] as f64).sum();
            let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
            let recall = if tp + fnn > 0.0 { tp / (tp + fnn) } else { 0.0 };
            let f1 = if precision + recall > 0.0 {
                2.0 * precision * recall / (precision + recall)
            } else {
                0.0
            };
            ClassReport { precision, recall, f1, support: (tp + fnn) as usize }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_f1_equals_accuracy_single_label() {
        let pred = [0, 1, 2, 1, 0, 2, 2];
        let gold = [0, 1, 1, 1, 2, 2, 0];
        assert!((micro_f1(&pred, &gold) - accuracy(&pred, &gold)).abs() < 1e-12);
    }

    #[test]
    fn perfect_and_worst_cases() {
        let gold = [0, 1, 2];
        assert_eq!(micro_f1(&gold, &gold), 1.0);
        assert_eq!(macro_f1(&gold, &gold, 3), 1.0);
        let wrong = [1, 2, 0];
        assert_eq!(micro_f1(&wrong, &gold), 0.0);
        assert_eq!(macro_f1(&wrong, &gold, 3), 0.0);
    }

    #[test]
    fn macro_f1_penalizes_minority_class_errors_more() {
        // 9 of class 0 correct, 1 of class 1 wrong.
        let gold: Vec<usize> = (0..10).map(|i| usize::from(i == 9)).collect();
        let pred = vec![0usize; 10];
        let micro = micro_f1(&pred, &gold);
        let mac = macro_f1(&pred, &gold, 2);
        assert!(mac < micro, "macro {mac} should be below micro {micro}");
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(micro_f1(&[], &[]), 0.0);
        assert_eq!(macro_f1(&[], &[], 3), 0.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn confusion_matrix_counts_cells() {
        let gold = [0, 0, 1, 1, 2];
        let pred = [0, 1, 1, 1, 0];
        let cm = confusion_matrix(&pred, &gold, 3);
        assert_eq!(cm[0][0], 1); // gold 0 → pred 0
        assert_eq!(cm[0][1], 1); // gold 0 → pred 1
        assert_eq!(cm[1][1], 2);
        assert_eq!(cm[2][0], 1);
        assert_eq!(cm[2][2], 0);
        let total: usize = cm.iter().flatten().sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn per_class_report_matches_manual() {
        // class 0: TP=1, FP=1 (the gold-2 one), FN=1 → P=R=0.5, F1=0.5
        let gold = [0, 0, 1, 1, 2];
        let pred = [0, 1, 1, 1, 0];
        let rep = per_class_report(&pred, &gold, 3);
        assert!((rep[0].precision - 0.5).abs() < 1e-12);
        assert!((rep[0].recall - 0.5).abs() < 1e-12);
        assert!((rep[0].f1 - 0.5).abs() < 1e-12);
        assert_eq!(rep[0].support, 2);
        // class 2 never predicted correctly: everything 0.
        assert_eq!(rep[2].precision, 0.0);
        assert_eq!(rep[2].recall, 0.0);
        assert_eq!(rep[2].f1, 0.0);
        assert_eq!(rep[2].support, 1);
    }

    #[test]
    fn per_class_f1_averages_to_macro() {
        let gold = [0, 1, 2, 0, 1, 2, 0];
        let pred = [0, 1, 1, 0, 2, 2, 1];
        let rep = per_class_report(&pred, &gold, 3);
        let mean: f64 = rep.iter().map(|r| r.f1).sum::<f64>() / 3.0;
        // macro_f1 averages only classes with nonzero denominator; all three
        // classes appear here, so the two must agree.
        assert!((mean - macro_f1(&pred, &gold, 3)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "class out of range")]
    fn confusion_matrix_rejects_bad_class() {
        confusion_matrix(&[5], &[0], 3);
    }
}
