//! Row/column reductions used by normalization and by the Lemma 1 invariant
//! checks (row sums of propagation matrices equal 1; column sums are bounded
//! by node degree).

use crate::Mat;

/// Sum of each row.
pub fn row_sums(m: &Mat) -> Vec<f64> {
    m.rows_iter().map(|r| r.iter().sum()).collect()
}

/// Sum of each column.
pub fn col_sums(m: &Mat) -> Vec<f64> {
    let mut out = Vec::new();
    col_sums_into(m, &mut out);
    out
}

/// Sum of each column written into `out` (resized, allocation reused).
pub fn col_sums_into(m: &Mat, out: &mut Vec<f64>) {
    out.clear();
    out.resize(m.cols(), 0.0);
    for row in m.rows_iter() {
        for (o, &v) in out.iter_mut().zip(row) {
            *o += v;
        }
    }
}

/// L2 norm of each row.
pub fn row_norms2(m: &Mat) -> Vec<f64> {
    m.rows_iter().map(crate::vecops::norm2).collect()
}

/// Mean of each column.
pub fn col_means(m: &Mat) -> Vec<f64> {
    let mut s = col_sums(m);
    let n = m.rows().max(1) as f64;
    for v in &mut s {
        *v /= n;
    }
    s
}

/// Per-row argmax — the hard prediction of a logit/score matrix. Generic
/// over the dtype (f32 → f64 widening is monotone, so an f32 logits matrix
/// yields the same predictions as its widened copy).
pub fn row_argmax<S: crate::Scalar>(m: &Mat<S>) -> Vec<usize> {
    m.rows_iter().map(crate::vecops::argmax).collect()
}

/// Σ over rows of ‖a_i − b_i‖₂: the ψ(·) sensitivity metric of Definition 3
/// in the paper, evaluated between two concrete matrices.
pub fn psi_row_distance(a: &Mat, b: &Mat) -> f64 {
    assert_eq!(a.shape(), b.shape(), "psi_row_distance: shape mismatch");
    (0..a.rows()).map(|i| crate::vecops::dist2(a.row(i), b.row(i))).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_and_col_sums() {
        let m = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(row_sums(&m), vec![3.0, 7.0]);
        assert_eq!(col_sums(&m), vec![4.0, 6.0]);
    }

    #[test]
    fn row_norms() {
        let m = Mat::from_rows(&[&[3.0, 4.0], &[0.0, 0.0]]);
        assert_eq!(row_norms2(&m), vec![5.0, 0.0]);
    }

    #[test]
    fn col_means_divide() {
        let m = Mat::from_rows(&[&[1.0], &[3.0]]);
        assert_eq!(col_means(&m), vec![2.0]);
    }

    #[test]
    fn row_argmax_positions() {
        let m = Mat::from_rows(&[&[0.1, 0.9], &[0.8, 0.2]]);
        assert_eq!(row_argmax(&m), vec![1, 0]);
    }

    #[test]
    fn psi_distance_zero_for_identical() {
        let m = Mat::from_fn(4, 3, |i, j| (i + j) as f64);
        assert_eq!(psi_row_distance(&m, &m), 0.0);
    }

    #[test]
    fn psi_distance_sums_row_norms() {
        let a = Mat::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]);
        let b = Mat::from_rows(&[&[3.0, 4.0], &[1.0, 1.0]]);
        assert_eq!(psi_row_distance(&a, &b), 5.0);
    }
}
