//! The dense row-major matrix type.

use crate::scalar::Scalar;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense row-major `rows × cols` matrix, generic over the element
/// [`Scalar`] (default `f64`, so `Mat` written without a parameter is the
/// double-precision matrix the rest of the workspace trains with; `Mat<f32>`
/// is the half-width serving-store variant).
///
/// Row-major layout means `self.row(i)` is a contiguous `&[S]`, which is the
/// access pattern used by graph convolution (`Z[i] = Σ_j Ã_ij X[j]`), loss
/// evaluation (per-node dot products `z_iᵀ θ_j`), and the noise/regularizer
/// terms of the perturbed objective (Eq. 13 of the paper).
///
/// The random constructors ([`Mat::uniform`], [`Mat::gaussian`]) always
/// sample in `f64` and narrow via [`Scalar::from_f64`], so a seeded RNG
/// produces the same stream regardless of the element type.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Mat<S: Scalar = f64> {
    rows: usize,
    cols: usize,
    data: Vec<S>,
}

impl<S: Scalar> Mat<S> {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![S::ZERO; rows * cols] }
    }

    /// Creates a matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: S) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, S::ONE);
        }
        m
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<S>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Mat::from_vec: data length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(i, j)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> S) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Builds a matrix from nested row slices (test convenience).
    pub fn from_rows(rows: &[&[S]]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "Mat::from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// Fills a matrix with i.i.d. samples from `U(-scale, scale)`, sampled
    /// in `f64` (identical RNG stream for every element type).
    pub fn uniform<R: Rng + ?Sized>(rows: usize, cols: usize, scale: f64, rng: &mut R) -> Self {
        let data = (0..rows * cols).map(|_| S::from_f64(rng.gen_range(-scale..scale))).collect();
        Self { rows, cols, data }
    }

    /// Fills a matrix with i.i.d. standard-normal samples scaled by `std`,
    /// sampled in `f64` (identical RNG stream for every element type).
    pub fn gaussian<R: Rng + ?Sized>(rows: usize, cols: usize, std: f64, rng: &mut R) -> Self {
        let data = (0..rows * cols)
            .map(|_| S::from_f64(crate::vecops::sample_std_normal(rng) * std))
            .collect();
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> S {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Mutable element access.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: S) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Adds `v` to element `(i, j)`.
    #[inline]
    pub fn add_at(&mut self, i: usize, j: usize, v: S) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] += v;
    }

    /// Row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[S] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [S] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Column `j` copied into a new vector (columns are strided).
    pub fn col(&self, j: usize) -> Vec<S> {
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// The flat row-major backing slice.
    #[inline]
    pub fn as_slice(&self) -> &[S] {
        &self.data
    }

    /// The flat row-major backing slice, mutable.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [S] {
        &mut self.data
    }

    /// Consumes the matrix, returning the backing vector.
    pub fn into_vec(self) -> Vec<S> {
        self.data
    }

    /// Reshapes to `rows × cols` and zero-fills, reusing the backing
    /// allocation whenever its capacity suffices. This is the entry point of
    /// every `_into` kernel: an output buffer threaded through a training
    /// loop reaches its steady-state capacity once and is never reallocated
    /// again.
    pub fn reset_to_zeros(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, S::ZERO);
    }

    /// Makes `self` an element-wise copy of `src` (shape included), reusing
    /// the backing allocation whenever its capacity suffices.
    pub fn copy_from(&mut self, src: &Mat<S>) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Element-wise conversion to another [`Scalar`] (through `f64`, so
    /// `f64 → f32` rounds to nearest once and `f32 → f64` is exact). The
    /// one-time down-conversion behind `gcon-serve`'s f32 feature store.
    pub fn convert<T: Scalar>(&self) -> Mat<T> {
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| T::from_f64(v.to_f64())).collect(),
        }
    }

    /// Iterator over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[S]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(S) -> S) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Returns a new matrix with `f` applied element-wise.
    pub fn map(&self, f: impl Fn(S) -> S) -> Self {
        let mut out = self.clone();
        out.map_inplace(f);
        out
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            let row = self.row(i);
            for (j, &v) in row.iter().enumerate() {
                out.data[j * self.rows + i] = v;
            }
        }
        out
    }

    /// Extracts the sub-matrix consisting of the given rows, in order.
    pub fn select_rows(&self, indices: &[usize]) -> Self {
        let mut out = Self::default();
        self.select_rows_into(indices, &mut out);
        out
    }

    /// [`Mat::select_rows`] written into `out` (reshaped, buffer reused).
    pub fn select_rows_into(&self, indices: &[usize], out: &mut Self) {
        out.reset_to_zeros(indices.len(), self.cols);
        for (r, &i) in indices.iter().enumerate() {
            out.row_mut(r).copy_from_slice(self.row(i));
        }
    }

    /// Copies `src` into the column block `[col_offset, col_offset + src.cols())`
    /// of `self` (same row count). The block-write primitive behind
    /// single-pass multi-scale propagation: each scale is snapshotted into
    /// its slot of the concatenated output without intermediate matrices.
    pub fn copy_into_columns(&mut self, col_offset: usize, src: &Mat<S>) {
        assert_eq!(self.rows, src.rows, "copy_into_columns: row mismatch");
        assert!(
            col_offset + src.cols <= self.cols,
            "copy_into_columns: block [{}, {}) exceeds {} columns",
            col_offset,
            col_offset + src.cols,
            self.cols
        );
        for i in 0..self.rows {
            let dst = &mut self.row_mut(i)[col_offset..col_offset + src.cols];
            dst.copy_from_slice(src.row(i));
        }
    }

    /// Horizontally concatenates `self` and `other` (same row count).
    pub fn hcat(&self, other: &Mat<S>) -> Self {
        assert_eq!(self.rows, other.rows, "hcat: row mismatch");
        let cols = self.cols + other.cols;
        let mut out = Self::zeros(self.rows, cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(other.row(i));
        }
        out
    }

    /// Horizontally concatenates a list of matrices with identical row counts.
    pub fn hcat_all(parts: &[&Mat<S>]) -> Self {
        assert!(!parts.is_empty(), "hcat_all: empty input");
        let rows = parts[0].rows;
        let cols: usize = parts.iter().map(|m| m.cols).sum();
        let mut out = Self::zeros(rows, cols);
        for i in 0..rows {
            let mut off = 0;
            for m in parts {
                assert_eq!(m.rows, rows, "hcat_all: row mismatch");
                out.row_mut(i)[off..off + m.cols].copy_from_slice(m.row(i));
                off += m.cols;
            }
        }
        out
    }

    /// Frobenius norm `‖M‖_F`, accumulated in the element dtype.
    pub fn frobenius_norm(&self) -> S {
        self.frobenius_norm_sq().sqrt()
    }

    /// Squared Frobenius norm, accumulated in the element dtype.
    pub fn frobenius_norm_sq(&self) -> S {
        self.data.iter().fold(S::ZERO, |acc, &v| acc + v * v)
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> S {
        self.data.iter().fold(S::ZERO, |acc, &v| if v.abs() > acc { v.abs() } else { acc })
    }

    /// True when every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Normalizes each row to unit L2 norm; rows with zero norm are left
    /// untouched. This is the pre-propagation normalization of Sec. IV-C3.
    pub fn normalize_rows_l2(&mut self) {
        for i in 0..self.rows {
            let row = self.row_mut(i);
            let norm = row.iter().fold(S::ZERO, |acc, &v| acc + v * v).sqrt();
            if norm > S::ZERO {
                for v in row.iter_mut() {
                    *v /= norm;
                }
            }
        }
    }
}

impl<S: Scalar> Default for Mat<S> {
    /// The empty `0 × 0` matrix — the canonical starting state of a
    /// reusable buffer (every `_into` kernel reshapes it on first use).
    fn default() -> Self {
        Self::zeros(0, 0)
    }
}

impl<S: Scalar> fmt::Debug for Mat<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat<{}> {}x{} [", S::DTYPE, self.rows, self.cols)?;
        let show = self.rows.min(6);
        for i in 0..show {
            let row = self.row(i);
            let cells: Vec<String> = row.iter().take(8).map(|v| format!("{v:.4}")).collect();
            writeln!(f, "  [{}{}]", cells.join(", "), if self.cols > 8 { ", …" } else { "" })?;
        }
        if self.rows > show {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_shape() {
        let m: Mat = Mat::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn eye_diagonal() {
        let m: Mat = Mat::eye(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m.get(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_vec_roundtrip() {
        let m = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(1, 0), 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_bad_len_panics() {
        let _ = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Mat::from_fn(3, 5, |i, j| (i * 10 + j) as f64);
        let t = m.transpose();
        assert_eq!(t.shape(), (5, 3));
        assert_eq!(t.get(4, 2), m.get(2, 4));
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn hcat_shapes_and_values() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[5.0], &[6.0]]);
        let c = a.hcat(&b);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(0), &[1.0, 2.0, 5.0]);
        assert_eq!(c.row(1), &[3.0, 4.0, 6.0]);
    }

    #[test]
    fn hcat_all_three_parts() {
        let a = Mat::from_rows(&[&[1.0], &[2.0]]);
        let b = Mat::from_rows(&[&[3.0], &[4.0]]);
        let c = Mat::from_rows(&[&[5.0], &[6.0]]);
        let m = Mat::hcat_all(&[&a, &b, &c]);
        assert_eq!(m.row(0), &[1.0, 3.0, 5.0]);
        assert_eq!(m.row(1), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn select_rows_orders() {
        let m = Mat::from_fn(4, 2, |i, j| (i * 2 + j) as f64);
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.row(0), m.row(2));
        assert_eq!(s.row(1), m.row(0));
    }

    #[test]
    fn normalize_rows_unit_norm() {
        let mut m = Mat::from_rows(&[&[3.0, 4.0], &[0.0, 0.0], &[1.0, 0.0]]);
        m.normalize_rows_l2();
        assert!((m.row(0)[0] - 0.6).abs() < 1e-12);
        assert!((m.row(0)[1] - 0.8).abs() < 1e-12);
        assert_eq!(m.row(1), &[0.0, 0.0]); // zero row untouched
        assert_eq!(m.row(2), &[1.0, 0.0]);
    }

    #[test]
    fn frobenius_norm_matches_manual() {
        let m = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!((m.frobenius_norm() - 25.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn gaussian_matrix_is_seeded_deterministic() {
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let a: Mat = Mat::gaussian(5, 5, 1.0, &mut r1);
        let b: Mat = Mat::gaussian(5, 5, 1.0, &mut r2);
        assert_eq!(a, b);
    }

    /// The random constructors consume the RNG identically for both dtypes,
    /// and the f32 matrix is the rounded f64 one.
    #[test]
    fn random_constructors_share_one_rng_stream_across_dtypes() {
        let mut r1 = StdRng::seed_from_u64(11);
        let mut r2 = StdRng::seed_from_u64(11);
        let a64: Mat<f64> = Mat::uniform(4, 3, 1.0, &mut r1);
        let a32: Mat<f32> = Mat::uniform(4, 3, 1.0, &mut r2);
        assert_eq!(a32, a64.convert::<f32>());
        // The streams stay in lockstep after the first draw.
        let b64: Mat<f64> = Mat::gaussian(2, 2, 0.5, &mut r1);
        let b32: Mat<f32> = Mat::gaussian(2, 2, 0.5, &mut r2);
        assert_eq!(b32, b64.convert::<f32>());
    }

    #[test]
    fn convert_roundtrip_exact_from_f32() {
        let m32: Mat<f32> = Mat::from_fn(3, 3, |i, j| (i as f32 + 0.5) * (j as f32 - 1.25));
        let up = m32.convert::<f64>();
        assert_eq!(up.convert::<f32>(), m32);
        assert_eq!(up.shape(), m32.shape());
    }

    #[test]
    fn f32_mat_basic_ops() {
        let mut m: Mat<f32> = Mat::from_rows(&[&[3.0, 4.0], &[0.0, 0.0]]);
        m.normalize_rows_l2();
        assert!((m.get(0, 0) - 0.6).abs() < 1e-6);
        assert!(m.is_finite());
        assert_eq!(Mat::<f32>::eye(2).get(1, 1), 1.0);
        assert!((Mat::<f32>::from_rows(&[&[3.0, 4.0]]).frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn map_and_map_inplace_agree() {
        let m = Mat::from_fn(3, 3, |i, j| (i + j) as f64);
        let doubled = m.map(|v| v * 2.0);
        let mut m2 = m.clone();
        m2.map_inplace(|v| v * 2.0);
        assert_eq!(doubled, m2);
    }

    #[test]
    fn col_extraction() {
        let m = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(m.col(1), vec![2.0, 4.0, 6.0]);
    }
}
