#![warn(missing_docs)]
//! Dense linear-algebra substrate for the GCON reproduction.
//!
//! Every other crate in the workspace builds on the row-major [`Mat`] type and
//! the free-function vector kernels in [`vecops`]. No external linear-algebra
//! dependency is used: the paper's pipeline only needs dense GEMM-like
//! products, row-wise normalization, and norms, all of which are implemented
//! here with cache-friendly loops and scoped-thread parallelism.
//!
//! Design notes
//! - `f64` throughout: the differential-privacy parameter chain of the paper
//!   (Theorem 1, Eq. 17–24) is numerically delicate.
//! - Matrices are row-major so that "a row = a node's feature vector" is a
//!   contiguous slice, which is the dominant access pattern in graph
//!   convolution.

pub mod eigen;
pub mod lu;
pub mod mat;
pub mod ops;
pub mod reduce;
pub mod solve;
pub mod vecops;

pub use mat::Mat;

/// Absolute tolerance used by the test suites across the workspace when
/// comparing floating-point kernels against naive reference implementations.
pub const TEST_TOL: f64 = 1e-9;

/// Returns true when `a` and `b` are within `tol` of each other, treating
/// NaN as never close.
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}
