#![warn(missing_docs)]
//! Dense linear-algebra substrate for the GCON reproduction.
//!
//! Every other crate in the workspace builds on the row-major [`Mat`] type and
//! the free-function vector kernels in [`vecops`]. No external linear-algebra
//! dependency is used: the paper's pipeline only needs dense GEMM-like
//! products, row-wise normalization, and norms, all of which are implemented
//! here as cache-blocked, register-tiled loops on the shared `gcon-runtime`
//! worker pool.
//!
//! Design notes
//! - `f64` throughout: the differential-privacy parameter chain of the paper
//!   (Theorem 1, Eq. 17–24) is numerically delicate.
//! - Matrices are row-major so that "a row = a node's feature vector" is a
//!   contiguous slice, which is the dominant access pattern in graph
//!   convolution.
//!
//! # Kernel tiling parameters
//!
//! The GEMM family in [`ops`] is written so stable-Rust LLVM autovectorizes
//! it (no intrinsics; on x86-64 an AVX2 build of the same source is selected
//! by runtime feature detection). The tile constants are exported:
//! [`ops::MR`]` × `[`ops::NR`] register tiles (4×8 accumulators per
//! microkernel pass) over a packed `K×NR` panel of `B`, and
//! [`ops::TM_IB`]-sample reduction blocks in the `AᵀB` gradient kernel. The
//! reduction kernels in [`vecops`] use [`vecops::LANES`] independent lane
//! accumulators.
//!
//! # Determinism and tolerance policy
//!
//! Tiled accumulation reassociates floating-point sums, so the kernels are
//! **not** bit-identical to a naive sequential loop — equivalence tests
//! compare against naive references at 1e-9 *relative* tolerance
//! (`tests/kernel_properties.rs`). They **are** bit-identical across
//! `GCON_THREADS` settings: the pool partitions output rows only, and every
//! code path accumulates a given output element in the same fixed order
//! regardless of where thread or tile boundaries fall
//! (`tests/runtime_equivalence.rs` pins this by re-running the kernels in
//! subprocesses at widths 1/2/4 and comparing raw result bytes).

pub mod eigen;
pub mod lu;
pub mod mat;
pub mod ops;
pub mod reduce;
pub mod solve;
pub mod vecops;

pub use mat::Mat;

/// Absolute tolerance used by the test suites across the workspace when
/// comparing floating-point kernels against naive reference implementations.
pub const TEST_TOL: f64 = 1e-9;

/// Returns true when `a` and `b` are within `tol` of each other, treating
/// NaN as never close.
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}
