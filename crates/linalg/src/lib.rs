#![deny(missing_docs)]
//! Dense linear-algebra substrate for the GCON reproduction.
//!
//! Every other crate in the workspace builds on the row-major [`Mat`] type and
//! the free-function vector kernels in [`vecops`]. No external linear-algebra
//! dependency is used: the paper's pipeline only needs dense GEMM-like
//! products, row-wise normalization, and norms, all of which are implemented
//! here as cache-blocked, register-tiled loops on the shared `gcon-runtime`
//! worker pool.
//!
//! Design notes
//! - Generic over the element dtype via the sealed [`Scalar`] trait (`f64` +
//!   `f32`), with `f64` as the default type parameter everywhere — `Mat`
//!   written without a parameter *is* the f64 matrix. Training and the
//!   differential-privacy parameter chain of the paper (Theorem 1,
//!   Eq. 17–24) stay f64 (numerically delicate); `f32` exists for the
//!   serving-store path, where halving the element width doubles the usable
//!   SIMD lanes and halves the memory footprint. See [`scalar`] for the
//!   full precision policy.
//! - Matrices are row-major so that "a row = a node's feature vector" is a
//!   contiguous slice, which is the dominant access pattern in graph
//!   convolution.
//!
//! # Kernel tiling parameters and dispatch tiers
//!
//! The GEMM family in [`ops`] is written so stable-Rust LLVM autovectorizes
//! it — no intrinsics. On x86-64 every kernel body is compiled at three
//! feature levels (portable baseline, `avx2,fma`, `avx512f`) via
//! [`gcon_runtime::tier_dispatch!`], and the process-wide
//! [`gcon_runtime::kernel_tier`] — CPU detection, overridable with
//! `GCON_KERNEL_TIER` — selects one at run time. The tile constants are
//! exported and **per-dtype**: [`ops::MR`]` × `[`ops::NR`] register tiles
//! for f64 (4×8 accumulators per microkernel pass; f32 uses
//! [`ops::NR_F32`] = 16-wide tiles) over a packed [`ops::KC`]`×NR`
//! cache-blocked panel of `B`, and [`ops::TM_IB`]-sample reduction blocks
//! in the `AᵀB` gradient kernel, which adaptively falls back to a
//! zero-skipping loop on sample blocks above [`ops::TM_SKIP_ZERO_FRAC`]
//! zeros (see [`ops::TmPath`]). The reduction kernels in [`vecops`] use
//! [`vecops::LANES`] (f64) / [`vecops::LANES_F32`] (f32) independent lane
//! accumulators.
//!
//! # Determinism and tolerance policy
//!
//! Tiled accumulation reassociates floating-point sums, so the kernels are
//! **not** bit-identical to a naive sequential loop — equivalence tests
//! compare against naive references at 1e-9 *relative* tolerance
//! (`tests/kernel_properties.rs`, run at every tier the host supports).
//! They **are** bit-identical across `GCON_THREADS` settings *and* across
//! dispatch tiers **within one dtype**: the pool partitions output rows
//! only, every code path accumulates a given output element in the same
//! fixed order regardless of where thread or tile boundaries fall, and all
//! tiers compile the same source under strict FP semantics (no
//! reassociation, no mul-add contraction), so the cross-tier drift bound is
//! exactly **zero** per dtype (`tests/runtime_equivalence.rs` pins both by
//! re-running the kernels in subprocesses over the dtype × tier ×
//! thread-count matrix and comparing raw result bytes). Across dtypes no
//! bit relation holds — f32 results carry f32 rounding at every step.

pub mod eigen;
pub mod lu;
pub mod mat;
pub mod ops;
pub mod reduce;
pub mod scalar;
pub mod solve;
pub mod vecops;

pub use mat::Mat;
pub use scalar::{Dtype, Scalar};

/// Absolute tolerance used by the test suites across the workspace when
/// comparing floating-point kernels against naive reference implementations.
pub const TEST_TOL: f64 = 1e-9;

/// Returns true when `a` and `b` are within `tol` of each other, treating
/// NaN as never close.
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}
