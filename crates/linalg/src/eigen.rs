#![allow(clippy::needless_range_loop)] // index-parallel loops mirror the math
//! Eigenvalue routines for the verification suites.
//!
//! Two solvers live here:
//!
//! - [`jacobi_eigen`]: the cyclic Jacobi rotation method for **symmetric**
//!   matrices. The Lemma 7 analysis of the paper works on real symmetric
//!   (Hermitian) matrices — the Hessian blocks `B₁`, the perturbations `E₁` —
//!   whose singular values equal the absolute values of their eigenvalues, so
//!   a symmetric eigensolver is exactly what `gcon-core::verify` needs to
//!   check the singular-value bounds numerically.
//! - [`power_iteration`]: dominant-eigenvalue estimation for arbitrary square
//!   matrices, used to confirm Lemma 3's claim that every eigenvalue of the
//!   row-stochastic `Ã` satisfies `|λ| ≤ 1` (so `I − (1−α)Ã` is invertible).

use crate::vecops;
use crate::Mat;

/// Result of a symmetric eigendecomposition `A = V diag(λ) Vᵀ`.
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues, sorted in non-increasing order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors; column `j` pairs with `values[j]`.
    pub vectors: Mat,
}

/// Maximum number of full Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 64;

/// Cyclic Jacobi eigendecomposition of a symmetric matrix.
///
/// Convergence is quadratic once off-diagonal mass is small; `tol` bounds the
/// final off-diagonal Frobenius norm relative to the matrix norm. Panics if
/// `a` is not square; symmetry is the caller's responsibility (the routine
/// reads only the upper triangle's mirror average, so mild asymmetry from
/// floating-point noise is tolerated).
pub fn jacobi_eigen(a: &Mat, tol: f64) -> SymEigen {
    assert_eq!(a.rows(), a.cols(), "jacobi_eigen requires a square matrix");
    let n = a.rows();
    // Work on the symmetrized copy (m + mᵀ)/2 to be robust to fp asymmetry.
    let mut m = Mat::from_fn(n, n, |i, j| 0.5 * (a.get(i, j) + a.get(j, i)));
    let mut v = Mat::eye(n);

    let norm = m.frobenius_norm().max(f64::MIN_POSITIVE);
    for _sweep in 0..MAX_SWEEPS {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m.get(i, j) * m.get(i, j);
            }
        }
        if (2.0 * off).sqrt() <= tol * norm {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq.abs() <= f64::MIN_POSITIVE {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                // Stable rotation angle: tan(2θ) = 2 a_pq / (a_qq − a_pp).
                let theta = (aqq - app) / (2.0 * apq);
                let t = {
                    let sign = if theta >= 0.0 { 1.0 } else { -1.0 };
                    sign / (theta.abs() + (theta * theta + 1.0).sqrt())
                };
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                // Apply the rotation to rows/columns p and q.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }

    // Extract, then sort by descending eigenvalue, carrying vectors along.
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m.get(i, i)).collect();
    order.sort_by(|&i, &j| diag[j].partial_cmp(&diag[i]).unwrap());
    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let vectors = Mat::from_fn(n, n, |i, j| v.get(i, order[j]));
    SymEigen { values, vectors }
}

/// Singular values of an arbitrary matrix `A`, computed as the square roots
/// of the eigenvalues of `AᵀA` (Jacobi on the Gram matrix). Returned in
/// non-increasing order. Adequate for the small, well-conditioned matrices
/// the verification suite works with.
pub fn singular_values(a: &Mat, tol: f64) -> Vec<f64> {
    let gram = crate::ops::t_matmul(a, a);
    jacobi_eigen(&gram, tol).values.into_iter().map(|l| l.max(0.0).sqrt()).collect()
}

/// Outcome of [`power_iteration`].
#[derive(Debug, Clone)]
pub struct PowerIterationResult {
    /// The dominant eigenvalue estimate (Rayleigh quotient at termination).
    pub eigenvalue: f64,
    /// The associated unit eigenvector.
    pub eigenvector: Vec<f64>,
    /// Iterations consumed.
    pub iterations: usize,
    /// Whether the residual tolerance was met before the iteration cap.
    pub converged: bool,
}

/// Power iteration on a square matrix, estimating the eigenvalue of largest
/// magnitude. `v0` seeds the iteration (uniform vector if `None`).
pub fn power_iteration(
    a: &Mat,
    v0: Option<&[f64]>,
    max_iters: usize,
    tol: f64,
) -> PowerIterationResult {
    assert_eq!(a.rows(), a.cols(), "power_iteration requires a square matrix");
    let n = a.rows();
    let mut v: Vec<f64> = match v0 {
        Some(v0) => {
            assert_eq!(v0.len(), n);
            v0.to_vec()
        }
        None => vec![1.0 / (n as f64).sqrt(); n],
    };
    let nrm = vecops::norm2(&v);
    assert!(nrm > 0.0, "power_iteration seed must be nonzero");
    for x in v.iter_mut() {
        *x /= nrm;
    }

    let mut lambda = 0.0;
    for it in 1..=max_iters {
        // w = A v
        let mut w = vec![0.0; n];
        for i in 0..n {
            let row = a.row(i);
            w[i] = vecops::dot(row, &v);
        }
        let new_lambda = vecops::dot(&v, &w);
        let wn = vecops::norm2(&w);
        if wn <= f64::MIN_POSITIVE {
            // A v = 0: v is in the kernel; eigenvalue 0 is exact.
            return PowerIterationResult {
                eigenvalue: 0.0,
                eigenvector: v,
                iterations: it,
                converged: true,
            };
        }
        for (wi, vi) in w.iter().zip(v.iter_mut()) {
            *vi = *wi / wn;
        }
        if (new_lambda - lambda).abs() <= tol * new_lambda.abs().max(1.0) {
            return PowerIterationResult {
                eigenvalue: new_lambda,
                eigenvector: v,
                iterations: it,
                converged: true,
            };
        }
        lambda = new_lambda;
    }
    PowerIterationResult {
        eigenvalue: lambda,
        eigenvector: v,
        iterations: max_iters,
        converged: false,
    }
}

/// Spectral radius estimate via power iteration with a deterministic
/// perturbed seed (helps when the dominant eigenvector is orthogonal to the
/// uniform vector).
pub fn spectral_radius(a: &Mat, max_iters: usize, tol: f64) -> f64 {
    let n = a.rows();
    let seed: Vec<f64> = (0..n).map(|i| 1.0 + 0.01 * ((i % 17) as f64)).collect();
    power_iteration(a, Some(&seed), max_iters, tol).eigenvalue.abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{approx_eq, ops};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn reconstruct(e: &SymEigen) -> Mat {
        let n = e.values.len();
        let lam = Mat::from_fn(n, n, |i, j| if i == j { e.values[i] } else { 0.0 });
        let vl = ops::matmul(&e.vectors, &lam);
        ops::matmul_bt(&vl, &e.vectors)
    }

    #[test]
    fn diagonal_matrix_eigenvalues_are_diagonal() {
        let a = Mat::from_rows(&[&[3.0, 0.0], &[0.0, -1.0]]);
        let e = jacobi_eigen(&a, 1e-12);
        assert!(approx_eq(e.values[0], 3.0, 1e-12));
        assert!(approx_eq(e.values[1], -1.0, 1e-12));
    }

    #[test]
    fn known_2x2_eigenvalues() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = jacobi_eigen(&a, 1e-12);
        assert!(approx_eq(e.values[0], 3.0, 1e-10));
        assert!(approx_eq(e.values[1], 1.0, 1e-10));
    }

    #[test]
    fn eigenvectors_are_orthonormal_and_reconstruct() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in [2usize, 4, 7, 10] {
            let g: Mat = Mat::gaussian(n, n, 1.0, &mut rng);
            // Symmetrize.
            let a = Mat::from_fn(n, n, |i, j| 0.5 * (g.get(i, j) + g.get(j, i)));
            let e = jacobi_eigen(&a, 1e-13);
            // VᵀV = I
            let vtv = ops::t_matmul(&e.vectors, &e.vectors);
            for i in 0..n {
                for j in 0..n {
                    let want = if i == j { 1.0 } else { 0.0 };
                    assert!(approx_eq(vtv.get(i, j), want, 1e-8), "VtV({i},{j})");
                }
            }
            // V Λ Vᵀ = A
            let rec = reconstruct(&e);
            for i in 0..n {
                for j in 0..n {
                    assert!(
                        approx_eq(rec.get(i, j), a.get(i, j), 1e-8),
                        "reconstruct n={n} ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn eigenvalues_sorted_non_increasing() {
        let mut rng = StdRng::seed_from_u64(23);
        let g: Mat = Mat::gaussian(6, 6, 1.0, &mut rng);
        let a = Mat::from_fn(6, 6, |i, j| 0.5 * (g.get(i, j) + g.get(j, i)));
        let e = jacobi_eigen(&a, 1e-12);
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = Mat::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.2], &[0.5, 0.2, 5.0]]);
        let e = jacobi_eigen(&a, 1e-13);
        let trace = 4.0 + 3.0 + 5.0;
        let sum: f64 = e.values.iter().sum();
        assert!(approx_eq(sum, trace, 1e-9));
    }

    #[test]
    fn singular_values_match_eigenvalues_for_spd() {
        // For a symmetric positive-definite matrix, σᵢ = λᵢ.
        let a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let sv = singular_values(&a, 1e-13);
        assert!(approx_eq(sv[0], 3.0, 1e-8));
        assert!(approx_eq(sv[1], 1.0, 1e-8));
    }

    #[test]
    fn singular_values_of_rank_one_outer_product() {
        // z zᵀ with ‖z‖ = √(1+4+4) = 3 has a single singular value ‖z‖² = 9.
        let z = [1.0, 2.0, 2.0];
        let a = Mat::from_fn(3, 3, |i, j| z[i] * z[j]);
        let sv = singular_values(&a, 1e-13);
        assert!(approx_eq(sv[0], 9.0, 1e-8));
        assert!(sv[1].abs() < 1e-6 && sv[2].abs() < 1e-6);
    }

    #[test]
    fn power_iteration_finds_dominant_eigenvalue() {
        let a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let r = power_iteration(&a, None, 500, 1e-12);
        assert!(r.converged);
        assert!(approx_eq(r.eigenvalue, 3.0, 1e-8));
        // Eigenvector ∝ (1,1)/√2.
        let want = 1.0 / 2.0f64.sqrt();
        assert!(approx_eq(r.eigenvector[0].abs(), want, 1e-6));
        assert!(approx_eq(r.eigenvector[1].abs(), want, 1e-6));
    }

    #[test]
    fn power_iteration_on_zero_matrix_returns_zero() {
        let a = Mat::zeros(3, 3);
        let r = power_iteration(&a, None, 10, 1e-12);
        assert!(r.converged);
        assert_eq!(r.eigenvalue, 0.0);
    }

    #[test]
    fn spectral_radius_of_row_stochastic_matrix_is_one() {
        // Any row-stochastic matrix has spectral radius exactly 1 (Lemma 3's
        // engine room). Build one by normalizing random positive rows.
        let mut rng = StdRng::seed_from_u64(3);
        let n = 8;
        let mut a: Mat = Mat::uniform(n, n, 1.0, &mut rng);
        a.map_inplace(|v| v.abs() + 0.01);
        for i in 0..n {
            let s: f64 = a.row(i).iter().sum();
            for j in 0..n {
                let v = a.get(i, j) / s;
                a.set(i, j, v);
            }
        }
        let rho = spectral_radius(&a, 2000, 1e-12);
        assert!(approx_eq(rho, 1.0, 1e-6), "rho = {rho}");
    }
}
