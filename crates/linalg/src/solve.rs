//! Iterative linear solvers.
//!
//! The PPR limit `Z_∞ = α(I − (1−α)Ã)^{-1}X` (Eq. 5 of the paper) is a
//! linear solve per feature column. `gcon-core` uses the power iteration
//! (geometric rate `1−α`), but for small restart probabilities the system
//! becomes ill-conditioned and conjugate-gradient-type methods converge in
//! far fewer matrix products. This module provides a matrix-free CG on the
//! *normal equations* (CGNR) — the operator `I − (1−α)Ã` is nonsymmetric, so
//! plain CG does not apply — plus a dense reference solver for tests.
//!
//! Two solver shapes are offered:
//!
//! - [`cgnr`] solves `A x = b` for one right-hand side through a
//!   [`LinearOperator`].
//! - [`block_cgnr`] solves `A X = B` for **all** columns of `B`
//!   simultaneously through a [`BlockLinearOperator`]: one `A` product and
//!   one `Aᵀ` product per iteration *total*, with per-column step sizes and
//!   per-column convergence tracking. Converged columns freeze (their
//!   iterates stop moving) while the remaining columns keep iterating, and
//!   each column's trajectory is exactly the trajectory the single-column
//!   [`cgnr`] would have taken.
//! - [`block_cgnr_warm`] is [`block_cgnr`] started from a caller-supplied
//!   iterate `X₀` instead of zero: columns whose warm residual already
//!   passes the tolerance freeze before the first iteration, so re-solving
//!   a slightly perturbed system costs iterations only where the
//!   perturbation landed.
//!
//! Both solvers report honest statistics: `iterations` is the number of
//! iterations actually performed on every exit path, and the `converged`
//! verdict is decided on the **true** residual `‖b − A x‖₂` — recomputed
//! with one final operator application — never on the recurrence residual,
//! which drifts from the truth on ill-conditioned systems. Callers must
//! check [`SolveStats::converged`]; a `false` means the returned iterate is
//! only the best effort within the iteration budget.

use crate::{vecops, Mat};

/// A matrix-free linear operator `y = A·x`.
pub trait LinearOperator {
    /// Applies the operator.
    fn apply(&self, x: &[f64]) -> Vec<f64>;
    /// Applies the transpose.
    fn apply_transpose(&self, x: &[f64]) -> Vec<f64>;
    /// Operator dimension (square).
    fn dim(&self) -> usize;

    /// Applies the operator, writing into `out` (resized as needed, backing
    /// allocation reused). [`cgnr`]'s inner loop calls this form so a solve
    /// performs no per-iteration allocation; operators whose product has a
    /// natural `_into` kernel (e.g. a CSR `spmv_into`) should override the
    /// default, which delegates to the allocating [`LinearOperator::apply`].
    fn apply_into(&self, x: &[f64], out: &mut Vec<f64>) {
        *out = self.apply(x);
    }

    /// Buffer-reusing form of [`LinearOperator::apply_transpose`]; see
    /// [`LinearOperator::apply_into`].
    fn apply_transpose_into(&self, x: &[f64], out: &mut Vec<f64>) {
        *out = self.apply_transpose(x);
    }
}

/// A matrix-free linear operator applied to every column of a dense block,
/// `Y = A·X`, with buffer-reusing `_into` forms so the solver's inner loop
/// performs no per-iteration allocation.
pub trait BlockLinearOperator {
    /// Applies the operator to every column of `x`, writing into `out`
    /// (reshaped as needed, backing buffer reused).
    fn apply_into(&self, x: &Mat, out: &mut Mat);
    /// Applies the transpose to every column of `x`, writing into `out`.
    fn apply_transpose_into(&self, x: &Mat, out: &mut Mat);
    /// Operator dimension (square).
    fn dim(&self) -> usize;

    /// Allocating convenience form of [`BlockLinearOperator::apply_into`].
    fn apply(&self, x: &Mat) -> Mat {
        let mut out = Mat::default();
        self.apply_into(x, &mut out);
        out
    }

    /// Allocating convenience form of
    /// [`BlockLinearOperator::apply_transpose_into`].
    fn apply_transpose(&self, x: &Mat) -> Mat {
        let mut out = Mat::default();
        self.apply_transpose_into(x, &mut out);
        out
    }
}

/// Outcome of an iterative solve.
#[derive(Clone, Copy, Debug)]
pub struct SolveStats {
    /// Iterations actually performed (operator product pairs consumed by the
    /// main recurrence; the final true-residual check is not counted).
    pub iterations: usize,
    /// Final **true** residual L2 norm `‖b − A·x‖₂`, recomputed from the
    /// returned iterate rather than read off the recurrence.
    pub residual: f64,
    /// Whether the relative tolerance was reached, judged on the true
    /// residual.
    pub converged: bool,
}

/// CGNR: conjugate gradient on `AᵀA x = Aᵀ b`, valid for any nonsingular
/// operator. Returns the solution and convergence statistics; the caller
/// must inspect [`SolveStats::converged`].
pub fn cgnr<Op: LinearOperator>(
    op: &Op,
    b: &[f64],
    tol: f64,
    max_iters: usize,
) -> (Vec<f64>, SolveStats) {
    let n = op.dim();
    assert_eq!(b.len(), n, "cgnr: rhs dimension mismatch");
    let mut x = vec![0.0; n];
    // r = b − A x = b initially.
    let mut r = b.to_vec();
    // z = Aᵀ r (gradient of the least-squares objective), p = z.
    let mut z = op.apply_transpose(&r);
    let mut p = z.clone();
    // The only per-iteration buffer; every operator product in the loop
    // below runs through the `_into` forms, so steady-state iterations
    // allocate nothing.
    let mut ap = Vec::new();
    let mut z_norm_sq = vecops::dot(&z, &z);
    let b_norm = vecops::norm2(b).max(1e-300);

    let mut iterations = 0;
    let mut recurrence_residual = vecops::norm2(&r);
    while iterations < max_iters && recurrence_residual / b_norm >= tol {
        op.apply_into(&p, &mut ap);
        let ap_norm_sq = vecops::dot(&ap, &ap);
        if ap_norm_sq == 0.0 {
            break; // stagnated: A p = 0 with p ≠ 0 (singular operator)
        }
        iterations += 1;
        let alpha = z_norm_sq / ap_norm_sq;
        vecops::axpy(alpha, &p, &mut x);
        vecops::axpy(-alpha, &ap, &mut r);
        op.apply_transpose_into(&r, &mut z);
        let z_new = vecops::dot(&z, &z);
        let beta = z_new / z_norm_sq.max(1e-300);
        for (pi, &zi) in p.iter_mut().zip(&z) {
            *pi = zi + beta * *pi;
        }
        z_norm_sq = z_new;
        recurrence_residual = vecops::norm2(&r);
    }
    // The recurrence residual drifts from ‖b − A x‖₂ in floating point on
    // ill-conditioned systems; the verdict must use the real thing.
    op.apply_into(&x, &mut ap);
    let ax = ap;
    let residual = b.iter().zip(&ax).map(|(&bi, &ai)| (bi - ai) * (bi - ai)).sum::<f64>().sqrt();
    let converged = residual / b_norm < tol;
    (x, SolveStats { iterations, residual, converged })
}

/// Per-column dot products `out[j] = Σ_i a[i][j]·b[i][j]`, accumulated in
/// ascending row order — a fixed, partition-independent order (it no longer
/// matches [`vecops::dot`] bit-for-bit now that `dot` uses lane
/// accumulators; the block/column solver agreement tests compare to
/// tolerance).
fn column_dots(a: &Mat, b: &Mat) -> Vec<f64> {
    debug_assert_eq!(a.shape(), b.shape());
    let mut out = vec![0.0; a.cols()];
    for i in 0..a.rows() {
        for (o, (&x, &y)) in out.iter_mut().zip(a.row(i).iter().zip(b.row(i))) {
            *o += x * y;
        }
    }
    out
}

/// Column-wise axpy `y[:, j] += alpha[j] · x[:, j]`.
fn axpy_columns(alpha: &[f64], x: &Mat, y: &mut Mat) {
    debug_assert_eq!(x.shape(), y.shape());
    for i in 0..x.rows() {
        for ((yv, &xv), &a) in y.row_mut(i).iter_mut().zip(x.row(i)).zip(alpha) {
            *yv += a * xv;
        }
    }
}

/// Multi-RHS block CGNR: solves `A X = B` for every column of `B`
/// simultaneously, performing **one** `A` product and **one** `Aᵀ` product
/// per iteration regardless of the number of columns (plus one initial `Aᵀ`
/// and one final true-residual `A` application). Each column carries its own
/// step sizes `α_j, β_j`; a column whose recurrence residual passes `tol`
/// freezes — its iterate, residual and direction stop being updated — while
/// the remaining columns keep iterating, so the per-column trajectories
/// coincide with what the single-RHS [`cgnr`] would compute.
///
/// Returns the solution block and one [`SolveStats`] per column, each judged
/// on the true residual of that column. [`block_cgnr_warm`] is the same
/// solver started from a caller-provided iterate instead of zero.
pub fn block_cgnr<Op: BlockLinearOperator>(
    op: &Op,
    b: &Mat,
    tol: f64,
    max_iters: usize,
) -> (Mat, Vec<SolveStats>) {
    block_cgnr_impl(op, b, None, tol, max_iters)
}

/// Warm-started multi-RHS block CGNR: identical to [`block_cgnr`] except the
/// iteration starts from `x0` instead of zero, at the cost of **one** extra
/// `A` product to form the initial residual `R = B − A X₀`.
///
/// Per-column early exit falls out of the block solver's scheduling: a
/// column whose warm residual already passes `tol` freezes before the first
/// iteration and reports `iterations == 0` — so re-solving a system where
/// only a few right-hand-side columns changed costs iterations only for
/// those columns. With `x0 = 0` the trajectory (and the returned solution)
/// is bitwise identical to the cold [`block_cgnr`], since `B − A·0`
/// subtracts exact zeros.
///
/// This is the solver shape the incremental PPR refresh in `gcon-core`
/// builds on: the previous propagation `Z` is an excellent `X₀` after a
/// small graph delta, leaving most columns at or near convergence.
pub fn block_cgnr_warm<Op: BlockLinearOperator>(
    op: &Op,
    b: &Mat,
    x0: &Mat,
    tol: f64,
    max_iters: usize,
) -> (Mat, Vec<SolveStats>) {
    block_cgnr_impl(op, b, Some(x0), tol, max_iters)
}

/// Shared body of [`block_cgnr`] / [`block_cgnr_warm`]. The cold path pays
/// `2·iters + 2` operator products, the warm path `2·iters + 3` (the extra
/// initial `A X₀`) — pinned by the op-count suite.
fn block_cgnr_impl<Op: BlockLinearOperator>(
    op: &Op,
    b: &Mat,
    x0: Option<&Mat>,
    tol: f64,
    max_iters: usize,
) -> (Mat, Vec<SolveStats>) {
    let n = op.dim();
    let d = b.cols();
    assert_eq!(b.rows(), n, "block_cgnr: rhs dimension mismatch");
    let mut x = match x0 {
        Some(x0) => {
            assert_eq!(x0.shape(), (n, d), "block_cgnr: warm-start shape mismatch");
            x0.clone()
        }
        None => Mat::zeros(n, d),
    };
    if d == 0 {
        return (x, Vec::new());
    }
    // R = B − A X₀ (one product when warm; B itself when X₀ = 0);
    // Z = Aᵀ R; P = Z.
    let mut r = b.clone();
    let mut ap = Mat::default();
    if x0.is_some() {
        op.apply_into(&x, &mut ap);
        for i in 0..n {
            for (rv, &av) in r.row_mut(i).iter_mut().zip(ap.row(i)) {
                *rv -= av;
            }
        }
    }
    let mut z = Mat::default();
    op.apply_transpose_into(&r, &mut z);
    let mut p = z.clone();
    let mut z_norm_sq = column_dots(&z, &z);
    let b_norm: Vec<f64> = column_dots(b, b).iter().map(|v| v.sqrt().max(1e-300)).collect();
    let mut r_norm_sq = column_dots(&r, &r);

    let mut active = vec![true; d];
    let mut iterations = vec![0usize; d];
    let mut performed = 0;
    while performed < max_iters {
        for j in 0..d {
            if active[j] && r_norm_sq[j].sqrt() / b_norm[j] < tol {
                active[j] = false;
            }
        }
        if !active.iter().any(|&a| a) {
            break;
        }
        performed += 1;
        op.apply_into(&p, &mut ap);
        let ap_norm_sq = column_dots(&ap, &ap);
        // Frozen (and stagnated) columns get α_j = β_j = 0: their x, r and p
        // columns pass through every block update unchanged.
        let mut alpha = vec![0.0; d];
        for j in 0..d {
            if active[j] {
                if ap_norm_sq[j] == 0.0 {
                    active[j] = false; // stagnated: singular in this column
                } else {
                    alpha[j] = z_norm_sq[j] / ap_norm_sq[j];
                    iterations[j] = performed;
                }
            }
        }
        axpy_columns(&alpha, &p, &mut x);
        let neg_alpha: Vec<f64> = alpha.iter().map(|a| -a).collect();
        axpy_columns(&neg_alpha, &ap, &mut r);
        op.apply_transpose_into(&r, &mut z);
        let z_new = column_dots(&z, &z);
        let mut beta = vec![0.0; d];
        for j in 0..d {
            if active[j] {
                beta[j] = z_new[j] / z_norm_sq[j].max(1e-300);
                z_norm_sq[j] = z_new[j];
            }
        }
        for i in 0..n {
            let prow = p.row_mut(i);
            let zrow = z.row(i);
            for ((pv, &zv), (&bj, &act)) in prow.iter_mut().zip(zrow).zip(beta.iter().zip(&active))
            {
                if act {
                    *pv = zv + bj * *pv;
                }
            }
        }
        r_norm_sq = column_dots(&r, &r);
    }
    // One final product recomputes every column's true residual; the
    // recurrence residual is only trusted for scheduling, never for the
    // convergence verdict.
    op.apply_into(&x, &mut ap);
    let mut true_norm_sq = vec![0.0; d];
    for i in 0..b.rows() {
        for (t, (&bv, &av)) in true_norm_sq.iter_mut().zip(b.row(i).iter().zip(ap.row(i))) {
            *t += (bv - av) * (bv - av);
        }
    }
    let stats = (0..d)
        .map(|j| {
            let residual = true_norm_sq[j].sqrt();
            SolveStats {
                iterations: iterations[j],
                residual,
                converged: residual / b_norm[j] < tol,
            }
        })
        .collect();
    (x, stats)
}

/// Dense Gaussian elimination with partial pivoting — the O(n³) reference
/// used by tests and tiny systems.
pub fn solve_dense(a: &Mat, b: &[f64]) -> Option<Vec<f64>> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "solve_dense: matrix must be square");
    assert_eq!(b.len(), n, "solve_dense: rhs dimension mismatch");
    let mut aug = a.clone();
    let mut rhs = b.to_vec();
    for col in 0..n {
        // Pivot.
        let mut pivot = col;
        let mut best = aug.get(col, col).abs();
        for row in col + 1..n {
            let v = aug.get(row, col).abs();
            if v > best {
                best = v;
                pivot = row;
            }
        }
        if best < 1e-300 {
            return None; // singular
        }
        if pivot != col {
            for j in 0..n {
                let tmp = aug.get(col, j);
                aug.set(col, j, aug.get(pivot, j));
                aug.set(pivot, j, tmp);
            }
            rhs.swap(col, pivot);
        }
        // Eliminate below.
        let diag = aug.get(col, col);
        for row in col + 1..n {
            let f = aug.get(row, col) / diag;
            if f == 0.0 {
                continue;
            }
            for j in col..n {
                let v = aug.get(row, j) - f * aug.get(col, j);
                aug.set(row, j, v);
            }
            rhs[row] -= f * rhs[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut s = rhs[row];
        for (j, &xj) in x.iter().enumerate().skip(row + 1) {
            s -= aug.get(row, j) * xj;
        }
        x[row] = s / aug.get(row, row);
    }
    Some(x)
}

/// Adapter exposing a dense [`Mat`] as a [`LinearOperator`] /
/// [`BlockLinearOperator`].
pub struct DenseOperator<'a> {
    /// The wrapped matrix.
    pub mat: &'a Mat,
}

impl LinearOperator for DenseOperator<'_> {
    fn apply(&self, x: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        LinearOperator::apply_into(self, x, &mut out);
        out
    }

    fn apply_transpose(&self, x: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        LinearOperator::apply_transpose_into(self, x, &mut out);
        out
    }

    fn apply_into(&self, x: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend((0..self.mat.rows()).map(|i| vecops::dot(self.mat.row(i), x)));
    }

    fn apply_transpose_into(&self, x: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.mat.cols(), 0.0);
        for (i, &xi) in x.iter().enumerate() {
            vecops::axpy(xi, self.mat.row(i), out);
        }
    }

    fn dim(&self) -> usize {
        self.mat.rows()
    }
}

impl BlockLinearOperator for DenseOperator<'_> {
    fn apply_into(&self, x: &Mat, out: &mut Mat) {
        crate::ops::matmul_into(self.mat, x, out);
    }

    fn apply_transpose_into(&self, x: &Mat, out: &mut Mat) {
        crate::ops::t_matmul_into(self.mat, x, out);
    }

    fn dim(&self) -> usize {
        self.mat.rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dense_solver_small_system() {
        let a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = solve_dense(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn dense_solver_detects_singular() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(solve_dense(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn cgnr_matches_dense_solution() {
        let mut rng = StdRng::seed_from_u64(101);
        // Well-conditioned diagonally dominant system.
        let n = 20;
        let mut a = Mat::uniform(n, n, 0.3, &mut rng);
        for i in 0..n {
            a.add_at(i, i, 3.0);
        }
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let expect = solve_dense(&a, &b).unwrap();
        let (x, stats) = cgnr(&DenseOperator { mat: &a }, &b, 1e-12, 500);
        assert!(stats.converged, "residual {}", stats.residual);
        for (u, v) in x.iter().zip(&expect) {
            assert!((u - v).abs() < 1e-8, "{u} vs {v}");
        }
    }

    #[test]
    fn cgnr_handles_nonsymmetric_operators() {
        let a = Mat::from_rows(&[&[1.0, 0.9, 0.0], &[0.0, 1.0, 0.9], &[0.0, 0.0, 1.0]]);
        let b = [1.0, 1.0, 1.0];
        let expect = solve_dense(&a, &b).unwrap();
        let (x, stats) = cgnr(&DenseOperator { mat: &a }, &b, 1e-13, 200);
        assert!(stats.converged);
        for (u, v) in x.iter().zip(&expect) {
            assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn cgnr_zero_rhs_gives_zero() {
        let a = Mat::eye(4);
        let (x, stats) = cgnr(&DenseOperator { mat: &a }, &[0.0; 4], 1e-12, 10);
        assert!(stats.converged);
        assert_eq!(stats.iterations, 0);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    /// Regression: an exhausted iteration budget must report the true number
    /// of iterations performed (`max_iters`), not `max_iters − 1`, and must
    /// report `converged = false`.
    #[test]
    fn cgnr_reports_exact_iteration_count_on_budget_exhaustion() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 30;
        let mut a = Mat::uniform(n, n, 1.0, &mut rng);
        for i in 0..n {
            a.add_at(i, i, 0.5); // poorly conditioned on purpose
        }
        let b: Vec<f64> = (0..n).map(|i| ((i * 3) % 7) as f64 - 2.0).collect();
        for budget in [1usize, 2, 3, 5] {
            let (_, stats) = cgnr(&DenseOperator { mat: &a }, &b, 1e-14, budget);
            assert_eq!(stats.iterations, budget, "budget {budget}");
            assert!(!stats.converged, "budget {budget} cannot reach 1e-14");
        }
    }

    /// The reported residual must be the directly computed `‖b − A x‖₂` even
    /// on an ill-conditioned system where the recurrence residual drifts.
    #[test]
    fn cgnr_residual_is_the_true_residual() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 25;
        // Wide spread of diagonal scales → ill-conditioned.
        let mut a = Mat::uniform(n, n, 0.05, &mut rng);
        for i in 0..n {
            a.add_at(i, i, 10.0_f64.powi((i % 6) as i32 - 3));
        }
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).cos()).collect();
        let op = DenseOperator { mat: &a };
        let (x, stats) = cgnr(&op, &b, 1e-10, 2000);
        let ax = LinearOperator::apply(&op, &x);
        let direct = b.iter().zip(&ax).map(|(&u, &v)| (u - v) * (u - v)).sum::<f64>().sqrt();
        assert!(
            (stats.residual - direct).abs() <= 1e-12 * direct.max(1.0),
            "reported {} vs direct {direct}",
            stats.residual
        );
    }

    #[test]
    fn block_cgnr_matches_per_column_cgnr() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 24;
        let d = 5;
        let mut a = Mat::uniform(n, n, 0.3, &mut rng);
        for i in 0..n {
            a.add_at(i, i, 2.5);
        }
        let b = Mat::uniform(n, d, 1.0, &mut rng);
        let op = DenseOperator { mat: &a };
        let (x_block, stats) = block_cgnr(&op, &b, 1e-12, 500);
        assert_eq!(stats.len(), d);
        for (j, s) in stats.iter().enumerate() {
            assert!(s.converged, "column {j}: {s:?}");
            let (x_col, s_col) = cgnr(&op, &b.col(j), 1e-12, 500);
            assert!(s_col.converged);
            for (i, &v) in x_col.iter().enumerate() {
                assert!(
                    (x_block.get(i, j) - v).abs() < 1e-10,
                    "({i},{j}): block {} vs column {v}",
                    x_block.get(i, j)
                );
            }
        }
    }

    #[test]
    fn block_cgnr_per_column_convergence_is_independent() {
        // One easy column (identity-dominated direction) next to columns
        // that need more iterations: each column's stats are its own.
        let mut rng = StdRng::seed_from_u64(13);
        let n = 20;
        let mut a = Mat::uniform(n, n, 0.4, &mut rng);
        for i in 0..n {
            a.add_at(i, i, 3.0);
        }
        let mut b = Mat::uniform(n, 3, 1.0, &mut rng);
        for i in 0..n {
            b.set(i, 0, 0.0); // zero rhs converges in 0 iterations
        }
        let op = DenseOperator { mat: &a };
        let (x, stats) = block_cgnr(&op, &b, 1e-12, 500);
        assert!(stats.iter().all(|s| s.converged));
        assert_eq!(stats[0].iterations, 0);
        assert!(stats[1].iterations > 0);
        for i in 0..n {
            assert_eq!(x.get(i, 0), 0.0);
        }
    }

    #[test]
    fn block_cgnr_reports_honest_failure_on_tiny_budget() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 30;
        let mut a = Mat::uniform(n, n, 1.0, &mut rng);
        for i in 0..n {
            a.add_at(i, i, 0.5);
        }
        let b = Mat::uniform(n, 4, 1.0, &mut rng);
        let op = DenseOperator { mat: &a };
        let (_, stats) = block_cgnr(&op, &b, 1e-14, 2);
        for s in &stats {
            assert_eq!(s.iterations, 2);
            assert!(!s.converged);
            assert!(s.residual > 0.0);
        }
    }

    #[test]
    fn warm_start_at_solution_converges_in_zero_iterations() {
        let mut rng = StdRng::seed_from_u64(17);
        let n = 22;
        let mut a = Mat::uniform(n, n, 0.3, &mut rng);
        for i in 0..n {
            a.add_at(i, i, 2.5);
        }
        let b = Mat::uniform(n, 4, 1.0, &mut rng);
        let op = DenseOperator { mat: &a };
        let (x, stats) = block_cgnr(&op, &b, 1e-12, 500);
        assert!(stats.iter().all(|s| s.converged));
        // Restarting from the converged iterate: every column freezes
        // before the first iteration and the iterate is returned untouched.
        let (x2, stats2) = block_cgnr_warm(&op, &b, &x, 1e-12, 500);
        assert!(stats2.iter().all(|s| s.converged && s.iterations == 0), "{stats2:?}");
        assert_eq!(x2, x);
    }

    #[test]
    fn warm_start_from_zero_is_bitwise_cold() {
        let mut rng = StdRng::seed_from_u64(19);
        let n = 25;
        let mut a = Mat::uniform(n, n, 0.4, &mut rng);
        for i in 0..n {
            a.add_at(i, i, 3.0);
        }
        let b = Mat::uniform(n, 3, 1.0, &mut rng);
        let op = DenseOperator { mat: &a };
        let (cold, s_cold) = block_cgnr(&op, &b, 1e-12, 500);
        let (warm, s_warm) = block_cgnr_warm(&op, &b, &Mat::zeros(n, 3), 1e-12, 500);
        assert_eq!(warm, cold);
        for (c, w) in s_cold.iter().zip(&s_warm) {
            assert_eq!(c.iterations, w.iterations);
            assert_eq!(c.converged, w.converged);
        }
    }

    #[test]
    fn warm_start_only_iterates_on_perturbed_columns() {
        let mut rng = StdRng::seed_from_u64(23);
        let n = 24;
        let mut a = Mat::uniform(n, n, 0.3, &mut rng);
        for i in 0..n {
            a.add_at(i, i, 2.5);
        }
        let b = Mat::uniform(n, 3, 1.0, &mut rng);
        let op = DenseOperator { mat: &a };
        let (x, _) = block_cgnr(&op, &b, 1e-12, 500);
        // Perturb the rhs of column 1 only; warm-start from the old answer.
        let mut b2 = b.clone();
        for i in 0..n {
            b2.add_at(i, 1, 0.3 * ((i as f64 * 0.9).sin()));
        }
        let (x2, stats) = block_cgnr_warm(&op, &b2, &x, 1e-12, 500);
        assert!(stats.iter().all(|s| s.converged), "{stats:?}");
        assert_eq!(stats[0].iterations, 0, "unperturbed column must freeze at entry");
        assert_eq!(stats[2].iterations, 0, "unperturbed column must freeze at entry");
        assert!(stats[1].iterations > 0, "perturbed column must iterate");
        // Frozen columns return the warm iterate verbatim; the perturbed
        // column reaches the new solution.
        for i in 0..n {
            assert_eq!(x2.get(i, 0), x.get(i, 0));
            assert_eq!(x2.get(i, 2), x.get(i, 2));
        }
        let (x_ref, s_ref) = block_cgnr(&op, &b2, 1e-12, 500);
        assert!(s_ref.iter().all(|s| s.converged));
        for i in 0..n {
            assert!((x2.get(i, 1) - x_ref.get(i, 1)).abs() < 1e-8);
        }
    }

    #[test]
    fn warm_start_reduces_iterations_after_small_perturbation() {
        let mut rng = StdRng::seed_from_u64(29);
        let n = 40;
        let mut a = Mat::uniform(n, n, 0.3, &mut rng);
        for i in 0..n {
            a.add_at(i, i, 2.0);
        }
        let b = Mat::uniform(n, 5, 1.0, &mut rng);
        let op = DenseOperator { mat: &a };
        let (x, _) = block_cgnr(&op, &b, 1e-12, 1000);
        let mut b2 = b.clone();
        for j in 0..5 {
            b2.add_at(3, j, 1e-4);
        }
        let (_, warm) = block_cgnr_warm(&op, &b2, &x, 1e-10, 1000);
        let (_, cold) = block_cgnr(&op, &b2, 1e-10, 1000);
        assert!(warm.iter().all(|s| s.converged));
        let warm_max = warm.iter().map(|s| s.iterations).max().unwrap();
        let cold_max = cold.iter().map(|s| s.iterations).max().unwrap();
        assert!(
            warm_max < cold_max,
            "warm ({warm_max} iters) must beat cold ({cold_max}) on a tiny perturbation"
        );
    }

    #[test]
    #[should_panic(expected = "warm-start shape mismatch")]
    fn warm_start_shape_mismatch_panics() {
        let a = Mat::eye(4);
        let b = Mat::zeros(4, 2);
        let _ = block_cgnr_warm(&DenseOperator { mat: &a }, &b, &Mat::zeros(4, 3), 1e-12, 10);
    }

    #[test]
    fn block_cgnr_empty_block() {
        let a = Mat::eye(4);
        let (x, stats) = block_cgnr(&DenseOperator { mat: &a }, &Mat::zeros(4, 0), 1e-12, 10);
        assert_eq!(x.shape(), (4, 0));
        assert!(stats.is_empty());
    }
}
