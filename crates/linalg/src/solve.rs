//! Iterative linear solvers.
//!
//! The PPR limit `Z_∞ = α(I − (1−α)Ã)^{-1}X` (Eq. 5 of the paper) is a
//! linear solve per feature column. `gcon-core` uses the power iteration
//! (geometric rate `1−α`), but for small restart probabilities the system
//! becomes ill-conditioned and conjugate-gradient-type methods converge in
//! far fewer matrix products. This module provides a matrix-free CG on the
//! *normal equations* (CGNR) — the operator `I − (1−α)Ã` is nonsymmetric, so
//! plain CG does not apply — plus a dense reference solver for tests.

use crate::{vecops, Mat};

/// A matrix-free linear operator `y = A·x`.
pub trait LinearOperator {
    /// Applies the operator.
    fn apply(&self, x: &[f64]) -> Vec<f64>;
    /// Applies the transpose.
    fn apply_transpose(&self, x: &[f64]) -> Vec<f64>;
    /// Operator dimension (square).
    fn dim(&self) -> usize;
}

/// Outcome of an iterative solve.
#[derive(Clone, Copy, Debug)]
pub struct SolveStats {
    /// Iterations performed.
    pub iterations: usize,
    /// Final residual L2 norm `‖b − A·x‖₂`.
    pub residual: f64,
    /// Whether the tolerance was reached.
    pub converged: bool,
}

/// CGNR: conjugate gradient on `AᵀA x = Aᵀ b`, valid for any nonsingular
/// operator. Returns the solution and convergence statistics.
pub fn cgnr<Op: LinearOperator>(
    op: &Op,
    b: &[f64],
    tol: f64,
    max_iters: usize,
) -> (Vec<f64>, SolveStats) {
    let n = op.dim();
    assert_eq!(b.len(), n, "cgnr: rhs dimension mismatch");
    let mut x = vec![0.0; n];
    // r = b − A x = b initially.
    let mut r = b.to_vec();
    // z = Aᵀ r (gradient of the least-squares objective), p = z.
    let mut z = op.apply_transpose(&r);
    let mut p = z.clone();
    let mut z_norm_sq = vecops::dot(&z, &z);
    let b_norm = vecops::norm2(b).max(1e-300);

    let mut stats = SolveStats { iterations: 0, residual: vecops::norm2(&r), converged: false };
    for it in 0..max_iters {
        stats.iterations = it;
        if stats.residual / b_norm < tol {
            stats.converged = true;
            break;
        }
        let ap = op.apply(&p);
        let ap_norm_sq = vecops::dot(&ap, &ap);
        if ap_norm_sq == 0.0 {
            break;
        }
        let alpha = z_norm_sq / ap_norm_sq;
        vecops::axpy(alpha, &p, &mut x);
        vecops::axpy(-alpha, &ap, &mut r);
        z = op.apply_transpose(&r);
        let z_new = vecops::dot(&z, &z);
        let beta = z_new / z_norm_sq.max(1e-300);
        for (pi, &zi) in p.iter_mut().zip(&z) {
            *pi = zi + beta * *pi;
        }
        z_norm_sq = z_new;
        stats.residual = vecops::norm2(&r);
    }
    stats.converged = stats.converged || stats.residual / b_norm < tol;
    (x, stats)
}

/// Dense Gaussian elimination with partial pivoting — the O(n³) reference
/// used by tests and tiny systems.
pub fn solve_dense(a: &Mat, b: &[f64]) -> Option<Vec<f64>> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "solve_dense: matrix must be square");
    assert_eq!(b.len(), n, "solve_dense: rhs dimension mismatch");
    let mut aug = a.clone();
    let mut rhs = b.to_vec();
    for col in 0..n {
        // Pivot.
        let mut pivot = col;
        let mut best = aug.get(col, col).abs();
        for row in col + 1..n {
            let v = aug.get(row, col).abs();
            if v > best {
                best = v;
                pivot = row;
            }
        }
        if best < 1e-300 {
            return None; // singular
        }
        if pivot != col {
            for j in 0..n {
                let tmp = aug.get(col, j);
                aug.set(col, j, aug.get(pivot, j));
                aug.set(pivot, j, tmp);
            }
            rhs.swap(col, pivot);
        }
        // Eliminate below.
        let diag = aug.get(col, col);
        for row in col + 1..n {
            let f = aug.get(row, col) / diag;
            if f == 0.0 {
                continue;
            }
            for j in col..n {
                let v = aug.get(row, j) - f * aug.get(col, j);
                aug.set(row, j, v);
            }
            rhs[row] -= f * rhs[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut s = rhs[row];
        for (j, &xj) in x.iter().enumerate().skip(row + 1) {
            s -= aug.get(row, j) * xj;
        }
        x[row] = s / aug.get(row, row);
    }
    Some(x)
}

/// Adapter exposing a dense [`Mat`] as a [`LinearOperator`].
pub struct DenseOperator<'a> {
    /// The wrapped matrix.
    pub mat: &'a Mat,
}

impl LinearOperator for DenseOperator<'_> {
    fn apply(&self, x: &[f64]) -> Vec<f64> {
        (0..self.mat.rows()).map(|i| vecops::dot(self.mat.row(i), x)).collect()
    }

    fn apply_transpose(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.mat.cols()];
        for (i, &xi) in x.iter().enumerate() {
            vecops::axpy(xi, self.mat.row(i), &mut out);
        }
        out
    }

    fn dim(&self) -> usize {
        self.mat.rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dense_solver_small_system() {
        let a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = solve_dense(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn dense_solver_detects_singular() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(solve_dense(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn cgnr_matches_dense_solution() {
        let mut rng = StdRng::seed_from_u64(101);
        // Well-conditioned diagonally dominant system.
        let n = 20;
        let mut a = Mat::uniform(n, n, 0.3, &mut rng);
        for i in 0..n {
            a.add_at(i, i, 3.0);
        }
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let expect = solve_dense(&a, &b).unwrap();
        let (x, stats) = cgnr(&DenseOperator { mat: &a }, &b, 1e-12, 500);
        assert!(stats.converged, "residual {}", stats.residual);
        for (u, v) in x.iter().zip(&expect) {
            assert!((u - v).abs() < 1e-8, "{u} vs {v}");
        }
    }

    #[test]
    fn cgnr_handles_nonsymmetric_operators() {
        let a = Mat::from_rows(&[&[1.0, 0.9, 0.0], &[0.0, 1.0, 0.9], &[0.0, 0.0, 1.0]]);
        let b = [1.0, 1.0, 1.0];
        let expect = solve_dense(&a, &b).unwrap();
        let (x, stats) = cgnr(&DenseOperator { mat: &a }, &b, 1e-13, 200);
        assert!(stats.converged);
        for (u, v) in x.iter().zip(&expect) {
            assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn cgnr_zero_rhs_gives_zero() {
        let a = Mat::eye(4);
        let (x, stats) = cgnr(&DenseOperator { mat: &a }, &[0.0; 4], 1e-12, 10);
        assert!(stats.converged);
        assert!(x.iter().all(|&v| v == 0.0));
    }
}
