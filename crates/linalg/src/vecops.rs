//! Vector kernels shared across the workspace.

use rand::Rng;

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// L1 norm.
#[inline]
pub fn norm1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// L∞ norm.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |acc, v| acc.max(v.abs()))
}

/// Euclidean distance between two slices.
#[inline]
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
}

/// Scales `x` in place by `alpha`.
#[inline]
pub fn scale(x: &mut [f64], alpha: f64) {
    for v in x {
        *v *= alpha;
    }
}

/// Rescales `x` so that its L2 norm is at most `max_norm` (gradient clipping).
/// Returns the original norm.
pub fn clip_norm2(x: &mut [f64], max_norm: f64) -> f64 {
    let n = norm2(x);
    if n > max_norm && n > 0.0 {
        scale(x, max_norm / n);
    }
    n
}

/// Index of the maximum element (first on ties). Returns 0 for empty input.
pub fn argmax(x: &[f64]) -> usize {
    let mut best = 0;
    let mut best_v = f64::NEG_INFINITY;
    for (i, &v) in x.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

/// Mean of a slice (0 for empty).
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f64>() / x.len() as f64
    }
}

/// Sample standard deviation (0 for fewer than two items).
pub fn std_dev(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let m = mean(x);
    (x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (x.len() - 1) as f64).sqrt()
}

/// Samples a standard normal variate via Box–Muller (polar-free form).
///
/// Kept here (rather than depending on `rand_distr`) so the whole workspace
/// shares one normal sampler built only on the sanctioned `rand` crate.
pub fn sample_std_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Box–Muller: u1 ∈ (0,1] avoids ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Numerically stable softmax of a slice, written into `out`.
pub fn softmax_into(x: &[f64], out: &mut [f64]) {
    debug_assert_eq!(x.len(), out.len());
    let max = x.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
    let mut sum = 0.0;
    for (o, &v) in out.iter_mut().zip(x) {
        let e = (v - max).exp();
        *o = e;
        sum += e;
    }
    if sum > 0.0 {
        for o in out.iter_mut() {
            *o /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn norms() {
        let x = [3.0, -4.0];
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(norm1(&x), 7.0);
        assert_eq!(norm_inf(&x), 4.0);
    }

    #[test]
    fn clip_reduces_long_vectors_only() {
        let mut x = vec![3.0, 4.0];
        let orig = clip_norm2(&mut x, 1.0);
        assert_eq!(orig, 5.0);
        assert!((norm2(&x) - 1.0).abs() < 1e-12);

        let mut y = vec![0.3, 0.4];
        clip_norm2(&mut y, 1.0);
        assert_eq!(y, vec![0.3, 0.4]); // unchanged
    }

    #[test]
    fn argmax_first_on_tie() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[]), 0);
    }

    #[test]
    fn mean_and_std() {
        let x = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&x) - 5.0).abs() < 1e-12);
        assert!((std_dev(&x) - (32.0_f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn std_normal_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_std_normal(&mut rng)).collect();
        let m = mean(&samples);
        let s = std_dev(&samples);
        assert!(m.abs() < 0.01, "mean {m}");
        assert!((s - 1.0).abs() < 0.01, "std {s}");
    }

    #[test]
    fn softmax_sums_to_one_and_is_shift_invariant() {
        let x = [1.0, 2.0, 3.0];
        let mut a = [0.0; 3];
        let mut b = [0.0; 3];
        softmax_into(&x, &mut a);
        softmax_into(&[1001.0, 1002.0, 1003.0], &mut b);
        assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn dist2_symmetry() {
        let a = [1.0, 2.0];
        let b = [4.0, 6.0];
        assert_eq!(dist2(&a, &b), 5.0);
        assert_eq!(dist2(&b, &a), 5.0);
    }
}
