//! Vector kernels shared across the workspace, generic over the element
//! [`Scalar`] (f64 / f32).
//!
//! The reduction kernels ([`dot`], [`norm2`], [`dist2`]) are unrolled over
//! lane-width chunks with one independent accumulator per lane, breaking
//! the serial floating-point dependency chain so LLVM autovectorizes them
//! and the out-of-order core overlaps the adds. The lane width is chosen
//! **per dtype** — [`LANES`] (8) for f64, [`LANES_F32`] (16) for f32 — so an
//! f32 slice fills the same vector registers with twice the elements instead
//! of wasting half of each. The lane structure is a fixed function of the
//! input length and dtype — never of any thread partition — so results are
//! deterministic for a given input, though they differ from a strictly
//! sequential sum by reassociation (callers compare against naive references
//! with a relative tolerance, see `gcon_linalg` crate docs).
//!
//! [`dot`], [`axpy`], [`norm2`] and [`dist2`] — the four primitives sitting
//! in solver inner loops — are compiled at every
//! [`gcon_runtime::KernelTier`] through [`gcon_runtime::tier_dispatch!`].
//! `#[target_feature]` cannot apply to generic functions, so the dispatch
//! plumbing is *per dtype*: one `#[inline(always)]` generic body (e.g.
//! `dot_body`), instantiated by concrete `_f64`/`_f32` wrappers that go
//! through the macro, selected by the [`Scalar`] kernel hooks. Within one
//! dtype, all tiers execute the identical arithmetic (strict FP semantics),
//! so the tier never changes a result.
//!
//! Length contracts are enforced with `assert_eq!` at the kernel boundary in
//! all build profiles: a silent `zip` truncation on mismatched lengths would
//! corrupt downstream numerics (the former `debug_assert_eq!` let release
//! builds do exactly that).

use crate::scalar::Scalar;
use rand::Rng;

/// Unroll width of the f64 reduction kernels: chunks of this many elements
/// get one independent accumulator per lane.
pub const LANES: usize = 8;

/// Unroll width of the f32 reduction kernels — double [`LANES`], matching
/// the doubled element count per SIMD register at half the element width.
pub const LANES_F32: usize = 16;

/// Reduces `L` lane accumulators pairwise, adjacent pairs bottom-up (fixed
/// tree, part of the deterministic accumulation order; for `L = 8` this is
/// exactly `((a0+a1)+(a2+a3)) + ((a4+a5)+(a6+a7))`).
#[inline(always)]
pub(crate) fn reduce_lanes<S: Scalar, const L: usize>(acc: [S; L]) -> S {
    let mut buf = acc;
    let mut width = L;
    while width > 1 {
        width /= 2;
        for i in 0..width {
            buf[i] = buf[2 * i] + buf[2 * i + 1];
        }
    }
    buf[0]
}

#[inline(always)]
fn dot_body<S: Scalar, const L: usize>(a: &[S], b: &[S]) -> S {
    assert_eq!(a.len(), b.len(), "dot: length mismatch {} vs {}", a.len(), b.len());
    let main = a.len() - a.len() % L;
    let mut acc = [S::ZERO; L];
    for (ca, cb) in a[..main].chunks_exact(L).zip(b[..main].chunks_exact(L)) {
        for l in 0..L {
            acc[l] += ca[l] * cb[l];
        }
    }
    let mut s = reduce_lanes(acc);
    for (x, y) in a[main..].iter().zip(&b[main..]) {
        s += *x * *y;
    }
    s
}

#[inline(always)]
fn axpy_body<S: Scalar, const L: usize>(alpha: S, x: &[S], y: &mut [S]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch {} vs {}", x.len(), y.len());
    let main = x.len() - x.len() % L;
    for (cy, cx) in y[..main].chunks_exact_mut(L).zip(x[..main].chunks_exact(L)) {
        for l in 0..L {
            cy[l] += alpha * cx[l];
        }
    }
    for (yi, xi) in y[main..].iter_mut().zip(&x[main..]) {
        *yi += alpha * *xi;
    }
}

#[inline(always)]
fn norm2_body<S: Scalar, const L: usize>(x: &[S]) -> S {
    let main = x.len() - x.len() % L;
    let mut acc = [S::ZERO; L];
    for c in x[..main].chunks_exact(L) {
        for l in 0..L {
            acc[l] += c[l] * c[l];
        }
    }
    let mut s = reduce_lanes(acc);
    for v in &x[main..] {
        s += *v * *v;
    }
    s.sqrt()
}

#[inline(always)]
fn dist2_body<S: Scalar, const L: usize>(a: &[S], b: &[S]) -> S {
    assert_eq!(a.len(), b.len(), "dist2: length mismatch {} vs {}", a.len(), b.len());
    let main = a.len() - a.len() % L;
    let mut acc = [S::ZERO; L];
    for (ca, cb) in a[..main].chunks_exact(L).zip(b[..main].chunks_exact(L)) {
        for l in 0..L {
            let d = ca[l] - cb[l];
            acc[l] += d * d;
        }
    }
    let mut s = reduce_lanes(acc);
    for (x, y) in a[main..].iter().zip(&b[main..]) {
        s += (*x - *y) * (*x - *y);
    }
    s.sqrt()
}

// Per-dtype tier-dispatched instantiations. Each `_impl` pins the generic
// body at that dtype's lane width; `tier_dispatch!` then compiles it at
// every SIMD tier. The [`Scalar`] kernel hooks route the generic public
// fronts below to these.

gcon_runtime::tier_dispatch! {
    /// f64 instantiation of the [`dot`] kernel.
    #[inline]
    pub(crate) fn dot_f64 / dot_f64_avx2 / dot_f64_avx512 / dot_f64_impl(a: &[f64], b: &[f64]) -> f64
}

#[inline(always)]
fn dot_f64_impl(a: &[f64], b: &[f64]) -> f64 {
    dot_body::<f64, LANES>(a, b)
}

gcon_runtime::tier_dispatch! {
    /// f32 instantiation of the [`dot`] kernel (doubled lanes).
    #[inline]
    pub(crate) fn dot_f32 / dot_f32_avx2 / dot_f32_avx512 / dot_f32_impl(a: &[f32], b: &[f32]) -> f32
}

#[inline(always)]
fn dot_f32_impl(a: &[f32], b: &[f32]) -> f32 {
    dot_body::<f32, LANES_F32>(a, b)
}

gcon_runtime::tier_dispatch! {
    /// f64 instantiation of the [`axpy`] kernel.
    #[inline]
    pub(crate) fn axpy_f64 / axpy_f64_avx2 / axpy_f64_avx512 / axpy_f64_impl(alpha: f64, x: &[f64], y: &mut [f64])
}

#[inline(always)]
fn axpy_f64_impl(alpha: f64, x: &[f64], y: &mut [f64]) {
    axpy_body::<f64, LANES>(alpha, x, y)
}

gcon_runtime::tier_dispatch! {
    /// f32 instantiation of the [`axpy`] kernel (doubled lanes).
    #[inline]
    pub(crate) fn axpy_f32 / axpy_f32_avx2 / axpy_f32_avx512 / axpy_f32_impl(alpha: f32, x: &[f32], y: &mut [f32])
}

#[inline(always)]
fn axpy_f32_impl(alpha: f32, x: &[f32], y: &mut [f32]) {
    axpy_body::<f32, LANES_F32>(alpha, x, y)
}

gcon_runtime::tier_dispatch! {
    /// f64 instantiation of the [`norm2`] kernel.
    #[inline]
    pub(crate) fn norm2_f64 / norm2_f64_avx2 / norm2_f64_avx512 / norm2_f64_impl(x: &[f64]) -> f64
}

#[inline(always)]
fn norm2_f64_impl(x: &[f64]) -> f64 {
    norm2_body::<f64, LANES>(x)
}

gcon_runtime::tier_dispatch! {
    /// f32 instantiation of the [`norm2`] kernel (doubled lanes).
    #[inline]
    pub(crate) fn norm2_f32 / norm2_f32_avx2 / norm2_f32_avx512 / norm2_f32_impl(x: &[f32]) -> f32
}

#[inline(always)]
fn norm2_f32_impl(x: &[f32]) -> f32 {
    norm2_body::<f32, LANES_F32>(x)
}

gcon_runtime::tier_dispatch! {
    /// f64 instantiation of the [`dist2`] kernel.
    #[inline]
    pub(crate) fn dist2_f64 / dist2_f64_avx2 / dist2_f64_avx512 / dist2_f64_impl(a: &[f64], b: &[f64]) -> f64
}

#[inline(always)]
fn dist2_f64_impl(a: &[f64], b: &[f64]) -> f64 {
    dist2_body::<f64, LANES>(a, b)
}

gcon_runtime::tier_dispatch! {
    /// f32 instantiation of the [`dist2`] kernel (doubled lanes).
    #[inline]
    pub(crate) fn dist2_f32 / dist2_f32_avx2 / dist2_f32_avx512 / dist2_f32_impl(a: &[f32], b: &[f32]) -> f32
}

#[inline(always)]
fn dist2_f32_impl(a: &[f32], b: &[f32]) -> f32 {
    dist2_body::<f32, LANES_F32>(a, b)
}

/// Dot product of two equal-length slices (tier-dispatched per dtype).
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
pub fn dot<S: Scalar>(a: &[S], b: &[S]) -> S {
    S::kernel_dot(a, b)
}

/// `y += alpha * x` (tier-dispatched per dtype).
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
pub fn axpy<S: Scalar>(alpha: S, x: &[S], y: &mut [S]) {
    S::kernel_axpy(alpha, x, y)
}

/// Euclidean (L2) norm (tier-dispatched per dtype).
#[inline]
pub fn norm2<S: Scalar>(x: &[S]) -> S {
    S::kernel_norm2(x)
}

/// Euclidean distance between two slices (tier-dispatched per dtype).
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
pub fn dist2<S: Scalar>(a: &[S], b: &[S]) -> S {
    S::kernel_dist2(a, b)
}

/// L1 norm.
#[inline]
pub fn norm1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// L∞ norm.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |acc, v| acc.max(v.abs()))
}

/// Scales `x` in place by `alpha`.
#[inline]
pub fn scale(x: &mut [f64], alpha: f64) {
    for v in x {
        *v *= alpha;
    }
}

/// Rescales `x` so that its L2 norm is at most `max_norm` (gradient clipping).
/// Returns the original norm.
pub fn clip_norm2(x: &mut [f64], max_norm: f64) -> f64 {
    let n = norm2(x);
    if n > max_norm && n > 0.0 {
        scale(x, max_norm / n);
    }
    n
}

/// Index of the maximum element (first on ties). Returns 0 for empty input.
///
/// Generic over the dtype; since f32 → f64 widening is monotone, the argmax
/// of an f32 logits row equals the argmax of its widened copy.
pub fn argmax<S: Scalar>(x: &[S]) -> usize {
    let mut best = 0;
    let mut best_v = S::from_f64(f64::NEG_INFINITY);
    for (i, &v) in x.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

/// Mean of a slice (0 for empty).
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f64>() / x.len() as f64
    }
}

/// Sample standard deviation (0 for fewer than two items).
pub fn std_dev(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let m = mean(x);
    (x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (x.len() - 1) as f64).sqrt()
}

/// Samples a standard normal variate via Box–Muller (polar-free form).
///
/// Kept here (rather than depending on `rand_distr`) so the whole workspace
/// shares one normal sampler built only on the sanctioned `rand` crate.
pub fn sample_std_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Box–Muller: u1 ∈ (0,1] avoids ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Numerically stable softmax of a slice, written into `out`.
pub fn softmax_into(x: &[f64], out: &mut [f64]) {
    debug_assert_eq!(x.len(), out.len());
    let max = x.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
    let mut sum = 0.0;
    for (o, &v) in out.iter_mut().zip(x) {
        let e = (v - max).exp();
        *o = e;
        sum += e;
    }
    if sum > 0.0 {
        for o in out.iter_mut() {
            *o /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn norms() {
        let x = [3.0, -4.0];
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(norm1(&x), 7.0);
        assert_eq!(norm_inf(&x), 4.0);
    }

    #[test]
    fn clip_reduces_long_vectors_only() {
        let mut x = vec![3.0, 4.0];
        let orig = clip_norm2(&mut x, 1.0);
        assert_eq!(orig, 5.0);
        assert!((norm2(&x) - 1.0).abs() < 1e-12);

        let mut y = vec![0.3, 0.4];
        clip_norm2(&mut y, 1.0);
        assert_eq!(y, vec![0.3, 0.4]); // unchanged
    }

    #[test]
    fn argmax_first_on_tie() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax::<f64>(&[]), 0);
    }

    #[test]
    fn argmax_agrees_across_dtypes() {
        let x64 = [0.25, -1.5, 0.75, 0.75, 0.5];
        let x32: Vec<f32> = x64.iter().map(|&v| v as f32).collect();
        assert_eq!(argmax(&x64), argmax(&x32));
        assert_eq!(argmax(&x32), 2);
    }

    #[test]
    fn mean_and_std() {
        let x = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&x) - 5.0).abs() < 1e-12);
        assert!((std_dev(&x) - (32.0_f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn std_normal_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_std_normal(&mut rng)).collect();
        let m = mean(&samples);
        let s = std_dev(&samples);
        assert!(m.abs() < 0.01, "mean {m}");
        assert!((s - 1.0).abs() < 0.01, "std {s}");
    }

    #[test]
    fn softmax_sums_to_one_and_is_shift_invariant() {
        let x = [1.0, 2.0, 3.0];
        let mut a = [0.0; 3];
        let mut b = [0.0; 3];
        softmax_into(&x, &mut a);
        softmax_into(&[1001.0, 1002.0, 1003.0], &mut b);
        assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn dist2_symmetry() {
        let a = [1.0, 2.0];
        let b = [4.0, 6.0];
        assert_eq!(dist2(&a, &b), 5.0);
        assert_eq!(dist2(&b, &a), 5.0);
    }

    /// The loop-based pairwise reduce preserves the documented fixed tree.
    #[test]
    fn reduce_lanes_matches_fixed_tree() {
        let acc = [1e16, 1.0, -1e16, 3.0, 1e-8, 2.0, -1e-8, 4.0];
        let tree =
            ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]));
        assert_eq!(reduce_lanes::<f64, 8>(acc).to_bits(), tree.to_bits());
    }

    /// The unrolled reductions agree with a naive sequential sum to relative
    /// tolerance on lengths straddling the lane width (0, 1, tails, exact
    /// multiples).
    #[test]
    fn unrolled_kernels_match_naive_over_awkward_lengths() {
        let mut rng = StdRng::seed_from_u64(9);
        for n in [0usize, 1, 2, 7, 8, 9, 15, 16, 17, 63, 64, 65, 100] {
            let a: Vec<f64> = (0..n).map(|_| rand::Rng::gen_range(&mut rng, -1.0..1.0)).collect();
            let b: Vec<f64> = (0..n).map(|_| rand::Rng::gen_range(&mut rng, -1.0..1.0)).collect();
            let dot_naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            let tol = 1e-12 * dot_naive.abs().max(1.0);
            assert!((dot(&a, &b) - dot_naive).abs() <= tol, "dot n={n}");
            let n2_naive = a.iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!((norm2(&a) - n2_naive).abs() <= 1e-12 * n2_naive.max(1.0), "norm2 n={n}");
            let d2_naive = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt();
            assert!((dist2(&a, &b) - d2_naive).abs() <= 1e-12 * d2_naive.max(1.0), "dist2 n={n}");
            let mut y = b.clone();
            axpy(0.37, &a, &mut y);
            for ((yi, bi), ai) in y.iter().zip(&b).zip(&a) {
                assert!((yi - (bi + 0.37 * ai)).abs() <= 1e-15, "axpy n={n}");
            }
        }
    }

    /// Same sweep for the f32 instantiations (f32 lane width is 16, so the
    /// lengths straddle its chunking too), with naive references accumulated
    /// in f32 to keep the comparison within one dtype.
    #[test]
    fn f32_kernels_match_naive_over_awkward_lengths() {
        let mut rng = StdRng::seed_from_u64(10);
        for n in [0usize, 1, 2, 15, 16, 17, 31, 32, 33, 100] {
            let a: Vec<f32> =
                (0..n).map(|_| rand::Rng::gen_range(&mut rng, -1.0f32..1.0)).collect();
            let b: Vec<f32> =
                (0..n).map(|_| rand::Rng::gen_range(&mut rng, -1.0f32..1.0)).collect();
            let dot_naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            let tol = 1e-4 * dot_naive.abs().max(1.0);
            assert!((dot(&a, &b) - dot_naive).abs() <= tol, "dot n={n}");
            let n2_naive = a.iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((norm2(&a) - n2_naive).abs() <= 1e-4 * n2_naive.max(1.0), "norm2 n={n}");
            let d2_naive = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum::<f32>().sqrt();
            assert!((dist2(&a, &b) - d2_naive).abs() <= 1e-4 * d2_naive.max(1.0), "dist2 n={n}");
            let mut y = b.clone();
            axpy(0.37f32, &a, &mut y);
            for ((yi, bi), ai) in y.iter().zip(&b).zip(&a) {
                assert!((yi - (bi + 0.37 * ai)).abs() <= 1e-6, "axpy n={n}");
            }
        }
    }

    /// Length mismatches must panic in every build profile — a silent `zip`
    /// truncation would corrupt solver numerics.
    #[test]
    #[should_panic(expected = "dot: length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "axpy: length mismatch")]
    fn axpy_length_mismatch_panics() {
        let mut y = [0.0; 3];
        axpy(1.0, &[1.0, 2.0], &mut y);
    }

    #[test]
    #[should_panic(expected = "dist2: length mismatch")]
    fn dist2_length_mismatch_panics() {
        let _ = dist2(&[1.0], &[1.0, 2.0]);
    }
}
