//! The sealed [`Scalar`] abstraction behind the dtype-generic compute
//! substrate.
//!
//! Every dense kernel in this crate ([`crate::vecops`], [`crate::ops`]) and
//! the sparse kernels in `gcon-graph` are generic over a [`Scalar`] — today
//! `f64` or `f32`, sealed so the per-dtype kernel specializations below stay
//! exhaustive. The trait does **not** route arithmetic through dynamic
//! dispatch: generic fronts call the `kernel_*` hooks, and each hook is a
//! concrete, per-dtype function compiled through
//! [`gcon_runtime::tier_dispatch!`] at every SIMD tier, with tile widths and
//! unroll factors chosen *per dtype* (f32 kernels use doubled lane counts —
//! see [`crate::vecops::LANES_F32`], [`crate::ops::NR_F32`]) so halving the
//! element width genuinely doubles the SIMD lanes instead of wasting them.
//!
//! # Precision policy (workspace-wide)
//!
//! - **Generic (f64 + f32):** `Mat`, the vecops reductions, the GEMM family,
//!   `Csr` spmm/spmv/spmv_t, the serving head (`gcon-nn::HeadWorkspace`,
//!   `gcon-serve`).
//! - **f64-only:** training, the `gcon-dp` accountants and DP calibration
//!   (Theorem 1's parameter chain is numerically delicate), and the dense
//!   solvers (`solve`, `eigen`, `lu`).
//! - **Determinism is per-dtype:** within one dtype, results are bitwise
//!   identical across kernel tiers and `GCON_THREADS` (same fixed
//!   accumulation orders as ever). Across dtypes no bit relation holds —
//!   f32 results carry f32 rounding; accuracy contracts are stated and
//!   tested as relative drift bounds (see `gcon-serve`).
//!
//! `from_f64`/`to_f64` are the **identity for `f64`**, so the generic code
//! paths are bit-for-bit the pre-genericization f64 code paths.

use crate::Mat;

/// Element dtype tag for the two sealed [`Scalar`] types.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dtype {
    /// IEEE-754 binary64 (`f64`) — the default everywhere.
    F64,
    /// IEEE-754 binary32 (`f32`) — the serving-store option.
    F32,
}

impl Dtype {
    /// Lowercase name (`f64` / `f32`), for logs, bench labels, and env knobs.
    pub fn name(self) -> &'static str {
        match self {
            Dtype::F64 => "f64",
            Dtype::F32 => "f32",
        }
    }

    /// Bytes per element (8 / 4).
    pub fn size_bytes(self) -> usize {
        match self {
            Dtype::F64 => 8,
            Dtype::F32 => 4,
        }
    }
}

impl std::fmt::Display for Dtype {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

mod sealed {
    /// Seals [`super::Scalar`]: the per-dtype kernel specializations in
    /// `vecops`/`ops` (and `gcon-graph`'s CSR kernels) are written for
    /// exactly `f64` and `f32`.
    pub trait Sealed {}
    impl Sealed for f64 {}
    impl Sealed for f32 {}
}

/// A floating-point element type the compute substrate is generic over.
///
/// Sealed (`f64` and `f32` only). The `kernel_*` hooks bind the generic
/// fronts in [`crate::vecops`] / [`crate::ops`] to concrete per-dtype
/// monomorphizations that go through [`gcon_runtime::tier_dispatch!`] — the
/// hooks are implementation plumbing, not a user-facing API; call the free
/// functions instead.
pub trait Scalar:
    sealed::Sealed
    + Copy
    + Default
    + PartialEq
    + PartialOrd
    + Send
    + Sync
    + 'static
    + std::fmt::Debug
    + std::fmt::Display
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::Div<Output = Self>
    + std::ops::Neg<Output = Self>
    + std::ops::AddAssign
    + std::ops::SubAssign
    + std::ops::MulAssign
    + std::ops::DivAssign
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// The dtype tag of this type.
    const DTYPE: Dtype;
    /// Packed-panel width of this dtype's `matmul` kernel (columns of `B`
    /// per panel): [`crate::ops::NR`] for f64, [`crate::ops::NR_F32`] for
    /// f32. Sizes the K-block scratch panel the generic front acquires.
    const GEMM_NR: usize;

    /// Converts from `f64`, rounding to nearest for `f32` (identity for
    /// `f64`).
    fn from_f64(v: f64) -> Self;
    /// Widens to `f64` (exact for both dtypes; identity for `f64`).
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// True when neither NaN nor infinite.
    fn is_finite(self) -> bool;

    /// Dtype-aware thread-local scratch: `gcon_runtime::with_scratch_f64` /
    /// `with_scratch_f32`, with the same exact-length, unspecified-contents,
    /// re-entrant contract.
    fn with_scratch<R>(len: usize, f: impl FnOnce(&mut [Self]) -> R) -> R;

    /// Tier-dispatched dot product (bound of [`crate::vecops::dot`]).
    fn kernel_dot(a: &[Self], b: &[Self]) -> Self;
    /// Tier-dispatched `y += alpha·x` (bound of [`crate::vecops::axpy`]).
    fn kernel_axpy(alpha: Self, x: &[Self], y: &mut [Self]);
    /// Tier-dispatched L2 norm (bound of [`crate::vecops::norm2`]).
    fn kernel_norm2(x: &[Self]) -> Self;
    /// Tier-dispatched Euclidean distance (bound of
    /// [`crate::vecops::dist2`]).
    fn kernel_dist2(a: &[Self], b: &[Self]) -> Self;
    /// Tier-dispatched panel-loop stage of the K-blocked GEMM (bound of
    /// [`crate::ops::matmul_into`]); `panel` is the packed `KC×GEMM_NR`
    /// scratch the generic front acquired via [`Scalar::with_scratch`].
    fn kernel_matmul_panel(
        a: &Mat<Self>,
        b: &Mat<Self>,
        out: &mut [Self],
        start: usize,
        end: usize,
        panel: &mut [Self],
    );
    /// Tier-dispatched `AᵀB` block kernel (bound of
    /// [`crate::ops::t_matmul_into`]).
    fn kernel_t_matmul_block(
        a: &Mat<Self>,
        b: &Mat<Self>,
        out: &mut [Self],
        k0: usize,
        k1: usize,
        skip: &[bool],
    );
    /// Tier-dispatched `A·Bᵀ` block kernel (bound of
    /// [`crate::ops::matmul_bt_into`]).
    fn kernel_matmul_bt_block(a: &Mat<Self>, b: &Mat<Self>, block: &mut [Self], start: usize);
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const DTYPE: Dtype = Dtype::F64;
    const GEMM_NR: usize = crate::ops::NR;

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }

    #[inline]
    fn with_scratch<R>(len: usize, f: impl FnOnce(&mut [Self]) -> R) -> R {
        gcon_runtime::with_scratch_f64(len, f)
    }

    #[inline]
    fn kernel_dot(a: &[Self], b: &[Self]) -> Self {
        crate::vecops::dot_f64(a, b)
    }
    #[inline]
    fn kernel_axpy(alpha: Self, x: &[Self], y: &mut [Self]) {
        crate::vecops::axpy_f64(alpha, x, y)
    }
    #[inline]
    fn kernel_norm2(x: &[Self]) -> Self {
        crate::vecops::norm2_f64(x)
    }
    #[inline]
    fn kernel_dist2(a: &[Self], b: &[Self]) -> Self {
        crate::vecops::dist2_f64(a, b)
    }
    #[inline]
    fn kernel_matmul_panel(
        a: &Mat<Self>,
        b: &Mat<Self>,
        out: &mut [Self],
        start: usize,
        end: usize,
        panel: &mut [Self],
    ) {
        crate::ops::matmul_panel_f64(a, b, out, start, end, panel)
    }
    #[inline]
    fn kernel_t_matmul_block(
        a: &Mat<Self>,
        b: &Mat<Self>,
        out: &mut [Self],
        k0: usize,
        k1: usize,
        skip: &[bool],
    ) {
        crate::ops::t_matmul_block_f64(a, b, out, k0, k1, skip)
    }
    #[inline]
    fn kernel_matmul_bt_block(a: &Mat<Self>, b: &Mat<Self>, block: &mut [Self], start: usize) {
        crate::ops::matmul_bt_block_f64(a, b, block, start)
    }
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const DTYPE: Dtype = Dtype::F32;
    const GEMM_NR: usize = crate::ops::NR_F32;

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }

    #[inline]
    fn with_scratch<R>(len: usize, f: impl FnOnce(&mut [Self]) -> R) -> R {
        gcon_runtime::with_scratch_f32(len, f)
    }

    #[inline]
    fn kernel_dot(a: &[Self], b: &[Self]) -> Self {
        crate::vecops::dot_f32(a, b)
    }
    #[inline]
    fn kernel_axpy(alpha: Self, x: &[Self], y: &mut [Self]) {
        crate::vecops::axpy_f32(alpha, x, y)
    }
    #[inline]
    fn kernel_norm2(x: &[Self]) -> Self {
        crate::vecops::norm2_f32(x)
    }
    #[inline]
    fn kernel_dist2(a: &[Self], b: &[Self]) -> Self {
        crate::vecops::dist2_f32(a, b)
    }
    #[inline]
    fn kernel_matmul_panel(
        a: &Mat<Self>,
        b: &Mat<Self>,
        out: &mut [Self],
        start: usize,
        end: usize,
        panel: &mut [Self],
    ) {
        crate::ops::matmul_panel_f32(a, b, out, start, end, panel)
    }
    #[inline]
    fn kernel_t_matmul_block(
        a: &Mat<Self>,
        b: &Mat<Self>,
        out: &mut [Self],
        k0: usize,
        k1: usize,
        skip: &[bool],
    ) {
        crate::ops::t_matmul_block_f32(a, b, out, k0, k1, skip)
    }
    #[inline]
    fn kernel_matmul_bt_block(a: &Mat<Self>, b: &Mat<Self>, block: &mut [Self], start: usize) {
        crate::ops::matmul_bt_block_f32(a, b, block, start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_tags_and_names() {
        assert_eq!(<f64 as Scalar>::DTYPE, Dtype::F64);
        assert_eq!(<f32 as Scalar>::DTYPE, Dtype::F32);
        assert_eq!(Dtype::F64.name(), "f64");
        assert_eq!(Dtype::F32.name(), "f32");
        assert_eq!(Dtype::F64.to_string(), "f64");
        assert_eq!(Dtype::F64.size_bytes(), 8);
        assert_eq!(Dtype::F32.size_bytes(), 4);
    }

    #[test]
    fn f64_conversions_are_the_identity() {
        for v in [0.0, -1.5, f64::MAX, f64::MIN_POSITIVE, 1.0 + f64::EPSILON] {
            assert_eq!(<f64 as Scalar>::from_f64(v).to_bits(), v.to_bits());
            assert_eq!(Scalar::to_f64(v).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn f32_roundtrip_is_exact_from_f32() {
        // f32 → f64 → f32 is lossless; f64 → f32 rounds to nearest.
        for v in [0.0f32, -2.75, f32::MAX, f32::MIN_POSITIVE] {
            assert_eq!(<f32 as Scalar>::from_f64(v.to_f64()).to_bits(), v.to_bits());
        }
        assert_eq!(<f32 as Scalar>::from_f64(0.1), 0.1f32);
    }

    #[test]
    fn scratch_is_dtype_separated() {
        <f64 as Scalar>::with_scratch(4, |a| {
            a.fill(1.0);
            <f32 as Scalar>::with_scratch(4, |b| b.fill(2.0));
            assert!(a.iter().all(|&v| v == 1.0));
        });
    }
}
