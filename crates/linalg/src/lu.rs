#![allow(clippy::needless_range_loop)] // index-parallel loops mirror the math
//! LU decomposition with partial pivoting, and the dense solve / inverse /
//! determinant routines built on it.
//!
//! The GCON pipeline needs these in two places:
//!
//! 1. **Exact PPR.** The paper's PPR propagation matrix is
//!    `R∞ = α (I − (1−α) Ã)⁻¹` (Eq. 5). The production path never
//!    materializes this inverse (it runs the fixed-point recursion), but the
//!    test suite cross-validates the recursion against the exact dense
//!    inverse on small graphs, which requires a dense LU solve.
//! 2. **Theorem-1 verification.** `gcon-core::verify` computes the Jacobian
//!    matrices `B₁ = Σ zᵢzᵢᵀ ℓ″ + n₁(Λ+Λ′)I` of Lemma 7 numerically and needs
//!    determinants and inverses of small dense matrices.

use crate::Mat;

/// A partial-pivoting LU factorization `P·A = L·U` of a square matrix.
///
/// `L` is unit lower triangular and `U` upper triangular; both are packed
/// into a single matrix (`L` strictly below the diagonal, `U` on and above).
/// `perm` records the row permutation; `sign` is the permutation's parity
/// (+1.0 or −1.0), used for the determinant.
#[derive(Debug, Clone)]
pub struct Lu {
    packed: Mat,
    perm: Vec<usize>,
    sign: f64,
    singular: bool,
}

/// Relative pivot threshold below which the matrix is declared singular.
const PIVOT_TOL: f64 = 1e-13;

impl Lu {
    /// Factorizes a square matrix. Panics if `a` is not square.
    pub fn new(a: &Mat) -> Self {
        assert_eq!(a.rows(), a.cols(), "Lu::new requires a square matrix");
        let n = a.rows();
        let mut packed = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        let mut singular = false;

        // Scale factor per row for scaled partial pivoting: guards against
        // badly row-scaled inputs (the Theorem-1 Hessians mix n1·Λ terms with
        // O(1) feature outer products).
        let scales: Vec<f64> = (0..n)
            .map(|i| {
                let s = packed.row(i).iter().fold(0.0f64, |m, &v| m.max(v.abs()));
                if s > 0.0 {
                    s
                } else {
                    1.0
                }
            })
            .collect();

        for k in 0..n {
            // Find the pivot row by scaled magnitude.
            let mut pivot_row = k;
            let mut pivot_mag = packed.get(k, k).abs() / scales[perm[k]];
            for i in (k + 1)..n {
                let mag = packed.get(i, k).abs() / scales[perm[i]];
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = i;
                }
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = packed.get(k, j);
                    packed.set(k, j, packed.get(pivot_row, j));
                    packed.set(pivot_row, j, tmp);
                }
                perm.swap(k, pivot_row);
                sign = -sign;
            }
            let pivot = packed.get(k, k);
            if pivot.abs() <= PIVOT_TOL * scales[perm[k]] {
                singular = true;
                continue;
            }
            for i in (k + 1)..n {
                let factor = packed.get(i, k) / pivot;
                packed.set(i, k, factor);
                if factor != 0.0 {
                    for j in (k + 1)..n {
                        let v = packed.get(i, j) - factor * packed.get(k, j);
                        packed.set(i, j, v);
                    }
                }
            }
        }

        Self { packed, perm, sign, singular }
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.packed.rows()
    }

    /// True when a pivot collapsed below tolerance during factorization.
    pub fn is_singular(&self) -> bool {
        self.singular
    }

    /// Determinant of the original matrix: `sign · Π U_kk`.
    pub fn det(&self) -> f64 {
        if self.singular {
            return 0.0;
        }
        let n = self.dim();
        let mut d = self.sign;
        for k in 0..n {
            d *= self.packed.get(k, k);
        }
        d
    }

    /// Log of the absolute determinant, `Σ ln |U_kk|`, which stays finite on
    /// matrices whose determinant under/overflows f64 (the `dc × dc` block
    /// Jacobians of Lemma 7 routinely do).
    ///
    /// Returns `f64::NEG_INFINITY` for singular matrices.
    pub fn ln_abs_det(&self) -> f64 {
        if self.singular {
            return f64::NEG_INFINITY;
        }
        let n = self.dim();
        let mut s = 0.0;
        for k in 0..n {
            s += self.packed.get(k, k).abs().ln();
        }
        s
    }

    /// Solves `A x = b` for a single right-hand side. Returns `None` if the
    /// factorization found the matrix singular.
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        if self.singular {
            return None;
        }
        let n = self.dim();
        assert_eq!(b.len(), n, "rhs length must match matrix dimension");
        // Apply the permutation, then forward- and back-substitute.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut s = x[i];
            for j in 0..i {
                s -= self.packed.get(i, j) * x[j];
            }
            x[i] = s;
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= self.packed.get(i, j) * x[j];
            }
            x[i] = s / self.packed.get(i, i);
        }
        Some(x)
    }

    /// Solves `A X = B` column by column.
    pub fn solve_mat(&self, b: &Mat) -> Option<Mat> {
        if self.singular {
            return None;
        }
        let n = self.dim();
        assert_eq!(b.rows(), n, "rhs rows must match matrix dimension");
        let mut out = Mat::zeros(n, b.cols());
        let mut col = vec![0.0; n];
        for j in 0..b.cols() {
            for i in 0..n {
                col[i] = b.get(i, j);
            }
            let x = self.solve(&col)?;
            for i in 0..n {
                out.set(i, j, x[i]);
            }
        }
        Some(out)
    }

    /// Inverse of the original matrix, or `None` if singular.
    pub fn inverse(&self) -> Option<Mat> {
        self.solve_mat(&Mat::eye(self.dim()))
    }
}

/// Convenience wrapper: determinant of a square matrix.
pub fn det(a: &Mat) -> f64 {
    Lu::new(a).det()
}

/// Convenience wrapper: inverse of a square matrix, `None` if singular.
pub fn inverse(a: &Mat) -> Option<Mat> {
    Lu::new(a).inverse()
}

/// Convenience wrapper: solve `A x = b`, `None` if singular.
pub fn lu_solve(a: &Mat, b: &[f64]) -> Option<Vec<f64>> {
    Lu::new(a).solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::matmul;
    use crate::{approx_eq, TEST_TOL};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_factors_trivially() {
        let lu = Lu::new(&Mat::eye(4));
        assert!(!lu.is_singular());
        assert!(approx_eq(lu.det(), 1.0, TEST_TOL));
        let inv = lu.inverse().unwrap();
        for i in 0..4 {
            for j in 0..4 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!(approx_eq(inv.get(i, j), want, TEST_TOL));
            }
        }
    }

    #[test]
    fn det_of_known_2x2() {
        let a = Mat::from_rows(&[&[3.0, 1.0], &[2.0, 4.0]]);
        assert!(approx_eq(det(&a), 10.0, 1e-12));
    }

    #[test]
    fn det_of_permutation_matrix_is_signed() {
        // A single row swap of I has determinant −1.
        let a = Mat::from_rows(&[&[0.0, 1.0, 0.0], &[1.0, 0.0, 0.0], &[0.0, 0.0, 1.0]]);
        assert!(approx_eq(det(&a), -1.0, 1e-12));
    }

    #[test]
    fn solve_matches_manual_solution() {
        // 2x + y = 5 ; x + 3y = 10 → x = 1, y = 3.
        let a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = lu_solve(&a, &[5.0, 10.0]).unwrap();
        assert!(approx_eq(x[0], 1.0, 1e-12));
        assert!(approx_eq(x[1], 3.0, 1e-12));
    }

    #[test]
    fn singular_matrix_detected() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let lu = Lu::new(&a);
        assert!(lu.is_singular());
        assert_eq!(lu.det(), 0.0);
        assert!(lu.inverse().is_none());
        assert!(lu.solve(&[1.0, 1.0]).is_none());
    }

    #[test]
    fn inverse_times_original_is_identity_random() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1usize, 2, 3, 5, 8, 13] {
            // Diagonally dominated random matrix: always invertible.
            let mut a = Mat::gaussian(n, n, 1.0, &mut rng);
            for i in 0..n {
                a.add_at(i, i, n as f64 + 1.0);
            }
            let inv = inverse(&a).unwrap();
            let prod = matmul(&a, &inv);
            for i in 0..n {
                for j in 0..n {
                    let want = if i == j { 1.0 } else { 0.0 };
                    assert!(
                        approx_eq(prod.get(i, j), want, 1e-8),
                        "n={n} ({i},{j}) got {}",
                        prod.get(i, j)
                    );
                }
            }
        }
    }

    #[test]
    fn ln_abs_det_matches_det_on_well_scaled_matrix() {
        let a = Mat::from_rows(&[&[2.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 4.0]]);
        let lu = Lu::new(&a);
        assert!(approx_eq(lu.ln_abs_det(), lu.det().abs().ln(), 1e-12));
    }

    #[test]
    fn ln_abs_det_survives_overflowing_determinant() {
        // det = (1e200)^2 overflows f64; ln|det| must stay finite.
        let n = 2;
        let mut a = Mat::zeros(n, n);
        a.set(0, 0, 1e200);
        a.set(1, 1, 1e200);
        let lu = Lu::new(&a);
        assert!(lu.det().is_infinite());
        assert!(approx_eq(lu.ln_abs_det(), 2.0 * (1e200f64).ln(), 1e-6));
    }

    #[test]
    fn solve_mat_handles_multiple_rhs() {
        let a = Mat::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let b = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let x = Lu::new(&a).solve_mat(&b).unwrap();
        let prod = matmul(&a, &x);
        for i in 0..2 {
            for j in 0..2 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!(approx_eq(prod.get(i, j), want, 1e-12));
            }
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = lu_solve(&a, &[2.0, 3.0]).unwrap();
        assert!(approx_eq(x[0], 3.0, 1e-12));
        assert!(approx_eq(x[1], 2.0, 1e-12));
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_panics() {
        Lu::new(&Mat::zeros(2, 3));
    }
}
