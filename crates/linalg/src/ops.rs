//! Matrix-matrix and matrix-scalar operations, including the threaded GEMM
//! used by every training loop in the workspace. All dense products are
//! generic over the element [`Scalar`] (f64 / f32), with per-dtype tile
//! widths so f32 fills the doubled SIMD lane count.
//!
//! The parallel kernels run on the persistent `gcon-runtime` worker pool
//! (one pool for the whole process; width from `GCON_THREADS` or the
//! hardware). Each allocating kernel has a buffer-reusing `_into` twin so
//! steady-state training loops perform no per-iteration allocation.
//!
//! # Kernel structure: register tiling on stable Rust
//!
//! The dense products are cache-blocked, register-tiled loops written so
//! LLVM autovectorizes them — no intrinsics, no nightly features:
//!
//! - [`matmul_into`] packs a [`KC`]`×NR` panel of `B` into a thread-local
//!   scratch buffer ([`Scalar::with_scratch`]) and accumulates an
//!   [`MR`]`×NR` register tile per group of `A` rows: `MR·NR`
//!   independent accumulators, one broadcast of `A[i][k]` and one contiguous
//!   panel row per `k` step. The panel width `NR` is per-dtype —
//!   [`NR`] (8) for f64, [`NR_F32`] (16) for f32, the same 16 KiB
//!   L1-resident panel either way. The `k` range is walked in [`KC`]-sized
//!   cache blocks (partial tiles accumulate into the pre-zeroed `C`), so the
//!   packed panel and the active `A` row segments stay cache-resident
//!   however large the inner dimension grows.
//! - [`t_matmul_into`] (`C = AᵀB`, the weight-gradient shape) partitions the
//!   *output* rows (columns of `A`) across the pool and streams samples in
//!   [`TM_IB`]-row blocks, accumulating `MR×NR` register tiles per block.
//!   The kernel is **sparsity-adaptive**: each sample block's zero fraction
//!   is estimated up front (every [`TM_SPARSITY_SAMPLE_STRIDE`]-th row of the
//!   block), and blocks above [`TM_SKIP_ZERO_FRAC`] zeros take a
//!   zero-skipping scatter loop instead of the dense register tile — post-ReLU
//!   activation matrices at extreme sparsity were the one shape where the
//!   tiled kernel lost to the pre-tiling scalar loop. [`t_matmul_into_with`]
//!   pins the path for tests and benchmarks.
//! - [`matmul_bt_into`] (`C = A·Bᵀ`, pairwise row dots) batches four rows of
//!   `B` per pass over a row of `A`, so each `A` row is loaded once per four
//!   outputs; the inner unroll width is 4 elements for f64, 8 for f32.
//!
//! # Dispatch tiers
//!
//! Each kernel body is compiled at every [`gcon_runtime::KernelTier`] —
//! portable baseline, `avx2,fma` (4-wide f64 / 8-wide f32) and `avx512f`
//! (8-wide f64 / 16-wide f32) — through the
//! [`gcon_runtime::tier_dispatch!`] macro, and the active tier
//! ([`gcon_runtime::kernel_tier`], override with `GCON_KERNEL_TIER`) picks
//! the compilation at run time. `#[target_feature]` cannot apply to generic
//! functions, so each dtype gets its own concrete dispatch stack (an
//! `#[inline(always)]` generic body instantiated by `_f64`/`_f32` wrappers,
//! routed through the [`Scalar`] kernel hooks). Within one dtype, all tiers
//! execute the same arithmetic in the same order (strict FP semantics,
//! autovectorization only), so **tier choice never changes a result** —
//! byte-for-byte, not merely to tolerance.
//!
//! Because tiers agree bitwise, dispatch may be *shape-aware*:
//! [`resolve_matmul_tier`] caps tail-only products (`n <` one register
//! panel, e.g. every small-`c` serving head forward) at the AVX2
//! compilation, where the dot-based tail measures materially faster than
//! under AVX-512 — a timing-only decision, mirroring
//! `gcon_graph::resolve_spmv_tier`.
//!
//! # Determinism policy (per dtype)
//!
//! Reassociating a floating-point accumulation changes its rounding, so the
//! tiled kernels do **not** reproduce the scalar kernels bit-for-bit (they
//! agree to ~1e-9 relative tolerance for f64, pinned by the equivalence
//! tests). What *is* guaranteed — and pinned by
//! `tests/runtime_equivalence.rs` over the full
//! `dtype × GCON_KERNEL_TIER × GCON_THREADS` matrix — is that results are
//! byte-identical across thread counts *and* tiers **within one dtype**: the
//! pool partitions output rows, every output element is produced by exactly
//! one task, and every code path (register tile, M/N/K edge paths, the
//! sparsity-skip loop) accumulates a given element in the same order —
//! sequentially over `k` cache blocks of fixed size [`KC`] (or over sample
//! blocks of fixed size [`TM_IB`], whose dense-vs-skip choice is a pure
//! function of the data) — no matter where a thread boundary or tile
//! boundary falls. Across dtypes no bit relation holds: f32 results carry
//! f32 rounding at every step.

use crate::scalar::Scalar;
use crate::Mat;

/// Register-tile height: rows of `A` (or of `Aᵀ`'s output) per microkernel
/// pass (both dtypes).
pub const MR: usize = 4;

/// Register-tile width for f64: columns of `B` per packed panel /
/// microkernel pass.
pub const NR: usize = 8;

/// Register-tile width for f32 — double [`NR`], so the `MR×NR` accumulator
/// tile occupies the same number of vector registers at twice the elements,
/// and the packed `KC×NR` panel stays the same 16 KiB.
pub const NR_F32: usize = 16;

/// Sample-block length of the [`t_matmul_into`] kernel: the `Σ_i` reduction
/// is chunked into blocks of this many samples, each accumulated in
/// registers and then added to the output. Fixed (never derived from the
/// thread partition) so results are byte-identical across `GCON_THREADS`.
/// The dense-vs-skip sparsity decision is also made per block of this size.
pub const TM_IB: usize = 128;

/// K-cache block length of the [`matmul_into`] kernel: the inner dimension
/// is walked in blocks of this many steps, each packed into a `KC×NR` panel
/// (16 KiB for either dtype — L1-resident) and accumulated into `C`. Fixed
/// (never derived from the thread partition) so results are byte-identical
/// across `GCON_THREADS`.
pub const KC: usize = 256;

/// Zero fraction of a [`TM_IB`] sample block above which [`t_matmul_into`]
/// takes the zero-skipping scatter loop instead of the dense register tile.
/// Measured on the `bench_linalg` sparsity sweep: the dense tile wins up to
/// ~50% ReLU zeros, the skip loop wins from ~90%; the threshold sits in the
/// indifference band between them.
pub const TM_SKIP_ZERO_FRAC: f64 = 0.75;

/// Row-sampling stride of the per-block zero count: every
/// `TM_SPARSITY_SAMPLE_STRIDE`-th row of a [`TM_IB`] sample block is
/// scanned, so the estimate costs `1/stride` of a full pass over `A` while
/// still seeing ≥16 rows per full block. A pure function of the data (never
/// of the thread partition), so the chosen path — and therefore the result —
/// is deterministic.
pub const TM_SPARSITY_SAMPLE_STRIDE: usize = 8;

/// `C = A · B` with a packed, register-tiled kernel (see the module docs),
/// parallelized over row blocks of A on the shared runtime pool.
pub fn matmul<S: Scalar>(a: &Mat<S>, b: &Mat<S>) -> Mat<S> {
    // `matmul_into` shapes and zero-fills; starting empty avoids a
    // redundant full-size zero write.
    let mut c = Mat::default();
    matmul_into(a, b, &mut c);
    c
}

/// `C = A · B` written into `c`, which is reshaped (reusing its backing
/// buffer when capacity allows) to `a.rows() × b.cols()`.
pub fn matmul_into<S: Scalar>(a: &Mat<S>, b: &Mat<S>, c: &mut Mat<S>) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dimension mismatch {}x{} · {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k) = a.shape();
    let n = b.cols();
    c.reset_to_zeros(m, n);
    gcon_runtime::parallel_rows(c.as_mut_slice(), m, n, m * k * n, |block, start, end| {
        matmul_block(a, b, block, start, end);
    });
}

/// Computes rows `[start, end)` of `A · B` into `out` (local row-major
/// block, pre-zeroed by the caller). Acquires the dtype's thread-local panel
/// buffer here — *outside* the dispatched body — so the hot loops sit
/// directly in the `#[target_feature]` function rather than in a closure
/// (closures don't inherit the caller's feature set).
fn matmul_block<S: Scalar>(a: &Mat<S>, b: &Mat<S>, out: &mut [S], start: usize, end: usize) {
    let k = a.cols();
    let n = b.cols();
    if k == 0 || n == 0 {
        return;
    }
    S::with_scratch(k.min(KC) * S::GEMM_NR, |panel| {
        S::kernel_matmul_panel(a, b, out, start, end, panel);
    });
}

/// Effective dispatch tier of the [`matmul_into`] panel kernel for an
/// output `n` columns wide, given the dtype's panel width `nr` ([`NR`] /
/// [`NR_F32`]).
///
/// When `n < nr` the product never fills one register panel — the whole
/// output runs in the dot-based N-tail, which the dev box executes ~1.7×
/// *slower* under the AVX-512 compilation than under AVX2 for both dtypes
/// (double-pumped 512-bit execution: the wider reduction buys no
/// throughput and costs frequency; measured in `bench_linalg` and on the
/// `BENCH_serve.json` head forward, whose `batch × d × c` GEMM always has
/// `c < nr`). Such shapes cap the requested tier at AVX2. At one panel or
/// wider the packed register path dominates and AVX-512 keeps its usual
/// margin.
///
/// A pure function of the requested tier and the shape — never of the
/// thread partition — and every compilation of the kernel produces
/// identical bytes, so the gate can change timing only, never results.
pub fn resolve_matmul_tier(
    requested: gcon_runtime::KernelTier,
    n: usize,
    nr: usize,
) -> gcon_runtime::KernelTier {
    match requested {
        gcon_runtime::KernelTier::Avx512 if n < nr => gcon_runtime::KernelTier::Avx2,
        t => t,
    }
}

/// Hand-written matmul panel dispatch (per dtype): the same three-tier
/// shape as [`gcon_runtime::tier_dispatch!`], but the effective tier runs
/// through [`resolve_matmul_tier`] first so tail-only outputs cap at the
/// AVX2 compilation. All compilations produce identical bytes, so the gate
/// is invisible to the conformance suite.
macro_rules! matmul_panel_dispatch {
    ($(#[$meta:meta])* $name:ident / $avx2:ident / $avx512:ident, $dtype:ty, $nr:expr, $w:expr) => {
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2,fma")]
        fn $avx2(
            a: &Mat<$dtype>,
            b: &Mat<$dtype>,
            out: &mut [$dtype],
            start: usize,
            end: usize,
            panel: &mut [$dtype],
        ) {
            matmul_panel_body::<$dtype, $nr, $w>(a, b, out, start, end, panel)
        }

        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx512f,avx512vl,avx512dq,avx512bw")]
        fn $avx512(
            a: &Mat<$dtype>,
            b: &Mat<$dtype>,
            out: &mut [$dtype],
            start: usize,
            end: usize,
            panel: &mut [$dtype],
        ) {
            matmul_panel_body::<$dtype, $nr, $w>(a, b, out, start, end, panel)
        }

        $(#[$meta])*
        pub(crate) fn $name(
            a: &Mat<$dtype>,
            b: &Mat<$dtype>,
            out: &mut [$dtype],
            start: usize,
            end: usize,
            panel: &mut [$dtype],
        ) {
            #[cfg(target_arch = "x86_64")]
            match resolve_matmul_tier(gcon_runtime::kernel_tier(), b.cols(), $nr) {
                // SAFETY: `kernel_tier()` never exceeds the detected feature
                // set, and `resolve_matmul_tier` only ever lowers the tier,
                // so the CPU supports every feature the callee is compiled
                // with.
                gcon_runtime::KernelTier::Avx512 => {
                    return unsafe { $avx512(a, b, out, start, end, panel) }
                }
                gcon_runtime::KernelTier::Avx2 => {
                    return unsafe { $avx2(a, b, out, start, end, panel) }
                }
                gcon_runtime::KernelTier::Scalar => {}
            }
            matmul_panel_body::<$dtype, $nr, $w>(a, b, out, start, end, panel)
        }
    };
}

matmul_panel_dispatch!(
    /// f64 panel-loop stage of [`matmul_into`] (8-wide panels, 4-lane tail
    /// dots) — see [`matmul_panel_body`] and [`resolve_matmul_tier`].
    matmul_panel_f64 / matmul_panel_f64_avx2 / matmul_panel_f64_avx512,
    f64,
    NR,
    4
);

matmul_panel_dispatch!(
    /// f32 panel-loop stage of [`matmul_into`] (doubled panel width and
    /// tail-dot lanes) — see [`matmul_panel_body`] and
    /// [`resolve_matmul_tier`].
    matmul_panel_f32 / matmul_panel_f32_avx2 / matmul_panel_f32_avx512,
    f32,
    NR_F32,
    8
);

/// The `matmul` kernel body. For each `NR_`-wide column panel of `B` the
/// `k` range is walked in [`KC`]-sized cache blocks: the block is packed
/// contiguously into the thread-local `panel`, each [`MR`]-row group of `A`
/// accumulates an `MR×NR_` register tile over the block, and the tile is
/// added into the pre-zeroed `out`. The N tail (the last `n % NR_`
/// columns) packs those columns of `B` *transposed* into the same panel,
/// per cache block, and computes each output as a [`dot4`]-style
/// multi-accumulator dot over `k` — this is the path a small-`c` head
/// forward (`c < NR_`) takes in its entirety, so it must vectorize over
/// `k` rather than fall back to a scalar column loop.
///
/// Determinism: every per-element accumulation walks cache blocks in
/// ascending order with a lane structure fixed by the block length and
/// dtype alone (`W` accumulator lanes in the tail dots, one accumulator in
/// the panel tiles), so a row's result does not depend on which path,
/// thread, or row partition computed it.
#[inline(always)]
fn matmul_panel_body<S: Scalar, const NR_: usize, const W: usize>(
    a: &Mat<S>,
    b: &Mat<S>,
    out: &mut [S],
    start: usize,
    end: usize,
    panel: &mut [S],
) {
    let k = a.cols();
    let n = b.cols();
    let main_n = n - n % NR_;
    {
        let mut jj = 0;
        while jj < main_n {
            let mut kb = 0;
            while kb < k {
                let ke = (kb + KC).min(k);
                // Pack B[kb..ke, jj..jj+NR_] row-major into the panel.
                for (dst, kk) in panel.chunks_exact_mut(NR_).zip(kb..ke) {
                    dst.copy_from_slice(&b.row(kk)[jj..jj + NR_]);
                }
                let packed = &panel[..(ke - kb) * NR_];
                let mut i = start;
                while i + MR <= end {
                    let [r0, r1, r2, r3]: [&[S]; MR] =
                        std::array::from_fn(|r| &a.row(i + r)[kb..ke]);
                    let mut acc = [[S::ZERO; NR_]; MR];
                    for ((((bp, &a0), &a1), &a2), &a3) in
                        packed.chunks_exact(NR_).zip(r0).zip(r1).zip(r2).zip(r3)
                    {
                        for c in 0..NR_ {
                            acc[0][c] += a0 * bp[c];
                            acc[1][c] += a1 * bp[c];
                            acc[2][c] += a2 * bp[c];
                            acc[3][c] += a3 * bp[c];
                        }
                    }
                    for (r, tile_row) in acc.iter().enumerate() {
                        let orow = &mut out[(i + r - start) * n + jj..][..NR_];
                        for (o, &v) in orow.iter_mut().zip(tile_row) {
                            *o += v;
                        }
                    }
                    i += MR;
                }
                // M tail: one row at a time, same panel, same k order.
                while i < end {
                    let mut acc = [S::ZERO; NR_];
                    for (bp, &aik) in packed.chunks_exact(NR_).zip(&a.row(i)[kb..ke]) {
                        for c in 0..NR_ {
                            acc[c] += aik * bp[c];
                        }
                    }
                    let orow = &mut out[(i - start) * n + jj..][..NR_];
                    for (o, &v) in orow.iter_mut().zip(&acc) {
                        *o += v;
                    }
                    i += 1;
                }
                kb = ke;
            }
            jj += NR_;
        }
    }
    // N tail: pack the last n % NR_ columns of B transposed (one
    // contiguous length-`klen` column per output) into the panel, per
    // cache block, zero-padded up to a multiple of 4 columns so every
    // group runs [`dot4`] — the padding outputs are discarded, and since
    // `dot4` computes each output with the same `W`-lane structure a lone
    // dot would use, padding changes timing only, never bits. The padded
    // width never exceeds `NR_`, so `tail_pad · klen ≤ NR_ · KC` fits the
    // panel the caller sized for the register path.
    if main_n < n {
        let tail = n - main_n;
        let tail_pad = (tail + 3) & !3;
        let mut kb = 0;
        while kb < k {
            let ke = (kb + KC).min(k);
            let klen = ke - kb;
            for j in 0..tail {
                let dst = &mut panel[j * klen..(j + 1) * klen];
                for (d, kk) in dst.iter_mut().zip(kb..ke) {
                    *d = b.row(kk)[main_n + j];
                }
            }
            panel[tail * klen..tail_pad * klen].fill(S::ZERO);
            let packed = &panel[..tail_pad * klen];
            for i in start..end {
                let arow = &a.row(i)[kb..ke];
                let crow = &mut out[(i - start) * n + main_n..(i - start + 1) * n];
                let mut j = 0;
                while j < tail {
                    let col = |r: usize| &packed[(j + r) * klen..(j + r + 1) * klen];
                    let d = dot4::<S, W>(arow, col(0), col(1), col(2), col(3));
                    for (cv, &dv) in crow[j..].iter_mut().zip(&d) {
                        *cv += dv;
                    }
                    j += 4;
                }
            }
            kb = ke;
        }
    }
}

/// `C = Aᵀ · B` without materializing the transpose.
///
/// This is the shape that appears in every weight gradient of the manual
/// backprop stack (`∂L/∂W = Xᵀ · δ`).
pub fn t_matmul<S: Scalar>(a: &Mat<S>, b: &Mat<S>) -> Mat<S> {
    let mut c = Mat::default();
    t_matmul_into(a, b, &mut c);
    c
}

/// Path selector for [`t_matmul_into_with`]: which inner loop handles each
/// [`TM_IB`] sample block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TmPath {
    /// Per-block data-driven choice (the default, used by [`t_matmul_into`]):
    /// blocks whose sampled zero fraction exceeds [`TM_SKIP_ZERO_FRAC`] take
    /// the skip loop, the rest the dense tile.
    Auto,
    /// Force the dense register-tile loop for every block.
    Tiled,
    /// Force the zero-skipping scatter loop for every block.
    Skip,
}

/// `C = Aᵀ · B` written into `c` (reshaped to `a.cols() × b.cols()`),
/// parallelized over row blocks of `C` (= column blocks of `A`) on the
/// shared runtime pool, with the sparsity-adaptive block path
/// ([`TmPath::Auto`] — see [`t_matmul_into_with`]).
pub fn t_matmul_into<S: Scalar>(a: &Mat<S>, b: &Mat<S>, c: &mut Mat<S>) {
    t_matmul_into_with(a, b, c, TmPath::Auto);
}

/// [`t_matmul_into`] with an explicit block-path choice.
///
/// `TmPath::Auto` estimates each [`TM_IB`] sample block's zero fraction
/// (scanning every [`TM_SPARSITY_SAMPLE_STRIDE`]-th row, full width — a
/// pure function of `A`, independent of the thread partition and of the
/// dispatch tier) and routes blocks above [`TM_SKIP_ZERO_FRAC`] to a
/// zero-skipping scatter loop: on post-ReLU activations at ≥~80% zeros the
/// dense tile performs the FLOPs the old scalar kernel's zero-skip avoided,
/// and loses to it. `Tiled` / `Skip` pin the path so tests and benches can
/// compare both loops on identical data; the crossover regression test
/// asserts `Auto` matches the pinned path bit-for-bit on either side of the
/// threshold.
pub fn t_matmul_into_with<S: Scalar>(a: &Mat<S>, b: &Mat<S>, c: &mut Mat<S>, path: TmPath) {
    assert_eq!(a.rows(), b.rows(), "t_matmul: row mismatch");
    let (n_samples, d_in) = a.shape();
    let d_out = b.cols();
    c.reset_to_zeros(d_in, d_out);
    let skip = t_matmul_skip_flags(a, path);
    let work = n_samples * d_in * d_out;
    gcon_runtime::parallel_rows(c.as_mut_slice(), d_in, d_out, work, |block, k0, k1| {
        S::kernel_t_matmul_block(a, b, block, k0, k1, &skip);
    });
}

/// One flag per [`TM_IB`] sample block of `A`: `true` routes the block to
/// the zero-skipping loop. Computed once per call, over full rows (never
/// the thread partition's column range), so every thread — and every
/// dispatch tier — agrees on the path and the accumulation order.
fn t_matmul_skip_flags<S: Scalar>(a: &Mat<S>, path: TmPath) -> Vec<bool> {
    let (n_samples, d_in) = a.shape();
    let n_blocks = n_samples.div_ceil(TM_IB);
    match path {
        TmPath::Tiled => return vec![false; n_blocks],
        TmPath::Skip => return vec![true; n_blocks],
        TmPath::Auto => {}
    }
    if d_in == 0 {
        return vec![false; n_blocks];
    }
    (0..n_blocks)
        .map(|bi| {
            let ib = bi * TM_IB;
            let ie = (ib + TM_IB).min(n_samples);
            let mut zeros = 0usize;
            let mut scanned = 0usize;
            for i in (ib..ie).step_by(TM_SPARSITY_SAMPLE_STRIDE) {
                zeros += a.row(i).iter().filter(|v| **v == S::ZERO).count();
                scanned += d_in;
            }
            zeros as f64 > TM_SKIP_ZERO_FRAC * scanned as f64
        })
        .collect()
}

gcon_runtime::tier_dispatch! {
    /// f64 `AᵀB` block kernel (rows `[k0, k1)` of the output) — see
    /// [`t_matmul_block_body`].
    pub(crate) fn t_matmul_block_f64 / t_matmul_block_f64_avx2 / t_matmul_block_f64_avx512 / t_matmul_block_f64_impl(
        a: &Mat<f64>, b: &Mat<f64>, out: &mut [f64], k0: usize, k1: usize, skip: &[bool])
}

#[inline(always)]
fn t_matmul_block_f64_impl(
    a: &Mat<f64>,
    b: &Mat<f64>,
    out: &mut [f64],
    k0: usize,
    k1: usize,
    skip: &[bool],
) {
    t_matmul_block_body::<f64, NR>(a, b, out, k0, k1, skip)
}

gcon_runtime::tier_dispatch! {
    /// f32 `AᵀB` block kernel (doubled tile width) — see
    /// [`t_matmul_block_body`].
    pub(crate) fn t_matmul_block_f32 / t_matmul_block_f32_avx2 / t_matmul_block_f32_avx512 / t_matmul_block_f32_impl(
        a: &Mat<f32>, b: &Mat<f32>, out: &mut [f32], k0: usize, k1: usize, skip: &[bool])
}

#[inline(always)]
fn t_matmul_block_f32_impl(
    a: &Mat<f32>,
    b: &Mat<f32>,
    out: &mut [f32],
    k0: usize,
    k1: usize,
    skip: &[bool],
) {
    t_matmul_block_body::<f32, NR_F32>(a, b, out, k0, k1, skip)
}

/// The `t_matmul` kernel body. The `Σ_i a[i][k]·b[i][j]` reduction is
/// chunked into [`TM_IB`]-sample blocks. A dense block accumulates an
/// [`MR`]`×NR_` register tile (`MR` output rows × `NR_` output columns)
/// across the block's samples, then adds into `out`; a block flagged in
/// `skip` instead scatters each nonzero `a[i][k]` onto the output row —
/// cheaper when almost everything is zero. Sample-block boundaries are
/// fixed multiples of `TM_IB`, the flags are a pure function of `A`, and
/// every path (dense tile, K tail rows, J tail columns, skip scatter) uses
/// the same block-sequential, sample-ascending per-element order, so
/// results are byte-identical whatever the thread partition.
#[inline(always)]
fn t_matmul_block_body<S: Scalar, const NR_: usize>(
    a: &Mat<S>,
    b: &Mat<S>,
    out: &mut [S],
    k0: usize,
    k1: usize,
    skip: &[bool],
) {
    let n_samples = a.rows();
    let d_out = b.cols();
    if d_out == 0 {
        return;
    }
    let main_j = d_out - d_out % NR_;
    let mut ib = 0;
    while ib < n_samples {
        let ie = (ib + TM_IB).min(n_samples);
        if skip[ib / TM_IB] {
            // Zero-skipping scatter, restricted to this partition's output
            // rows: one `d_out`-wide axpy per *nonzero* of A[i][k0..k1].
            for i in ib..ie {
                let arow = &a.row(i)[k0..k1];
                let brow = b.row(i);
                for (rel_k, &av) in arow.iter().enumerate() {
                    if av == S::ZERO {
                        continue;
                    }
                    let orow = &mut out[rel_k * d_out..(rel_k + 1) * d_out];
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o += av * bv;
                    }
                }
            }
            ib = ie;
            continue;
        }
        let mut kk = k0;
        while kk + MR <= k1 {
            let mut jj = 0;
            while jj < main_j {
                let mut acc = [[S::ZERO; NR_]; MR];
                for i in ib..ie {
                    let av = &a.row(i)[kk..kk + MR];
                    let bv = &b.row(i)[jj..jj + NR_];
                    for r in 0..MR {
                        for c in 0..NR_ {
                            acc[r][c] += av[r] * bv[c];
                        }
                    }
                }
                for (r, tile_row) in acc.iter().enumerate() {
                    let orow = &mut out[(kk + r - k0) * d_out + jj..][..NR_];
                    for (o, &v) in orow.iter_mut().zip(tile_row) {
                        *o += v;
                    }
                }
                jj += NR_;
            }
            if main_j < d_out {
                // J tail: fewer than NR_ columns, same MR rows and order.
                let mut acc = [[S::ZERO; NR_]; MR];
                for i in ib..ie {
                    let av = &a.row(i)[kk..kk + MR];
                    let bv = &b.row(i)[main_j..];
                    for r in 0..MR {
                        for (c, &bvc) in bv.iter().enumerate() {
                            acc[r][c] += av[r] * bvc;
                        }
                    }
                }
                for (r, tile_row) in acc.iter().enumerate() {
                    let orow = &mut out[(kk + r - k0) * d_out + main_j..(kk + r - k0 + 1) * d_out];
                    for (o, &v) in orow.iter_mut().zip(tile_row) {
                        *o += v;
                    }
                }
            }
            kk += MR;
        }
        // K tail: remaining output rows one at a time, same sample blocks.
        while kk < k1 {
            let mut jj = 0;
            while jj < main_j {
                let mut acc = [S::ZERO; NR_];
                for i in ib..ie {
                    let av = a.row(i)[kk];
                    let bv = &b.row(i)[jj..jj + NR_];
                    for c in 0..NR_ {
                        acc[c] += av * bv[c];
                    }
                }
                let orow = &mut out[(kk - k0) * d_out + jj..][..NR_];
                for (o, &v) in orow.iter_mut().zip(&acc) {
                    *o += v;
                }
                jj += NR_;
            }
            if main_j < d_out {
                let mut acc = [S::ZERO; NR_];
                for i in ib..ie {
                    let av = a.row(i)[kk];
                    for (c, &bvc) in b.row(i)[main_j..].iter().enumerate() {
                        acc[c] += av * bvc;
                    }
                }
                let orow = &mut out[(kk - k0) * d_out + main_j..(kk - k0 + 1) * d_out];
                for (o, &v) in orow.iter_mut().zip(&acc) {
                    *o += v;
                }
            }
            kk += 1;
        }
        ib = ie;
    }
}

/// `C = A · Bᵀ` without materializing the transpose (pairwise row dots).
pub fn matmul_bt<S: Scalar>(a: &Mat<S>, b: &Mat<S>) -> Mat<S> {
    let mut c = Mat::default();
    matmul_bt_into(a, b, &mut c);
    c
}

/// `C = A · Bᵀ` written into `c` (reshaped to `a.rows() × b.rows()`),
/// parallelized over row blocks of A on the shared runtime pool.
///
/// Rows of `B` are consumed four at a time (the `dot4` kernel), so each `A` row is
/// streamed once per four outputs instead of once per output. The grouping
/// starts at column 0 regardless of the thread partition (which splits rows
/// of `A`), so each element's accumulation order is partition-independent.
pub fn matmul_bt_into<S: Scalar>(a: &Mat<S>, b: &Mat<S>, c: &mut Mat<S>) {
    assert_eq!(a.cols(), b.cols(), "matmul_bt: column mismatch");
    let m = a.rows();
    let n = b.rows();
    let k = a.cols();
    c.reset_to_zeros(m, n);
    gcon_runtime::parallel_rows(c.as_mut_slice(), m, n, m * k * n, |block, start, _end| {
        S::kernel_matmul_bt_block(a, b, block, start);
    });
}

gcon_runtime::tier_dispatch! {
    /// f64 `A·Bᵀ` block kernel (rows `start..` of the output) — see
    /// [`matmul_bt_block_body`].
    pub(crate) fn matmul_bt_block_f64 / matmul_bt_block_f64_avx2 / matmul_bt_block_f64_avx512 / matmul_bt_block_f64_impl(
        a: &Mat<f64>, b: &Mat<f64>, block: &mut [f64], start: usize)
}

#[inline(always)]
fn matmul_bt_block_f64_impl(a: &Mat<f64>, b: &Mat<f64>, block: &mut [f64], start: usize) {
    // f64 dot4 unroll: 4 elements per step.
    matmul_bt_block_body::<f64, 4>(a, b, block, start)
}

gcon_runtime::tier_dispatch! {
    /// f32 `A·Bᵀ` block kernel (doubled dot4 unroll) — see
    /// [`matmul_bt_block_body`].
    pub(crate) fn matmul_bt_block_f32 / matmul_bt_block_f32_avx2 / matmul_bt_block_f32_avx512 / matmul_bt_block_f32_impl(
        a: &Mat<f32>, b: &Mat<f32>, block: &mut [f32], start: usize)
}

#[inline(always)]
fn matmul_bt_block_f32_impl(a: &Mat<f32>, b: &Mat<f32>, block: &mut [f32], start: usize) {
    // f32 dot4 unroll: 8 elements per step (doubled lanes).
    matmul_bt_block_body::<f32, 8>(a, b, block, start)
}

/// The `matmul_bt` kernel body: four rows of `B` per pass over each row of
/// `A` ([`dot4`]), single dots for the `n % 4` tail columns.
#[inline(always)]
fn matmul_bt_block_body<S: Scalar, const W: usize>(
    a: &Mat<S>,
    b: &Mat<S>,
    block: &mut [S],
    start: usize,
) {
    let n = b.rows();
    let main_n = n - n % 4;
    for (local, crow) in block.chunks_mut(n.max(1)).enumerate() {
        let arow = a.row(start + local);
        let mut j = 0;
        while j < main_n {
            let d = dot4::<S, W>(arow, b.row(j), b.row(j + 1), b.row(j + 2), b.row(j + 3));
            crow[j..j + 4].copy_from_slice(&d);
            j += 4;
        }
        for (jt, cv) in crow.iter_mut().enumerate().take(n).skip(main_n) {
            *cv = crate::vecops::dot(arow, b.row(jt));
        }
    }
}

/// Four simultaneous dot products of `a` against `b0..b3` (all the same
/// length): one pass over `a`, `W` lanes of independent accumulators per
/// output (4 for f64, 8 for f32). Deterministic — the accumulation
/// structure depends only on the slice length and dtype.
#[inline(always)]
fn dot4<S: Scalar, const W: usize>(a: &[S], b0: &[S], b1: &[S], b2: &[S], b3: &[S]) -> [S; 4] {
    let main = a.len() - a.len() % W;
    let mut acc = [[S::ZERO; W]; 4];
    let mut kk = 0;
    while kk < main {
        let av = &a[kk..kk + W];
        for (r, b) in [b0, b1, b2, b3].iter().enumerate() {
            let bv = &b[kk..kk + W];
            for l in 0..W {
                acc[r][l] += av[l] * bv[l];
            }
        }
        kk += W;
    }
    let mut out = [S::ZERO; 4];
    for (r, lanes) in acc.iter().enumerate() {
        out[r] = crate::vecops::reduce_lanes(*lanes);
    }
    for (t, &av) in a[main..].iter().enumerate() {
        out[0] += av * b0[main + t];
        out[1] += av * b1[main + t];
        out[2] += av * b2[main + t];
        out[3] += av * b3[main + t];
    }
    out
}

/// Element-wise `A + B`.
pub fn add<S: Scalar>(a: &Mat<S>, b: &Mat<S>) -> Mat<S> {
    assert_eq!(a.shape(), b.shape(), "add: shape mismatch");
    let mut out = a.clone();
    add_assign(&mut out, b);
    out
}

/// `a += b` element-wise.
pub fn add_assign<S: Scalar>(a: &mut Mat<S>, b: &Mat<S>) {
    assert_eq!(a.shape(), b.shape(), "add_assign: shape mismatch");
    for (x, y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x += *y;
    }
}

/// `a += alpha * b` element-wise.
pub fn add_scaled_assign<S: Scalar>(a: &mut Mat<S>, alpha: S, b: &Mat<S>) {
    assert_eq!(a.shape(), b.shape(), "add_scaled_assign: shape mismatch");
    for (x, y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x += alpha * *y;
    }
}

/// Element-wise `A - B`.
pub fn sub<S: Scalar>(a: &Mat<S>, b: &Mat<S>) -> Mat<S> {
    assert_eq!(a.shape(), b.shape(), "sub: shape mismatch");
    let mut out = a.clone();
    for (x, y) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x -= *y;
    }
    out
}

/// `alpha * A`.
pub fn scale<S: Scalar>(a: &Mat<S>, alpha: S) -> Mat<S> {
    a.map(|v| v * alpha)
}

/// Element-wise (Hadamard) product.
pub fn hadamard<S: Scalar>(a: &Mat<S>, b: &Mat<S>) -> Mat<S> {
    assert_eq!(a.shape(), b.shape(), "hadamard: shape mismatch");
    let mut out = a.clone();
    for (x, y) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x *= *y;
    }
    out
}

/// `⟨A, B⟩ = Σ_ij A_ij B_ij` — the `⊙` operator of Eq. (13) in the paper
/// (element-wise product followed by a global sum, sequential order).
pub fn frobenius_inner<S: Scalar>(a: &Mat<S>, b: &Mat<S>) -> S {
    assert_eq!(a.shape(), b.shape(), "frobenius_inner: shape mismatch");
    a.as_slice().iter().zip(b.as_slice()).fold(S::ZERO, |acc, (x, y)| acc + *x * *y)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The matmul tier gate caps AVX-512 to AVX2 exactly for tail-only
    /// outputs (`n` below the dtype's panel width) and never touches any
    /// other request.
    #[test]
    fn resolve_matmul_tier_caps_tail_only_shapes() {
        use gcon_runtime::KernelTier::{Avx2, Avx512, Scalar};
        for (nr, boundary) in [(NR, NR), (NR_F32, NR_F32)] {
            for n in 0..boundary {
                assert_eq!(resolve_matmul_tier(Avx512, n, nr), Avx2, "n={n} nr={nr}");
                assert_eq!(resolve_matmul_tier(Avx2, n, nr), Avx2);
                assert_eq!(resolve_matmul_tier(Scalar, n, nr), Scalar);
            }
            for n in [boundary, boundary + 1, 4 * boundary] {
                assert_eq!(resolve_matmul_tier(Avx512, n, nr), Avx512, "n={n} nr={nr}");
                assert_eq!(resolve_matmul_tier(Avx2, n, nr), Avx2);
                assert_eq!(resolve_matmul_tier(Scalar, n, nr), Scalar);
            }
        }
    }

    fn naive_matmul(a: &Mat, b: &Mat) -> Mat {
        let mut c = Mat::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for k in 0..a.cols() {
                    s += a.get(i, k) * b.get(k, j);
                }
                c.set(i, j, s);
            }
        }
        c
    }

    fn naive_matmul_f32(a: &Mat<f32>, b: &Mat<f32>) -> Mat<f32> {
        let mut c = Mat::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0f32;
                for k in 0..a.cols() {
                    s += a.get(i, k) * b.get(k, j);
                }
                c.set(i, j, s);
            }
        }
        c
    }

    #[test]
    fn matmul_small_exact() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = matmul(&a, &b);
        assert_eq!(c, Mat::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_matches_naive_large() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(1);
        let a: Mat = Mat::uniform(67, 43, 1.0, &mut rng);
        let b: Mat = Mat::uniform(43, 29, 1.0, &mut rng);
        let fast = matmul(&a, &b);
        let slow = naive_matmul(&a, &b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn matmul_parallel_path_matches_naive() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(2);
        // Big enough to trigger the threaded path (m*k*n >= 2^16).
        let a: Mat = Mat::uniform(128, 64, 1.0, &mut rng);
        let b: Mat = Mat::uniform(64, 32, 1.0, &mut rng);
        let fast = matmul(&a, &b);
        let slow = naive_matmul(&a, &b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(3);
        let a: Mat = Mat::uniform(31, 7, 1.0, &mut rng);
        let b: Mat = Mat::uniform(31, 5, 1.0, &mut rng);
        let fast = t_matmul(&a, &b);
        let slow = matmul(&a.transpose(), &b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn matmul_bt_matches_explicit_transpose() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(4);
        let a: Mat = Mat::uniform(13, 9, 1.0, &mut rng);
        let b: Mat = Mat::uniform(11, 9, 1.0, &mut rng);
        let fast = matmul_bt(&a, &b);
        let slow = matmul(&a, &b.transpose());
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    /// Tile-tail coverage: shapes around the MR/NR/dot4 boundaries, plus
    /// 0/1-sized dimensions, all against the naive reference.
    #[test]
    fn tiled_kernels_handle_awkward_shapes() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(8);
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (MR, 3, NR),
            (MR + 1, 1, NR + 1),
            (MR - 1, NR, NR - 1),
            (2 * MR + 3, 2 * NR + 5, 3 * NR + 7),
            (5, 0, 4),
            (0, 3, 4),
            (4, 3, 0),
        ] {
            let a: Mat = Mat::uniform(m, k, 1.0, &mut rng);
            let b: Mat = Mat::uniform(k, n, 1.0, &mut rng);
            let fast = matmul(&a, &b);
            let slow = naive_matmul(&a, &b);
            assert_eq!(fast.shape(), (m, n), "{m}x{k}x{n}");
            for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
                assert!((x - y).abs() < 1e-12, "matmul {m}x{k}x{n}: {x} vs {y}");
            }
            // Aᵀ·B over the same awkward shapes (a is m×k ⇒ use it as the
            // sample matrix, b must share the row count).
            let b2: Mat = Mat::uniform(m, n, 1.0, &mut rng);
            let fast_t = t_matmul(&a, &b2);
            let slow_t = naive_matmul(&a.transpose(), &b2);
            for (x, y) in fast_t.as_slice().iter().zip(slow_t.as_slice()) {
                assert!((x - y).abs() < 1e-12, "t_matmul {m}x{k}x{n}: {x} vs {y}");
            }
            // A·Bᵀ: b3 shares the column count.
            let b3: Mat = Mat::uniform(n, k, 1.0, &mut rng);
            let fast_bt = matmul_bt(&a, &b3);
            let slow_bt = naive_matmul(&a, &b3.transpose());
            for (x, y) in fast_bt.as_slice().iter().zip(slow_bt.as_slice()) {
                assert!((x - y).abs() < 1e-12, "matmul_bt {m}x{k}x{n}: {x} vs {y}");
            }
        }
    }

    /// The f32 instantiations (NR_F32-wide tiles, widened dot4 unroll) hit
    /// their own tile tails: shapes straddle NR_F32 and the doubled dot4
    /// width, all against a naive f32 reference with f32-appropriate
    /// tolerance.
    #[test]
    fn f32_kernels_handle_awkward_shapes() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(21);
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (MR, 3, NR_F32),
            (MR + 1, 9, NR_F32 + 1),
            (MR - 1, NR_F32, NR_F32 - 1),
            (2 * MR + 3, NR_F32 + 5, 2 * NR_F32 + 7),
            (5, 0, 4),
            (0, 3, 4),
        ] {
            let a: Mat<f32> = Mat::uniform(m, k, 1.0, &mut rng);
            let b: Mat<f32> = Mat::uniform(k, n, 1.0, &mut rng);
            let fast = matmul(&a, &b);
            let slow = naive_matmul_f32(&a, &b);
            assert_eq!(fast.shape(), (m, n), "{m}x{k}x{n}");
            for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
                assert!((x - y).abs() < 1e-4, "matmul f32 {m}x{k}x{n}: {x} vs {y}");
            }
            let b2: Mat<f32> = Mat::uniform(m, n, 1.0, &mut rng);
            let fast_t = t_matmul(&a, &b2);
            let slow_t = naive_matmul_f32(&a.transpose(), &b2);
            for (x, y) in fast_t.as_slice().iter().zip(slow_t.as_slice()) {
                assert!((x - y).abs() < 1e-4, "t_matmul f32 {m}x{k}x{n}: {x} vs {y}");
            }
            let b3: Mat<f32> = Mat::uniform(n, k, 1.0, &mut rng);
            let fast_bt = matmul_bt(&a, &b3);
            let slow_bt = naive_matmul_f32(&a, &b3.transpose());
            for (x, y) in fast_bt.as_slice().iter().zip(slow_bt.as_slice()) {
                assert!((x - y).abs() < 1e-4, "matmul_bt f32 {m}x{k}x{n}: {x} vs {y}");
            }
        }
    }

    /// Inner dimensions straddling the KC cache-block boundary exercise the
    /// panel re-pack and the accumulate-into-C path of the K-blocked kernel.
    #[test]
    fn matmul_k_cache_blocking_matches_naive() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(17);
        for &k in &[KC - 1, KC, KC + 1, KC + 37, 2 * KC + 5] {
            let a: Mat = Mat::uniform(MR + 1, k, 1.0, &mut rng);
            let b: Mat = Mat::uniform(k, NR + 3, 1.0, &mut rng);
            let fast = matmul(&a, &b);
            let slow = naive_matmul(&a, &b);
            for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
                assert!((x - y).abs() <= 1e-9 * y.abs().max(1.0), "k={k}: {x} vs {y}");
            }
        }
    }

    /// Both pinned `t_matmul` paths agree with the naive reference, and the
    /// skip path handles blocks that are entirely zero.
    #[test]
    fn t_matmul_pinned_paths_match_naive() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(23);
        let n_samples = TM_IB * 2 + 11;
        let mut a: Mat = Mat::uniform(n_samples, 13, 1.0, &mut rng);
        // First sample block all-zero, rest ~60% zeros.
        a.map_inplace(|v| if (v * 1e4).rem_euclid(1.0) < 0.6 { 0.0 } else { v });
        for i in 0..TM_IB {
            for k in 0..13 {
                a.set(i, k, 0.0);
            }
        }
        let b: Mat = Mat::uniform(n_samples, 9, 1.0, &mut rng);
        let slow = naive_matmul(&a.transpose(), &b);
        for path in [TmPath::Auto, TmPath::Tiled, TmPath::Skip] {
            let mut fast = Mat::default();
            t_matmul_into_with(&a, &b, &mut fast, path);
            assert_eq!(fast.shape(), (13, 9));
            for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
                assert!((x - y).abs() <= 1e-9 * y.abs().max(1.0), "{path:?}: {x} vs {y}");
            }
        }
    }

    /// A sample count crossing the TM_IB block boundary exercises the
    /// partial-sum accumulation of the tiled `t_matmul` kernel.
    #[test]
    fn t_matmul_across_sample_block_boundary() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(12);
        let n_samples = TM_IB + TM_IB / 2 + 3;
        let a: Mat = Mat::uniform(n_samples, 5, 1.0, &mut rng);
        let b: Mat = Mat::uniform(n_samples, 9, 1.0, &mut rng);
        let fast = t_matmul(&a, &b);
        let slow = naive_matmul(&a.transpose(), &b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-10, "{x} vs {y}");
        }
    }

    #[test]
    fn identity_is_neutral() {
        let a = Mat::from_fn(5, 5, |i, j| (i * 5 + j) as f64);
        assert_eq!(matmul(&a, &Mat::eye(5)), a);
        assert_eq!(matmul(&Mat::eye(5), &a), a);
    }

    #[test]
    fn add_sub_scale_roundtrip() {
        let a = Mat::from_rows(&[&[1.0, 2.0]]);
        let b = Mat::from_rows(&[&[3.0, 5.0]]);
        let s = add(&a, &b);
        assert_eq!(s, Mat::from_rows(&[&[4.0, 7.0]]));
        assert_eq!(sub(&s, &b), a);
        assert_eq!(scale(&a, 2.0), Mat::from_rows(&[&[2.0, 4.0]]));
    }

    #[test]
    fn frobenius_inner_matches_elementwise_sum() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        assert_eq!(frobenius_inner(&a, &b), 5.0 + 12.0 + 21.0 + 32.0);
    }

    #[test]
    fn hadamard_elementwise() {
        let a = Mat::from_rows(&[&[1.0, 2.0]]);
        let b = Mat::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(hadamard(&a, &b), Mat::from_rows(&[&[3.0, 8.0]]));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_dimension_mismatch_panics() {
        let a: Mat = Mat::zeros(2, 3);
        let b: Mat = Mat::zeros(2, 3);
        let _ = matmul(&a, &b);
    }
}
