//! Matrix-matrix and matrix-scalar operations, including the threaded GEMM
//! used by every training loop in the workspace.
//!
//! The parallel kernels run on the persistent `gcon-runtime` worker pool
//! (one pool for the whole process; width from `GCON_THREADS` or the
//! hardware). Each allocating kernel has a buffer-reusing `_into` twin so
//! steady-state training loops perform no per-iteration allocation.

use crate::Mat;

/// `C = A · B` with an i-k-j loop order (streams rows of B, writes rows of C),
/// parallelized over row blocks of A on the shared runtime pool.
pub fn matmul(a: &Mat, b: &Mat) -> Mat {
    // `matmul_into` shapes and zero-fills; starting empty avoids a
    // redundant full-size zero write.
    let mut c = Mat::default();
    matmul_into(a, b, &mut c);
    c
}

/// `C = A · B` written into `c`, which is reshaped (reusing its backing
/// buffer when capacity allows) to `a.rows() × b.cols()`.
pub fn matmul_into(a: &Mat, b: &Mat, c: &mut Mat) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dimension mismatch {}x{} · {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k) = a.shape();
    let n = b.cols();
    c.reset_to_zeros(m, n);
    gcon_runtime::parallel_rows(c.as_mut_slice(), m, n, m * k * n, |block, start, end| {
        matmul_block(a, b, block, start, end);
    });
}

/// Computes rows `[start, end)` of `A · B` into `out` (local row-major block).
fn matmul_block(a: &Mat, b: &Mat, out: &mut [f64], start: usize, end: usize) {
    let n = b.cols();
    for i in start..end {
        let arow = a.row(i);
        let crow = &mut out[(i - start) * n..(i - start + 1) * n];
        for (kk, &aik) in arow.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let brow = b.row(kk);
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += aik * bv;
            }
        }
    }
}

/// `C = Aᵀ · B` without materializing the transpose.
///
/// This is the shape that appears in every weight gradient of the manual
/// backprop stack (`∂L/∂W = Xᵀ · δ`).
pub fn t_matmul(a: &Mat, b: &Mat) -> Mat {
    let mut c = Mat::default();
    t_matmul_into(a, b, &mut c);
    c
}

/// `C = Aᵀ · B` written into `c` (reshaped to `a.cols() × b.cols()`).
pub fn t_matmul_into(a: &Mat, b: &Mat, c: &mut Mat) {
    assert_eq!(a.rows(), b.rows(), "t_matmul: row mismatch");
    let (n_samples, d_in) = a.shape();
    let d_out = b.cols();
    c.reset_to_zeros(d_in, d_out);
    let cs = c.as_mut_slice();
    for i in 0..n_samples {
        let arow = a.row(i);
        let brow = b.row(i);
        for (k, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let crow = &mut cs[k * d_out..(k + 1) * d_out];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
}

/// `C = A · Bᵀ` without materializing the transpose (pairwise row dots).
pub fn matmul_bt(a: &Mat, b: &Mat) -> Mat {
    let mut c = Mat::default();
    matmul_bt_into(a, b, &mut c);
    c
}

/// `C = A · Bᵀ` written into `c` (reshaped to `a.rows() × b.rows()`),
/// parallelized over row blocks of A on the shared runtime pool.
pub fn matmul_bt_into(a: &Mat, b: &Mat, c: &mut Mat) {
    assert_eq!(a.cols(), b.cols(), "matmul_bt: column mismatch");
    let m = a.rows();
    let n = b.rows();
    let k = a.cols();
    c.reset_to_zeros(m, n);
    gcon_runtime::parallel_rows(c.as_mut_slice(), m, n, m * k * n, |block, start, _end| {
        for (local, crow) in block.chunks_mut(n.max(1)).enumerate() {
            let arow = a.row(start + local);
            for (j, cv) in crow.iter_mut().enumerate() {
                *cv = crate::vecops::dot(arow, b.row(j));
            }
        }
    });
}

/// Element-wise `A + B`.
pub fn add(a: &Mat, b: &Mat) -> Mat {
    assert_eq!(a.shape(), b.shape(), "add: shape mismatch");
    let mut out = a.clone();
    add_assign(&mut out, b);
    out
}

/// `a += b` element-wise.
pub fn add_assign(a: &mut Mat, b: &Mat) {
    assert_eq!(a.shape(), b.shape(), "add_assign: shape mismatch");
    for (x, y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x += y;
    }
}

/// `a += alpha * b` element-wise.
pub fn add_scaled_assign(a: &mut Mat, alpha: f64, b: &Mat) {
    assert_eq!(a.shape(), b.shape(), "add_scaled_assign: shape mismatch");
    for (x, y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x += alpha * y;
    }
}

/// Element-wise `A - B`.
pub fn sub(a: &Mat, b: &Mat) -> Mat {
    assert_eq!(a.shape(), b.shape(), "sub: shape mismatch");
    let mut out = a.clone();
    for (x, y) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x -= y;
    }
    out
}

/// `alpha * A`.
pub fn scale(a: &Mat, alpha: f64) -> Mat {
    a.map(|v| v * alpha)
}

/// Element-wise (Hadamard) product.
pub fn hadamard(a: &Mat, b: &Mat) -> Mat {
    assert_eq!(a.shape(), b.shape(), "hadamard: shape mismatch");
    let mut out = a.clone();
    for (x, y) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x *= y;
    }
    out
}

/// `⟨A, B⟩ = Σ_ij A_ij B_ij` — the `⊙` operator of Eq. (13) in the paper
/// (element-wise product followed by a global sum).
pub fn frobenius_inner(a: &Mat, b: &Mat) -> f64 {
    assert_eq!(a.shape(), b.shape(), "frobenius_inner: shape mismatch");
    a.as_slice().iter().zip(b.as_slice()).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Mat, b: &Mat) -> Mat {
        let mut c = Mat::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for k in 0..a.cols() {
                    s += a.get(i, k) * b.get(k, j);
                }
                c.set(i, j, s);
            }
        }
        c
    }

    #[test]
    fn matmul_small_exact() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = matmul(&a, &b);
        assert_eq!(c, Mat::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_matches_naive_large() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(1);
        let a = Mat::uniform(67, 43, 1.0, &mut rng);
        let b = Mat::uniform(43, 29, 1.0, &mut rng);
        let fast = matmul(&a, &b);
        let slow = naive_matmul(&a, &b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn matmul_parallel_path_matches_naive() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(2);
        // Big enough to trigger the threaded path (m*k*n >= 2^16).
        let a = Mat::uniform(128, 64, 1.0, &mut rng);
        let b = Mat::uniform(64, 32, 1.0, &mut rng);
        let fast = matmul(&a, &b);
        let slow = naive_matmul(&a, &b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(3);
        let a = Mat::uniform(31, 7, 1.0, &mut rng);
        let b = Mat::uniform(31, 5, 1.0, &mut rng);
        let fast = t_matmul(&a, &b);
        let slow = matmul(&a.transpose(), &b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn matmul_bt_matches_explicit_transpose() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(4);
        let a = Mat::uniform(13, 9, 1.0, &mut rng);
        let b = Mat::uniform(11, 9, 1.0, &mut rng);
        let fast = matmul_bt(&a, &b);
        let slow = matmul(&a, &b.transpose());
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn identity_is_neutral() {
        let a = Mat::from_fn(5, 5, |i, j| (i * 5 + j) as f64);
        assert_eq!(matmul(&a, &Mat::eye(5)), a);
        assert_eq!(matmul(&Mat::eye(5), &a), a);
    }

    #[test]
    fn add_sub_scale_roundtrip() {
        let a = Mat::from_rows(&[&[1.0, 2.0]]);
        let b = Mat::from_rows(&[&[3.0, 5.0]]);
        let s = add(&a, &b);
        assert_eq!(s, Mat::from_rows(&[&[4.0, 7.0]]));
        assert_eq!(sub(&s, &b), a);
        assert_eq!(scale(&a, 2.0), Mat::from_rows(&[&[2.0, 4.0]]));
    }

    #[test]
    fn frobenius_inner_matches_elementwise_sum() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        assert_eq!(frobenius_inner(&a, &b), 5.0 + 12.0 + 21.0 + 32.0);
    }

    #[test]
    fn hadamard_elementwise() {
        let a = Mat::from_rows(&[&[1.0, 2.0]]);
        let b = Mat::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(hadamard(&a, &b), Mat::from_rows(&[&[3.0, 8.0]]));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_dimension_mismatch_panics() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        let _ = matmul(&a, &b);
    }
}
