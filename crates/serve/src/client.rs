//! `GconClient`: the library client for a running `gcond` server.
//!
//! One client = one TCP connection = one session token. The client is a
//! thin, blocking wrapper over [`crate::wire`]: it performs the handshake
//! on connect, stamps the session token on every request, reassembles
//! `BulkChunk` streams, and turns `Error` frames into
//! [`WireError::Server`]. It is deliberately `&mut self` (one in-flight
//! request per connection); open several clients for concurrency — the
//! server micro-batches across connections.

use crate::wire::{
    read_frame, write_frame, Request, Response, ServerInfo, WireError, WireStats,
    DEFAULT_MAX_FRAME, PROTO_VERSION,
};
use gcon_linalg::Mat;
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connected, handshaken `gcond` session.
#[derive(Debug)]
pub struct GconClient {
    reader: TcpStream,
    writer: std::io::BufWriter<TcpStream>,
    token: u64,
    info: ServerInfo,
    max_frame: usize,
}

impl GconClient {
    /// Connects with 30 s read / 10 s write timeouts and the default frame
    /// bound, and performs the `Hello` handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, WireError> {
        Self::connect_with(
            addr,
            Duration::from_secs(30),
            Duration::from_secs(10),
            DEFAULT_MAX_FRAME,
        )
    }

    /// [`GconClient::connect`] with explicit socket timeouts and maximum
    /// accepted response-frame size.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        read_timeout: Duration,
        write_timeout: Duration,
        max_frame: usize,
    ) -> Result<Self, WireError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(read_timeout))?;
        stream.set_write_timeout(Some(write_timeout))?;
        stream.set_nodelay(true)?;
        let reader = stream.try_clone()?;
        let mut client = Self {
            reader,
            writer: std::io::BufWriter::new(stream),
            token: 0,
            info: ServerInfo {
                proto: 0,
                mode: crate::ServingMode::Public,
                dtype: crate::StoreDtype::F64,
                nodes: 0,
                feature_dim: 0,
                classes: 0,
            },
            max_frame,
        };
        match client.call(&Request::Hello { proto: PROTO_VERSION })? {
            Response::HelloAck { token, info } => {
                client.token = token;
                client.info = info;
                Ok(client)
            }
            other => Err(unexpected(other)),
        }
    }

    /// The store handshake the server announced (shape, mode, dtype).
    pub fn info(&self) -> &ServerInfo {
        &self.info
    }

    /// Logits of one node (a `classes`-length row, bitwise what the
    /// server-side store computes).
    pub fn logits(&mut self, node: u64) -> Result<Vec<f64>, WireError> {
        let token = self.token;
        match self.call(&Request::Query { token, node })? {
            Response::Logits { values } => Ok(values),
            other => Err(unexpected(other)),
        }
    }

    /// Logits of many nodes: one request, a reassembled
    /// `nodes.len() × classes` matrix back (row `i` answers `nodes[i]`).
    pub fn logits_bulk(&mut self, nodes: &[u64]) -> Result<Mat, WireError> {
        let token = self.token;
        self.send(&Request::Bulk { token, nodes: nodes.to_vec() })?;
        let cols = self.info.classes as usize;
        let mut out = Mat::zeros(nodes.len(), cols);
        let mut rows_seen = 0u64;
        loop {
            match self.receive()? {
                Response::BulkChunk { start, cols: chunk_cols, values } => {
                    if chunk_cols as usize != cols {
                        return Err(WireError::Malformed("chunk column count mismatch"));
                    }
                    let rows = values.len().checked_div(cols).unwrap_or(0);
                    let start = usize::try_from(start)
                        .map_err(|_| WireError::Malformed("chunk start out of range"))?;
                    if start + rows > nodes.len() {
                        return Err(WireError::Malformed("chunk rows exceed request"));
                    }
                    out.as_mut_slice()[start * cols..(start + rows) * cols]
                        .copy_from_slice(&values);
                    rows_seen += rows as u64;
                }
                Response::BulkDone { total_rows } => {
                    if total_rows != nodes.len() as u64 || rows_seen != total_rows {
                        return Err(WireError::Malformed("bulk stream incomplete"));
                    }
                    return Ok(out);
                }
                Response::Error { code, message } => {
                    return Err(WireError::Server { code, message });
                }
                other => return Err(unexpected(other)),
            }
        }
    }

    /// Hard class prediction of one node (argmax of [`Self::logits`]).
    pub fn predict(&mut self, node: u64) -> Result<usize, WireError> {
        Ok(gcon_linalg::vecops::argmax(&self.logits(node)?))
    }

    /// Server counter snapshot.
    pub fn stats(&mut self) -> Result<WireStats, WireError> {
        let token = self.token;
        match self.call(&Request::Stats { token })? {
            Response::StatsReply(stats) => Ok(stats),
            other => Err(unexpected(other)),
        }
    }

    /// Liveness probe; `Ok(true)` means healthy (not degraded).
    pub fn health(&mut self) -> Result<bool, WireError> {
        match self.call(&Request::Health)? {
            Response::HealthReply { ok } => Ok(ok),
            other => Err(unexpected(other)),
        }
    }

    /// Says goodbye and closes the connection.
    pub fn bye(mut self) -> Result<(), WireError> {
        self.send(&Request::Bye)
    }

    fn send(&mut self, request: &Request) -> Result<(), WireError> {
        write_frame(&mut self.writer, &request.encode())?;
        self.writer.flush()?;
        Ok(())
    }

    fn receive(&mut self) -> Result<Response, WireError> {
        match read_frame(&mut self.reader, self.max_frame)? {
            Some(body) => Response::decode(&body),
            None => Err(WireError::Malformed("server closed the connection")),
        }
    }

    /// One request → one response, surfacing `Error` frames as
    /// [`WireError::Server`].
    fn call(&mut self, request: &Request) -> Result<Response, WireError> {
        self.send(request)?;
        match self.receive()? {
            Response::Error { code, message } => Err(WireError::Server { code, message }),
            response => Ok(response),
        }
    }
}

fn unexpected(response: Response) -> WireError {
    let _ = response;
    WireError::Malformed("unexpected response opcode for this request")
}
