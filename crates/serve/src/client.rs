//! `GconClient`: the library client for a running `gcond` server.
//!
//! One client = one TCP connection = one session token. The client is a
//! thin, blocking wrapper over [`crate::wire`]: it performs the handshake
//! on connect, stamps the session token on every request, reassembles
//! `BulkChunk` streams, and turns `Error` frames into
//! [`WireError::Server`]. It is deliberately `&mut self` (one in-flight
//! request per connection); open several clients for concurrency — the
//! server micro-batches across connections.
//!
//! # Reconnect / retry
//!
//! By default a client is zero-retry: any socket failure (read timeout,
//! reset, server restart) surfaces immediately. Enabling
//! [`GconClient::with_retries`] turns every request method into a bounded
//! retry loop: on a **connection-level** failure (I/O error, or the server
//! closing the stream — e.g. its read timeout reclaimed an idle session)
//! the client reconnects to the original address, performs a **fresh
//! `Hello` handshake** (new session token), and replays the request. Typed
//! `Error` frames are never retried — the server answered; retrying would
//! not change the answer. Every request the protocol defines is an
//! idempotent read (queries, stats, fingerprints) or an idempotent
//! overwrite (`ShardAssign` replaces the worker's whole assignment), so
//! replaying a request that may or may not have executed is safe. This is
//! the same retry path the fleet [`crate::fleet::Coordinator`] relies on
//! for coordinator → shard calls.

use crate::wire::{
    read_frame, write_frame, Request, Response, ServerInfo, WireError, WireStats,
    DEFAULT_MAX_FRAME, PROTO_VERSION,
};
use gcon_linalg::Mat;
use std::io::Write;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connected, handshaken `gcond` session.
#[derive(Debug)]
pub struct GconClient {
    reader: TcpStream,
    writer: std::io::BufWriter<TcpStream>,
    token: u64,
    info: ServerInfo,
    max_frame: usize,
    /// Resolved peer addresses, kept for reconnects.
    peers: Vec<SocketAddr>,
    read_timeout: Duration,
    write_timeout: Duration,
    /// Maximum reconnect-and-replay attempts after the initial try.
    retries: u32,
}

impl GconClient {
    /// Connects with 30 s read / 10 s write timeouts and the default frame
    /// bound, and performs the `Hello` handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, WireError> {
        Self::connect_with(
            addr,
            Duration::from_secs(30),
            Duration::from_secs(10),
            DEFAULT_MAX_FRAME,
        )
    }

    /// [`GconClient::connect`] with explicit socket timeouts and maximum
    /// accepted response-frame size.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        read_timeout: Duration,
        write_timeout: Duration,
        max_frame: usize,
    ) -> Result<Self, WireError> {
        let peers: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if peers.is_empty() {
            return Err(WireError::Malformed("address resolved to no socket addresses"));
        }
        let (reader, writer, token, info) =
            Self::open_session(&peers, read_timeout, write_timeout, max_frame)?;
        Ok(Self {
            reader,
            writer,
            token,
            info,
            max_frame,
            peers,
            read_timeout,
            write_timeout,
            retries: 0,
        })
    }

    /// Enables bounded reconnect-and-replay: after a connection-level
    /// failure, up to `retries` fresh-handshake attempts are made before
    /// the error is surfaced (see the module docs for what is — and is
    /// not — retried).
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Dials the peers in order, handshakes, and returns the session parts.
    fn open_session(
        peers: &[SocketAddr],
        read_timeout: Duration,
        write_timeout: Duration,
        max_frame: usize,
    ) -> Result<(TcpStream, std::io::BufWriter<TcpStream>, u64, ServerInfo), WireError> {
        let stream = TcpStream::connect(peers)?;
        stream.set_read_timeout(Some(read_timeout))?;
        stream.set_write_timeout(Some(write_timeout))?;
        stream.set_nodelay(true)?;
        let mut reader = stream.try_clone()?;
        let mut writer = std::io::BufWriter::new(stream);
        write_frame(&mut writer, &Request::Hello { proto: PROTO_VERSION }.encode())?;
        writer.flush()?;
        let body = read_frame(&mut reader, max_frame)?
            .ok_or(WireError::Malformed("server closed the connection"))?;
        match Response::decode(&body)? {
            Response::HelloAck { token, info } => Ok((reader, writer, token, info)),
            Response::Error { code, message } => Err(WireError::Server { code, message }),
            _ => Err(WireError::Malformed("unexpected response opcode for this request")),
        }
    }

    /// Replaces the dead connection with a freshly handshaken one (new
    /// session token; the announced [`ServerInfo`] is refreshed too).
    fn reconnect(&mut self) -> Result<(), WireError> {
        let (reader, writer, token, info) =
            Self::open_session(&self.peers, self.read_timeout, self.write_timeout, self.max_frame)?;
        self.reader = reader;
        self.writer = writer;
        self.token = token;
        self.info = info;
        Ok(())
    }

    /// Is `e` a connection-level failure a fresh session could cure?
    fn is_retryable(e: &WireError) -> bool {
        match e {
            WireError::Io(_) => true,
            // The two shapes a server-side close takes at a frame boundary
            // (`read_frame` EOF) and inside a header.
            WireError::Malformed(m) => {
                *m == "server closed the connection" || *m == "connection closed mid-header"
            }
            _ => false,
        }
    }

    /// Runs `op` with the bounded reconnect-and-replay policy. `op` must
    /// read `self.token` at call time — the token changes on reconnect.
    fn with_retry<T>(
        &mut self,
        mut op: impl FnMut(&mut Self) -> Result<T, WireError>,
    ) -> Result<T, WireError> {
        let mut attempt = 0u32;
        loop {
            match op(self) {
                Err(e) if Self::is_retryable(&e) && attempt < self.retries => {
                    attempt += 1;
                    // A failed reconnect leaves the dead streams in place;
                    // the next `op` fails fast and burns the next attempt,
                    // so the loop stays bounded by `retries` either way.
                    let _ = self.reconnect();
                }
                other => return other,
            }
        }
    }

    /// The store handshake the server announced (shape, mode, dtype).
    pub fn info(&self) -> &ServerInfo {
        &self.info
    }

    /// Logits of one node (a `classes`-length row, bitwise what the
    /// server-side store computes).
    pub fn logits(&mut self, node: u64) -> Result<Vec<f64>, WireError> {
        self.with_retry(|c| {
            let token = c.token;
            match c.call(&Request::Query { token, node })? {
                Response::Logits { values } => Ok(values),
                other => Err(unexpected(other)),
            }
        })
    }

    /// Logits of many nodes: one request, a reassembled
    /// `nodes.len() × classes` matrix back (row `i` answers `nodes[i]`).
    pub fn logits_bulk(&mut self, nodes: &[u64]) -> Result<Mat, WireError> {
        self.with_retry(|c| {
            let token = c.token;
            c.send(&Request::Bulk { token, nodes: nodes.to_vec() })?;
            let cols = c.info.classes as usize;
            c.read_chunk_stream(nodes.len(), cols, /* shard */ false)
        })
    }

    /// Hard class prediction of one node (argmax of [`Self::logits`]).
    pub fn predict(&mut self, node: u64) -> Result<usize, WireError> {
        Ok(gcon_linalg::vecops::argmax(&self.logits(node)?))
    }

    /// Server counter snapshot.
    pub fn stats(&mut self) -> Result<WireStats, WireError> {
        self.with_retry(|c| {
            let token = c.token;
            match c.call(&Request::Stats { token })? {
                Response::StatsReply(stats) => Ok(stats),
                other => Err(unexpected(other)),
            }
        })
    }

    /// Liveness probe; `Ok(true)` means healthy (not degraded).
    pub fn health(&mut self) -> Result<bool, WireError> {
        self.with_retry(|c| match c.call(&Request::Health)? {
            Response::HealthReply { ok } => Ok(ok),
            other => Err(unexpected(other)),
        })
    }

    /// Says goodbye and closes the connection.
    pub fn bye(mut self) -> Result<(), WireError> {
        self.send(&Request::Bye)
    }

    // -------------------------------------------------------- fleet calls
    //
    // The coordinator → shard-worker side of the protocol. These target a
    // `gcond --shard` worker ([`crate::fleet::ShardWorker`]); a plain
    // single-store daemon answers them with `ErrorCode::NotAssigned`.

    /// Hands a shard worker its row range: `artifact` is an encoded
    /// store-slice artifact ([`crate::ServingModel::slice_bytes`]) whose
    /// first row is global row `row_start`. Returns the row count the
    /// worker adopted. Replaces any previous assignment on the worker, so
    /// replaying after a reconnect is safe.
    pub fn shard_assign(
        &mut self,
        shard_id: u32,
        row_start: u64,
        artifact: &[u8],
    ) -> Result<u64, WireError> {
        self.with_retry(|c| {
            let token = c.token;
            let req =
                Request::ShardAssign { token, shard_id, row_start, artifact: artifact.to_vec() };
            match c.call(&req)? {
                Response::ShardReady { shard_id: echoed, rows } => {
                    if echoed != shard_id {
                        return Err(WireError::Malformed("worker echoed a different shard id"));
                    }
                    Ok(rows)
                }
                other => Err(unexpected(other)),
            }
        })
    }

    /// Logits for **global** node ids inside the worker's assigned range,
    /// reassembled from the `ShardLogits` chunk stream into a
    /// `nodes.len() × classes` matrix (row `i` answers `nodes[i]`).
    /// `classes` comes from the coordinator's own store knowledge — a
    /// worker contacted before assignment announces zero classes.
    pub fn shard_query(&mut self, nodes: &[u64], classes: usize) -> Result<Mat, WireError> {
        self.with_retry(|c| {
            let token = c.token;
            c.send(&Request::ShardQuery { token, nodes: nodes.to_vec() })?;
            c.read_chunk_stream(nodes.len(), classes, /* shard */ true)
        })
    }

    /// The worker's per-chunk store fingerprints at `chunk_rows`
    /// granularity — the consensus payload the coordinator cross-checks
    /// (see [`crate::ServingModel::chunk_fingerprints`]).
    pub fn shard_fingerprints(&mut self, chunk_rows: u64) -> Result<Vec<u64>, WireError> {
        self.with_retry(|c| {
            let token = c.token;
            match c.call(&Request::ShardFingerprint { token, chunk_rows })? {
                Response::ShardFingerprintReply { chunk_rows: echoed, fingerprints } => {
                    if echoed != chunk_rows {
                        return Err(WireError::Malformed("worker echoed a different chunk size"));
                    }
                    Ok(fingerprints)
                }
                other => Err(unexpected(other)),
            }
        })
    }

    /// Reassembles a `BulkChunk`/`ShardLogits` stream terminated by
    /// `BulkDone` into a `rows × cols` matrix (chunk `start` offsets index
    /// the request's node list).
    fn read_chunk_stream(
        &mut self,
        rows: usize,
        cols: usize,
        shard: bool,
    ) -> Result<Mat, WireError> {
        let mut out = Mat::zeros(rows, cols);
        let mut rows_seen = 0u64;
        loop {
            let (start, chunk_cols, values) = match (self.receive()?, shard) {
                (Response::BulkChunk { start, cols, values }, false)
                | (Response::ShardLogits { start, cols, values }, true) => (start, cols, values),
                (Response::BulkDone { total_rows }, _) => {
                    if total_rows != rows as u64 || rows_seen != total_rows {
                        return Err(WireError::Malformed("bulk stream incomplete"));
                    }
                    return Ok(out);
                }
                (Response::Error { code, message }, _) => {
                    return Err(WireError::Server { code, message });
                }
                (other, _) => return Err(unexpected(other)),
            };
            if chunk_cols as usize != cols {
                return Err(WireError::Malformed("chunk column count mismatch"));
            }
            let chunk_rows = values.len().checked_div(cols).unwrap_or(0);
            let start = usize::try_from(start)
                .map_err(|_| WireError::Malformed("chunk start out of range"))?;
            if start + chunk_rows > rows {
                return Err(WireError::Malformed("chunk rows exceed request"));
            }
            out.as_mut_slice()[start * cols..(start + chunk_rows) * cols].copy_from_slice(&values);
            rows_seen += chunk_rows as u64;
        }
    }

    fn send(&mut self, request: &Request) -> Result<(), WireError> {
        write_frame(&mut self.writer, &request.encode())?;
        self.writer.flush()?;
        Ok(())
    }

    fn receive(&mut self) -> Result<Response, WireError> {
        match read_frame(&mut self.reader, self.max_frame)? {
            Some(body) => Response::decode(&body),
            None => Err(WireError::Malformed("server closed the connection")),
        }
    }

    /// One request → one response, surfacing `Error` frames as
    /// [`WireError::Server`].
    fn call(&mut self, request: &Request) -> Result<Response, WireError> {
        self.send(request)?;
        match self.receive()? {
            Response::Error { code, message } => Err(WireError::Server { code, message }),
            response => Ok(response),
        }
    }
}

fn unexpected(response: Response) -> WireError {
    let _ = response;
    WireError::Malformed("unexpected response opcode for this request")
}
