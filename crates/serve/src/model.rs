//! The precomputed feature store and the query interface over it.

use gcon_core::infer::{private_features, public_features};
use gcon_core::{serialize, TrainedGcon};
use gcon_graph::Graph;
use gcon_linalg::{reduce, Dtype, Mat};
use gcon_nn::HeadWorkspace;
use std::sync::OnceLock;

/// Which inference protocol the precomputed store reproduces (the two modes
/// of `gcon-core::infer`, Sec. IV-C6 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServingMode {
    /// Full training-time propagation of the (public) test graph — serving
    /// twin of [`gcon_core::infer::public_logits`].
    Public,
    /// One-hop aggregation `R̂ = (1−α_I)Ã + α_I·I` only (Eq. 16) — serving
    /// twin of [`gcon_core::infer::private_logits`]. Row `i` of the store
    /// still depends only on node `i`'s own edges; precomputing it changes
    /// *when* the admissible aggregation happens, not *what* is revealed.
    Private,
}

impl ServingMode {
    /// Lowercase name (`public` / `private`), for logs and bench labels.
    pub fn name(self) -> &'static str {
        match self {
            ServingMode::Public => "public",
            ServingMode::Private => "private",
        }
    }
}

/// Element dtype of the frozen store (and of every head forward over it).
///
/// # Precision contract
///
/// - [`StoreDtype::F64`] (the default): queries are **bitwise identical**
///   to the corresponding `gcon-core::infer` entry point — the exactness
///   guarantee in the crate docs.
/// - [`StoreDtype::F32`]: the propagated store and `Θ_priv` are quantized
///   to `f32` **once at build time** (per-element relative error ≤ 2⁻²⁴),
///   and every head forward runs in `f32` end-to-end — half the memory
///   traffic and double the SIMD lanes of the f64 path — with only the
///   final `batch × c` logit block widened back to `f64` at the API
///   boundary. Logits drift from the f64 path by at most ~`d · ε_f32`
///   relative (store dimensions are small: the workspace pins an absolute
///   drift below [`F32_STORE_LOGIT_TOL`] on its test models). Within the
///   f32 path, results remain bitwise identical across batch sizes/orders,
///   `GCON_THREADS`, and kernel tiers — the determinism matrix is
///   per-dtype, exactly as in `gcon-linalg`.
///
/// Training, the DP accountants, and noise calibration always stay `f64`;
/// this knob quantizes only the *frozen serving copy* of already-released
/// quantities, so it does not touch the privacy analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreDtype {
    /// Double-precision store: exact serving (the default).
    F64,
    /// Single-precision store: fast serving within [`F32_STORE_LOGIT_TOL`].
    F32,
}

impl StoreDtype {
    /// Lowercase name (`f64` / `f32`), as accepted by `GCON_STORE_DTYPE`.
    pub fn name(self) -> &'static str {
        match self {
            StoreDtype::F64 => "f64",
            StoreDtype::F32 => "f32",
        }
    }

    /// The `gcon-linalg` dtype this store mode computes in.
    pub fn dtype(self) -> Dtype {
        match self {
            StoreDtype::F64 => Dtype::F64,
            StoreDtype::F32 => Dtype::F32,
        }
    }

    /// The process-wide default store dtype: `GCON_STORE_DTYPE` (`f64` /
    /// `f32`) if set, else [`StoreDtype::F64`]. Resolved once on first use
    /// (like `GCON_KERNEL_TIER`); an unrecognized value warns on stderr and
    /// falls back to `f64`. [`ServingModel::build`] uses this; tests and
    /// callers that need a specific dtype regardless of environment use
    /// [`ServingModel::build_with_dtype`].
    pub fn from_env() -> Self {
        static INIT: OnceLock<StoreDtype> = OnceLock::new();
        *INIT.get_or_init(|| {
            gcon_runtime::envknob::env_knob(
                "gcon-serve",
                "GCON_STORE_DTYPE",
                StoreDtype::F64,
                "f64|f32",
                "f64",
                parse_store_dtype,
            )
        })
    }
}

/// Pure parser behind [`StoreDtype::from_env`] (case-insensitive); `None`
/// is "unrecognized — fall back to f64 with a warning".
pub(crate) fn parse_store_dtype(value: &str) -> Option<StoreDtype> {
    match value.to_ascii_lowercase().as_str() {
        "f64" => Some(StoreDtype::F64),
        "f32" => Some(StoreDtype::F32),
        _ => None,
    }
}

/// Absolute logits-drift budget of the `f32` store on the workspace's test
/// models: `|logit_f32 − logit_f64| < F32_STORE_LOGIT_TOL` per entry.
///
/// Why this is comfortably safe: with store rows and `Θ_priv` entries of
/// magnitude O(1) and feature dimension `d` in the tens-to-hundreds, each
/// f32 logit accumulates ≤ `d` products each carrying ~2⁻²⁴ relative
/// rounding, for a worst-case absolute drift around `d · 2⁻²⁴ · max|x·θ|`
/// ≈ 10⁻⁵ — two orders of magnitude inside this budget. The
/// `serving_equivalence` and crate tests assert the measured drift against
/// this constant on random graphs.
pub const F32_STORE_LOGIT_TOL: f64 = 1e-3;

/// The frozen store + released parameters, in the dtype picked at build
/// time. The f32 variant holds the quantized copies; nothing f64 is kept
/// (the point is the halved resident footprint).
#[derive(Clone, Debug)]
enum StoreRepr {
    F64 {
        /// Propagated feature store, `n × d` (already `1/s`-scaled).
        store: Mat,
        /// Released parameters `Θ_priv`, `d × c`.
        theta: Mat,
    },
    F32 {
        /// Quantized store, `n × d`.
        store: Mat<f32>,
        /// Quantized `Θ_priv`, `d × c`.
        theta: Mat<f32>,
    },
}

/// Per-session head workspace in the dtype of the model it was created
/// from ([`ServingModel::session_ws`]); the forward paths match it against
/// the store representation.
#[derive(Clone, Debug)]
pub(crate) enum SessionWs {
    F64(HeadWorkspace<f64>),
    F32(HeadWorkspace<f32>),
}

/// A trained GCON model frozen for serving: the propagated feature matrix
/// (one row per node, precomputed once at build time) plus the released
/// parameters `Θ_priv`, in the [`StoreDtype`] picked at build time.
///
/// Queries index rows of the store and run only the dense head, so a query
/// costs `O(d·c)` regardless of graph size — versus the full-graph
/// propagation every `gcon-core::infer` call pays. With the default
/// [`StoreDtype::F64`] store, answers are bitwise identical to the
/// corresponding entry point (crate docs: *Exactness*); the
/// [`StoreDtype::F32`] store trades ≤ [`F32_STORE_LOGIT_TOL`] logits drift
/// for a faster, half-footprint head (see [`StoreDtype`]).
///
/// The model itself is immutable and shareable (`&ServingModel` /
/// `Arc<ServingModel>` across threads); per-thread mutable state lives in
/// [`ServingSession`] (direct calls) or inside [`crate::BatchQueue`]
/// (micro-batched calls).
#[derive(Clone, Debug)]
pub struct ServingModel {
    repr: StoreRepr,
    mode: ServingMode,
}

impl ServingModel {
    /// Builds the store by running the feature stage of `mode` once —
    /// [`gcon_core::infer::public_features`] or
    /// [`gcon_core::infer::private_features`], on the shared runtime pool —
    /// and freezing the result together with `Θ_priv`, in the process-wide
    /// default dtype ([`StoreDtype::from_env`], i.e. `GCON_STORE_DTYPE` or
    /// `f64`).
    ///
    /// Cost equals exactly one call of the corresponding inference entry
    /// point (the propagation itself always runs in `f64`; an f32 store is
    /// quantized from its result, once); every subsequent query is a
    /// dense-head forward.
    pub fn build(model: &TrainedGcon, graph: &Graph, features: &Mat, mode: ServingMode) -> Self {
        Self::build_with_dtype(model, graph, features, mode, StoreDtype::from_env())
    }

    /// [`ServingModel::build`] with an explicit store dtype, ignoring
    /// `GCON_STORE_DTYPE`. See [`StoreDtype`] for the precision contract.
    pub fn build_with_dtype(
        model: &TrainedGcon,
        graph: &Graph,
        features: &Mat,
        mode: ServingMode,
        dtype: StoreDtype,
    ) -> Self {
        assert_eq!(
            graph.num_nodes(),
            features.rows(),
            "ServingModel::build: graph has {} nodes but features have {} rows",
            graph.num_nodes(),
            features.rows()
        );
        let store = match mode {
            ServingMode::Public => public_features(model, graph, features),
            ServingMode::Private => private_features(model, graph, features),
        };
        debug_assert_eq!(store.cols(), model.theta.rows());
        let repr = match dtype {
            StoreDtype::F64 => StoreRepr::F64 { store, theta: model.theta.clone() },
            StoreDtype::F32 => {
                StoreRepr::F32 { store: store.convert(), theta: model.theta.convert() }
            }
        };
        Self { repr, mode }
    }

    /// Freezes an already-assembled f64 feature store (plus `Θ_priv`) into
    /// a serving model in `dtype` — the constructor the dynamic layer uses
    /// to publish a refreshed store generation without re-running the
    /// feature stage. The store must be the `1/s`-scaled concatenation the
    /// feature stage produces; an f32 model quantizes both inputs here,
    /// exactly like [`ServingModel::build_with_dtype`] does.
    pub(crate) fn from_store(
        store: Mat,
        theta: &Mat,
        mode: ServingMode,
        dtype: StoreDtype,
    ) -> Self {
        let repr = match dtype {
            StoreDtype::F64 => StoreRepr::F64 { store, theta: theta.clone() },
            StoreDtype::F32 => StoreRepr::F32 { store: store.convert(), theta: theta.convert() },
        };
        Self { repr, mode }
    }

    /// Number of nodes the store can answer queries for.
    pub fn num_nodes(&self) -> usize {
        match &self.repr {
            StoreRepr::F64 { store, .. } => store.rows(),
            StoreRepr::F32 { store, .. } => store.rows(),
        }
    }

    /// Number of classes (columns of every logit row).
    pub fn num_classes(&self) -> usize {
        match &self.repr {
            StoreRepr::F64 { theta, .. } => theta.cols(),
            StoreRepr::F32 { theta, .. } => theta.cols(),
        }
    }

    /// Propagated feature dimension `d = s·d₁` of the store.
    pub fn feature_dim(&self) -> usize {
        match &self.repr {
            StoreRepr::F64 { store, .. } => store.cols(),
            StoreRepr::F32 { store, .. } => store.cols(),
        }
    }

    /// Which inference protocol this store reproduces.
    pub fn mode(&self) -> ServingMode {
        self.mode
    }

    /// The dtype this store was frozen in.
    pub fn store_dtype(&self) -> StoreDtype {
        match &self.repr {
            StoreRepr::F64 { .. } => StoreDtype::F64,
            StoreRepr::F32 { .. } => StoreDtype::F32,
        }
    }

    /// The frozen f64 feature store (`num_nodes × feature_dim`), if this
    /// model was built with [`StoreDtype::F64`]. Row `i` is the stage-1
    /// feature vector of node `i`.
    pub fn store_f64(&self) -> Option<&Mat> {
        match &self.repr {
            StoreRepr::F64 { store, .. } => Some(store),
            StoreRepr::F32 { .. } => None,
        }
    }

    /// The quantized f32 feature store, if this model was built with
    /// [`StoreDtype::F32`].
    pub fn store_f32(&self) -> Option<&Mat<f32>> {
        match &self.repr {
            StoreRepr::F64 { .. } => None,
            StoreRepr::F32 { store, .. } => Some(store),
        }
    }

    /// A query session bound to this model: owns the reusable head
    /// workspace (in the store's dtype), so repeated queries through one
    /// session allocate nothing at steady state. Create one per serving
    /// thread.
    pub fn session(&self) -> ServingSession<'_> {
        ServingSession {
            model: self,
            ws: self.session_ws(),
            logits64: Mat::default(),
            preds: Vec::new(),
        }
    }

    /// A head workspace matching this model's store dtype (for
    /// [`crate::BatchQueue`], which owns its own instead of a session).
    pub(crate) fn session_ws(&self) -> SessionWs {
        match &self.repr {
            StoreRepr::F64 { .. } => SessionWs::F64(HeadWorkspace::new()),
            StoreRepr::F32 { .. } => SessionWs::F32(HeadWorkspace::new()),
        }
    }

    /// Logits of one node (allocating convenience; serving loops use
    /// [`ServingSession::logits_into`] or the batched paths instead).
    pub fn logits(&self, node: usize) -> Vec<f64> {
        let mut out = Vec::new();
        self.session().logits_into(node, &mut out);
        out
    }

    /// Hard class prediction of one node (allocating convenience).
    pub fn predict(&self, node: usize) -> usize {
        let mut session = self.session();
        session.predict(node)
    }

    /// Hard predictions for **every** node in the store — the full-graph
    /// answer [`gcon_core::infer::public_predict`] / `private_predict`
    /// produce, here at head-only cost. (Argmax commutes with the monotone
    /// `f32 → f64` widening, so this is the same per-dtype answer every
    /// query path gives.)
    pub fn predict_all(&self) -> Vec<usize> {
        match &self.repr {
            StoreRepr::F64 { store, theta } => {
                reduce::row_argmax(&gcon_linalg::ops::matmul(store, theta))
            }
            StoreRepr::F32 { store, theta } => {
                reduce::row_argmax(&gcon_linalg::ops::matmul(store, theta))
            }
        }
    }

    /// The head forward every query path funnels through: gather `nodes`
    /// from the store, multiply by `Θ_priv` on `ws` (in the store dtype),
    /// and write the `batch × c` logits into `out` — widened to `f64` for
    /// the f32 store, copied bitwise for the f64 store. The widening/copy
    /// touches only `batch × c` elements, negligible next to the
    /// `batch × d × c` GEMM.
    pub(crate) fn forward_widen_into(&self, nodes: &[usize], ws: &mut SessionWs, out: &mut Mat) {
        let n = self.num_nodes();
        for &node in nodes {
            assert!(node < n, "ServingModel: query for node {node} but the store has {n} nodes");
        }
        match (&self.repr, ws) {
            (StoreRepr::F64 { store, theta }, SessionWs::F64(ws)) => {
                let logits = ws.forward(store, nodes, theta);
                out.reset_to_zeros(logits.rows(), logits.cols());
                out.as_mut_slice().copy_from_slice(logits.as_slice());
            }
            (StoreRepr::F32 { store, theta }, SessionWs::F32(ws)) => {
                let logits = ws.forward(store, nodes, theta);
                out.reset_to_zeros(logits.rows(), logits.cols());
                for (o, &v) in out.as_mut_slice().iter_mut().zip(logits.as_slice()) {
                    *o = v as f64;
                }
            }
            // `SessionWs` values only come from `session_ws()` on the same
            // model, so the dtypes always agree.
            _ => unreachable!("ServingModel: session workspace dtype does not match the store"),
        }
    }

    // ------------------------------------------------- sharding / slicing

    /// A serving model holding only store rows `start..end` (same `Θ_priv`,
    /// mode, and dtype). The slice is a **bitwise copy** — no arithmetic —
    /// so for every global node `g` in `start..end`, `slice.logits(g -
    /// start)` is bitwise equal to `self.logits(g)` (each store row's head
    /// forward depends only on that row and `Θ_priv`). This is the unit a
    /// fleet shard serves; combine with [`ServingModel::to_bytes`] for the
    /// wire handoff, or use [`ServingModel::slice_bytes`] directly.
    ///
    /// # Panics
    /// Panics if `start > end` or `end > num_nodes()` (coordinator-side
    /// shapes are trusted; the decode surface stays fail-closed).
    pub fn slice_rows(&self, start: usize, end: usize) -> ServingModel {
        let repr = match &self.repr {
            StoreRepr::F64 { store, theta } => {
                let art =
                    serialize::StoreArtifact::F64 { store: store.clone(), theta: theta.clone() }
                        .slice_rows(start, end);
                let serialize::StoreArtifact::F64 { store, theta } = art else { unreachable!() };
                StoreRepr::F64 { store, theta }
            }
            StoreRepr::F32 { store, theta } => {
                let art =
                    serialize::StoreArtifact::F32 { store: store.clone(), theta: theta.clone() }
                        .slice_rows(start, end);
                let serialize::StoreArtifact::F32 { store, theta } = art else { unreachable!() };
                StoreRepr::F32 { store, theta }
            }
        };
        Self { repr, mode: self.mode }
    }

    /// The encoded **store-slice artifact** for rows `start..end` — the
    /// shard-handoff payload a coordinator ships in a `ShardAssign` frame.
    /// The bytes are an ordinary v3 store artifact of the slice, so the
    /// worker decodes them with the same fail-closed
    /// [`ServingModel::from_bytes`] path used for whole stores.
    pub fn slice_bytes(&self, start: usize, end: usize) -> bytes::Bytes {
        self.slice_rows(start, end).to_bytes()
    }

    /// Per-chunk fingerprints of the frozen store: one FNV-1a-64 hash over
    /// the **bit patterns** of each `chunk_rows`-row block of the store,
    /// plus one final element hashing `Θ_priv`. Because every query path is
    /// bitwise-deterministic, two replicas holding the same slice must
    /// report identical fingerprints — this is the whole consensus check of
    /// the fleet layer; a single flipped mantissa bit anywhere in a chunk
    /// changes that chunk's fingerprint.
    ///
    /// # Panics
    /// Panics if `chunk_rows == 0`.
    pub fn chunk_fingerprints(&self, chunk_rows: usize) -> Vec<u64> {
        assert!(chunk_rows >= 1, "chunk_fingerprints: chunk_rows must be ≥ 1");
        let mut out = Vec::new();
        match &self.repr {
            StoreRepr::F64 { store, theta } => {
                let row = store.cols().max(1);
                for chunk in store.as_slice().chunks(chunk_rows * row) {
                    out.push(fnv1a_u64(chunk.iter().map(|v| v.to_bits())));
                }
                out.push(fnv1a_u64(theta.as_slice().iter().map(|v| v.to_bits())));
            }
            StoreRepr::F32 { store, theta } => {
                let row = store.cols().max(1);
                for chunk in store.as_slice().chunks(chunk_rows * row) {
                    out.push(fnv1a_u64(chunk.iter().map(|v| u64::from(v.to_bits()))));
                }
                out.push(fnv1a_u64(theta.as_slice().iter().map(|v| u64::from(v.to_bits()))));
            }
        }
        out
    }

    // ------------------------------------------------------- persistence

    /// Serializes the frozen store to the v3 store artifact
    /// ([`gcon_core::serialize::store_to_bytes`]): mode, dtype, and both
    /// payloads bitwise, 8-byte-aligned for a future zero-copy mmap reader.
    pub fn to_bytes(&self) -> bytes::Bytes {
        let data = match &self.repr {
            StoreRepr::F64 { store, theta } => {
                serialize::StoreArtifact::F64 { store: store.clone(), theta: theta.clone() }
            }
            StoreRepr::F32 { store, theta } => {
                serialize::StoreArtifact::F32 { store: store.clone(), theta: theta.clone() }
            }
        };
        serialize::store_to_bytes(&serialize::PersistedStore {
            mode_tag: match self.mode {
                ServingMode::Public => 0,
                ServingMode::Private => 1,
            },
            data,
        })
    }

    /// Decodes a model persisted by [`ServingModel::to_bytes`] /
    /// [`ServingModel::save`]. The restored store is **bitwise identical**
    /// to the one that was saved — no propagation, no re-quantization —
    /// which is the whole point: restart cost is reading the file, not
    /// re-running the feature stage.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, serialize::DecodeError> {
        let persisted = serialize::store_from_bytes(bytes)?;
        let mode = match persisted.mode_tag {
            0 => ServingMode::Public,
            1 => ServingMode::Private,
            t => return Err(serialize::DecodeError::BadTag("serving mode", t)),
        };
        let repr = match persisted.data {
            serialize::StoreArtifact::F64 { store, theta } => {
                if store.cols() != theta.rows() {
                    return Err(serialize::DecodeError::Invalid(
                        "store feature dim does not match theta rows",
                    ));
                }
                StoreRepr::F64 { store, theta }
            }
            serialize::StoreArtifact::F32 { store, theta } => {
                if store.cols() != theta.rows() {
                    return Err(serialize::DecodeError::Invalid(
                        "store feature dim does not match theta rows",
                    ));
                }
                StoreRepr::F32 { store, theta }
            }
        };
        Ok(Self { repr, mode })
    }

    /// Writes the store artifact to a file (see [`ServingModel::to_bytes`]).
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Reads a store artifact back from a file — O(file size), the restart
    /// path `gcond --store` uses instead of re-propagating the graph.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

/// FNV-1a over the little-endian bytes of each 64-bit word — the stable,
/// dependency-free hash behind [`ServingModel::chunk_fingerprints`].
fn fnv1a_u64(words: impl Iterator<Item = u64>) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    hash
}

/// A per-thread query interface over a [`ServingModel`]: the model is shared
/// immutably, the session owns the mutable workspace buffers (head
/// workspace in the store dtype + the widened `f64` logit block). At steady
/// state (buffers grown to the largest batch seen) no query path allocates.
#[derive(Clone, Debug)]
pub struct ServingSession<'m> {
    model: &'m ServingModel,
    ws: SessionWs,
    logits64: Mat,
    preds: Vec<usize>,
}

impl ServingSession<'_> {
    /// Logit rows for a batch of nodes, always as `f64`: with an f64 store,
    /// row `r` is bitwise equal to the logits of node `nodes[r]` from the
    /// corresponding `gcon-core::infer` entry point, for any batch
    /// size/order (duplicates allowed); with an f32 store, row `r` is the
    /// widened f32 logits, within [`F32_STORE_LOGIT_TOL`] of that
    /// reference and itself batch-invariant bitwise.
    pub fn logits_batch(&mut self, nodes: &[usize]) -> &Mat {
        self.model.forward_widen_into(nodes, &mut self.ws, &mut self.logits64);
        &self.logits64
    }

    /// Logits of a single node written into `out` (cleared and refilled;
    /// the caller's allocation is reused across calls).
    pub fn logits_into(&mut self, node: usize, out: &mut Vec<f64>) {
        self.model.forward_widen_into(
            std::slice::from_ref(&node),
            &mut self.ws,
            &mut self.logits64,
        );
        out.clear();
        out.extend_from_slice(self.logits64.row(0));
    }

    /// Hard class prediction of a single node.
    pub fn predict(&mut self, node: usize) -> usize {
        self.model.forward_widen_into(
            std::slice::from_ref(&node),
            &mut self.ws,
            &mut self.logits64,
        );
        gcon_linalg::vecops::argmax(self.logits64.row(0))
    }

    /// Hard predictions for a batch of nodes (position `r` answers
    /// `nodes[r]`). The returned slice borrows a session buffer that is
    /// overwritten by the next call.
    pub fn predict_batch(&mut self, nodes: &[usize]) -> &[usize] {
        self.model.forward_widen_into(nodes, &mut self.ws, &mut self.logits64);
        self.preds.clear();
        self.preds.extend(self.logits64.rows_iter().map(gcon_linalg::vecops::argmax));
        &self.preds
    }

    /// The model this session queries.
    pub fn model(&self) -> &ServingModel {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::tiny_trained;
    use gcon_core::infer::{private_logits, public_logits};

    #[test]
    fn build_reports_shapes_and_mode() {
        let (model, graph, x) = tiny_trained();
        for dtype in [StoreDtype::F64, StoreDtype::F32] {
            for mode in [ServingMode::Public, ServingMode::Private] {
                let serving = ServingModel::build_with_dtype(model, graph, x, mode, dtype);
                assert_eq!(serving.num_nodes(), graph.num_nodes());
                assert_eq!(serving.num_classes(), model.num_classes);
                assert_eq!(serving.feature_dim(), model.dim());
                assert_eq!(serving.mode(), mode);
                assert_eq!(serving.store_dtype(), dtype);
                let shape = (graph.num_nodes(), model.dim());
                match dtype {
                    StoreDtype::F64 => {
                        assert_eq!(serving.store_f64().unwrap().shape(), shape);
                        assert!(serving.store_f32().is_none());
                    }
                    StoreDtype::F32 => {
                        assert_eq!(serving.store_f32().unwrap().shape(), shape);
                        assert!(serving.store_f64().is_none());
                    }
                }
            }
        }
        assert_eq!(ServingMode::Public.name(), "public");
        assert_eq!(ServingMode::Private.name(), "private");
        assert_eq!(StoreDtype::F64.name(), "f64");
        assert_eq!(StoreDtype::F32.name(), "f32");
        assert_eq!(StoreDtype::F64.dtype(), gcon_linalg::Dtype::F64);
        assert_eq!(StoreDtype::F32.dtype(), gcon_linalg::Dtype::F32);
    }

    /// `save` → `load` restores the exact frozen store: bitwise-equal
    /// payloads in both dtypes and modes, and bitwise-equal query answers —
    /// the restart path does no arithmetic at all.
    #[test]
    fn save_load_restores_store_bitwise() {
        let (model, graph, x) = tiny_trained();
        let dir = std::env::temp_dir().join("gcon_serve_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        for dtype in [StoreDtype::F64, StoreDtype::F32] {
            for mode in [ServingMode::Public, ServingMode::Private] {
                let built = ServingModel::build_with_dtype(model, graph, x, mode, dtype);
                let path = dir.join(format!("{}_{}.gconstore", mode.name(), dtype.name()));
                built.save(&path).unwrap();
                let loaded = ServingModel::load(&path).unwrap();
                assert_eq!(loaded.mode(), mode);
                assert_eq!(loaded.store_dtype(), dtype);
                match dtype {
                    StoreDtype::F64 => assert_eq!(
                        loaded.store_f64().unwrap().as_slice(),
                        built.store_f64().unwrap().as_slice()
                    ),
                    StoreDtype::F32 => assert_eq!(
                        loaded.store_f32().unwrap().as_slice(),
                        built.store_f32().unwrap().as_slice()
                    ),
                }
                for node in [0, 7, graph.num_nodes() - 1] {
                    assert_eq!(
                        loaded.logits(node),
                        built.logits(node),
                        "{} {} node {node}: loaded store must answer bitwise-identically",
                        mode.name(),
                        dtype.name()
                    );
                }
                std::fs::remove_file(&path).unwrap();
            }
        }
    }

    #[test]
    fn from_bytes_rejects_model_artifacts_and_garbage() {
        let (model, _, _) = tiny_trained();
        let model_bytes = gcon_core::serialize::to_bytes(model);
        assert!(ServingModel::from_bytes(&model_bytes).is_err());
        assert!(ServingModel::from_bytes(b"not a store").is_err());
        assert!(ServingModel::from_bytes(&[]).is_err());
    }

    #[test]
    fn single_queries_match_entry_points_bitwise() {
        let (model, graph, x) = tiny_trained();
        for (mode, reference) in [
            (ServingMode::Public, public_logits(model, graph, x)),
            (ServingMode::Private, private_logits(model, graph, x)),
        ] {
            let serving = ServingModel::build_with_dtype(model, graph, x, mode, StoreDtype::F64);
            let mut session = serving.session();
            let mut out = Vec::new();
            for node in 0..serving.num_nodes() {
                session.logits_into(node, &mut out);
                assert_eq!(out.as_slice(), reference.row(node), "{} node {node}", mode.name());
                assert_eq!(serving.logits(node), reference.row(node));
                assert_eq!(session.predict(node), serving.predict(node));
            }
            assert_eq!(serving.predict_all(), gcon_linalg::reduce::row_argmax(&reference));
        }
    }

    /// The f32 store's accuracy contract: every query path stays within
    /// [`F32_STORE_LOGIT_TOL`] of the f64 reference — with two orders of
    /// magnitude to spare on this model — and hard predictions agree.
    #[test]
    fn f32_store_logits_drift_within_contract() {
        let (model, graph, x) = tiny_trained();
        for (mode, reference) in [
            (ServingMode::Public, public_logits(model, graph, x)),
            (ServingMode::Private, private_logits(model, graph, x)),
        ] {
            let serving = ServingModel::build_with_dtype(model, graph, x, mode, StoreDtype::F32);
            let mut session = serving.session();
            let mut out = Vec::new();
            let mut max_drift: f64 = 0.0;
            for node in 0..serving.num_nodes() {
                session.logits_into(node, &mut out);
                for (a, b) in out.iter().zip(reference.row(node)) {
                    max_drift = max_drift.max((a - b).abs());
                }
            }
            assert!(
                max_drift < F32_STORE_LOGIT_TOL,
                "{}: f32 drift {max_drift:e} exceeds contract {F32_STORE_LOGIT_TOL:e}",
                mode.name()
            );
            // The documented bound argument says the real drift is ~1e-5;
            // leave headroom but catch a broken kernel masquerading as ok.
            assert!(max_drift < F32_STORE_LOGIT_TOL / 10.0, "drift suspiciously large");
            assert_eq!(serving.predict_all(), gcon_linalg::reduce::row_argmax(&reference));
        }
    }

    /// Within the f32 dtype, batching is still exact: any batch reproduces
    /// the single-query answers bitwise (the per-dtype determinism
    /// contract).
    #[test]
    fn f32_batched_queries_match_f32_single_queries_bitwise() {
        let (model, graph, x) = tiny_trained();
        let serving =
            ServingModel::build_with_dtype(model, graph, x, ServingMode::Public, StoreDtype::F32);
        let n = serving.num_nodes();
        let mut session = serving.session();
        let singles: Vec<Vec<f64>> = (0..n).map(|i| serving.logits(i)).collect();
        for nodes in [(0..n).rev().collect::<Vec<_>>(), vec![5, 5, 5], vec![n - 1]] {
            let logits = session.logits_batch(&nodes);
            for (r, &node) in nodes.iter().enumerate() {
                assert_eq!(logits.row(r), singles[node].as_slice(), "row {r} (node {node})");
            }
            let preds = session.predict_batch(&nodes).to_vec();
            for (r, &node) in nodes.iter().enumerate() {
                assert_eq!(preds[r], serving.predict(node));
            }
        }
    }

    #[test]
    fn batched_queries_match_sequential_bitwise_in_any_order() {
        let (model, graph, x) = tiny_trained();
        let serving =
            ServingModel::build_with_dtype(model, graph, x, ServingMode::Public, StoreDtype::F64);
        let reference = public_logits(model, graph, x);
        let n = serving.num_nodes();
        let mut session = serving.session();
        let batches: Vec<Vec<usize>> = vec![
            (0..n).collect(),
            (0..n).rev().collect(),
            vec![5, 5, 5, 5],
            vec![n - 1],
            (0..n).map(|i| (i * 7) % n).collect(),
        ];
        for nodes in &batches {
            let logits = session.logits_batch(nodes);
            assert_eq!(logits.shape(), (nodes.len(), serving.num_classes()));
            for (r, &node) in nodes.iter().enumerate() {
                assert_eq!(logits.row(r), reference.row(node), "row {r} (node {node})");
            }
            let preds = session.predict_batch(nodes).to_vec();
            for (r, &node) in nodes.iter().enumerate() {
                assert_eq!(preds[r], gcon_linalg::vecops::argmax(reference.row(node)));
            }
        }
    }

    /// Slicing is the fleet's correctness kernel: for every dtype, a row
    /// slice answers its global nodes bitwise-identically to the unsliced
    /// store, and the encoded slice round-trips through the ordinary store
    /// decoder.
    #[test]
    fn slice_rows_answers_bitwise_and_roundtrips() {
        let (model, graph, x) = tiny_trained();
        let n = graph.num_nodes();
        for dtype in [StoreDtype::F64, StoreDtype::F32] {
            let full = ServingModel::build_with_dtype(model, graph, x, ServingMode::Private, dtype);
            for (start, end) in [(0, n / 2), (n / 2, n), (3, 3), (0, n)] {
                let slice = full.slice_rows(start, end);
                assert_eq!(slice.num_nodes(), end - start);
                assert_eq!(slice.num_classes(), full.num_classes());
                assert_eq!(slice.mode(), full.mode());
                assert_eq!(slice.store_dtype(), dtype);
                for g in start..end {
                    assert_eq!(slice.logits(g - start), full.logits(g), "node {g}");
                }
                let decoded = ServingModel::from_bytes(&full.slice_bytes(start, end)).unwrap();
                if end > start {
                    assert_eq!(decoded.logits(0), full.logits(start));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_rows_rejects_bad_range() {
        let (model, graph, x) = tiny_trained();
        let full = ServingModel::build(model, graph, x, ServingMode::Public);
        let n = full.num_nodes();
        let _ = full.slice_rows(1, n + 1);
    }

    /// Fingerprints are the consensus primitive: equal slices agree, any
    /// bit flip in any chunk (or in theta) disagrees, and the chunk count
    /// is ⌈rows / chunk_rows⌉ + 1 (the trailing theta fingerprint).
    #[test]
    fn chunk_fingerprints_detect_any_flip() {
        let (model, graph, x) = tiny_trained();
        for dtype in [StoreDtype::F64, StoreDtype::F32] {
            let a = ServingModel::build_with_dtype(model, graph, x, ServingMode::Public, dtype);
            let b = ServingModel::from_bytes(&a.to_bytes()).unwrap();
            let n = a.num_nodes();
            for chunk_rows in [1, 7, n, n + 5] {
                let fa = a.chunk_fingerprints(chunk_rows);
                assert_eq!(fa.len(), n.div_ceil(chunk_rows) + 1);
                assert_eq!(fa, b.chunk_fingerprints(chunk_rows), "replicas must agree");
            }
            // A half slice agrees with the full store's matching prefix
            // only when chunk boundaries line up — and always with itself.
            let half = a.slice_rows(0, n / 2);
            assert_eq!(
                half.chunk_fingerprints(n / 2).first(),
                a.chunk_fingerprints(n / 2).first(),
                "aligned chunk of the same rows must hash identically"
            );
        }
        // Flipping one payload bit flips the owning chunk's fingerprint.
        let a =
            ServingModel::build_with_dtype(model, graph, x, ServingMode::Public, StoreDtype::F64);
        let mut bytes = a.to_bytes().to_vec();
        let last = bytes.len() - 3;
        bytes[last] ^= 0x01;
        let corrupted = ServingModel::from_bytes(&bytes).unwrap();
        assert_ne!(a.chunk_fingerprints(8), corrupted.chunk_fingerprints(8));
    }

    #[test]
    #[should_panic(expected = "the store has")]
    fn out_of_bounds_query_panics() {
        let (model, graph, x) = tiny_trained();
        let serving = ServingModel::build(model, graph, x, ServingMode::Public);
        serving.predict(serving.num_nodes());
    }
}
