//! The precomputed feature store and the query interface over it.

use gcon_core::infer::{private_features, public_features};
use gcon_core::TrainedGcon;
use gcon_graph::Graph;
use gcon_linalg::{reduce, Mat};
use gcon_nn::HeadWorkspace;

/// Which inference protocol the precomputed store reproduces (the two modes
/// of `gcon-core::infer`, Sec. IV-C6 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServingMode {
    /// Full training-time propagation of the (public) test graph — serving
    /// twin of [`gcon_core::infer::public_logits`].
    Public,
    /// One-hop aggregation `R̂ = (1−α_I)Ã + α_I·I` only (Eq. 16) — serving
    /// twin of [`gcon_core::infer::private_logits`]. Row `i` of the store
    /// still depends only on node `i`'s own edges; precomputing it changes
    /// *when* the admissible aggregation happens, not *what* is revealed.
    Private,
}

impl ServingMode {
    /// Lowercase name (`public` / `private`), for logs and bench labels.
    pub fn name(self) -> &'static str {
        match self {
            ServingMode::Public => "public",
            ServingMode::Private => "private",
        }
    }
}

/// A trained GCON model frozen for serving: the propagated feature matrix
/// (one row per node, precomputed once at build time) plus the released
/// parameters `Θ_priv`.
///
/// Queries index rows of the store and run only the dense head, so a query
/// costs `O(d·c)` regardless of graph size — versus the full-graph
/// propagation every `gcon-core::infer` call pays. Answers are bitwise
/// identical to the corresponding entry point (crate docs: *Exactness*).
///
/// The model itself is immutable and shareable (`&ServingModel` /
/// `Arc<ServingModel>` across threads); per-thread mutable state lives in
/// [`ServingSession`] (direct calls) or inside [`crate::BatchQueue`]
/// (micro-batched calls).
#[derive(Clone, Debug)]
pub struct ServingModel {
    /// Propagated feature store, `n × d` (already `1/s`-scaled).
    store: Mat,
    /// Released parameters `Θ_priv`, `d × c`.
    theta: Mat,
    mode: ServingMode,
}

impl ServingModel {
    /// Builds the store by running the feature stage of `mode` once —
    /// [`gcon_core::infer::public_features`] or
    /// [`gcon_core::infer::private_features`], on the shared runtime pool —
    /// and freezing the result together with `Θ_priv`.
    ///
    /// Cost equals exactly one call of the corresponding inference entry
    /// point; every subsequent query is a dense-head forward.
    pub fn build(model: &TrainedGcon, graph: &Graph, features: &Mat, mode: ServingMode) -> Self {
        assert_eq!(
            graph.num_nodes(),
            features.rows(),
            "ServingModel::build: graph has {} nodes but features have {} rows",
            graph.num_nodes(),
            features.rows()
        );
        let store = match mode {
            ServingMode::Public => public_features(model, graph, features),
            ServingMode::Private => private_features(model, graph, features),
        };
        debug_assert_eq!(store.cols(), model.theta.rows());
        Self { store, theta: model.theta.clone(), mode }
    }

    /// Number of nodes the store can answer queries for.
    pub fn num_nodes(&self) -> usize {
        self.store.rows()
    }

    /// Number of classes (columns of every logit row).
    pub fn num_classes(&self) -> usize {
        self.theta.cols()
    }

    /// Propagated feature dimension `d = s·d₁` of the store.
    pub fn feature_dim(&self) -> usize {
        self.store.cols()
    }

    /// Which inference protocol this store reproduces.
    pub fn mode(&self) -> ServingMode {
        self.mode
    }

    /// The frozen propagated feature store (`num_nodes × feature_dim`).
    /// Row `i` is the stage-1 feature vector of node `i`.
    pub fn store(&self) -> &Mat {
        &self.store
    }

    /// A query session bound to this model: owns the reusable head
    /// workspace, so repeated queries through one session allocate nothing
    /// at steady state. Create one per serving thread.
    pub fn session(&self) -> ServingSession<'_> {
        ServingSession { model: self, ws: HeadWorkspace::new(), preds: Vec::new() }
    }

    /// Logits of one node (allocating convenience; serving loops use
    /// [`ServingSession::logits_into`] or the batched paths instead).
    pub fn logits(&self, node: usize) -> Vec<f64> {
        let mut out = Vec::new();
        self.session().logits_into(node, &mut out);
        out
    }

    /// Hard class prediction of one node (allocating convenience).
    pub fn predict(&self, node: usize) -> usize {
        let mut session = self.session();
        session.predict(node)
    }

    /// Hard predictions for **every** node in the store — the full-graph
    /// answer [`gcon_core::infer::public_predict`] / `private_predict`
    /// produce, here at head-only cost.
    pub fn predict_all(&self) -> Vec<usize> {
        reduce::row_argmax(&gcon_linalg::ops::matmul(&self.store, &self.theta))
    }

    /// The head forward every query path funnels through: gather `nodes`
    /// from the store and multiply by `Θ_priv` on `ws`.
    pub(crate) fn forward_into<'w>(&self, nodes: &[usize], ws: &'w mut HeadWorkspace) -> &'w Mat {
        for &node in nodes {
            assert!(
                node < self.store.rows(),
                "ServingModel: query for node {node} but the store has {} nodes",
                self.store.rows()
            );
        }
        ws.forward(&self.store, nodes, &self.theta)
    }
}

/// A per-thread query interface over a [`ServingModel`]: the model is shared
/// immutably, the session owns the mutable workspace buffers. At steady
/// state (buffers grown to the largest batch seen) no query path allocates.
#[derive(Clone, Debug)]
pub struct ServingSession<'m> {
    model: &'m ServingModel,
    ws: HeadWorkspace,
    preds: Vec<usize>,
}

impl ServingSession<'_> {
    /// Logit rows for a batch of nodes: row `r` of the result is bitwise
    /// equal to the logits of node `nodes[r]` from the corresponding
    /// `gcon-core::infer` entry point, for any batch size/order (duplicates
    /// allowed).
    pub fn logits_batch(&mut self, nodes: &[usize]) -> &Mat {
        self.model.forward_into(nodes, &mut self.ws)
    }

    /// Logits of a single node written into `out` (cleared and refilled;
    /// the caller's allocation is reused across calls).
    pub fn logits_into(&mut self, node: usize, out: &mut Vec<f64>) {
        let logits = self.model.forward_into(std::slice::from_ref(&node), &mut self.ws);
        out.clear();
        out.extend_from_slice(logits.row(0));
    }

    /// Hard class prediction of a single node.
    pub fn predict(&mut self, node: usize) -> usize {
        let logits = self.model.forward_into(std::slice::from_ref(&node), &mut self.ws);
        gcon_linalg::vecops::argmax(logits.row(0))
    }

    /// Hard predictions for a batch of nodes (position `r` answers
    /// `nodes[r]`). The returned slice borrows a session buffer that is
    /// overwritten by the next call.
    pub fn predict_batch(&mut self, nodes: &[usize]) -> &[usize] {
        let model = self.model;
        model.forward_into(nodes, &mut self.ws);
        self.preds.clear();
        self.preds.extend(self.ws.logits().rows_iter().map(gcon_linalg::vecops::argmax));
        &self.preds
    }

    /// The model this session queries.
    pub fn model(&self) -> &ServingModel {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::tiny_trained;
    use gcon_core::infer::{private_logits, public_logits};

    #[test]
    fn build_reports_shapes_and_mode() {
        let (model, graph, x) = tiny_trained();
        for mode in [ServingMode::Public, ServingMode::Private] {
            let serving = ServingModel::build(model, graph, x, mode);
            assert_eq!(serving.num_nodes(), graph.num_nodes());
            assert_eq!(serving.num_classes(), model.num_classes);
            assert_eq!(serving.feature_dim(), model.dim());
            assert_eq!(serving.mode(), mode);
            assert_eq!(serving.store().shape(), (graph.num_nodes(), model.dim()));
        }
        assert_eq!(ServingMode::Public.name(), "public");
        assert_eq!(ServingMode::Private.name(), "private");
    }

    #[test]
    fn single_queries_match_entry_points_bitwise() {
        let (model, graph, x) = tiny_trained();
        for (mode, reference) in [
            (ServingMode::Public, public_logits(model, graph, x)),
            (ServingMode::Private, private_logits(model, graph, x)),
        ] {
            let serving = ServingModel::build(model, graph, x, mode);
            let mut session = serving.session();
            let mut out = Vec::new();
            for node in 0..serving.num_nodes() {
                session.logits_into(node, &mut out);
                assert_eq!(out.as_slice(), reference.row(node), "{} node {node}", mode.name());
                assert_eq!(serving.logits(node), reference.row(node));
                assert_eq!(session.predict(node), serving.predict(node));
            }
            assert_eq!(serving.predict_all(), gcon_linalg::reduce::row_argmax(&reference));
        }
    }

    #[test]
    fn batched_queries_match_sequential_bitwise_in_any_order() {
        let (model, graph, x) = tiny_trained();
        let serving = ServingModel::build(model, graph, x, ServingMode::Public);
        let reference = public_logits(model, graph, x);
        let n = serving.num_nodes();
        let mut session = serving.session();
        let batches: Vec<Vec<usize>> = vec![
            (0..n).collect(),
            (0..n).rev().collect(),
            vec![5, 5, 5, 5],
            vec![n - 1],
            (0..n).map(|i| (i * 7) % n).collect(),
        ];
        for nodes in &batches {
            let logits = session.logits_batch(nodes);
            assert_eq!(logits.shape(), (nodes.len(), serving.num_classes()));
            for (r, &node) in nodes.iter().enumerate() {
                assert_eq!(logits.row(r), reference.row(node), "row {r} (node {node})");
            }
            let preds = session.predict_batch(nodes).to_vec();
            for (r, &node) in nodes.iter().enumerate() {
                assert_eq!(preds[r], gcon_linalg::vecops::argmax(reference.row(node)));
            }
        }
    }

    #[test]
    #[should_panic(expected = "the store has")]
    fn out_of_bounds_query_panics() {
        let (model, graph, x) = tiny_trained();
        let serving = ServingModel::build(model, graph, x, ServingMode::Public);
        serving.predict(serving.num_nodes());
    }
}
