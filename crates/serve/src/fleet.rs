//! Sharded fleet serving: a [`Coordinator`] that partitions a frozen
//! store across [`ShardWorker`] processes and cross-checks replicas by
//! fingerprint consensus.
//!
//! # Topology
//!
//! ```text
//!                        clients
//!                           │ query / bulk
//!                     ┌─────▼──────┐
//!                     │ Coordinator│   owns the row partition + the
//!                     └─────┬──────┘   expected per-chunk fingerprints
//!            ┌──────────────┼──────────────┐
//!       shard 0        shard 1        shard k-1      (contiguous row
//!      ┌───┬───┐      ┌───┬───┐      ┌───┬───┐        ranges of the
//!      │r0 │r1 │      │r0 │r1 │      │r0 │r1 │        single store)
//!      └───┴───┘      └───┴───┘      └───┴───┘
//!       replicas — every replica of a shard holds the same slice
//! ```
//!
//! Each shard worker (`gcond --shard`) starts **empty**: the coordinator
//! ships it a row-range slice of the store as a v3 store artifact
//! ([`crate::ServingModel::slice_bytes`]) in a `ShardAssign` frame, and
//! from then on the worker answers `ShardQuery` frames for *global* node
//! ids inside its range. All fleet traffic rides the same fail-closed
//! [`crate::wire`] protocol as single-process serving.
//!
//! # Consensus and quarantine
//!
//! The whole stack is bitwise-deterministic, so "do these replicas
//! agree?" does not need voting on query answers: a replica's store
//! bytes determine its answers exactly. The coordinator therefore keeps,
//! per shard, the **expected** per-chunk store fingerprints (computed
//! locally from the slice it shipped,
//! [`crate::ServingModel::chunk_fingerprints`]) and compares them
//! against what each replica reports — at deploy time and on every
//! [`Coordinator::consensus_check`]. Any mismatch (bit rot, a corrupted
//! ship, a wrong artifact) **quarantines** that replica: it stops
//! receiving queries but stays connected, and the event is surfaced in
//! [`Coordinator::stats`]. Quarantine is one-way; re-deploying is the
//! only way back.
//!
//! # Failover
//!
//! A replica whose connection fails (even after the client's bounded
//! reconnect-and-replay, [`crate::GconClient::with_retries`]) is marked
//! **dead** and the query is rerouted to the next healthy replica of the
//! same shard — the caller sees the rerouted (bitwise identical) answer,
//! plus a `failovers` tick in [`Coordinator::stats`]. A shard with no
//! healthy replica left fails the query with
//! [`FleetError::NoHealthyReplica`].
//!
//! # Environment knobs
//!
//! | variable | default | meaning |
//! |---|---|---|
//! | `GCON_FLEET_CHUNK_ROWS` | 64 | fingerprint granularity, rows per chunk |
//! | `GCON_FLEET_RETRIES` | 2 | reconnect-and-replay attempts per shard call |
//! | `GCON_FLEET_TIMEOUT_MS` | 5000 | coordinator→shard socket read/write timeout |

use crate::client::GconClient;
use crate::model::ServingModel;
use crate::server::{ServerConfig, ServerHandle};
use crate::wire::{
    read_frame, write_frame, ErrorCode, Request, Response, ServerInfo, WireError, WireStats,
    PROTO_VERSION,
};
use gcon_linalg::Mat;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

/// Tuning knobs of the fleet layer, all overridable via `GCON_FLEET_*`
/// environment variables (see [`FleetConfig::from_env`]).
#[derive(Clone, Copy, Debug)]
pub struct FleetConfig {
    /// Rows per fingerprint chunk — the consensus granularity. Smaller
    /// chunks localise corruption better but cost more hashing. Must
    /// be ≥ 1.
    pub chunk_rows: usize,
    /// Reconnect-and-replay attempts per coordinator→shard call (passed
    /// to [`GconClient::with_retries`]). Zero disables retries.
    pub retries: u32,
    /// Socket read timeout for coordinator→shard connections. Also the
    /// effective failover detection bound: a hung replica is declared
    /// dead after `(retries + 1) ×` this.
    pub read_timeout: Duration,
    /// Socket write timeout for coordinator→shard connections.
    pub write_timeout: Duration,
    /// Maximum accepted frame-body length on coordinator→shard
    /// connections; must be large enough for the biggest shard artifact
    /// (the deploy path checks and fails closed otherwise).
    pub max_frame: usize,
}

impl Default for FleetConfig {
    /// 64-row fingerprint chunks, 2 retries, 5 s read / 5 s write
    /// timeouts, [`crate::wire::DEFAULT_MAX_FRAME`].
    fn default() -> Self {
        Self {
            chunk_rows: 64,
            retries: 2,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_frame: crate::wire::DEFAULT_MAX_FRAME,
        }
    }
}

impl FleetConfig {
    /// [`Default`] overridden by `GCON_FLEET_CHUNK_ROWS` (rows ≥ 1),
    /// `GCON_FLEET_RETRIES` (attempts) and `GCON_FLEET_TIMEOUT_MS`
    /// (milliseconds ≥ 1, sets both socket timeouts). Unparsable values
    /// fall back to the default with a warning (via
    /// [`gcon_runtime::envknob`]).
    pub fn from_env() -> Self {
        use gcon_runtime::envknob::env_knob;
        let d = Self::default();
        let timeout = env_knob(
            "gcon-serve",
            "GCON_FLEET_TIMEOUT_MS",
            d.read_timeout,
            "milliseconds ≥ 1",
            "5s",
            |v| v.parse::<u64>().ok().filter(|&ms| ms >= 1).map(Duration::from_millis),
        );
        Self {
            chunk_rows: env_knob(
                "gcon-serve",
                "GCON_FLEET_CHUNK_ROWS",
                d.chunk_rows,
                "an integer ≥ 1",
                "64",
                |v| v.parse::<usize>().ok().filter(|&n| n >= 1),
            ),
            retries: env_knob(
                "gcon-serve",
                "GCON_FLEET_RETRIES",
                d.retries,
                "an integer",
                "2",
                |v| v.parse::<u32>().ok(),
            ),
            read_timeout: timeout,
            write_timeout: timeout,
            max_frame: d.max_frame,
        }
    }
}

/// The fleet-layer error type: configuration/deploy failures, exhausted
/// shards, and wire errors that survived failover.
#[derive(Debug)]
pub enum FleetError {
    /// The requested topology cannot be built (zero shards, a shard with
    /// zero replicas, more shards than store rows, …).
    Config(String),
    /// A wire/transport failure not absorbed by failover (e.g. during
    /// deploy, before replicas exist to fail over to).
    Wire(WireError),
    /// Every replica of `shard` is dead or quarantined.
    NoHealthyReplica {
        /// The shard index with no healthy replica left.
        shard: usize,
    },
    /// A queried node id is outside the store.
    NodeOutOfRange {
        /// The offending node id.
        node: u64,
        /// The store's row count.
        nodes: u64,
    },
    /// A worker accepted the connection but rejected or mangled its
    /// assignment (wrong row count, undecodable artifact, …).
    ReplicaRejected {
        /// The shard index being deployed.
        shard: usize,
        /// The worker address.
        addr: String,
        /// What went wrong, for the operator.
        detail: String,
    },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Config(msg) => write!(f, "fleet configuration error: {msg}"),
            Self::Wire(e) => write!(f, "fleet wire error: {e}"),
            Self::NoHealthyReplica { shard } => {
                write!(f, "shard {shard} has no healthy replica left")
            }
            Self::NodeOutOfRange { node, nodes } => {
                write!(f, "node {node} out of range (store has {nodes} rows)")
            }
            Self::ReplicaRejected { shard, addr, detail } => {
                write!(f, "replica {addr} rejected shard {shard} deploy: {detail}")
            }
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for FleetError {
    fn from(e: WireError) -> Self {
        Self::Wire(e)
    }
}

// ====================================================================
// Shard worker
// ====================================================================

/// What an assigned worker holds: its identity and its slice of the
/// store, re-decoded from the shipped artifact.
struct ShardState {
    shard_id: u32,
    row_start: u64,
    model: Arc<ServingModel>,
}

/// A `gcond --shard` worker: a [`crate::Server`]-shaped TCP daemon that
/// starts with **no store** and acquires one over the wire via
/// `ShardAssign`. It answers `ShardQuery` (global node ids inside its
/// range), `ShardFingerprint` (consensus payload), `Stats`, `Health`;
/// plain `Query`/`Bulk` frames get [`ErrorCode::NotAssigned`] — clients
/// must route through the [`Coordinator`].
///
/// Unlike [`crate::Server`], the store is owned (swapped at runtime by
/// reassignment) rather than borrowed, so the worker has no lifetime
/// parameter. Assignment is process-global and survives reconnects —
/// that is what makes the coordinator's reconnect-and-replay safe.
pub struct ShardWorker {
    listener: TcpListener,
    local_addr: SocketAddr,
    config: ServerConfig,
    state: RwLock<Option<ShardState>>,
    shutdown: Arc<AtomicBool>,
    connections: AtomicU64,
    requests: AtomicU64,
    token_seq: AtomicU64,
}

impl ShardWorker {
    /// Binds `addr` (port 0 for ephemeral) with no assignment yet.
    pub fn bind(config: ServerConfig, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        assert!(config.max_frame >= 64, "ServerConfig::max_frame must be ≥ 64 bytes");
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        Ok(Self {
            listener,
            local_addr,
            config,
            state: RwLock::new(None),
            shutdown: Arc::new(AtomicBool::new(false)),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            token_seq: AtomicU64::new(0x6763_6F6E_6453_0001), // "gcondS" seed
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A clonable handle that can stop this worker from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle::new(self.shutdown.clone())
    }

    /// Accepts and serves connections until [`ServerHandle::stop`], then
    /// joins every connection thread and returns (blocks; run on a
    /// dedicated thread).
    pub fn run(&self) -> std::io::Result<()> {
        std::thread::scope(|scope| {
            while !self.shutdown.load(Ordering::SeqCst) {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        self.connections.fetch_add(1, Ordering::Relaxed);
                        scope.spawn(move || self.serve_connection(stream));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }
            Ok(())
        })
    }

    /// The current assignment's slice, if any (cloned `Arc` so the lock
    /// is never held across query work).
    fn assigned(&self) -> Option<(u32, u64, Arc<ServingModel>)> {
        let guard = self.state.read().unwrap();
        guard.as_ref().map(|s| (s.shard_id, s.row_start, s.model.clone()))
    }

    /// What `HelloAck` announces: zeros before assignment (the
    /// coordinator knows the real shape; a worker without a store has
    /// nothing truthful to claim), the slice's shape after.
    fn server_info(&self) -> ServerInfo {
        match self.assigned() {
            Some((_, _, model)) => ServerInfo {
                proto: PROTO_VERSION,
                mode: model.mode(),
                dtype: model.store_dtype(),
                nodes: model.num_nodes() as u64,
                feature_dim: model.feature_dim() as u32,
                classes: model.num_classes() as u32,
            },
            None => ServerInfo {
                proto: PROTO_VERSION,
                mode: crate::ServingMode::Public,
                dtype: crate::StoreDtype::F64,
                nodes: 0,
                feature_dim: 0,
                classes: 0,
            },
        }
    }

    /// Counter snapshot (the worker-side `Stats` answer).
    pub fn stats(&self) -> WireStats {
        WireStats {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            batches: 0,
            largest_batch: 0,
            rejected_overload: 0,
            quarantined: 0,
            failovers: 0,
            degraded: false,
        }
    }

    fn serve_connection(&self, stream: TcpStream) {
        if stream.set_read_timeout(Some(self.config.read_timeout)).is_err()
            || stream.set_write_timeout(Some(self.config.write_timeout)).is_err()
            || stream.set_nodelay(true).is_err()
        {
            return;
        }
        let mut reader = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        };
        let mut writer = std::io::BufWriter::new(stream);
        let _ = self.session_loop(&mut reader, &mut writer);
        let _ = std::io::Write::flush(&mut writer);
    }

    /// Same session shape as [`crate::Server`]: `Hello` handshake, token
    /// check, fail-closed on malformed frames.
    fn session_loop(
        &self,
        reader: &mut TcpStream,
        writer: &mut std::io::BufWriter<TcpStream>,
    ) -> Result<(), WireError> {
        let mut token: Option<u64> = None;
        loop {
            let body = match read_frame(reader, self.config.max_frame) {
                Ok(Some(body)) => body,
                Ok(None) => return Ok(()),
                Err(WireError::FrameTooLarge { .. }) => {
                    self.reply_error(writer, ErrorCode::TooLarge, "frame exceeds server bound")?;
                    return Ok(());
                }
                Err(e) => return Err(e),
            };
            let request = match Request::decode(&body) {
                Ok(r) => r,
                Err(_) => {
                    self.reply_error(writer, ErrorCode::BadFrame, "undecodable request frame")?;
                    return Ok(());
                }
            };
            match (request, &mut token) {
                (Request::Health, _) => {
                    self.reply(writer, &Response::HealthReply { ok: true })?;
                }
                (Request::Bye, _) => return Ok(()),
                (Request::Hello { proto }, tok @ None) => {
                    if proto != PROTO_VERSION {
                        self.reply_error(
                            writer,
                            ErrorCode::BadHandshake,
                            "unsupported protocol version",
                        )?;
                        return Ok(());
                    }
                    let t = self
                        .token_seq
                        .fetch_add(1, Ordering::Relaxed)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    *tok = Some(t);
                    self.reply(writer, &Response::HelloAck { token: t, info: self.server_info() })?;
                }
                (Request::Hello { .. }, Some(_)) => {
                    self.reply_error(writer, ErrorCode::BadHandshake, "duplicate hello")?;
                    return Ok(());
                }
                (req, Some(t)) => self.serve_authenticated(writer, req, *t)?,
                (_, None) => {
                    self.reply_error(writer, ErrorCode::BadHandshake, "hello required first")?;
                    return Ok(());
                }
            }
            std::io::Write::flush(writer)?;
        }
    }

    fn serve_authenticated(
        &self,
        writer: &mut std::io::BufWriter<TcpStream>,
        request: Request,
        session_token: u64,
    ) -> Result<(), WireError> {
        let presented = match &request {
            Request::Query { token, .. }
            | Request::Bulk { token, .. }
            | Request::Stats { token }
            | Request::ShardAssign { token, .. }
            | Request::ShardQuery { token, .. }
            | Request::ShardFingerprint { token, .. } => *token,
            _ => unreachable!("serve_authenticated: unauthenticated opcode"),
        };
        if presented != session_token {
            self.reply_error(writer, ErrorCode::BadToken, "wrong session token")?;
            return Err(WireError::Malformed("token mismatch"));
        }
        self.requests.fetch_add(1, Ordering::Relaxed);
        match request {
            Request::ShardAssign { shard_id, row_start, artifact, .. } => {
                let model = match ServingModel::from_bytes(&artifact) {
                    Ok(m) => m,
                    Err(_) => {
                        // Fail closed, keep the session: the coordinator
                        // decides whether to re-ship.
                        return self.reply_error(
                            writer,
                            ErrorCode::BadFrame,
                            "undecodable shard artifact",
                        );
                    }
                };
                let rows = model.num_nodes() as u64;
                *self.state.write().unwrap() =
                    Some(ShardState { shard_id, row_start, model: Arc::new(model) });
                self.reply(writer, &Response::ShardReady { shard_id, rows })
            }
            Request::ShardQuery { nodes, .. } => {
                let Some((_, row_start, model)) = self.assigned() else {
                    return self.reply_not_assigned(writer);
                };
                let rows = model.num_nodes() as u64;
                // Global → local translation; anything outside the
                // assigned range is the coordinator's routing bug, fail
                // closed with a typed error.
                let mut local = Vec::with_capacity(nodes.len());
                for &node in &nodes {
                    match node.checked_sub(row_start) {
                        Some(l) if l < rows => local.push(l as usize),
                        _ => {
                            return self.reply_error(
                                writer,
                                ErrorCode::NodeOutOfRange,
                                "node id outside this worker's assigned range",
                            );
                        }
                    }
                }
                self.stream_shard_logits(writer, &model, &local)
            }
            Request::ShardFingerprint { chunk_rows, .. } => {
                let Some((_, _, model)) = self.assigned() else {
                    return self.reply_not_assigned(writer);
                };
                let Ok(chunk) = usize::try_from(chunk_rows) else {
                    return self.reply_error(writer, ErrorCode::BadFrame, "chunk size too large");
                };
                if chunk == 0 {
                    return self.reply_error(writer, ErrorCode::BadFrame, "chunk size must be ≥ 1");
                }
                let fingerprints = model.chunk_fingerprints(chunk);
                self.reply(writer, &Response::ShardFingerprintReply { chunk_rows, fingerprints })
            }
            Request::Stats { .. } => self.reply(writer, &Response::StatsReply(self.stats())),
            // Plain client traffic belongs to the coordinator (which knows
            // the global partition); a shard worker answers only for its
            // range and only via shard frames.
            Request::Query { .. } | Request::Bulk { .. } => self.reply_error(
                writer,
                ErrorCode::NotAssigned,
                "plain queries are not served by shard workers; route via the coordinator",
            ),
            _ => unreachable!("serve_authenticated: unauthenticated opcode"),
        }
    }

    /// Answers a `ShardQuery` as a bounded-size `ShardLogits` stream +
    /// `BulkDone` — the same gathered-forward chunking as
    /// [`crate::Server`]'s bulk path (a shard query is already a batch),
    /// so answers are bitwise the batch-composition-invariant store
    /// logits.
    fn stream_shard_logits(
        &self,
        writer: &mut std::io::BufWriter<TcpStream>,
        model: &ServingModel,
        local: &[usize],
    ) -> Result<(), WireError> {
        let cols = model.num_classes();
        let rows_per_chunk = ((self.config.max_frame - 32) / (cols * 8).max(1)).max(1);
        let mut session = model.session();
        for (i, chunk) in local.chunks(rows_per_chunk).enumerate() {
            let logits = session.logits_batch(chunk);
            self.reply(
                writer,
                &Response::ShardLogits {
                    start: (i * rows_per_chunk) as u64,
                    cols: cols as u32,
                    values: logits.as_slice().to_vec(),
                },
            )?;
        }
        self.reply(writer, &Response::BulkDone { total_rows: local.len() as u64 })
    }

    fn reply_not_assigned(
        &self,
        writer: &mut std::io::BufWriter<TcpStream>,
    ) -> Result<(), WireError> {
        self.reply_error(writer, ErrorCode::NotAssigned, "no shard assigned to this worker yet")
    }

    fn reply(
        &self,
        writer: &mut std::io::BufWriter<TcpStream>,
        response: &Response,
    ) -> Result<(), WireError> {
        write_frame(writer, &response.encode())
    }

    fn reply_error(
        &self,
        writer: &mut std::io::BufWriter<TcpStream>,
        code: ErrorCode,
        message: &str,
    ) -> Result<(), WireError> {
        self.reply(writer, &Response::Error { code, message: message.to_string() })
    }
}

// ====================================================================
// Coordinator
// ====================================================================

/// One replica of one shard: its connection (a [`GconClient`] with
/// bounded retry) plus the two one-way health latches.
#[derive(Debug)]
struct Replica {
    addr: String,
    conn: Mutex<GconClient>,
    /// Fingerprint mismatch — wrong *bytes*. Never queried again.
    quarantined: AtomicBool,
    /// Connection failure that survived retry — wrong *liveness*.
    /// Never queried again (re-deploy to recover).
    dead: AtomicBool,
}

impl Replica {
    fn healthy(&self) -> bool {
        !self.quarantined.load(Ordering::SeqCst) && !self.dead.load(Ordering::SeqCst)
    }
}

/// One shard: its global row range and its replicas in preference order.
#[derive(Debug)]
struct Shard {
    range: Range<u64>,
    replicas: Vec<Replica>,
    /// Expected per-chunk fingerprints of this shard's slice, computed
    /// coordinator-side before shipping — the consensus ground truth.
    expected: Vec<u64>,
}

/// Counter snapshot of a [`Coordinator`] (see also
/// [`Coordinator::wire_stats`] for the wire-shaped view).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FleetStats {
    /// Number of shards in the partition.
    pub shards: usize,
    /// Total replicas across all shards (healthy or not).
    pub replicas: usize,
    /// Replicas quarantined by fingerprint consensus (deploy-time or
    /// [`Coordinator::consensus_check`]).
    pub quarantined: u64,
    /// Replicas declared dead after connection failures.
    pub dead: u64,
    /// Queries rerouted to another replica after a failure.
    pub failovers: u64,
    /// Node-rows answered through [`Coordinator::query`] /
    /// [`Coordinator::bulk`].
    pub queries: u64,
}

/// Outcome of one [`Coordinator::consensus_check`] sweep.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConsensusReport {
    /// Replicas whose fingerprints were fetched and compared.
    pub checked: usize,
    /// `(shard, replica)` indices quarantined by this sweep.
    pub quarantined: Vec<(usize, usize)>,
    /// `(shard, replica)` indices newly declared dead (unreachable
    /// during the sweep).
    pub unreachable: Vec<(usize, usize)>,
}

/// The fleet front end: owns the row partition, routes queries to the
/// owning shard, scatter-gathers bulk requests, fails over between
/// replicas and runs fingerprint consensus. All query methods take
/// `&self` (per-replica connections are individually locked), so one
/// coordinator can be shared by concurrent client threads.
#[derive(Debug)]
pub struct Coordinator {
    shards: Vec<Shard>,
    nodes: u64,
    classes: usize,
    chunk_rows: usize,
    queries: AtomicU64,
    failovers: AtomicU64,
    quarantined: AtomicU64,
    dead: AtomicU64,
}

impl Coordinator {
    /// Partitions `model` into `topology.len()` contiguous even row
    /// ranges (shard `s` owns `[s·n/k, (s+1)·n/k)`), ships each range's
    /// slice artifact to every replica address in `topology[s]`, verifies
    /// the adopted row counts, and fingerprint-checks every replica
    /// against the coordinator-side expected values — a replica shipped
    /// wrong bytes is quarantined before it ever serves. Fails unless
    /// every shard ends up with at least one healthy replica.
    pub fn deploy(
        model: &ServingModel,
        topology: &[Vec<String>],
        config: FleetConfig,
    ) -> Result<Self, FleetError> {
        if topology.is_empty() {
            return Err(FleetError::Config("at least one shard required".into()));
        }
        if topology.iter().any(Vec::is_empty) {
            return Err(FleetError::Config("every shard needs at least one replica".into()));
        }
        if config.chunk_rows == 0 {
            return Err(FleetError::Config("chunk_rows must be ≥ 1".into()));
        }
        let n = model.num_nodes();
        let k = topology.len();
        if k > n {
            return Err(FleetError::Config(format!("{k} shards for a {n}-row store")));
        }
        let coordinator = Self {
            shards: Vec::new(),
            nodes: n as u64,
            classes: model.num_classes(),
            chunk_rows: config.chunk_rows,
            queries: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            dead: AtomicU64::new(0),
        };
        let mut shards = Vec::with_capacity(k);
        for (s, replica_addrs) in topology.iter().enumerate() {
            let (start, end) = (s * n / k, (s + 1) * n / k);
            let slice = model.slice_rows(start, end);
            let artifact = slice.to_bytes();
            if artifact.len() + 64 > config.max_frame {
                return Err(FleetError::Config(format!(
                    "shard {s} artifact ({} bytes) exceeds max_frame ({})",
                    artifact.len(),
                    config.max_frame
                )));
            }
            let expected = slice.chunk_fingerprints(config.chunk_rows);
            let mut replicas = Vec::with_capacity(replica_addrs.len());
            for addr in replica_addrs {
                let mut conn = GconClient::connect_with(
                    addr.as_str(),
                    config.read_timeout,
                    config.write_timeout,
                    config.max_frame,
                )
                .map_err(|e| FleetError::ReplicaRejected {
                    shard: s,
                    addr: addr.clone(),
                    detail: format!("connect failed: {e}"),
                })?
                .with_retries(config.retries);
                let rows = conn.shard_assign(s as u32, start as u64, &artifact).map_err(|e| {
                    FleetError::ReplicaRejected {
                        shard: s,
                        addr: addr.clone(),
                        detail: format!("assign failed: {e}"),
                    }
                })?;
                if rows != (end - start) as u64 {
                    return Err(FleetError::ReplicaRejected {
                        shard: s,
                        addr: addr.clone(),
                        detail: format!("adopted {rows} rows, expected {}", end - start),
                    });
                }
                let reported = conn.shard_fingerprints(config.chunk_rows as u64).map_err(|e| {
                    FleetError::ReplicaRejected {
                        shard: s,
                        addr: addr.clone(),
                        detail: format!("fingerprint fetch failed: {e}"),
                    }
                })?;
                let replica = Replica {
                    addr: addr.clone(),
                    conn: Mutex::new(conn),
                    quarantined: AtomicBool::new(false),
                    dead: AtomicBool::new(false),
                };
                if reported != expected {
                    replica.quarantined.store(true, Ordering::SeqCst);
                    coordinator.quarantined.fetch_add(1, Ordering::SeqCst);
                }
                replicas.push(replica);
            }
            if !replicas.iter().any(Replica::healthy) {
                return Err(FleetError::NoHealthyReplica { shard: s });
            }
            shards.push(Shard { range: start as u64..end as u64, replicas, expected });
        }
        Ok(Self { shards, ..coordinator })
    }

    /// The store's total row count (across all shards).
    pub fn num_nodes(&self) -> u64 {
        self.nodes
    }

    /// The store's class count (the width of every logits row).
    pub fn num_classes(&self) -> usize {
        self.classes
    }

    /// Logits of one global node id, routed to the owning shard with
    /// replica failover. Bitwise what a single-process
    /// [`crate::ServingModel`] over the unsharded store answers.
    pub fn query(&self, node: u64) -> Result<Vec<f64>, FleetError> {
        if node >= self.nodes {
            return Err(FleetError::NodeOutOfRange { node, nodes: self.nodes });
        }
        let s = self.shard_of(node);
        let m = self.shard_call(s, &[node])?;
        self.queries.fetch_add(1, Ordering::Relaxed);
        Ok(m.row(0).to_vec())
    }

    /// Logits of many global node ids (any order, duplicates fine):
    /// positions are grouped by owning shard, shards are queried
    /// concurrently (scatter), and rows are written back to their request
    /// positions (gather). Row `i` answers `nodes[i]`, bitwise equal to
    /// the single-process answer.
    pub fn bulk(&self, nodes: &[u64]) -> Result<Mat, FleetError> {
        if let Some(&bad) = nodes.iter().find(|&&n| n >= self.nodes) {
            return Err(FleetError::NodeOutOfRange { node: bad, nodes: self.nodes });
        }
        // Scatter: positions grouped per shard, preserving request order
        // within each group.
        let mut groups: Vec<Vec<(usize, u64)>> = vec![Vec::new(); self.shards.len()];
        for (pos, &node) in nodes.iter().enumerate() {
            groups[self.shard_of(node)].push((pos, node));
        }
        let mut out = Mat::zeros(nodes.len(), self.classes);
        let cols = self.classes;
        std::thread::scope(|scope| -> Result<(), FleetError> {
            let handles: Vec<_> = groups
                .iter()
                .enumerate()
                .filter(|(_, group)| !group.is_empty())
                .map(|(s, group)| {
                    let shard_nodes: Vec<u64> = group.iter().map(|&(_, n)| n).collect();
                    (group, scope.spawn(move || self.shard_call(s, &shard_nodes)))
                })
                .collect();
            for (group, handle) in handles {
                let m = handle.join().expect("fleet shard thread panicked")?;
                // Gather: row r of the shard answer is position group[r].0
                // of the request.
                for (r, &(pos, _)) in group.iter().enumerate() {
                    out.as_mut_slice()[pos * cols..(pos + 1) * cols].copy_from_slice(m.row(r));
                }
            }
            Ok(())
        })?;
        self.queries.fetch_add(nodes.len() as u64, Ordering::Relaxed);
        Ok(out)
    }

    /// Re-fetches every healthy replica's fingerprints and quarantines
    /// any that diverged from the coordinator-side expected values (e.g.
    /// bit rot or tampering since deploy). Replicas unreachable during
    /// the sweep are declared dead instead. Returns what happened;
    /// surfaced counters move [`Coordinator::stats`].
    pub fn consensus_check(&self) -> ConsensusReport {
        let mut report = ConsensusReport::default();
        for (s, shard) in self.shards.iter().enumerate() {
            for (r, replica) in shard.replicas.iter().enumerate() {
                if !replica.healthy() {
                    continue;
                }
                let fetched =
                    replica.conn.lock().unwrap().shard_fingerprints(self.chunk_rows as u64);
                match fetched {
                    Ok(fingerprints) => {
                        report.checked += 1;
                        if fingerprints != shard.expected {
                            replica.quarantined.store(true, Ordering::SeqCst);
                            self.quarantined.fetch_add(1, Ordering::SeqCst);
                            report.quarantined.push((s, r));
                        }
                    }
                    Err(_) => {
                        replica.dead.store(true, Ordering::SeqCst);
                        self.dead.fetch_add(1, Ordering::SeqCst);
                        report.unreachable.push((s, r));
                    }
                }
            }
        }
        report
    }

    /// Counter snapshot.
    pub fn stats(&self) -> FleetStats {
        FleetStats {
            shards: self.shards.len(),
            replicas: self.shards.iter().map(|s| s.replicas.len()).sum(),
            quarantined: self.quarantined.load(Ordering::SeqCst),
            dead: self.dead.load(Ordering::SeqCst),
            failovers: self.failovers.load(Ordering::SeqCst),
            queries: self.queries.load(Ordering::Relaxed),
        }
    }

    /// The same counters in the wire `Stats` shape, so fleet health can
    /// be surfaced through the existing `StatsReply` plumbing
    /// (`quarantined` / `failovers` are the fleet-owned fields there).
    pub fn wire_stats(&self) -> WireStats {
        let s = self.stats();
        WireStats {
            connections: s.replicas as u64,
            requests: s.queries,
            batches: 0,
            largest_batch: 0,
            rejected_overload: 0,
            quarantined: s.quarantined,
            failovers: s.failovers,
            degraded: s.quarantined > 0 || s.dead > 0,
        }
    }

    /// The replica addresses of `shard`, in preference order, with their
    /// health (for operators/tests; `true` = healthy).
    pub fn replica_health(&self, shard: usize) -> Vec<(String, bool)> {
        self.shards[shard].replicas.iter().map(|r| (r.addr.clone(), r.healthy())).collect()
    }

    /// Which shard owns global row `node`. The partition is
    /// `start(s) = s·n/k` (monotone), so a partition-point search on the
    /// range ends is exact.
    fn shard_of(&self, node: u64) -> usize {
        self.shards.partition_point(|s| s.range.end <= node)
    }

    /// One shard query with failover: tries healthy replicas in
    /// preference order; a replica whose call fails (after the client's
    /// own bounded retry) is declared dead and the next one is tried,
    /// ticking `failovers`.
    fn shard_call(&self, s: usize, nodes: &[u64]) -> Result<Mat, FleetError> {
        let shard = &self.shards[s];
        for replica in &shard.replicas {
            if !replica.healthy() {
                continue;
            }
            let result = replica.conn.lock().unwrap().shard_query(nodes, self.classes);
            match result {
                Ok(m) => return Ok(m),
                Err(WireError::Server { code, message }) => {
                    // The worker answered: rerouting cannot change a typed
                    // refusal (routing bug, lost assignment) — surface it.
                    return Err(FleetError::Wire(WireError::Server { code, message }));
                }
                Err(_) => {
                    replica.dead.store(true, Ordering::SeqCst);
                    self.dead.fetch_add(1, Ordering::SeqCst);
                    self.failovers.fetch_add(1, Ordering::SeqCst);
                }
            }
        }
        Err(FleetError::NoHealthyReplica { shard: s })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::tiny_store;

    /// Spawns `count` in-process workers; returns their addresses and the
    /// handles/joins needed to tear them down.
    fn spawn_workers(
        count: usize,
    ) -> (Vec<String>, Vec<ServerHandle>, Vec<std::thread::JoinHandle<()>>) {
        let mut addrs = Vec::new();
        let mut handles = Vec::new();
        let mut joins = Vec::new();
        // Short worker-side read timeout so idle/orphaned connection
        // threads exit quickly and teardown joins stay fast.
        let config = ServerConfig { read_timeout: Duration::from_secs(2), ..Default::default() };
        for _ in 0..count {
            let worker = Arc::new(ShardWorker::bind(config, "127.0.0.1:0").unwrap());
            addrs.push(worker.local_addr().to_string());
            handles.push(worker.handle());
            let w = worker.clone();
            joins.push(std::thread::spawn(move || {
                w.run().unwrap();
            }));
        }
        (addrs, handles, joins)
    }

    fn teardown(handles: Vec<ServerHandle>, joins: Vec<std::thread::JoinHandle<()>>) {
        for h in &handles {
            h.stop();
        }
        for j in joins {
            j.join().unwrap();
        }
    }

    #[test]
    fn partition_covers_all_rows_and_routing_is_exact() {
        let model = tiny_store();
        let (addrs, handles, joins) = spawn_workers(3);
        let topology: Vec<Vec<String>> = addrs.into_iter().map(|a| vec![a]).collect();
        let fleet = Coordinator::deploy(model, &topology, FleetConfig::default()).unwrap();
        let n = model.num_nodes() as u64;
        // Every row maps to exactly one shard whose range contains it.
        for node in 0..n {
            let s = fleet.shard_of(node);
            assert!(fleet.shards[s].range.contains(&node));
        }
        // Ranges tile [0, n) contiguously.
        assert_eq!(fleet.shards.first().unwrap().range.start, 0);
        assert_eq!(fleet.shards.last().unwrap().range.end, n);
        for w in fleet.shards.windows(2) {
            assert_eq!(w[0].range.end, w[1].range.start);
        }
        teardown(handles, joins);
    }

    #[test]
    fn fleet_answers_match_in_process_bitwise() {
        let model = tiny_store();
        let (addrs, handles, joins) = spawn_workers(2);
        let topology: Vec<Vec<String>> = addrs.into_iter().map(|a| vec![a]).collect();
        let fleet = Coordinator::deploy(model, &topology, FleetConfig::default()).unwrap();
        let mut session = model.session();
        let n = model.num_nodes();
        for node in [0usize, 1, n / 2, n - 1] {
            let local = session.logits_batch(&[node]).as_slice().to_vec();
            let remote = fleet.query(node as u64).unwrap();
            assert_eq!(local, remote, "node {node} differs from in-process answer");
        }
        // A bulk spanning both shards, unordered and with a duplicate.
        let nodes: Vec<u64> = vec![n as u64 - 1, 0, (n / 2) as u64, 0];
        let got = fleet.bulk(&nodes).unwrap();
        for (i, &node) in nodes.iter().enumerate() {
            let want = session.logits_batch(&[node as usize]).as_slice().to_vec();
            assert_eq!(got.row(i), &want[..], "bulk row {i} differs");
        }
        assert_eq!(fleet.stats().queries, 4 + nodes.len() as u64);
        teardown(handles, joins);
    }

    #[test]
    fn deploy_rejects_bad_topologies() {
        let model = tiny_store();
        let err = Coordinator::deploy(model, &[], FleetConfig::default()).unwrap_err();
        assert!(matches!(err, FleetError::Config(_)));
        let err = Coordinator::deploy(model, &[Vec::new()], FleetConfig::default()).unwrap_err();
        assert!(matches!(err, FleetError::Config(_)));
        // More shards than rows cannot give every shard ≥ 1 row.
        let huge: Vec<Vec<String>> =
            (0..model.num_nodes() + 1).map(|_| vec!["127.0.0.1:1".to_string()]).collect();
        let err = Coordinator::deploy(model, &huge, FleetConfig::default()).unwrap_err();
        assert!(matches!(err, FleetError::Config(_)));
        // An unreachable worker is a deploy-time rejection, not a hang.
        let cfg = FleetConfig { retries: 0, ..Default::default() };
        let err = Coordinator::deploy(model, &[vec!["127.0.0.1:1".to_string()]], cfg).unwrap_err();
        assert!(matches!(err, FleetError::ReplicaRejected { shard: 0, .. }));
    }

    #[test]
    fn worker_refuses_plain_queries_and_unassigned_shard_queries() {
        let (addrs, handles, joins) = spawn_workers(1);
        let mut client = GconClient::connect(addrs[0].as_str()).unwrap();
        // Unassigned worker announces an empty store…
        assert_eq!(client.info().nodes, 0);
        // …refuses shard queries with NotAssigned…
        let err = client.shard_query(&[0], 2).unwrap_err();
        assert!(matches!(err, WireError::Server { code: ErrorCode::NotAssigned, .. }));
        let err = client.shard_fingerprints(64).unwrap_err();
        assert!(matches!(err, WireError::Server { code: ErrorCode::NotAssigned, .. }));
        // …and always refuses plain queries (they belong to the
        // coordinator), assigned or not.
        let err = client.logits(0).unwrap_err();
        assert!(matches!(err, WireError::Server { code: ErrorCode::NotAssigned, .. }));
        teardown(handles, joins);
    }

    #[test]
    fn corrupted_artifact_is_refused_and_session_survives() {
        let model = tiny_store();
        let (addrs, handles, joins) = spawn_workers(1);
        let mut client = GconClient::connect(addrs[0].as_str()).unwrap();
        let mut bytes = model.slice_bytes(0, model.num_nodes()).to_vec();
        bytes[8] ^= 0xFF; // break the header
        let err = client.shard_assign(0, 0, &bytes).unwrap_err();
        assert!(matches!(err, WireError::Server { code: ErrorCode::BadFrame, .. }));
        // The session is still usable: a good assign now succeeds.
        let good = model.slice_bytes(0, model.num_nodes());
        let rows = client.shard_assign(0, 0, &good).unwrap();
        assert_eq!(rows, model.num_nodes() as u64);
        teardown(handles, joins);
    }

    #[test]
    fn quarantine_on_fingerprint_divergence() {
        let model = tiny_store();
        let (addrs, handles, joins) = spawn_workers(2);
        let topology = vec![addrs.clone()]; // one shard, two replicas
        let fleet = Coordinator::deploy(model, &topology, FleetConfig::default()).unwrap();
        assert_eq!(fleet.stats().quarantined, 0);
        // Corrupt replica 1 out-of-band: re-assign it a payload with one
        // flipped store byte that still decodes (mantissa bit of the last
        // theta entry) — exactly the divergence consensus must catch.
        let mut bytes = model.slice_bytes(0, model.num_nodes()).to_vec();
        let len = bytes.len();
        bytes[len - 3] ^= 0x01;
        let mut side = GconClient::connect(addrs[1].as_str()).unwrap();
        side.shard_assign(0, 0, &bytes).unwrap();
        let report = fleet.consensus_check();
        assert_eq!(report.quarantined, vec![(0, 1)]);
        assert_eq!(fleet.stats().quarantined, 1);
        assert_eq!(fleet.wire_stats().quarantined, 1);
        assert!(fleet.wire_stats().degraded);
        // Queries still served (replica 0), bitwise correct.
        let mut session = model.session();
        let want = session.logits_batch(&[3]).as_slice().to_vec();
        assert_eq!(fleet.query(3).unwrap(), want);
        // The quarantined replica is reported unhealthy.
        assert!(!fleet.replica_health(0)[1].1);
        teardown(handles, joins);
    }

    #[test]
    fn failover_reroutes_to_surviving_replica() {
        let model = tiny_store();
        let (addrs, mut handles, mut joins) = spawn_workers(2);
        let topology = vec![addrs]; // one shard, two replicas
                                    // One reconnect-and-replay: cures a stale-but-alive replica
                                    // (server-side idle timeout) without masking a dead one.
        let cfg = FleetConfig {
            retries: 1,
            read_timeout: Duration::from_millis(500),
            ..Default::default()
        };
        let fleet = Coordinator::deploy(model, &topology, cfg).unwrap();
        let mut session = model.session();
        let want = session.logits_batch(&[5]).as_slice().to_vec();
        assert_eq!(fleet.query(5).unwrap(), want);
        // Stop replica 0 (the preferred one); its connection dies.
        handles.remove(0).stop();
        joins.remove(0).join().unwrap();
        let got = fleet.query(5).unwrap();
        assert_eq!(got, want, "failover answer must be bitwise identical");
        let stats = fleet.stats();
        assert_eq!(stats.failovers, 1);
        assert_eq!(stats.dead, 1);
        teardown(handles, joins);
    }
}
