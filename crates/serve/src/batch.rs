//! Dynamic micro-batching: coalesce concurrent single-node queries into one
//! head forward per batch window.
//!
//! # Protocol
//!
//! Requests join the currently *open* window (a generation counter names
//! it). The first request of a window becomes its **leader**: it waits until
//! the window fills ([`BatchConfig::max_batch`]) or its latency budget
//! ([`BatchConfig::max_wait`]) elapses, closes the window, runs **one**
//! gathered head forward for the whole batch on the shared workspace — the
//! GEMM itself parallelizes across `gcon_runtime::pool()` like every other
//! kernel in the workspace — writes each result row into the submitting
//! thread's output buffer, and wakes the followers. Followers just block
//! until their generation completes.
//!
//! Windows close in generation order and execute in generation order, so a
//! window's results are published (`completed_gen`) only after its buffers
//! are written; a follower that observes `completed_gen >= its generation`
//! under the queue mutex therefore reads a fully-written buffer
//! (release/acquire via the mutex).
//!
//! # Steady-state allocation
//!
//! None per batch: the request vectors are recycled through a spare pool,
//! the gathered-batch/logits buffers live in one `gcon_nn::HeadWorkspace`
//! (in the model's store dtype — see `ServingModel::store_dtype`), and
//! results land in caller-owned `Vec`s via the `_into` convention. The
//! queue allocates only while growing to its high-water batch size.

use crate::model::{ServingModel, SessionWs};
use gcon_linalg::Mat;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Window bounds for [`BatchQueue`].
#[derive(Clone, Copy, Debug)]
pub struct BatchConfig {
    /// Hard upper bound on requests per batch; a window closes immediately
    /// when it fills. Must be ≥ 1.
    pub max_batch: usize,
    /// Latency budget of a non-full window: how long its leader waits for
    /// more requests before closing it. `ZERO` disables coalescing-by-time
    /// (each window still batches whatever arrived while the previous one
    /// executed). A budget too large to represent as a deadline (e.g.
    /// [`Duration::MAX`]) means wait until the window **fills** — only safe
    /// when the request flow is guaranteed to produce `max_batch`
    /// concurrent queries.
    pub max_wait: Duration,
}

impl Default for BatchConfig {
    /// 64-request windows with a 500 µs budget — the bench's sweet spot on
    /// the dev box; tune per deployment.
    fn default() -> Self {
        Self { max_batch: 64, max_wait: Duration::from_micros(500) }
    }
}

/// Counters exposed by [`BatchQueue::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Batches executed so far.
    pub batches: u64,
    /// Requests answered so far (`requests / batches` = mean batch size).
    pub requests: u64,
    /// Largest batch executed so far.
    pub largest_batch: usize,
}

/// One enqueued query: the node and the caller's output buffer, written by
/// the window's leader before the generation is published.
struct Request {
    node: usize,
    out: *mut Vec<f64>,
}

// SAFETY: the raw pointer targets the submitting thread's `&mut Vec<f64>`,
// which that thread does not touch between enqueue and the completion of
// its generation (it is blocked in `query_into`); exactly one leader writes
// through it, before publishing the generation under the queue mutex.
unsafe impl Send for Request {}

/// Mutex-guarded queue state.
struct State {
    /// Requests of the open window.
    pending: Vec<Request>,
    /// Generation currently accepting requests (first window is 1).
    open_gen: u64,
    /// Highest generation whose results are fully written (starts at 0).
    completed_gen: u64,
    /// Recycled request vectors (cleared before reuse).
    spare: Vec<Vec<Request>>,
    stats: BatchStats,
}

/// Shared buffers of the (single, in-order) executing leader: the head
/// workspace in the model's store dtype plus the widened `f64` logit block
/// the result rows are scattered from.
struct Exec {
    ws: SessionWs,
    nodes: Vec<usize>,
    logits64: Mat,
}

/// A dynamic micro-batcher over a [`ServingModel`] — see the module docs
/// for the protocol. Share one instance (`&BatchQueue` under
/// `std::thread::scope`, or wrap queue + model in `Arc`s) between all
/// serving threads; every public method takes `&self`.
pub struct BatchQueue<'m> {
    model: &'m ServingModel,
    config: BatchConfig,
    state: Mutex<State>,
    /// Wakes leaders (window fills), prospective joiners (window turns
    /// over), the in-order execution gate, and followers (generation
    /// completes). One condvar, four predicates.
    cv: Condvar,
    exec: Mutex<Exec>,
}

// `BatchQueue: Sync` is auto-derived: `Request: Send` (above) makes `State`
// `Send`, so both mutexes are `Sync`; no manual impl needed.

impl<'m> BatchQueue<'m> {
    /// Creates a queue over `model` with the given window bounds.
    ///
    /// # Panics
    /// Panics if `config.max_batch == 0`.
    pub fn new(model: &'m ServingModel, config: BatchConfig) -> Self {
        assert!(config.max_batch >= 1, "BatchQueue: max_batch must be ≥ 1");
        Self {
            model,
            config,
            state: Mutex::new(State {
                pending: Vec::new(),
                open_gen: 1,
                completed_gen: 0,
                spare: Vec::new(),
                stats: BatchStats::default(),
            }),
            cv: Condvar::new(),
            exec: Mutex::new(Exec {
                ws: model.session_ws(),
                nodes: Vec::new(),
                logits64: Mat::default(),
            }),
        }
    }

    /// The model this queue serves.
    pub fn model(&self) -> &ServingModel {
        self.model
    }

    /// Execution counters so far (batches, requests, largest batch).
    pub fn stats(&self) -> BatchStats {
        self.state.lock().expect("BatchQueue: poisoned state").stats
    }

    /// Queries one node's logits, blocking until the batch window the
    /// request lands in has executed. `out` is cleared and refilled (caller
    /// allocation reused across calls — the zero-alloc steady-state path).
    ///
    /// Logits are bitwise identical to [`ServingModel`]'s direct paths —
    /// and therefore to `gcon-core::infer` — regardless of which requests
    /// share the window.
    ///
    /// # Panics
    /// Panics if `node` is out of bounds for the model's store (checked on
    /// entry, before the request can join a window).
    pub fn query_into(&self, node: usize, out: &mut Vec<f64>) {
        assert!(
            node < self.model.num_nodes(),
            "BatchQueue: query for node {node} but the store has {} nodes",
            self.model.num_nodes()
        );
        let mut state = self.state.lock().expect("BatchQueue: poisoned state");
        // Join the open window, waiting out a turnover if it is full.
        loop {
            if state.pending.len() < self.config.max_batch {
                break;
            }
            let g = state.open_gen;
            while state.open_gen == g {
                state = self.cv.wait(state).expect("BatchQueue: poisoned state");
            }
        }
        let my_gen = state.open_gen;
        let is_leader = state.pending.is_empty();
        state.pending.push(Request { node, out: out as *mut Vec<f64> });
        if state.pending.len() >= self.config.max_batch {
            // Window full: wake its (possibly sleeping) leader.
            self.cv.notify_all();
        }

        if is_leader {
            self.lead(state, my_gen);
        } else {
            while state.completed_gen < my_gen {
                state = self.cv.wait(state).expect("BatchQueue: poisoned state");
            }
        }
        // `out` was written by the leader (possibly this thread) before
        // `completed_gen` advanced past `my_gen`.
    }

    /// Allocating convenience for [`BatchQueue::query_into`].
    pub fn query(&self, node: usize) -> Vec<f64> {
        let mut out = Vec::new();
        self.query_into(node, &mut out);
        out
    }

    /// Hard class prediction of one node through the micro-batcher.
    pub fn predict(&self, node: usize) -> usize {
        let mut out = Vec::new();
        self.query_into(node, &mut out);
        gcon_linalg::vecops::argmax(&out)
    }

    /// Leader path: wait out the window, close it, execute in generation
    /// order, publish, wake everyone.
    fn lead(&self, mut state: std::sync::MutexGuard<'_, State>, my_gen: u64) {
        // 1. Hold the window open until it fills or the budget elapses. A
        //    budget too large to represent as a deadline (e.g.
        //    `Duration::MAX`) means wait-until-full.
        let deadline = Instant::now().checked_add(self.config.max_wait);
        while state.pending.len() < self.config.max_batch {
            state = match deadline {
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    self.cv
                        .wait_timeout(state, deadline - now)
                        .expect("BatchQueue: poisoned state")
                        .0
                }
                None => self.cv.wait(state).expect("BatchQueue: poisoned state"),
            };
        }

        // 2. Close the window: later requests open generation `my_gen + 1`.
        let fresh = state.spare.pop().unwrap_or_default();
        let mut batch = std::mem::replace(&mut state.pending, fresh);
        state.open_gen += 1;
        self.cv.notify_all(); // joiners blocked on a full window

        // 3. In-order gate: generations close in order, and executing them
        //    in the same order guarantees `completed_gen` is exact — a
        //    follower of generation g can only wake after g's buffers are
        //    written, even if a later leader overtakes on the OS scheduler.
        while state.completed_gen != my_gen - 1 {
            state = self.cv.wait(state).expect("BatchQueue: poisoned state");
        }
        drop(state);

        // 4. One gathered head forward for the whole window, then scatter
        //    the rows to the submitters. The gate above admits one leader at
        //    a time, so the exec lock is uncontended (it exists to hand out
        //    `&mut` to the shared workspace).
        {
            let mut exec = self.exec.lock().expect("BatchQueue: poisoned exec");
            let exec = &mut *exec;
            exec.nodes.clear();
            exec.nodes.extend(batch.iter().map(|r| r.node));
            self.model.forward_widen_into(&exec.nodes, &mut exec.ws, &mut exec.logits64);
            for (row, request) in batch.iter().enumerate() {
                // SAFETY: per the module protocol the submitting thread is
                // blocked and no other leader touches this window.
                let out = unsafe { &mut *request.out };
                out.clear();
                out.extend_from_slice(exec.logits64.row(row));
            }
        }

        // 5. Publish and recycle.
        let mut state = self.state.lock().expect("BatchQueue: poisoned state");
        state.completed_gen = my_gen;
        state.stats.batches += 1;
        state.stats.requests += batch.len() as u64;
        state.stats.largest_batch = state.stats.largest_batch.max(batch.len());
        batch.clear();
        state.spare.push(batch);
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ServingMode, ServingModel};
    use crate::testutil::tiny_trained;

    fn serving() -> ServingModel {
        let (model, graph, x) = tiny_trained();
        ServingModel::build(model, graph, x, ServingMode::Public)
    }

    #[test]
    fn sequential_queries_match_direct_path_bitwise() {
        let serving = serving();
        let queue = BatchQueue::new(&serving, BatchConfig::default());
        let mut out = Vec::new();
        for node in 0..serving.num_nodes() {
            queue.query_into(node, &mut out);
            assert_eq!(out, serving.logits(node), "node {node}");
            assert_eq!(queue.predict(node), serving.predict(node));
            assert_eq!(queue.query(node), out);
        }
        let stats = queue.stats();
        assert!(stats.requests >= serving.num_nodes() as u64 * 3);
        assert!(stats.batches >= 1);
    }

    #[test]
    fn concurrent_queries_coalesce_and_match_bitwise() {
        let serving = serving();
        let n = serving.num_nodes();
        // A generous window so concurrent requests actually coalesce.
        let config = BatchConfig { max_batch: 16, max_wait: Duration::from_millis(5) };
        let queue = BatchQueue::new(&serving, config);
        let threads = 8;
        let per_thread = 24;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let queue = &queue;
                let serving = &serving;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    for q in 0..per_thread {
                        let node = (t * 31 + q * 7) % n;
                        queue.query_into(node, &mut out);
                        assert_eq!(out, serving.logits(node), "thread {t} query {q} node {node}");
                    }
                });
            }
        });
        let stats = queue.stats();
        assert_eq!(stats.requests, (threads * per_thread) as u64);
        assert!(stats.largest_batch <= config.max_batch, "window bound violated: {stats:?}");
        assert!(
            stats.batches < stats.requests,
            "no coalescing ever happened under concurrency: {stats:?}"
        );
    }

    #[test]
    fn max_batch_one_serves_every_request_alone() {
        let serving = serving();
        let config = BatchConfig { max_batch: 1, max_wait: Duration::from_millis(50) };
        let queue = BatchQueue::new(&serving, config);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let queue = &queue;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    for q in 0..8 {
                        queue.query_into((t + q * 3) % queue.model().num_nodes(), &mut out);
                    }
                });
            }
        });
        let stats = queue.stats();
        assert_eq!(stats.largest_batch, 1);
        assert_eq!(stats.batches, stats.requests);
    }

    #[test]
    fn zero_wait_still_answers_correctly() {
        let serving = serving();
        let queue =
            BatchQueue::new(&serving, BatchConfig { max_batch: 64, max_wait: Duration::ZERO });
        std::thread::scope(|scope| {
            for t in 0..4 {
                let queue = &queue;
                let serving = &serving;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    for q in 0..16 {
                        let node = (t * 13 + q) % serving.num_nodes();
                        queue.query_into(node, &mut out);
                        assert_eq!(out, serving.logits(node));
                    }
                });
            }
        });
    }

    /// Regression: `Duration::MAX` must mean wait-until-full, not an
    /// `Instant` overflow panic under the queue mutex (which would poison
    /// the queue for every later caller).
    #[test]
    fn unrepresentable_budget_waits_until_the_window_fills() {
        let serving = serving();
        let config = BatchConfig { max_batch: 4, max_wait: Duration::MAX };
        let queue = BatchQueue::new(&serving, config);
        // Exactly max_batch concurrent queries: the window can only close
        // by filling, so completion proves the wait-until-full path works.
        std::thread::scope(|scope| {
            for t in 0..4 {
                let queue = &queue;
                let serving = &serving;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    queue.query_into(t, &mut out);
                    assert_eq!(out, serving.logits(t));
                });
            }
        });
        let stats = queue.stats();
        assert_eq!((stats.batches, stats.requests, stats.largest_batch), (1, 4, 4));
    }

    #[test]
    #[should_panic(expected = "the store has")]
    fn out_of_bounds_query_is_rejected_before_joining_a_window() {
        let serving = serving();
        let queue = BatchQueue::new(&serving, BatchConfig::default());
        let _ = queue.query(serving.num_nodes());
    }

    #[test]
    #[should_panic(expected = "max_batch")]
    fn zero_max_batch_is_rejected() {
        let serving = serving();
        let _ = BatchQueue::new(&serving, BatchConfig { max_batch: 0, max_wait: Duration::ZERO });
    }
}
