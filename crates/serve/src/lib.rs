#![deny(missing_docs)]
//! Serving layer for trained GCON models: answer node-classification
//! queries at per-query cost **O(one dense head forward)** instead of
//! O(full-graph propagation).
//!
//! # Why a serving layer
//!
//! The inference entry points in `gcon-core::infer` re-run the entire
//! propagation pipeline — encode, row-normalize, build `Ã`, propagate every
//! scale over the whole graph — on *every* call, so answering one node's
//! query costs the same as answering all of them. That is the right shape
//! for one-shot evaluation harnesses and exactly the wrong shape for a
//! service: propagated features depend only on `(model, graph, features)`,
//! none of which change between queries.
//!
//! This crate splits inference at the seam `gcon-core::infer` exposes:
//!
//! 1. [`ServingModel::build`] runs the **feature stage** once
//!    ([`gcon_core::infer::public_features`] /
//!    [`gcon_core::infer::private_features`], on the shared
//!    `gcon-runtime` pool) and stores the propagated matrix row-per-node.
//! 2. Queries run only the **head stage**: gather the queried rows and
//!    multiply by `Θ_priv` on a reusable [`gcon_nn::HeadWorkspace`] —
//!    a `batch × d × c` GEMM, independent of graph size.
//!
//! On top of the store, [`BatchQueue`] adds **dynamic micro-batching**:
//! concurrent single-node requests are coalesced into one head forward per
//! batch window (bounded batch size + latency budget), amortizing kernel
//! dispatch and letting the pooled GEMM see serving-efficient shapes. Both
//! layers follow the workspace-wide `_into` convention — after warm-up the
//! steady state allocates nothing per batch.
//!
//! The mutation side mirrors the query side: [`DynamicServingModel`]
//! applies graph deltas incrementally and publishes immutable, versioned
//! [`ServingGeneration`]s, and [`DeltaCoalescer`] batches concurrent edits
//! the way [`BatchQueue`] batches queries — a burst of deltas merges into
//! **one** refresh and one published generation per window.
//!
//! The networked tier puts all of this behind a socket: [`wire`] defines
//! a hand-rolled, fail-closed length-prefixed frame protocol, [`Server`]
//! is the thread-per-connection `gcond` daemon (session tokens, socket
//! timeouts, a bounded-inflight gate in front of the [`BatchQueue`]), and
//! [`GconClient`] is the matching blocking client. A store can be
//! persisted with [`ServingModel::save`] and restored with
//! [`ServingModel::load`] — a bitwise round-trip, so a daemon restart
//! costs an `open(2)` instead of a full repropagation.
//!
//! The [`fleet`] layer scales the daemon horizontally: a [`Coordinator`]
//! partitions the store into contiguous row-range shards, ships each
//! slice to `gcond --shard` workers ([`ShardWorker`]) over the same wire
//! protocol, scatter-gathers bulk queries, and — because serving is
//! bitwise-deterministic — cross-checks replicas by store *fingerprint*
//! consensus, quarantining any replica whose bytes diverge and failing
//! over when one dies.
//!
//! # Exactness and the store dtype
//!
//! Serving is not an approximation. Every dense kernel in `gcon-linalg`
//! computes each output row independently of the surrounding row partition
//! (the same property that makes results byte-identical across
//! `GCON_THREADS` and kernel tiers), so for every node, batch size, and
//! batch order the served logits are **bitwise identical** to
//! [`gcon_core::infer::public_logits`] / `private_logits` — pinned by the
//! `serving_equivalence` suite across thread counts and dispatch tiers.
//!
//! The store can instead be frozen in `f32` ([`StoreDtype::F32`], or
//! `GCON_STORE_DTYPE=f32` process-wide): the propagated features and
//! `Θ_priv` are quantized once at build time and the whole head forward
//! runs in `f32` — half the memory traffic, double the SIMD lanes — with
//! only the final `batch × c` logits widened back to `f64`. That trades
//! the cross-checked bitwise guarantee for a documented drift bound
//! ([`F32_STORE_LOGIT_TOL`]); *within* the f32 store all the determinism
//! properties above still hold bitwise. Training and the DP calibration
//! chain are untouched — they always run in `f64`. See [`StoreDtype`] for
//! the full contract.
//!
//! ```
//! use gcon_core::{train::train_gcon, GconConfig};
//! use gcon_graph::generators::{sbm_homophily, SbmConfig};
//! use gcon_linalg::Mat;
//! use gcon_serve::{ServingMode, ServingModel};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # let mut rng = StdRng::seed_from_u64(5);
//! # let cfg = SbmConfig { n: 30, num_edges: 90, num_classes: 2, homophily: 0.8,
//! #                       degree_exponent: 2.5 };
//! # let (graph, labels) = sbm_homophily(&cfg, &mut rng);
//! # let features = Mat::from_fn(30, 6, |i, j| if j % 2 == labels[i] { 1.0 } else { 0.0 });
//! # let train_idx: Vec<usize> = (0..30).collect();
//! # let mut config = GconConfig::default();
//! # config.encoder.epochs = 5;
//! # config.encoder.hidden = 8;
//! # config.encoder.d1 = 4;
//! # config.optimizer.max_iters = 30;
//! let model = train_gcon(&config, &graph, &features, &labels, &train_idx, 2, 4.0, 1e-3, &mut rng);
//!
//! // Pay the full-graph propagation once…
//! let serving = ServingModel::build(&model, &graph, &features, ServingMode::Public);
//! // …then answer queries at dense-head cost, exactly.
//! let mut session = serving.session();
//! assert_eq!(
//!     session.predict_batch(&[3, 7, 3]),
//!     &[serving.predict(3), serving.predict(7), serving.predict(3)],
//! );
//! assert_eq!(
//!     serving.predict_all(),
//!     gcon_core::infer::public_predict(&model, &graph, &features),
//! );
//! ```

mod batch;
mod client;
mod coalesce;
mod dynamic;
pub mod fleet;
mod model;
mod server;
pub mod wire;

pub use batch::{BatchConfig, BatchQueue, BatchStats};
pub use client::GconClient;
pub use coalesce::{CoalesceConfig, CoalesceStats, DeltaCoalescer};
pub use dynamic::{DeltaOutcome, DynamicServingModel, OnboardQuery, ServingGeneration};
pub use fleet::{ConsensusReport, Coordinator, FleetConfig, FleetError, FleetStats, ShardWorker};
pub use gcon_core::InfRefreshKind;
pub use model::{ServingMode, ServingModel, ServingSession, StoreDtype, F32_STORE_LOGIT_TOL};
pub use server::{Server, ServerConfig, ServerHandle};

/// Shared tiny trained model for this crate's unit tests (training once per
/// test binary keeps each test cheap).
#[cfg(test)]
pub(crate) mod testutil {
    use gcon_core::train::train_gcon;
    use gcon_core::{GconConfig, PropagationStep, TrainedGcon};
    use gcon_graph::generators::{sbm_homophily, SbmConfig};
    use gcon_graph::Graph;
    use gcon_linalg::Mat;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::OnceLock;

    pub(crate) fn tiny_trained() -> &'static (TrainedGcon, Graph, Mat) {
        static MODEL: OnceLock<(TrainedGcon, Graph, Mat)> = OnceLock::new();
        MODEL.get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(1234);
            let cfg = SbmConfig {
                n: 48,
                num_edges: 140,
                num_classes: 3,
                homophily: 0.85,
                degree_exponent: 2.5,
            };
            let (graph, labels) = sbm_homophily(&cfg, &mut rng);
            let x = Mat::from_fn(48, 9, |i, j| {
                (if j % 3 == labels[i] { 1.2 } else { 0.0 })
                    + 0.3 * (((i * 11 + j * 5) % 13) as f64 / 13.0 - 0.5)
            });
            let train_idx: Vec<usize> = (0..48).collect();
            let config = GconConfig {
                encoder: gcon_core::encoder::EncoderConfig {
                    hidden: 12,
                    d1: 6,
                    epochs: 40,
                    lr: 0.02,
                    weight_decay: 1e-5,
                },
                steps: vec![PropagationStep::Finite(0), PropagationStep::Finite(2)],
                optimizer: gcon_core::model::OptimizerConfig {
                    lr: 0.05,
                    max_iters: 200,
                    grad_tol: 1e-7,
                },
                ..Default::default()
            };
            let model =
                train_gcon(&config, &graph, &x, &labels, &train_idx, 3, 4.0, 1e-3, &mut rng);
            (model, graph, x)
        })
    }

    /// A frozen private-mode `f64` serving store over [`tiny_trained`],
    /// built once per test binary (the fleet tests slice and ship it).
    pub(crate) fn tiny_store() -> &'static crate::ServingModel {
        use crate::{ServingMode, ServingModel, StoreDtype};
        static STORE: OnceLock<ServingModel> = OnceLock::new();
        STORE.get_or_init(|| {
            let (model, graph, x) = tiny_trained();
            ServingModel::build_with_dtype(model, graph, x, ServingMode::Private, StoreDtype::F64)
        })
    }
}
