//! The `gcond` wire protocol: hand-rolled, length-prefixed binary frames.
//!
//! Everything on the socket is a **frame**: a little-endian `u32` body
//! length followed by the body, whose first byte is the opcode. Both sides
//! enforce a maximum body length *before* allocating ([`read_frame`]), and
//! every decoder is fail-closed — hostile bytes (truncated, bit-flipped,
//! oversized counts, unknown opcodes, trailing garbage) produce a
//! [`WireError`], never a panic and never an allocation beyond the bytes
//! actually received. Frame bodies reuse the `gcon-core::serialize`
//! primitive getters, so the socket shares one trust boundary with the
//! on-disk formats.
//!
//! # Frame catalogue
//!
//! ```text
//!            ┌──────────────┬─────────┬───────────────────────────────┐
//! frame    = │ u32 body_len │ u8 op   │ payload (body_len − 1 bytes)  │
//!            └──────────────┴─────────┴───────────────────────────────┘
//!
//! requests                       payload
//!   0x01 Hello                   b"GCON", u16 proto
//!   0x02 Query                   u64 token, u64 node
//!   0x03 Bulk                    u64 token, u32 count, count × u64 node
//!   0x04 Stats                   u64 token
//!   0x05 Health                  —
//!   0x06 Bye                     —
//!   0x07 ShardAssign             u64 token, u32 shard_id, u64 row_start,
//!                                u32 len, len × u8 store-slice artifact (v3)
//!   0x08 ShardQuery              u64 token, u32 count, count × u64 global node
//!   0x09 ShardFingerprint        u64 token, u64 chunk_rows
//!
//! responses
//!   0x81 HelloAck                u64 token, ServerInfo
//!   0x82 Logits                  u32 count, count × f64
//!   0x83 BulkChunk               u64 start, u32 rows, u32 cols, rows·cols × f64
//!   0x84 BulkDone                u64 total_rows
//!   0x85 StatsReply              7 × u64 counters, u8 degraded
//!   0x86 HealthReply             u8 ok
//!   0x87 Error                   u8 code, u32 len, len × u8 UTF-8 message
//!   0x88 ShardReady              u32 shard_id, u64 rows
//!   0x89 ShardLogits             u64 start, u32 rows, u32 cols, rows·cols × f64
//!   0x8A ShardFingerprintReply   u64 chunk_rows, u32 count, count × u64
//! ```
//!
//! # Fleet frames
//!
//! The `0x07`–`0x09` requests (and their `0x88`–`0x8A` responses) are the
//! coordinator → shard-worker protocol of [`crate::fleet`]. `ShardAssign`
//! hands a worker its row range as an embedded **store-slice artifact** —
//! the same v3 container `ServingModel::save` writes, so the worker reuses
//! the fail-closed on-disk decoder verbatim. `ShardQuery` carries *global*
//! node ids (the worker translates by its `row_start`), answered by a
//! bounded `ShardLogits` chunk stream terminated by `BulkDone`.
//! `ShardFingerprint` asks for the per-chunk store fingerprints the
//! coordinator cross-checks for replica consensus.
//!
//! # Session model
//!
//! A connection starts with `Hello` (client magic + protocol version) and
//! gets back `HelloAck` carrying a per-connection **session token** and the
//! [`ServerInfo`] store handshake (mode, dtype, shape). Every subsequent
//! authenticated request carries that token; a mismatch is answered with
//! [`ErrorCode::BadToken`] and the connection is dropped. The token is not
//! a cryptographic credential — it is a cheap guard against desynchronized
//! or replayed frames on a trusted network (same spirit as an RPC
//! connection id).
//!
//! # Streaming bulk answers
//!
//! A `Bulk` request of `q` nodes is answered by one or more `BulkChunk`
//! frames (row ranges of the `q × c` logit matrix, in order, each under the
//! frame-size bound) terminated by `BulkDone` — the client reassembles by
//! `start` offset. This keeps every frame bounded regardless of `q`.

use crate::model::{ServingMode, StoreDtype};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use gcon_core::serialize::{get_u16, get_u32, get_u64, get_u8, DecodeError};

/// Protocol version carried in `Hello`/`HelloAck`; bumped on any
/// incompatible frame change. v2 added the fleet frames and widened
/// `StatsReply` with the `quarantined` / `failovers` counters.
pub const PROTO_VERSION: u16 = 2;

/// Client magic in `Hello` — same four bytes as the on-disk artifacts.
pub const WIRE_MAGIC: &[u8; 4] = b"GCON";

/// Default maximum frame body length (bytes) either side will accept
/// before allocating; override with `GCON_SERVER_MAX_FRAME`.
pub const DEFAULT_MAX_FRAME: usize = 8 << 20;

/// Machine-readable failure class carried in an `Error` frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The frame could not be decoded (bad opcode, truncated payload,
    /// trailing garbage).
    BadFrame = 1,
    /// The `Hello` handshake was malformed or version-incompatible.
    BadHandshake = 2,
    /// The request's session token does not match this connection.
    BadToken = 3,
    /// A queried node id is outside the store.
    NodeOutOfRange = 4,
    /// The frame exceeded the server's size bound.
    TooLarge = 5,
    /// The bounded-inflight gate rejected the request; retry later.
    Overloaded = 6,
    /// The server hit an internal failure serving the request.
    Internal = 7,
    /// A shard frame arrived before the worker received its
    /// `ShardAssign` (or a plain query hit a shard worker).
    NotAssigned = 8,
}

impl ErrorCode {
    /// Decodes the on-wire tag.
    pub fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            1 => ErrorCode::BadFrame,
            2 => ErrorCode::BadHandshake,
            3 => ErrorCode::BadToken,
            4 => ErrorCode::NodeOutOfRange,
            5 => ErrorCode::TooLarge,
            6 => ErrorCode::Overloaded,
            7 => ErrorCode::Internal,
            8 => ErrorCode::NotAssigned,
            _ => return None,
        })
    }
}

/// Anything that can go wrong reading, writing, or decoding frames.
#[derive(Debug)]
pub enum WireError {
    /// Socket-level failure (includes read/write timeouts).
    Io(std::io::Error),
    /// A frame header announced a body larger than the configured bound.
    FrameTooLarge {
        /// Announced body length.
        len: usize,
        /// The bound it violated.
        max: usize,
    },
    /// The frame body failed to decode.
    Decode(DecodeError),
    /// Structurally invalid traffic (empty frame, mid-frame disconnect,
    /// trailing bytes, unknown opcode…).
    Malformed(&'static str),
    /// The peer answered with an `Error` frame (client-side surface).
    Server {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail from the server.
        message: String,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame body of {len} bytes exceeds the {max}-byte bound")
            }
            WireError::Decode(e) => write!(f, "frame decode error: {e}"),
            WireError::Malformed(what) => write!(f, "malformed wire traffic: {what}"),
            WireError::Server { code, message } => {
                write!(f, "server error {code:?}: {message}")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<DecodeError> for WireError {
    fn from(e: DecodeError) -> Self {
        WireError::Decode(e)
    }
}

/// The store handshake a server announces in `HelloAck`: what the frozen
/// store serves, so a client can validate queries locally.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerInfo {
    /// Protocol version the server speaks.
    pub proto: u16,
    /// Which inference protocol the store reproduces.
    pub mode: ServingMode,
    /// The dtype the store is frozen in.
    pub dtype: StoreDtype,
    /// Number of nodes the store answers for.
    pub nodes: u64,
    /// Propagated feature dimension `d` of the store.
    pub feature_dim: u32,
    /// Number of classes per logit row.
    pub classes: u32,
}

/// Counters in a `StatsReply` frame.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Connections accepted since start.
    pub connections: u64,
    /// Queries answered (bulk counts each node).
    pub requests: u64,
    /// Micro-batches executed by the underlying [`crate::BatchQueue`].
    pub batches: u64,
    /// Largest micro-batch executed.
    pub largest_batch: u64,
    /// Requests rejected by the bounded-inflight gate.
    pub rejected_overload: u64,
    /// Replicas currently quarantined by the fleet consensus check
    /// (always 0 on a plain single-store server).
    pub quarantined: u64,
    /// Queries rerouted to another replica after a shard died or timed
    /// out (always 0 on a plain single-store server).
    pub failovers: u64,
    /// True once the serving path recovered from a panic (see
    /// [`crate::DynamicServingModel::is_degraded`]); a healthy static
    /// store always reports `false`.
    pub degraded: bool,
}

/// A client → server frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Opens a session: client magic + protocol version.
    Hello {
        /// The client's protocol version ([`PROTO_VERSION`]).
        proto: u16,
    },
    /// Logits of a single node.
    Query {
        /// Session token from `HelloAck`.
        token: u64,
        /// Node id to answer for.
        node: u64,
    },
    /// Logits of many nodes, answered as a `BulkChunk` stream.
    Bulk {
        /// Session token from `HelloAck`.
        token: u64,
        /// Node ids to answer for, in answer order.
        nodes: Vec<u64>,
    },
    /// Server counter snapshot.
    Stats {
        /// Session token from `HelloAck`.
        token: u64,
    },
    /// Liveness probe; the only request valid without a handshake.
    Health,
    /// Graceful goodbye; the server closes the connection.
    Bye,
    /// Coordinator → worker: adopt this row range. The artifact bytes are
    /// a complete v3 store-slice artifact (rows `row_start ..
    /// row_start + slice_rows` of the fleet store).
    ShardAssign {
        /// Session token from `HelloAck`.
        token: u64,
        /// Shard index within the fleet partition.
        shard_id: u32,
        /// Global row id of the slice's first row.
        row_start: u64,
        /// Encoded store-slice artifact (decoded by the same fail-closed
        /// path as an on-disk store).
        artifact: Vec<u8>,
    },
    /// Coordinator → worker: logits for **global** node ids inside the
    /// worker's assigned range, answered as a `ShardLogits` stream
    /// terminated by `BulkDone`.
    ShardQuery {
        /// Session token from `HelloAck`.
        token: u64,
        /// Global node ids, in answer order.
        nodes: Vec<u64>,
    },
    /// Coordinator → worker: report per-chunk store fingerprints (the
    /// consensus check; see `ServingModel::chunk_fingerprints`).
    ShardFingerprint {
        /// Session token from `HelloAck`.
        token: u64,
        /// Rows per fingerprint chunk (≥ 1).
        chunk_rows: u64,
    },
}

/// A server → client frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Handshake accepted: the session token + store description.
    HelloAck {
        /// Token every later request on this connection must carry.
        token: u64,
        /// What the store serves.
        info: ServerInfo,
    },
    /// Answer to `Query`: one logit row.
    Logits {
        /// The node's logits (`classes` values).
        values: Vec<f64>,
    },
    /// One row range of a `Bulk` answer.
    BulkChunk {
        /// First answer row this chunk carries.
        start: u64,
        /// Number of columns (classes) per row.
        cols: u32,
        /// `rows × cols` logits, row-major.
        values: Vec<f64>,
    },
    /// Terminates a `BulkChunk` stream.
    BulkDone {
        /// Total rows streamed (must equal the request's node count).
        total_rows: u64,
    },
    /// Answer to `Stats`.
    StatsReply(WireStats),
    /// Answer to `Health`.
    HealthReply {
        /// True when the serving path is healthy (not degraded).
        ok: bool,
    },
    /// The request failed; the connection may be closed afterwards.
    Error {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Worker → coordinator: the `ShardAssign` slice was decoded and the
    /// worker now serves it.
    ShardReady {
        /// Echo of the assigned shard index.
        shard_id: u32,
        /// Rows the worker holds (the slice's row count).
        rows: u64,
    },
    /// One row range of a `ShardQuery` answer (same shape as `BulkChunk`;
    /// `start` indexes the *request's* node list).
    ShardLogits {
        /// First answer row this chunk carries.
        start: u64,
        /// Number of columns (classes) per row.
        cols: u32,
        /// `rows × cols` logits, row-major.
        values: Vec<f64>,
    },
    /// Worker → coordinator: the per-chunk store fingerprints.
    ShardFingerprintReply {
        /// Echo of the requested chunk granularity.
        chunk_rows: u64,
        /// One FNV-1a-64 fingerprint per store chunk, plus the trailing
        /// theta fingerprint.
        fingerprints: Vec<u64>,
    },
}

// ------------------------------------------------------------- frame I/O

/// Reads one frame body (opcode + payload) from `r`.
///
/// Returns `Ok(None)` on a clean disconnect (EOF at a frame boundary).
/// The body length is validated against `max_frame` **before** the body
/// buffer is allocated, so a hostile 4-byte header cannot trigger an
/// oversized allocation.
pub fn read_frame(
    r: &mut impl std::io::Read,
    max_frame: usize,
) -> Result<Option<Vec<u8>>, WireError> {
    let mut header = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(WireError::Malformed("connection closed mid-header")),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len == 0 {
        return Err(WireError::Malformed("empty frame"));
    }
    if len > max_frame {
        return Err(WireError::FrameTooLarge { len, max: max_frame });
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

/// Writes one frame (header + body) to `w`. The caller batches/flushes.
///
/// # Panics
/// Panics if `body` exceeds `u32::MAX` bytes — encoders bound their output
/// far below that, so this indicates a caller bug, not hostile input.
pub fn write_frame(w: &mut impl std::io::Write, body: &[u8]) -> Result<(), WireError> {
    let len = u32::try_from(body.len()).expect("frame body exceeds u32::MAX bytes");
    w.write_all(&len.to_le_bytes())?;
    w.write_all(body)?;
    Ok(())
}

// ------------------------------------------------------------- encoding

impl Request {
    /// Encodes the frame body (opcode + payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        match self {
            Request::Hello { proto } => {
                buf.put_u8(0x01);
                buf.put_slice(WIRE_MAGIC);
                buf.put_u16_le(*proto);
            }
            Request::Query { token, node } => {
                buf.put_u8(0x02);
                buf.put_u64_le(*token);
                buf.put_u64_le(*node);
            }
            Request::Bulk { token, nodes } => {
                buf.put_u8(0x03);
                buf.put_u64_le(*token);
                buf.put_u32_le(u32::try_from(nodes.len()).expect("bulk request too large"));
                for &n in nodes {
                    buf.put_u64_le(n);
                }
            }
            Request::Stats { token } => {
                buf.put_u8(0x04);
                buf.put_u64_le(*token);
            }
            Request::Health => buf.put_u8(0x05),
            Request::Bye => buf.put_u8(0x06),
            Request::ShardAssign { token, shard_id, row_start, artifact } => {
                buf.put_u8(0x07);
                buf.put_u64_le(*token);
                buf.put_u32_le(*shard_id);
                buf.put_u64_le(*row_start);
                buf.put_u32_le(u32::try_from(artifact.len()).expect("shard artifact too large"));
                buf.put_slice(artifact);
            }
            Request::ShardQuery { token, nodes } => {
                buf.put_u8(0x08);
                buf.put_u64_le(*token);
                buf.put_u32_le(u32::try_from(nodes.len()).expect("shard query too large"));
                for &n in nodes {
                    buf.put_u64_le(n);
                }
            }
            Request::ShardFingerprint { token, chunk_rows } => {
                buf.put_u8(0x09);
                buf.put_u64_le(*token);
                buf.put_u64_le(*chunk_rows);
            }
        }
        buf.freeze().to_vec()
    }

    /// Decodes a frame body. Strict: trailing bytes are an error.
    pub fn decode(body: &[u8]) -> Result<Self, WireError> {
        let mut buf = Bytes::copy_from_slice(body);
        let op = get_u8(&mut buf)?;
        let req = match op {
            0x01 => {
                let mut magic = [0u8; 4];
                if buf.remaining() < 4 {
                    return Err(DecodeError::Truncated.into());
                }
                buf.copy_to_slice(&mut magic);
                if &magic != WIRE_MAGIC {
                    return Err(WireError::Malformed("bad hello magic"));
                }
                Request::Hello { proto: get_u16(&mut buf)? }
            }
            0x02 => Request::Query { token: get_u64(&mut buf)?, node: get_u64(&mut buf)? },
            0x03 => {
                let token = get_u64(&mut buf)?;
                let count = get_u32(&mut buf)? as usize;
                // Bound the allocation by the bytes actually present.
                if count.checked_mul(8).is_none_or(|b| buf.remaining() < b) {
                    return Err(DecodeError::Truncated.into());
                }
                let nodes = (0..count).map(|_| buf.get_u64_le()).collect();
                Request::Bulk { token, nodes }
            }
            0x04 => Request::Stats { token: get_u64(&mut buf)? },
            0x05 => Request::Health,
            0x06 => Request::Bye,
            0x07 => {
                let token = get_u64(&mut buf)?;
                let shard_id = get_u32(&mut buf)?;
                let row_start = get_u64(&mut buf)?;
                let len = get_u32(&mut buf)? as usize;
                // Bound the allocation by the bytes actually present.
                if buf.remaining() < len {
                    return Err(DecodeError::Truncated.into());
                }
                let mut artifact = vec![0u8; len];
                buf.copy_to_slice(&mut artifact);
                Request::ShardAssign { token, shard_id, row_start, artifact }
            }
            0x08 => {
                let token = get_u64(&mut buf)?;
                let count = get_u32(&mut buf)? as usize;
                if count.checked_mul(8).is_none_or(|b| buf.remaining() < b) {
                    return Err(DecodeError::Truncated.into());
                }
                let nodes = (0..count).map(|_| buf.get_u64_le()).collect();
                Request::ShardQuery { token, nodes }
            }
            0x09 => Request::ShardFingerprint {
                token: get_u64(&mut buf)?,
                chunk_rows: get_u64(&mut buf)?,
            },
            _ => return Err(WireError::Malformed("unknown request opcode")),
        };
        if buf.remaining() != 0 {
            return Err(WireError::Malformed("trailing bytes after request"));
        }
        Ok(req)
    }
}

impl Response {
    /// Encodes the frame body (opcode + payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        match self {
            Response::HelloAck { token, info } => {
                buf.put_u8(0x81);
                buf.put_u64_le(*token);
                buf.put_u16_le(info.proto);
                buf.put_u8(mode_tag(info.mode));
                buf.put_u8(dtype_tag(info.dtype));
                buf.put_u64_le(info.nodes);
                buf.put_u32_le(info.feature_dim);
                buf.put_u32_le(info.classes);
            }
            Response::Logits { values } => {
                buf.put_u8(0x82);
                buf.put_u32_le(u32::try_from(values.len()).expect("logit row too large"));
                for &v in values {
                    buf.put_f64_le(v);
                }
            }
            Response::BulkChunk { start, cols, values } => {
                buf.put_u8(0x83);
                buf.put_u64_le(*start);
                let cols_usize = *cols as usize;
                debug_assert!(cols_usize > 0 && values.len() % cols_usize == 0);
                buf.put_u32_le(u32::try_from(values.len() / cols_usize).expect("chunk too tall"));
                buf.put_u32_le(*cols);
                for &v in values {
                    buf.put_f64_le(v);
                }
            }
            Response::BulkDone { total_rows } => {
                buf.put_u8(0x84);
                buf.put_u64_le(*total_rows);
            }
            Response::StatsReply(s) => {
                buf.put_u8(0x85);
                buf.put_u64_le(s.connections);
                buf.put_u64_le(s.requests);
                buf.put_u64_le(s.batches);
                buf.put_u64_le(s.largest_batch);
                buf.put_u64_le(s.rejected_overload);
                buf.put_u64_le(s.quarantined);
                buf.put_u64_le(s.failovers);
                buf.put_u8(s.degraded as u8);
            }
            Response::HealthReply { ok } => {
                buf.put_u8(0x86);
                buf.put_u8(*ok as u8);
            }
            Response::Error { code, message } => {
                buf.put_u8(0x87);
                buf.put_u8(*code as u8);
                let msg = message.as_bytes();
                let take = msg.len().min(1024);
                buf.put_u32_le(take as u32);
                buf.put_slice(&msg[..take]);
            }
            Response::ShardReady { shard_id, rows } => {
                buf.put_u8(0x88);
                buf.put_u32_le(*shard_id);
                buf.put_u64_le(*rows);
            }
            Response::ShardLogits { start, cols, values } => {
                buf.put_u8(0x89);
                buf.put_u64_le(*start);
                let cols_usize = *cols as usize;
                debug_assert!(cols_usize > 0 && values.len() % cols_usize == 0);
                buf.put_u32_le(u32::try_from(values.len() / cols_usize).expect("chunk too tall"));
                buf.put_u32_le(*cols);
                for &v in values {
                    buf.put_f64_le(v);
                }
            }
            Response::ShardFingerprintReply { chunk_rows, fingerprints } => {
                buf.put_u8(0x8A);
                buf.put_u64_le(*chunk_rows);
                buf.put_u32_le(
                    u32::try_from(fingerprints.len()).expect("fingerprint reply too large"),
                );
                for &f in fingerprints {
                    buf.put_u64_le(f);
                }
            }
        }
        buf.freeze().to_vec()
    }

    /// Decodes a frame body. Strict: trailing bytes are an error.
    pub fn decode(body: &[u8]) -> Result<Self, WireError> {
        let mut buf = Bytes::copy_from_slice(body);
        let op = get_u8(&mut buf)?;
        let resp = match op {
            0x81 => {
                let token = get_u64(&mut buf)?;
                let proto = get_u16(&mut buf)?;
                let mode = match get_u8(&mut buf)? {
                    0 => ServingMode::Public,
                    1 => ServingMode::Private,
                    _ => return Err(WireError::Malformed("bad serving-mode tag")),
                };
                let dtype = match get_u8(&mut buf)? {
                    0 => StoreDtype::F64,
                    1 => StoreDtype::F32,
                    _ => return Err(WireError::Malformed("bad store-dtype tag")),
                };
                let nodes = get_u64(&mut buf)?;
                let feature_dim = get_u32(&mut buf)?;
                let classes = get_u32(&mut buf)?;
                Response::HelloAck {
                    token,
                    info: ServerInfo { proto, mode, dtype, nodes, feature_dim, classes },
                }
            }
            0x82 => {
                let count = get_u32(&mut buf)? as usize;
                if count.checked_mul(8).is_none_or(|b| buf.remaining() < b) {
                    return Err(DecodeError::Truncated.into());
                }
                Response::Logits { values: (0..count).map(|_| buf.get_f64_le()).collect() }
            }
            0x83 => {
                let start = get_u64(&mut buf)?;
                let rows = get_u32(&mut buf)? as usize;
                let cols = get_u32(&mut buf)?;
                let count = rows
                    .checked_mul(cols as usize)
                    .ok_or(WireError::Malformed("chunk dimensions overflow"))?;
                if count.checked_mul(8).is_none_or(|b| buf.remaining() < b) {
                    return Err(DecodeError::Truncated.into());
                }
                Response::BulkChunk {
                    start,
                    cols,
                    values: (0..count).map(|_| buf.get_f64_le()).collect(),
                }
            }
            0x84 => Response::BulkDone { total_rows: get_u64(&mut buf)? },
            0x85 => Response::StatsReply(WireStats {
                connections: get_u64(&mut buf)?,
                requests: get_u64(&mut buf)?,
                batches: get_u64(&mut buf)?,
                largest_batch: get_u64(&mut buf)?,
                rejected_overload: get_u64(&mut buf)?,
                quarantined: get_u64(&mut buf)?,
                failovers: get_u64(&mut buf)?,
                degraded: match get_u8(&mut buf)? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::Malformed("bad degraded flag")),
                },
            }),
            0x86 => Response::HealthReply {
                ok: match get_u8(&mut buf)? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::Malformed("bad health flag")),
                },
            },
            0x87 => {
                let code = ErrorCode::from_tag(get_u8(&mut buf)?)
                    .ok_or(WireError::Malformed("unknown error code"))?;
                let len = get_u32(&mut buf)? as usize;
                if len > 1024 || buf.remaining() < len {
                    return Err(DecodeError::Truncated.into());
                }
                let mut msg = vec![0u8; len];
                buf.copy_to_slice(&mut msg);
                Response::Error { code, message: String::from_utf8_lossy(&msg).into_owned() }
            }
            0x88 => Response::ShardReady { shard_id: get_u32(&mut buf)?, rows: get_u64(&mut buf)? },
            0x89 => {
                let start = get_u64(&mut buf)?;
                let rows = get_u32(&mut buf)? as usize;
                let cols = get_u32(&mut buf)?;
                let count = rows
                    .checked_mul(cols as usize)
                    .ok_or(WireError::Malformed("shard chunk dimensions overflow"))?;
                if count.checked_mul(8).is_none_or(|b| buf.remaining() < b) {
                    return Err(DecodeError::Truncated.into());
                }
                Response::ShardLogits {
                    start,
                    cols,
                    values: (0..count).map(|_| buf.get_f64_le()).collect(),
                }
            }
            0x8A => {
                let chunk_rows = get_u64(&mut buf)?;
                let count = get_u32(&mut buf)? as usize;
                if count.checked_mul(8).is_none_or(|b| buf.remaining() < b) {
                    return Err(DecodeError::Truncated.into());
                }
                Response::ShardFingerprintReply {
                    chunk_rows,
                    fingerprints: (0..count).map(|_| buf.get_u64_le()).collect(),
                }
            }
            _ => return Err(WireError::Malformed("unknown response opcode")),
        };
        if buf.remaining() != 0 {
            return Err(WireError::Malformed("trailing bytes after response"));
        }
        Ok(resp)
    }
}

fn mode_tag(mode: ServingMode) -> u8 {
    match mode {
        ServingMode::Public => 0,
        ServingMode::Private => 1,
    }
}

fn dtype_tag(dtype: StoreDtype) -> u8 {
    match dtype {
        StoreDtype::F64 => 0,
        StoreDtype::F32 => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Hello { proto: PROTO_VERSION },
            Request::Query { token: 0xDEAD_BEEF, node: 42 },
            Request::Bulk { token: 7, nodes: vec![0, 1, 9, u64::MAX] },
            Request::Bulk { token: 7, nodes: vec![] },
            Request::Stats { token: 1 },
            Request::Health,
            Request::Bye,
            Request::ShardAssign {
                token: 7,
                shard_id: 2,
                row_start: 24,
                artifact: vec![0xDE, 0xAD, 0xBE, 0xEF, 0x00],
            },
            Request::ShardAssign { token: 7, shard_id: 0, row_start: 0, artifact: vec![] },
            Request::ShardQuery { token: 7, nodes: vec![24, 25, u64::MAX] },
            Request::ShardQuery { token: 7, nodes: vec![] },
            Request::ShardFingerprint { token: 7, chunk_rows: 64 },
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::HelloAck {
                token: 99,
                info: ServerInfo {
                    proto: PROTO_VERSION,
                    mode: ServingMode::Private,
                    dtype: StoreDtype::F32,
                    nodes: 48,
                    feature_dim: 12,
                    classes: 3,
                },
            },
            Response::Logits { values: vec![0.5, -1.25, f64::MIN_POSITIVE] },
            Response::BulkChunk { start: 3, cols: 2, values: vec![1.0, 2.0, 3.0, 4.0] },
            Response::BulkDone { total_rows: 5 },
            Response::StatsReply(WireStats {
                connections: 1,
                requests: 2,
                batches: 3,
                largest_batch: 4,
                rejected_overload: 5,
                quarantined: 6,
                failovers: 7,
                degraded: true,
            }),
            Response::HealthReply { ok: true },
            Response::Error { code: ErrorCode::Overloaded, message: "busy".into() },
            Response::ShardReady { shard_id: 2, rows: 24 },
            Response::ShardLogits { start: 8, cols: 3, values: vec![1.5, -2.0, 0.25] },
            Response::ShardFingerprintReply {
                chunk_rows: 64,
                fingerprints: vec![0xCBF2_9CE4, 0, u64::MAX],
            },
        ]
    }

    #[test]
    fn request_roundtrip() {
        for req in sample_requests() {
            let body = req.encode();
            assert_eq!(Request::decode(&body).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn response_roundtrip() {
        for resp in sample_responses() {
            let body = resp.encode();
            assert_eq!(Response::decode(&body).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn every_truncation_errs_never_panics() {
        for body in sample_requests().iter().map(Request::encode) {
            for cut in 0..body.len() {
                assert!(Request::decode(&body[..cut]).is_err(), "request prefix {cut}");
            }
        }
        for body in sample_responses().iter().map(Response::encode) {
            for cut in 0..body.len() {
                assert!(Response::decode(&body[..cut]).is_err(), "response prefix {cut}");
            }
        }
    }

    #[test]
    fn every_single_byte_flip_is_err_or_ok_never_panic() {
        for body in sample_requests().iter().map(Request::encode) {
            for i in 0..body.len() {
                let mut flipped = body.clone();
                flipped[i] ^= 0xA5;
                let _ = Request::decode(&flipped);
            }
        }
        for body in sample_responses().iter().map(Response::encode) {
            for i in 0..body.len() {
                let mut flipped = body.clone();
                flipped[i] ^= 0xA5;
                let _ = Response::decode(&flipped);
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut body = Request::Health.encode();
        body.push(0);
        assert!(matches!(Request::decode(&body), Err(WireError::Malformed(_))));
    }

    #[test]
    fn unknown_opcodes_rejected() {
        assert!(Request::decode(&[0x7F]).is_err());
        assert!(Response::decode(&[0x01]).is_err());
        assert!(Request::decode(&[]).is_err());
    }

    /// A hostile bulk count larger than the actual payload must not
    /// trigger a count-sized allocation.
    #[test]
    fn hostile_bulk_count_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(0x03);
        buf.put_u64_le(0);
        buf.put_u32_le(u32::MAX);
        let body = buf.freeze().to_vec();
        assert!(Request::decode(&body).is_err());
    }

    /// Same discipline for every fleet frame carrying a count or length:
    /// a hostile header larger than the payload present is rejected before
    /// any count-sized allocation.
    #[test]
    fn hostile_shard_counts_rejected() {
        // ShardAssign with an artifact length beyond the body.
        let mut buf = BytesMut::new();
        buf.put_u8(0x07);
        buf.put_u64_le(0);
        buf.put_u32_le(0);
        buf.put_u64_le(0);
        buf.put_u32_le(u32::MAX);
        assert!(Request::decode(&buf.freeze()).is_err());
        // ShardQuery with a hostile node count.
        let mut buf = BytesMut::new();
        buf.put_u8(0x08);
        buf.put_u64_le(0);
        buf.put_u32_le(u32::MAX);
        assert!(Request::decode(&buf.freeze()).is_err());
        // ShardLogits with overflowing dims.
        let mut buf = BytesMut::new();
        buf.put_u8(0x89);
        buf.put_u64_le(0);
        buf.put_u32_le(u32::MAX);
        buf.put_u32_le(u32::MAX);
        assert!(Response::decode(&buf.freeze()).is_err());
        // ShardFingerprintReply with a hostile fingerprint count.
        let mut buf = BytesMut::new();
        buf.put_u8(0x8A);
        buf.put_u64_le(64);
        buf.put_u32_le(u32::MAX);
        assert!(Response::decode(&buf.freeze()).is_err());
    }

    /// Hostile chunk dims whose product overflows must be rejected, not
    /// wrap into a small allocation.
    #[test]
    fn hostile_chunk_dims_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(0x83);
        buf.put_u64_le(0);
        buf.put_u32_le(u32::MAX);
        buf.put_u32_le(u32::MAX);
        let body = buf.freeze().to_vec();
        assert!(Response::decode(&body).is_err());
    }

    #[test]
    fn frame_io_roundtrip_and_eof() {
        let mut wire = Vec::new();
        let body1 = Request::Health.encode();
        let body2 = Request::Bye.encode();
        write_frame(&mut wire, &body1).unwrap();
        write_frame(&mut wire, &body2).unwrap();
        let mut cursor = &wire[..];
        assert_eq!(read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap().unwrap(), body1);
        assert_eq!(read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap().unwrap(), body2);
        assert!(read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_frame_header_rejected_before_allocation() {
        let header = (u32::MAX).to_le_bytes();
        let mut cursor = &header[..];
        match read_frame(&mut cursor, 1024) {
            Err(WireError::FrameTooLarge { len, max }) => {
                assert_eq!(len, u32::MAX as usize);
                assert_eq!(max, 1024);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn empty_and_torn_frames_rejected() {
        let zero = 0u32.to_le_bytes();
        let mut cursor = &zero[..];
        assert!(matches!(read_frame(&mut cursor, 1024), Err(WireError::Malformed(_))));
        // Header promises 8 bytes, stream ends after 3.
        let mut torn = 8u32.to_le_bytes().to_vec();
        torn.extend_from_slice(&[1, 2, 3]);
        let mut cursor = &torn[..];
        assert!(read_frame(&mut cursor, 1024).is_err());
        // Stream dies inside the header itself.
        let mut cursor = &[0x04u8, 0x00][..];
        assert!(read_frame(&mut cursor, 1024).is_err());
    }

    #[test]
    fn error_display_is_informative() {
        let e = WireError::FrameTooLarge { len: 10, max: 5 };
        assert!(e.to_string().contains("10"));
        let e = WireError::Server { code: ErrorCode::BadToken, message: "nope".into() };
        assert!(e.to_string().contains("nope"));
        assert!(ErrorCode::from_tag(200).is_none());
    }
}
