//! Staleness-aware dynamic serving: versioned store generations over a
//! live [`gcon_core::ApprChain`].
//!
//! [`DynamicServingModel`] wraps the frozen-store serving path with a
//! mutation API: [`DynamicServingModel::apply_delta`] takes a
//! [`gcon_graph::CsrDelta`] (edge inserts/removes + node onboarding),
//! patches the row-stochastic `Ã` in O(Δ) touched rows, incrementally
//! refreshes the propagation chain (finite scales bitwise, the `∞` scale
//! warm-started with a certified staleness bound), patches only the
//! affected rows of the assembled store, and publishes the result as a new
//! immutable [`ServingGeneration`].
//!
//! # Concurrency model
//!
//! Refreshes serialize on an internal mutex; queries never wait on it.
//! [`DynamicServingModel::snapshot`] hands out an
//! `Arc<`[`ServingGeneration`]`>` under a brief read lock — a query running
//! against generation `g` keeps answering from `g`'s frozen store even
//! while `apply_delta` builds generation `g+1`, and sees the new store only
//! when it next snapshots. Every generation carries its own certified
//! staleness bound ([`ServingGeneration::staleness_bound`]), so a client
//! can report per-query staleness: the answer it got is from generation
//! `g`, whose `∞`-scale block is within that bound of exact (`0.0` for
//! finite-only models — those generations are bitwise exact).
//!
//! # Onboarding without a store rebuild
//!
//! Two tiers, matching how much work the caller wants to pay:
//!
//! - [`DynamicServingModel::onboard_logits`] answers queries for **unseen**
//!   nodes immediately: a batched one-hop gather (Eq. 16 semantics — only
//!   the query node's own edges) against the live encoded features, no
//!   store mutation at all. Exactly the private-mode aggregation; for
//!   public-mode stores it is the admissible one-hop approximation.
//! - [`CsrDelta::add_nodes`](gcon_graph::CsrDelta::add_nodes) +
//!   [`apply_delta`](DynamicServingModel::apply_delta) onboards nodes into
//!   the store itself (they become ordinary query targets of the next
//!   generation).
//!
//! # Solver knob
//!
//! The chain's `∞`-scale solver follows the trained model's
//! `GconConfig::ppr_solver`; `GCON_REFRESH_SOLVER=auto|power|cgnr|push`
//! overrides it process-wide (resolved once, like `GCON_STORE_DTYPE`).
//! `push` forces local forward-push residual maintenance on every refresh;
//! `auto` picks push/cgnr/power per delta from the touched-set volume (see
//! `gcon_core::propagation::plan_inf_refresh`).

use crate::model::{ServingMode, ServingModel, StoreDtype};
use gcon_core::propagation::PropagationStep;
use gcon_core::{ApprChain, InfRefreshKind, PprSolver, TrainedGcon};
use gcon_graph::normalize::row_stochastic;
use gcon_graph::{Csr, CsrDelta, Graph};
use gcon_linalg::{ops, Mat};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// One immutable published store version: the frozen [`ServingModel`] plus
/// the generation's provenance (counter + staleness certificate). Obtained
/// from [`DynamicServingModel::snapshot`]; queries run through
/// [`ServingGeneration::model`] exactly like on a static store.
#[derive(Clone, Debug)]
pub struct ServingGeneration {
    model: ServingModel,
    generation: u64,
    staleness_bound: f64,
}

impl ServingGeneration {
    /// The frozen store this generation serves queries from.
    pub fn model(&self) -> &ServingModel {
        &self.model
    }

    /// Monotone generation counter (0 = the initial build; each
    /// successfully applied delta increments it).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Certified bound on how far this generation's `∞`-scale store block
    /// is from the exact fixed point, in feature max-norm *before* the
    /// `1/s` concatenation scaling and head product (`0.0` for finite-only
    /// models: those blocks are bitwise exact). A served logit inherits at
    /// most `bound/s · ‖Θ column‖₁` of drift from staleness.
    pub fn staleness_bound(&self) -> f64 {
        self.staleness_bound
    }
}

/// What one [`DynamicServingModel::apply_delta`] call did — returned to the
/// caller and what `bench_updates` reports.
#[derive(Clone, Debug)]
pub struct DeltaOutcome {
    /// The generation the delta published (queries snapshotting from now on
    /// see it).
    pub generation: u64,
    /// The published generation's staleness certificate (see
    /// [`ServingGeneration::staleness_bound`]).
    pub staleness_bound: f64,
    /// Rows re-derived across all finite propagation levels.
    pub rows_recomputed: usize,
    /// Rows re-derived per finite level, outermost first (sums to
    /// `rows_recomputed`).
    pub rows_per_level: Vec<usize>,
    /// Distinct store rows patched (the affected set at the deepest level).
    pub affected_rows: usize,
    /// Warm iterations/sweeps of the `∞`-scale refresh (0 without `∞`).
    pub inf_iterations: usize,
    /// The solver the `∞`-scale refresh actually ran (`None` without `∞` or
    /// when the delta was fully ineffective).
    pub inf_solver: Option<InfRefreshKind>,
    /// Sum of the certified staleness bounds of every `∞` state this model
    /// has published (build + each effective refresh) — the triangle-
    /// inequality budget for comparing refresh histories (see
    /// [`gcon_core::RefreshStats::cumulative_staleness_bound`]).
    pub cumulative_staleness_bound: f64,
    /// Node ids onboarded by this delta (empty range when none).
    pub onboarded: Range<u32>,
}

/// A query for a node the store has never seen: its raw feature vector and
/// its own edge list into the *existing* node set (Eq. 16 admissibility —
/// the query node knows exactly its own edges).
#[derive(Clone, Debug)]
pub struct OnboardQuery {
    /// Raw (un-encoded) feature vector, same width the model was trained
    /// on.
    pub features: Vec<f64>,
    /// Neighbor ids among the currently stored nodes (sorted, deduplicated;
    /// may be empty for an isolated node).
    pub neighbors: Vec<u32>,
}

/// The heavy mutable half: the live graph, the encoded features, the
/// propagation chain, and the assembled f64 master store. Guarded by one
/// mutex so deltas serialize; the query path never touches it.
#[derive(Debug)]
struct RefreshState {
    graph: Graph,
    a_tilde: Csr,
    /// Encoded + row-normalized features `X̄` (grows with onboarding).
    x_enc: Mat,
    chain: ApprChain,
    /// Assembled, `1/s`-scaled f64 store (the master each generation's
    /// [`ServingModel`] is frozen from).
    store: Mat,
    generation: u64,
}

/// A mutable, versioned serving store over a dynamic graph. See
/// [`Self::apply_delta`] and [`Self::snapshot`] for the concurrency and
/// staleness contract.
#[derive(Debug)]
pub struct DynamicServingModel {
    state: Mutex<RefreshState>,
    current: RwLock<Arc<ServingGeneration>>,
    /// Latched when a poisoned `current` lock was recovered: the last
    /// published generation is still served, but a writer (or a reader
    /// holding the lock) has panicked since. Surfaced via
    /// [`Self::is_degraded`] and the server's stats frame.
    degraded: AtomicBool,
    model: TrainedGcon,
    mode: ServingMode,
    dtype: StoreDtype,
}

impl DynamicServingModel {
    /// Builds generation 0 in the process-wide default dtype
    /// ([`StoreDtype::from_env`]). Takes the graph by value — the dynamic
    /// model owns and mutates it from here on.
    pub fn build(model: &TrainedGcon, graph: Graph, features: &Mat, mode: ServingMode) -> Self {
        Self::build_with_dtype(model, graph, features, mode, StoreDtype::from_env())
    }

    /// [`DynamicServingModel::build`] with an explicit store dtype.
    ///
    /// Generation 0 is **bitwise identical** to
    /// [`ServingModel::build_with_dtype`] on the same inputs (the chain
    /// replays the identical feature-stage arithmetic), so going dynamic
    /// costs no exactness — pinned by this module's tests and the
    /// `serving_equivalence` fingerprint matrix.
    pub fn build_with_dtype(
        model: &TrainedGcon,
        graph: Graph,
        features: &Mat,
        mode: ServingMode,
        dtype: StoreDtype,
    ) -> Self {
        assert_eq!(
            graph.num_nodes(),
            features.rows(),
            "DynamicServingModel::build: graph has {} nodes but features have {} rows",
            graph.num_nodes(),
            features.rows()
        );
        let solver = refresh_solver_env().unwrap_or(model.config.ppr_solver);
        let mut x_enc = model.encoder.encode(features);
        x_enc.normalize_rows_l2();
        let a_tilde = row_stochastic(&graph, model.config.clip_p);
        let chain = ApprChain::build(
            &a_tilde,
            &x_enc,
            chain_alpha(model, mode),
            &chain_steps(model, mode),
            solver,
        );
        let store = assemble_store(&chain, &model.config.steps, mode);
        let generation = ServingGeneration {
            model: ServingModel::from_store(store.clone(), &model.theta, mode, dtype),
            generation: 0,
            staleness_bound: chain.staleness_bound(),
        };
        Self {
            state: Mutex::new(RefreshState { graph, a_tilde, x_enc, chain, store, generation: 0 }),
            current: RwLock::new(Arc::new(generation)),
            degraded: AtomicBool::new(false),
            model: model.clone(),
            mode,
            dtype,
        }
    }

    /// The current published generation. The returned `Arc` stays valid
    /// (and keeps answering from its frozen store) across any number of
    /// later [`apply_delta`](Self::apply_delta) calls.
    ///
    /// A poisoned generation lock (some thread panicked while holding it)
    /// does **not** cascade into readers: the slot always holds a
    /// fully-constructed `Arc` — it is only ever replaced whole, never
    /// mutated in place — so the last published generation is still
    /// internally consistent. `snapshot` recovers it via
    /// [`std::sync::PoisonError::into_inner`] and latches
    /// [`Self::is_degraded`] so operators see that a panic happened.
    pub fn snapshot(&self) -> Arc<ServingGeneration> {
        match self.current.read() {
            Ok(guard) => guard.clone(),
            Err(poisoned) => {
                self.degraded.store(true, Ordering::Relaxed);
                poisoned.into_inner().clone()
            }
        }
    }

    /// True once a poisoned generation lock has been observed (a refresh or
    /// query thread panicked). Serving continues from the last published
    /// generation, but the process deserves a restart/investigation; the
    /// `gcond` stats frame forwards this flag.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Which inference protocol the store reproduces.
    pub fn mode(&self) -> ServingMode {
        self.mode
    }

    /// The dtype generations are frozen in.
    pub fn store_dtype(&self) -> StoreDtype {
        self.dtype
    }

    /// Applies a batched graph delta and publishes the next generation.
    ///
    /// `onboard_features` carries one raw feature row per node the delta
    /// onboards (`None` when it onboards none); rows are encoded with the
    /// model's public encoder, which is row-local, so existing nodes'
    /// encodings are untouched bitwise. Edge mutations re-derive only
    /// delta-reachable rows (see [`gcon_core::refresh`]); for finite-step
    /// models the published store is **bitwise identical** to a full
    /// rebuild on the mutated graph, at O(affected) cost.
    ///
    /// Refreshes serialize; concurrent queries keep reading the previous
    /// generation until this returns.
    ///
    /// A **fully ineffective** delta — every edge operation cancels against
    /// the current graph (e.g. a coalescing window whose inserts and removes
    /// netted out) and no nodes are onboarded — publishes nothing: the store
    /// is bitwise unchanged, so the returned outcome carries the *current*
    /// generation and zero work counters instead of burning a generation on
    /// a no-op.
    pub fn apply_delta(&self, delta: &CsrDelta, onboard_features: Option<&Mat>) -> DeltaOutcome {
        let mut state = self.state.lock().expect("refresh state poisoned");
        let result = {
            let RefreshState { graph, a_tilde, .. } = &mut *state;
            delta.apply(graph, a_tilde, self.model.config.clip_p)
        };
        let onboarded = result.onboarded.clone();
        let num_new = (onboarded.end - onboarded.start) as usize;
        let provided = onboard_features.map_or(0, Mat::rows);
        assert_eq!(
            provided, num_new,
            "apply_delta: delta onboards {num_new} nodes but {provided} feature rows were given"
        );
        if num_new > 0 {
            let raw = onboard_features.expect("checked above");
            let mut enc = self.model.encoder.encode(raw);
            enc.normalize_rows_l2();
            let (n_old, d1) = state.x_enc.shape();
            let mut grown = Mat::zeros(n_old + num_new, d1);
            grown.as_mut_slice()[..n_old * d1].copy_from_slice(state.x_enc.as_slice());
            grown.as_mut_slice()[n_old * d1..].copy_from_slice(enc.as_slice());
            state.x_enc = grown;
        }

        let stats = {
            let RefreshState { chain, x_enc, .. } = &mut *state;
            chain.refresh(&result.a_tilde, x_enc, &result.touched)
        };
        state.a_tilde = result.a_tilde;
        if result.touched.is_empty() && num_new == 0 {
            // Fully ineffective delta: `Ã` and every chain iterate are
            // bitwise unchanged (the chain refresh early-outed the same
            // way), so there is nothing to publish.
            return DeltaOutcome {
                generation: state.generation,
                staleness_bound: stats.staleness_bound,
                rows_recomputed: 0,
                rows_per_level: stats.rows_per_level,
                affected_rows: 0,
                inf_iterations: 0,
                inf_solver: None,
                cumulative_staleness_bound: stats.cumulative_staleness_bound,
                onboarded,
            };
        }
        {
            let RefreshState { chain, store, .. } = &mut *state;
            patch_store(store, chain, &self.model.config.steps, self.mode, &stats.affected);
        }
        state.generation += 1;
        let generation = ServingGeneration {
            model: ServingModel::from_store(
                state.store.clone(),
                &self.model.theta,
                self.mode,
                self.dtype,
            ),
            generation: state.generation,
            staleness_bound: stats.staleness_bound,
        };
        // Publishing replaces the whole Arc, so a poisoned lock is safe to
        // recover here too — the new generation is already fully built.
        let generation = Arc::new(generation);
        match self.current.write() {
            Ok(mut guard) => *guard = generation,
            Err(poisoned) => {
                self.degraded.store(true, Ordering::Relaxed);
                *poisoned.into_inner() = generation;
            }
        }
        DeltaOutcome {
            generation: state.generation,
            staleness_bound: stats.staleness_bound,
            rows_recomputed: stats.rows_recomputed,
            rows_per_level: stats.rows_per_level,
            affected_rows: stats.affected.len(),
            inf_iterations: stats.inf_iterations,
            inf_solver: stats.inf_solver,
            cumulative_staleness_bound: stats.cumulative_staleness_bound,
            onboarded,
        }
    }

    /// Batched logits for nodes the store has never seen — the PR 5 open
    /// item. Each query is answered by the Eq. 16 one-hop gather against
    /// the live encoded features (`off = min(1/(k+1), clip_p)` per neighbor,
    /// exactly the training-side normalization), assembled per the model's
    /// steps, `1/s`-scaled, and pushed through the f64 head. No store
    /// mutation, no generation bump: the store answers as if the node
    /// existed, using only edges the query node itself knows.
    ///
    /// Runs in f64 regardless of the store dtype (one small `q × d` block;
    /// the result is deterministic for a given query and state but not part
    /// of the stored-node bitwise contract). Row `r` answers `queries[r]`.
    pub fn onboard_logits(&self, queries: &[OnboardQuery]) -> Mat {
        let state = self.state.lock().expect("refresh state poisoned");
        let steps = &self.model.config.steps;
        let alpha_i = self.model.config.alpha_inference;
        let clip_p = self.model.config.clip_p;
        let d1 = state.x_enc.cols();
        let n = state.x_enc.rows();
        let d0 = queries.first().map_or(0, |q| q.features.len());
        let mut raw = Mat::zeros(queries.len(), d0);
        for (r, q) in queries.iter().enumerate() {
            assert_eq!(q.features.len(), d0, "onboard_logits: ragged feature rows");
            raw.row_mut(r).copy_from_slice(&q.features);
        }
        let mut xq = self.model.encoder.encode(&raw);
        xq.normalize_rows_l2();

        let needs_hop = steps.iter().any(|s| !matches!(s, PropagationStep::Finite(0)));
        let mut z = Mat::zeros(queries.len(), steps.len() * d1);
        let mut hop = vec![0.0_f64; d1];
        for (r, q) in queries.iter().enumerate() {
            if needs_hop {
                // Ã row of the hypothetical node: `off` per neighbor plus the
                // Lemma-1 self weight, mirroring `row_stochastic`.
                let k = q.neighbors.len();
                let off = (1.0 / (k as f64 + 1.0)).min(clip_p);
                let mut off_sum = 0.0;
                for _ in 0..k {
                    off_sum += off;
                }
                let self_w = 1.0 - off_sum;
                hop.iter_mut().for_each(|h| *h = 0.0);
                for &v in &q.neighbors {
                    assert!(
                        (v as usize) < n,
                        "onboard_logits: neighbor {v} not in the {n}-node store"
                    );
                    for (h, &xv) in hop.iter_mut().zip(state.x_enc.row(v as usize)) {
                        *h += off * xv;
                    }
                }
                // R̂ = (1−α_I)Ã + α_I·I applied to the query row.
                for (h, &xqv) in hop.iter_mut().zip(xq.row(r)) {
                    *h = (1.0 - alpha_i) * (*h + self_w * xqv) + alpha_i * xqv;
                }
            }
            let zrow = z.row_mut(r);
            for (i, step) in steps.iter().enumerate() {
                let src: &[f64] = match step {
                    PropagationStep::Finite(0) => xq.row(r),
                    _ => &hop,
                };
                zrow[i * d1..(i + 1) * d1].copy_from_slice(src);
            }
        }
        drop(state);
        let inv_s = 1.0 / steps.len() as f64;
        z.map_inplace(|v| v * inv_s);
        ops::matmul(&z, &self.model.theta)
    }
}

/// The restart probability the chain propagates with in each mode: training
/// `α` for the full public propagation, `α_I` for the private one-hop.
fn chain_alpha(model: &TrainedGcon, mode: ServingMode) -> f64 {
    match mode {
        ServingMode::Public => model.config.alpha,
        ServingMode::Private => model.config.alpha_inference,
    }
}

/// The iterate levels the chain must keep per mode. Public: the model's own
/// steps. Private: level 0 (`X̄`) plus — when any step aggregates — level 1,
/// whose recursion step `(1−α_I)ÃZ₀ + α_I X̄` *is* the Eq. 16 one-hop.
fn chain_steps(model: &TrainedGcon, mode: ServingMode) -> Vec<PropagationStep> {
    match mode {
        ServingMode::Public => model.config.steps.clone(),
        ServingMode::Private => {
            let needs_hop =
                model.config.steps.iter().any(|s| !matches!(s, PropagationStep::Finite(0)));
            if needs_hop {
                vec![PropagationStep::Finite(0), PropagationStep::Finite(1)]
            } else {
                vec![PropagationStep::Finite(0)]
            }
        }
    }
}

/// The chain block a concatenation slot reads in each mode (private maps
/// every aggregating step to the one-hop level, mirroring
/// `gcon_core::infer::private_features`).
fn block_for(chain: &ApprChain, mode: ServingMode, step: PropagationStep) -> &Mat {
    match (mode, step) {
        (ServingMode::Public, PropagationStep::Finite(m)) => chain.iterate(m),
        (ServingMode::Public, PropagationStep::Infinite) => {
            chain.z_inf().expect("public ∞ chains carry z_inf")
        }
        (ServingMode::Private, PropagationStep::Finite(0)) => chain.iterate(0),
        (ServingMode::Private, _) => chain.iterate(1),
    }
}

/// Assembles the full `1/s`-scaled store from the chain — bitwise the same
/// per-element arithmetic (block copy, then one `·1/s` multiply) as the
/// feature-stage entry points.
fn assemble_store(chain: &ApprChain, steps: &[PropagationStep], mode: ServingMode) -> Mat {
    let (n, d) = (chain.num_nodes(), chain.iterate(0).cols());
    let mut out = Mat::zeros(n, steps.len() * d);
    for (i, &s) in steps.iter().enumerate() {
        out.copy_into_columns(i * d, block_for(chain, mode, s));
    }
    let inv_s = 1.0 / steps.len() as f64;
    out.map_inplace(|v| v * inv_s);
    out
}

/// Patches the master store after a chain refresh: affected rows of finite
/// blocks are rewritten (each element one block read + one `·1/s` multiply,
/// the same arithmetic the full assembly performs — so the patched store
/// stays bitwise equal to a from-scratch assembly); `∞` blocks are
/// rewritten for every row (a warm solve perturbs all of them). Grows the
/// store first when the chain onboarded nodes.
fn patch_store(
    store: &mut Mat,
    chain: &ApprChain,
    steps: &[PropagationStep],
    mode: ServingMode,
    affected: &[u32],
) {
    let n = chain.num_nodes();
    let d = chain.iterate(0).cols();
    let inv_s = 1.0 / steps.len() as f64;
    if store.rows() < n {
        let old = store.rows();
        let mut grown = Mat::zeros(n, steps.len() * d);
        grown.as_mut_slice()[..old * steps.len() * d].copy_from_slice(store.as_slice());
        *store = grown;
    }
    for (i, &s) in steps.iter().enumerate() {
        let block = block_for(chain, mode, s);
        let full_rewrite = matches!(s, PropagationStep::Infinite);
        let mut write_row = |u: usize| {
            let dst = &mut store.row_mut(u)[i * d..(i + 1) * d];
            for (o, &v) in dst.iter_mut().zip(block.row(u)) {
                *o = v * inv_s;
            }
        };
        if full_rewrite {
            (0..n).for_each(&mut write_row);
        } else {
            affected.iter().for_each(|&u| write_row(u as usize));
        }
    }
}

/// Parses a `GCON_REFRESH_SOLVER` value. Pure and unit-tested; `None` means
/// "unrecognized — fall back to the model's configured solver".
pub(crate) fn parse_refresh_solver(value: &str) -> Option<PprSolver> {
    match value.to_ascii_lowercase().as_str() {
        "auto" => Some(PprSolver::Auto),
        "power" => Some(PprSolver::Power),
        "cgnr" => Some(PprSolver::Cgnr),
        "push" => Some(PprSolver::Push),
        _ => None,
    }
}

/// The process-wide `GCON_REFRESH_SOLVER` override, resolved once.
fn refresh_solver_env() -> Option<PprSolver> {
    static INIT: OnceLock<Option<PprSolver>> = OnceLock::new();
    *INIT.get_or_init(|| {
        gcon_runtime::envknob::env_knob(
            "gcon-serve",
            "GCON_REFRESH_SOLVER",
            None,
            "auto|power|cgnr|push",
            "the model's solver",
            |v| parse_refresh_solver(v).map(Some),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::tiny_trained;
    use gcon_linalg::vecops;

    fn onboard_row(seed: usize, d0: usize) -> Vec<f64> {
        (0..d0).map(|j| (((seed * 31 + j * 7) % 23) as f64 / 23.0) - 0.4).collect()
    }

    #[test]
    fn generation_zero_is_bitwise_static_build() {
        let (model, graph, x) = tiny_trained();
        for dtype in [StoreDtype::F64, StoreDtype::F32] {
            for mode in [ServingMode::Public, ServingMode::Private] {
                let dynamic =
                    DynamicServingModel::build_with_dtype(model, graph.clone(), x, mode, dtype);
                let snap = dynamic.snapshot();
                assert_eq!(snap.generation(), 0);
                let fixed = ServingModel::build_with_dtype(model, graph, x, mode, dtype);
                match dtype {
                    StoreDtype::F64 => assert_eq!(
                        snap.model().store_f64().unwrap().as_slice(),
                        fixed.store_f64().unwrap().as_slice(),
                        "{} f64 store must match the static build bitwise",
                        mode.name()
                    ),
                    StoreDtype::F32 => assert_eq!(
                        snap.model().store_f32().unwrap().as_slice(),
                        fixed.store_f32().unwrap().as_slice(),
                        "{} f32 store must match the static build bitwise",
                        mode.name()
                    ),
                }
                assert_eq!(snap.staleness_bound(), 0.0, "finite-only model is exact");
            }
        }
    }

    /// Regression for the poison cascade: a thread panicking while holding
    /// the generation lock must not take down every later reader. The old
    /// `snapshot()` `expect`ed the lock and propagated the poison forever.
    #[test]
    fn snapshot_survives_poisoned_generation_lock() {
        let (model, graph, x) = tiny_trained();
        let dynamic = DynamicServingModel::build_with_dtype(
            model,
            graph.clone(),
            x,
            ServingMode::Private,
            StoreDtype::F64,
        );
        let before = dynamic.snapshot();
        assert!(!dynamic.is_degraded());

        // Poison `current` the way a crashing publisher would: panic while
        // holding the write guard.
        let poison = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = dynamic.current.write().unwrap();
            panic!("simulated publisher crash");
        }));
        assert!(poison.is_err());
        assert!(dynamic.current.is_poisoned());

        // Readers recover the last published generation and flag degraded.
        let after = dynamic.snapshot();
        assert_eq!(after.generation(), before.generation());
        assert_eq!(
            after.model().store_f64().unwrap().as_slice(),
            before.model().store_f64().unwrap().as_slice(),
            "recovered generation must be the same published store"
        );
        assert!(dynamic.is_degraded(), "poison recovery must latch the degraded flag");

        // Publishing still works over the poisoned lock too.
        let mut delta = CsrDelta::new();
        delta.insert_edge(1, 5);
        let outcome = dynamic.apply_delta(&delta, None);
        assert_eq!(outcome.generation, 1);
        assert_eq!(dynamic.snapshot().generation(), 1);
    }

    #[test]
    fn apply_delta_matches_static_rebuild_bitwise() {
        let (model, graph, x) = tiny_trained();
        for mode in [ServingMode::Public, ServingMode::Private] {
            let dynamic = DynamicServingModel::build_with_dtype(
                model,
                graph.clone(),
                x,
                mode,
                StoreDtype::F64,
            );
            let mut reference_graph = graph.clone();
            let mut delta = CsrDelta::new();
            let (u, v) = (3u32, 29u32);
            if reference_graph.neighbors(u).contains(&v) {
                delta.remove_edge(u, v);
            } else {
                delta.insert_edge(u, v);
            }
            delta.insert_edge(10, 40);
            let outcome = dynamic.apply_delta(&delta, None);
            assert_eq!(outcome.generation, 1);
            assert!(outcome.onboarded.is_empty());
            assert!(outcome.affected_rows < graph.num_nodes());
            assert_eq!(outcome.staleness_bound, 0.0);

            // Reference: mutate a fresh graph the same way, rebuild statically.
            let mut d2 = CsrDelta::new();
            if graph.neighbors(u).contains(&v) {
                d2.remove_edge(u, v);
            } else {
                d2.insert_edge(u, v);
            }
            d2.insert_edge(10, 40);
            let a0 = row_stochastic(&reference_graph, model.config.clip_p);
            let _ = d2.apply(&mut reference_graph, &a0, model.config.clip_p);
            let rebuilt =
                ServingModel::build_with_dtype(model, &reference_graph, x, mode, StoreDtype::F64);
            let snap = dynamic.snapshot();
            assert_eq!(
                snap.model().store_f64().unwrap().as_slice(),
                rebuilt.store_f64().unwrap().as_slice(),
                "{}: refreshed store must equal a from-scratch rebuild bitwise",
                mode.name()
            );
        }
    }

    #[test]
    fn onboarding_delta_grows_store_and_matches_rebuild() {
        let (model, graph, x) = tiny_trained();
        let n0 = graph.num_nodes();
        let d0 = x.cols();
        let dynamic = DynamicServingModel::build_with_dtype(
            model,
            graph.clone(),
            x,
            ServingMode::Public,
            StoreDtype::F64,
        );
        let mut delta = CsrDelta::new();
        delta.add_nodes(2);
        delta.insert_edge(n0 as u32, 0).insert_edge(n0 as u32 + 1, n0 as u32);
        let new_feats = Mat::from_fn(2, d0, |r, c| onboard_row(r + 1, d0)[c]);
        let outcome = dynamic.apply_delta(&delta, Some(&new_feats));
        assert_eq!(outcome.onboarded, n0 as u32..n0 as u32 + 2);
        let snap = dynamic.snapshot();
        assert_eq!(snap.model().num_nodes(), n0 + 2);

        // Reference: the same world built statically.
        let mut g2 = graph.clone();
        let a0 = row_stochastic(&g2, model.config.clip_p);
        let mut d2 = CsrDelta::new();
        d2.add_nodes(2);
        d2.insert_edge(n0 as u32, 0).insert_edge(n0 as u32 + 1, n0 as u32);
        let _ = d2.apply(&mut g2, &a0, model.config.clip_p);
        let mut x2 = Mat::zeros(n0 + 2, d0);
        x2.as_mut_slice()[..n0 * d0].copy_from_slice(x.as_slice());
        for r in 0..2 {
            for c in 0..d0 {
                x2.set(n0 + r, c, new_feats.get(r, c));
            }
        }
        let rebuilt =
            ServingModel::build_with_dtype(model, &g2, &x2, ServingMode::Public, StoreDtype::F64);
        assert_eq!(
            snap.model().store_f64().unwrap().as_slice(),
            rebuilt.store_f64().unwrap().as_slice(),
            "onboarded store must equal a from-scratch rebuild bitwise"
        );
    }

    #[test]
    fn old_snapshots_survive_refreshes() {
        let (model, graph, x) = tiny_trained();
        let dynamic = DynamicServingModel::build_with_dtype(
            model,
            graph.clone(),
            x,
            ServingMode::Public,
            StoreDtype::F64,
        );
        let before = dynamic.snapshot();
        let logits_before = before.model().logits(7);
        let mut delta = CsrDelta::new();
        delta.insert_edge(7, 23).insert_edge(7, 31);
        let outcome = dynamic.apply_delta(&delta, None);
        assert_eq!(outcome.generation, 1);
        // The old generation still answers from its frozen store, bitwise.
        assert_eq!(before.model().logits(7), logits_before);
        assert_eq!(before.generation(), 0);
        // The new generation sees the mutation.
        let after = dynamic.snapshot();
        assert_eq!(after.generation(), 1);
        assert_ne!(after.model().logits(7), logits_before, "node 7 gained edges");
    }

    #[test]
    fn onboard_logits_match_private_store_row_semantics() {
        let (model, graph, x) = tiny_trained();
        let dynamic = DynamicServingModel::build_with_dtype(
            model,
            graph.clone(),
            x,
            ServingMode::Private,
            StoreDtype::F64,
        );
        // Replay an existing node as if it were unseen: same raw features,
        // same neighbor list. The gather accumulates in a different order
        // than the pooled kernel, so compare to tolerance, not bitwise.
        let node = 5u32;
        let query = OnboardQuery {
            features: x.row(node as usize).to_vec(),
            neighbors: graph.neighbors(node).to_vec(),
        };
        let got = dynamic.onboard_logits(&[query]);
        let want = dynamic.snapshot().model().logits(node as usize);
        assert_eq!(got.shape(), (1, model.num_classes));
        for (g, w) in got.row(0).iter().zip(&want) {
            assert!((g - w).abs() < 1e-9, "onboard replay drifted: {g} vs {w}");
        }
        // Hard predictions agree.
        assert_eq!(vecops::argmax(got.row(0)), dynamic.snapshot().model().predict(node as usize));
    }

    #[test]
    fn onboard_logits_isolated_node_is_graph_free() {
        let (model, graph, x) = tiny_trained();
        let d0 = x.cols();
        let dynamic = DynamicServingModel::build_with_dtype(
            model,
            graph.clone(),
            x,
            ServingMode::Private,
            StoreDtype::F64,
        );
        let feats = onboard_row(9, d0);
        let isolated = OnboardQuery { features: feats.clone(), neighbors: vec![] };
        let social = OnboardQuery { features: feats, neighbors: graph.neighbors(0).to_vec() };
        let logits = dynamic.onboard_logits(&[isolated, social]);
        assert_eq!(logits.rows(), 2);
        assert!(logits.is_finite());
        // Same features, different edges ⇒ different aggregates (the hop
        // actually reads the neighbor rows).
        assert_ne!(logits.row(0), logits.row(1));
    }

    #[test]
    fn refresh_solver_parsing() {
        assert_eq!(parse_refresh_solver("auto"), Some(PprSolver::Auto));
        assert_eq!(parse_refresh_solver("POWER"), Some(PprSolver::Power));
        assert_eq!(parse_refresh_solver("Cgnr"), Some(PprSolver::Cgnr));
        assert_eq!(parse_refresh_solver("push"), Some(PprSolver::Push));
        assert_eq!(parse_refresh_solver("PUSH"), Some(PprSolver::Push));
        assert_eq!(parse_refresh_solver("fastest"), None);
        assert_eq!(parse_refresh_solver(""), None);
    }

    #[test]
    fn fully_ineffective_delta_publishes_nothing() {
        let (model, graph, x) = tiny_trained();
        let dynamic = DynamicServingModel::build_with_dtype(
            model,
            graph.clone(),
            x,
            ServingMode::Public,
            StoreDtype::F64,
        );
        // Insert an edge that is already present and remove one that is
        // absent: both operations cancel against the live graph.
        let present = (0u32, graph.neighbors(0)[0]);
        let absent = (0..graph.num_nodes() as u32)
            .flat_map(|u| (u + 1..graph.num_nodes() as u32).map(move |v| (u, v)))
            .find(|&(u, v)| !graph.has_edge(u, v))
            .expect("tiny graph is not complete");
        let mut delta = CsrDelta::new();
        delta.insert_edge(present.0, present.1).remove_edge(absent.0, absent.1);
        let before = dynamic.snapshot();
        let outcome = dynamic.apply_delta(&delta, None);
        assert_eq!(outcome.generation, 0, "no-op delta must not burn a generation");
        assert_eq!(outcome.inf_solver, None);
        assert_eq!((outcome.rows_recomputed, outcome.affected_rows), (0, 0));
        let after = dynamic.snapshot();
        assert_eq!(after.generation(), 0);
        assert!(Arc::ptr_eq(&before, &after), "the published generation must be untouched");
    }
}
