//! Delta-burst coalescing: merge concurrent graph edits into one refresh
//! per window.
//!
//! A refresh is the expensive half of dynamic serving — even an O(affected)
//! incremental one pays the store patch, the generation clone, and (with an
//! `∞` scale) a certified solve. Under an edit burst, running one refresh
//! per edit also publishes one generation per edit, most of them obsolete
//! the moment they appear. [`DeltaCoalescer`] amortizes the burst: edits
//! enqueue, the window's **leader** merges every pending
//! [`CsrDelta`](gcon_graph::CsrDelta) into one
//! ([`CsrDelta::merge`](gcon_graph::CsrDelta::merge) — last-op-wins
//! netting, so an insert chased by a remove of the same edge cancels
//! inside the window), vertically stacks the onboard feature rows in the
//! same FIFO order the node ids were assigned in, and runs **one**
//! [`DynamicServingModel::apply_delta`] for the whole window — one refresh,
//! one published generation per burst.
//!
//! # Protocol
//!
//! Identical to [`BatchQueue`](crate::BatchQueue) (see that module's docs):
//! windows are named by a generation counter, the first submitter of a
//! window leads it (waits until [`CoalesceConfig::max_pending`] edits
//! arrive or [`CoalesceConfig::max_delay`] elapses, closes the window,
//! executes in window order behind an in-order gate, writes every
//! submitter's outcome, publishes, wakes the followers), later submitters
//! just block until their window completes. Windows execute in order, so
//! the merged application is exactly the sequential application of the
//! window's deltas in arrival order — pinned by
//! `CsrDelta::merge`'s equivalence proptest and the coalescing test below.
//!
//! # Equivalence contract
//!
//! For finite scales a coalesced window is **bitwise identical** to
//! applying the same deltas one by one (both equal a from-scratch rebuild
//! on the final graph). The `∞` scale of the coalesced store and the
//! sequentially-refreshed store each certify their own staleness bound
//! against the same exact fixed point, so the two differ by at most the
//! sum of the final bounds — and the coalesced path compounds *fewer*
//! refreshes, so its cumulative bound
//! ([`DeltaOutcome::cumulative_staleness_bound`]) is the smaller one.
//!
//! A window whose operations fully net out (insert + remove of the same
//! edge, nothing onboarded) cancels inside [`apply_delta`]
//! ([`DynamicServingModel::apply_delta`]'s ineffective-delta early-out):
//! no refresh, no generation burned; counted in
//! [`CoalesceStats::cancelled_windows`].
//!
//! # Onboarding ids
//!
//! `merge` concatenates onboard counts in window order, and windows apply
//! in submission order, so node ids land exactly where a sequence of
//! individual `apply_delta` calls would put them. As with direct
//! `apply_delta`, submitters that onboard nodes must compute the new ids
//! against a consistent view of the node count (e.g. from a single writer
//! thread per id range).

use crate::dynamic::{DeltaOutcome, DynamicServingModel};
use gcon_graph::CsrDelta;
use gcon_linalg::Mat;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Window bounds for [`DeltaCoalescer`] — the mutation-side analogue of
/// [`BatchConfig`](crate::BatchConfig).
#[derive(Clone, Copy, Debug)]
pub struct CoalesceConfig {
    /// Hard upper bound on edits per window; a window closes immediately
    /// when it fills. Must be ≥ 1.
    pub max_pending: usize,
    /// Latency budget of a non-full window: how long its leader waits for
    /// more edits before refreshing. `ZERO` disables coalescing-by-time
    /// (each window still merges whatever arrived while the previous one
    /// refreshed). A budget too large to represent as a deadline (e.g.
    /// [`Duration::MAX`]) means wait until the window **fills**.
    pub max_delay: Duration,
}

impl Default for CoalesceConfig {
    /// 32-edit windows with a 2 ms budget — refreshes are orders of
    /// magnitude heavier than batched queries, so the window is held open
    /// longer than [`BatchConfig`](crate::BatchConfig)'s default.
    fn default() -> Self {
        Self { max_pending: 32, max_delay: Duration::from_millis(2) }
    }
}

impl CoalesceConfig {
    /// [`Default`] overridden by `GCON_COALESCE_MAX_PENDING` (edits per
    /// window) and `GCON_COALESCE_MAX_DELAY_US` (budget in microseconds).
    /// Unparsable values fall back to the default with a warning (via
    /// [`gcon_runtime::envknob`]).
    ///
    /// `GCON_COALESCE_MAX_DELAY_US=0` is a **valid, intentional** setting,
    /// not an error: it disables coalescing-by-time, so a window closes as
    /// soon as its leader can take it — edits are then only merged when
    /// they pile up behind an in-flight refresh (see
    /// [`CoalesceConfig::max_delay`]). It trades coalescing factor for the
    /// lowest possible edit-visibility latency.
    pub fn from_env() -> Self {
        let default = Self::default();
        Self {
            max_pending: gcon_runtime::envknob::env_knob(
                "gcon-serve",
                "GCON_COALESCE_MAX_PENDING",
                default.max_pending,
                "an integer ≥ 1",
                "32",
                |v| v.parse::<usize>().ok().filter(|&n| n >= 1),
            ),
            max_delay: gcon_runtime::envknob::env_knob(
                "gcon-serve",
                "GCON_COALESCE_MAX_DELAY_US",
                default.max_delay,
                "microseconds; 0 disables coalescing-by-time",
                "2ms",
                |v| v.parse::<u64>().ok().map(Duration::from_micros),
            ),
        }
    }
}

/// Counters exposed by [`DeltaCoalescer::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoalesceStats {
    /// Windows executed so far (= refresh attempts; `edits / windows` is
    /// the mean coalescing factor).
    pub windows: u64,
    /// Edits submitted so far.
    pub edits: u64,
    /// Largest window executed so far.
    pub largest_window: usize,
    /// Windows whose merged delta fully netted out — no refresh ran, no
    /// generation was published.
    pub cancelled_windows: u64,
}

/// One enqueued edit: the delta, its onboard feature rows, and the
/// submitting thread's outcome slot, written by the window's leader before
/// the generation is published.
struct Request {
    delta: CsrDelta,
    feats: Option<Mat>,
    out: *mut Option<DeltaOutcome>,
}

// SAFETY: the raw pointer targets the submitting thread's
// `&mut Option<DeltaOutcome>`, which that thread does not touch between
// enqueue and the completion of its generation (it is blocked in
// `submit`); exactly one leader writes through it, before publishing the
// generation under the queue mutex.
unsafe impl Send for Request {}

/// Mutex-guarded queue state (same shape as `BatchQueue`'s).
struct State {
    pending: Vec<Request>,
    /// Window currently accepting edits (first window is 1).
    open_gen: u64,
    /// Highest window whose outcomes are fully written (starts at 0).
    completed_gen: u64,
    spare: Vec<Vec<Request>>,
    stats: CoalesceStats,
}

/// A delta-burst coalescing scheduler over a [`DynamicServingModel`] — see
/// the module docs for the protocol and equivalence contract. Share one
/// instance between all mutating threads (`&DeltaCoalescer` under
/// `std::thread::scope`, or wrap scheduler + model in `Arc`s); every public
/// method takes `&self`. Queries bypass the coalescer entirely — they
/// snapshot the model as usual.
pub struct DeltaCoalescer<'m> {
    model: &'m DynamicServingModel,
    config: CoalesceConfig,
    state: Mutex<State>,
    /// Wakes leaders (window fills), prospective joiners (window turns
    /// over), the in-order execution gate, and followers (window
    /// completes). One condvar, four predicates.
    cv: Condvar,
}

impl<'m> DeltaCoalescer<'m> {
    /// Creates a coalescer over `model` with the given window bounds.
    ///
    /// # Panics
    /// Panics if `config.max_pending == 0`.
    pub fn new(model: &'m DynamicServingModel, config: CoalesceConfig) -> Self {
        assert!(config.max_pending >= 1, "DeltaCoalescer: max_pending must be ≥ 1");
        Self {
            model,
            config,
            state: Mutex::new(State {
                pending: Vec::new(),
                open_gen: 1,
                completed_gen: 0,
                spare: Vec::new(),
                stats: CoalesceStats::default(),
            }),
            cv: Condvar::new(),
        }
    }

    /// The model this coalescer mutates.
    pub fn model(&self) -> &DynamicServingModel {
        self.model
    }

    /// Execution counters so far.
    pub fn stats(&self) -> CoalesceStats {
        self.state.lock().expect("DeltaCoalescer: poisoned state").stats
    }

    /// Submits one edit and blocks until the window it lands in has
    /// refreshed, returning the **window's** outcome (every edit of a
    /// window shares the one published generation). `onboard_features`
    /// carries one raw feature row per node `delta` onboards, exactly as
    /// in [`DynamicServingModel::apply_delta`].
    ///
    /// # Panics
    /// Panics if the feature row count does not match the delta's onboard
    /// count (checked on entry, before the edit can join a window).
    pub fn submit(&self, delta: CsrDelta, onboard_features: Option<Mat>) -> DeltaOutcome {
        let num_new = delta.num_new_nodes();
        let provided = onboard_features.as_ref().map_or(0, Mat::rows);
        assert_eq!(
            provided, num_new,
            "DeltaCoalescer::submit: delta onboards {num_new} nodes but {provided} feature rows \
             were given"
        );
        let mut out: Option<DeltaOutcome> = None;
        let mut state = self.state.lock().expect("DeltaCoalescer: poisoned state");
        // Join the open window, waiting out a turnover if it is full.
        loop {
            if state.pending.len() < self.config.max_pending {
                break;
            }
            let g = state.open_gen;
            while state.open_gen == g {
                state = self.cv.wait(state).expect("DeltaCoalescer: poisoned state");
            }
        }
        let my_gen = state.open_gen;
        let is_leader = state.pending.is_empty();
        state.pending.push(Request {
            delta,
            feats: onboard_features,
            out: &mut out as *mut Option<DeltaOutcome>,
        });
        if state.pending.len() >= self.config.max_pending {
            // Window full: wake its (possibly sleeping) leader.
            self.cv.notify_all();
        }

        if is_leader {
            self.lead(state, my_gen);
        } else {
            while state.completed_gen < my_gen {
                state = self.cv.wait(state).expect("DeltaCoalescer: poisoned state");
            }
        }
        out.expect("window leader writes every outcome before publishing")
    }

    /// Leader path: wait out the window, close it, merge, refresh once in
    /// window order, publish, wake everyone.
    fn lead(&self, mut state: std::sync::MutexGuard<'_, State>, my_gen: u64) {
        // 1. Hold the window open until it fills or the budget elapses.
        let deadline = Instant::now().checked_add(self.config.max_delay);
        while state.pending.len() < self.config.max_pending {
            state = match deadline {
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    self.cv
                        .wait_timeout(state, deadline - now)
                        .expect("DeltaCoalescer: poisoned state")
                        .0
                }
                None => self.cv.wait(state).expect("DeltaCoalescer: poisoned state"),
            };
        }

        // 2. Close the window: later edits open generation `my_gen + 1`.
        let fresh = state.spare.pop().unwrap_or_default();
        let mut batch = std::mem::replace(&mut state.pending, fresh);
        state.open_gen += 1;
        self.cv.notify_all(); // joiners blocked on a full window

        // 3. In-order gate: windows close in order and refresh in the same
        //    order, so the merged application is the sequential application
        //    of the window's deltas in arrival order, and a follower that
        //    wakes on `completed_gen >= my_gen` reads a written outcome.
        while state.completed_gen != my_gen - 1 {
            state = self.cv.wait(state).expect("DeltaCoalescer: poisoned state");
        }
        drop(state);

        // 4. Merge the window FIFO and refresh once. The gate admits one
        //    leader at a time, so `apply_delta`'s internal serialization is
        //    uncontended from here.
        let mut drain = batch.drain(..);
        let first = drain.next().expect("a window has at least its leader");
        let mut merged = first.delta;
        let mut feat_blocks: Vec<Mat> = first.feats.into_iter().collect();
        let outs: Vec<*mut Option<DeltaOutcome>> = std::iter::once(first.out)
            .chain(drain.map(|r| {
                merged.merge(&r.delta);
                feat_blocks.extend(r.feats);
                r.out
            }))
            .collect();
        let feats = vstack(&feat_blocks);
        let outcome = self.model.apply_delta(&merged, feats.as_ref());
        let cancelled = outcome.affected_rows == 0 && outcome.onboarded.is_empty();
        for &slot in &outs {
            // SAFETY: per the module protocol the submitting thread is
            // blocked and no other leader touches this window.
            unsafe { *slot = Some(outcome.clone()) };
        }

        // 5. Publish and recycle.
        let mut state = self.state.lock().expect("DeltaCoalescer: poisoned state");
        state.completed_gen = my_gen;
        state.stats.windows += 1;
        state.stats.edits += outs.len() as u64;
        state.stats.largest_window = state.stats.largest_window.max(outs.len());
        state.stats.cancelled_windows += u64::from(cancelled);
        debug_assert!(batch.is_empty());
        state.spare.push(batch);
        self.cv.notify_all();
    }
}

/// Vertically stacks the window's onboard feature blocks in FIFO order —
/// the order `CsrDelta::merge` concatenated the onboard counts in.
fn vstack(blocks: &[Mat]) -> Option<Mat> {
    let total: usize = blocks.iter().map(Mat::rows).sum();
    if total == 0 {
        return None;
    }
    let d = blocks.iter().find(|b| b.rows() > 0).expect("total > 0").cols();
    let mut out = Mat::zeros(total, d);
    let mut at = 0;
    for b in blocks.iter().filter(|b| b.rows() > 0) {
        assert_eq!(b.cols(), d, "DeltaCoalescer: ragged onboard feature widths in one window");
        out.as_mut_slice()[at * d..(at + b.rows()) * d].copy_from_slice(b.as_slice());
        at += b.rows();
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ServingMode, StoreDtype};
    use crate::testutil::tiny_trained;
    use gcon_graph::Graph;

    fn fresh() -> (DynamicServingModel, Graph) {
        let (model, graph, x) = tiny_trained();
        let dynamic = DynamicServingModel::build_with_dtype(
            model,
            graph.clone(),
            x,
            ServingMode::Public,
            StoreDtype::F64,
        );
        (dynamic, graph.clone())
    }

    /// Deterministic toggle edits on pairwise-distinct edges (computed
    /// against the initial graph — distinct edges never interact, so each
    /// toggle stays effective in any application order).
    fn toggle(graph: &Graph, i: usize) -> CsrDelta {
        let n = graph.num_nodes() as u32;
        let (u, v) = ((i as u32 * 7) % n, (i as u32 * 13 + 5) % n);
        let (u, v) = if u == v { (u, (v + 1) % n) } else { (u, v) };
        let mut d = CsrDelta::new();
        if graph.has_edge(u, v) {
            d.remove_edge(u, v);
        } else {
            d.insert_edge(u, v);
        }
        d
    }

    #[test]
    fn concurrent_burst_coalesces_into_one_generation() {
        let (dynamic, graph) = fresh();
        // A generous window so the burst actually coalesces.
        let config = CoalesceConfig { max_pending: 16, max_delay: Duration::from_millis(50) };
        let coalescer = DeltaCoalescer::new(&dynamic, config);
        let edits = 8;
        std::thread::scope(|scope| {
            for i in 0..edits {
                let coalescer = &coalescer;
                let graph = &graph;
                scope.spawn(move || {
                    let outcome = coalescer.submit(toggle(graph, i), None);
                    assert!(outcome.generation >= 1);
                });
            }
        });
        let stats = coalescer.stats();
        assert_eq!(stats.edits, edits as u64);
        assert!(
            stats.windows < stats.edits,
            "no coalescing ever happened under concurrency: {stats:?}"
        );
        // Strictly fewer generations than edits were published.
        assert!(dynamic.snapshot().generation() < edits as u64);
    }

    #[test]
    fn coalesced_burst_matches_sequential_application_bitwise() {
        // Submit a burst through one forced window, then replay the same
        // deltas one by one on a second model: finite-only stores must
        // agree bitwise (both equal the rebuild on the final graph).
        let (coalesced, graph) = fresh();
        let (sequential, _) = fresh();
        let k = 6;
        let config = CoalesceConfig { max_pending: k, max_delay: Duration::MAX };
        let coalescer = DeltaCoalescer::new(&coalesced, config);
        std::thread::scope(|scope| {
            for i in 0..k {
                let coalescer = &coalescer;
                let graph = &graph;
                scope.spawn(move || coalescer.submit(toggle(graph, i), None));
            }
        });
        for i in 0..k {
            sequential.apply_delta(&toggle(&graph, i), None);
        }
        assert_eq!(coalescer.stats().windows, 1);
        assert_eq!(coalesced.snapshot().generation(), 1, "one burst, one generation");
        assert_eq!(sequential.snapshot().generation(), k as u64);
        assert_eq!(
            coalesced.snapshot().model().store_f64().unwrap().as_slice(),
            sequential.snapshot().model().store_f64().unwrap().as_slice(),
            "coalesced burst must equal sequential application bitwise (finite scales)"
        );
    }

    #[test]
    fn netted_out_window_is_cancelled() {
        let (dynamic, graph) = fresh();
        let config = CoalesceConfig { max_pending: 2, max_delay: Duration::MAX };
        let coalescer = DeltaCoalescer::new(&dynamic, config);
        let absent = (0..graph.num_nodes() as u32)
            .flat_map(|u| (u + 1..graph.num_nodes() as u32).map(move |v| (u, v)))
            .find(|&(u, v)| !graph.has_edge(u, v))
            .expect("tiny graph is not complete");
        let mut insert = CsrDelta::new();
        insert.insert_edge(absent.0, absent.1);
        let mut remove = CsrDelta::new();
        remove.remove_edge(absent.0, absent.1);
        std::thread::scope(|scope| {
            let c = &coalescer;
            scope.spawn(move || {
                let outcome = c.submit(insert, None);
                assert_eq!(outcome.generation, 0, "netted window must not publish");
            });
            // Ensure the insert leads the window so the remove nets it out.
            while c.state.lock().unwrap().pending.is_empty() {
                std::thread::yield_now();
            }
            scope.spawn(move || {
                let outcome = c.submit(remove, None);
                assert_eq!(outcome.generation, 0);
            });
        });
        let stats = coalescer.stats();
        assert_eq!((stats.windows, stats.edits, stats.cancelled_windows), (1, 2, 1));
        assert_eq!(dynamic.snapshot().generation(), 0);
    }

    #[test]
    fn onboarding_burst_stacks_features_in_window_order() {
        let (dynamic, graph) = fresh();
        let n0 = graph.num_nodes() as u32;
        let d0 = {
            let (_, _, x) = tiny_trained();
            x.cols()
        };
        let row = |seed: usize| -> Vec<f64> {
            (0..d0).map(|j| (((seed * 31 + j * 7) % 23) as f64 / 23.0) - 0.4).collect()
        };
        // Two onboarding edits submitted from one thread into a forced
        // window of two: ids are assigned in submission order.
        let config = CoalesceConfig { max_pending: 2, max_delay: Duration::MAX };
        let coalescer = DeltaCoalescer::new(&dynamic, config);
        let mut d1 = CsrDelta::new();
        d1.add_nodes(1).insert_edge(n0, 3);
        let f1 = Mat::from_fn(1, d0, |_, c| row(1)[c]);
        let mut d2 = CsrDelta::new();
        d2.add_nodes(1).insert_edge(n0 + 1, n0);
        let f2 = Mat::from_fn(1, d0, |_, c| row(2)[c]);
        std::thread::scope(|scope| {
            let c = &coalescer;
            scope.spawn(move || {
                let outcome = c.submit(d1, Some(f1));
                assert_eq!(outcome.onboarded, n0..n0 + 2, "window outcome covers the burst");
            });
            while c.state.lock().unwrap().pending.is_empty() {
                std::thread::yield_now();
            }
            scope.spawn(move || c.submit(d2, Some(f2)));
        });
        assert_eq!(dynamic.snapshot().model().num_nodes(), n0 as usize + 2);

        // Reference: the same two deltas applied sequentially elsewhere.
        let (sequential, _) = fresh();
        let mut d1 = CsrDelta::new();
        d1.add_nodes(1).insert_edge(n0, 3);
        let mut d2 = CsrDelta::new();
        d2.add_nodes(1).insert_edge(n0 + 1, n0);
        sequential.apply_delta(&d1, Some(&Mat::from_fn(1, d0, |_, c| row(1)[c])));
        sequential.apply_delta(&d2, Some(&Mat::from_fn(1, d0, |_, c| row(2)[c])));
        assert_eq!(
            dynamic.snapshot().model().store_f64().unwrap().as_slice(),
            sequential.snapshot().model().store_f64().unwrap().as_slice(),
            "coalesced onboarding must equal sequential onboarding bitwise"
        );
    }

    #[test]
    fn max_pending_one_refreshes_every_edit_alone() {
        let (dynamic, graph) = fresh();
        let config = CoalesceConfig { max_pending: 1, max_delay: Duration::from_millis(50) };
        let coalescer = DeltaCoalescer::new(&dynamic, config);
        for i in 0..4 {
            coalescer.submit(toggle(&graph, i), None);
        }
        let stats = coalescer.stats();
        assert_eq!(stats.largest_window, 1);
        assert_eq!(stats.windows, stats.edits);
        assert_eq!(dynamic.snapshot().generation(), 4);
    }

    #[test]
    #[should_panic(expected = "max_pending")]
    fn zero_max_pending_is_rejected() {
        let (dynamic, _) = fresh();
        let _ =
            DeltaCoalescer::new(&dynamic, CoalesceConfig { max_pending: 0, ..Default::default() });
    }

    #[test]
    #[should_panic(expected = "feature rows")]
    fn mismatched_onboard_features_are_rejected_before_joining() {
        let (dynamic, _) = fresh();
        let coalescer = DeltaCoalescer::new(&dynamic, CoalesceConfig::default());
        let mut delta = CsrDelta::new();
        delta.add_nodes(2);
        let _ = coalescer.submit(delta, None);
    }

    #[test]
    fn default_config_is_valid() {
        // `from_env` falls back to this default; the parse arms are
        // exercised by the CI env-matrix legs (env vars are process-global,
        // so they are not toggled inside parallel unit tests).
        let config = CoalesceConfig::default();
        assert!(config.max_pending >= 1);
        assert!(config.max_delay > Duration::ZERO);
    }
}
