//! The `gcond` serving daemon: a thread-per-connection TCP server over
//! [`crate::wire`], feeding every query through one shared
//! [`BatchQueue`](crate::BatchQueue).
//!
//! # Design
//!
//! * **Thread-per-connection on `std::net`** — no async runtime, no
//!   crates.io. Connections are cheap relative to queries here: the
//!   expected workload is few long-lived clients each multiplexing many
//!   queries, and the [`BatchQueue`] behind the socket is exactly the
//!   leader/follower micro-batcher that turns those concurrent
//!   per-connection threads into serving-efficient GEMM shapes.
//! * **Bounded-inflight gate** — at most
//!   [`ServerConfig::max_inflight`] requests may be inside the
//!   [`BatchQueue`] at once. The gate **rejects** rather than queues: an
//!   over-limit request is answered immediately with
//!   [`ErrorCode::Overloaded`] so the client can back off, instead of
//!   silently growing an unbounded queue in front of the batcher (the
//!   batcher's own condvar queue is the *only* queue, and the gate caps
//!   it).
//! * **Timeouts everywhere** — every connection socket gets
//!   [`ServerConfig::read_timeout`] / [`ServerConfig::write_timeout`], so
//!   an idle or stuck peer frees its thread instead of leaking it.
//! * **Fail-closed framing** — all parsing happens in [`crate::wire`];
//!   any malformed, oversized, or out-of-session frame is answered with a
//!   typed `Error` frame (when the socket still works) and the connection
//!   is closed. A hostile client can never panic the server.
//!
//! The accept loop runs non-blocking with a small poll sleep so
//! [`ServerHandle::stop`] can interrupt it; worker threads are joined by
//! scope exit, so [`Server::run`] returns only after every connection
//! thread finished.

use crate::batch::{BatchConfig, BatchQueue};
use crate::model::ServingModel;
use crate::wire::{
    read_frame, write_frame, ErrorCode, Request, Response, ServerInfo, WireError, WireStats,
    DEFAULT_MAX_FRAME, PROTO_VERSION,
};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Tuning knobs of a [`Server`], all overridable via `GCON_SERVER_*`
/// environment variables (see [`ServerConfig::from_env`]).
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Maximum requests allowed inside the [`BatchQueue`] concurrently;
    /// excess requests are rejected with [`ErrorCode::Overloaded`].
    /// Must be ≥ 1.
    pub max_inflight: usize,
    /// Per-connection socket read timeout (idle clients are disconnected).
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// Maximum accepted frame-body length, bytes (also bounds response
    /// chunks). Must be ≥ 64 so a handshake always fits.
    pub max_frame: usize,
    /// Micro-batching window of the underlying [`BatchQueue`].
    pub batch: BatchConfig,
}

impl Default for ServerConfig {
    /// 64 in-flight requests, 30 s read / 10 s write timeouts,
    /// [`DEFAULT_MAX_FRAME`], default [`BatchConfig`].
    fn default() -> Self {
        Self {
            max_inflight: 64,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            max_frame: DEFAULT_MAX_FRAME,
            batch: BatchConfig::default(),
        }
    }
}

impl ServerConfig {
    /// [`Default`] overridden by `GCON_SERVER_MAX_INFLIGHT` (requests),
    /// `GCON_SERVER_READ_TIMEOUT_MS` / `GCON_SERVER_WRITE_TIMEOUT_MS`
    /// (milliseconds, ≥ 1 — a zero timeout would mean "never time out" on
    /// `std::net` and is rejected) and `GCON_SERVER_MAX_FRAME` (bytes,
    /// ≥ 64). Unparsable values fall back to the default with a warning
    /// (via [`gcon_runtime::envknob`]).
    pub fn from_env() -> Self {
        use gcon_runtime::envknob::env_knob;
        let d = Self::default();
        Self {
            max_inflight: env_knob(
                "gcon-serve",
                "GCON_SERVER_MAX_INFLIGHT",
                d.max_inflight,
                "an integer ≥ 1",
                "64",
                |v| v.parse::<usize>().ok().filter(|&n| n >= 1),
            ),
            read_timeout: env_knob(
                "gcon-serve",
                "GCON_SERVER_READ_TIMEOUT_MS",
                d.read_timeout,
                "milliseconds ≥ 1",
                "30s",
                |v| v.parse::<u64>().ok().filter(|&ms| ms >= 1).map(Duration::from_millis),
            ),
            write_timeout: env_knob(
                "gcon-serve",
                "GCON_SERVER_WRITE_TIMEOUT_MS",
                d.write_timeout,
                "milliseconds ≥ 1",
                "10s",
                |v| v.parse::<u64>().ok().filter(|&ms| ms >= 1).map(Duration::from_millis),
            ),
            max_frame: env_knob(
                "gcon-serve",
                "GCON_SERVER_MAX_FRAME",
                d.max_frame,
                "bytes ≥ 64",
                "8 MiB",
                |v| v.parse::<usize>().ok().filter(|&b| b >= 64),
            ),
            batch: d.batch,
        }
    }
}

/// Counting gate bounding how many requests may occupy the
/// [`BatchQueue`] at once. Reject-on-full (no wait queue): backpressure
/// is surfaced to the client as [`ErrorCode::Overloaded`].
#[derive(Debug)]
struct InflightGate {
    permits: Mutex<usize>,
}

impl InflightGate {
    fn new(permits: usize) -> Self {
        Self { permits: Mutex::new(permits) }
    }

    /// Takes a permit if one is free.
    fn try_acquire(&self) -> bool {
        let mut p = self.permits.lock().unwrap();
        if *p > 0 {
            *p -= 1;
            true
        } else {
            false
        }
    }

    fn release(&self) {
        *self.permits.lock().unwrap() += 1;
    }
}

/// RAII permit so early returns and panics release the gate.
struct Permit<'g>(&'g InflightGate);

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.0.release();
    }
}

/// Clonable remote control for a running [`Server`]: lets another thread
/// (signal handler, test harness) stop the accept loop.
#[derive(Clone, Debug)]
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
}

impl ServerHandle {
    /// Wraps a shutdown flag (shared with [`crate::fleet::ShardWorker`],
    /// which reuses this handle type for its own accept loop).
    pub(crate) fn new(shutdown: Arc<AtomicBool>) -> Self {
        Self { shutdown }
    }

    /// Asks the server to stop accepting and return from [`Server::run`]
    /// once in-flight connections drain (their sockets still honour the
    /// read timeout, so drain is bounded).
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

/// A bound `gcond` server: the listener plus the shared serving state.
/// Construct with [`Server::bind`], then block on [`Server::run`].
pub struct Server<'m> {
    queue: BatchQueue<'m>,
    listener: TcpListener,
    local_addr: SocketAddr,
    config: ServerConfig,
    gate: InflightGate,
    shutdown: Arc<AtomicBool>,
    degraded: Arc<AtomicBool>,
    connections: AtomicU64,
    requests: AtomicU64,
    rejected: AtomicU64,
    token_seq: AtomicU64,
}

impl<'m> Server<'m> {
    /// Binds `addr` (use port 0 for an ephemeral port; see
    /// [`Server::local_addr`]) over a frozen store. The store stays
    /// borrowed for the server's lifetime — queries run through one shared
    /// [`BatchQueue`] so concurrent connections micro-batch together.
    pub fn bind(
        model: &'m ServingModel,
        config: ServerConfig,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<Self> {
        assert!(config.max_inflight >= 1, "ServerConfig::max_inflight must be ≥ 1");
        assert!(config.max_frame >= 64, "ServerConfig::max_frame must be ≥ 64 bytes");
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        Ok(Self {
            queue: BatchQueue::new(model, config.batch),
            listener,
            local_addr,
            config,
            gate: InflightGate::new(config.max_inflight),
            shutdown: Arc::new(AtomicBool::new(false)),
            degraded: Arc::new(AtomicBool::new(false)),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            token_seq: AtomicU64::new(0x6763_6F6E_6400_0001), // "gcond" seed
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A clonable handle that can stop this server from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { shutdown: self.shutdown.clone() }
    }

    /// The degraded-health flag surfaced in `Stats`/`Health` frames. A
    /// static store never sets it; an embedder serving a
    /// [`crate::DynamicServingModel`] bridges
    /// [`is_degraded`](crate::DynamicServingModel::is_degraded) into this
    /// flag so remote operators see panic recovery.
    pub fn degraded_flag(&self) -> Arc<AtomicBool> {
        self.degraded.clone()
    }

    /// Counter snapshot (the same numbers a `Stats` frame carries).
    pub fn stats(&self) -> WireStats {
        let batch = self.queue.stats();
        WireStats {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            batches: batch.batches,
            largest_batch: batch.largest_batch as u64,
            rejected_overload: self.rejected.load(Ordering::Relaxed),
            quarantined: 0,
            failovers: 0,
            degraded: self.degraded.load(Ordering::Relaxed),
        }
    }

    fn server_info(&self) -> ServerInfo {
        let model = self.queue.model();
        ServerInfo {
            proto: PROTO_VERSION,
            mode: model.mode(),
            dtype: model.store_dtype(),
            nodes: model.num_nodes() as u64,
            feature_dim: model.feature_dim() as u32,
            classes: model.num_classes() as u32,
        }
    }

    /// Accepts and serves connections until [`ServerHandle::stop`] is
    /// called, then joins every connection thread and returns. Run this on
    /// a dedicated thread (it blocks).
    pub fn run(&self) -> std::io::Result<()> {
        std::thread::scope(|scope| {
            while !self.shutdown.load(Ordering::SeqCst) {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        self.connections.fetch_add(1, Ordering::Relaxed);
                        scope.spawn(move || self.serve_connection(stream));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }
            Ok(())
        })
    }

    /// One connection's whole lifecycle; all errors end in a close, never
    /// a propagated panic.
    fn serve_connection(&self, stream: TcpStream) {
        // A connection we cannot even configure is not worth serving.
        if stream.set_read_timeout(Some(self.config.read_timeout)).is_err()
            || stream.set_write_timeout(Some(self.config.write_timeout)).is_err()
            || stream.set_nodelay(true).is_err()
        {
            return;
        }
        let mut reader = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        };
        let mut writer = std::io::BufWriter::new(stream);
        let _ = self.session_loop(&mut reader, &mut writer);
        let _ = writer.flush();
    }

    /// Reads frames until goodbye/disconnect/error. `Err` means "stop
    /// serving this connection" — the error itself was already reported to
    /// the peer where possible.
    fn session_loop(
        &self,
        reader: &mut TcpStream,
        writer: &mut std::io::BufWriter<TcpStream>,
    ) -> Result<(), WireError> {
        let mut token: Option<u64> = None;
        loop {
            let body = match read_frame(reader, self.config.max_frame) {
                Ok(Some(body)) => body,
                Ok(None) => return Ok(()), // clean disconnect
                Err(WireError::FrameTooLarge { .. }) => {
                    // The body was never read, so the stream is desynced:
                    // report and close.
                    self.reply_error(writer, ErrorCode::TooLarge, "frame exceeds server bound")?;
                    return Ok(());
                }
                Err(e) => return Err(e),
            };
            let request = match Request::decode(&body) {
                Ok(r) => r,
                Err(_) => {
                    self.reply_error(writer, ErrorCode::BadFrame, "undecodable request frame")?;
                    return Ok(());
                }
            };
            match (request, &mut token) {
                (Request::Health, _) => {
                    let degraded = self.degraded.load(Ordering::Relaxed);
                    self.reply(writer, &Response::HealthReply { ok: !degraded })?;
                }
                (Request::Bye, _) => return Ok(()),
                (Request::Hello { proto }, tok @ None) => {
                    if proto != PROTO_VERSION {
                        self.reply_error(
                            writer,
                            ErrorCode::BadHandshake,
                            "unsupported protocol version",
                        )?;
                        return Ok(());
                    }
                    // Session token: a cheap per-connection nonce (counter
                    // diffused by the splitmix64 multiplier), not a
                    // credential — it catches desynced/replayed frames.
                    let t = self
                        .token_seq
                        .fetch_add(1, Ordering::Relaxed)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    *tok = Some(t);
                    self.reply(writer, &Response::HelloAck { token: t, info: self.server_info() })?;
                }
                (Request::Hello { .. }, Some(_)) => {
                    self.reply_error(writer, ErrorCode::BadHandshake, "duplicate hello")?;
                    return Ok(());
                }
                (req, Some(t)) => self.serve_authenticated(writer, req, *t)?,
                (_, None) => {
                    self.reply_error(writer, ErrorCode::BadHandshake, "hello required first")?;
                    return Ok(());
                }
            }
            writer.flush()?;
        }
    }

    /// Post-handshake requests. Token mismatches close the connection.
    fn serve_authenticated(
        &self,
        writer: &mut std::io::BufWriter<TcpStream>,
        request: Request,
        session_token: u64,
    ) -> Result<(), WireError> {
        let presented = match &request {
            Request::Query { token, .. }
            | Request::Bulk { token, .. }
            | Request::Stats { token }
            | Request::ShardAssign { token, .. }
            | Request::ShardQuery { token, .. }
            | Request::ShardFingerprint { token, .. } => *token,
            // Health/Bye/Hello never reach here (handled by the caller).
            _ => unreachable!("serve_authenticated: unauthenticated opcode"),
        };
        if presented != session_token {
            self.reply_error(writer, ErrorCode::BadToken, "wrong session token")?;
            return Err(WireError::Malformed("token mismatch"));
        }
        match request {
            Request::Query { node, .. } => {
                let n = self.queue.model().num_nodes() as u64;
                if node >= n {
                    return self.reply_error(
                        writer,
                        ErrorCode::NodeOutOfRange,
                        "node id too large",
                    );
                }
                let Some(_permit) = self.acquire_permit() else {
                    return self.reply_overloaded(writer);
                };
                let mut values = Vec::new();
                self.queue.query_into(node as usize, &mut values);
                self.requests.fetch_add(1, Ordering::Relaxed);
                self.reply(writer, &Response::Logits { values })
            }
            Request::Bulk { nodes, .. } => {
                let n = self.queue.model().num_nodes() as u64;
                if nodes.iter().any(|&node| node >= n) {
                    return self.reply_error(
                        writer,
                        ErrorCode::NodeOutOfRange,
                        "node id too large",
                    );
                }
                let Some(_permit) = self.acquire_permit() else {
                    return self.reply_overloaded(writer);
                };
                self.stream_bulk(writer, &nodes)
            }
            Request::Stats { .. } => self.reply(writer, &Response::StatsReply(self.stats())),
            // Fleet frames belong to shard workers (`crate::ShardWorker`);
            // a plain single-store daemon answers them with a typed error
            // instead of dropping the connection.
            Request::ShardAssign { .. }
            | Request::ShardQuery { .. }
            | Request::ShardFingerprint { .. } => self.reply_error(
                writer,
                ErrorCode::NotAssigned,
                "shard frames are served by gcond --shard workers",
            ),
            _ => unreachable!("serve_authenticated: unauthenticated opcode"),
        }
    }

    /// Answers a bulk query as a bounded-size `BulkChunk` stream +
    /// `BulkDone`. A bulk request is already a batch, so each chunk runs
    /// as **one** gathered head forward on a connection-local
    /// [`crate::ServingSession`] instead of being serialized through the
    /// micro-batcher one node at a time — bitwise the same answers (the
    /// store's logits are batch-composition-invariant), minus the
    /// per-request window latency. The inflight permit held by the caller
    /// still bounds concurrent bulk work.
    fn stream_bulk(
        &self,
        writer: &mut std::io::BufWriter<TcpStream>,
        nodes: &[u64],
    ) -> Result<(), WireError> {
        let cols = self.queue.model().num_classes();
        // Rows per chunk so a chunk frame stays under max_frame (32 bytes
        // of header slack); ≥ 1 so progress is always made.
        let rows_per_chunk = ((self.config.max_frame - 32) / (cols * 8).max(1)).max(1);
        let mut session = self.queue.model().session();
        let mut batch = Vec::with_capacity(rows_per_chunk.min(nodes.len()));
        for (i, chunk) in nodes.chunks(rows_per_chunk).enumerate() {
            batch.clear();
            batch.extend(chunk.iter().map(|&n| n as usize));
            let logits = session.logits_batch(&batch);
            self.requests.fetch_add(chunk.len() as u64, Ordering::Relaxed);
            self.reply(
                writer,
                &Response::BulkChunk {
                    start: (i * rows_per_chunk) as u64,
                    cols: cols as u32,
                    values: logits.as_slice().to_vec(),
                },
            )?;
        }
        self.reply(writer, &Response::BulkDone { total_rows: nodes.len() as u64 })
    }

    fn acquire_permit(&self) -> Option<Permit<'_>> {
        if self.gate.try_acquire() {
            Some(Permit(&self.gate))
        } else {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            None
        }
    }

    fn reply(
        &self,
        writer: &mut std::io::BufWriter<TcpStream>,
        response: &Response,
    ) -> Result<(), WireError> {
        write_frame(writer, &response.encode())
    }

    fn reply_overloaded(
        &self,
        writer: &mut std::io::BufWriter<TcpStream>,
    ) -> Result<(), WireError> {
        self.reply_error(writer, ErrorCode::Overloaded, "inflight limit reached; retry")
    }

    fn reply_error(
        &self,
        writer: &mut std::io::BufWriter<TcpStream>,
        code: ErrorCode,
        message: &str,
    ) -> Result<(), WireError> {
        self.reply(writer, &Response::Error { code, message: message.to_string() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_counts_and_releases() {
        let gate = InflightGate::new(2);
        assert!(gate.try_acquire());
        assert!(gate.try_acquire());
        assert!(!gate.try_acquire(), "both permits taken");
        {
            let _p = Permit(&gate); // adopts one of the taken permits
        }
        // Permit dropped → one free again.
        assert!(gate.try_acquire());
        gate.release();
        gate.release();
    }

    #[test]
    fn config_env_parsers_accept_and_reject() {
        // Pure parser behaviour via the shared resolver — no env mutation
        // (the workspace's tests run in parallel threads).
        use gcon_runtime::envknob::resolve;
        let d = ServerConfig::default();
        let r = resolve(
            "t",
            "GCON_SERVER_READ_TIMEOUT_MS",
            Some("0"),
            d.read_timeout,
            "ms",
            "30s",
            |v| v.parse::<u64>().ok().filter(|&ms| ms >= 1).map(Duration::from_millis),
        );
        assert_eq!(r.value, d.read_timeout, "0 ms would disable the timeout; rejected");
        assert!(r.warning.is_some());
        let r =
            resolve("t", "GCON_SERVER_MAX_INFLIGHT", Some("3"), d.max_inflight, "n", "64", |v| {
                v.parse::<usize>().ok().filter(|&n| n >= 1)
            });
        assert_eq!((r.value, r.warning), (3, None));
    }
}
