//! The analytic Gaussian mechanism (Balle & Wang, ICML 2018).
//!
//! The classic calibration `σ = Δ√(2 ln(1.25/δ))/ε` is only valid for ε ≤ 1
//! and is loose everywhere. Balle–Wang characterizes the *exact* minimal σ
//! through the Gaussian CDF:
//!
//! ```text
//! Φ(Δ/(2σ) − εσ/Δ) − e^ε · Φ(−Δ/(2σ) − εσ/Δ) ≤ δ
//! ```
//!
//! We solve the condition for σ by bisection. Used as a tighter alternative
//! for the single-release Gaussian perturbations in the baseline suite, and
//! cross-checked against the classic bound and the RDP route in the tests.

use crate::special::ln_gamma;

/// Standard normal CDF via the complementary error function.
///
/// `erfc` is evaluated with the Numerical-Recipes rational Chebyshev
/// approximation (|error| < 1.2e-7 — ample for privacy calibration, and the
/// bisection only needs monotonicity).
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Complementary error function approximation.
fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// The privacy-loss expression of the analytic Gaussian mechanism at noise
/// scale `sigma` (per unit L2 sensitivity): the minimal achievable δ at ε.
pub fn analytic_gaussian_delta(eps: f64, sigma: f64) -> f64 {
    assert!(sigma > 0.0);
    let a = 1.0 / (2.0 * sigma) - eps * sigma;
    let b = -1.0 / (2.0 * sigma) - eps * sigma;
    (std_normal_cdf(a) - eps.exp() * std_normal_cdf(b)).max(0.0)
}

/// Minimal σ (per unit L2 sensitivity) for one `(ε, δ)`-DP Gaussian release,
/// via bisection on the Balle–Wang condition.
pub fn analytic_gaussian_sigma(eps: f64, delta: f64) -> f64 {
    assert!(eps > 0.0 && delta > 0.0 && delta < 1.0);
    let mut lo = 1e-6;
    let mut hi = 1.0;
    while analytic_gaussian_delta(eps, hi) > delta {
        hi *= 2.0;
        assert!(hi < 1e9, "analytic_gaussian_sigma: failed to bracket");
    }
    while analytic_gaussian_delta(eps, lo) < delta && lo > 1e-12 {
        lo *= 0.5;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if analytic_gaussian_delta(eps, mid) > delta {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

/// Upper bound on `ln Γ` — re-exported sanity hook so the module's special
/// functions stay exercised together (used only in tests/debug assertions).
#[doc(hidden)]
pub fn _ln_gamma_passthrough(x: f64) -> f64 {
    ln_gamma(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanisms::gaussian_sigma_classic;

    #[test]
    fn normal_cdf_known_values() {
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((std_normal_cdf(1.959_964) - 0.975).abs() < 1e-4);
        assert!((std_normal_cdf(-1.959_964) - 0.025).abs() < 1e-4);
        assert!(std_normal_cdf(8.0) > 1.0 - 1e-7);
    }

    #[test]
    fn delta_decreases_with_sigma() {
        let mut prev = f64::INFINITY;
        for &s in &[0.3, 0.5, 1.0, 2.0, 4.0] {
            let d = analytic_gaussian_delta(1.0, s);
            assert!(d <= prev);
            prev = d;
        }
    }

    #[test]
    fn calibration_achieves_target_delta() {
        for &(eps, delta) in &[(0.5, 1e-5), (1.0, 1e-6), (4.0, 1e-4)] {
            let sigma = analytic_gaussian_sigma(eps, delta);
            assert!(analytic_gaussian_delta(eps, sigma) <= delta * (1.0 + 1e-6));
            // 2% less noise must violate the target (tightness).
            assert!(analytic_gaussian_delta(eps, sigma * 0.98) > delta);
        }
    }

    #[test]
    fn analytic_beats_classic_calibration() {
        // Balle–Wang is never worse than the classic √(2 ln(1.25/δ))/ε rule
        // in its validity regime ε ≤ 1, and strictly better for large ε.
        for &eps in &[0.5, 1.0] {
            let classic = gaussian_sigma_classic(1.0, eps, 1e-5);
            let analytic = analytic_gaussian_sigma(eps, 1e-5);
            assert!(analytic <= classic + 1e-9, "ε={eps}: {analytic} vs {classic}");
        }
        let classic4 = gaussian_sigma_classic(1.0, 4.0, 1e-5);
        let analytic4 = analytic_gaussian_sigma(4.0, 1e-5);
        assert!(analytic4 < classic4, "ε=4: {analytic4} vs {classic4}");
    }

    #[test]
    fn agrees_with_rdp_route_within_slack() {
        // One Gaussian release calibrated through RDP conversion should need
        // at least as much noise as the exact analytic answer (RDP → DP
        // conversion is lossy), within a modest factor.
        let (eps, delta) = (1.0, 1e-5);
        let rdp_sigma = crate::rdp::calibrate_noise_multiplier(1.0, 1, eps, delta);
        let exact = analytic_gaussian_sigma(eps, delta);
        assert!(rdp_sigma >= exact * 0.99, "rdp {rdp_sigma} below exact {exact}");
        assert!(rdp_sigma <= exact * 2.0, "rdp {rdp_sigma} absurdly above exact {exact}");
    }
}
