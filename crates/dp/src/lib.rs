#![warn(missing_docs)]
//! Differential-privacy toolkit.
//!
//! Everything DP-related that is *not* specific to GCON's objective
//! perturbation lives here:
//!
//! - [`special`]: `ln Γ`, the regularized lower incomplete gamma `P(a, x)`
//!   and its inverse — needed for the `c_sf` quantile of Eq. (21) in the
//!   paper (the Gamma-CDF inequality that bounds the Erlang noise radius
//!   with probability `1 − δ/c`).
//! - [`erlang`]: the paper's Algorithm 2 — a noise vector drawn uniformly on
//!   the `d`-sphere with an Erlang(`d`, `β`)-distributed radius, i.e. density
//!   ∝ `exp(−β‖b‖₂)`.
//! - [`mechanisms`]: Laplace / Gaussian mechanisms and randomized response,
//!   used by the DPGCN, LPGNet, GAP and ProGAP baselines.
//! - [`rdp`]: a Rényi-DP accountant (plain and Poisson-subsampled Gaussian)
//!   with `(ε, δ)` conversion and noise calibration by binary search, used by
//!   DP-SGD and the multi-hop aggregation-perturbation baselines.
//! - [`composition`]: basic and advanced sequential composition for
//!   `(ε, δ)`-DP — the budget arithmetic the Theorem 1 Remark contrasts
//!   objective perturbation against.
//! - [`audit`]: empirical DP auditing — Clopper–Pearson-backed lower bounds
//!   on the privacy loss of any mechanism, used to sanity-check GCON's
//!   objective perturbation end to end and to catch deliberately broken
//!   variants.

pub mod audit;
pub mod composition;
pub mod erlang;
pub mod gaussian_analytic;
pub mod mechanisms;
pub mod rdp;
pub mod special;

pub use erlang::sample_sphere_noise;
pub use rdp::RdpAccountant;
