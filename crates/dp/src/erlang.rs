//! Algorithm 2 of the paper: sampling the objective-perturbation noise.
//!
//! Each column `b_j` of the noise matrix `B` in Eq. (13) is drawn with density
//! ∝ `exp(−β ‖b‖₂)` over `ℝ^d`. Algorithm 2 factorizes this into
//! (i) a radius `a` with the Erlang PDF of Eq. (14),
//! `γ(x) = x^{d−1} e^{−βx} β^d / (d−1)!`, and (ii) a direction drawn uniformly
//! on the unit `d`-sphere (a normalized standard Gaussian vector; correctness
//! is Lemma 6 in the paper's Appendix E).

use gcon_linalg::vecops;
use rand::Rng;

/// Samples the Erlang(`shape`, `rate`) distribution — the radius law of
/// Eq. (14) with `shape = d` and `rate = β`.
///
/// Uses the exact sum-of-exponentials representation in log space, so it is
/// stable for the large `d` (hundreds) produced by feature concatenation.
pub fn sample_erlang<R: Rng + ?Sized>(shape: usize, rate: f64, rng: &mut R) -> f64 {
    assert!(shape > 0, "sample_erlang: shape must be ≥ 1");
    assert!(rate > 0.0 && rate.is_finite(), "sample_erlang: rate must be positive");
    let mut log_sum = 0.0;
    for _ in 0..shape {
        // 1 - U ∈ (0, 1] avoids ln(0).
        let u: f64 = 1.0 - rng.gen::<f64>();
        log_sum += u.ln();
    }
    -log_sum / rate
}

/// Samples a point uniformly on the unit `d`-sphere.
pub fn sample_unit_sphere<R: Rng + ?Sized>(d: usize, rng: &mut R) -> Vec<f64> {
    assert!(d > 0, "sample_unit_sphere: dimension must be ≥ 1");
    loop {
        let v: Vec<f64> = (0..d).map(|_| vecops::sample_std_normal(rng)).collect();
        let n = vecops::norm2(&v);
        if n > 1e-12 {
            return v.into_iter().map(|x| x / n).collect();
        }
        // Astronomically unlikely zero vector: resample.
    }
}

/// Algorithm 2: one noise column `b ∈ ℝ^d` with density ∝ `exp(−β‖b‖₂)`.
pub fn sample_sphere_noise<R: Rng + ?Sized>(d: usize, beta: f64, rng: &mut R) -> Vec<f64> {
    let radius = sample_erlang(d, beta, rng);
    let mut dir = sample_unit_sphere(d, rng);
    for v in &mut dir {
        *v *= radius;
    }
    dir
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcon_linalg::vecops::{mean, norm2, std_dev};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn erlang_moments() {
        // Erlang(k, β): mean k/β, variance k/β².
        let mut rng = StdRng::seed_from_u64(31);
        let (k, beta) = (8usize, 2.5);
        let samples: Vec<f64> = (0..100_000).map(|_| sample_erlang(k, beta, &mut rng)).collect();
        let m = mean(&samples);
        let v = std_dev(&samples).powi(2);
        assert!((m - k as f64 / beta).abs() < 0.02, "mean {m}");
        assert!((v - k as f64 / beta.powi(2)).abs() < 0.05, "var {v}");
    }

    #[test]
    fn erlang_shape_one_is_exponential() {
        let mut rng = StdRng::seed_from_u64(32);
        let beta = 3.0;
        let samples: Vec<f64> = (0..100_000).map(|_| sample_erlang(1, beta, &mut rng)).collect();
        // Exponential: P(X > 1/β) = e^{-1}.
        let frac = samples.iter().filter(|&&x| x > 1.0 / beta).count() as f64 / 1e5;
        let expect = (-1.0_f64).exp();
        assert!((frac - expect).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn unit_sphere_has_unit_norm() {
        let mut rng = StdRng::seed_from_u64(33);
        for _ in 0..100 {
            let v = sample_unit_sphere(17, &mut rng);
            assert!((norm2(&v) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn unit_sphere_is_directionally_unbiased() {
        let mut rng = StdRng::seed_from_u64(34);
        let d = 5;
        let mut acc = vec![0.0; d];
        let n = 50_000;
        for _ in 0..n {
            let v = sample_unit_sphere(d, &mut rng);
            for (a, x) in acc.iter_mut().zip(&v) {
                *a += x;
            }
        }
        for a in &acc {
            assert!((a / n as f64).abs() < 0.01, "component mean {}", a / n as f64);
        }
    }

    #[test]
    fn sphere_noise_radius_follows_erlang_mean() {
        let mut rng = StdRng::seed_from_u64(35);
        let (d, beta) = (32usize, 4.0);
        let norms: Vec<f64> =
            (0..20_000).map(|_| norm2(&sample_sphere_noise(d, beta, &mut rng))).collect();
        let m = mean(&norms);
        assert!((m - d as f64 / beta).abs() < 0.1, "mean radius {m}");
    }

    #[test]
    fn sphere_noise_radius_tail_matches_gamma_cdf() {
        // Cross-check Algorithm 2 against the c_sf quantile machinery of
        // Eq. (21): the probability that β‖b‖ exceeds the (1−q)-quantile of
        // Gamma(d, 1) should be ≈ q.
        let mut rng = StdRng::seed_from_u64(36);
        let (d, beta, q) = (16usize, 2.0, 0.05);
        let threshold = crate::special::reg_gamma_p_inverse(d as f64, 1.0 - q);
        let n = 40_000;
        let over = (0..n)
            .filter(|_| norm2(&sample_sphere_noise(d, beta, &mut rng)) * beta > threshold)
            .count();
        let frac = over as f64 / n as f64;
        assert!((frac - q).abs() < 0.01, "tail fraction {frac} vs {q}");
    }
}
