//! Rényi differential privacy accounting.
//!
//! Used by the DP-SGD baseline (Poisson-subsampled Gaussian composed over
//! many steps) and by GAP / ProGAP (K composed Gaussian aggregation releases).
//! GCON itself does *not* need an accountant — Theorem 1 charges the whole
//! budget once, independent of optimization steps, which is one of the
//! paper's selling points; the accountant here is what makes the comparison
//! fair for the step-composed competitors.

use crate::special::{ln_binomial, log_sum_exp};

/// The default Rényi order grid: integers 2..=64 plus a coarse tail.
fn default_orders() -> Vec<f64> {
    let mut orders: Vec<f64> = (2..=64).map(|a| a as f64).collect();
    orders.extend([80.0, 96.0, 128.0, 192.0, 256.0, 384.0, 512.0]);
    orders
}

/// RDP of the Gaussian mechanism with noise multiplier `σ/Δ = noise_mult`
/// at order `α`: `α / (2 σ̂²)`.
pub fn gaussian_rdp(noise_mult: f64, alpha: f64) -> f64 {
    assert!(noise_mult > 0.0);
    alpha / (2.0 * noise_mult * noise_mult)
}

/// RDP at *integer* order `α` of the Poisson-subsampled Gaussian mechanism
/// with sampling rate `q` and noise multiplier `σ̂` (Mironov–Talwar–Zhang
/// 2019, upper bound used by standard DP-SGD accountants):
///
/// `RDP(α) = log( Σ_{k=0}^{α} C(α,k) (1−q)^{α−k} q^k · e^{k(k−1)/(2σ̂²)} ) / (α−1)`
pub fn subsampled_gaussian_rdp(q: f64, noise_mult: f64, alpha: u64) -> f64 {
    assert!((0.0..=1.0).contains(&q));
    assert!(alpha >= 2);
    assert!(noise_mult > 0.0);
    if q == 0.0 {
        return 0.0;
    }
    if q == 1.0 {
        return gaussian_rdp(noise_mult, alpha as f64);
    }
    let sigma2 = noise_mult * noise_mult;
    let log_q = q.ln();
    let log_1q = (1.0 - q).ln();
    let terms: Vec<f64> = (0..=alpha)
        .map(|k| {
            ln_binomial(alpha, k)
                + (alpha - k) as f64 * log_1q
                + k as f64 * log_q
                + (k as f64) * (k as f64 - 1.0) / (2.0 * sigma2)
        })
        .collect();
    log_sum_exp(&terms) / (alpha as f64 - 1.0)
}

/// An additive RDP ledger over a fixed order grid.
#[derive(Clone, Debug)]
pub struct RdpAccountant {
    orders: Vec<f64>,
    rdp: Vec<f64>,
}

impl Default for RdpAccountant {
    fn default() -> Self {
        Self::new()
    }
}

impl RdpAccountant {
    /// Empty ledger on the default order grid.
    pub fn new() -> Self {
        let orders = default_orders();
        let rdp = vec![0.0; orders.len()];
        Self { orders, rdp }
    }

    /// Records `count` releases of a plain Gaussian mechanism with the given
    /// noise multiplier (σ per unit L2 sensitivity).
    pub fn compose_gaussian(&mut self, noise_mult: f64, count: usize) {
        for (r, &a) in self.rdp.iter_mut().zip(&self.orders) {
            *r += count as f64 * gaussian_rdp(noise_mult, a);
        }
    }

    /// Records `steps` releases of a Poisson-subsampled Gaussian with
    /// sampling rate `q` (integer orders only; fractional grid orders use the
    /// value at the next integer, which is an upper bound in practice for
    /// this monotone regime).
    pub fn compose_subsampled_gaussian(&mut self, q: f64, noise_mult: f64, steps: usize) {
        for (r, &a) in self.rdp.iter_mut().zip(&self.orders) {
            let ai = a.ceil() as u64;
            *r += steps as f64 * subsampled_gaussian_rdp(q, noise_mult, ai.max(2));
        }
    }

    /// Converts the ledger to `(ε, δ)`-DP:
    /// `ε = min_α RDP(α) + log(1/δ)/(α−1)`.
    pub fn epsilon(&self, delta: f64) -> f64 {
        assert!(delta > 0.0 && delta < 1.0);
        let log_inv_delta = (1.0 / delta).ln();
        self.orders
            .iter()
            .zip(&self.rdp)
            .map(|(&a, &r)| r + log_inv_delta / (a - 1.0))
            .fold(f64::INFINITY, f64::min)
    }
}

/// Finds the smallest noise multiplier such that `steps` subsampled-Gaussian
/// releases at rate `q` stay within `(eps, delta)`. Pass `q = 1.0` for
/// full-batch (plain Gaussian) composition.
pub fn calibrate_noise_multiplier(q: f64, steps: usize, eps: f64, delta: f64) -> f64 {
    assert!(eps > 0.0);
    let eval = |nm: f64| -> f64 {
        let mut acc = RdpAccountant::new();
        if q >= 1.0 {
            acc.compose_gaussian(nm, steps);
        } else {
            acc.compose_subsampled_gaussian(q, nm, steps);
        }
        acc.epsilon(delta)
    };
    let mut lo = 1e-2;
    let mut hi = 1.0;
    while eval(hi) > eps {
        hi *= 2.0;
        assert!(hi < 1e6, "calibrate_noise_multiplier: failed to bracket");
    }
    while eval(lo) < eps && lo > 1e-6 {
        lo *= 0.5;
    }
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if eval(mid) > eps {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_rdp_scales_linearly_in_alpha() {
        assert!((gaussian_rdp(2.0, 4.0) - 0.5).abs() < 1e-12);
        assert!((gaussian_rdp(2.0, 8.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn subsampled_reduces_to_gaussian_at_q1() {
        let r = subsampled_gaussian_rdp(1.0, 1.5, 8);
        assert!((r - gaussian_rdp(1.5, 8.0)).abs() < 1e-12);
    }

    #[test]
    fn subsampling_amplifies_privacy() {
        let full = gaussian_rdp(1.0, 8.0);
        let sub = subsampled_gaussian_rdp(0.01, 1.0, 8);
        assert!(sub < full / 10.0, "sub {sub} vs full {full}");
    }

    #[test]
    fn subsampled_rdp_zero_at_q0() {
        assert_eq!(subsampled_gaussian_rdp(0.0, 1.0, 4), 0.0);
    }

    #[test]
    fn accountant_composition_is_additive() {
        let mut a = RdpAccountant::new();
        a.compose_gaussian(2.0, 10);
        let mut b = RdpAccountant::new();
        for _ in 0..10 {
            b.compose_gaussian(2.0, 1);
        }
        assert!((a.epsilon(1e-5) - b.epsilon(1e-5)).abs() < 1e-12);
    }

    #[test]
    fn epsilon_increases_with_steps_and_decreases_with_noise() {
        let mut few = RdpAccountant::new();
        few.compose_gaussian(1.0, 1);
        let mut many = RdpAccountant::new();
        many.compose_gaussian(1.0, 100);
        assert!(many.epsilon(1e-5) > few.epsilon(1e-5));

        let mut noisy = RdpAccountant::new();
        noisy.compose_gaussian(10.0, 100);
        assert!(noisy.epsilon(1e-5) < many.epsilon(1e-5));
    }

    #[test]
    fn calibration_achieves_target() {
        let (q, steps, eps, delta) = (0.05, 500, 2.0, 1e-5);
        let nm = calibrate_noise_multiplier(q, steps, eps, delta);
        let mut acc = RdpAccountant::new();
        acc.compose_subsampled_gaussian(q, nm, steps);
        let achieved = acc.epsilon(delta);
        assert!(achieved <= eps + 1e-6, "achieved {achieved}");
        // And it is not wastefully loose: 1% less noise would violate ε.
        let mut tight = RdpAccountant::new();
        tight.compose_subsampled_gaussian(q, nm * 0.97, steps);
        assert!(tight.epsilon(delta) > eps);
    }

    #[test]
    fn calibration_full_batch_path() {
        let nm = calibrate_noise_multiplier(1.0, 10, 1.0, 1e-6);
        let mut acc = RdpAccountant::new();
        acc.compose_gaussian(nm, 10);
        assert!(acc.epsilon(1e-6) <= 1.0 + 1e-6);
    }
}
