//! Empirical DP auditing: statistically *lower-bound* the privacy loss of a
//! mechanism by distinguishing its outputs on neighboring inputs.
//!
//! The `(ε, δ)`-DP inequality (Definition 1) implies that for any output
//! event `O`,
//!
//! ```text
//! Pr[A(D) ∈ O] ≤ e^ε · Pr[A(D') ∈ O] + δ
//! ⇒ ε ≥ ln((Pr[A(D) ∈ O] − δ) / Pr[A(D') ∈ O])
//! ```
//!
//! An auditor therefore runs the mechanism many times on `D` and on `D'`,
//! picks a threshold event `O = {statistic > t}`, and converts the two
//! empirical frequencies into a **high-confidence lower bound** on ε by
//! replacing the frequencies with their Clopper–Pearson confidence limits
//! (lower limit for the numerator, upper limit for the denominator), in the
//! style of Jagielski et al. (NeurIPS 2020).
//!
//! The audit can only ever *falsify* a privacy claim: a measured lower
//! bound above the advertised ε is a proof of a bug; a lower bound far
//! below ε is expected (the union of all threshold events is a weak
//! adversary). The workspace tests use this to sanity-check GCON's
//! objective-perturbation mechanism and to show a deliberately broken
//! variant being caught.

use crate::special::reg_beta_i_inverse;
use rand::Rng;

/// One-sided Clopper–Pearson bounds for a binomial proportion:
/// `k` successes out of `n` trials at confidence `1 − alpha` (per side).
///
/// Lower bound solves `Pr[Bin(n, p) ≥ k] = alpha`; upper bound solves
/// `Pr[Bin(n, p) ≤ k] = alpha`. Both via the Beta-quantile identity.
pub fn clopper_pearson(k: usize, n: usize, alpha: f64) -> (f64, f64) {
    assert!(k <= n, "clopper_pearson: k > n");
    assert!(n > 0, "clopper_pearson: need at least one trial");
    assert!(alpha > 0.0 && alpha < 1.0, "clopper_pearson: confidence level in (0,1)");
    let kf = k as f64;
    let nf = n as f64;
    let lower = if k == 0 {
        0.0
    } else {
        // p_lo = BetaInv(alpha; k, n−k+1)
        reg_beta_i_inverse(kf, nf - kf + 1.0, alpha)
    };
    let upper = if k == n {
        1.0
    } else {
        // p_hi = BetaInv(1−alpha; k+1, n−k)
        reg_beta_i_inverse(kf + 1.0, nf - kf, 1.0 - alpha)
    };
    (lower, upper)
}

/// Configuration for an audit run.
#[derive(Clone, Copy, Debug)]
pub struct AuditConfig {
    /// Mechanism invocations per input (the audit runs `2 · trials` total).
    pub trials: usize,
    /// The δ of the claimed `(ε, δ)` guarantee, subtracted from the
    /// numerator per the DP inequality.
    pub delta: f64,
    /// Per-side confidence for the Clopper–Pearson limits (e.g. 0.05 for a
    /// 95% one-sided bound on each frequency).
    pub alpha: f64,
    /// Number of candidate thresholds scanned over the pooled statistic
    /// range.
    pub thresholds: usize,
}

impl Default for AuditConfig {
    fn default() -> Self {
        Self { trials: 1000, delta: 0.0, alpha: 0.05, thresholds: 32 }
    }
}

/// Outcome of an audit.
#[derive(Clone, Copy, Debug)]
pub struct AuditResult {
    /// The best (largest) high-confidence lower bound on ε found over all
    /// scanned threshold events, in both directions. Never negative.
    pub eps_lower_bound: f64,
    /// The threshold achieving it.
    pub best_threshold: f64,
    /// Empirical `Pr[stat > t | D]` at the best threshold.
    pub rate_d: f64,
    /// Empirical `Pr[stat > t | D']` at the best threshold.
    pub rate_d_prime: f64,
}

/// Audits a mechanism through a scalar test statistic.
///
/// `run_d` / `run_d_prime` invoke the mechanism on the two neighboring
/// inputs and reduce the output to one `f64` (the auditor's distinguishing
/// statistic — e.g. a fixed linear projection of the released parameters).
///
/// Scans `cfg.thresholds` candidate thresholds over the pooled sample range
/// and both tail directions, and returns the best Clopper–Pearson-backed
/// lower bound `ln((p_lo − δ)/q_hi)`. The bound holds with confidence at
/// least `1 − 2·cfg.alpha` per threshold (the scan is heuristic — for a
/// publication-grade audit fix one threshold a priori).
pub fn audit_eps_lower_bound<R: Rng + ?Sized>(
    mut run_d: impl FnMut(&mut R) -> f64,
    mut run_d_prime: impl FnMut(&mut R) -> f64,
    cfg: &AuditConfig,
    rng: &mut R,
) -> AuditResult {
    assert!(cfg.trials >= 10, "audit: need at least 10 trials per input");
    assert!(cfg.thresholds >= 1, "audit: need at least one threshold");
    let mut stats_d: Vec<f64> = (0..cfg.trials).map(|_| run_d(rng)).collect();
    let mut stats_dp: Vec<f64> = (0..cfg.trials).map(|_| run_d_prime(rng)).collect();
    stats_d.sort_by(|a, b| a.partial_cmp(b).expect("audit statistic was NaN"));
    stats_dp.sort_by(|a, b| a.partial_cmp(b).expect("audit statistic was NaN"));

    let lo = stats_d[0].min(stats_dp[0]);
    let hi = stats_d.last().unwrap().max(*stats_dp.last().unwrap());
    let mut best =
        AuditResult { eps_lower_bound: 0.0, best_threshold: lo, rate_d: 0.0, rate_d_prime: 0.0 };
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN-safe: reject hi ≤ lo AND NaN
    if !(hi > lo) {
        return best; // degenerate mechanism: constant output, ε_lb = 0
    }

    let count_above = |sorted: &[f64], t: f64| -> usize {
        // Number of samples strictly above t (sorted ascending).
        let idx = sorted.partition_point(|&x| x <= t);
        sorted.len() - idx
    };

    for i in 0..cfg.thresholds {
        let t = lo + (hi - lo) * (i as f64 + 0.5) / cfg.thresholds as f64;
        for flip in [false, true] {
            // Event: stat > t on D vs D' (flip swaps the roles, which
            // audits the symmetric inequality).
            let (k_num, k_den) = if flip {
                (count_above(&stats_dp, t), count_above(&stats_d, t))
            } else {
                (count_above(&stats_d, t), count_above(&stats_dp, t))
            };
            let (p_lo, _) = clopper_pearson(k_num, cfg.trials, cfg.alpha);
            let (_, q_hi) = clopper_pearson(k_den, cfg.trials, cfg.alpha);
            let num = p_lo - cfg.delta;
            if num <= 0.0 || q_hi <= 0.0 {
                continue;
            }
            let eps_lb = (num / q_hi).ln();
            if eps_lb > best.eps_lower_bound {
                best = AuditResult {
                    eps_lower_bound: eps_lb,
                    best_threshold: t,
                    rate_d: count_above(&stats_d, t) as f64 / cfg.trials as f64,
                    rate_d_prime: count_above(&stats_dp, t) as f64 / cfg.trials as f64,
                };
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanisms::sample_laplace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clopper_pearson_contains_truth() {
        // 30 successes out of 100 at p = 0.3: the 95% bounds must straddle.
        let (lo, hi) = clopper_pearson(30, 100, 0.05);
        assert!(lo < 0.3 && 0.3 < hi, "({lo}, {hi})");
        assert!(lo > 0.2 && hi < 0.42, "interval ({lo}, {hi}) implausibly wide");
    }

    #[test]
    fn clopper_pearson_edge_counts() {
        let (lo, hi) = clopper_pearson(0, 50, 0.05);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.12);
        let (lo, hi) = clopper_pearson(50, 50, 0.05);
        assert_eq!(hi, 1.0);
        assert!(lo > 0.9);
    }

    #[test]
    fn clopper_pearson_tightens_with_n() {
        let (lo1, hi1) = clopper_pearson(30, 100, 0.05);
        let (lo2, hi2) = clopper_pearson(300, 1000, 0.05);
        assert!(hi2 - lo2 < hi1 - lo1);
    }

    #[test]
    fn audit_of_laplace_mechanism_respects_true_epsilon() {
        // Laplace(1/ε) on counts differing by 1 is exactly ε-DP: the audit's
        // lower bound must stay below ε (soundness).
        let eps = 1.0;
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = AuditConfig { trials: 3000, ..AuditConfig::default() };
        let r = audit_eps_lower_bound(
            |rng: &mut StdRng| 0.0 + sample_laplace(1.0 / eps, rng),
            |rng: &mut StdRng| 1.0 + sample_laplace(1.0 / eps, rng),
            &cfg,
            &mut rng,
        );
        assert!(
            r.eps_lower_bound <= eps + 0.05,
            "audit lower bound {} exceeds the true ε = {eps}",
            r.eps_lower_bound
        );
        // And it must have real distinguishing power (not vacuously 0).
        assert!(r.eps_lower_bound > 0.3, "audit too weak: {}", r.eps_lower_bound);
    }

    #[test]
    fn audit_catches_a_non_private_mechanism() {
        // A mechanism that leaks the input with tiny noise: the lower bound
        // must blow well past any reasonable claimed ε.
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = AuditConfig { trials: 2000, ..AuditConfig::default() };
        let r = audit_eps_lower_bound(
            |rng: &mut StdRng| 0.0 + 0.01 * sample_laplace(1.0, rng),
            |rng: &mut StdRng| 1.0 + 0.01 * sample_laplace(1.0, rng),
            &cfg,
            &mut rng,
        );
        assert!(r.eps_lower_bound > 2.0, "leaky mechanism not caught: {}", r.eps_lower_bound);
    }

    #[test]
    fn audit_of_identical_distributions_is_near_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = AuditConfig { trials: 2000, ..AuditConfig::default() };
        let r = audit_eps_lower_bound(
            |rng: &mut StdRng| sample_laplace(1.0, rng),
            |rng: &mut StdRng| sample_laplace(1.0, rng),
            &cfg,
            &mut rng,
        );
        assert!(r.eps_lower_bound < 0.25, "false positive: {}", r.eps_lower_bound);
    }

    #[test]
    fn audit_constant_mechanism_returns_zero() {
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = AuditConfig::default();
        let r = audit_eps_lower_bound(|_: &mut StdRng| 42.0, |_: &mut StdRng| 42.0, &cfg, &mut rng);
        assert_eq!(r.eps_lower_bound, 0.0);
    }

    #[test]
    fn delta_credit_weakens_the_bound() {
        let mut rng = StdRng::seed_from_u64(5);
        let base = AuditConfig { trials: 2000, ..AuditConfig::default() };
        let with_delta = AuditConfig { delta: 0.05, ..base };
        let mk = |cfg: &AuditConfig, rng: &mut StdRng| {
            audit_eps_lower_bound(
                |rng: &mut StdRng| 0.0 + sample_laplace(0.5, rng),
                |rng: &mut StdRng| 1.0 + sample_laplace(0.5, rng),
                cfg,
                rng,
            )
            .eps_lower_bound
        };
        let e0 = mk(&base, &mut rng);
        let e1 = mk(&with_delta, &mut rng);
        assert!(e1 <= e0 + 0.1, "δ-credited bound {e1} should not exceed {e0}");
    }

    #[test]
    #[should_panic(expected = "at least 10 trials")]
    fn audit_rejects_tiny_trial_counts() {
        let mut rng = StdRng::seed_from_u64(6);
        let cfg = AuditConfig { trials: 3, ..AuditConfig::default() };
        let _ = audit_eps_lower_bound(|_: &mut StdRng| 0.0, |_: &mut StdRng| 0.0, &cfg, &mut rng);
    }
}
