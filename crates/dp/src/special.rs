//! Special functions: log-gamma and the regularized lower incomplete gamma
//! function, with the quantile solver used for `c_sf` (Eq. 21 of the paper).
//!
//! The implementations follow the classic series / continued-fraction split
//! (Numerical Recipes style) and are validated against closed forms
//! (`P(1, x) = 1 − e^{−x}`, integer-shape Erlang CDFs) in the tests.

/// Natural log of the gamma function via the Lanczos approximation (g = 7,
/// n = 9), accurate to ~1e-13 for positive arguments.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma: requires x > 0, got {x}");
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma `P(a, x) = γ(a, x) / Γ(a)`.
///
/// For shape `a = d` (an integer in our use) this is exactly the CDF of the
/// Erlang/Gamma(d, 1) distribution appearing in Eq. (21).
pub fn reg_gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "reg_gamma_p: shape must be positive");
    assert!(x >= 0.0, "reg_gamma_p: x must be non-negative");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Series expansion of P(a, x), converges fast for x < a + 1.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    (sum.ln() + a * x.ln() - x - ln_gamma(a)).exp().min(1.0)
}

/// Continued fraction for Q(a, x) = 1 − P(a, x), converges fast for x ≥ a + 1.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    let fpmin = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / fpmin;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < fpmin {
            d = fpmin;
        }
        c = b + an / c;
        if c.abs() < fpmin {
            c = fpmin;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    ((a * x.ln() - x - ln_gamma(a)).exp() * h).clamp(0.0, 1.0)
}

/// Solves `min { u > 0 : P(a, u) ≥ target }` by bracketed bisection.
///
/// With `a = d` and `target = 1 − δ/c` this is exactly `c_sf` of Eq. (21).
pub fn reg_gamma_p_inverse(a: f64, target: f64) -> f64 {
    assert!((0.0..1.0).contains(&target), "reg_gamma_p_inverse: target in [0,1)");
    if target == 0.0 {
        return 0.0;
    }
    // Bracket: grow hi from around the mean (a) until the CDF exceeds target.
    let mut lo = 0.0;
    let mut hi = a.max(1.0);
    while reg_gamma_p(a, hi) < target {
        lo = hi;
        hi *= 2.0;
        assert!(hi < 1e12, "reg_gamma_p_inverse: failed to bracket");
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if reg_gamma_p(a, mid) >= target {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Regularized incomplete beta function `I_x(a, b)` via the Lentz
/// continued-fraction evaluation (Numerical Recipes §6.4), accurate to
/// ~1e-12. This is the CDF of the Beta(a, b) distribution and the binomial
/// tail `Pr[Bin(n, p) ≥ k] = I_p(k, n−k+1)` — which is what the
/// Clopper–Pearson interval in [`crate::audit`] inverts.
pub fn reg_beta_i(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "reg_beta_i: shape parameters must be positive");
    assert!((0.0..=1.0).contains(&x), "reg_beta_i: x must lie in [0, 1], got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    // Prefactor x^a (1−x)^b / (a·B(a,b)).
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    // Use the symmetry I_x(a,b) = 1 − I_{1−x}(b,a) to keep the continued
    // fraction in its fast-converging region.
    if x < (a + 1.0) / (a + b + 2.0) {
        (ln_front.exp() * beta_cf(a, b, x)) / a
    } else {
        1.0 - (ln_front.exp() * beta_cf(b, a, 1.0 - x)) / b
    }
}

/// Modified Lentz continued fraction for the incomplete beta function.
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITERS: usize = 300;
    const TINY: f64 = 1e-300;
    const EPS: f64 = 1e-14;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITERS {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Inverse of the Beta CDF in its first argument position: the `p` with
/// `I_p(a, b) = target`, found by bisection (the CDF is strictly increasing
/// in `p`). Used for the Clopper–Pearson binomial confidence bounds.
pub fn reg_beta_i_inverse(a: f64, b: f64, target: f64) -> f64 {
    assert!((0.0..=1.0).contains(&target), "reg_beta_i_inverse: target in [0, 1]");
    if target <= 0.0 {
        return 0.0;
    }
    if target >= 1.0 {
        return 1.0;
    }
    let mut lo = 0.0f64;
    let mut hi = 1.0f64;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if reg_beta_i(a, b, mid) >= target {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    0.5 * (lo + hi)
}

/// `log(C(n, k))` via log-gamma, used by the subsampled-Gaussian accountant.
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    assert!(k <= n, "ln_binomial: k > n");
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Numerically stable `log(Σ exp(xᵢ))`.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    m + xs.iter().map(|&x| (x - m).exp()).sum::<f64>().ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_integer_factorials() {
        // Γ(n) = (n-1)!
        assert!((ln_gamma(5.0) - 24.0_f64.ln()).abs() < 1e-12);
        assert!((ln_gamma(1.0)).abs() < 1e-12);
        assert!((ln_gamma(10.0) - 362_880.0_f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn ln_gamma_half() {
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-12);
    }

    #[test]
    fn reg_gamma_p_shape_one_is_exponential_cdf() {
        for &x in &[0.1_f64, 0.5, 1.0, 3.0, 10.0] {
            let expect = 1.0 - (-x).exp();
            assert!((reg_gamma_p(1.0, x) - expect).abs() < 1e-12, "x = {x}");
        }
    }

    #[test]
    fn reg_gamma_p_erlang_shape_two() {
        // P(2, x) = 1 - e^{-x}(1 + x)
        for &x in &[0.3_f64, 1.0, 2.5, 8.0] {
            let expect = 1.0 - (-x).exp() * (1.0 + x);
            assert!((reg_gamma_p(2.0, x) - expect).abs() < 1e-12, "x = {x}");
        }
    }

    #[test]
    fn reg_gamma_p_monotone_and_bounded() {
        let mut prev = 0.0;
        for i in 1..100 {
            let x = i as f64 * 0.5;
            let p = reg_gamma_p(7.0, x);
            assert!(p >= prev - 1e-15);
            assert!((0.0..=1.0).contains(&p));
            prev = p;
        }
        assert!(reg_gamma_p(7.0, 200.0) > 1.0 - 1e-12);
    }

    #[test]
    fn inverse_solves_forward() {
        for &a in &[1.0, 4.0, 64.0, 300.0] {
            for &t in &[0.5, 0.9, 0.999, 0.999_999] {
                let u = reg_gamma_p_inverse(a, t);
                assert!((reg_gamma_p(a, u) - t).abs() < 1e-9, "a={a} t={t}");
            }
        }
    }

    #[test]
    fn inverse_is_minimal() {
        // Slightly below the returned u, the CDF is below the target.
        let a = 16.0;
        let t = 0.99;
        let u = reg_gamma_p_inverse(a, t);
        assert!(reg_gamma_p(a, u - 1e-6) < t);
    }

    #[test]
    fn ln_binomial_pascal() {
        assert!((ln_binomial(5, 2) - 10.0_f64.ln()).abs() < 1e-12);
        assert!((ln_binomial(10, 0)).abs() < 1e-12);
        assert!((ln_binomial(52, 5) - 2_598_960.0_f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn log_sum_exp_stability() {
        assert!((log_sum_exp(&[1000.0, 1000.0]) - (1000.0 + 2.0_f64.ln())).abs() < 1e-9);
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn reg_beta_boundary_values() {
        assert_eq!(reg_beta_i(2.0, 3.0, 0.0), 0.0);
        assert_eq!(reg_beta_i(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn reg_beta_uniform_case() {
        // Beta(1, 1) is uniform: I_x(1,1) = x.
        for &x in &[0.1, 0.37, 0.5, 0.93] {
            assert!((reg_beta_i(1.0, 1.0, x) - x).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn reg_beta_closed_forms() {
        // I_x(1, b) = 1 − (1−x)^b and I_x(a, 1) = x^a.
        for &(a, x) in &[(2.0, 0.3), (5.0, 0.7), (0.5, 0.2)] {
            assert!((reg_beta_i(a, 1.0, x) - x.powf(a)).abs() < 1e-11, "a={a} x={x}");
            assert!(
                (reg_beta_i(1.0, a, x) - (1.0 - (1.0 - x).powf(a))).abs() < 1e-11,
                "b={a} x={x}"
            );
        }
    }

    #[test]
    fn reg_beta_symmetry() {
        // I_x(a,b) = 1 − I_{1−x}(b,a).
        for &(a, b, x) in &[(2.5, 4.0, 0.3), (7.0, 2.0, 0.8), (0.5, 0.5, 0.5)] {
            let lhs = reg_beta_i(a, b, x);
            let rhs = 1.0 - reg_beta_i(b, a, 1.0 - x);
            assert!((lhs - rhs).abs() < 1e-11, "a={a} b={b} x={x}: {lhs} vs {rhs}");
        }
    }

    #[test]
    fn reg_beta_matches_binomial_tail() {
        // Pr[Bin(n,p) ≥ k] = I_p(k, n−k+1): check against direct summation.
        let (n, p) = (12u64, 0.35f64);
        for k in 1..=n {
            let direct: f64 = (k..=n)
                .map(|j| {
                    (ln_binomial(n, j) + j as f64 * p.ln() + (n - j) as f64 * (1.0 - p).ln()).exp()
                })
                .sum();
            let via_beta = reg_beta_i(k as f64, (n - k) as f64 + 1.0, p);
            assert!((direct - via_beta).abs() < 1e-10, "k={k}: direct {direct} vs beta {via_beta}");
        }
    }

    #[test]
    fn reg_beta_monotone_in_x() {
        let mut prev = -1.0;
        for i in 0..=20 {
            let x = i as f64 / 20.0;
            let v = reg_beta_i(3.0, 5.0, x);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn reg_beta_inverse_roundtrip() {
        for &(a, b) in &[(1.0, 1.0), (3.0, 7.0), (20.0, 2.0), (0.5, 0.5)] {
            for &t in &[0.01, 0.25, 0.5, 0.9, 0.999] {
                let x = reg_beta_i_inverse(a, b, t);
                assert!((reg_beta_i(a, b, x) - t).abs() < 1e-9, "a={a} b={b} t={t}: x={x}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "x must lie in [0, 1]")]
    fn reg_beta_rejects_out_of_range() {
        let _ = reg_beta_i(1.0, 1.0, 1.5);
    }
}
