//! Sequential-composition theorems for `(ε, δ)`-DP.
//!
//! GCON's headline advantage (Theorem 1 Remark) is that objective
//! perturbation pays its privacy budget **once**, independent of the number
//! of optimization steps, whereas per-step mechanisms like DP-SGD must
//! compose their cost across every iteration. This module implements the two
//! classic composition bounds so the ablation harness can quantify that gap
//! explicitly, and so the RDP accountant in [`crate::rdp`] has a baseline to
//! beat:
//!
//! - [`basic_composition`]: `k` mechanisms at `(ε, δ)` compose to
//!   `(kε, kδ)` (Dwork & Roth, Thm 3.16).
//! - [`advanced_composition`]: for any `δ′ > 0`, they compose to
//!   `(ε√(2k ln(1/δ′)) + kε(eᵉ − 1), kδ + δ′)` (Dwork & Roth, Thm 3.20).
//! - [`per_step_epsilon_basic`] / [`per_step_epsilon_advanced`]: the inverse
//!   question the DP-SGD baseline asks — given a total budget, how much may
//!   each step spend?

/// Total `(ε, δ)` after `k`-fold basic composition of an `(eps, delta)`-DP
/// mechanism.
pub fn basic_composition(eps: f64, delta: f64, k: usize) -> (f64, f64) {
    assert!(eps >= 0.0 && delta >= 0.0, "privacy parameters must be non-negative");
    (eps * k as f64, delta * k as f64)
}

/// Total `(ε, δ_total)` after `k`-fold advanced composition of an
/// `(eps, delta)`-DP mechanism, spending slack `delta_prime` on the
/// high-probability bound. Returns `(ε_total, k·δ + δ′)`.
pub fn advanced_composition(eps: f64, delta: f64, k: usize, delta_prime: f64) -> (f64, f64) {
    assert!(eps >= 0.0 && delta >= 0.0, "privacy parameters must be non-negative");
    assert!(delta_prime > 0.0, "advanced composition needs delta_prime > 0");
    let kf = k as f64;
    let eps_total =
        eps * (2.0 * kf * (1.0 / delta_prime).ln()).sqrt() + kf * eps * (eps.exp() - 1.0);
    (eps_total, kf * delta + delta_prime)
}

/// The tighter of basic and advanced composition for the given slack.
/// Advanced composition only wins once `k` is large relative to `ε`; for the
/// small-`k` regimes of the baselines the basic bound is often better.
pub fn best_composition(eps: f64, delta: f64, k: usize, delta_prime: f64) -> (f64, f64) {
    let (eb, db) = basic_composition(eps, delta, k);
    let (ea, da) = advanced_composition(eps, delta, k, delta_prime);
    if ea < eb {
        (ea, da)
    } else {
        (eb, db)
    }
}

/// Per-step ε so that `k` steps basic-compose to at most `eps_total`.
pub fn per_step_epsilon_basic(eps_total: f64, k: usize) -> f64 {
    assert!(k > 0, "need at least one step");
    eps_total / k as f64
}

/// Per-step ε so that `k` steps advanced-compose (with slack `delta_prime`)
/// to at most `eps_total`, found by bisection on the monotone forward map.
pub fn per_step_epsilon_advanced(eps_total: f64, k: usize, delta_prime: f64) -> f64 {
    assert!(k > 0, "need at least one step");
    assert!(eps_total > 0.0, "need a positive budget");
    let forward = |e: f64| advanced_composition(e, 0.0, k, delta_prime).0;
    let mut lo = 0.0f64;
    let mut hi = eps_total; // forward(eps_total) ≥ eps_total·√(2k ln 1/δ′) ≥ eps_total for δ′ < e^{-1/2}/… — safe upper start
    while forward(hi) < eps_total {
        hi *= 2.0;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if forward(mid) > eps_total {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    lo
}

/// How many steps of an `(eps_step, 0)`-DP mechanism fit into `eps_total`
/// under basic composition.
pub fn max_steps_basic(eps_total: f64, eps_step: f64) -> usize {
    assert!(eps_step > 0.0, "per-step epsilon must be positive");
    (eps_total / eps_step).floor() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_is_linear() {
        let (e, d) = basic_composition(0.1, 1e-6, 10);
        assert!((e - 1.0).abs() < 1e-12);
        assert!((d - 1e-5).abs() < 1e-18);
    }

    #[test]
    fn basic_single_step_is_identity() {
        let (e, d) = basic_composition(0.7, 1e-5, 1);
        assert_eq!(e, 0.7);
        assert_eq!(d, 1e-5);
    }

    #[test]
    fn advanced_beats_basic_for_many_small_steps() {
        // k = 10 000 steps at ε = 0.01: basic gives 100, advanced far less.
        let (eb, _) = basic_composition(0.01, 0.0, 10_000);
        let (ea, _) = advanced_composition(0.01, 0.0, 10_000, 1e-6);
        assert!(ea < eb, "advanced {ea} should beat basic {eb}");
    }

    #[test]
    fn basic_beats_advanced_for_few_large_steps() {
        // k = 2 steps at ε = 1: the √(2k ln 1/δ′) factor alone exceeds 2ε.
        let (eb, _) = basic_composition(1.0, 0.0, 2);
        let (ea, _) = advanced_composition(1.0, 0.0, 2, 1e-6);
        assert!(eb < ea, "basic {eb} should beat advanced {ea}");
    }

    #[test]
    fn best_picks_the_smaller_epsilon() {
        let few = best_composition(1.0, 0.0, 2, 1e-6);
        assert_eq!(few, basic_composition(1.0, 0.0, 2));
        let many = best_composition(0.01, 0.0, 10_000, 1e-6);
        assert!((many.0 - advanced_composition(0.01, 0.0, 10_000, 1e-6).0).abs() < 1e-12);
    }

    #[test]
    fn advanced_delta_accumulates_plus_slack() {
        let (_, d) = advanced_composition(0.1, 1e-7, 100, 1e-6);
        assert!((d - (100.0 * 1e-7 + 1e-6)).abs() < 1e-15);
    }

    #[test]
    fn advanced_epsilon_grows_with_k() {
        let mut prev = 0.0;
        for k in [1usize, 10, 100, 1000] {
            let (e, _) = advanced_composition(0.05, 0.0, k, 1e-6);
            assert!(e > prev);
            prev = e;
        }
    }

    #[test]
    fn per_step_basic_inverts_forward() {
        let e = per_step_epsilon_basic(2.0, 40);
        assert!((basic_composition(e, 0.0, 40).0 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn per_step_advanced_inverts_forward() {
        for &(total, k) in &[(1.0f64, 100usize), (4.0, 1000), (0.5, 37)] {
            let e = per_step_epsilon_advanced(total, k, 1e-6);
            let (back, _) = advanced_composition(e, 0.0, k, 1e-6);
            assert!((back - total).abs() < 1e-6, "total={total} k={k}: roundtrip {back}");
        }
    }

    #[test]
    fn per_step_advanced_beats_basic_at_scale() {
        // With a large step count the advanced allocation lets each step
        // spend strictly more than ε_total / k.
        let total = 1.0;
        let k = 10_000;
        let adv = per_step_epsilon_advanced(total, k, 1e-6);
        let bas = per_step_epsilon_basic(total, k);
        assert!(adv > bas, "advanced per-step {adv} <= basic {bas}");
    }

    #[test]
    fn max_steps_counts_budget() {
        assert_eq!(max_steps_basic(1.0, 0.1), 10);
        assert_eq!(max_steps_basic(1.0, 0.3), 3);
        assert_eq!(max_steps_basic(0.2, 0.3), 0);
    }

    #[test]
    fn objective_perturbation_vs_composition_narrative() {
        // The Theorem 1 Remark, numerically: GCON spends ε = 1 once. DP-SGD
        // running 1 000 steps must divide: per-step ε is tiny either way.
        let total = 1.0;
        let steps = 1_000;
        let per_basic = per_step_epsilon_basic(total, steps);
        let per_adv = per_step_epsilon_advanced(total, steps, 1e-6);
        assert!(per_basic <= 0.001 + 1e-12);
        assert!(per_adv < 0.02); // still ≪ 1 even with advanced composition
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_epsilon() {
        basic_composition(-1.0, 0.0, 3);
    }
}
