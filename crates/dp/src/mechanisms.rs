//! Classic DP mechanisms used by the baselines.

use rand::Rng;

/// Samples Laplace(0, `scale`) by inverse-CDF.
pub fn sample_laplace<R: Rng + ?Sized>(scale: f64, rng: &mut R) -> f64 {
    assert!(scale > 0.0, "sample_laplace: scale must be positive");
    let u: f64 = rng.gen::<f64>() - 0.5;
    -scale * u.signum() * (1.0 - 2.0 * u.abs()).max(1e-300).ln()
}

/// The Laplace mechanism: adds Laplace(Δ₁/ε) noise to each value in place.
/// Satisfies ε-DP for L1 sensitivity `l1_sensitivity`.
pub fn laplace_mechanism<R: Rng + ?Sized>(
    values: &mut [f64],
    l1_sensitivity: f64,
    eps: f64,
    rng: &mut R,
) {
    assert!(eps > 0.0, "laplace_mechanism: eps must be positive");
    let scale = l1_sensitivity / eps;
    for v in values {
        *v += sample_laplace(scale, rng);
    }
}

/// Classic Gaussian-mechanism calibration
/// `σ = Δ₂ · sqrt(2 ln(1.25/δ)) / ε` (valid for ε ≤ 1, conservative above).
///
/// The baselines that compose many Gaussian releases (GAP, ProGAP, DP-SGD)
/// use the tighter RDP-based calibration in [`crate::rdp`] instead.
pub fn gaussian_sigma_classic(l2_sensitivity: f64, eps: f64, delta: f64) -> f64 {
    assert!(eps > 0.0 && delta > 0.0 && delta < 1.0);
    l2_sensitivity * (2.0 * (1.25 / delta).ln()).sqrt() / eps
}

/// Adds `N(0, σ²)` noise to each value in place.
pub fn add_gaussian_noise<R: Rng + ?Sized>(values: &mut [f64], sigma: f64, rng: &mut R) {
    for v in values {
        *v += gcon_linalg::vecops::sample_std_normal(rng) * sigma;
    }
}

/// Randomized response over a binary value: keeps the true bit with
/// probability `e^ε / (1 + e^ε)`, flips otherwise. Satisfies ε-DP.
pub fn randomized_response_keep_prob(eps: f64) -> f64 {
    assert!(eps > 0.0);
    let e = eps.exp();
    e / (1.0 + e)
}

/// Applies randomized response to one bit.
pub fn randomized_response<R: Rng + ?Sized>(bit: bool, eps: f64, rng: &mut R) -> bool {
    if rng.gen::<f64>() < randomized_response_keep_prob(eps) {
        bit
    } else {
        !bit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcon_linalg::vecops::{mean, std_dev};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn laplace_moments() {
        let mut rng = StdRng::seed_from_u64(41);
        let b = 2.0;
        let xs: Vec<f64> = (0..200_000).map(|_| sample_laplace(b, &mut rng)).collect();
        assert!(mean(&xs).abs() < 0.02);
        // Var = 2b².
        let v = std_dev(&xs).powi(2);
        assert!((v - 2.0 * b * b).abs() < 0.2, "var {v}");
    }

    #[test]
    fn laplace_mechanism_perturbs_with_right_scale() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut vals = vec![0.0; 100_000];
        laplace_mechanism(&mut vals, 2.0, 4.0, &mut rng);
        // scale = 0.5 → var = 0.5
        let v = std_dev(&vals).powi(2);
        assert!((v - 0.5).abs() < 0.05, "var {v}");
    }

    #[test]
    fn gaussian_sigma_decreases_with_eps() {
        let s1 = gaussian_sigma_classic(1.0, 0.5, 1e-5);
        let s2 = gaussian_sigma_classic(1.0, 1.0, 1e-5);
        assert!(s1 > s2);
        assert!(s2 > 0.0);
    }

    #[test]
    fn rr_keep_prob_limits() {
        assert!((randomized_response_keep_prob(1e-9) - 0.5).abs() < 1e-6);
        assert!(randomized_response_keep_prob(10.0) > 0.9999);
    }

    #[test]
    fn rr_flip_frequency() {
        let mut rng = StdRng::seed_from_u64(43);
        let eps = 1.0;
        let n = 100_000;
        let kept = (0..n).filter(|_| randomized_response(true, eps, &mut rng)).count();
        let frac = kept as f64 / n as f64;
        assert!((frac - randomized_response_keep_prob(eps)).abs() < 0.01);
    }
}
