#![warn(missing_docs)]
//! **GCON** — differentially private graph convolutional networks via
//! objective perturbation (Wei et al., ICDE 2025).
//!
//! This crate implements the paper's contribution end to end:
//!
//! 1. [`encoder`] — the edge-free MLP feature encoder (Algorithm 3,
//!    Sec. IV-C1) that compresses node features to dimension `d₁` using only
//!    public information (features + labels).
//! 2. [`propagation`] — PPR/APPR propagation (Eq. 9–11): the aggregate
//!    features `Z_m = R_m X` computed by the recursion
//!    `Z_m = (1−α) Ã Z_{m−1} + α X`, multi-scale concatenation
//!    `Z = (1/s)(Z_{m₁} ⊕ … ⊕ Z_{m_s})`.
//! 3. [`loss`] — the two strongly-convex per-coordinate losses of
//!    Appendix F (MultiLabel Soft Margin, pseudo-Huber) with closed-form
//!    suprema of their first three derivatives (`c₁, c₂, c₃` of Eq. 19).
//! 4. [`sensitivity`] — the closed-form sensitivity bounds of Lemma 2:
//!    `Ψ(Z_m) = 2(1−α)/α · (1 − (1−α)^m)` and `Ψ(Z) = (1/s) Σ Ψ(Z_{m_i})`.
//! 5. [`params`] — the Theorem 1 calibration chain (Eq. 17–24) producing the
//!    quadratic coefficient `Λ′` and the Erlang rate `β`.
//! 6. [`objective`] — the perturbed objective `L_priv` of Eq. (13) and its
//!    gradient.
//! 7. [`train`] — Algorithm 1: end-to-end training returning `Θ_priv` and a
//!    privacy report; optimizer-independent privacy per the Theorem 1 remark.
//! 8. [`infer`] — Algorithm 4: private inference (Eq. 16, one-hop only,
//!    using no edges beyond the query node's own) and public inference.
//! 9. [`verify`] — numerical verification of the Theorem 1 proof machinery
//!    (Eq. 40/47–49, Lemmas 7–8, exact dense `R_∞`): everything the privacy
//!    proof asserts about Jacobians and noise densities, made computable on
//!    small instances so the tests can check the algebra.
//! 10. [`refresh`] — the dynamic-graph substrate: [`refresh::ApprChain`]
//!     keeps the per-scale propagation iterates alive so a
//!     `gcon_graph::CsrDelta` re-derives only delta-affected rows (finite
//!     scales bitwise equal to full re-propagation; the `∞` scale refreshed
//!     with a certified staleness bound — by strictly local forward-push
//!     residual maintenance ([`refresh::push`]) for local edits, or a
//!     warm-started global solver otherwise, chosen by the touched-volume-
//!     aware [`propagation::plan_inf_refresh`]).
//!
//! The top-level entry points are [`GconConfig`], [`train::train_gcon`] and
//! [`TrainedGcon`].

pub mod encoder;
pub mod infer;
pub mod loss;
pub mod model;
pub mod noise;
pub mod objective;
pub mod params;
pub mod propagation;
pub mod refresh;
pub mod sensitivity;
pub mod serialize;
pub mod train;
pub mod tuning;
pub mod verify;

pub use loss::{ConvexLoss, LossBounds, LossKind};
pub use model::{GconConfig, PrivacyReport, TrainedGcon};
pub use params::TheoremOneParams;
pub use propagation::{InfRefreshKind, PprSolver, PropagationStep};
pub use refresh::{ApprChain, RefreshStats};
