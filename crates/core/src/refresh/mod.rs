//! Incremental propagation refresh for dynamic graphs.
//!
//! [`ApprChain`] keeps the per-scale iterates `Z_0, Z_1, …, Z_{max(m)}`
//! (and the `∞` limit, when requested) of the multi-scale propagation of
//! Eq. (10–11) alive between graph updates. After a
//! [`gcon_graph::CsrDelta`] patches the row-stochastic `Ã`,
//! [`ApprChain::refresh`] re-derives only the rows the delta can reach:
//!
//! - **Finite scales are re-derived bitwise.** The recursion
//!   `Z_k(i) = (1−α) Σ_j Ã(i,j) Z_{k−1}(j) + α X(i)` means row `i` of
//!   level `k` changes only if `Ã` row `i` changed, `X` row `i` changed,
//!   or a pattern-neighbor `j` changed at level `k−1`. The affected set
//!   therefore grows by one pattern-neighborhood per level
//!   (`C_k = C_{k−1} ∪ N(C_{k−1})`, seeded with the delta's touched rows),
//!   and each affected row is recomputed by a scalar routine that
//!   replicates the `spmm` kernel's per-row arithmetic **exactly** — same
//!   four-nonzero chunking, same accumulation order — so a refreshed chain
//!   is byte-identical to re-running
//!   [`propagate_multi`](crate::propagation::propagate_multi) from scratch, at
//!   `O(Σ_k |C_k| · nnz-per-row · d)` cost instead of `O(max(m) · nnz · d)`.
//! - **The `∞` scale is refreshed by the cheapest sound plan.** The chain
//!   maintains the residual `R = αX − (I−(1−α)Ã)Z_∞` alongside the limit
//!   iterate, and [`plan_inf_refresh`] resolves the configured
//!   [`PprSolver`] against the delta's touched-set volume: a strictly
//!   local edit repairs `R` on the touched rows and drains it with
//!   forward-push sweeps ([`push`]) at `O(vol(affected))` cost, while a
//!   volumetric edit warm-starts a global solver ([`refresh_ppr`]) from
//!   the previous fixed point (new rows seeded from `X`). Either way the
//!   result carries the certified max-norm staleness certificate of
//!   [`crate::propagation::ppr_staleness_bound`] instead of a bitwise
//!   guarantee — measured, never assumed.
//!
//! The memory cost of incrementality is explicit: the chain owns
//! `max(m)+1` dense `n × d` iterates (plus the `∞` limit), because a row
//! re-derivation at level `k` reads *neighbor* rows of level `k−1`, which a
//! concatenated output alone cannot provide.
//!
//! The contract callers must uphold: between `build`/`refresh` calls, `x`
//! rows outside the delta's touched/onboarded set must be bitwise
//! unchanged (row-local encoders — `encode_normalized` — guarantee this),
//! and `a_tilde` must be the patched matrix whose non-touched rows are
//! bitwise identical to the previous one (what [`gcon_graph::CsrDelta`]
//! produces).

use crate::propagation::{
    plan_inf_refresh, ppr_residual_into, propagate_ppr_cgnr, refresh_ppr, run_to_fixed_point,
    step_once_into, InfRefreshKind, PprSolver, PropagationStep,
};
use gcon_graph::Csr;
use gcon_linalg::Mat;

pub mod push;

/// The live per-scale iterate chain of a multi-scale propagation, the unit
/// of incremental refresh (see the [module docs](self)).
#[derive(Clone, Debug)]
pub struct ApprChain {
    alpha: f64,
    steps: Vec<PropagationStep>,
    solver: PprSolver,
    max_finite: usize,
    has_infinite: bool,
    /// `iterates[k]` is `Z_k`, for every `k ∈ [0, max_finite]` — including
    /// scales not requested in `steps`, which later levels need as inputs.
    iterates: Vec<Mat>,
    z_inf: Option<Mat>,
    /// Maintained residual `R = αX − (I−(1−α)Ã)Z_∞` (present iff `z_inf`
    /// is): the staleness certificate is a dense scan of it, and the push
    /// refresh repairs it in O(touched) instead of recomputing globally.
    r_inf: Option<Mat>,
    staleness_bound: f64,
    cumulative_staleness_bound: f64,
}

/// What a [`ApprChain::refresh`] call actually did — the observability the
/// serving layer and `bench_updates` report.
#[derive(Clone, Debug)]
pub struct RefreshStats {
    /// Rows re-derived across all finite levels (the incremental work; a
    /// full rebuild would have been `max_finite · n`).
    pub rows_recomputed: usize,
    /// Rows re-derived at each finite level `k = 1..=max(m)`, in level
    /// order — the affected-set growth profile (`C_k = C_{k−1} ∪ N(C_{k−1})`)
    /// a capacity planner watches.
    pub rows_per_level: Vec<usize>,
    /// The affected set at the deepest finite level, sorted ascending —
    /// exactly the rows whose finite-scale iterates may have changed (a
    /// serving layer patches only these store rows).
    pub affected: Vec<u32>,
    /// Iterations/sweeps of the `∞` refresh (push sweeps, power sweeps, or
    /// CGNR iterations; 0 when no `∞` scale or nothing to do).
    pub inf_iterations: usize,
    /// The solver the `∞` refresh **actually ran** — which can differ from
    /// the configured [`PprSolver`]: `Auto` resolves per delta, a CGNR or
    /// push attempt that exhausts its budget falls back to power sweeps,
    /// and `None` means no `∞` scale (or an empty delta skipped the solve).
    pub inf_solver: Option<InfRefreshKind>,
    /// Certified `‖Z_∞-block − exact‖_max` bound after this refresh
    /// (`0.0` when the chain has no `∞` scale — finite levels are exact).
    pub staleness_bound: f64,
    /// Sum of the certified bounds of every `∞` state this chain has
    /// published (build + each effective refresh, this one included). Each
    /// generation's iterate deviates from **its own** exact limit by at
    /// most that generation's bound, so by the triangle inequality this sum
    /// is the tolerance budget for comparing any two refresh histories that
    /// end at the same graph — e.g. one coalesced burst vs its sequential
    /// replay (`0.0` for finite-only chains, which are exact).
    pub cumulative_staleness_bound: f64,
}

impl ApprChain {
    /// Runs the full multi-scale sweep once and captures every iterate.
    ///
    /// The per-level arithmetic is the same `step_once_into` sweep that
    /// [`propagate_multi`] runs, so
    /// [`assemble`](Self::assemble)/[`assemble_concat`](Self::assemble_concat)
    /// of a freshly built chain are byte-identical to
    /// [`propagate_multi_with_solver`] / `concat_features_with_solver`
    /// outputs (the `∞` block to fixed-point/solver tolerance — it is the
    /// identical code path).
    ///
    /// [`propagate_multi`]: crate::propagation::propagate_multi
    /// [`propagate_multi_with_solver`]: crate::propagation::propagate_multi_with_solver
    pub fn build(
        a_tilde: &Csr,
        x: &Mat,
        alpha: f64,
        steps: &[PropagationStep],
        solver: PprSolver,
    ) -> Self {
        assert!(!steps.is_empty(), "ApprChain: need at least one step");
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "ApprChain: restart probability α must lie in (0, 1], got {alpha}"
        );
        assert_eq!(a_tilde.rows(), a_tilde.cols(), "ApprChain: Ã must be square");
        assert_eq!(a_tilde.rows(), x.rows(), "ApprChain: dimension mismatch");
        let max_finite = steps
            .iter()
            .filter_map(|s| match s {
                PropagationStep::Finite(m) => Some(*m),
                PropagationStep::Infinite => None,
            })
            .max()
            .unwrap_or(0);
        let has_infinite = steps.contains(&PropagationStep::Infinite);

        let mut iterates = Vec::with_capacity(max_finite + 1);
        iterates.push(x.clone());
        let mut scratch = Mat::zeros(0, 0);
        for _ in 1..=max_finite {
            let mut z = iterates.last().expect("chain starts at Z_0").clone();
            step_once_into(a_tilde, &mut z, &mut scratch, x, alpha);
            iterates.push(z);
        }

        let (z_inf, r_inf, staleness_bound) = if has_infinite {
            let z = if solver.resolves_to_cgnr(alpha, a_tilde) {
                propagate_ppr_cgnr(a_tilde, x, alpha)
            } else {
                // Continue from the deepest finite iterate, exactly like the
                // single-sweep propagate_multi (the recursion contracts to
                // the same limit from any start). PprSolver::Push lands here
                // too: a cold build has no residual to push against.
                let mut z = iterates.last().expect("chain starts at Z_0").clone();
                run_to_fixed_point(a_tilde, &mut z, &mut scratch, x, alpha);
                z
            };
            // Materialize the residual the push refresh maintains; the
            // returned bound is bit-identical to `ppr_staleness_bound`
            // (same arithmetic, one sparse product).
            let mut r = Mat::zeros(0, 0);
            let bound = ppr_residual_into(a_tilde, x, alpha, &z, &mut r);
            (Some(z), Some(r), bound)
        } else {
            (None, None, 0.0)
        };

        Self {
            alpha,
            steps: steps.to_vec(),
            solver,
            max_finite,
            has_infinite,
            iterates,
            z_inf,
            r_inf,
            staleness_bound,
            cumulative_staleness_bound: staleness_bound,
        }
    }

    /// Re-derives the chain after a graph delta. `a_tilde` is the patched
    /// row-stochastic matrix (possibly grown by onboarded nodes), `x` the
    /// matching encoded features, and `touched` the rows the delta changed
    /// (what [`gcon_graph::DeltaResult::touched`] reports — it already
    /// includes onboarded rows). See the module docs for the exactness
    /// contract: finite levels come out bitwise equal to a from-scratch
    /// rebuild; the `∞` level carries a refreshed staleness certificate.
    pub fn refresh(&mut self, a_tilde: &Csr, x: &Mat, touched: &[u32]) -> RefreshStats {
        let n = a_tilde.rows();
        assert_eq!(a_tilde.rows(), a_tilde.cols(), "ApprChain::refresh: Ã must be square");
        assert_eq!(x.rows(), n, "ApprChain::refresh: feature rows must match Ã");
        let d = self.iterates[0].cols();
        assert_eq!(x.cols(), d, "ApprChain::refresh: feature width changed");
        let n_old = self.iterates[0].rows();
        assert!(n >= n_old, "ApprChain::refresh: the node set never shrinks");

        // Early out: an empty effective delta with no onboarding means `Ã`
        // and `x` are bitwise unchanged (every row a byte copy), so the
        // whole chain — including the maintained residual and its
        // certificate — is still exact. A coalescing window whose
        // operations cancelled lands here and costs nothing.
        if touched.is_empty() && n == n_old {
            return RefreshStats {
                rows_recomputed: 0,
                rows_per_level: vec![0; self.max_finite],
                affected: Vec::new(),
                inf_iterations: 0,
                inf_solver: None,
                staleness_bound: self.staleness_bound,
                cumulative_staleness_bound: self.cumulative_staleness_bound,
            };
        }

        // Grow every iterate row-wise; old rows keep their bits, onboarded
        // rows start at zero (finite levels recompute them below; the warm
        // ∞ start seeds them from `x` instead).
        if n > n_old {
            for z in &mut self.iterates {
                *z = grow_rows(z, n);
            }
        }

        // Seed the affected set: delta-touched rows plus every onboarded
        // row (defensively — `DeltaResult::touched` already contains them).
        let mut mask = vec![false; n];
        let mut affected: Vec<u32> = Vec::new();
        for &u in touched {
            let ui = u as usize;
            assert!(ui < n, "ApprChain::refresh: touched row {u} out of range for {n} nodes");
            if !mask[ui] {
                mask[ui] = true;
                affected.push(u);
            }
        }
        for u in n_old as u32..n as u32 {
            if !mask[u as usize] {
                mask[u as usize] = true;
                affected.push(u);
            }
        }
        affected.sort_unstable();
        // The seed set (delta-touched ∪ onboarded) and its volume — what
        // the ∞ plan judges and the push repair re-derives.
        let seed = affected.clone();
        let touched_volume: usize = seed.iter().map(|&u| a_tilde.row(u as usize).0.len()).sum();

        // Level 0 is X itself: re-copy the seed rows (onboarded rows get
        // their features; touched old rows are bitwise no-ops by contract).
        for &u in &affected {
            self.iterates[0].row_mut(u as usize).copy_from_slice(x.row(u as usize));
        }

        let mut rows_recomputed = 0usize;
        let mut rows_per_level = Vec::with_capacity(self.max_finite);
        let mut saturated = affected.len() == n;
        for k in 1..=self.max_finite {
            // C_k = C_{k−1} ∪ N(C_{k−1}): one pattern-neighborhood of
            // growth per level. Ã's pattern is symmetric (undirected graph
            // plus self-loops), so out-neighbors are exactly the rows that
            // read a changed row.
            if !saturated {
                let mut grown = Vec::new();
                for &u in &affected {
                    let (cols, _) = a_tilde.row(u as usize);
                    for &v in cols {
                        if !mask[v as usize] {
                            mask[v as usize] = true;
                            grown.push(v);
                        }
                    }
                }
                affected.extend(grown);
                affected.sort_unstable();
                saturated = affected.len() == n;
            }
            let (prev, rest) = self.iterates.split_at_mut(k);
            let z_prev = &prev[k - 1];
            let z_k = &mut rest[0];
            for &u in &affected {
                recompute_row(a_tilde, z_prev, x, self.alpha, u as usize, z_k.row_mut(u as usize));
            }
            rows_recomputed += affected.len();
            rows_per_level.push(affected.len());
        }

        let (inf_iterations, inf_solver) = if self.has_infinite {
            let mut z = match self.z_inf.take() {
                Some(old) if old.rows() == n => old,
                Some(old) => {
                    // Seed onboarded rows from `x`: exact for isolated new
                    // nodes, and a contraction-friendly start otherwise.
                    let mut grown = grow_rows(&old, n);
                    for u in n_old..n {
                        grown.row_mut(u).copy_from_slice(x.row(u));
                    }
                    grown
                }
                None => unreachable!("has_infinite chains always carry z_inf"),
            };
            let mut r = match self.r_inf.take() {
                Some(old) if old.rows() == n => old,
                // Onboarded residual rows start at zero; they are part of
                // the seed set, so the push path repairs them and the
                // global paths recompute them wholesale.
                Some(old) => grow_rows(&old, n),
                None => unreachable!("has_infinite chains always carry r_inf"),
            };
            let plan = plan_inf_refresh(self.solver, self.alpha, a_tilde, touched_volume);
            let (iterations, used) = match plan {
                InfRefreshKind::Push => {
                    let outcome = push::push_refresh(a_tilde, x, self.alpha, &mut z, &mut r, &seed);
                    self.staleness_bound = outcome.staleness_bound;
                    self.z_inf = Some(z);
                    let used = if outcome.converged {
                        InfRefreshKind::Push
                    } else {
                        // Sweep budget ran out; push_refresh finished with
                        // global power sweeps and a global residual.
                        InfRefreshKind::Power
                    };
                    (outcome.sweeps, used)
                }
                InfRefreshKind::Power | InfRefreshKind::Cgnr => {
                    let forced = if plan == InfRefreshKind::Cgnr {
                        PprSolver::Cgnr
                    } else {
                        PprSolver::Power
                    };
                    let refreshed = refresh_ppr(a_tilde, x, self.alpha, &z, forced);
                    // Re-materialize the maintained residual; the returned
                    // bound is the same number `refresh_ppr` measured (the
                    // identical arithmetic over the identical iterate).
                    let bound = ppr_residual_into(a_tilde, x, self.alpha, &refreshed.z, &mut r);
                    debug_assert_eq!(bound.to_bits(), refreshed.staleness_bound.to_bits());
                    self.staleness_bound = bound;
                    self.z_inf = Some(refreshed.z);
                    let used = if refreshed.used_cgnr {
                        InfRefreshKind::Cgnr
                    } else {
                        InfRefreshKind::Power
                    };
                    (refreshed.iterations, used)
                }
            };
            self.r_inf = Some(r);
            self.cumulative_staleness_bound += self.staleness_bound;
            (iterations, Some(used))
        } else {
            (0, None)
        };

        RefreshStats {
            rows_recomputed,
            rows_per_level,
            affected,
            inf_iterations,
            inf_solver,
            staleness_bound: self.staleness_bound,
            cumulative_staleness_bound: self.cumulative_staleness_bound,
        }
    }

    /// The unweighted multi-scale concatenation in `steps` order — the
    /// [`propagate_multi`](crate::propagation::propagate_multi) layout.
    pub fn assemble(&self) -> Mat {
        let (n, d) = self.iterates[0].shape();
        let mut out = Mat::zeros(n, self.steps.len() * d);
        for (i, &s) in self.steps.iter().enumerate() {
            out.copy_into_columns(i * d, self.block(s));
        }
        out
    }

    /// The `1/s`-weighted concatenation of Eq. (11) — the
    /// [`concat_features`](crate::propagation::concat_features) layout that
    /// feeds the private head.
    pub fn assemble_concat(&self) -> Mat {
        let mut z = self.assemble();
        let inv_s = 1.0 / self.steps.len() as f64;
        z.map_inplace(|v| v * inv_s);
        z
    }

    fn block(&self, step: PropagationStep) -> &Mat {
        match step {
            PropagationStep::Finite(m) => &self.iterates[m],
            PropagationStep::Infinite => {
                self.z_inf.as_ref().expect("has_infinite chains always carry z_inf")
            }
        }
    }

    /// The stored iterate `Z_k` (`k ≤ max(m)` of the requested steps).
    pub fn iterate(&self, k: usize) -> &Mat {
        &self.iterates[k]
    }

    /// The `∞`-limit iterate, when the chain has an `∞` scale.
    pub fn z_inf(&self) -> Option<&Mat> {
        self.z_inf.as_ref()
    }

    /// Certified `‖Z_∞-block − exact‖_max` bound of the current state
    /// (`0.0` for finite-only chains, whose levels are exact).
    pub fn staleness_bound(&self) -> f64 {
        self.staleness_bound
    }

    /// Sum of the certified bounds of every `∞` state the chain has
    /// published since build — see
    /// [`RefreshStats::cumulative_staleness_bound`] for the compounding
    /// contract it certifies.
    pub fn cumulative_staleness_bound(&self) -> f64 {
        self.cumulative_staleness_bound
    }

    /// The maintained `∞` residual `R = αX − (I−(1−α)Ã)Z_∞`, when the chain
    /// has an `∞` scale. `staleness_bound() == ‖R‖_max / α` by construction.
    pub fn residual(&self) -> Option<&Mat> {
        self.r_inf.as_ref()
    }

    /// Number of graph nodes the chain currently covers.
    pub fn num_nodes(&self) -> usize {
        self.iterates[0].rows()
    }

    /// The requested propagation scales, in assembly order.
    pub fn steps(&self) -> &[PropagationStep] {
        &self.steps
    }

    /// The restart probability the chain propagates with.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

/// Copies `z` into a taller zero matrix (row growth for onboarding).
fn grow_rows(z: &Mat, new_rows: usize) -> Mat {
    let (rows, cols) = z.shape();
    debug_assert!(new_rows >= rows);
    let mut out = Mat::zeros(new_rows, cols);
    out.as_mut_slice()[..rows * cols].copy_from_slice(z.as_slice());
    out
}

/// Scalar re-derivation of one row of `Z_k = (1−α) Ã Z_{k−1} + α X`,
/// replicating the `spmm` kernel's per-row arithmetic bit for bit: the same
/// four-nonzero chunks accumulated as `(v₀x₀ + v₁x₁) + (v₂x₂ + v₃x₃)`, the
/// same sequential tail, then the same `·(1−α)` / `+ α·x` elementwise pair
/// that `step_once_into` applies. The kernel parallelizes and tier-dispatches
/// over *whole rows* under strict FP semantics, so per-row results are
/// independent of threading and tier — which is what makes this scalar
/// routine byte-identical to the batch sweep.
fn recompute_row(a_tilde: &Csr, z_prev: &Mat, x: &Mat, alpha: f64, i: usize, out: &mut [f64]) {
    out.fill(0.0);
    let (cols, vals) = a_tilde.row(i);
    let main = cols.len() - cols.len() % 4;
    for (cj, cv) in cols[..main].chunks_exact(4).zip(vals[..main].chunks_exact(4)) {
        let b0 = z_prev.row(cj[0] as usize);
        let b1 = z_prev.row(cj[1] as usize);
        let b2 = z_prev.row(cj[2] as usize);
        let b3 = z_prev.row(cj[3] as usize);
        let (v0, v1, v2, v3) = (cv[0], cv[1], cv[2], cv[3]);
        for ((((o, &x0), &x1), &x2), &x3) in out.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3) {
            *o += (v0 * x0 + v1 * x1) + (v2 * x2 + v3 * x3);
        }
    }
    for (&j, &v) in cols[main..].iter().zip(&vals[main..]) {
        let brow = z_prev.row(j as usize);
        for (o, &bv) in out.iter_mut().zip(brow) {
            *o += v * bv;
        }
    }
    let one_minus_alpha = 1.0 - alpha;
    for (o, &xi) in out.iter_mut().zip(x.row(i)) {
        let t = *o * one_minus_alpha;
        *o = t + alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagation::{concat_features_with_solver, propagate_multi_with_solver};
    use gcon_graph::normalize::row_stochastic_default;
    use gcon_graph::{generators, CsrDelta, Graph};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const P_DEFAULT: f64 = 0.5;

    fn setup(n: usize, m: usize, d: usize, seed: u64) -> (Graph, Csr, Mat) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi_gnm(n, m, &mut rng);
        let a = row_stochastic_default(&g);
        let mut x = Mat::uniform(n, d, 1.0, &mut rng);
        x.normalize_rows_l2();
        (g, a, x)
    }

    #[test]
    fn fresh_chain_matches_propagate_multi_bitwise() {
        let (_, a, x) = setup(30, 70, 5, 3);
        let steps =
            [PropagationStep::Finite(0), PropagationStep::Finite(2), PropagationStep::Finite(3)];
        let chain = ApprChain::build(&a, &x, 0.25, &steps, PprSolver::Power);
        let direct = propagate_multi_with_solver(&a, &x, 0.25, &steps, PprSolver::Power);
        assert_eq!(chain.assemble().as_slice(), direct.as_slice());
        let concat = concat_features_with_solver(&a, &x, 0.25, &steps, PprSolver::Power);
        assert_eq!(chain.assemble_concat().as_slice(), concat.as_slice());
    }

    #[test]
    fn fresh_chain_matches_propagate_multi_with_infinity() {
        let (_, a, x) = setup(24, 55, 4, 9);
        let steps = [PropagationStep::Finite(1), PropagationStep::Infinite];
        let chain = ApprChain::build(&a, &x, 0.3, &steps, PprSolver::Power);
        let direct = propagate_multi_with_solver(&a, &x, 0.3, &steps, PprSolver::Power);
        // The ∞ segment is the identical continuation code path: bitwise.
        assert_eq!(chain.assemble().as_slice(), direct.as_slice());
        assert!(chain.staleness_bound() < 1e-8, "converged limit certifies tightly");
    }

    #[test]
    fn refresh_is_bitwise_equal_to_rebuild_on_finite_chain() {
        let (mut g, a, x) = setup(40, 90, 6, 21);
        let steps = [PropagationStep::Finite(1), PropagationStep::Finite(3)];
        let mut chain = ApprChain::build(&a, &x, 0.2, &steps, PprSolver::Power);

        let u0 = (0..40u32).find(|&u| !g.neighbors(u).is_empty()).expect("graph has edges");
        let v0 = g.neighbors(u0)[0];
        let mut delta = CsrDelta::new();
        delta.insert_edge(2, 31).remove_edge(u0, v0).insert_edge(7, 19);
        let result = delta.apply(&mut g, &a, P_DEFAULT);
        let stats = chain.refresh(&result.a_tilde, &x, &result.touched);

        let rebuilt = ApprChain::build(&result.a_tilde, &x, 0.2, &steps, PprSolver::Power);
        assert_eq!(chain.assemble().as_slice(), rebuilt.assemble().as_slice());
        assert!(
            stats.rows_recomputed < 3 * 40,
            "a sparse delta must not recompute every row at every level"
        );
        assert_eq!(stats.staleness_bound, 0.0, "finite-only chains are exact");
    }

    #[test]
    fn refresh_with_onboarding_matches_rebuild_bitwise() {
        let (mut g, a, x) = setup(30, 60, 4, 14);
        let steps = [PropagationStep::Finite(0), PropagationStep::Finite(2)];
        let mut chain = ApprChain::build(&a, &x, 0.15, &steps, PprSolver::Power);

        let mut delta = CsrDelta::new();
        delta.add_nodes(2).insert_edge(30, 5).insert_edge(31, 30).insert_edge(12, 17);
        let result = delta.apply(&mut g, &a, P_DEFAULT);

        // Extend the features: old rows bitwise unchanged (the refresh
        // contract), new rows drawn fresh and unit-normalized in place.
        let mut rng = StdRng::seed_from_u64(99);
        let mut x2 = Mat::zeros(32, 4);
        x2.as_mut_slice()[..30 * 4].copy_from_slice(x.as_slice());
        for u in 30..32 {
            let mut row = [0.0_f64; 4];
            for v in row.iter_mut() {
                *v = rng.gen_range(-1.0..1.0);
            }
            let norm = row.iter().map(|v| v * v).sum::<f64>().sqrt();
            for (c, v) in row.iter().enumerate() {
                x2.set(u, c, v / norm);
            }
        }

        let stats = chain.refresh(&result.a_tilde, &x2, &result.touched);
        let rebuilt = ApprChain::build(&result.a_tilde, &x2, 0.15, &steps, PprSolver::Power);
        assert_eq!(chain.num_nodes(), 32);
        assert_eq!(chain.assemble_concat().as_slice(), rebuilt.assemble_concat().as_slice());
        assert!(stats.affected.len() >= 2, "onboarded rows are always affected");
    }

    #[test]
    fn refresh_sequence_of_deltas_stays_bitwise() {
        let (mut g, a, x) = setup(36, 80, 5, 7);
        let steps = [PropagationStep::Finite(2)];
        let mut chain = ApprChain::build(&a, &x, 0.4, &steps, PprSolver::Power);
        let mut current = a;
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..8 {
            let u = rng.gen_range(0..36u32);
            let v = rng.gen_range(0..36u32);
            if u == v {
                continue;
            }
            let mut delta = CsrDelta::new();
            if g.neighbors(u).contains(&v) {
                delta.remove_edge(u, v);
            } else {
                delta.insert_edge(u, v);
            }
            let result = delta.apply(&mut g, &current, P_DEFAULT);
            chain.refresh(&result.a_tilde, &x, &result.touched);
            current = result.a_tilde;
        }
        let rebuilt = ApprChain::build(&current, &x, 0.4, &steps, PprSolver::Power);
        assert_eq!(chain.assemble().as_slice(), rebuilt.assemble().as_slice());
    }

    #[test]
    fn refresh_with_infinity_stays_within_certificate() {
        let (mut g, a, x) = setup(32, 70, 4, 55);
        let steps = [PropagationStep::Finite(1), PropagationStep::Infinite];
        let alpha = 0.2;
        let mut chain = ApprChain::build(&a, &x, alpha, &steps, PprSolver::Power);

        // A guaranteed-absent edge: a present one would make the delta a
        // no-op, which the refresh now short-circuits entirely.
        let (eu, ev) = (0..32u32)
            .flat_map(|u| (u + 1..32).map(move |v| (u, v)))
            .find(|&(u, v)| !g.has_edge(u, v))
            .expect("graph is not complete");
        let mut delta = CsrDelta::new();
        delta.insert_edge(eu, ev);
        let result = delta.apply(&mut g, &a, P_DEFAULT);
        let stats = chain.refresh(&result.a_tilde, &x, &result.touched);
        assert!(stats.inf_iterations > 0);
        assert_eq!(stats.inf_solver, Some(crate::propagation::InfRefreshKind::Power));

        let rebuilt = ApprChain::build(&result.a_tilde, &x, alpha, &steps, PprSolver::Power);
        // Finite block: bitwise. ∞ block: both converged, certificates add.
        assert_eq!(chain.iterate(1).as_slice(), rebuilt.iterate(1).as_slice());
        let ours = chain.z_inf().expect("∞ chain");
        let theirs = rebuilt.z_inf().expect("∞ chain");
        let worst = ours
            .as_slice()
            .iter()
            .zip(theirs.as_slice())
            .fold(0.0_f64, |acc, (u, v)| acc.max((u - v).abs()));
        assert!(
            worst <= stats.staleness_bound + rebuilt.staleness_bound(),
            "∞ blocks differ by {worst}, certificates allow {} + {}",
            stats.staleness_bound,
            rebuilt.staleness_bound()
        );
    }

    fn absent_edge(g: &Graph, n: u32) -> (u32, u32) {
        (0..n)
            .flat_map(|u| (u + 1..n).map(move |v| (u, v)))
            .find(|&(u, v)| !g.has_edge(u, v))
            .expect("graph is not complete")
    }

    fn max_abs_gap(a: &Mat, b: &Mat) -> f64 {
        a.as_slice().iter().zip(b.as_slice()).fold(0.0_f64, |acc, (x, y)| acc.max((x - y).abs()))
    }

    #[test]
    fn push_refresh_stays_within_certificate_and_reports_push() {
        let (mut g, a, x) = setup(40, 90, 4, 77);
        let steps = [PropagationStep::Finite(1), PropagationStep::Infinite];
        let alpha = 0.2;
        let mut chain = ApprChain::build(&a, &x, alpha, &steps, PprSolver::Push);

        let (eu, ev) = absent_edge(&g, 40);
        let mut delta = CsrDelta::new();
        delta.insert_edge(eu, ev);
        let result = delta.apply(&mut g, &a, P_DEFAULT);
        let stats = chain.refresh(&result.a_tilde, &x, &result.touched);
        assert_eq!(stats.inf_solver, Some(crate::propagation::InfRefreshKind::Push));
        assert!(stats.inf_iterations > 0, "a local edit needs at least one push sweep");
        assert_eq!(stats.rows_per_level, vec![stats.affected.len()]);

        let rebuilt = ApprChain::build(&result.a_tilde, &x, alpha, &steps, PprSolver::Power);
        // Finite block: bitwise (push touches only the ∞ state).
        assert_eq!(chain.iterate(1).as_slice(), rebuilt.iterate(1).as_slice());
        let worst = max_abs_gap(chain.z_inf().expect("∞ chain"), rebuilt.z_inf().expect("∞ chain"));
        assert!(
            worst <= stats.staleness_bound + rebuilt.staleness_bound(),
            "push ∞ block off by {worst}, certificates allow {} + {}",
            stats.staleness_bound,
            rebuilt.staleness_bound()
        );
    }

    #[test]
    fn push_refresh_certificate_matches_global_residual() {
        // The maintained residual drifts from the true residual only by
        // incremental-update rounding; the certified bound must agree with
        // a from-scratch residual recompute to far below the threshold.
        let (mut g, a, x) = setup(36, 80, 5, 78);
        let steps = [PropagationStep::Infinite];
        let alpha = 0.15;
        let mut chain = ApprChain::build(&a, &x, alpha, &steps, PprSolver::Push);
        let mut current = a;
        for k in 0..4 {
            let (eu, ev) = absent_edge(&g, 36);
            let mut delta = CsrDelta::new();
            delta.insert_edge(eu, ev);
            let result = delta.apply(&mut g, &current, P_DEFAULT);
            let stats = chain.refresh(&result.a_tilde, &x, &result.touched);
            assert_eq!(
                stats.inf_solver,
                Some(crate::propagation::InfRefreshKind::Push),
                "edit {k}"
            );
            current = result.a_tilde;

            let mut r_true = Mat::zeros(0, 0);
            let true_bound = crate::propagation::ppr_residual_into(
                &current,
                &x,
                alpha,
                chain.z_inf().expect("∞ chain"),
                &mut r_true,
            );
            let drift = max_abs_gap(chain.residual().expect("maintained residual"), &r_true);
            assert!(drift < 1e-13, "maintained residual drifted by {drift} after edit {k}");
            assert!((stats.staleness_bound - true_bound).abs() < 1e-13);
        }
    }

    #[test]
    fn empty_delta_refresh_is_a_no_op() {
        let (g, a, x) = setup(28, 60, 4, 79);
        let steps = [PropagationStep::Finite(1), PropagationStep::Infinite];
        let mut chain = ApprChain::build(&a, &x, 0.25, &steps, PprSolver::Push);
        let z_before = chain.z_inf().expect("∞ chain").clone();
        let bound_before = chain.staleness_bound();
        let cumulative_before = chain.cumulative_staleness_bound();
        drop(g);

        let stats = chain.refresh(&a, &x, &[]);
        assert_eq!(stats.rows_recomputed, 0);
        assert_eq!(stats.rows_per_level, vec![0]);
        assert_eq!(stats.inf_iterations, 0);
        assert_eq!(stats.inf_solver, None);
        assert_eq!(stats.staleness_bound, bound_before);
        assert_eq!(stats.cumulative_staleness_bound, cumulative_before);
        assert_eq!(chain.z_inf().expect("∞ chain").as_slice(), z_before.as_slice());
    }

    #[test]
    fn cumulative_bound_compounds_across_refreshes() {
        let (mut g, a, x) = setup(30, 70, 4, 80);
        let steps = [PropagationStep::Infinite];
        let alpha = 0.3;
        let mut chain = ApprChain::build(&a, &x, alpha, &steps, PprSolver::Push);
        let mut expected = chain.staleness_bound();
        assert_eq!(chain.cumulative_staleness_bound(), expected);
        let mut current = a;
        for _ in 0..3 {
            let (eu, ev) = absent_edge(&g, 30);
            let mut delta = CsrDelta::new();
            delta.insert_edge(eu, ev);
            let result = delta.apply(&mut g, &current, P_DEFAULT);
            let stats = chain.refresh(&result.a_tilde, &x, &result.touched);
            expected += stats.staleness_bound;
            assert_eq!(stats.cumulative_staleness_bound, expected);
            current = result.a_tilde;
        }
        assert!(chain.cumulative_staleness_bound() >= chain.staleness_bound());
    }

    #[test]
    fn auto_routes_local_edit_to_push_and_volumetric_to_global() {
        let (mut g, a, x) = setup(200, 500, 3, 81);
        let steps = [PropagationStep::Infinite];
        let alpha = 0.25;
        let mut chain = ApprChain::build(&a, &x, alpha, &steps, PprSolver::Auto);

        // One absent edge: touched volume is two rows — strictly local.
        let (eu, ev) = absent_edge(&g, 200);
        let mut delta = CsrDelta::new();
        delta.insert_edge(eu, ev);
        let result = delta.apply(&mut g, &a, P_DEFAULT);
        let stats = chain.refresh(&result.a_tilde, &x, &result.touched);
        assert_eq!(stats.inf_solver, Some(crate::propagation::InfRefreshKind::Push));

        // A delta touching most rows: volumetric, must go global (power at
        // this α).
        let mut big = CsrDelta::new();
        for u in 0..199u32 {
            if !g.has_edge(u, u + 1) {
                big.insert_edge(u, u + 1);
            }
        }
        let result = big.apply(&mut g, &result.a_tilde, P_DEFAULT);
        let stats = chain.refresh(&result.a_tilde, &x, &result.touched);
        assert_eq!(stats.inf_solver, Some(crate::propagation::InfRefreshKind::Power));
    }
}
