//! Forward-push residual maintenance for the `∞`-scale PPR block.
//!
//! The PPR limit solves `(I − (1−α)Ã) Z_∞ = αX` (Eq. 5). This module keeps
//! the **residual** `R = αX − (I − (1−α)Ã) Z` materialized alongside the
//! iterate `Z` and turns a graph delta into strictly local work:
//!
//! 1. **Repair** — a delta that replaces `Ã` rows `T` (plus onboarded rows)
//!    changes `R` only on those rows (`R`'s row `i` reads `Ã` row `i`, `z`
//!    row `i`, the neighbor rows of `z`, and `x` row `i`; all of those are
//!    bitwise unchanged outside `T`). [`repair_residual_rows`] re-derives
//!    exactly the rows in `T` with a scalar replica of the `spmm` kernel's
//!    per-row arithmetic, at `O(vol(T)·d)` cost.
//! 2. **Push** — [`push_refresh`] then sweeps the rows whose residual
//!    exceeds the threshold `ε =` [`push_epsilon`]: pushing row `i` moves
//!    its residual mass into the iterate (`z_i += r_i`, `r_i ← 0`) and
//!    scatters `(1−α)·Ã(j,i)·r_i` onto the in-neighbors `j` (the pattern of
//!    `Ã` is symmetric — undirected graph plus self-loops — so in-neighbors
//!    of `i` are the columns of row `i`, and the value `Ã(j,i)` is fetched
//!    from row `j` by binary search). A full sweep over the active rows in
//!    ascending order is one Gauss–Seidel pass of the Richardson splitting
//!    of the strictly diagonally dominant M-matrix `I − (1−α)Ã`, so the
//!    residual contracts and the active set stays confined to the
//!    neighborhood the perturbation actually reaches: a local edit costs
//!    `O(vol(affected))` instead of the `Θ(nnz)` a single global warm sweep
//!    pays.
//!
//! **Stopping rule and certificate.** Sweeps stop once no row's residual
//! max-norm exceeds `ε = (1−α)·PPR_TOL` — the residual level a converged
//! power iteration leaves behind (its stop test `‖z⁺ − z‖_max < PPR_TOL`
//! implies `‖R(z⁺)‖_max = ‖(1−α)Ã(z − z⁺)‖_max < (1−α)·PPR_TOL`), so a
//! push-refreshed iterate certifies the **same** staleness bound
//! `‖R‖_max/α` as the global solvers. The bound is then *measured* with a
//! dense scan of the maintained residual — never assumed.
//!
//! **Determinism.** Repair and push are sequential scalar loops over a
//! sorted worklist with a fixed within-row accumulation order, so the
//! result is bitwise identical across `GCON_KERNEL_TIER` × `GCON_THREADS`
//! by construction — pinned by the serving fingerprint matrix.
//!
//! **Fallback.** If the active set fails to drain within the sweep budget
//! (a delta so large that push was the wrong plan), the refresh finishes
//! with warm global power sweeps and a global residual recompute — the
//! module honors the crate-wide contract that no code path returns an
//! unconverged solve.

use crate::propagation::{ppr_residual_into, run_to_fixed_point, PPR_TOL};
use gcon_graph::Csr;
use gcon_linalg::Mat;

/// Hard cap on push sweeps before falling back to global power sweeps; a
/// local perturbation drains in a handful, so hitting this means the plan
/// misjudged the delta.
const PUSH_MAX_SWEEPS: usize = 10_000;

/// The push stopping threshold on `‖R_row‖_max`: `(1−α)·PPR_TOL`, the
/// residual level a converged power iteration certifies (see the
/// [module docs](self)). Rows at or below `ε` are never pushed.
pub fn push_epsilon(alpha: f64) -> f64 {
    (1.0 - alpha) * PPR_TOL
}

/// What a [`push_refresh`] call did.
#[derive(Clone, Debug)]
pub struct PushOutcome {
    /// Full passes over the active set (the `inf_iterations` analogue).
    pub sweeps: usize,
    /// Individual row pushes performed across all sweeps — the actual
    /// volume-proportional work.
    pub rows_pushed: usize,
    /// Certified `‖z − Z_∞‖_max` bound measured on the maintained residual
    /// after the refresh (`‖R‖_max / α`).
    pub staleness_bound: f64,
    /// `false` when the sweep budget ran out and the warm power fallback
    /// finished the solve (the caller should report the power solver).
    pub converged: bool,
}

/// Re-derives rows `rows` of the residual `R = αX − (I − (1−α)Ã) z` in
/// place, replicating [`ppr_residual_into`]'s per-element arithmetic (and
/// the `spmm` kernel's four-nonzero row accumulation) bit for bit — the
/// repaired rows are byte-identical to a global residual recompute on the
/// same `(Ã, x, z)`.
///
/// `rows` must be the rows whose `Ã` (or `x`) rows changed; every other row
/// of a previously consistent residual is still exact, because `R`'s row
/// `i` depends only on row `i` of `Ã`, `x`, `z` and the neighbor rows of
/// `z` — all bitwise unchanged outside the touched set until pushes move
/// them.
pub fn repair_residual_rows(
    a_tilde: &Csr,
    x: &Mat,
    alpha: f64,
    z: &Mat,
    rows: &[u32],
    r: &mut Mat,
) {
    assert_eq!(z.shape(), x.shape(), "repair_residual_rows: iterate shape mismatch");
    assert_eq!(r.shape(), x.shape(), "repair_residual_rows: residual shape mismatch");
    for &u in rows {
        residual_row(a_tilde, z, x, alpha, u as usize, r.row_mut(u as usize));
    }
}

/// Scalar re-derivation of one residual row `R_i = αX_i − (z_i − (1−α)·(Ãz)_i)`,
/// with the `(Ãz)_i` accumulation replicating the `spmm` kernel's chunking
/// exactly (same shape as the finite-level `recompute_row`).
fn residual_row(a_tilde: &Csr, z: &Mat, x: &Mat, alpha: f64, i: usize, out: &mut [f64]) {
    out.fill(0.0);
    let (cols, vals) = a_tilde.row(i);
    let main = cols.len() - cols.len() % 4;
    for (cj, cv) in cols[..main].chunks_exact(4).zip(vals[..main].chunks_exact(4)) {
        let b0 = z.row(cj[0] as usize);
        let b1 = z.row(cj[1] as usize);
        let b2 = z.row(cj[2] as usize);
        let b3 = z.row(cj[3] as usize);
        let (v0, v1, v2, v3) = (cv[0], cv[1], cv[2], cv[3]);
        for ((((o, &x0), &x1), &x2), &x3) in out.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3) {
            *o += (v0 * x0 + v1 * x1) + (v2 * x2 + v3 * x3);
        }
    }
    for (&j, &v) in cols[main..].iter().zip(&vals[main..]) {
        let brow = z.row(j as usize);
        for (o, &bv) in out.iter_mut().zip(brow) {
            *o += v * bv;
        }
    }
    let one_minus_alpha = 1.0 - alpha;
    for ((o, &zi), &xi) in out.iter_mut().zip(z.row(i)).zip(x.row(i)) {
        let azi = *o;
        *o = alpha * xi - (zi - one_minus_alpha * azi);
    }
}

/// Incrementally refreshes `(z, r)` after a delta whose effective rows are
/// `seed` (sorted ascending; delta-touched plus onboarded rows): repairs the
/// residual on `seed`, then drives local forward-push sweeps until every
/// row's residual max-norm is at or below [`push_epsilon`]. See the
/// [module docs](self) for the algorithm, cost model, certificate, and the
/// global-power fallback on sweep exhaustion.
///
/// On entry `z` and `r` must be consistent for the **previous** graph
/// (`r = αX − (I−(1−α)Ã_old) z` outside `seed`), grown to the new node
/// count, with onboarded `z` rows seeded from `x` and onboarded `r` rows
/// zero (they are repaired here, being part of `seed`).
pub fn push_refresh(
    a_tilde: &Csr,
    x: &Mat,
    alpha: f64,
    z: &mut Mat,
    r: &mut Mat,
    seed: &[u32],
) -> PushOutcome {
    let n = a_tilde.rows();
    assert!(alpha > 0.0 && alpha <= 1.0, "push_refresh: α in (0, 1]");
    assert_eq!(a_tilde.rows(), a_tilde.cols(), "push_refresh: Ã must be square");
    assert_eq!(z.shape(), x.shape(), "push_refresh: iterate shape mismatch");
    assert_eq!(r.shape(), x.shape(), "push_refresh: residual shape mismatch");

    repair_residual_rows(a_tilde, x, alpha, z, seed, r);

    let eps = push_epsilon(alpha);
    let one_minus_alpha = 1.0 - alpha;
    let d = x.cols();
    let row_max = |r: &Mat, u: u32| -> f64 {
        r.row(u as usize).iter().fold(0.0_f64, |acc, v| acc.max(v.abs()))
    };

    // Active worklist: rows over threshold, processed in ascending order —
    // the fixed sweep order the bitwise-determinism contract pins.
    let mut active: Vec<u32> = seed.iter().copied().filter(|&u| row_max(r, u) > eps).collect();
    let mut candidate = vec![false; n];
    let mut candidates: Vec<u32> = Vec::new();
    let mut push_mass = vec![0.0_f64; d];
    let mut sweeps = 0usize;
    let mut rows_pushed = 0usize;
    // Scatter weights for row u, aligned with its column pattern: entry k
    // holds `(1−α)·Ã(cols[k], u)`. Ã is fixed for the whole call, so the
    // weights are built lazily on a row's first push (one binary search per
    // neighbor) and reused across sweeps — the same products in the same
    // order, just not re-fetched every sweep.
    let mut weights: Vec<Option<Box<[f64]>>> = vec![None; n];

    while !active.is_empty() && sweeps < PUSH_MAX_SWEEPS {
        sweeps += 1;
        // Every row that holds or receives residual mass this sweep is a
        // candidate for the next; collected with a mask, then sorted.
        for &u in &active {
            if !candidate[u as usize] {
                candidate[u as usize] = true;
                candidates.push(u);
            }
        }
        for &u in &active {
            let ui = u as usize;
            // Pushing z_i += r_i zeroes r_i exactly and scatters
            // (1−α)·Ã(j,i)·r_i onto the in-neighbors j — by pattern
            // symmetry, the columns of row i (self-loop included).
            let mut mass_max = 0.0_f64;
            for (m, &v) in push_mass.iter_mut().zip(r.row(ui)) {
                *m = v;
                mass_max = mass_max.max(v.abs());
            }
            if mass_max <= eps {
                // Drained by an earlier push this sweep.
                continue;
            }
            rows_pushed += 1;
            for (zi, &c) in z.row_mut(ui).iter_mut().zip(&push_mass) {
                *zi += c;
            }
            r.row_mut(ui).fill(0.0);
            let (cols, _) = a_tilde.row(ui);
            let w_row = weights[ui].get_or_insert_with(|| {
                cols.iter()
                    .map(|&j| {
                        let (jcols, jvals) = a_tilde.row(j as usize);
                        let p = jcols.partition_point(|&c| c < u);
                        debug_assert!(
                            p < jcols.len() && jcols[p] == u,
                            "push_refresh: Ã pattern must be symmetric"
                        );
                        one_minus_alpha * jvals[p]
                    })
                    .collect()
            });
            for (&j, &w) in cols.iter().zip(w_row.iter()) {
                let ji = j as usize;
                for (rj, &c) in r.row_mut(ji).iter_mut().zip(&push_mass) {
                    *rj += w * c;
                }
                if !candidate[ji] {
                    candidate[ji] = true;
                    candidates.push(j);
                }
            }
        }
        candidates.sort_unstable();
        active.clear();
        for &u in &candidates {
            candidate[u as usize] = false;
            if row_max(r, u) > eps {
                active.push(u);
            }
        }
        candidates.clear();
    }

    if !active.is_empty() {
        // Sweep budget exhausted: the delta was too volumetric for push.
        // Finish with warm global power sweeps and recompute the residual
        // globally so the maintained invariant holds again.
        eprintln!(
            "gcon-core: push refresh left {} rows over threshold after {PUSH_MAX_SWEEPS} sweeps; \
             falling back to warm power sweeps",
            active.len(),
        );
        let mut scratch = Mat::default();
        let power_sweeps = run_to_fixed_point(a_tilde, z, &mut scratch, x, alpha);
        let staleness_bound = ppr_residual_into(a_tilde, x, alpha, z, r);
        return PushOutcome {
            sweeps: sweeps + power_sweeps,
            rows_pushed,
            staleness_bound,
            converged: false,
        };
    }

    // Measured certificate: a dense scan of the maintained residual (no
    // sparse product — the whole point of maintaining R).
    let r_max = r.as_slice().iter().fold(0.0_f64, |acc, v| acc.max(v.abs()));
    PushOutcome { sweeps, rows_pushed, staleness_bound: r_max / alpha, converged: true }
}
