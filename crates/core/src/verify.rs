#![allow(clippy::needless_range_loop)] // index-parallel loops mirror the math
//! Numerical verification of the Theorem 1 proof machinery.
//!
//! The paper's privacy argument (Appendix I–L) rests on a chain of matrix
//! inequalities that the production code *trusts* but never evaluates: the
//! Jacobian of the map `Θ_priv → B` is `−B_j` per column (Eq. 48), its
//! perturbation across neighboring graphs is `E_j` (Eq. 49), and Lemmas 7–9
//! bound the determinant ratio, the noise-density ratio and the tail event
//! respectively. This module makes every one of those objects computable on
//! small instances, so the test suite can check the closed-form bounds
//! *numerically* rather than trusting the algebra:
//!
//! - [`noise_from_theta`] — the inverse map `B(Θ)` of Eq. (40)/(47); at the
//!   trained `Θ_priv` it must reproduce the sampled noise (stationarity).
//! - [`hessian_block`] — `B_j = Σᵢ zᵢzᵢᵀ ℓ″(zᵢᵀθ_j; y_ij) + n₁(Λ̄+Λ′)I`
//!   (Eq. 48), the `j`-th diagonal block of the full Jacobian.
//! - [`hessian_perturbation`] — `E_j` of Eq. (49), the difference of the
//!   data-dependent parts across a neighboring feature matrix `Z'`.
//! - [`lemma7_check`] — evaluates both sides of the Lemma 7 inequalities:
//!   the singular-value sum `Σσᵢ(E_j) ≤ (2c₂ + c₃c_θ)ψ(Z)` and the
//!   determinant ratio `|det(B_j+E_j)|/|det(B_j)| ≤ (1 + …)^d`.
//! - [`lemma8_check`] — `‖b′_j − b_j‖₂ ≤ (c₁ + c₂c_θ)ψ(Z)`.
//! - [`exact_r_infinity`] — the dense `R_∞ = α(I − (1−α)Ã)⁻¹` of Eq. (5) via
//!   LU inversion, cross-validating the fixed-point recursion in
//!   [`crate::propagation`].
//!
//! Everything here is `O(n²)`–`O(n³)` dense math: it is meant for the test
//! and verification harness, not the training path.

use crate::loss::ConvexLoss;
use gcon_graph::Csr;
use gcon_linalg::eigen::singular_values;
use gcon_linalg::lu::Lu;
use gcon_linalg::{ops, Mat};

/// The inverse noise map of Eq. (40)/(47): given `Θ`, the noise matrix `B`
/// for which `Θ` is stationary for `L_priv(·; Z, Y)`:
///
/// ```text
/// b_j = −Σᵢ zᵢ ℓ′(zᵢᵀθ_j; y_ij) − n₁(Λ̄+Λ′) θ_j
/// ```
///
/// Shapes: `z` is `n₁ × d`, `y` is `n₁ × c`, `theta` is `d × c`; returns
/// `d × c`.
pub fn noise_from_theta(
    z: &Mat,
    y: &Mat,
    loss: &ConvexLoss,
    lambda_total: f64,
    theta: &Mat,
) -> Mat {
    assert_eq!(z.rows(), y.rows(), "noise_from_theta: Z/Y row mismatch");
    assert_eq!(z.cols(), theta.rows(), "noise_from_theta: Z/Θ dim mismatch");
    assert_eq!(y.cols(), theta.cols(), "noise_from_theta: Y/Θ class mismatch");
    let n1 = z.rows() as f64;
    let scores = ops::matmul(z, theta); // n₁ × c
    let mut dscores = Mat::zeros(scores.rows(), scores.cols());
    for i in 0..scores.rows() {
        let srow = scores.row(i);
        let yrow = y.row(i);
        let drow = dscores.row_mut(i);
        for ((d, &s), &yv) in drow.iter_mut().zip(srow).zip(yrow) {
            *d = loss.d1(s, yv);
        }
    }
    // −Zᵀ·ℓ′ − n₁λΘ
    let mut b = ops::t_matmul(z, &dscores);
    ops::add_scaled_assign(&mut b, n1 * lambda_total, theta);
    ops::scale(&b, -1.0)
}

/// The Hessian block `B_j` of Eq. (48) for class column `j`:
/// `Σᵢ zᵢzᵢᵀ ℓ″(zᵢᵀθ_j; y_ij) + n₁(Λ̄+Λ′) I_d`. The Jacobian of the map
/// `θ_j → b_j` is `−B_j`.
pub fn hessian_block(
    z: &Mat,
    y: &Mat,
    loss: &ConvexLoss,
    lambda_total: f64,
    theta: &Mat,
    j: usize,
) -> Mat {
    assert!(j < theta.cols(), "hessian_block: class index out of range");
    let n1 = z.rows();
    let d = z.cols();
    let theta_j = theta.col(j);
    let mut h = Mat::zeros(d, d);
    for i in 0..n1 {
        let zi = z.row(i);
        let s: f64 = zi.iter().zip(&theta_j).map(|(a, b)| a * b).sum();
        let w = loss.d2(s, y.get(i, j));
        for a in 0..d {
            let za = zi[a] * w;
            if za == 0.0 {
                continue;
            }
            for bcol in 0..d {
                h.add_at(a, bcol, za * zi[bcol]);
            }
        }
    }
    for a in 0..d {
        h.add_at(a, a, n1 as f64 * lambda_total);
    }
    h
}

/// The perturbation `E_j` of Eq. (49): the data-dependent part of the
/// Hessian on the neighboring features `Z'` minus the part on `Z`, at the
/// same `Θ`. (The regularizer cancels, so `B'_j = B_j + E_j`.)
pub fn hessian_perturbation(
    z: &Mat,
    z_prime: &Mat,
    y: &Mat,
    loss: &ConvexLoss,
    theta: &Mat,
    j: usize,
) -> Mat {
    assert_eq!(z.shape(), z_prime.shape(), "hessian_perturbation: Z/Z' shape mismatch");
    let h = hessian_block(z, y, loss, 0.0, theta, j);
    let hp = hessian_block(z_prime, y, loss, 0.0, theta, j);
    // lambda_total = 0 keeps only the data term; guard: hessian_block asserts
    // nothing about positivity of lambda, so 0.0 is fine here.
    ops::sub(&hp, &h)
}

/// The actual (not worst-case) row-wise feature distance
/// `ψ = Σᵢ ‖z′ᵢ − zᵢ‖₂` of Definition 3, evaluated on the *labeled* rows the
/// objective sums over.
pub fn psi_observed(z: &Mat, z_prime: &Mat) -> f64 {
    assert_eq!(z.shape(), z_prime.shape(), "psi_observed: shape mismatch");
    let mut psi = 0.0;
    for i in 0..z.rows() {
        let a = z.row(i);
        let b = z_prime.row(i);
        psi += a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt();
    }
    psi
}

/// Both sides of the two Lemma 7 inequalities for one class column.
#[derive(Debug, Clone, Copy)]
pub struct Lemma7Check {
    /// `Σᵢ σᵢ(E_j)` — the measured singular-value sum of the perturbation.
    pub sv_sum: f64,
    /// The closed-form cap `(2c₂ + c₃‖θ_j‖₂) ψ` on that sum (Eq. 56, with
    /// the *observed* `‖θ_j‖` in place of the worst-case `c_θ`).
    pub sv_bound: f64,
    /// `ln |det(B_j + E_j)| − ln |det(B_j)|` — the measured log determinant
    /// ratio of the Jacobians.
    pub ln_det_ratio: f64,
    /// The closed-form cap `d · ln(1 + sv_bound / (d n₁ (Λ̄+Λ′)))` (Eq. 57).
    pub ln_det_bound: f64,
}

impl Lemma7Check {
    /// True when both measured quantities respect their closed-form caps
    /// (up to `tol` slack for floating-point noise).
    pub fn holds(&self, tol: f64) -> bool {
        self.sv_sum <= self.sv_bound + tol && self.ln_det_ratio <= self.ln_det_bound + tol
    }
}

/// Evaluates the Lemma 7 inequalities numerically for class column `j`.
///
/// `z` / `z_prime` are the aggregate features of the labeled rows on the
/// neighboring graphs; `theta` is any parameter point with
/// `‖θ_j‖₂ ≤ c_θ` (the lemma's case (i)); `lambda_total` is `Λ̄ + Λ′`.
pub fn lemma7_check(
    z: &Mat,
    z_prime: &Mat,
    y: &Mat,
    loss: &ConvexLoss,
    lambda_total: f64,
    theta: &Mat,
    j: usize,
) -> Lemma7Check {
    let n1 = z.rows() as f64;
    let d = z.cols() as f64;
    let bounds = loss.bounds();
    let theta_j_norm = {
        let col = theta.col(j);
        col.iter().map(|v| v * v).sum::<f64>().sqrt()
    };
    let psi = psi_observed(z, z_prime);

    let e = hessian_perturbation(z, z_prime, y, loss, theta, j);
    let sv = singular_values(&e, 1e-12);
    let sv_sum: f64 = sv.iter().sum();
    let sv_bound = (2.0 * bounds.c2 + bounds.c3 * theta_j_norm) * psi;

    let b = hessian_block(z, y, loss, lambda_total, theta, j);
    let b_prime = hessian_block(z_prime, y, loss, lambda_total, theta, j);
    let ln_det_b = Lu::new(&b).ln_abs_det();
    let ln_det_bp = Lu::new(&b_prime).ln_abs_det();
    let ln_det_ratio = ln_det_bp - ln_det_b;
    let ln_det_bound = d * (1.0 + sv_bound / (d * n1 * lambda_total)).ln();

    Lemma7Check { sv_sum, sv_bound, ln_det_ratio, ln_det_bound }
}

/// Both sides of the Lemma 8 inequality for one class column.
#[derive(Debug, Clone, Copy)]
pub struct Lemma8Check {
    /// Measured `‖b′_j − b_j‖₂` across the neighboring datasets.
    pub noise_shift: f64,
    /// The closed-form cap `(c₁ + c₂‖θ_j‖₂) ψ` (with the observed norm).
    pub bound: f64,
}

impl Lemma8Check {
    /// True when the measured shift respects the cap.
    pub fn holds(&self, tol: f64) -> bool {
        self.noise_shift <= self.bound + tol
    }
}

/// Evaluates the Lemma 8 inequality numerically for class column `j`.
pub fn lemma8_check(
    z: &Mat,
    z_prime: &Mat,
    y: &Mat,
    loss: &ConvexLoss,
    lambda_total: f64,
    theta: &Mat,
    j: usize,
) -> Lemma8Check {
    let bounds = loss.bounds();
    let psi = psi_observed(z, z_prime);
    let theta_j_norm = {
        let col = theta.col(j);
        col.iter().map(|v| v * v).sum::<f64>().sqrt()
    };
    let b = noise_from_theta(z, y, loss, lambda_total, theta);
    let bp = noise_from_theta(z_prime, y, loss, lambda_total, theta);
    let mut shift = 0.0;
    for a in 0..b.rows() {
        let d = bp.get(a, j) - b.get(a, j);
        shift += d * d;
    }
    Lemma8Check { noise_shift: shift.sqrt(), bound: (bounds.c1 + bounds.c2 * theta_j_norm) * psi }
}

/// The exact dense PPR matrix `R_∞ = α (I − (1−α) Ã)⁻¹` of Eq. (5), via LU
/// inversion. `O(n³)`; verification only.
///
/// # Panics
/// Panics if `α ∉ (0, 1]` (at `α = 1` this is just the identity) or if the
/// inversion fails — which Lemma 3 proves cannot happen for a
/// row-stochastic `Ã`.
pub fn exact_r_infinity(a_tilde: &Csr, alpha: f64) -> Mat {
    assert!(alpha > 0.0 && alpha <= 1.0, "exact_r_infinity: α must lie in (0, 1]");
    let n = a_tilde.rows();
    let dense = a_tilde.to_dense();
    let system = Mat::from_fn(n, n, |i, j| {
        let id = if i == j { 1.0 } else { 0.0 };
        id - (1.0 - alpha) * dense.get(i, j)
    });
    let inv = Lu::new(&system).inverse().expect("I − (1−α)Ã is invertible by Lemma 3");
    ops::scale(&inv, alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{ConvexLoss, LossKind};
    use crate::propagation::{propagate, PropagationStep};
    use gcon_graph::generators;
    use gcon_graph::normalize::row_stochastic_default;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Small labeled problem on neighboring graphs: returns (Z, Z', Y).
    fn neighboring_features(seed: u64, alpha: f64, m: usize) -> (Mat, Mat, Mat) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi_gnm(12, 24, &mut rng);
        // Remove the first existing edge we find to get the neighbor D'.
        let (u, v) = (0..12u32)
            .flat_map(|a| g.neighbors(a).iter().map(move |&b| (a, b)))
            .find(|&(a, b)| a < b)
            .expect("graph has an edge");
        let g_prime = g.with_edge_removed(u, v);
        let mut x = Mat::uniform(12, 4, 1.0, &mut rng);
        x.normalize_rows_l2();
        let z = propagate(&row_stochastic_default(&g), &x, alpha, PropagationStep::Finite(m));
        let zp =
            propagate(&row_stochastic_default(&g_prime), &x, alpha, PropagationStep::Finite(m));
        let mut y = Mat::zeros(12, 3);
        for i in 0..12 {
            y.set(i, i % 3, 1.0);
        }
        (z, zp, y)
    }

    #[test]
    fn noise_map_is_stationarity_inverse() {
        // Minimizing L_priv with noise B, then applying noise_from_theta at
        // the minimizer, must reproduce B (Eq. 40 roundtrip).
        let (z, _, y) = neighboring_features(5, 0.5, 2);
        let loss = ConvexLoss::new(LossKind::MultiLabelSoftMargin, 3);
        let lambda_total = 0.6;
        let mut rng = StdRng::seed_from_u64(9);
        let b = Mat::uniform(4, 3, 0.4, &mut rng);
        let obj = crate::objective::PerturbedObjective::new(&z, &y, loss, lambda_total, &b);
        let opt_cfg =
            crate::model::OptimizerConfig { lr: 0.05, max_iters: 50_000, grad_tol: 1e-11 };
        let (theta, _, _) = crate::train::minimize(&obj, Mat::zeros(4, 3), &opt_cfg);
        let loss2 = ConvexLoss::new(LossKind::MultiLabelSoftMargin, 3);
        let recovered = noise_from_theta(&z, &y, &loss2, lambda_total, &theta);
        // noise_from_theta uses the un-normalized stationarity (Eq. 47);
        // PerturbedObjective divides by n1, so B enters as B/n1 — match them.
        for i in 0..4 {
            for j in 0..3 {
                assert!(
                    (recovered.get(i, j) - b.get(i, j)).abs() < 1e-5,
                    "B roundtrip ({i},{j}): {} vs {}",
                    recovered.get(i, j),
                    b.get(i, j)
                );
            }
        }
    }

    #[test]
    fn hessian_block_matches_finite_difference_jacobian() {
        let (z, _, y) = neighboring_features(7, 0.5, 1);
        let loss = ConvexLoss::new(LossKind::PseudoHuber { delta: 0.3 }, 3);
        let lambda_total = 0.4;
        let mut rng = StdRng::seed_from_u64(13);
        let theta = Mat::uniform(4, 3, 0.5, &mut rng);
        let j = 1;
        let h = hessian_block(&z, &y, &loss, lambda_total, &theta, j);
        // J(θ_j → b_j) = −B_j: check each column by finite differences.
        let eps = 1e-6;
        for a in 0..4 {
            let mut tp = theta.clone();
            tp.add_at(a, j, eps);
            let mut tm = theta.clone();
            tm.add_at(a, j, -eps);
            let bp = noise_from_theta(&z, &y, &loss, lambda_total, &tp);
            let bm = noise_from_theta(&z, &y, &loss, lambda_total, &tm);
            for r in 0..4 {
                let fd = (bp.get(r, j) - bm.get(r, j)) / (2.0 * eps);
                assert!(
                    (fd + h.get(r, a)).abs() < 1e-4,
                    "J({r},{a}) fd {fd} vs −B {}",
                    -h.get(r, a)
                );
            }
        }
    }

    #[test]
    fn lemma7_bounds_hold_on_random_neighbors() {
        for seed in [1u64, 2, 3, 4, 5] {
            let (z, zp, y) = neighboring_features(seed, 0.4, 3);
            let loss = ConvexLoss::new(LossKind::MultiLabelSoftMargin, 3);
            let mut rng = StdRng::seed_from_u64(seed + 100);
            let theta = Mat::uniform(4, 3, 0.8, &mut rng);
            for j in 0..3 {
                let chk = lemma7_check(&z, &zp, &y, &loss, 0.5, &theta, j);
                assert!(
                    chk.holds(1e-9),
                    "seed {seed} class {j}: sv {}≤{}? det {}≤{}?",
                    chk.sv_sum,
                    chk.sv_bound,
                    chk.ln_det_ratio,
                    chk.ln_det_bound
                );
            }
        }
    }

    #[test]
    fn lemma7_detects_identical_graphs_as_zero() {
        let (z, _, y) = neighboring_features(11, 0.5, 2);
        let loss = ConvexLoss::new(LossKind::MultiLabelSoftMargin, 3);
        let theta = Mat::zeros(4, 3);
        let chk = lemma7_check(&z, &z, &y, &loss, 0.5, &theta, 0);
        assert!(chk.sv_sum.abs() < 1e-9);
        assert!(chk.ln_det_ratio.abs() < 1e-9);
    }

    #[test]
    fn lemma8_bound_holds_on_random_neighbors() {
        for seed in [21u64, 22, 23, 24, 25] {
            for kind in [LossKind::MultiLabelSoftMargin, LossKind::PseudoHuber { delta: 0.2 }] {
                let (z, zp, y) = neighboring_features(seed, 0.6, 2);
                let loss = ConvexLoss::new(kind, 3);
                let mut rng = StdRng::seed_from_u64(seed + 200);
                let theta = Mat::uniform(4, 3, 1.0, &mut rng);
                for j in 0..3 {
                    let chk = lemma8_check(&z, &zp, &y, &loss, 0.5, &theta, j);
                    assert!(
                        chk.holds(1e-9),
                        "{kind:?} seed {seed} class {j}: {} > {}",
                        chk.noise_shift,
                        chk.bound
                    );
                }
            }
        }
    }

    #[test]
    fn exact_ppr_matches_fixed_point_recursion() {
        let mut rng = StdRng::seed_from_u64(31);
        let g = generators::erdos_renyi_gnm(15, 30, &mut rng);
        let a = row_stochastic_default(&g);
        let mut x = Mat::uniform(15, 5, 1.0, &mut rng);
        x.normalize_rows_l2();
        for &alpha in &[0.2, 0.5, 0.8] {
            let r_inf = exact_r_infinity(&a, alpha);
            let z_exact = ops::matmul(&r_inf, &x);
            let z_iter = propagate(&a, &x, alpha, PropagationStep::Infinite);
            for i in 0..15 {
                for j in 0..5 {
                    assert!(
                        (z_exact.get(i, j) - z_iter.get(i, j)).abs() < 1e-7,
                        "α={alpha} ({i},{j}): exact {} vs iter {}",
                        z_exact.get(i, j),
                        z_iter.get(i, j)
                    );
                }
            }
        }
    }

    #[test]
    fn exact_r_infinity_rows_sum_to_one() {
        // Lemma 1 second bullet for R_∞, checked on the dense inverse.
        let mut rng = StdRng::seed_from_u64(37);
        let g = generators::erdos_renyi_gnm(10, 20, &mut rng);
        let r = exact_r_infinity(&row_stochastic_default(&g), 0.3);
        for i in 0..10 {
            let s: f64 = r.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-10, "row {i} sums to {s}");
        }
    }

    #[test]
    fn exact_r_infinity_entries_non_negative() {
        let mut rng = StdRng::seed_from_u64(41);
        let g = generators::erdos_renyi_gnm(10, 18, &mut rng);
        let r = exact_r_infinity(&row_stochastic_default(&g), 0.4);
        for v in r.as_slice() {
            assert!(*v >= -1e-12);
        }
    }

    #[test]
    fn exact_r_infinity_alpha_one_is_identity() {
        let g = generators::cycle(6);
        let r = exact_r_infinity(&row_stochastic_default(&g), 1.0);
        for i in 0..6 {
            for j in 0..6 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((r.get(i, j) - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn psi_observed_is_zero_for_identical_and_positive_for_neighbors() {
        let (z, zp, _) = neighboring_features(43, 0.5, 2);
        assert_eq!(psi_observed(&z, &z), 0.0);
        assert!(psi_observed(&z, &zp) > 0.0);
    }

    #[test]
    fn psi_observed_below_lemma2_closed_form() {
        // The measured ψ on real neighboring graphs must sit below Ψ(Z_m).
        for seed in [51u64, 52, 53] {
            for &(alpha, m) in &[(0.3, 2usize), (0.5, 5), (0.8, 10)] {
                let (z, zp, _) = neighboring_features(seed, alpha, m);
                let psi = psi_observed(&z, &zp);
                let cap = crate::sensitivity::psi_zm(alpha, PropagationStep::Finite(m));
                assert!(psi <= cap + 1e-9, "seed {seed} α={alpha} m={m}: {psi} > {cap}");
            }
        }
    }
}
