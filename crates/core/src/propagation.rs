//! PPR / APPR propagation (Sec. II-B and IV-C2 of the paper).
//!
//! The propagation matrix `R_m` of Eq. (9) is never materialized. For finite
//! `m` (APPR) the aggregate features satisfy the recursion of Eq. (4):
//!
//! ```text
//! Z_0 = X,    Z_m = (1−α) Ã Z_{m−1} + α X
//! ```
//!
//! For `m = ∞` (PPR, Eq. 5) the same recursion is run to its fixed point:
//! `Z_∞ = α (I − (1−α)Ã)^{-1} X`, which exists because `I − (1−α)Ã` is
//! invertible (Lemma 3), and the iteration contracts at rate `(1−α)`.
//!
//! Two execution modes sit on the shared runtime layer:
//!
//! - [`propagate_into`] runs the recursion between two caller-owned
//!   ping-pong buffers, so a training loop re-propagating every epoch
//!   performs no per-step allocation.
//! - [`propagate_multi`] computes **all** requested scales `{m₁ < … < m_s}`
//!   in a *single* sweep of the recursion, snapshotting `Z_{m_i}` into the
//!   concatenated output as each scale is passed. The recursion makes
//!   `Z_{m_s}` a strict continuation of `Z_{m_1}`, so the sweep costs
//!   `max(m_i)` sparse products instead of `Σ m_i` (PPR `∞` is handled as
//!   the final fixed-point segment). [`spmm_ops_performed`] exposes the
//!   product counter the tests and benches use to verify this.
//!
//! # Solving the PPR limit: solver selection and fallback semantics
//!
//! The `m = ∞` system `(I − (1−α)Ã) Z_∞ = α X` has two solvers:
//!
//! - **Power iteration** (the fixed-point recursion above): effective rate
//!   `(1−α)·λ₂(Ã)`, unconditionally convergent, no extra memory — the right
//!   choice whenever the restart probability is moderate *or* the graph has
//!   a real spectral gap (expanders stay fast even at tiny `α`).
//! - **Block CGNR** ([`propagate_ppr_cgnr`]): all feature columns are solved
//!   simultaneously through `gcon_linalg::solve::block_cgnr`, paying one
//!   `Ã` and one `Ãᵀ` product per iteration *total* (the `Ãᵀ` application
//!   runs the pooled row-block kernel on a precomputed [`Csr::transpose`],
//!   not a per-column scatter). Its product count scales with the condition
//!   number `≈ (2−α)/α` independent of the spectral gap, so it wins on
//!   poorly-connected graphs at small `α` — the regime where the power
//!   iteration needs `O(log(1/tol)/α)` sweeps.
//!
//! [`PprSolver`] selects between them; the default [`PprSolver::Auto`] is
//! **spectral-gap aware**: for `α <` [`PPR_CGNR_ALPHA_MAX`] it estimates
//! `λ₂(Ã)` with a short deflated power iteration ([`estimate_lambda2`]) and
//! feeds it to the pure decision function [`auto_chooses_cgnr`], which
//! compares the predicted sparse-product counts of both solvers (power:
//! `ln(1/tol)/−ln((1−α)λ₂)`; CGNR: `∝ √κ_eff` with
//! `κ_eff = (1+(1−α)λ₂)/(1−(1−α)λ₂)`). Expanders therefore stay on the
//! power iteration even at tiny `α`, while poorly-connected graphs (rings,
//! chains) switch to CGNR. For `α ≥` [`PPR_CGNR_ALPHA_MAX`] the power
//! iteration is chosen without estimating the spectrum (the model's
//! crossover lies below that threshold even in the gapless `λ₂ → 1` limit),
//! so common restart probabilities pay zero selection overhead.
//! `GconConfig::ppr_solver` overrides the choice for training/inference
//! pipelines. **Convergence failure is a first-class outcome**: if any
//! column of the CGNR solve fails to reach tolerance within its iteration
//! budget, a warning is logged and the power iteration — which cannot fail
//! to converge on a row-stochastic `Ã` — finishes the solve, warm-started
//! from the partial CGNR iterate. No code path returns an unconverged
//! solve.
//!
//! # Incremental refresh
//!
//! [`refresh_ppr`] re-solves the `∞` limit warm-started from a previous
//! iterate after a graph delta, and [`ppr_staleness_bound`] turns any
//! iterate's residual into a certified `‖Z − Z_∞‖_max` bound (the serving
//! staleness contract). The finite-step refresh machinery lives in
//! [`crate::refresh`].

use gcon_graph::Csr;
use gcon_linalg::solve::{
    block_cgnr, block_cgnr_warm, BlockLinearOperator, LinearOperator, SolveStats,
};
use gcon_linalg::{ops, Mat};

/// A propagation step count `m ∈ [0, ∞]` (Eq. 9).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PropagationStep {
    /// APPR with `m` finite steps; `Finite(0)` is the identity (`R_0 = I`).
    Finite(usize),
    /// PPR — the `m → ∞` limit.
    Infinite,
}

impl PropagationStep {
    /// Parses `"∞"`/`"inf"` or an integer (harness convenience).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "inf" | "∞" | "infinity" => Some(Self::Infinite),
            _ => s.parse::<usize>().ok().map(Self::Finite),
        }
    }
}

impl std::fmt::Display for PropagationStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Finite(m) => write!(f, "{m}"),
            Self::Infinite => write!(f, "∞"),
        }
    }
}

/// Convergence tolerance for the PPR fixed point (max-abs change per sweep).
/// `pub(crate)` so the push refresh (`crate::refresh::push`) can derive its
/// residual threshold `ε` from the same certified-staleness budget.
pub(crate) const PPR_TOL: f64 = 1e-10;
/// Hard cap on PPR sweeps; the geometric rate `(1−α)` makes this generous.
const PPR_MAX_ITERS: usize = 10_000;
/// Relative tolerance of the CGNR solve (judged on the true residual).
const PPR_CGNR_TOL: f64 = 1e-12;
/// Below this restart probability [`PprSolver::Auto`] picks CGNR. The power
/// iteration's worst-case rate is `(1−α)·λ₂(Ã)` while CGNR's product count
/// scales with the condition number `≈ (2−α)/α` of `I − (1−α)Ã`, so CGNR's
/// advantage needs *both* a small `α` and a graph without a strong spectral
/// gap (`bench_solvers`'s `ppr_alpha` sweeps show the power iteration still
/// winning at α = 0.01 on an Erdős–Rényi expander, and CGNR pulling ahead
/// only on the ring lattice). The threshold is therefore calibrated
/// conservatively; workloads that know their graphs are poorly connected
/// can force `PprSolver::Cgnr` via `GconConfig::ppr_solver`.
pub const PPR_CGNR_ALPHA_MAX: f64 = 0.02;

/// Total sparse products (`Ã·Z`, `Ã·x`, `Ãᵀ·Z`) performed since process
/// start. Counting lives in the `gcon-graph` kernels themselves
/// ([`gcon_graph::spmm_ops_performed`]), so every path — the propagation
/// recursion *and* the CGNR solver's operator applications — is accounted.
/// The single-pass multi-scale acceptance check (`max(m_i)` products instead
/// of `Σ m_i`) and the block-CGNR check (one product pair per iteration for
/// all columns) are asserted against deltas of this counter.
pub fn spmm_ops_performed() -> usize {
    gcon_graph::spmm_ops_performed()
}

/// Computes `Z_m = R_m X` for one step count (Eq. 10).
///
/// `a_tilde` must be the row-stochastic `Ã = D⁻¹(A+I)`
/// (see `gcon_graph::normalize::row_stochastic_default`).
///
/// Equivalent to [`propagate_with_solver`] with [`PprSolver::Auto`]: finite
/// steps run the recursion; the `∞` limit is solved by CGNR for small `α`
/// and by the power iteration otherwise (both agree to solver tolerance).
pub fn propagate(a_tilde: &Csr, x: &Mat, alpha: f64, step: PropagationStep) -> Mat {
    propagate_with_solver(a_tilde, x, alpha, step, PprSolver::Auto)
}

/// [`propagate`] with an explicit [`PprSolver`] choice for the `∞` limit
/// (finite steps always run the recursion; the solver selection is a no-op
/// for them).
pub fn propagate_with_solver(
    a_tilde: &Csr,
    x: &Mat,
    alpha: f64,
    step: PropagationStep,
    solver: PprSolver,
) -> Mat {
    if step == PropagationStep::Infinite && solver.resolves_to_cgnr(alpha, a_tilde) {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "propagate: restart probability α must lie in (0, 1], got {alpha}"
        );
        assert_eq!(a_tilde.rows(), x.rows(), "propagate: dimension mismatch");
        return propagate_ppr_cgnr(a_tilde, x, alpha);
    }
    let mut z = Mat::zeros(0, 0);
    let mut scratch = Mat::zeros(0, 0);
    propagate_into(a_tilde, x, alpha, step, &mut z, &mut scratch);
    z
}

/// Computes `Z_m = R_m X` into the caller-owned ping-pong pair
/// `(z, scratch)`, reusing both backing buffers across calls. On return `z`
/// holds the result and `scratch` holds the penultimate iterate; both are
/// reshaped as needed. The buffers may start empty (`Mat::zeros(0, 0)`) —
/// they grow to `x`'s shape on first use and are never reallocated after.
pub fn propagate_into(
    a_tilde: &Csr,
    x: &Mat,
    alpha: f64,
    step: PropagationStep,
    z: &mut Mat,
    scratch: &mut Mat,
) {
    assert!(
        alpha > 0.0 && alpha <= 1.0,
        "propagate: restart probability α must lie in (0, 1], got {alpha}"
    );
    assert_eq!(a_tilde.rows(), x.rows(), "propagate: dimension mismatch");
    z.copy_from(x);
    match step {
        PropagationStep::Finite(m) => {
            for _ in 0..m {
                step_once_into(a_tilde, z, scratch, x, alpha);
            }
        }
        PropagationStep::Infinite => {
            run_to_fixed_point(a_tilde, z, scratch, x, alpha);
        }
    }
}

/// One APPR sweep in place: `z ← (1−α) Ã z + α x`, with `scratch` receiving
/// the previous iterate (the buffers are swapped, not copied).
///
/// `pub(crate)` so the incremental refresh layer (`crate::refresh`) can
/// replicate the batch sweep bit-for-bit when building its iterate chain.
pub(crate) fn step_once_into(a_tilde: &Csr, z: &mut Mat, scratch: &mut Mat, x: &Mat, alpha: f64) {
    a_tilde.spmm_into(z, scratch);
    scratch.map_inplace(|v| v * (1.0 - alpha));
    ops::add_scaled_assign(scratch, alpha, x);
    std::mem::swap(z, scratch);
}

/// Iterates `z` to the PPR fixed point (Eq. 5), leaving the result in `z`.
/// Returns the number of sweeps performed; since the recursion contracts
/// from **any** starting point, a warm `z` close to the fixed point exits
/// after very few sweeps — the property the incremental refresh exploits.
pub(crate) fn run_to_fixed_point(
    a_tilde: &Csr,
    z: &mut Mat,
    scratch: &mut Mat,
    x: &Mat,
    alpha: f64,
) -> usize {
    for sweep in 1..=PPR_MAX_ITERS {
        step_once_into(a_tilde, z, scratch, x, alpha);
        // After the swap `scratch` holds the previous iterate.
        if max_abs_diff(z, scratch) < PPR_TOL {
            return sweep;
        }
    }
    PPR_MAX_ITERS
}

pub(crate) fn max_abs_diff(a: &Mat, b: &Mat) -> f64 {
    a.as_slice().iter().zip(b.as_slice()).fold(0.0_f64, |acc, (x, y)| acc.max((x - y).abs()))
}

/// Which solver computes the PPR limit `Z_∞` (`PropagationStep::Infinite`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PprSolver {
    /// Pick from `α`: CGNR below [`PPR_CGNR_ALPHA_MAX`], power iteration
    /// otherwise.
    #[default]
    Auto,
    /// Always the fixed-point recursion (geometric rate `1−α`).
    Power,
    /// Always block CGNR, with automatic fallback to the power iteration on
    /// non-convergence.
    Cgnr,
    /// Forward-push residual maintenance for **incremental refreshes**: the
    /// `∞` block repairs its maintained residual after a delta and runs
    /// local push sweeps over the active rows only (cost `O(vol(affected))`
    /// instead of a global solve — see `crate::refresh::push`). Cold solves
    /// have no residual to maintain, so every from-scratch propagation path
    /// treats `Push` like [`PprSolver::Power`].
    Push,
}

impl PprSolver {
    /// The `α`-only coarse resolution: whether this selection *can* resolve
    /// to CGNR for restart probability `α`, before consulting the graph.
    /// For [`PprSolver::Auto`] this is the prefilter `α <`
    /// [`PPR_CGNR_ALPHA_MAX`]; the full graph-aware decision is
    /// [`PprSolver::resolves_to_cgnr`], which additionally estimates
    /// `λ₂(Ã)` and can still keep the power iteration on well-connected
    /// graphs. `resolves_to_cgnr ⇒ chooses_cgnr` for every variant.
    pub fn chooses_cgnr(self, alpha: f64) -> bool {
        match self {
            Self::Auto => alpha < PPR_CGNR_ALPHA_MAX,
            Self::Power | Self::Push => false,
            Self::Cgnr => true,
        }
    }

    /// The full solver resolution for the `∞` limit on a concrete graph:
    /// `Power`/`Cgnr` are forced, and `Auto` runs the spectral-gap-aware
    /// cost model — [`estimate_lambda2`] feeding [`auto_chooses_cgnr`] —
    /// but only below the [`PPR_CGNR_ALPHA_MAX`] prefilter, so the common
    /// `α` regime (where the power iteration always wins; the pure model's
    /// crossover in the gapless `λ₂ → 1` limit sits at `α ≈ 0.021`) pays
    /// nothing for the estimate. This is what [`propagate_with_solver`] and
    /// [`propagate_multi_with_solver`] consult.
    pub fn resolves_to_cgnr(self, alpha: f64, a_tilde: &Csr) -> bool {
        match self {
            Self::Power | Self::Push => false,
            Self::Cgnr => true,
            Self::Auto => {
                alpha < PPR_CGNR_ALPHA_MAX
                    && auto_chooses_cgnr(alpha, estimate_lambda2(a_tilde, LAMBDA2_SWEEPS))
            }
        }
    }
}

/// Power-iteration sweeps used by [`PprSolver::resolves_to_cgnr`] for the
/// `λ₂` estimate. The estimate only steers a solver choice whose candidates
/// differ by hundreds of products, so a crude (≈ two-digit) estimate from a
/// few dozen sweeps is plenty.
pub const LAMBDA2_SWEEPS: usize = 32;

/// Estimates `|λ₂|` of the row-stochastic `Ã` — the subdominant eigenvalue
/// magnitude that sets the power iteration's effective rate `(1−α)·λ₂`.
///
/// A power iteration on `Ã` with **mean deflation**: `Ã` is row-stochastic,
/// so its dominant right eigenvector is the all-ones vector with `λ₁ = 1`;
/// subtracting the mean from the iterate after every product keeps the
/// `𝟙`-component proportional to the (vanishing) residual, and the norm
/// ratio converges to the subdominant magnitude. `Ã = D⁻¹(A+I)`-style
/// normalizations are similar to a symmetric matrix via a `D^{1/2}`
/// conjugation, so the spectrum is real and the ratio is well-defined; the
/// clipped variant is a small perturbation of that. The start vector is a
/// deterministic index hash (no RNG), and the whole estimate is built from
/// `spmv_into` plus sequential scalar reductions, so it inherits the
/// kernels' bitwise determinism across `GCON_THREADS` and kernel tiers —
/// [`PprSolver::Auto`] resolves identically everywhere.
///
/// Returns a value clamped to `[0, 1]`; degenerate inputs (`n ≤ 1`, or an
/// iterate collapsing to exactly the constant vector) return `0.0`, which
/// [`auto_chooses_cgnr`] maps to the power iteration (one sweep converges).
pub fn estimate_lambda2(a_tilde: &Csr, sweeps: usize) -> f64 {
    assert_eq!(a_tilde.rows(), a_tilde.cols(), "estimate_lambda2: Ã must be square");
    let n = a_tilde.rows();
    if n <= 1 {
        return 0.0;
    }
    // SplitMix64 of the index: deterministic, well-scattered start vector
    // with (generically) nonzero overlap onto every eigenvector.
    let mut v: Vec<f64> = (0..n as u64)
        .map(|i| {
            let mut z = i.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            // Map to [-0.5, 0.5).
            (z >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect();
    let deflate_and_norm = |v: &mut [f64]| -> f64 {
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let mut norm_sq = 0.0;
        for vi in v.iter_mut() {
            *vi -= mean;
            norm_sq += *vi * *vi;
        }
        norm_sq.sqrt()
    };
    let norm = deflate_and_norm(&mut v);
    if norm <= f64::MIN_POSITIVE {
        return 0.0;
    }
    v.iter_mut().for_each(|vi| *vi /= norm);
    let mut av = Vec::new();
    let mut lambda = 0.0;
    for _ in 0..sweeps {
        a_tilde.spmv_into(&v, &mut av);
        let norm = deflate_and_norm(&mut av);
        if norm <= f64::MIN_POSITIVE {
            return 0.0;
        }
        lambda = norm;
        for (vi, &ai) in v.iter_mut().zip(&av) {
            *vi = ai / norm;
        }
    }
    lambda.min(1.0)
}

/// Natural-log factors of the two solver tolerances, used by the cost model.
const LN_INV_PPR_TOL: f64 = 23.025_850_929_940_457; // ln(1e10)
const LN_INV_PPR_CGNR_TOL: f64 = 27.631_021_115_928_548; // ln(1e12)
/// Calibration factor of the CGNR product-count model. The Chebyshev bound
/// `iters ≈ ½·√κ·ln(2/tol)` is loose for clustered PPR spectra; `F = 2`
/// (absorbing the ½) reproduces the `bench_solvers` measurements: at
/// `α = 0.01` the model keeps the power iteration on an Erdős–Rényi
/// expander (`λ₂ ≈ 0.9`: ≈ 200 power products vs ≈ 460 predicted CGNR) and
/// switches to CGNR on the ring lattice (`λ₂ ≈ 0.9995`: ≈ 2180 power
/// products vs ≈ 1520 predicted CGNR) — matching which solver actually wins
/// on each graph.
const CGNR_COST_CALIBRATION: f64 = 2.0;

/// The pure [`PprSolver::Auto`] decision function: given the restart
/// probability and (an estimate of) `λ₂(Ã)`, predicts which solver reaches
/// its tolerance in fewer sparse products and returns `true` iff CGNR wins.
///
/// Cost model, in units of one `Ã`-sized sparse product:
///
/// - **Power**: the sweep contracts at `rate = (1−α)·λ₂`, so reaching the
///   fixed-point tolerance takes `ln(1/PPR_TOL) / −ln(rate)` products.
/// - **CGNR**: `Ã`'s real spectrum in `[−λ₂, λ₂]` puts the spectrum of
///   `I − (1−α)Ã` inside `[1−rate, 1+rate]`, i.e. condition number
///   `κ = (1+rate)/(1−rate)`. The worst-case CG-on-normal-equations bound
///   scales with `κ` itself, but PPR spectra are clustered and the
///   observed iteration count tracks `√κ`; the model therefore charges
///   `2 · F · √κ · ln(1/PPR_CGNR_TOL)` products (two per iteration) with
///   the measured calibration factor `F = CGNR_COST_CALIBRATION`.
///
/// Separated from the `λ₂` estimation so it is unit-testable on exact
/// spectra, the same way `resolve_spmv_tier` pins the kernel-tier gate.
pub fn auto_chooses_cgnr(alpha: f64, lambda2: f64) -> bool {
    assert!(alpha > 0.0 && alpha <= 1.0, "auto_chooses_cgnr: α in (0, 1]");
    if alpha >= PPR_CGNR_ALPHA_MAX {
        return false;
    }
    let rate = (1.0 - alpha) * lambda2.clamp(0.0, 1.0);
    if rate <= 0.0 {
        // One sweep converges; the power iteration cannot be beaten.
        return false;
    }
    // λ₂ ≤ 1 and α > 0 keep rate < 1, so both costs are finite.
    let power_products = LN_INV_PPR_TOL / -rate.ln();
    let kappa_sqrt = ((1.0 + rate) / (1.0 - rate)).sqrt();
    let cgnr_products = 2.0 * CGNR_COST_CALIBRATION * kappa_sqrt * LN_INV_PPR_CGNR_TOL;
    cgnr_products < power_products
}

/// Volume headroom the push cost model charges for frontier expansion. Each
/// local push sweep grows the active set by roughly one `Ã`-neighborhood, so
/// the work of the whole refresh is a small multiple of the seed volume;
/// push only wins when even that expanded volume stays well under the full
/// `nnz(Ã)` a *single* global warm sweep (or CGNR product) pays. The factor
/// is deliberately conservative: misclassifying a large edit onto push costs
/// sweeps that approach global ones anyway (the frontier saturates), while
/// misclassifying a tiny edit onto a global solver wastes `Θ(nnz)` per
/// sweep — `bench_updates`'s push-vs-warm comparison records the measured
/// gap the factor guards.
pub const PUSH_VOLUME_FACTOR: f64 = 16.0;

/// The pure touched-set-volume half of the [`PprSolver::Auto`] refresh
/// decision: `true` iff the forward-push residual refresh is predicted
/// cheaper than any global solver for a delta whose touched rows hold
/// `touched_volume` nonzeros out of `total_volume = nnz(Ã)`.
///
/// Unit-testable like [`auto_chooses_cgnr`]; the full three-way resolution
/// (push vs warm-CGNR vs power) is [`plan_inf_refresh`].
pub fn auto_chooses_push(touched_volume: usize, total_volume: usize) -> bool {
    touched_volume > 0 && PUSH_VOLUME_FACTOR * touched_volume as f64 <= total_volume as f64
}

/// How the `∞`-scale block of an **incremental refresh** is recomputed —
/// the three-way resolution of [`PprSolver`] once a concrete delta is known.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InfRefreshKind {
    /// Local forward-push sweeps over the maintained residual
    /// (`crate::refresh::push`).
    Push,
    /// Global warm-started power sweeps.
    Power,
    /// Global warm-started block CGNR (with power fallback).
    Cgnr,
}

impl std::fmt::Display for InfRefreshKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Push => write!(f, "push"),
            Self::Power => write!(f, "power"),
            Self::Cgnr => write!(f, "cgnr"),
        }
    }
}

/// Resolves which solver an incremental `∞` refresh should run, given the
/// configured [`PprSolver`] and the delta's touched-set volume (sum of the
/// touched rows' `Ã` nonzeros). `Power`/`Cgnr`/`Push` are forced; `Auto`
/// extends the spectral-gap-aware cost model with the touched-volume gate:
/// a strictly-local edit ([`auto_chooses_push`]) refreshes by push regardless
/// of `α`, and only a volumetric edit falls through to the existing
/// power-vs-CGNR decision ([`PprSolver::resolves_to_cgnr`]).
pub fn plan_inf_refresh(
    solver: PprSolver,
    alpha: f64,
    a_tilde: &Csr,
    touched_volume: usize,
) -> InfRefreshKind {
    match solver {
        PprSolver::Push => InfRefreshKind::Push,
        PprSolver::Power => InfRefreshKind::Power,
        PprSolver::Cgnr => InfRefreshKind::Cgnr,
        PprSolver::Auto => {
            if auto_chooses_push(touched_volume, a_tilde.nnz()) {
                InfRefreshKind::Push
            } else if solver.resolves_to_cgnr(alpha, a_tilde) {
                InfRefreshKind::Cgnr
            } else {
                InfRefreshKind::Power
            }
        }
    }
}

/// Matrix-free operator for `I − (1−α)Ã`, the PPR system matrix of Eq. (5),
/// applied to one vector. Used by the per-column benchmarks and tests; the
/// production path is the block operator behind [`propagate_ppr_cgnr`].
pub struct PprOperator<'a> {
    a_tilde: &'a Csr,
    one_minus_alpha: f64,
}

impl<'a> PprOperator<'a> {
    /// Wraps the row-stochastic `Ã` for restart probability `alpha`.
    pub fn new(a_tilde: &'a Csr, alpha: f64) -> Self {
        Self { a_tilde, one_minus_alpha: 1.0 - alpha }
    }
}

impl LinearOperator for PprOperator<'_> {
    fn apply(&self, x: &[f64]) -> Vec<f64> {
        let mut y = Vec::new();
        self.apply_into(x, &mut y);
        y
    }

    fn apply_transpose(&self, x: &[f64]) -> Vec<f64> {
        let mut y = Vec::new();
        self.apply_transpose_into(x, &mut y);
        y
    }

    fn apply_into(&self, x: &[f64], out: &mut Vec<f64>) {
        // `spmv_into` reuses `out`'s backing allocation, so the CGNR
        // iteration loop driving this operator performs no per-step
        // allocation (the former `spmv` call here allocated every step).
        self.a_tilde.spmv_into(x, out);
        for (yi, &xi) in out.iter_mut().zip(x) {
            *yi = xi - self.one_minus_alpha * *yi;
        }
    }

    fn apply_transpose_into(&self, x: &[f64], out: &mut Vec<f64>) {
        // (I − (1−α)Ã)ᵀ = I − (1−α)Ãᵀ; the per-vector `Ãᵀ` scatter is
        // exactly what the block operator's precomputed transpose avoids.
        self.a_tilde.spmv_t_into(x, out);
        for (yi, &xi) in out.iter_mut().zip(x) {
            *yi = xi - self.one_minus_alpha * *yi;
        }
    }

    fn dim(&self) -> usize {
        self.a_tilde.rows()
    }
}

/// Matrix-free block operator for `I − (1−α)Ã` applied to all feature
/// columns at once. The `Ãᵀ` application runs the pooled row-block `spmm`
/// kernel on a transpose precomputed at construction — one O(nnz) counting
/// sort buys scatter-free transposed products for every solver iteration.
pub(crate) struct PprBlockOperator<'a> {
    a_tilde: &'a Csr,
    a_tilde_t: Csr,
    one_minus_alpha: f64,
}

impl<'a> PprBlockOperator<'a> {
    pub(crate) fn new(a_tilde: &'a Csr, alpha: f64) -> Self {
        Self { a_tilde, a_tilde_t: a_tilde.transpose(), one_minus_alpha: 1.0 - alpha }
    }

    /// `out ← x − (1−α)·out`, the shared affine tail of both applications.
    fn finish(&self, x: &Mat, out: &mut Mat) {
        for (o, &xi) in out.as_mut_slice().iter_mut().zip(x.as_slice()) {
            *o = xi - self.one_minus_alpha * *o;
        }
    }
}

impl BlockLinearOperator for PprBlockOperator<'_> {
    fn apply_into(&self, x: &Mat, out: &mut Mat) {
        self.a_tilde.spmm_into(x, out);
        self.finish(x, out);
    }

    fn apply_transpose_into(&self, x: &Mat, out: &mut Mat) {
        self.a_tilde_t.spmm_into(x, out);
        self.finish(x, out);
    }

    fn dim(&self) -> usize {
        self.a_tilde.rows()
    }
}

/// Default CGNR iteration budget for an `n`-node system — what
/// [`propagate_ppr_cgnr`] passes to the solver. Public so the op-count
/// tests and the solver benchmarks measure the budget production actually
/// uses.
pub fn ppr_cgnr_budget(n: usize) -> usize {
    4 * n + 100
}

/// Raw block-CGNR solve of `(I − (1−α)Ã) Z_∞ = α X`: returns the iterate
/// and one honest [`SolveStats`] per feature column (true-residual verdict,
/// actual iteration count) **without** any fallback. Callers that cannot
/// tolerate a non-converged column use [`propagate_ppr_cgnr`] /
/// [`propagate_ppr_cgnr_bounded`], which fall back to the power iteration.
pub fn solve_ppr_cgnr(
    a_tilde: &Csr,
    x: &Mat,
    alpha: f64,
    max_iters: usize,
) -> (Mat, Vec<SolveStats>) {
    assert!(alpha > 0.0 && alpha <= 1.0, "solve_ppr_cgnr: α in (0, 1]");
    assert_eq!(a_tilde.rows(), x.rows(), "solve_ppr_cgnr: dimension mismatch");
    let op = PprBlockOperator::new(a_tilde, alpha);
    let b = x.map(|v| v * alpha);
    block_cgnr(&op, &b, PPR_CGNR_TOL, max_iters)
}

/// Alternative PPR path: solves `(I − (1−α)Ã) Z_∞ = α X` for **all** feature
/// columns simultaneously with matrix-free block CGNR instead of the power
/// iteration of [`propagate`]`(…, PropagationStep::Infinite)`.
///
/// Useful for small restart probabilities, where the power iteration's
/// geometric rate `1−α` is slow; both paths agree to solver tolerance (see
/// the equivalence tests). If any column fails to converge within the
/// iteration budget the whole block is recomputed with the power iteration
/// (with a logged warning) — an unconverged solve is never returned.
pub fn propagate_ppr_cgnr(a_tilde: &Csr, x: &Mat, alpha: f64) -> Mat {
    propagate_ppr_cgnr_bounded(a_tilde, x, alpha, ppr_cgnr_budget(a_tilde.rows()))
}

/// [`propagate_ppr_cgnr`] with an explicit iteration budget. Exposed so the
/// fallback path is testable in release builds: a budget too small to
/// converge must still yield the correct `Z_∞` (via the power iteration),
/// never a half-converged iterate.
pub fn propagate_ppr_cgnr_bounded(a_tilde: &Csr, x: &Mat, alpha: f64, max_iters: usize) -> Mat {
    let (z, stats) = solve_ppr_cgnr(a_tilde, x, alpha, max_iters);
    let failed = stats.iter().filter(|s| !s.converged).count();
    if failed == 0 {
        return z;
    }
    let worst = stats.iter().map(|s| s.residual).fold(0.0_f64, f64::max);
    eprintln!(
        "gcon-core: PPR CGNR left {failed}/{} columns unconverged after {} iterations \
         (worst residual {worst:.3e}); falling back to the power iteration",
        stats.len(),
        max_iters,
    );
    // The recursion contracts toward Z_∞ from any finite starting point, so
    // the solver's partial iterate warm-starts the fallback instead of being
    // discarded (a non-finite iterate would never satisfy the fixed-point
    // stopping rule, so that one case restarts from X).
    let mut z = if z.is_finite() { z } else { x.clone() };
    let mut scratch = Mat::default();
    run_to_fixed_point(a_tilde, &mut z, &mut scratch, x, alpha);
    z
}

/// Computes every requested scale `Z_{m_i}` in **one** sweep of the APPR
/// recursion and returns the unweighted concatenation
/// `Z_{m_1} ⊕ Z_{m_2} ⊕ … ⊕ Z_{m_s}` (column blocks in `steps` order).
///
/// Because `Z_m` depends only on `Z_{m−1}`, running the recursion once to
/// `max(m_i)` and snapshotting each requested scale as it is passed costs
/// `max(m_i)` sparse products instead of the `Σ m_i` that per-scale
/// [`propagate`] calls would pay. A `PropagationStep::Infinite` entry is
/// handled as the final segment: with the power solver the sweep simply
/// continues from the largest finite scale to the fixed point (the iteration
/// contracts toward `Z_∞` from *any* starting point, so the continuation
/// converges to the same limit — finite blocks are bit-identical to
/// per-scale propagation, the `∞` block agrees to fixed-point tolerance);
/// with CGNR selected the `∞` block is solved directly by the block solver.
///
/// Equivalent to [`propagate_multi_with_solver`] with [`PprSolver::Auto`].
pub fn propagate_multi(a_tilde: &Csr, x: &Mat, alpha: f64, steps: &[PropagationStep]) -> Mat {
    propagate_multi_with_solver(a_tilde, x, alpha, steps, PprSolver::Auto)
}

/// [`propagate_multi`] with an explicit [`PprSolver`] choice for the `∞`
/// segment.
pub fn propagate_multi_with_solver(
    a_tilde: &Csr,
    x: &Mat,
    alpha: f64,
    steps: &[PropagationStep],
    solver: PprSolver,
) -> Mat {
    assert!(!steps.is_empty(), "propagate_multi: need at least one step");
    assert!(
        alpha > 0.0 && alpha <= 1.0,
        "propagate_multi: restart probability α must lie in (0, 1], got {alpha}"
    );
    assert_eq!(a_tilde.rows(), x.rows(), "propagate_multi: dimension mismatch");
    let (n, d) = x.shape();
    let mut out = Mat::zeros(n, steps.len() * d);
    let max_finite = steps
        .iter()
        .filter_map(|s| match s {
            PropagationStep::Finite(m) => Some(*m),
            PropagationStep::Infinite => None,
        })
        .max();
    let has_infinite = steps.contains(&PropagationStep::Infinite);

    let snapshot = |out: &mut Mat, z: &Mat, reached: PropagationStep| {
        for (i, &s) in steps.iter().enumerate() {
            if s == reached {
                out.copy_into_columns(i * d, z);
            }
        }
    };

    snapshot(&mut out, x, PropagationStep::Finite(0));
    let mut z = x.clone();
    let mut scratch = Mat::zeros(0, 0);
    for k in 1..=max_finite.unwrap_or(0) {
        step_once_into(a_tilde, &mut z, &mut scratch, x, alpha);
        snapshot(&mut out, &z, PropagationStep::Finite(k));
    }
    if has_infinite {
        if solver.resolves_to_cgnr(alpha, a_tilde) {
            let z_inf = propagate_ppr_cgnr(a_tilde, x, alpha);
            snapshot(&mut out, &z_inf, PropagationStep::Infinite);
        } else {
            run_to_fixed_point(a_tilde, &mut z, &mut scratch, x, alpha);
            snapshot(&mut out, &z, PropagationStep::Infinite);
        }
    }
    out
}

/// The multi-scale concatenation of Eq. (11):
/// `Z = (1/s)(Z_{m₁} ⊕ Z_{m₂} ⊕ … ⊕ Z_{m_s})`.
///
/// The `1/s` weighting keeps each row's L2 norm ≤ 1 when the rows of `x` are
/// unit-normalized (each `Z_m` row is a convex combination of unit rows).
/// All scales are computed by the single-pass [`propagate_multi`] sweep.
///
/// Equivalent to [`concat_features_with_solver`] with [`PprSolver::Auto`].
pub fn concat_features(a_tilde: &Csr, x: &Mat, alpha: f64, steps: &[PropagationStep]) -> Mat {
    concat_features_with_solver(a_tilde, x, alpha, steps, PprSolver::Auto)
}

/// [`concat_features`] with an explicit [`PprSolver`] choice for any `∞`
/// scale — this is what training and public inference call with
/// `GconConfig::ppr_solver`.
pub fn concat_features_with_solver(
    a_tilde: &Csr,
    x: &Mat,
    alpha: f64,
    steps: &[PropagationStep],
    solver: PprSolver,
) -> Mat {
    assert!(!steps.is_empty(), "concat_features: need at least one step");
    let mut z = propagate_multi_with_solver(a_tilde, x, alpha, steps, solver);
    let inv_s = 1.0 / steps.len() as f64;
    z.map_inplace(|v| v * inv_s);
    z
}

/// Result of a warm-started PPR refresh ([`refresh_ppr`]).
#[derive(Clone, Debug)]
pub struct PprRefresh {
    /// The refreshed `Z_∞` iterate (converged to solver tolerance).
    pub z: Mat,
    /// Certified bound on `‖z − Z_∞‖_max` (see [`ppr_staleness_bound`]),
    /// measured on the returned iterate with one extra sparse product.
    pub staleness_bound: f64,
    /// Iterations/sweeps the warm solve performed (CGNR: max over columns;
    /// power: number of sweeps). A small delta with a good warm start
    /// finishes in a handful — this is the quantity `bench_updates`
    /// contrasts with a cold solve.
    pub iterations: usize,
    /// Whether the CGNR path ran (`false` = power sweeps).
    pub used_cgnr: bool,
}

/// Re-solves the PPR limit `(I − (1−α)Ã) Z_∞ = α X` warm-started from a
/// previous iterate `z_warm` — the `∞`-scale half of an incremental graph
/// refresh. After a delta touches a handful of `Ã` rows, the old fixed
/// point is already correct to working precision away from the edit, so
/// the solver only pays for propagating the perturbation:
///
/// - With CGNR resolved (see [`PprSolver::resolves_to_cgnr`]), the block
///   solver starts at `X₀ = z_warm` and its per-column convergence test
///   freezes already-converged columns after zero iterations.
/// - With the power iteration resolved, the sweep continues from `z_warm`;
///   the recursion contracts toward `Z_∞` from any starting point.
///
/// `z_warm` must have `x`'s shape; onboarded nodes (rows new since the warm
/// iterate was computed) should be seeded with their `x` rows — exact for
/// isolated new nodes, a contraction-friendly start otherwise. Like every
/// `∞` solve, an unconverged CGNR refresh falls back to warm power sweeps;
/// the returned iterate is always converged, and `staleness_bound` is its
/// *measured* certificate, not an assumption.
pub fn refresh_ppr(
    a_tilde: &Csr,
    x: &Mat,
    alpha: f64,
    z_warm: &Mat,
    solver: PprSolver,
) -> PprRefresh {
    assert!(alpha > 0.0 && alpha <= 1.0, "refresh_ppr: restart probability α must lie in (0, 1]");
    assert_eq!(a_tilde.rows(), x.rows(), "refresh_ppr: dimension mismatch");
    assert_eq!(z_warm.shape(), x.shape(), "refresh_ppr: warm iterate shape mismatch");
    let (z, iterations, used_cgnr) = if solver.resolves_to_cgnr(alpha, a_tilde) {
        let op = PprBlockOperator::new(a_tilde, alpha);
        let b = x.map(|v| v * alpha);
        let budget = ppr_cgnr_budget(a_tilde.rows());
        let (z, stats) = block_cgnr_warm(&op, &b, z_warm, PPR_CGNR_TOL, budget);
        let failed = stats.iter().filter(|s| !s.converged).count();
        if failed == 0 {
            let iters = stats.iter().map(|s| s.iterations).max().unwrap_or(0);
            (z, iters, true)
        } else {
            // Same fallback contract as `propagate_ppr_cgnr_bounded`: finish
            // with power sweeps warm-started from the partial iterate.
            let worst = stats.iter().map(|s| s.residual).fold(0.0_f64, f64::max);
            eprintln!(
                "gcon-core: warm PPR CGNR left {failed}/{} columns unconverged after {budget} \
                 iterations (worst residual {worst:.3e}); falling back to warm power sweeps",
                stats.len(),
            );
            let mut z = if z.is_finite() { z } else { z_warm.clone() };
            let mut scratch = Mat::default();
            let sweeps = run_to_fixed_point(a_tilde, &mut z, &mut scratch, x, alpha);
            (z, sweeps, false)
        }
    } else {
        let mut z = z_warm.clone();
        let mut scratch = Mat::default();
        let sweeps = run_to_fixed_point(a_tilde, &mut z, &mut scratch, x, alpha);
        (z, sweeps, false)
    };
    let staleness_bound = ppr_staleness_bound(a_tilde, x, alpha, &z);
    PprRefresh { z, staleness_bound, iterations, used_cgnr }
}

/// Certified staleness bound for an approximate PPR iterate: returns
/// `‖R‖_max / α ≥ ‖z − Z_∞‖_max`, where `R = αX − (I − (1−α)Ã) z` is the
/// residual of Eq. (5).
///
/// The bound is exact linear algebra, not a heuristic: `z − Z_∞ =
/// −(I − (1−α)Ã)⁻¹ R`, and for row-stochastic `Ã` the inverse's max-norm is
/// at most `Σ_k (1−α)^k ‖Ã‖_max^k = 1/α`. Costs one sparse product. This is
/// the quantity the serving layer reports per query generation: logits
/// served from a stale store are wrong by at most
/// `staleness_bound · ‖Θ‖_{1,∞}` before head scaling.
pub fn ppr_staleness_bound(a_tilde: &Csr, x: &Mat, alpha: f64, z: &Mat) -> f64 {
    assert!(alpha > 0.0 && alpha <= 1.0, "ppr_staleness_bound: α in (0, 1]");
    assert_eq!(a_tilde.rows(), x.rows(), "ppr_staleness_bound: dimension mismatch");
    assert_eq!(z.shape(), x.shape(), "ppr_staleness_bound: iterate shape mismatch");
    let az = a_tilde.spmm(z);
    let one_minus_alpha = 1.0 - alpha;
    let mut r_max = 0.0_f64;
    for ((&zi, &xi), &azi) in z.as_slice().iter().zip(x.as_slice()).zip(az.as_slice()) {
        let r = alpha * xi - (zi - one_minus_alpha * azi);
        r_max = r_max.max(r.abs());
    }
    r_max / alpha
}

/// Computes the full PPR residual `R = αX − (I − (1−α)Ã) z` into `r` and
/// returns the certified staleness bound `‖R‖_max / α` — the same number
/// [`ppr_staleness_bound`] reports, via the identical per-element arithmetic
/// (`αxᵢ − (zᵢ − (1−α)·(Ãz)ᵢ)`), at the same one-sparse-product cost.
///
/// This is the materialized form the forward-push refresh
/// (`crate::refresh::push`) maintains alongside `z`: after a delta it
/// repairs only the touched rows of `r` and localizes its sweeps to rows
/// whose residual exceeds the push threshold, so the global recompute here
/// is only paid once at build time (or after a global-solver refresh).
pub fn ppr_residual_into(a_tilde: &Csr, x: &Mat, alpha: f64, z: &Mat, r: &mut Mat) -> f64 {
    assert!(alpha > 0.0 && alpha <= 1.0, "ppr_residual_into: α in (0, 1]");
    assert_eq!(a_tilde.rows(), x.rows(), "ppr_residual_into: dimension mismatch");
    assert_eq!(z.shape(), x.shape(), "ppr_residual_into: iterate shape mismatch");
    a_tilde.spmm_into(z, r);
    let one_minus_alpha = 1.0 - alpha;
    let mut r_max = 0.0_f64;
    for ((ri, &zi), &xi) in r.as_mut_slice().iter_mut().zip(z.as_slice()).zip(x.as_slice()) {
        let v = alpha * xi - (zi - one_minus_alpha * *ri);
        *ri = v;
        r_max = r_max.max(v.abs());
    }
    r_max / alpha
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcon_graph::generators;
    use gcon_graph::normalize::row_stochastic_default;
    use gcon_linalg::reduce::row_norms2;
    use rand::SeedableRng;

    fn small_graph() -> (gcon_graph::Graph, Csr) {
        let g = generators::cycle(6);
        let a = row_stochastic_default(&g);
        (g, a)
    }

    #[test]
    fn zero_steps_is_identity() {
        let (_, a) = small_graph();
        let x = Mat::from_fn(6, 3, |i, j| (i * 3 + j) as f64);
        let z = propagate(&a, &x, 0.5, PropagationStep::Finite(0));
        assert_eq!(z, x);
    }

    #[test]
    fn alpha_one_is_identity_for_any_m() {
        let (_, a) = small_graph();
        let x = Mat::from_fn(6, 2, |i, j| (i + j) as f64);
        for step in [PropagationStep::Finite(3), PropagationStep::Infinite] {
            let z = propagate(&a, &x, 1.0, step);
            for (u, v) in z.as_slice().iter().zip(x.as_slice()) {
                assert!((u - v).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn constant_features_are_fixed_points() {
        // Rows of R_m sum to 1 (Lemma 1), so a constant column is preserved.
        let (_, a) = small_graph();
        let x = Mat::full(6, 2, 3.5);
        for step in
            [PropagationStep::Finite(1), PropagationStep::Finite(7), PropagationStep::Infinite]
        {
            let z = propagate(&a, &x, 0.3, step);
            for v in z.as_slice() {
                assert!((v - 3.5).abs() < 1e-8, "step {step:?}: {v}");
            }
        }
    }

    #[test]
    fn finite_matches_explicit_appr_polynomial() {
        // Z_m must equal (α Σ_{i<m} (1-α)^i Ã^i + (1-α)^m Ã^m) X  (Eq. 6).
        let (_, a) = small_graph();
        let x = Mat::from_fn(6, 2, |i, j| ((i + 1) * (j + 2)) as f64 * 0.1);
        let alpha: f64 = 0.4;
        let m = 4;
        let dense = a.to_dense();
        // Build R_m densely.
        let mut rm = Mat::zeros(6, 6);
        let mut apow = Mat::eye(6);
        for i in 0..m {
            ops::add_scaled_assign(&mut rm, alpha * (1.0 - alpha).powi(i as i32), &apow);
            apow = ops::matmul(&apow, &dense);
        }
        ops::add_scaled_assign(&mut rm, (1.0 - alpha).powi(m as i32), &apow);
        let expect = ops::matmul(&rm, &x);
        let z = propagate(&a, &x, alpha, PropagationStep::Finite(m));
        for (u, v) in z.as_slice().iter().zip(expect.as_slice()) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn ppr_fixed_point_satisfies_linear_system() {
        // Z_∞ should satisfy (I − (1−α)Ã) Z_∞ = α X.
        let (_, a) = small_graph();
        let x = Mat::from_fn(6, 3, |i, j| ((i * 3 + j) % 5) as f64 * 0.2);
        let alpha = 0.25;
        let z = propagate(&a, &x, alpha, PropagationStep::Infinite);
        let az = a.spmm(&z);
        for i in 0..6 {
            for j in 0..3 {
                let lhs = z.get(i, j) - (1.0 - alpha) * az.get(i, j);
                let rhs = alpha * x.get(i, j);
                assert!((lhs - rhs).abs() < 1e-8, "({i},{j}): {lhs} vs {rhs}");
            }
        }
    }

    #[test]
    fn large_m_approaches_ppr() {
        let (_, a) = small_graph();
        let x = Mat::from_fn(6, 2, |i, j| (i as f64 - j as f64) * 0.3);
        let alpha = 0.5;
        let z_inf = propagate(&a, &x, alpha, PropagationStep::Infinite);
        let z_40 = propagate(&a, &x, alpha, PropagationStep::Finite(40));
        for (u, v) in z_40.as_slice().iter().zip(z_inf.as_slice()) {
            assert!((u - v).abs() < 1e-5);
        }
    }

    #[test]
    fn concat_keeps_row_norm_bounded() {
        let (_, a) = small_graph();
        let mut x = Mat::from_fn(6, 4, |i, j| ((i * 7 + j * 3) % 11) as f64 - 5.0);
        x.normalize_rows_l2();
        let z = concat_features(
            &a,
            &x,
            0.4,
            &[PropagationStep::Finite(0), PropagationStep::Finite(2), PropagationStep::Infinite],
        );
        assert_eq!(z.cols(), 12);
        for n in row_norms2(&z) {
            assert!(n <= 1.0 + 1e-9, "row norm {n} exceeds 1");
        }
    }

    #[test]
    fn ppr_cgnr_matches_power_iteration() {
        let (_, a) = small_graph();
        let x = Mat::from_fn(6, 3, |i, j| ((i * 2 + j) % 7) as f64 * 0.3 - 0.5);
        for &alpha in &[0.1, 0.4, 0.9] {
            let power =
                propagate_with_solver(&a, &x, alpha, PropagationStep::Infinite, PprSolver::Power);
            let cg = propagate_ppr_cgnr(&a, &x, alpha);
            for (u, v) in power.as_slice().iter().zip(cg.as_slice()) {
                assert!((u - v).abs() < 1e-7, "α={alpha}: {u} vs {v}");
            }
        }
    }

    #[test]
    fn ppr_cgnr_on_bigger_random_graph() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(123);
        let g = generators::erdos_renyi_gnm(150, 450, &mut rng);
        let a = row_stochastic_default(&g);
        let mut x = Mat::uniform(150, 4, 1.0, &mut rng);
        x.normalize_rows_l2();
        let power = propagate_with_solver(&a, &x, 0.2, PropagationStep::Infinite, PprSolver::Power);
        let cg = propagate_ppr_cgnr(&a, &x, 0.2);
        for (u, v) in power.as_slice().iter().zip(cg.as_slice()) {
            assert!((u - v).abs() < 1e-6);
        }
    }

    /// Regression for the silent-failure bug: a budget too small to converge
    /// must fall back to the power iteration, so the result is still correct
    /// in `--release` (the old path `debug_assert!`ed and returned garbage).
    #[test]
    fn non_converged_cgnr_falls_back_to_power_iteration() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(55);
        let g = generators::erdos_renyi_gnm(60, 180, &mut rng);
        let a = row_stochastic_default(&g);
        let mut x = Mat::uniform(60, 3, 1.0, &mut rng);
        x.normalize_rows_l2();
        let alpha = 0.05;
        // Sanity: two iterations genuinely cannot reach tolerance here.
        let (_, stats) = solve_ppr_cgnr(&a, &x, alpha, 2);
        assert!(stats.iter().all(|s| !s.converged), "budget of 2 unexpectedly converged");
        let power =
            propagate_with_solver(&a, &x, alpha, PropagationStep::Infinite, PprSolver::Power);
        let z = propagate_ppr_cgnr_bounded(&a, &x, alpha, 2);
        // The fallback warm-starts from the partial CGNR iterate, so it
        // reaches the same fixed point to tolerance (not bit-identically).
        for (u, v) in power.as_slice().iter().zip(z.as_slice()) {
            assert!(
                (u - v).abs() < 1e-7,
                "fallback must reproduce the power iteration: {u} vs {v}"
            );
        }
    }

    /// Honest statistics on an ill-conditioned system (α = 0.01): each
    /// column's reported residual must equal the directly computed
    /// `‖αx_j − (I − (1−α)Ã) z_j‖₂`, not a drifted recurrence value.
    #[test]
    fn cgnr_stats_report_true_residual_when_ill_conditioned() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(56);
        let g = generators::erdos_renyi_gnm(80, 240, &mut rng);
        let a = row_stochastic_default(&g);
        let mut x = Mat::uniform(80, 4, 1.0, &mut rng);
        x.normalize_rows_l2();
        let alpha = 0.01;
        let (z, stats) = solve_ppr_cgnr(&a, &x, alpha, ppr_cgnr_budget(80));
        let op = PprOperator::new(&a, alpha);
        for (j, s) in stats.iter().enumerate() {
            let az = op.apply(&z.col(j));
            let direct = x
                .col(j)
                .iter()
                .zip(&az)
                .map(|(&xi, &ai)| (alpha * xi - ai) * (alpha * xi - ai))
                .sum::<f64>()
                .sqrt();
            assert!(
                (s.residual - direct).abs() <= 1e-12 * direct.max(1.0),
                "column {j}: reported {} vs direct {direct}",
                s.residual
            );
            assert!(s.converged, "column {j} should converge within the default budget: {s:?}");
        }
    }

    /// The auto selection switches solver at the documented threshold.
    #[test]
    fn solver_auto_threshold() {
        assert!(PprSolver::Auto.chooses_cgnr(0.01));
        assert!(PprSolver::Auto.chooses_cgnr(PPR_CGNR_ALPHA_MAX - 1e-9));
        assert!(!PprSolver::Auto.chooses_cgnr(PPR_CGNR_ALPHA_MAX));
        assert!(!PprSolver::Auto.chooses_cgnr(0.6));
        assert!(PprSolver::Cgnr.chooses_cgnr(0.9));
        assert!(!PprSolver::Power.chooses_cgnr(0.01));
    }

    /// Pins the pure Auto decision function on exact spectra, the way
    /// `resolve_spmv_tier` pins the kernel-tier gate: expander-like gaps
    /// keep the power iteration even at tiny `α`; gapless spectra switch
    /// to CGNR; at or above the α prefilter the power iteration always
    /// wins regardless of the gap.
    #[test]
    fn auto_decision_is_gap_aware() {
        // α = 0.01, well below the prefilter.
        assert!(!auto_chooses_cgnr(0.01, 0.0)); // disconnected-free, 1-sweep
        assert!(!auto_chooses_cgnr(0.01, 0.9)); // ER-expander gap
        assert!(!auto_chooses_cgnr(0.01, 0.95));
        assert!(auto_chooses_cgnr(0.01, 0.999)); // ring-lattice regime
        assert!(auto_chooses_cgnr(0.01, 0.9995));
        assert!(auto_chooses_cgnr(0.01, 1.0)); // gapless limit
                                               // At/above the prefilter: power, even with no spectral gap.
        assert!(!auto_chooses_cgnr(PPR_CGNR_ALPHA_MAX, 1.0));
        assert!(!auto_chooses_cgnr(0.15, 1.0));
        // Out-of-range λ₂ estimates are clamped, not trusted.
        assert!(auto_chooses_cgnr(0.01, 1.7) == auto_chooses_cgnr(0.01, 1.0));
    }

    /// Pins the pure touched-volume gate and the three-way refresh plan:
    /// forced variants are forced, and Auto routes by volume first, then by
    /// the spectral cost model.
    #[test]
    fn refresh_plan_is_volume_aware() {
        // Pure volume gate.
        assert!(!auto_chooses_push(0, 1_000), "an empty delta never pushes");
        assert!(auto_chooses_push(10, 1_000));
        assert!(!auto_chooses_push(100, 1_000), "a 10% touched volume is not local");
        let boundary = (PUSH_VOLUME_FACTOR * 10.0) as usize;
        assert!(auto_chooses_push(10, boundary));
        assert!(!auto_chooses_push(10, boundary - 1));

        // Three-way resolution on a concrete expander.
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let a = row_stochastic_default(&generators::erdos_renyi_gnm(300, 900, &mut rng));
        assert_eq!(plan_inf_refresh(PprSolver::Push, 0.2, &a, a.nnz()), InfRefreshKind::Push);
        assert_eq!(plan_inf_refresh(PprSolver::Power, 0.2, &a, 2), InfRefreshKind::Power);
        assert_eq!(plan_inf_refresh(PprSolver::Cgnr, 0.2, &a, 2), InfRefreshKind::Cgnr);
        // Auto: a two-row edit pushes at any α; a volumetric edit falls
        // through to the spectral decision (power on an expander).
        assert_eq!(plan_inf_refresh(PprSolver::Auto, 0.2, &a, 12), InfRefreshKind::Push);
        assert_eq!(plan_inf_refresh(PprSolver::Auto, 0.01, &a, 12), InfRefreshKind::Push);
        assert_eq!(plan_inf_refresh(PprSolver::Auto, 0.2, &a, a.nnz()), InfRefreshKind::Power);
        // Gapless graph at tiny α: volumetric edits go CGNR, local stay push.
        let ring = row_stochastic_default(&generators::cycle(400));
        assert_eq!(
            plan_inf_refresh(PprSolver::Auto, 0.01, &ring, ring.nnz()),
            InfRefreshKind::Cgnr
        );
        assert_eq!(plan_inf_refresh(PprSolver::Auto, 0.01, &ring, 6), InfRefreshKind::Push);
    }

    /// At fixed `α` the decision flips from power to CGNR exactly once as
    /// the graph loses its spectral gap (the cost model is monotone).
    #[test]
    fn auto_decision_monotone_in_lambda2() {
        let mut flips = 0;
        let mut prev = auto_chooses_cgnr(0.01, 0.0);
        for i in 1..=1000 {
            let cur = auto_chooses_cgnr(0.01, i as f64 / 1000.0);
            if cur != prev {
                assert!(cur, "decision may only flip power → CGNR");
                flips += 1;
            }
            prev = cur;
        }
        assert_eq!(flips, 1, "exactly one crossover in λ₂ ∈ [0, 1]");
    }

    /// The λ₂ estimator against graphs with known spectra. The cycle's
    /// row-stochastic `Ã` is the circulant with symbol `(1+2cos θ)/3`, so
    /// `λ₂ = (1+2cos(2π/n))/3` exactly; the complete graph's `Ã` is `J/n`
    /// whose subdominant eigenvalue is 0.
    #[test]
    fn lambda2_estimate_matches_known_spectra() {
        let ring = row_stochastic_default(&generators::cycle(24));
        let exact = (1.0 + 2.0 * (2.0 * std::f64::consts::PI / 24.0).cos()) / 3.0;
        let est = estimate_lambda2(&ring, 200);
        assert!((est - exact).abs() < 1e-3, "ring λ₂: estimated {est}, exact {exact}");

        let complete = row_stochastic_default(&generators::complete(8));
        let est = estimate_lambda2(&complete, 16);
        assert!(est < 1e-6, "complete-graph λ₂ should be ≈ 0, got {est}");

        // Two disconnected cliques: the indicator difference of the
        // components is an eigenvector with eigenvalue exactly 1.
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                edges.push((u, v));
                edges.push((u + 5, v + 5));
            }
        }
        let split = row_stochastic_default(&gcon_graph::Graph::from_edges(10, &edges));
        let est = estimate_lambda2(&split, 64);
        assert!((est - 1.0).abs() < 1e-6, "disconnected λ₂ should be 1, got {est}");

        // Degenerate sizes resolve to 0 (power iteration, one sweep).
        assert_eq!(estimate_lambda2(&row_stochastic_default(&generators::path(1)), 8), 0.0);
    }

    /// The graph-aware resolution end to end: forced variants ignore the
    /// graph; Auto at small `α` picks per-graph (CGNR on the gapless ring,
    /// power on the well-connected complete graph) and short-circuits to
    /// power at common `α` without consulting the spectrum.
    #[test]
    fn solver_resolution_is_graph_aware() {
        let ring = row_stochastic_default(&generators::cycle(400));
        let complete = row_stochastic_default(&generators::complete(16));
        assert!(!PprSolver::Power.resolves_to_cgnr(0.01, &ring));
        assert!(PprSolver::Cgnr.resolves_to_cgnr(0.4, &complete));
        assert!(PprSolver::Auto.resolves_to_cgnr(0.01, &ring));
        assert!(!PprSolver::Auto.resolves_to_cgnr(0.01, &complete));
        assert!(!PprSolver::Auto.resolves_to_cgnr(0.15, &ring));
        // The graph-aware decision only ever strengthens the α prefilter.
        for &alpha in &[0.005, 0.01, 0.019, 0.02, 0.3] {
            for a in [&ring, &complete] {
                assert!(
                    !PprSolver::Auto.resolves_to_cgnr(alpha, a)
                        || PprSolver::Auto.chooses_cgnr(alpha),
                    "resolves_to_cgnr must imply chooses_cgnr"
                );
            }
        }
    }

    /// After an edge delta, the warm refresh converges to the *new* fixed
    /// point: its distance to an independent cold solve is covered by the
    /// two iterates' measured staleness certificates.
    #[test]
    fn refresh_matches_cold_solve_after_delta() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let g = generators::erdos_renyi_gnm(40, 90, &mut rng);
        let a = row_stochastic_default(&g);
        let mut x = Mat::uniform(40, 6, 1.0, &mut rng);
        x.normalize_rows_l2();
        let alpha = 0.15;
        let z_old =
            propagate_with_solver(&a, &x, alpha, PropagationStep::Infinite, PprSolver::Power);

        let g2 = g.with_edge_added(0, 20);
        let a2 = row_stochastic_default(&g2);
        let refresh = refresh_ppr(&a2, &x, alpha, &z_old, PprSolver::Power);
        assert!(!refresh.used_cgnr);
        assert!(refresh.iterations > 0, "the delta must perturb the fixed point");

        let cold =
            propagate_with_solver(&a2, &x, alpha, PropagationStep::Infinite, PprSolver::Power);
        let cold_bound = ppr_staleness_bound(&a2, &x, alpha, &cold);
        let diff = max_abs_diff(&refresh.z, &cold);
        assert!(
            diff <= refresh.staleness_bound + cold_bound,
            "refresh vs cold differ by {diff}, certificates allow {} + {}",
            refresh.staleness_bound,
            cold_bound
        );
        // A converged iterate's certificate is tight: ≤ (1−α)·PPR_TOL/α.
        assert!(refresh.staleness_bound < 1e-8);
    }

    /// The staleness certificate is honest: the *true* distance between a
    /// stale iterate (pre-delta fixed point) and the post-delta fixed point
    /// never exceeds the bound computed from the stale residual alone.
    #[test]
    fn staleness_bound_dominates_true_error() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let g = generators::erdos_renyi_gnm(30, 60, &mut rng);
        let a = row_stochastic_default(&g);
        let mut x = Mat::uniform(30, 5, 1.0, &mut rng);
        x.normalize_rows_l2();
        let alpha = 0.2;
        let z_old =
            propagate_with_solver(&a, &x, alpha, PropagationStep::Infinite, PprSolver::Power);

        let g2 = g.with_edge_added(1, 17);
        let a2 = row_stochastic_default(&g2);
        let bound = ppr_staleness_bound(&a2, &x, alpha, &z_old);
        let fresh =
            propagate_with_solver(&a2, &x, alpha, PropagationStep::Infinite, PprSolver::Power);
        let true_err = max_abs_diff(&z_old, &fresh);
        assert!(bound > 0.0, "a real delta must produce a nonzero certificate");
        assert!(true_err <= bound + 1e-9, "true error {true_err} exceeds certified bound {bound}");
    }

    /// Warm-starting the CGNR refresh *at* the solution freezes every
    /// column after zero iterations and returns the warm iterate verbatim.
    #[test]
    fn cgnr_refresh_at_solution_is_free_and_bitwise() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let g = generators::erdos_renyi_gnm(25, 50, &mut rng);
        let a = row_stochastic_default(&g);
        let mut x = Mat::uniform(25, 4, 1.0, &mut rng);
        x.normalize_rows_l2();
        let alpha = 0.3;
        let z = propagate_ppr_cgnr(&a, &x, alpha);
        let refresh = refresh_ppr(&a, &x, alpha, &z, PprSolver::Cgnr);
        assert!(refresh.used_cgnr);
        assert_eq!(refresh.iterations, 0);
        assert_eq!(refresh.z.as_slice(), z.as_slice(), "frozen solve must be bitwise");
    }

    /// `propagate_multi` with CGNR selected for the `∞` block agrees with
    /// the pure-power sweep on every block.
    #[test]
    fn propagate_multi_solver_choices_agree() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(57);
        let g = generators::erdos_renyi_gnm(50, 150, &mut rng);
        let a = row_stochastic_default(&g);
        let mut x = Mat::uniform(50, 3, 1.0, &mut rng);
        x.normalize_rows_l2();
        let steps = [PropagationStep::Finite(2), PropagationStep::Infinite];
        let alpha = 0.08;
        let power = propagate_multi_with_solver(&a, &x, alpha, &steps, PprSolver::Power);
        let cgnr = propagate_multi_with_solver(&a, &x, alpha, &steps, PprSolver::Cgnr);
        for (u, v) in power.as_slice().iter().zip(cgnr.as_slice()) {
            assert!((u - v).abs() < 1e-6, "{u} vs {v}");
        }
    }

    #[test]
    fn propagation_step_parsing() {
        assert_eq!(PropagationStep::parse("3"), Some(PropagationStep::Finite(3)));
        assert_eq!(PropagationStep::parse("inf"), Some(PropagationStep::Infinite));
        assert_eq!(PropagationStep::parse("∞"), Some(PropagationStep::Infinite));
        assert_eq!(PropagationStep::parse("x"), None);
    }

    #[test]
    fn smoothing_pulls_neighbors_together() {
        // On a homophilous structure, propagation reduces the feature gap
        // between adjacent nodes.
        let (g, a) = small_graph();
        let x = Mat::from_fn(6, 1, |i, _| if i < 3 { 1.0 } else { -1.0 });
        let z = propagate(&a, &x, 0.2, PropagationStep::Finite(5));
        let gap = |m: &Mat| -> f64 {
            g.edges()
                .iter()
                .map(|&(u, v)| (m.get(u as usize, 0) - m.get(v as usize, 0)).abs())
                .sum()
        };
        assert!(gap(&z) < gap(&x));
    }

    /// The production recursion `Z_m = (1−α)ÃZ_{m−1} + αX` must equal the
    /// paper's *explicit* Eq. (6) expansion
    /// `R_m = α Σ_{i=0}^{m−1} (1−α)^i Ã^i + (1−α)^m Ã^m` applied to `X`,
    /// built densely from matrix powers.
    #[test]
    fn recursion_matches_eq6_dense_expansion() {
        use gcon_linalg::ops;
        let mut rng = rand::rngs::StdRng::seed_from_u64(123);
        let g = gcon_graph::generators::erdos_renyi_gnm(12, 26, &mut rng);
        let a_csr = gcon_graph::normalize::row_stochastic_default(&g);
        let a = a_csr.to_dense();
        let mut x = Mat::uniform(12, 3, 1.0, &mut rng);
        x.normalize_rows_l2();
        for &alpha in &[0.2f64, 0.5, 0.9] {
            for m in 0usize..8 {
                // Dense R_m via Eq. (6).
                let mut r = Mat::zeros(12, 12);
                let mut a_pow = Mat::eye(12); // Ã^0
                for i in 0..m {
                    ops::add_scaled_assign(&mut r, alpha * (1.0f64 - alpha).powi(i as i32), &a_pow);
                    a_pow = ops::matmul(&a_pow, &a);
                }
                ops::add_scaled_assign(&mut r, (1.0f64 - alpha).powi(m as i32), &a_pow);
                let z_dense = ops::matmul(&r, &x);
                let z_rec = propagate(&a_csr, &x, alpha, PropagationStep::Finite(m));
                for (u, v) in z_dense.as_slice().iter().zip(z_rec.as_slice()) {
                    assert!((u - v).abs() < 1e-10, "α={alpha} m={m}: dense {u} vs recursion {v}");
                }
            }
        }
    }

    /// Eq. (4) telescopes: R_m interpolates between R_0 = I (m = 0) and
    /// R_∞; on a connected graph the APPR output converges to the PPR fixed
    /// point geometrically at rate (1−α).
    #[test]
    fn appr_converges_geometrically_to_ppr() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(321);
        let g = gcon_graph::generators::cycle(20);
        let a = gcon_graph::normalize::row_stochastic_default(&g);
        let mut x = Mat::uniform(20, 2, 1.0, &mut rng);
        x.normalize_rows_l2();
        let alpha = 0.4;
        let z_inf = propagate(&a, &x, alpha, PropagationStep::Infinite);
        let mut prev_err = f64::INFINITY;
        for m in [1usize, 2, 4, 8, 16, 32] {
            let z_m = propagate(&a, &x, alpha, PropagationStep::Finite(m));
            let err = gcon_linalg::ops::sub(&z_m, &z_inf).max_abs();
            assert!(err <= prev_err + 1e-12, "m={m}: error {err} not decreasing");
            // Geometric envelope: ‖Z_m − Z_∞‖ ≤ (1−α)^m ‖X − Z_∞‖-ish scale.
            assert!(
                err <= (1.0 - alpha).powi(m as i32) * 2.0 + 1e-12,
                "m={m}: error {err} above geometric envelope"
            );
            prev_err = err;
        }
    }
}
