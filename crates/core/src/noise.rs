//! Construction of the noise matrix `B` of Eq. (13).
//!
//! `B = (b₁, …, b_c)` has independent columns, each drawn by Algorithm 2
//! (uniform direction on the `d`-sphere, Erlang(d, β) radius), i.e. density
//! ∝ `exp(−β‖b‖₂)` per column.

use gcon_dp::erlang::sample_sphere_noise;
use gcon_linalg::Mat;
use rand::Rng;

/// Samples the `d × c` noise matrix. An infinite `β` (the Ψ(Z) = 0 special
/// case, see [`crate::params::TheoremOneParams`]) yields the zero matrix.
pub fn sample_noise_matrix<R: Rng + ?Sized>(d: usize, c: usize, beta: f64, rng: &mut R) -> Mat {
    assert!(d > 0 && c > 0, "sample_noise_matrix: degenerate shape");
    assert!(beta > 0.0, "sample_noise_matrix: β must be positive");
    if beta.is_infinite() {
        return Mat::zeros(d, c);
    }
    let mut b = Mat::zeros(d, c);
    for j in 0..c {
        let col = sample_sphere_noise(d, beta, rng);
        for (i, &v) in col.iter().enumerate() {
            b.set(i, j, v);
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcon_linalg::vecops::{mean, norm2};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shape_and_finiteness() {
        let mut rng = StdRng::seed_from_u64(51);
        let b = sample_noise_matrix(12, 5, 3.0, &mut rng);
        assert_eq!(b.shape(), (12, 5));
        assert!(b.is_finite());
    }

    #[test]
    fn infinite_beta_is_zero_matrix() {
        let mut rng = StdRng::seed_from_u64(52);
        let b = sample_noise_matrix(4, 3, f64::INFINITY, &mut rng);
        assert!(b.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn column_radii_follow_erlang_mean() {
        let mut rng = StdRng::seed_from_u64(53);
        let (d, beta) = (24usize, 2.0);
        let mut radii = Vec::new();
        for _ in 0..2000 {
            let b = sample_noise_matrix(d, 3, beta, &mut rng);
            for j in 0..3 {
                radii.push(norm2(&b.col(j)));
            }
        }
        let m = mean(&radii);
        assert!((m - d as f64 / beta).abs() < 0.2, "mean radius {m}");
    }

    #[test]
    fn columns_are_independent_draws() {
        let mut rng = StdRng::seed_from_u64(54);
        let b = sample_noise_matrix(16, 2, 1.0, &mut rng);
        // Two independent sphere samples are never identical.
        assert_ne!(b.col(0), b.col(1));
    }
}
