//! The Theorem 1 calibration chain (Eq. 17–24 of the paper).
//!
//! Given the privacy budget `(ε, δ)`, the budget split `ω`, the regularizer
//! `Λ`, the loss-derivative suprema `(c₁, c₂, c₃)`, the feature sensitivity
//! `Ψ(Z)` and the problem sizes `(n₁, c, d)`, this module computes:
//!
//! - `c_sf` (Eq. 21): the `(1 − δ/c)`-quantile of Gamma(d, 1) — the radius
//!   bound that holds for each noise column except with probability `δ/c`;
//! - `Λ̄` (Eq. 22): the effective regularizer, raised if needed so that the
//!   `c_θ` denominator stays positive;
//! - `c_θ` (Eq. 23): the high-probability bound on `‖θ_j‖₂`;
//! - `ε_Λ` (Eq. 24): the part of the budget consumed by the Jacobian
//!   determinant ratio;
//! - `Λ′` (Eq. 17): the extra quadratic term, activated only when `ε_Λ`
//!   exceeds `(1 − ω)ε`;
//! - `β` (Eq. 18): the Erlang rate of the noise distribution (Eq. 14).
//!
//! The whole chain is a pure function so its monotonicity and boundary
//! behaviour can be property-tested in isolation (see the tests below and
//! the workspace `tests/` suite).

use crate::loss::LossBounds;
use gcon_dp::special::reg_gamma_p_inverse;

/// Inputs to the Theorem 1 computation.
#[derive(Clone, Copy, Debug)]
pub struct CalibrationInput {
    /// Privacy budget ε.
    pub eps: f64,
    /// Privacy budget δ.
    pub delta: f64,
    /// Budget divider ω ∈ (0, 1) between the two perturbation terms
    /// (the paper fixes ω = 0.9 in its experiments).
    pub omega: f64,
    /// User-chosen regularization coefficient Λ of Eq. (2).
    pub lambda: f64,
    /// Number of labeled training rows n₁.
    pub n1: usize,
    /// Number of classes c.
    pub num_classes: usize,
    /// Feature dimension d (= s · d₁ after concatenation).
    pub dim: usize,
    /// Loss derivative suprema (Eq. 19).
    pub bounds: LossBounds,
    /// Sensitivity Ψ(Z) of the aggregate features (Lemma 2).
    pub psi: f64,
}

/// Outputs of the Theorem 1 computation (Table I notation).
#[derive(Clone, Copy, Debug)]
pub struct TheoremOneParams {
    /// Effective regularizer Λ̄ (Eq. 22): `max(Λ, c·c₂·Ψ·c_sf/(n₁ωε) + ξ)`.
    pub lambda_eff: f64,
    /// The Gamma-quantile `c_sf` (Eq. 21).
    pub csf: f64,
    /// High-probability parameter-norm bound `c_θ` (Eq. 23).
    pub c_theta: f64,
    /// Jacobian budget `ε_Λ` (Eq. 24).
    pub eps_lambda: f64,
    /// Additional quadratic coefficient Λ′ (Eq. 17; 0 when the Jacobian term
    /// already fits into `(1 − ω)ε`).
    pub lambda_prime: f64,
    /// Erlang rate β of the noise radius (Eq. 18). `f64::INFINITY` when
    /// Ψ(Z) = 0 (no edge information used → no noise required).
    pub beta: f64,
}

impl TheoremOneParams {
    /// Runs the full Eq. (17)–(24) chain.
    ///
    /// # Panics
    /// Panics on invalid inputs (non-positive budgets, ω ∉ (0,1), …).
    pub fn compute(input: &CalibrationInput) -> Self {
        let CalibrationInput { eps, delta, omega, lambda, n1, num_classes, dim, bounds, psi } =
            *input;
        assert!(eps > 0.0, "calibration: ε must be positive");
        assert!(delta > 0.0 && delta < 1.0, "calibration: δ must lie in (0, 1)");
        assert!(omega > 0.0 && omega < 1.0, "calibration: ω must lie in (0, 1)");
        assert!(lambda > 0.0, "calibration: Λ must be positive");
        assert!(n1 >= 1, "calibration: n₁ must be ≥ 1");
        assert!(num_classes >= 2, "calibration: c must be ≥ 2");
        assert!(dim >= 1, "calibration: d must be ≥ 1");
        assert!(bounds.c1 > 0.0 && bounds.c2 > 0.0 && bounds.c3 > 0.0);
        assert!(psi >= 0.0, "calibration: Ψ(Z) must be non-negative");

        let c = num_classes as f64;
        let d = dim as f64;
        let n1 = n1 as f64;

        if psi == 0.0 {
            // m = 0 everywhere: the pipeline touches no edges, so the output
            // is ε-independent of any edge; no perturbation is needed.
            return Self {
                lambda_eff: lambda,
                csf: 0.0,
                c_theta: f64::INFINITY,
                eps_lambda: 0.0,
                lambda_prime: 0.0,
                beta: f64::INFINITY,
            };
        }

        // Eq. (21): c_sf = min{u : P(d, u) ≥ 1 − δ/c}.
        let csf = reg_gamma_p_inverse(d, 1.0 - delta / c);

        // Eq. (22): Λ̄ = max(Λ, c·c₂·Ψ·c_sf/(n₁ωε) + ξ). We take ξ as 1% of
        // the critical value so the c_θ denominator keeps definite slack.
        let critical = c * bounds.c2 * psi * csf / (n1 * omega * eps);
        let lambda_eff = lambda.max(critical * 1.01 + f64::MIN_POSITIVE);

        // Eq. (23): c_θ = (n₁ωε·c₁ + c·c₁·Ψ·c_sf) / (n₁ωε·Λ̄ − c·c₂·Ψ·c_sf).
        let denom = n1 * omega * eps * lambda_eff - c * bounds.c2 * psi * csf;
        debug_assert!(denom > 0.0, "c_θ denominator must be positive by Eq. 22");
        let c_theta = (n1 * omega * eps * bounds.c1 + c * bounds.c1 * psi * csf) / denom;

        // Eq. (24): ε_Λ = c·d·log(1 + (2c₂ + c₃·c_θ)Ψ / (d·n₁·Λ̄)).
        let jac_num = (2.0 * bounds.c2 + bounds.c3 * c_theta) * psi;
        let eps_lambda = c * d * (1.0 + jac_num / (d * n1 * lambda_eff)).ln();

        // Eq. (17): Λ′.
        let lambda_prime = if eps_lambda <= (1.0 - omega) * eps {
            0.0
        } else {
            (c * jac_num / (n1 * (1.0 - omega) * eps) - lambda_eff).max(0.0)
        };

        // Eq. (18): β = max(ε − ε_Λ, ωε) / (c(c₁ + c₂·c_θ)Ψ).
        let beta =
            (eps - eps_lambda).max(omega * eps) / (c * (bounds.c1 + bounds.c2 * c_theta) * psi);

        Self { lambda_eff, csf, c_theta, eps_lambda, lambda_prime, beta }
    }

    /// Total quadratic coefficient `Λ̄ + Λ′` appearing in the perturbed
    /// objective's regularizer and in the stationarity condition (Eq. 40).
    pub fn lambda_total(&self) -> f64 {
        self.lambda_eff + self.lambda_prime
    }

    /// True when Ψ(Z) = 0 disabled the noise entirely.
    pub fn is_noise_free(&self) -> bool {
        self.beta.is_infinite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{ConvexLoss, LossKind};

    fn base_input() -> CalibrationInput {
        CalibrationInput {
            eps: 1.0,
            delta: 1e-4,
            omega: 0.9,
            lambda: 0.2,
            n1: 2000,
            num_classes: 7,
            dim: 16,
            bounds: ConvexLoss::new(LossKind::MultiLabelSoftMargin, 7).bounds(),
            psi: 1.0,
        }
    }

    #[test]
    fn all_outputs_positive_and_finite() {
        let p = TheoremOneParams::compute(&base_input());
        assert!(p.lambda_eff >= 0.2);
        assert!(p.csf > 0.0);
        assert!(p.c_theta > 0.0 && p.c_theta.is_finite());
        assert!(p.eps_lambda > 0.0 && p.eps_lambda.is_finite());
        assert!(p.lambda_prime >= 0.0);
        assert!(p.beta > 0.0 && p.beta.is_finite());
    }

    #[test]
    fn beta_increases_with_eps() {
        // More budget → larger Erlang rate → smaller expected noise radius.
        let mut prev = 0.0;
        for &eps in &[0.5, 1.0, 2.0, 3.0, 4.0] {
            let p = TheoremOneParams::compute(&CalibrationInput { eps, ..base_input() });
            assert!(p.beta > prev, "ε={eps}: β={} not increasing", p.beta);
            prev = p.beta;
        }
    }

    #[test]
    fn beta_decreases_with_psi() {
        // Higher sensitivity → more noise.
        let lo = TheoremOneParams::compute(&CalibrationInput { psi: 0.5, ..base_input() });
        let hi = TheoremOneParams::compute(&CalibrationInput { psi: 4.0, ..base_input() });
        assert!(hi.beta < lo.beta);
    }

    #[test]
    fn csf_solves_gamma_quantile() {
        let input = base_input();
        let p = TheoremOneParams::compute(&input);
        let cdf = gcon_dp::special::reg_gamma_p(input.dim as f64, p.csf);
        let target = 1.0 - input.delta / input.num_classes as f64;
        assert!((cdf - target).abs() < 1e-9);
    }

    #[test]
    fn lambda_prime_activates_only_when_jacobian_budget_exceeded() {
        // Huge Λ → tiny ε_Λ → Λ′ = 0.
        let big = TheoremOneParams::compute(&CalibrationInput { lambda: 50.0, ..base_input() });
        assert!(big.eps_lambda <= (1.0 - 0.9) * 1.0);
        assert_eq!(big.lambda_prime, 0.0);

        // Tiny Λ with small n₁ → Jacobian budget blown → Λ′ > 0.
        let small = TheoremOneParams::compute(&CalibrationInput {
            lambda: 1e-4,
            n1: 50,
            psi: 4.0,
            ..base_input()
        });
        assert!(small.eps_lambda > (1.0 - 0.9) * 1.0);
        assert!(small.lambda_prime > 0.0);
    }

    /// When Λ′ is active, the Jacobian determinant ratio bound of Lemma 7,
    /// `(1 + (2c₂ + c₃c_θ)Ψ / (d·n₁·(Λ̄+Λ′)))^{cd}`, must fit within the
    /// reserved `exp((1−ω)ε)` — this is the inequality Λ′ was solved from.
    #[test]
    fn jacobian_ratio_fits_budget_with_lambda_prime() {
        for (lambda, n1, psi) in [(1e-4, 50, 4.0), (0.01, 200, 2.0), (0.2, 2000, 1.0)] {
            let input = CalibrationInput { lambda, n1, psi, ..base_input() };
            let p = TheoremOneParams::compute(&input);
            let c = input.num_classes as f64;
            let d = input.dim as f64;
            let jac_num = (2.0 * input.bounds.c2 + input.bounds.c3 * p.c_theta) * psi;
            let log_ratio = c * d * (1.0 + jac_num / (d * n1 as f64 * p.lambda_total())).ln();
            let budget = ((1.0 - input.omega) * input.eps).max(p.eps_lambda.min(input.eps));
            assert!(
                log_ratio <= budget + 1e-9,
                "Λ={lambda} n1={n1} Ψ={psi}: log-ratio {log_ratio} > budget {budget}"
            );
        }
    }

    #[test]
    fn zero_psi_disables_noise() {
        let p = TheoremOneParams::compute(&CalibrationInput { psi: 0.0, ..base_input() });
        assert!(p.is_noise_free());
        assert_eq!(p.lambda_prime, 0.0);
        assert_eq!(p.lambda_total(), 0.2);
    }

    #[test]
    #[should_panic(expected = "ω must lie in (0, 1)")]
    fn invalid_omega_panics() {
        let _ = TheoremOneParams::compute(&CalibrationInput { omega: 1.0, ..base_input() });
    }

    #[test]
    fn c_theta_denominator_slack_under_adversarial_lambda() {
        // Λ exactly at the critical value: Eq. 22's ξ must keep c_θ finite.
        let input = base_input();
        let c = input.num_classes as f64;
        let critical = c * input.bounds.c2 * input.psi * TheoremOneParams::compute(&input).csf
            / (input.n1 as f64 * input.omega * input.eps);
        let p = TheoremOneParams::compute(&CalibrationInput { lambda: critical, ..input });
        assert!(p.c_theta.is_finite() && p.c_theta > 0.0);
    }

    #[test]
    fn larger_dim_needs_larger_csf() {
        let small = TheoremOneParams::compute(&CalibrationInput { dim: 8, ..base_input() });
        let large = TheoremOneParams::compute(&CalibrationInput { dim: 128, ..base_input() });
        assert!(large.csf > small.csf);
    }
}
