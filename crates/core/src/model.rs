//! Top-level GCON configuration, trained-model container, and privacy report.

use crate::encoder::{EncoderConfig, FeatureEncoder};
use crate::loss::LossKind;
use crate::params::TheoremOneParams;
use crate::propagation::{PprSolver, PropagationStep};
use gcon_linalg::Mat;

/// Optimizer settings for minimizing the perturbed objective. Per the
/// Theorem 1 remark, these affect utility only — never privacy.
#[derive(Clone, Copy, Debug)]
pub struct OptimizerConfig {
    /// Adam learning rate.
    pub lr: f64,
    /// Maximum full-batch iterations.
    pub max_iters: usize,
    /// Stop when `‖∇L_priv‖_F` falls below this.
    pub grad_tol: f64,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        Self { lr: 0.05, max_iters: 2000, grad_tol: 1e-7 }
    }
}

/// Full hyperparameter set of Algorithm 1.
#[derive(Clone, Debug)]
pub struct GconConfig {
    /// Feature-encoder settings (Algorithm 3).
    pub encoder: EncoderConfig,
    /// Restart probability α of PPR/APPR (Eq. 9). Paper sweeps {0.2…0.8}.
    pub alpha: f64,
    /// Propagation steps `m₁…m_s` (Eq. 11). Paper: s = 1 with m₁ ∈
    /// {1, 2, 5, 10, ∞} on the citation graphs, s ∈ {1,2,3} on Actor.
    pub steps: Vec<PropagationStep>,
    /// Regularization coefficient Λ (Eq. 2). Paper tunes {0.01, 0.2, 1, 2}.
    pub lambda: f64,
    /// Which strongly-convex loss to use (Sec. IV-C4).
    pub loss: LossKind,
    /// Budget divider ω (Theorem 1). Paper fixes 0.9.
    pub omega: f64,
    /// Restart probability α_I at the inference stage (Eq. 16).
    pub alpha_inference: f64,
    /// Expand the training set to all nodes using encoder pseudo-labels
    /// (the paper's `n₁ ∈ {n₀, n}` tuning knob, Appendix Q).
    pub expand_train_set: bool,
    /// Off-diagonal clip `p ∈ (0, 1/2]` of Lemma 1 applied to `Ã`.
    /// `p = 1/2` (the default) is the paper's unclipped `D⁻¹(A+I)`;
    /// smaller values trade per-edge influence for a `2p`-scaled
    /// sensitivity `Ψ_p(Z)` and thus less noise (Lemma 1 extension).
    pub clip_p: f64,
    /// How the PPR limit (`PropagationStep::Infinite`) is solved during
    /// training and public inference. `Auto` (the default) picks block CGNR
    /// for small restart probabilities and the power iteration otherwise;
    /// a non-converged CGNR solve always falls back to the power iteration.
    /// Solver choice affects runtime only — never privacy (the calibration
    /// chain depends on `Ψ(Z)`, not on how `Z` was computed).
    pub ppr_solver: PprSolver,
    /// Optimizer settings for Eq. (15).
    pub optimizer: OptimizerConfig,
}

impl Default for GconConfig {
    fn default() -> Self {
        Self {
            encoder: EncoderConfig::default(),
            alpha: 0.6,
            steps: vec![PropagationStep::Finite(2)],
            lambda: 0.2,
            loss: LossKind::MultiLabelSoftMargin,
            omega: 0.9,
            alpha_inference: 0.6,
            expand_train_set: true,
            clip_p: 0.5,
            ppr_solver: PprSolver::Auto,
            optimizer: OptimizerConfig::default(),
        }
    }
}

impl GconConfig {
    /// Validates the hyperparameter ranges of Algorithm 1's inputs, returning
    /// a human-readable description of the first violation.
    ///
    /// `train_gcon` asserts the same conditions; library users who prefer a
    /// `Result` (e.g. when configs come from user input) call this first.
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // !(x > 0) deliberately rejects NaN too
    pub fn validate(&self) -> Result<(), String> {
        if !(self.alpha > 0.0 && self.alpha <= 1.0) {
            return Err(format!("restart probability α must lie in (0, 1], got {}", self.alpha));
        }
        if !(self.alpha_inference >= 0.0 && self.alpha_inference <= 1.0) {
            return Err(format!(
                "inference restart α_I must lie in [0, 1], got {}",
                self.alpha_inference
            ));
        }
        if self.steps.is_empty() {
            return Err("at least one propagation step m₁ is required (Eq. 11)".into());
        }
        if !(self.lambda > 0.0) {
            return Err(format!("regularization Λ must be positive, got {}", self.lambda));
        }
        if !(self.omega > 0.0 && self.omega < 1.0) {
            return Err(format!("budget divider ω must lie in (0, 1), got {}", self.omega));
        }
        if let LossKind::PseudoHuber { delta } = self.loss {
            if !(delta > 0.0) {
                return Err(format!("pseudo-Huber δ_l must be positive, got {delta}"));
            }
        }
        if !(self.clip_p > 0.0 && self.clip_p <= 0.5) {
            return Err(format!("Lemma 1 clip p must lie in (0, 0.5], got {}", self.clip_p));
        }
        if self.encoder.d1 == 0 || self.encoder.hidden == 0 {
            return Err("encoder dimensions must be positive".into());
        }
        if self.optimizer.max_iters == 0 {
            return Err("optimizer needs at least one iteration".into());
        }
        Ok(())
    }
}

/// What the mechanism guarantees and how the budget was spent.
#[derive(Clone, Copy, Debug)]
pub struct PrivacyReport {
    /// The (ε, δ) the released `Θ_priv` satisfies (edge-level DP, Eq. 8).
    pub eps: f64,
    /// δ of the guarantee.
    pub delta: f64,
    /// Sensitivity Ψ(Z) used in the calibration (Lemma 2).
    pub psi_z: f64,
    /// The full Theorem 1 parameter set.
    pub params: TheoremOneParams,
    /// Number of labeled rows n₁ the calibration used.
    pub n1: usize,
}

/// A trained GCON model: the released parameters plus the (public) encoder
/// and the configuration needed for inference.
#[derive(Clone, Debug)]
pub struct TrainedGcon {
    /// The released network parameters `Θ_priv ∈ ℝ^{d × c}` (Eq. 15).
    pub theta: Mat,
    /// The public feature encoder.
    pub encoder: FeatureEncoder,
    /// Training configuration (propagation steps, α, …) reused at inference.
    pub config: GconConfig,
    /// Privacy accounting for the release.
    pub report: PrivacyReport,
    /// Number of classes.
    pub num_classes: usize,
    /// Iterations the optimizer took (diagnostics only).
    pub opt_iterations: usize,
    /// Final gradient norm of the perturbed objective (diagnostics only).
    pub final_grad_norm: f64,
}

impl TrainedGcon {
    /// Feature dimension d = s·d₁ of the released parameters.
    pub fn dim(&self) -> usize {
        self.theta.rows()
    }
}

impl std::fmt::Display for PrivacyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "edge-DP guarantee : (ε = {}, δ = {:.3e})", self.eps, self.delta)?;
        writeln!(f, "sensitivity Ψ(Z)  : {:.6}   (Lemma 2)", self.psi_z)?;
        writeln!(f, "n₁ (labeled rows) : {}", self.n1)?;
        writeln!(f, "Λ̄  (Eq. 22)      : {:.6}", self.params.lambda_eff)?;
        writeln!(f, "Λ′ (Eq. 17)      : {:.6}", self.params.lambda_prime)?;
        writeln!(f, "c_sf (Eq. 21)    : {:.6}", self.params.csf)?;
        writeln!(f, "c_θ (Eq. 23)     : {:.6}", self.params.c_theta)?;
        writeln!(f, "ε_Λ (Eq. 24)     : {:.6}", self.params.eps_lambda)?;
        if self.params.is_noise_free() {
            writeln!(f, "β  (Eq. 18)      : ∞ (Ψ(Z)=0 — no noise required)")
        } else {
            writeln!(f, "β  (Eq. 18)      : {:.6}   (Erlang rate)", self.params.beta)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::field_reassign_with_default)] // per-violation mutation reads clearer
    fn validate_accepts_default_and_rejects_each_violation() {
        assert!(GconConfig::default().validate().is_ok());
        let mut c = GconConfig::default();
        c.alpha = 0.0;
        assert!(c.validate().unwrap_err().contains("α"));
        let mut c = GconConfig::default();
        c.alpha_inference = 1.5;
        assert!(c.validate().unwrap_err().contains("α_I"));
        let mut c = GconConfig::default();
        c.steps.clear();
        assert!(c.validate().unwrap_err().contains("propagation step"));
        let mut c = GconConfig::default();
        c.lambda = -1.0;
        assert!(c.validate().unwrap_err().contains("Λ"));
        let mut c = GconConfig::default();
        c.omega = 1.0;
        assert!(c.validate().unwrap_err().contains("ω"));
        let mut c = GconConfig::default();
        c.loss = crate::loss::LossKind::PseudoHuber { delta: 0.0 };
        assert!(c.validate().unwrap_err().contains("δ_l"));
        let mut c = GconConfig::default();
        c.encoder.d1 = 0;
        assert!(c.validate().unwrap_err().contains("encoder"));
        let mut c = GconConfig::default();
        c.optimizer.max_iters = 0;
        assert!(c.validate().unwrap_err().contains("iteration"));
    }

    #[test]
    fn privacy_report_display_mentions_all_parameters() {
        use crate::loss::{ConvexLoss, LossKind};
        use crate::params::{CalibrationInput, TheoremOneParams};
        let params = TheoremOneParams::compute(&CalibrationInput {
            eps: 1.0,
            delta: 1e-4,
            omega: 0.9,
            lambda: 0.2,
            n1: 500,
            num_classes: 3,
            dim: 8,
            bounds: ConvexLoss::new(LossKind::MultiLabelSoftMargin, 3).bounds(),
            psi: 1.0,
        });
        let report = PrivacyReport { eps: 1.0, delta: 1e-4, psi_z: 1.0, params, n1: 500 };
        let s = format!("{report}");
        for needle in ["ε = 1", "Ψ(Z)", "Λ′", "c_sf", "c_θ", "β"] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
    }

    #[test]
    fn noise_free_report_displays_infinity() {
        use crate::loss::{ConvexLoss, LossKind};
        use crate::params::{CalibrationInput, TheoremOneParams};
        let params = TheoremOneParams::compute(&CalibrationInput {
            eps: 1.0,
            delta: 1e-4,
            omega: 0.9,
            lambda: 0.2,
            n1: 500,
            num_classes: 3,
            dim: 8,
            bounds: ConvexLoss::new(LossKind::MultiLabelSoftMargin, 3).bounds(),
            psi: 0.0,
        });
        let report = PrivacyReport { eps: 1.0, delta: 1e-4, psi_z: 0.0, params, n1: 500 };
        assert!(format!("{report}").contains("no noise required"));
    }

    #[test]
    fn default_config_is_self_consistent() {
        let cfg = GconConfig::default();
        assert!(cfg.alpha > 0.0 && cfg.alpha <= 1.0);
        assert!(cfg.omega > 0.0 && cfg.omega < 1.0);
        assert!(!cfg.steps.is_empty());
        assert!(cfg.lambda > 0.0);
        assert!(cfg.optimizer.max_iters > 0);
    }
}
