//! The MLP feature encoder (Algorithm 3, Sec. IV-C1).
//!
//! The encoder compresses raw node features `X ∈ ℝ^{n×d₀}` to `X̄ ∈ ℝ^{n×d₁}`
//! using *only* node features and labels, which are public in the paper's
//! problem setting (Sec. III) — so it preserves edge privacy automatically
//! and consumes no budget. Architecturally it is an embedding MLP
//! (`d₀ → hidden → d₁`, ReLU hidden, tanh output = `H_mlp`) trained jointly
//! with a linear classification head (`d₁ → c`, the `W₂` of the paper) under
//! softmax cross-entropy.

use gcon_linalg::Mat;
use gcon_nn::loss::softmax_cross_entropy_into;
use gcon_nn::{Activation, Adam, Linear, LinearGrads, Mlp, MlpConfig, MlpWorkspace, Optimizer};
use rand::Rng;

/// Hyperparameters for the encoder.
#[derive(Clone, Debug)]
pub struct EncoderConfig {
    /// Hidden width of the embedding MLP (paper tunes {8, 16, 64}).
    pub hidden: usize,
    /// Output embedding dimension `d₁`.
    pub d1: usize,
    /// Full-batch Adam epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
    /// Weight decay on all weight matrices.
    pub weight_decay: f64,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        Self { hidden: 64, d1: 16, epochs: 200, lr: 0.01, weight_decay: 1e-5 }
    }
}

/// The trained encoder: embedding network `W₁` plus classification head `W₂`.
#[derive(Clone, Debug)]
pub struct FeatureEncoder {
    pub(crate) net: Mlp,
    pub(crate) head: Linear,
}

impl FeatureEncoder {
    /// Trains the encoder on the labeled nodes (Algorithm 3, lines 1–4).
    ///
    /// `x_labeled` is `n₁ × d₀`, `labels` holds class indices in `0..c`.
    pub fn train<R: Rng + ?Sized>(
        cfg: &EncoderConfig,
        x_labeled: &Mat,
        labels: &[usize],
        num_classes: usize,
        rng: &mut R,
    ) -> Self {
        assert_eq!(x_labeled.rows(), labels.len(), "encoder: label count mismatch");
        assert!(num_classes >= 2);
        let d0 = x_labeled.cols();
        let mut net = Mlp::new(
            &MlpConfig {
                dims: vec![d0, cfg.hidden, cfg.d1],
                hidden_activation: Activation::Relu,
                output_activation: Activation::Tanh,
            },
            rng,
        );
        let mut head = Linear::xavier(cfg.d1, num_classes, rng);
        let mut opt = Adam::new(cfg.lr);
        let net_slots = 2 * net.depth();
        // All epoch-loop buffers live outside the loop: steady-state epochs
        // perform no matrix allocation (gcon-runtime `_into` discipline).
        let mut ws = MlpWorkspace::new();
        let mut logits = Mat::zeros(0, 0);
        let mut dlogits = Mat::zeros(0, 0);
        let mut demb = Mat::zeros(0, 0);
        let mut head_grads = LinearGrads::zeros(0, 0);
        for _ in 0..cfg.epochs {
            net.forward_cached_ws(x_labeled, &mut ws);
            head.forward_into(ws.output(), &mut logits);
            let _ = softmax_cross_entropy_into(&logits, labels, &mut dlogits);
            head.backward_into(ws.output(), &dlogits, &mut demb, &mut head_grads);
            net.backward_ws_weights_only(&mut ws, &demb);
            opt.begin_step();
            net.apply_grads_ws(&mut ws, &mut opt, cfg.weight_decay, 0);
            gcon_linalg::ops::add_scaled_assign(&mut head_grads.dw, cfg.weight_decay, &head.w);
            opt.update(net_slots, head.w.as_mut_slice(), head_grads.dw.as_slice());
            opt.update(net_slots + 1, &mut head.b, &head_grads.db);
        }
        Self { net, head }
    }

    /// Encodes features into the `d₁`-dimensional space (Algorithm 3 line 5).
    pub fn encode(&self, x: &Mat) -> Mat {
        self.net.forward(x)
    }

    /// Class predictions from the encoder head alone (used as pseudo-labels
    /// when the training set is expanded to all nodes, per Appendix Q).
    pub fn predict(&self, x: &Mat) -> Vec<usize> {
        let emb = self.encode(x);
        gcon_linalg::reduce::row_argmax(&self.head.forward(&emb))
    }

    /// Output dimension d₁.
    pub fn d1(&self) -> usize {
        self.head.d_in()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Linearly separable blobs in d₀ = 10.
    fn blobs(n: usize, c: usize, rng: &mut StdRng) -> (Mat, Vec<usize>) {
        let labels: Vec<usize> = (0..n).map(|i| i % c).collect();
        let x = Mat::from_fn(n, 10, |i, j| {
            let class = labels[i] as f64;
            let center = if j % c == labels[i] { 2.0 } else { -0.5 };
            center + 0.3 * (((i * 31 + j * 17) % 13) as f64 / 13.0 - 0.5) + 0.01 * class
        });
        let _ = rng;
        (x, labels)
    }

    #[test]
    fn encoder_learns_separable_classes() {
        let mut rng = StdRng::seed_from_u64(71);
        let (x, labels) = blobs(120, 3, &mut rng);
        let cfg = EncoderConfig { epochs: 150, ..Default::default() };
        let enc = FeatureEncoder::train(&cfg, &x, &labels, 3, &mut rng);
        let pred = enc.predict(&x);
        let acc =
            pred.iter().zip(&labels).filter(|(a, b)| a == b).count() as f64 / labels.len() as f64;
        assert!(acc > 0.9, "encoder train accuracy {acc}");
    }

    #[test]
    fn encode_shape_and_tanh_range() {
        let mut rng = StdRng::seed_from_u64(72);
        let (x, labels) = blobs(60, 2, &mut rng);
        let cfg = EncoderConfig { d1: 8, epochs: 30, ..Default::default() };
        let enc = FeatureEncoder::train(&cfg, &x, &labels, 2, &mut rng);
        let emb = enc.encode(&x);
        assert_eq!(emb.shape(), (60, 8));
        assert_eq!(enc.d1(), 8);
        // tanh output stays in (−1, 1)
        assert!(emb.max_abs() <= 1.0);
    }

    #[test]
    fn encoder_never_touches_edges() {
        // API-level check: the encoder's inputs are features and labels only;
        // training twice with identical features/labels but different
        // "graphs" (irrelevant here) gives identical results for a fixed rng.
        let mut r1 = StdRng::seed_from_u64(73);
        let mut r2 = StdRng::seed_from_u64(73);
        let (x, labels) = blobs(40, 2, &mut r1);
        let (x2, labels2) = blobs(40, 2, &mut r2);
        let cfg = EncoderConfig { epochs: 20, ..Default::default() };
        let e1 = FeatureEncoder::train(&cfg, &x, &labels, 2, &mut r1);
        let e2 = FeatureEncoder::train(&cfg, &x2, &labels2, 2, &mut r2);
        assert_eq!(e1.encode(&x).as_slice(), e2.encode(&x2).as_slice());
    }
}
