//! The perturbed objective `L_priv(Θ; Z, Y)` of Eq. (13) and its gradient.
//!
//! ```text
//! L_priv(Θ) = (1/n₁) Σ_i Σ_j ℓ(z_iᵀθ_j ; y_ij)
//!           + (Λ̄/2)‖Θ‖²_F + (1/n₁) B ⊙ Θ + (Λ′/2)‖Θ‖²_F
//! ```
//!
//! where `⊙` is element-wise product followed by a global sum (Frobenius
//! inner product). The gradient w.r.t. column `θ_j` is
//! `(1/n₁) Σ_i z_i ℓ'(z_iᵀθ_j; y_ij) + (Λ̄+Λ′)θ_j + b_j/n₁`, matching the
//! stationarity condition of Eq. (40) in the paper's analysis.

use crate::loss::ConvexLoss;
use gcon_linalg::{ops, Mat};

/// The perturbed training objective, with everything fixed except `Θ`.
pub struct PerturbedObjective<'a> {
    /// Aggregate features of the labeled rows, `n₁ × d`.
    pub z: &'a Mat,
    /// One-hot labels, `n₁ × c`.
    pub y: &'a Mat,
    /// The convex per-coordinate loss.
    pub loss: ConvexLoss,
    /// `Λ̄ + Λ′` — total quadratic coefficient.
    pub lambda_total: f64,
    /// The noise matrix `B`, `d × c` (zero when Ψ(Z) = 0).
    pub b: &'a Mat,
}

impl<'a> PerturbedObjective<'a> {
    /// Validates dimensions and builds the objective.
    pub fn new(z: &'a Mat, y: &'a Mat, loss: ConvexLoss, lambda_total: f64, b: &'a Mat) -> Self {
        assert_eq!(z.rows(), y.rows(), "objective: Z/Y row mismatch");
        assert_eq!(b.rows(), z.cols(), "objective: B rows must equal d");
        assert_eq!(b.cols(), y.cols(), "objective: B cols must equal c");
        assert!(z.rows() > 0, "objective: empty training set");
        assert!(lambda_total > 0.0, "objective: Λ̄+Λ′ must be positive");
        Self { z, y, loss, lambda_total, b }
    }

    /// Number of labeled rows n₁.
    pub fn n1(&self) -> usize {
        self.z.rows()
    }

    /// Evaluates `L_priv(Θ)`.
    pub fn value(&self, theta: &Mat) -> f64 {
        let n1 = self.n1() as f64;
        let scores = ops::matmul(self.z, theta); // n₁ × c
        let mut data_loss = 0.0;
        for i in 0..scores.rows() {
            let srow = scores.row(i);
            let yrow = self.y.row(i);
            for (&s, &y) in srow.iter().zip(yrow) {
                data_loss += self.loss.value(s, y);
            }
        }
        data_loss / n1
            + 0.5 * self.lambda_total * theta.frobenius_norm_sq()
            + ops::frobenius_inner(self.b, theta) / n1
    }

    /// Evaluates `(L_priv(Θ), ∇L_priv(Θ))` in one pass.
    pub fn value_and_grad(&self, theta: &Mat) -> (f64, Mat) {
        let n1 = self.n1() as f64;
        let scores = ops::matmul(self.z, theta); // n₁ × c
        let mut data_loss = 0.0;
        let mut dscores = Mat::zeros(scores.rows(), scores.cols());
        for i in 0..scores.rows() {
            let srow = scores.row(i);
            let yrow = self.y.row(i);
            let drow = dscores.row_mut(i);
            for ((d, &s), &y) in drow.iter_mut().zip(srow).zip(yrow) {
                data_loss += self.loss.value(s, y);
                *d = self.loss.d1(s, y) / n1;
            }
        }
        // ∇ = Zᵀ·dscores + λ_total·Θ + B/n₁
        let mut grad = ops::t_matmul(self.z, &dscores);
        ops::add_scaled_assign(&mut grad, self.lambda_total, theta);
        ops::add_scaled_assign(&mut grad, 1.0 / n1, self.b);
        let value = data_loss / n1
            + 0.5 * self.lambda_total * theta.frobenius_norm_sq()
            + ops::frobenius_inner(self.b, theta) / n1;
        (value, grad)
    }

    /// Gradient only.
    pub fn gradient(&self, theta: &Mat) -> Mat {
        self.value_and_grad(theta).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{ConvexLoss, LossKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(seed: u64) -> (Mat, Mat, Mat) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut z = Mat::uniform(9, 5, 1.0, &mut rng);
        z.normalize_rows_l2();
        let mut y = Mat::zeros(9, 3);
        for i in 0..9 {
            y.set(i, i % 3, 1.0);
        }
        let b = Mat::uniform(5, 3, 0.5, &mut rng);
        (z, y, b)
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let (z, y, b) = setup(61);
        for kind in [LossKind::MultiLabelSoftMargin, LossKind::PseudoHuber { delta: 0.3 }] {
            let loss = ConvexLoss::new(kind, 3);
            let obj = PerturbedObjective::new(&z, &y, loss, 0.7, &b);
            let mut rng = StdRng::seed_from_u64(62);
            let theta = Mat::uniform(5, 3, 1.0, &mut rng);
            let (_, grad) = obj.value_and_grad(&theta);
            let h = 1e-6;
            for i in 0..5 {
                for j in 0..3 {
                    let mut tp = theta.clone();
                    tp.add_at(i, j, h);
                    let mut tm = theta.clone();
                    tm.add_at(i, j, -h);
                    let fd = (obj.value(&tp) - obj.value(&tm)) / (2.0 * h);
                    assert!(
                        (fd - grad.get(i, j)).abs() < 1e-6,
                        "{kind:?} grad[{i}][{j}]: fd {fd} vs {}",
                        grad.get(i, j)
                    );
                }
            }
        }
    }

    #[test]
    fn objective_is_convex_along_segments() {
        let (z, y, b) = setup(63);
        let loss = ConvexLoss::new(LossKind::MultiLabelSoftMargin, 3);
        let obj = PerturbedObjective::new(&z, &y, loss, 0.5, &b);
        let mut rng = StdRng::seed_from_u64(64);
        for _ in 0..10 {
            let t1 = Mat::uniform(5, 3, 2.0, &mut rng);
            let t2 = Mat::uniform(5, 3, 2.0, &mut rng);
            let mid = ops::scale(&ops::add(&t1, &t2), 0.5);
            assert!(
                obj.value(&mid) <= 0.5 * obj.value(&t1) + 0.5 * obj.value(&t2) + 1e-12,
                "convexity violated"
            );
        }
    }

    #[test]
    fn strong_convexity_margin() {
        // L_priv − (λ/2)‖Θ‖² is still convex, so along segments the strong
        // convexity inequality with modulus λ must hold.
        let (z, y, b) = setup(65);
        let lambda = 0.8;
        let loss = ConvexLoss::new(LossKind::PseudoHuber { delta: 0.2 }, 3);
        let obj = PerturbedObjective::new(&z, &y, loss, lambda, &b);
        let mut rng = StdRng::seed_from_u64(66);
        let t1 = Mat::uniform(5, 3, 1.0, &mut rng);
        let t2 = Mat::uniform(5, 3, 1.0, &mut rng);
        let mid = ops::scale(&ops::add(&t1, &t2), 0.5);
        let diff = ops::sub(&t1, &t2);
        let lhs = obj.value(&mid);
        let rhs =
            0.5 * obj.value(&t1) + 0.5 * obj.value(&t2) - lambda / 8.0 * diff.frobenius_norm_sq();
        assert!(lhs <= rhs + 1e-12, "strong convexity violated: {lhs} > {rhs}");
    }

    #[test]
    fn noise_term_shifts_gradient_linearly() {
        let (z, y, _) = setup(67);
        let loss = ConvexLoss::new(LossKind::MultiLabelSoftMargin, 3);
        let zero = Mat::zeros(5, 3);
        let b = Mat::full(5, 3, 2.0);
        let theta = Mat::zeros(5, 3);
        let g0 = PerturbedObjective::new(&z, &y, loss, 0.5, &zero).gradient(&theta);
        let gb = PerturbedObjective::new(&z, &y, loss, 0.5, &b).gradient(&theta);
        let n1 = 9.0;
        for (a, b_) in g0.as_slice().iter().zip(gb.as_slice()) {
            assert!((b_ - a - 2.0 / n1).abs() < 1e-12);
        }
    }
}
