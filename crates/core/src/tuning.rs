//! Validation-based hyperparameter selection (Appendix Q of the paper).
//!
//! The paper tunes GCON per dataset — restart probability α, inference
//! restart α_I ∈ {α} ∪ {0.1, 0.9}, propagation steps, regularization Λ,
//! loss, and the training-set expansion `n₁ ∈ {n₀, n}` — selecting by
//! validation accuracy. Following the paper (and its cited prior work), the
//! privacy cost of tuning is not charged: each candidate is trained under
//! the same (ε, δ), and the winner's guarantee is the one reported.
//!
//! [`tune_gcon`] runs a small grid over the knobs that matter most, scores
//! each candidate on the validation split with private inference (the
//! evaluation protocol of Figures 1/2/4), and returns the best configuration
//! together with its trained model.

use crate::infer::private_predict;
use crate::model::GconConfig;
use crate::train::train_gcon_on_adjacency;
use crate::TrainedGcon;
use gcon_graph::normalize::row_stochastic;
use gcon_graph::Graph;
use gcon_linalg::Mat;
use rand::Rng;

/// The candidate grid. Defaults mirror the paper's Appendix Q ranges,
/// shrunk to the knobs with first-order impact.
#[derive(Clone, Debug)]
pub struct TuningGrid {
    /// Inference restart probabilities to try (paper: {α} ∪ {0.1, 0.9}).
    pub alpha_inference: Vec<f64>,
    /// Whether to try expanding the training set with pseudo-labels.
    pub expand_train_set: Vec<bool>,
    /// Regularization coefficients Λ (paper: {0.01, 0.2, 1, 2}).
    pub lambda: Vec<f64>,
    /// Lemma 1 clips p to try (ours; the paper fixes the unclipped 0.5).
    pub clip_p: Vec<f64>,
}

impl Default for TuningGrid {
    fn default() -> Self {
        Self {
            alpha_inference: vec![0.1, 0.5, 0.9],
            expand_train_set: vec![true, false],
            lambda: vec![0.2],
            clip_p: vec![0.5],
        }
    }
}

/// One scored candidate.
#[derive(Clone, Debug)]
pub struct TuningOutcome {
    /// The configuration evaluated.
    pub config: GconConfig,
    /// Validation micro-F1 (= accuracy for single-label problems).
    pub val_score: f64,
}

/// Result of [`tune_gcon`].
pub struct TunedGcon {
    /// The winning model (trained with the winning configuration).
    pub model: TrainedGcon,
    /// The winner's validation score.
    pub best_score: f64,
    /// Every candidate's outcome, in evaluation order (for reporting).
    pub trace: Vec<TuningOutcome>,
}

/// Grid-searches over `grid`, starting from `base` for all non-swept knobs.
///
/// `val_idx` must be disjoint from `train_idx` (the usual validation split);
/// candidates are compared by validation accuracy under private inference.
#[allow(clippy::too_many_arguments)] // a training entry point takes the full dataset tuple
pub fn tune_gcon<R: Rng + ?Sized>(
    base: &GconConfig,
    grid: &TuningGrid,
    graph: &Graph,
    features: &Mat,
    labels: &[usize],
    train_idx: &[usize],
    val_idx: &[usize],
    num_classes: usize,
    eps: f64,
    delta: f64,
    rng: &mut R,
) -> TunedGcon {
    assert!(!val_idx.is_empty(), "tune_gcon: empty validation split");
    let mut best: Option<(f64, TrainedGcon, GconConfig)> = None;
    let mut trace = Vec::new();
    // Ã depends only on (graph, clip_p): normalize once per swept clip and
    // share the CSR across every candidate in the inner loops.
    let a_tildes: Vec<gcon_graph::Csr> =
        grid.clip_p.iter().map(|&p| row_stochastic(graph, p)).collect();
    for &alpha_i in &grid.alpha_inference {
        for &expand in &grid.expand_train_set {
            for &lambda in &grid.lambda {
                for (&clip_p, a_tilde) in grid.clip_p.iter().zip(&a_tildes) {
                    let mut cfg = base.clone();
                    cfg.alpha_inference = alpha_i;
                    cfg.expand_train_set = expand;
                    cfg.lambda = lambda;
                    cfg.clip_p = clip_p;
                    let model = train_gcon_on_adjacency(
                        &cfg,
                        graph,
                        a_tilde,
                        features,
                        labels,
                        train_idx,
                        num_classes,
                        eps,
                        delta,
                        rng,
                    );
                    let pred = private_predict(&model, graph, features);
                    let correct = val_idx.iter().filter(|&&i| pred[i] == labels[i]).count();
                    let score = correct as f64 / val_idx.len() as f64;
                    trace.push(TuningOutcome { config: cfg.clone(), val_score: score });
                    let better = match &best {
                        None => true,
                        Some((s, _, _)) => score > *s,
                    };
                    if better {
                        best = Some((score, model, cfg));
                    }
                }
            }
        }
    }
    let (best_score, model, _) = best.expect("tune_gcon: empty grid");
    TunedGcon { model, best_score, trace }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tuning_explores_grid_and_returns_best() {
        let dataset = gcon_test_dataset();
        let mut base = GconConfig::default();
        base.encoder.epochs = 30;
        base.optimizer.max_iters = 200;
        let grid = TuningGrid {
            alpha_inference: vec![0.1, 0.9],
            expand_train_set: vec![true],
            lambda: vec![0.2],
            clip_p: vec![0.5],
        };
        let mut rng = StdRng::seed_from_u64(7);
        let tuned = tune_gcon(
            &base, &grid, &dataset.0, &dataset.1, &dataset.2, &dataset.3, &dataset.4, 2, 2.0, 1e-3,
            &mut rng,
        );
        assert_eq!(tuned.trace.len(), 2);
        let max_trace = tuned.trace.iter().map(|o| o.val_score).fold(0.0_f64, f64::max);
        assert_eq!(tuned.best_score, max_trace);
        assert!(tuned.best_score > 0.4, "best val score {}", tuned.best_score);
    }

    /// (graph, features, labels, train_idx, val_idx)
    fn gcon_test_dataset() -> (Graph, Mat, Vec<usize>, Vec<usize>, Vec<usize>) {
        use gcon_graph::generators::{sbm_homophily, SbmConfig};
        let mut rng = StdRng::seed_from_u64(1);
        let (g, labels) = sbm_homophily(
            &SbmConfig {
                n: 120,
                num_edges: 360,
                num_classes: 2,
                homophily: 0.85,
                degree_exponent: 2.5,
            },
            &mut rng,
        );
        let x = Mat::from_fn(120, 10, |i, j| {
            let hit = j % 2 == labels[i];
            (if hit { 1.2 } else { 0.0 }) + 0.3 * (((i * 7 + j * 3) % 11) as f64 / 11.0)
        });
        let train: Vec<usize> = (0..120).step_by(4).collect();
        let val: Vec<usize> = (1..120).step_by(4).collect();
        (g, x, labels, train, val)
    }
}
